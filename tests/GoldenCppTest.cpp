//===- GoldenCppTest.cpp - Golden-file regression for the C++ backend ---------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Byte-for-byte regression of representative generated C++ translation
/// units — the self-check program and the callable OpenMP kernel library —
/// against checked-in golden files (tests/golden/), pinning the portable
/// backend exactly like GoldenCudaTest pins the CUDA backend. If an
/// intentional codegen change breaks these, regenerate the goldens and
/// review the diff like any compiler change.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace an5d;

namespace {

std::string readGolden(const std::string &FileName) {
  std::ifstream In(std::string(AN5D_GOLDEN_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "missing golden file " << FileName;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Reports the first differing line to make diffs actionable.
void expectEqualWithContext(const std::string &Got,
                            const std::string &Want,
                            const std::string &Tag) {
  if (Got == Want) {
    SUCCEED();
    return;
  }
  std::stringstream GotStream(Got), WantStream(Want);
  std::string GotLine, WantLine;
  int LineNo = 0;
  while (true) {
    ++LineNo;
    bool GotOk = static_cast<bool>(std::getline(GotStream, GotLine));
    bool WantOk = static_cast<bool>(std::getline(WantStream, WantLine));
    if (!GotOk && !WantOk)
      break;
    if (GotLine != WantLine || GotOk != WantOk) {
      FAIL() << Tag << ": first difference at line " << LineNo
             << "\n  golden:    " << (WantOk ? WantLine : "<eof>")
             << "\n  generated: " << (GotOk ? GotLine : "<eof>")
             << "\nIf the change is intentional, regenerate tests/golden/.";
      return;
    }
  }
  FAIL() << Tag << ": content differs (lengths " << Got.size() << " vs "
         << Want.size() << ")";
}

} // namespace

TEST(GoldenCpp, J2d5ptCheckProgram) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {32};
  C.HS = 8;
  ProblemSize Problem;
  Problem.Extents = {40, 37};
  Problem.TimeSteps = 11;
  expectEqualWithContext(generateCppCheckProgram(*P, C, Problem),
                         readGolden("an5d_j2d5pt_check.cpp.golden"),
                         "j2d5pt check program");
}

TEST(GoldenCpp, Star3d1rDoubleCheckProgram) {
  auto P = makeStarStencil(3, 1, ScalarType::Double);
  BlockConfig C;
  C.BT = 2;
  C.BS = {12, 10};
  C.HS = 6;
  ProblemSize Problem;
  Problem.Extents = {14, 12, 11};
  Problem.TimeSteps = 11;
  expectEqualWithContext(generateCppCheckProgram(*P, C, Problem),
                         readGolden("an5d_star3d1r_check.cpp.golden"),
                         "star3d1r check program");
}

TEST(GoldenCpp, Star1d1rCheckProgram) {
  auto P = makeStarStencil(1, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear(); // 1D pure streaming: no blocked dimensions
  C.HS = 8;
  ProblemSize Problem;
  Problem.Extents = {95};
  Problem.TimeSteps = 11;
  expectEqualWithContext(generateCppCheckProgram(*P, C, Problem),
                         readGolden("an5d_star1d1r_check.cpp.golden"),
                         "star1d1r check program");
}

TEST(GoldenCpp, Star1d1rKernelLibrary) {
  auto P = makeStarStencil(1, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear();
  C.HS = 128;
  expectEqualWithContext(generateCppKernelLibrary(*P, C),
                         readGolden("an5d_star1d1r_omp.cpp.golden"),
                         "star1d1r kernel library");
}

TEST(GoldenCpp, J2d5ptKernelLibrary) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  expectEqualWithContext(generateCppKernelLibrary(*P, C),
                         readGolden("an5d_j2d5pt_omp.cpp.golden"),
                         "j2d5pt kernel library");
}

TEST(GoldenCpp, GenerationIsDeterministic) {
  auto P = makeJacobi3d27pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {16, 16};
  C.HS = 0;
  EXPECT_EQ(generateCppKernelLibrary(*P, C),
            generateCppKernelLibrary(*P, C));
  ProblemSize Problem;
  Problem.Extents = {10, 9, 8};
  Problem.TimeSteps = 7;
  EXPECT_EQ(generateCppCheckProgram(*P, C, Problem),
            generateCppCheckProgram(*P, C, Problem));
}
