//===- SchedulerTest.cpp - Temporal block schedule invariants ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TimeBlockScheduler.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace an5d;

TEST(Scheduler, DivisibleAndParityAligned) {
  // IT=8, bT=4: two calls, 8 mod 2 == 2 mod 2: no adjustment.
  std::vector<int> Degrees = scheduleTimeBlocks(8, 4);
  EXPECT_EQ(Degrees, (std::vector<int>{4, 4}));
}

TEST(Scheduler, RemainderBlockAppended) {
  // IT=10, bT=4: 4+4+2 = three calls; 10 mod 2 = 0 != 3 mod 2 -> split.
  std::vector<int> Degrees = scheduleTimeBlocks(10, 4);
  long long Sum = std::accumulate(Degrees.begin(), Degrees.end(), 0LL);
  EXPECT_EQ(Sum, 10);
  EXPECT_EQ(Degrees.size() % 2, 0u);
}

TEST(Scheduler, ParityMismatchSplitsABlock) {
  // IT=4, bT=4: one call but 4 mod 2 = 0 -> must split into two.
  std::vector<int> Degrees = scheduleTimeBlocks(4, 4);
  EXPECT_EQ(Degrees, (std::vector<int>{2, 2}));
}

TEST(Scheduler, DegreeOneTrivial) {
  std::vector<int> Degrees = scheduleTimeBlocks(7, 1);
  EXPECT_EQ(Degrees.size(), 7u);
  for (int D : Degrees)
    EXPECT_EQ(D, 1);
}

TEST(Scheduler, ZeroSteps) {
  EXPECT_TRUE(scheduleTimeBlocks(0, 4).empty());
}

TEST(Scheduler, SingleStep) {
  EXPECT_EQ(scheduleTimeBlocks(1, 8), (std::vector<int>{1}));
}

TEST(Scheduler, TwoStepsLargeBt) {
  // IT=2, bT=8: [2] has one call, parity 0 != 1 -> split into [1,1].
  EXPECT_EQ(scheduleTimeBlocks(2, 8), (std::vector<int>{1, 1}));
}

/// Exhaustive invariant sweep over (IT, bT).
class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, InvariantsHoldForAllTimeStepCounts) {
  int BT = GetParam();
  for (long long IT = 0; IT <= 64; ++IT) {
    std::vector<int> Degrees = scheduleTimeBlocks(IT, BT);
    long long Sum = 0;
    for (int D : Degrees) {
      EXPECT_GE(D, 1) << "IT=" << IT << " bT=" << BT;
      EXPECT_LE(D, BT) << "IT=" << IT << " bT=" << BT;
      Sum += D;
    }
    EXPECT_EQ(Sum, IT) << "IT=" << IT << " bT=" << BT;
    EXPECT_EQ(static_cast<long long>(Degrees.size()) % 2, IT % 2)
        << "buffer parity, IT=" << IT << " bT=" << BT;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, SchedulerSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 16));
