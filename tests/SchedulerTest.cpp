//===- SchedulerTest.cpp - Temporal block schedule invariants ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TimeBlockScheduler.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace an5d;

TEST(Scheduler, DivisibleAndParityAligned) {
  // IT=8, bT=4: two calls, 8 mod 2 == 2 mod 2: no adjustment.
  std::vector<int> Degrees = scheduleTimeBlocks(8, 4);
  EXPECT_EQ(Degrees, (std::vector<int>{4, 4}));
}

TEST(Scheduler, RemainderBlockAppended) {
  // IT=10, bT=4: 4+4+2 = three calls; 10 mod 2 = 0 != 3 mod 2 -> split.
  std::vector<int> Degrees = scheduleTimeBlocks(10, 4);
  long long Sum = std::accumulate(Degrees.begin(), Degrees.end(), 0LL);
  EXPECT_EQ(Sum, 10);
  EXPECT_EQ(Degrees.size() % 2, 0u);
}

TEST(Scheduler, ParityMismatchSplitsABlock) {
  // IT=4, bT=4: one call but 4 mod 2 = 0 -> must split into two.
  std::vector<int> Degrees = scheduleTimeBlocks(4, 4);
  EXPECT_EQ(Degrees, (std::vector<int>{2, 2}));
}

TEST(Scheduler, DegreeOneTrivial) {
  std::vector<int> Degrees = scheduleTimeBlocks(7, 1);
  EXPECT_EQ(Degrees.size(), 7u);
  for (int D : Degrees)
    EXPECT_EQ(D, 1);
}

TEST(Scheduler, ZeroSteps) {
  EXPECT_TRUE(scheduleTimeBlocks(0, 4).empty());
}

TEST(Scheduler, SingleStep) {
  EXPECT_EQ(scheduleTimeBlocks(1, 8), (std::vector<int>{1}));
}

TEST(Scheduler, TwoStepsLargeBt) {
  // IT=2, bT=8: [2] has one call, parity 0 != 1 -> split into [1,1].
  EXPECT_EQ(scheduleTimeBlocks(2, 8), (std::vector<int>{1, 1}));
}

TEST(Scheduler, ZeroStepsForEveryDegree) {
  for (int BT : {1, 2, 5, 16})
    EXPECT_TRUE(scheduleTimeBlocks(0, BT).empty()) << "bT=" << BT;
}

TEST(Scheduler, TimeStepsBelowDegreeOddStaysSingleCall) {
  // IT=3 < bT=8: one call of degree 3; 1 mod 2 == 3 mod 2, no fix-up.
  EXPECT_EQ(scheduleTimeBlocks(3, 8), (std::vector<int>{3}));
  EXPECT_EQ(scheduleTimeBlocks(5, 16), (std::vector<int>{5}));
}

TEST(Scheduler, TimeStepsBelowDegreeEvenSplits) {
  // IT=6 < bT=8: the single degree-6 call has the wrong parity and must
  // split into two calls summing to 6.
  EXPECT_EQ(scheduleTimeBlocks(6, 8), (std::vector<int>{3, 3}));
  EXPECT_EQ(scheduleTimeBlocks(4, 16), (std::vector<int>{2, 2}));
}

TEST(Scheduler, ParityFixupDegradesToAllOnes) {
  // IT=3, bT=2: [2, 1] has two calls against odd IT; the only degree >= 2
  // splits, leaving every remaining degree at 1.
  EXPECT_EQ(scheduleTimeBlocks(3, 2), (std::vector<int>{1, 1, 1}));
  // IT=2, bT=2: same fix-up at the minimum size.
  EXPECT_EQ(scheduleTimeBlocks(2, 2), (std::vector<int>{1, 1}));
}

TEST(Scheduler, FixupSplitsFirstEligibleBlockOnly) {
  // IT=10, bT=4 -> [4, 4, 2] has 3 calls against even IT; the first block
  // splits into 2+2 and the tail is untouched.
  EXPECT_EQ(scheduleTimeBlocks(10, 4), (std::vector<int>{2, 2, 4, 2}));
}

/// Exhaustive invariant sweep over (IT, bT).
class SchedulerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSweep, InvariantsHoldForAllTimeStepCounts) {
  int BT = GetParam();
  for (long long IT = 0; IT <= 64; ++IT) {
    std::vector<int> Degrees = scheduleTimeBlocks(IT, BT);
    long long Sum = 0;
    for (int D : Degrees) {
      EXPECT_GE(D, 1) << "IT=" << IT << " bT=" << BT;
      EXPECT_LE(D, BT) << "IT=" << IT << " bT=" << BT;
      Sum += D;
    }
    EXPECT_EQ(Sum, IT) << "IT=" << IT << " bT=" << BT;
    EXPECT_EQ(static_cast<long long>(Degrees.size()) % 2, IT % 2)
        << "buffer parity, IT=" << IT << " bT=" << BT;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, SchedulerSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 16));
