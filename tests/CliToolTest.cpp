//===- CliToolTest.cpp - Integration tests for the an5dc driver ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the installed an5dc binary end to end: stencil detection from
/// a C file, rejection diagnostics, tuning, verification and CUDA emission.
/// The binary path is injected by CMake as AN5DC_BINARY_PATH.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

/// Runs a command, captures stdout+stderr, returns (exit code, output).
std::pair<int, std::string> runCommand(const std::string &Command) {
  std::string Full = Command + " 2>&1";
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Output;
  std::array<char, 4096> Buffer;
  while (std::fgets(Buffer.data(), Buffer.size(), Pipe))
    Output += Buffer.data();
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Output};
}

std::string an5dc() { return AN5DC_BINARY_PATH; }

std::string writeTempStencil(const std::string &Tag,
                             const std::string &Source) {
  std::string Path = ::testing::TempDir() + "/an5dc_" + Tag + ".c";
  std::ofstream Out(Path);
  Out << Source;
  return Path;
}

const char *ValidStencil =
    "for (t = 0; t < I_T; t++)\n"
    "  for (i = 1; i <= I_S2; i++)\n"
    "    for (j = 1; j <= I_S1; j++)\n"
    "      A[(t+1)%2][i][j] = 0.25f * A[t%2][i-1][j] + 0.5f * A[t%2][i][j]\n"
    "        + 0.25f * A[t%2][i+1][j];\n";

} // namespace

TEST(CliTool, ListBenchmarks) {
  auto [Code, Output] = runCommand(an5dc() + " --list-benchmarks");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("star2d1r"), std::string::npos);
  EXPECT_NE(Output.find("j3d27pt"), std::string::npos);
}

TEST(CliTool, PrintStencilFromFile) {
  std::string Path = writeTempStencil("valid", ValidStencil);
  auto [Code, Output] =
      runCommand(an5dc() + " --print-stencil " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("star"), std::string::npos);
  EXPECT_NE(Output.find("radius 1"), std::string::npos);
  EXPECT_NE(Output.find("FLOP/cell: 5"), std::string::npos);
}

TEST(CliTool, RejectsBadStencilWithDiagnostics) {
  std::string Path = writeTempStencil(
      "bad", "for (t = 0; t < I_T; t++)\n"
             "  for (i = 1; i <= I_S2; i++)\n"
             "    for (j = 1; j <= I_S1; j++)\n"
             "      A[(t+1)%2][i][j] = A[(t+1)%2][i-1][j];\n");
  auto [Code, Output] = runCommand(an5dc() + " " + Path);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("error:"), std::string::npos);
  EXPECT_NE(Output.find("data independent"), std::string::npos);
}

TEST(CliTool, VerifyManualConfig) {
  std::string Path = writeTempStencil("verify", ValidStencil);
  auto [Code, Output] = runCommand(
      an5dc() + " --bt 3 --bs 64 --hs 16 --verify " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("blocked == reference (bitwise)"),
            std::string::npos);
}

TEST(CliTool, EmitCudaWritesFiles) {
  std::string Path = writeTempStencil("emit", ValidStencil);
  std::string Dir = ::testing::TempDir() + "/an5dc_out";
  auto [Code, Output] = runCommand(an5dc() + " --bt 4 --emit-cuda " + Dir +
                                   " " + Path);
  EXPECT_EQ(Code, 0);
  std::ifstream Kernel(Dir + "/an5d_an5dc_emit_bt4.cu");
  EXPECT_TRUE(Kernel.good()) << Output;
  std::string Text((std::istreambuf_iterator<char>(Kernel)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("__global__"), std::string::npos);
}

TEST(CliTool, BenchmarkTuneAndModel) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star2d1r --tune --print-model");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("tuned: bT="), std::string::npos);
  EXPECT_NE(Output.find("simulated measurement:"), std::string::npos);
}

TEST(CliTool, ReportShowsScheduleAndRoofline) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d9pt --bt 6 --bs 256 --hs 512 --report");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("AN5D schedule report"), std::string::npos);
  EXPECT_NE(Output.find("predicted bottleneck"), std::string::npos);
  EXPECT_NE(Output.find("host schedule"), std::string::npos);
}

TEST(CliTool, SimplifyReportsFoldCounts) {
  std::string Path = writeTempStencil(
      "simplify",
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 1.0f * A[t%2][i][j] + 0.0f\n"
      "        + (0.25f + 0.25f) * A[t%2][i-1][j];\n");
  auto [Code, Output] = runCommand(
      an5dc() + " --simplify --print-stencil " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("simplify: folded"), std::string::npos);
  EXPECT_NE(Output.find("0.5"), std::string::npos)
      << "0.25+0.25 folds to 0.5";
}

TEST(CliTool, DivToMulRemovesDivision) {
  auto [Code, Output] = runCommand(
      an5dc() +
      " --benchmark j2d5pt --type double --div-to-mul --print-stencil");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("rewrote 1 division"), std::string::npos);
  EXPECT_EQ(Output.find("/ 118"), std::string::npos)
      << "the division must be gone from the printed update";
}

TEST(CliTool, UnknownBenchmarkFails) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark nosuchthing");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("unknown benchmark"), std::string::npos);
}

TEST(CliTool, InfeasibleManualConfigRejected) {
  std::string Path = writeTempStencil("infeasible", ValidStencil);
  auto [Code, Output] =
      runCommand(an5dc() + " --bt 16 --bs 16 " + Path);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("infeasible"), std::string::npos);
}
