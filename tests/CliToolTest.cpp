//===- CliToolTest.cpp - Integration tests for the an5dc driver ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the installed an5dc binary end to end: stencil detection from
/// a C file, rejection diagnostics, tuning, verification and CUDA emission.
/// The binary path is injected by CMake as AN5DC_BINARY_PATH.
///
//===----------------------------------------------------------------------===//

#include "obs/JsonLite.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace {

/// Runs a command, captures stdout+stderr, returns (exit code, output).
std::pair<int, std::string> runCommand(const std::string &Command) {
  std::string Full = Command + " 2>&1";
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Output;
  std::array<char, 4096> Buffer;
  while (std::fgets(Buffer.data(), Buffer.size(), Pipe))
    Output += Buffer.data();
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Output};
}

std::string an5dc() { return AN5DC_BINARY_PATH; }

std::string writeTempStencil(const std::string &Tag,
                             const std::string &Source) {
  std::string Path = ::testing::TempDir() + "/an5dc_" + Tag + ".c";
  std::ofstream Out(Path);
  Out << Source;
  return Path;
}

const char *ValidStencil =
    "for (t = 0; t < I_T; t++)\n"
    "  for (i = 1; i <= I_S2; i++)\n"
    "    for (j = 1; j <= I_S1; j++)\n"
    "      A[(t+1)%2][i][j] = 0.25f * A[t%2][i-1][j] + 0.5f * A[t%2][i][j]\n"
    "        + 0.25f * A[t%2][i+1][j];\n";

} // namespace

TEST(CliTool, ListBenchmarks) {
  auto [Code, Output] = runCommand(an5dc() + " --list-benchmarks");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("star2d1r"), std::string::npos);
  EXPECT_NE(Output.find("j3d27pt"), std::string::npos);
}

TEST(CliTool, PrintStencilFromFile) {
  std::string Path = writeTempStencil("valid", ValidStencil);
  auto [Code, Output] =
      runCommand(an5dc() + " --print-stencil " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("star"), std::string::npos);
  EXPECT_NE(Output.find("radius 1"), std::string::npos);
  EXPECT_NE(Output.find("FLOP/cell: 5"), std::string::npos);
}

TEST(CliTool, RejectsBadStencilWithDiagnostics) {
  std::string Path = writeTempStencil(
      "bad", "for (t = 0; t < I_T; t++)\n"
             "  for (i = 1; i <= I_S2; i++)\n"
             "    for (j = 1; j <= I_S1; j++)\n"
             "      A[(t+1)%2][i][j] = A[(t+1)%2][i-1][j];\n");
  auto [Code, Output] = runCommand(an5dc() + " " + Path);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("error:"), std::string::npos);
  EXPECT_NE(Output.find("data independent"), std::string::npos);
}

TEST(CliTool, VerifyManualConfig) {
  std::string Path = writeTempStencil("verify", ValidStencil);
  auto [Code, Output] = runCommand(
      an5dc() + " --bt 3 --bs 64 --hs 16 --verify " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("blocked == reference (bitwise)"),
            std::string::npos);
}

TEST(CliTool, EmitCudaWritesFiles) {
  std::string Path = writeTempStencil("emit", ValidStencil);
  std::string Dir = ::testing::TempDir() + "/an5dc_out";
  auto [Code, Output] = runCommand(an5dc() + " --bt 4 --emit-cuda " + Dir +
                                   " " + Path);
  EXPECT_EQ(Code, 0);
  std::ifstream Kernel(Dir + "/an5d_an5dc_emit_bt4.cu");
  EXPECT_TRUE(Kernel.good()) << Output;
  std::string Text((std::istreambuf_iterator<char>(Kernel)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("__global__"), std::string::npos);
}

TEST(CliTool, BenchmarkTuneAndModel) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star2d1r --tune --print-model");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("tuned: bT="), std::string::npos);
  EXPECT_NE(Output.find("simulated measurement:"), std::string::npos);
}

TEST(CliTool, ReportShowsScheduleAndRoofline) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d9pt --bt 6 --bs 256 --hs 512 --report");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("AN5D schedule report"), std::string::npos);
  EXPECT_NE(Output.find("predicted bottleneck"), std::string::npos);
  EXPECT_NE(Output.find("host schedule"), std::string::npos);
}

TEST(CliTool, SimplifyReportsFoldCounts) {
  std::string Path = writeTempStencil(
      "simplify",
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 1.0f * A[t%2][i][j] + 0.0f\n"
      "        + (0.25f + 0.25f) * A[t%2][i-1][j];\n");
  auto [Code, Output] = runCommand(
      an5dc() + " --simplify --print-stencil " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("simplify: folded"), std::string::npos);
  EXPECT_NE(Output.find("0.5"), std::string::npos)
      << "0.25+0.25 folds to 0.5";
}

TEST(CliTool, DivToMulRemovesDivision) {
  auto [Code, Output] = runCommand(
      an5dc() +
      " --benchmark j2d5pt --type double --div-to-mul --print-stencil");
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Output.find("rewrote 1 division"), std::string::npos);
  EXPECT_EQ(Output.find("/ 118"), std::string::npos)
      << "the division must be gone from the printed update";
}

TEST(CliTool, UnknownBenchmarkFails) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark nosuchthing");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("unknown benchmark"), std::string::npos);
}

TEST(CliTool, InfeasibleManualConfigRejected) {
  std::string Path = writeTempStencil("infeasible", ValidStencil);
  auto [Code, Output] =
      runCommand(an5dc() + " --bt 16 --bs 16 " + Path);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("infeasible"), std::string::npos);
}

TEST(CliTool, NonNumericBtRejected) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j2d5pt --bt foo");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("invalid value 'foo' for --bt"), std::string::npos);
}

TEST(CliTool, NonNumericBsEntryRejected) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j3d27pt --bs 32,zebra");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("invalid value 'zebra' for --bs"),
            std::string::npos);
}

TEST(CliTool, ZeroBtRejected) {
  // atoi would have turned this into 0 and silently fallen back.
  auto [Code, Output] = runCommand(an5dc() + " --benchmark j2d5pt --bt 0");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("for --bt"), std::string::npos);
}

TEST(CliTool, NegativeHsRejected) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j2d5pt --hs -3");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("invalid value '-3' for --hs"), std::string::npos);
}

TEST(CliTool, NonNumericTuneTopkRejected) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j2d5pt --tune --tune-topk many");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("for --tune-topk"), std::string::npos);
}

TEST(CliTool, UnknownMeasureSourceRejected) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --tune --measure quantum");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("unknown measurement source"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Native runtime flags
//===----------------------------------------------------------------------===//

namespace {

/// A per-invocation-unique cache directory under the test temp dir, so
/// miss/hit assertions cannot be poisoned by earlier ctest runs.
std::string freshKernelCache(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "an5dc_cache_" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// The cache shared by tests that only need *a* kernel (kept warm across
/// ctest runs to keep them fast).
std::string sharedKernelCache() {
  return ::testing::TempDir() + "an5dc_cache_shared";
}

} // namespace

TEST(CliTool, EmitOmpWritesKernelLibrary) {
  std::string Dir = ::testing::TempDir() + "/an5dc_omp_out";
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --bt 2 --bs 64 --hs 0 --emit-omp " +
      Dir);
  EXPECT_EQ(Code, 0);
  std::ifstream Kernel(Dir + "/j2d5pt_omp.cpp");
  ASSERT_TRUE(Kernel.good()) << Output;
  std::string Text((std::istreambuf_iterator<char>(Kernel)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("extern \"C\""), std::string::npos);
  EXPECT_NE(Text.find("int an5d_run("), std::string::npos);
  EXPECT_NE(Text.find("#pragma omp"), std::string::npos);
}

TEST(CliTool, VerifyNativeMatchesReference) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --bt 2 --bs 32 --hs 8 --kernel-cache " +
      sharedKernelCache() + " --verify-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("native == reference (bitwise)"), std::string::npos)
      << Output;
}

TEST(CliTool, RunNativeSecondInvocationHitsCache) {
  std::string Cache = freshKernelCache("hit");
  std::string Command = an5dc() +
                        " --benchmark j2d5pt --bt 2 --bs 32 --hs 8 "
                        "--kernel-cache " +
                        Cache + " --run-native";
  auto [Code1, Output1] = runCommand(Command);
  EXPECT_EQ(Code1, 0) << Output1;
  EXPECT_NE(Output1.find("kernel cache: miss"), std::string::npos)
      << Output1;
  auto [Code2, Output2] = runCommand(Command);
  EXPECT_EQ(Code2, 0) << Output2;
  EXPECT_NE(Output2.find("kernel cache: hit"), std::string::npos)
      << Output2;
  EXPECT_NE(Output2.find("GFLOP/s"), std::string::npos);
}

TEST(CliTool, TuneWithNativeMeasurement) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --tune --measure native --tune-topk 2 "
                "--kernel-cache " +
      sharedKernelCache() + " --verify-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("tuned: bT="), std::string::npos) << Output;
  EXPECT_NE(Output.find("native"), std::string::npos);
  EXPECT_NE(Output.find("measured on host CPU"), std::string::npos);
  EXPECT_NE(Output.find("native == reference (bitwise)"), std::string::npos)
      << Output;
}

TEST(CliTool, VerifyNative1dMatchesReference) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j1d3pt --bt 3 --hs 16 --kernel-cache " +
      sharedKernelCache() + " --verify-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("native == reference (bitwise)"), std::string::npos)
      << Output;
}

TEST(CliTool, RunNative1dReportsThroughput) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j1d3pt --bt 3 --hs 16 --kernel-cache " +
      sharedKernelCache() + " --run-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("GFLOP/s"), std::string::npos) << Output;
  EXPECT_NE(Output.find("bS=-"), std::string::npos)
      << "1D configs print the pure-streaming shape";
}

TEST(CliTool, EmitOmp1dWritesKernelLibrary) {
  std::string Dir = ::testing::TempDir() + "/an5dc_omp1d_out";
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star1d1r --bt 2 --hs 32 --emit-omp " + Dir);
  EXPECT_EQ(Code, 0) << Output;
  std::ifstream Kernel(Dir + "/star1d1r_omp.cpp");
  ASSERT_TRUE(Kernel.good()) << Output;
  std::string Text((std::istreambuf_iterator<char>(Kernel)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("int an5d_run("), std::string::npos);
  EXPECT_NE(Text.find("#pragma omp"), std::string::npos);
  EXPECT_NE(Text.find("size_t pidx(long long i)"), std::string::npos)
      << "1D kernels index a single dimension";
  EXPECT_EQ(Text.find("BS1"), std::string::npos)
      << "1D kernels have no blocked dimensions";
}

TEST(CliTool, TuneWithNativeMeasurement1d) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star1d1r --tune --measure native "
                "--tune-topk 2 --measure-repeats 1 --kernel-cache " +
      sharedKernelCache() + " --verify-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("tuned: bT="), std::string::npos) << Output;
  EXPECT_NE(Output.find("measured on host CPU"), std::string::npos)
      << Output;
  EXPECT_NE(Output.find("native == reference (bitwise)"), std::string::npos)
      << Output;
  EXPECT_EQ(Output.find("simulator"), std::string::npos)
      << "1D native tuning must not fall back to the simulator";
}

TEST(CliTool, BrokenCompilerSurfacesFailureCountNotInfeasible) {
  // AN5D_CXX overrides the host compiler the native runtime shells out
  // to; a broken one must produce the failure warning with a cause, not
  // a bare "no feasible config".
  auto [Code, Output] = runCommand(
      "AN5D_CXX=/nonexistent/an5d-cxx " + an5dc() +
      " --benchmark j1d3pt --tune --measure native --tune-topk 2");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("failed to compile or run"), std::string::npos)
      << Output;
  EXPECT_NE(Output.find("not available"), std::string::npos)
      << "the warning must carry the failure cause";
}

TEST(CliTool, CudaEmissionSupports1dStencils) {
  std::string Dir = ::testing::TempDir() + "/an5dc_cuda1d_out";
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star1d1r --bt 2 --hs 32 --emit-cuda " + Dir);
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("wrote"), std::string::npos) << Output;
  std::ifstream Kernel(Dir + "/an5d_star1d1r_bt2.cu");
  ASSERT_TRUE(Kernel.good());
  std::string Source((std::istreambuf_iterator<char>(Kernel)),
                     std::istreambuf_iterator<char>());
  // 1D pure streaming: thread-per-chunk, register rings only — no tile,
  // no shared memory, no synchronization.
  EXPECT_NE(Source.find("extern \"C\" __global__"), std::string::npos);
  EXPECT_NE(Source.find("int n_chunks"), std::string::npos);
  EXPECT_EQ(Source.find("__shared__"), std::string::npos);
  EXPECT_EQ(Source.find("__syncthreads"), std::string::npos);
}

TEST(CliTool, LoopTilingBaselineStillRejectedFor1dStencils) {
  std::string Dir = ::testing::TempDir() + "/an5dc_tiling1d_out";
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark star1d1r --bt 2 --hs 32 "
                           "--emit-loop-tiling " +
                 Dir);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("loop-tiling"), std::string::npos);
}

TEST(CliTool, MeasureThreadsAppliesToRunNative) {
  // The flag is not tune-only: a standalone --run-native must pin the
  // kernel's OpenMP pool to the requested size.
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j1d3pt --bt 3 --hs 16 --measure-threads 2 "
                "--kernel-cache " +
      sharedKernelCache() + " --run-native");
  EXPECT_EQ(Code, 0) << Output;
  if (Output.find("on 1 thread(s)") != std::string::npos)
    GTEST_SKIP() << "kernel built without OpenMP (serial fallback): the "
                    "pool size cannot be observed";
  EXPECT_NE(Output.find("on 2 thread(s)"), std::string::npos) << Output;
}

TEST(CliTool, MeasureRepeatsAppliesToRunNative) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j1d3pt --bt 3 --hs 16 --measure-repeats 3 "
                "--kernel-cache " +
      sharedKernelCache() + " --run-native");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("(best of 3)"), std::string::npos) << Output;
}

TEST(CliTool, NonNumericMeasureThreadsRejected) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --tune --measure native "
                "--measure-threads many");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("invalid value 'many' for --measure-threads"),
            std::string::npos);
}

TEST(CliTool, ZeroMeasureRepeatsRejected) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --tune --measure native "
                "--measure-repeats 0");
  EXPECT_NE(Code, 0);
  EXPECT_NE(Output.find("for --measure-repeats"), std::string::npos);
}

TEST(CliTool, VerifySchedulePrintsProof) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --bt 4 --bs 128 --hs 256 "
                "--verify-schedule");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("proven safe"), std::string::npos) << Output;
  EXPECT_NE(Output.find("4 degree(s)"), std::string::npos) << Output;
}

TEST(CliTool, VerifyScheduleWorksFor1dStreaming) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star1d1r --bt 2 --hs 64 --verify-schedule");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("proven safe"), std::string::npos) << Output;
}

TEST(CliTool, LintReportsCleanGeneratedSources) {
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star3d1r --type double --bt 2 --bs 16,16 "
                "--hs 128 --lint");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("lint (kernel library"), std::string::npos)
      << Output;
  EXPECT_NE(Output.find("lint (check program"), std::string::npos)
      << Output;
  EXPECT_EQ(Output.find("lint failed"), std::string::npos) << Output;
}

TEST(CliTool, VerifyScheduleComposesWithTune) {
  // The tuned configuration must itself pass the static proof.
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark j2d5pt --tune --verify-schedule");
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("tuned:"), std::string::npos) << Output;
  EXPECT_NE(Output.find("proven safe"), std::string::npos) << Output;
}

//===----------------------------------------------------------------------===//
// --analyze: the static analysis pass report
//===----------------------------------------------------------------------===//

namespace {

/// Extracts and parses the an5d-analysis-v1 JSON line from mixed CLI
/// output (tuning chatter may precede it when --tune rides along).
std::optional<an5d::obs::JsonValue> parseAnalysisLine(
    const std::string &Output, std::string *Error = nullptr) {
  std::istringstream Lines(Output);
  std::string Line;
  while (std::getline(Lines, Line))
    if (Line.find("an5d-analysis-v1") != std::string::npos)
      return an5d::obs::parseJson(Line, Error);
  if (Error)
    *Error = "no an5d-analysis-v1 line in output";
  return std::nullopt;
}

} // namespace

TEST(CliTool, AnalyzeEmitsSchemaJsonOnStdout) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j2d5pt --analyze -");
  EXPECT_EQ(Code, 0) << Output;

  std::string Error;
  auto Parsed = an5d::obs::parseJson(Output, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error << "\n" << Output;
  ASSERT_TRUE(Parsed->isObject());
  ASSERT_NE(Parsed->find("schema"), nullptr);
  EXPECT_EQ(Parsed->find("schema")->String, "an5d-analysis-v1");
  EXPECT_EQ(Parsed->find("stencil")->String, "j2d5pt");
  EXPECT_EQ(Parsed->find("errors")->Number, 0.0);
  EXPECT_EQ(Parsed->find("warnings")->Number, 0.0);
  ASSERT_NE(Parsed->find("findings"), nullptr);
  EXPECT_TRUE(Parsed->find("findings")->isArray());
  EXPECT_TRUE(Parsed->find("findings")->Items.empty());

  const an5d::obs::JsonValue *Resources = Parsed->find("resources");
  ASSERT_NE(Resources, nullptr);
  ASSERT_TRUE(Resources->isObject());
  EXPECT_EQ(Resources->find("valid")->Number, 1.0);
  EXPECT_GT(Resources->find("registers_per_thread")->Number, 0.0);
  EXPECT_GT(Resources->find("smem_bytes_per_block")->Number, 0.0);
  EXPECT_GT(Resources->find("arithmetic_intensity")->Number, 0.0);
  EXPECT_GE(Resources->find("load_redundancy")->Number, 1.0);
}

TEST(CliTool, AnalyzeWritesReportFile) {
  std::string Path = ::testing::TempDir() + "/an5dc_analyze_report.json";
  std::remove(Path.c_str());
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star2d2r --bt 2 --bs 128 --hs 256 --analyze " +
      Path);
  EXPECT_EQ(Code, 0) << Output;
  EXPECT_NE(Output.find("report written to"), std::string::npos) << Output;

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "report file missing: " << Path;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  auto Parsed = an5d::obs::parseJson(Buffer.str(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->find("stencil")->String, "star2d2r");
  EXPECT_EQ(Parsed->find("config")->String, "bT=2 bS=128 hS=256");
  EXPECT_EQ(Parsed->find("errors")->Number, 0.0);
}

TEST(CliTool, AnalyzeWorksOnExtractedStencilFiles) {
  std::string Path = writeTempStencil("analyze", ValidStencil);
  auto [Code, Output] =
      runCommand(an5dc() + " " + Path + " --bt 2 --bs 64 --analyze -");
  EXPECT_EQ(Code, 0) << Output;
  std::string Error;
  auto Parsed = parseAnalysisLine(Output, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error << "\n" << Output;
  EXPECT_EQ(Parsed->find("errors")->Number, 0.0);
}

TEST(CliTool, AnalyzeComposesWithTuneForEveryBuiltin) {
  // Every builtin must produce a clean analysis report at its tuned
  // configuration — including star3d4r/box3d4r, whose radius the default
  // configuration cannot host (config resolution would fail without
  // --tune).
  auto [ListCode, List] = runCommand(an5dc() + " --list-benchmarks");
  ASSERT_EQ(ListCode, 0);
  std::istringstream Names(List);
  std::string Name;
  int Checked = 0;
  while (std::getline(Names, Name)) {
    if (Name.empty())
      continue;
    auto [Code, Output] =
        runCommand(an5dc() + " --benchmark " + Name + " --tune --analyze -");
    EXPECT_EQ(Code, 0) << Name << ": " << Output;
    std::string Error;
    auto Parsed = parseAnalysisLine(Output, &Error);
    ASSERT_TRUE(Parsed.has_value()) << Name << ": " << Error << "\n" << Output;
    EXPECT_EQ(Parsed->find("stencil")->String, Name);
    EXPECT_EQ(Parsed->find("errors")->Number, 0.0) << Name << ": " << Output;
    ++Checked;
  }
  EXPECT_EQ(Checked, 30) << "builtin roster changed; update this count";
}

TEST(CliTool, MissingAnalyzeValueRejected) {
  auto [Code, Output] =
      runCommand(an5dc() + " --benchmark j2d5pt --analyze");
  EXPECT_EQ(Code, 2) << Output;
  EXPECT_NE(Output.find("missing value for --analyze"), std::string::npos)
      << Output;
}

TEST(CliTool, UnwritableAnalyzePathFails) {
  auto [Code, Output] = runCommand(
      an5dc() +
      " --benchmark j2d5pt --analyze /nonexistent_an5d_dir/report.json");
  EXPECT_EQ(Code, 1) << Output;
  EXPECT_NE(Output.find("cannot write"), std::string::npos) << Output;
}

TEST(CliTool, InfeasibleConfigFailsBeforeAnalyze) {
  // Config resolution precedes analysis: the report must not be produced
  // for a configuration the block-shape feasibility check refuses.
  auto [Code, Output] = runCommand(
      an5dc() + " --benchmark star3d4r --analyze -");
  EXPECT_EQ(Code, 1) << Output;
  EXPECT_EQ(Output.find("an5d-analysis-v1"), std::string::npos) << Output;
  EXPECT_NE(Output.find("infeasible"), std::string::npos) << Output;
}
