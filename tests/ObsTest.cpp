//===- ObsTest.cpp - Observability subsystem tests ----------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises src/obs/ end to end:
///
///  * trace spans: disabled fast path records nothing, nesting order in
///    the export, attribute capture, thread-safety under a std::thread
///    fan-out, byte-deterministic output with an injected clock;
///  * the Chrome trace-event export parses back as valid JSON with the
///    shape Perfetto expects;
///  * MetricsRegistry counters/gauges/histograms, the JSON export, and
///    the glossary (every name a scripted tune registers is known);
///  * metrics exactness against a scripted native tune: a cold cache
///    records exactly one miss per unique kernel and a warm rerun records
///    exactly one hit per unique kernel, failure counters mirror
///    TuneOutcome, and the traced (chunked) native run stays bit-exact
///    with the reference executor;
///  * the MeasureFailureKind label/metric-name renderers.
///
/// The trace recorder and metrics registry are process-global: every test
/// that touches them clears/resets first and restores the disabled state
/// on exit, so tests stay order-independent.
///
//===----------------------------------------------------------------------===//

#include "obs/JsonLite.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/NativeExecutor.h"
#include "runtime/NativeMeasurement.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace an5d;

namespace {

/// Same directory scheme as NativeRuntimeTest, so kernels this suite
/// compiles are shared with (and reused from) the rest of the test runs.
std::string sharedCacheDir() {
  return ::testing::TempDir() + "an5d-native-test-cache";
}

std::string freshCacheDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "an5d-obs-fresh-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

NativeRuntimeOptions fastBuildOptions(const std::string &CacheDir) {
  NativeRuntimeOptions Options;
  Options.CacheDir = CacheDir;
  Options.ExtraCompileFlags = {"-O1"};
  return Options;
}

/// Enables span recording on a clean buffer for one test and restores the
/// global disabled/default-clock state on scope exit.
struct TracingOn {
  TracingOn() {
    obs::TraceRecorder::global().clear();
    obs::TraceRecorder::global().enable();
  }
  ~TracingOn() {
    obs::TraceRecorder::global().disable();
    obs::TraceRecorder::global().setClock(nullptr);
    obs::TraceRecorder::global().clear();
  }
};

/// Deterministic test clock: every read returns the next multiple of
/// 1000ns, so span begin/end timestamps are fully scripted.
std::atomic<long long> FakeClockTicks{0};
long long fakeClock() {
  return FakeClockTicks.fetch_add(1, std::memory_order_relaxed) * 1000;
}

//===----------------------------------------------------------------------===//
// Trace spans
//===----------------------------------------------------------------------===//

TEST(TraceSpanTest, DisabledSpanRecordsNothing) {
  obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
  Recorder.disable();
  Recorder.clear();
  {
    AN5D_TRACE_SPAN("never.recorded");
    obs::TraceSpan Span("also.never", {{"key", "value"}});
    EXPECT_FALSE(Span.active());
    Span.attr("ignored", "ignored"); // must be a safe no-op
  }
  EXPECT_TRUE(Recorder.snapshot().empty());
}

TEST(TraceSpanTest, NestedSpansExportInTreeOrder) {
  TracingOn Guard;
  obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
  FakeClockTicks.store(0);
  Recorder.setClock(&fakeClock);
  {
    obs::TraceSpan Outer("outer");             // begins at t=0us
    ASSERT_TRUE(Outer.active());
    {
      obs::TraceSpan Middle("middle");         // begins at t=1us
      { AN5D_TRACE_SPAN("inner"); }            // t=2us .. t=3us
    }                                          // middle ends at t=4us
    Outer.attr("k", "v");
  }                                            // outer ends at t=5us

  std::vector<obs::SpanRecord> Spans = Recorder.snapshot();
  ASSERT_EQ(Spans.size(), 3u);
  // Sorted parent-before-child: outer (start 0) < middle (1) < inner (2),
  // all on one thread.
  EXPECT_EQ(Spans[0].Name, "outer");
  EXPECT_EQ(Spans[1].Name, "middle");
  EXPECT_EQ(Spans[2].Name, "inner");
  EXPECT_EQ(Spans[0].StartNs, 0);
  EXPECT_EQ(Spans[0].DurationNs, 5000);
  EXPECT_EQ(Spans[1].StartNs, 1000);
  EXPECT_EQ(Spans[1].DurationNs, 3000);
  EXPECT_EQ(Spans[2].StartNs, 2000);
  EXPECT_EQ(Spans[2].DurationNs, 1000);
  EXPECT_EQ(Spans[0].ThreadId, Spans[1].ThreadId);
  // Timestamp containment — what Perfetto nests by.
  EXPECT_LE(Spans[0].StartNs, Spans[1].StartNs);
  EXPECT_GE(Spans[0].StartNs + Spans[0].DurationNs,
            Spans[1].StartNs + Spans[1].DurationNs);
  ASSERT_EQ(Spans[0].Attrs.size(), 1u);
  EXPECT_EQ(Spans[0].Attrs[0].Key, "k");
  EXPECT_EQ(Spans[0].Attrs[0].Value, "v");
}

TEST(TraceSpanTest, InjectedClockMakesExportDeterministic) {
  TracingOn Guard;
  obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
  FakeClockTicks.store(0);
  Recorder.setClock(&fakeClock);
  { AN5D_TRACE_SPAN("a"); }
  { obs::TraceSpan Span("b", {{"x", "1"}}); }

  std::string First = Recorder.toChromeTraceJson();
  std::string Second = Recorder.toChromeTraceJson();
  EXPECT_EQ(First, Second) << "export of a fixed buffer must be stable";

  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(First, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const obs::JsonValue *Events = Doc->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->Items.size(), 2u);
  const obs::JsonValue &A = Events->Items[0];
  EXPECT_EQ(A.find("name")->String, "a");
  EXPECT_EQ(A.find("ph")->String, "X");
  EXPECT_EQ(A.find("ts")->Number, 0.0);    // t=0 in microseconds
  EXPECT_EQ(A.find("dur")->Number, 1.0);   // one 1000ns tick
  const obs::JsonValue &B = Events->Items[1];
  EXPECT_EQ(B.find("ts")->Number, 2.0);
  ASSERT_NE(B.find("args"), nullptr);
  EXPECT_EQ(B.find("args")->find("x")->String, "1");
}

TEST(TraceSpanTest, ConcurrentRecordingFromManyThreads) {
  TracingOn Guard;
  obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
  constexpr int NumThreads = 8;
  constexpr int SpansPerThread = 50;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < SpansPerThread; ++I) {
        obs::TraceSpan Span("worker.span");
        Span.attr("i", std::to_string(I));
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();

  std::vector<obs::SpanRecord> Spans = Recorder.snapshot();
  ASSERT_EQ(Spans.size(),
            static_cast<std::size_t>(NumThreads) * SpansPerThread);
  std::vector<unsigned> Tids;
  for (const obs::SpanRecord &Span : Spans)
    Tids.push_back(Span.ThreadId);
  std::sort(Tids.begin(), Tids.end());
  Tids.erase(std::unique(Tids.begin(), Tids.end()), Tids.end());
  EXPECT_EQ(Tids.size(), static_cast<std::size_t>(NumThreads));

  std::map<std::string, obs::SpanAggregate> Aggregates =
      Recorder.aggregate();
  ASSERT_EQ(Aggregates.count("worker.span"), 1u);
  EXPECT_EQ(Aggregates["worker.span"].Count,
            static_cast<std::size_t>(NumThreads) * SpansPerThread);
  EXPECT_NE(Recorder.summaryTable().find("worker.span"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JsonLite
//===----------------------------------------------------------------------===//

TEST(JsonLiteTest, ParsesScalarsContainersAndEscapes) {
  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(
      R"({"s":"a\"b\\c\nA","n":-2.5e2,"b":true,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":false}})",
      &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->find("s")->String, "a\"b\\c\nA");
  EXPECT_EQ(Doc->find("n")->Number, -250.0);
  EXPECT_TRUE(Doc->find("b")->Bool);
  EXPECT_TRUE(Doc->find("z")->isNull());
  ASSERT_EQ(Doc->find("arr")->Items.size(), 3u);
  EXPECT_EQ(Doc->find("arr")->Items[2].Number, 3.0);
  EXPECT_FALSE(Doc->find("obj")->find("k")->Bool);
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonLiteTest, RejectsMalformedDocuments) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"k\":}", "\"unterminated", "{\"a\":1} trailing",
        "nul", "\"bad \\q escape\""}) {
    std::string Error;
    EXPECT_FALSE(obs::parseJson(Bad, &Error).has_value())
        << "accepted malformed input: " << Bad;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(JsonLiteTest, EscapedStringsRoundTrip) {
  const std::string Nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  std::string Encoded;
  obs::appendJsonString(Encoded, Nasty);
  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(Encoded, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->String, Nasty);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CountersGaugesAndHistograms) {
  obs::MetricsRegistry Registry;
  Registry.counter("c").add();
  Registry.counter("c").add(4);
  EXPECT_EQ(Registry.counterValue("c"), 5);
  EXPECT_EQ(Registry.counterValue("unregistered"), 0);

  Registry.gauge("g").set(17);
  Registry.gauge("g").set(3);
  EXPECT_EQ(Registry.gaugeValue("g"), 3);

  obs::Histogram &H = Registry.histogram("h", {1.0, 2.0});
  H.observe(0.5);
  H.observe(1.0); // on the bound: counts as <= 1.0
  H.observe(1.5);
  H.observe(10.0);
  EXPECT_EQ(H.count(), 4);
  EXPECT_DOUBLE_EQ(H.sum(), 13.0);
  EXPECT_EQ(H.bucketCount(0), 2);
  EXPECT_EQ(H.bucketCount(1), 1);
  EXPECT_EQ(H.bucketCount(2), 1); // overflow
  EXPECT_EQ(H.bucketCount(99), 0);

  std::vector<std::string> Names = Registry.registeredNames();
  EXPECT_EQ(Names, (std::vector<std::string>{"c", "g", "h"}));

  Registry.reset();
  EXPECT_EQ(Registry.counterValue("c"), 0);
  EXPECT_EQ(H.count(), 0);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
}

TEST(MetricsTest, ConcurrentCounterAndHistogramUpdatesAreExact) {
  obs::MetricsRegistry Registry;
  obs::Counter &C = Registry.counter("hits");
  obs::Histogram &H = Registry.histogram("h", {0.5});
  constexpr int NumThreads = 8;
  constexpr int PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        C.add();
        H.observe(0.25);
      }
    });
  for (std::thread &Thread : Threads)
    Thread.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
  EXPECT_EQ(H.count(), NumThreads * PerThread);
  // The CAS-loop double sum must not lose updates.
  EXPECT_DOUBLE_EQ(H.sum(), 0.25 * NumThreads * PerThread);
  EXPECT_EQ(H.bucketCount(0), NumThreads * PerThread);
}

TEST(MetricsTest, JsonExportParsesBackWithExactValues) {
  obs::MetricsRegistry Registry;
  Registry.counter("kernel_cache.hits").add(7);
  Registry.gauge("sweep.queue_depth").set(2);
  Registry.histogram("measure.run_seconds", {0.1, 1.0}).observe(0.05);

  std::string Error;
  std::optional<obs::JsonValue> Doc =
      obs::parseJson(Registry.toJson(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  EXPECT_EQ(Doc->find("counters")->find("kernel_cache.hits")->Number, 7.0);
  EXPECT_EQ(Doc->find("gauges")->find("sweep.queue_depth")->Number, 2.0);
  const obs::JsonValue *H =
      Doc->find("histograms")->find("measure.run_seconds");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->find("count")->Number, 1.0);
  ASSERT_EQ(H->find("buckets")->Items.size(), 3u);
  EXPECT_EQ(H->find("buckets")->Items[0].find("count")->Number, 1.0);
  EXPECT_EQ(H->find("buckets")->Items[2].find("le")->String, "+inf");
  EXPECT_EQ(Doc->find("spans"), nullptr)
      << "no spans section unless a recorder is passed";
}

TEST(MetricsTest, JsonExportIncludesSpanAggregatesWhenAsked) {
  TracingOn Guard;
  FakeClockTicks.store(0);
  obs::TraceRecorder::global().setClock(&fakeClock);
  { AN5D_TRACE_SPAN("phase.one"); }

  obs::MetricsRegistry Registry;
  std::string Error;
  std::optional<obs::JsonValue> Doc = obs::parseJson(
      Registry.toJson(&obs::TraceRecorder::global()), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const obs::JsonValue *Spans = Doc->find("spans");
  ASSERT_NE(Spans, nullptr);
  const obs::JsonValue *Phase = Spans->find("phase.one");
  ASSERT_NE(Phase, nullptr);
  EXPECT_EQ(Phase->find("count")->Number, 1.0);
  EXPECT_EQ(Phase->find("total_ms")->Number, 0.001); // one 1000ns tick
}

TEST(MetricsTest, FailureKindRenderersMatchTheGlossary) {
  EXPECT_STREQ(measureFailureKindLabel(MeasureFailureKind::None), "");
  EXPECT_STREQ(measureFailureKindLabel(MeasureFailureKind::VerifierRejected),
               "verifier_rejected");
  EXPECT_STREQ(measureFailureKindLabel(MeasureFailureKind::BuildFailed),
               "build_failed");
  EXPECT_STREQ(measureFailureKindLabel(MeasureFailureKind::NeverBuilt),
               "never_built");
  EXPECT_STREQ(measureFailureKindLabel(MeasureFailureKind::RunRejected),
               "run_rejected");
  EXPECT_EQ(measureFailureMetricName(MeasureFailureKind::None), "");

  const std::vector<std::string> &Known = obs::knownMetricNames();
  EXPECT_TRUE(std::is_sorted(Known.begin(), Known.end()));
  for (MeasureFailureKind Kind :
       {MeasureFailureKind::VerifierRejected, MeasureFailureKind::BuildFailed,
        MeasureFailureKind::NeverBuilt, MeasureFailureKind::RunRejected})
    EXPECT_NE(std::find(Known.begin(), Known.end(),
                        measureFailureMetricName(Kind)),
              Known.end())
        << "glossary lacks " << measureFailureMetricName(Kind);
}

//===----------------------------------------------------------------------===//
// Metrics exactness against a scripted native tune
//===----------------------------------------------------------------------===//

TuneOptions nativeTuneOptions(const std::string &CacheDir) {
  TuneOptions Options;
  Options.Backend = MeasurementBackend::Native;
  Options.TopK = 2;
  Options.Native.Repeats = 1;
  Options.Native.Runtime = fastBuildOptions(CacheDir);
  return Options;
}

long long sumOfFailureCounters(const obs::MetricsRegistry &Registry) {
  long long Sum = 0;
  for (MeasureFailureKind Kind :
       {MeasureFailureKind::VerifierRejected, MeasureFailureKind::BuildFailed,
        MeasureFailureKind::NeverBuilt, MeasureFailureKind::RunRejected})
    Sum += Registry.counterValue(measureFailureMetricName(Kind));
  return Sum;
}

TEST(MetricsTuneTest, ColdThenWarmCacheCountsExactly) {
  std::unique_ptr<StencilProgram> Program =
      makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  std::string CacheDir = freshCacheDir("tune-metrics");
  TuneOptions Options = nativeTuneOptions(CacheDir);
  ProblemSize Problem = nativeMeasurementProblem(Program->numDims());
  Problem.Extents = {96, 96};
  Problem.TimeSteps = 4;
  obs::MetricsRegistry &Registry = obs::MetricsRegistry::global();
  Tuner T(GpuSpec::teslaV100());

  // Cold cache: every unique candidate kernel compiles exactly once.
  Registry.reset();
  TuneOutcome Cold = T.tune(*Program, Problem, Options);
  ASSERT_TRUE(Cold.Feasible);
  EXPECT_EQ(Cold.MeasurementFailures, 0u);
  EXPECT_EQ(Cold.FirstFailureKind, MeasureFailureKind::None);
  EXPECT_EQ(Registry.counterValue("kernel_cache.misses"), 2);
  EXPECT_EQ(Registry.counterValue("kernel_cache.hits"), 0);
  EXPECT_EQ(Registry.counterValue("tuner.tunes"), 1);
  EXPECT_EQ(Registry.counterValue("tuner.candidates_ranked"), 2);
  EXPECT_EQ(Registry.counterValue("sweep.candidates"), 2);
  EXPECT_EQ(Registry.counterValue("measure.warmups"), 2);
  EXPECT_EQ(Registry.counterValue("measure.repeats"), 2);
  EXPECT_EQ(Registry.counterValue("tuner.verifier_rejections"),
            static_cast<long long>(Cold.VerifierRejections));
  EXPECT_EQ(sumOfFailureCounters(Registry),
            static_cast<long long>(Cold.MeasurementFailures));

  // Warm rerun: same kernels, all served from the cache — one hit each,
  // zero misses, and the measurement counters repeat identically.
  Registry.reset();
  TuneOutcome Warm = T.tune(*Program, Problem, Options);
  ASSERT_TRUE(Warm.Feasible);
  EXPECT_EQ(Registry.counterValue("kernel_cache.hits"), 2);
  EXPECT_EQ(Registry.counterValue("kernel_cache.misses"), 0);
  EXPECT_EQ(Registry.counterValue("measure.warmups"), 2);
  // No assertion on Warm.Best vs Cold.Best: the tuner ranks on measured
  // wall-clock, so near-tied candidates may legitimately flip between runs.

  // Everything the tune registered is in the glossary (the drift guard
  // enforces the same over the an5dc export in CI).
  const std::vector<std::string> &Known = obs::knownMetricNames();
  for (const std::string &Name : Registry.registeredNames())
    EXPECT_NE(std::find(Known.begin(), Known.end(), Name), Known.end())
        << "unknown metric registered: " << Name;
}

//===----------------------------------------------------------------------===//
// Traced native runs stay bit-exact
//===----------------------------------------------------------------------===//

TEST(TracedRunTest, ChunkedTracedRunMatchesReferenceBitwise) {
  std::unique_ptr<StencilProgram> Program =
      makeBenchmarkStencil("star2d1r", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {12};
  Config.HS = 7;
  NativeExecutor Executor(*Program, Config,
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();
  EXPECT_EQ(Executor.blockTime(), 2);

  // 9 steps with bT=2 forces the traced path to chunk (4 full temporal
  // blocks plus a remainder) and to land the result in Buffers[9 % 2].
  constexpr long long Steps = 9;
  std::vector<long long> Extents = {23, 19};
  Grid<float> Ref0(Extents, Program->radius()),
      Ref1(Extents, Program->radius());
  fillGridDeterministic(Ref0, 33);
  copyGrid(Ref0, Ref1);
  Grid<float> Nat0 = Ref0, Nat1 = Ref0;
  referenceRun<float>(*Program, {&Ref0, &Ref1}, Steps);

  TracingOn Guard;
  Executor.run<float>({&Nat0, &Nat1}, Steps);
  EXPECT_EQ(Ref1.raw(), Nat1.raw())
      << "per-temporal-block chunking changed the numbers";

  // The traced run left one whole-run span and one span per chunk.
  std::map<std::string, obs::SpanAggregate> Aggregates =
      obs::TraceRecorder::global().aggregate();
  ASSERT_EQ(Aggregates.count("native.run"), 1u);
  EXPECT_EQ(Aggregates["native.run"].Count, 1u);
  ASSERT_EQ(Aggregates.count("native.block"), 1u);
  EXPECT_EQ(Aggregates["native.block"].Count, 5u); // ceil(9 / bT=2)
}

} // namespace
