//===- ParserTest.cpp - Unit tests for the parser -----------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;
using namespace an5d::ast;

namespace {

StmtNode parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  StmtNode Root = P.parseProgram();
  EXPECT_TRUE(Root != nullptr) << Diags.toString();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Root;
}

void parseFails(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  StmtNode Root = P.parseProgram();
  EXPECT_TRUE(Root == nullptr || Diags.hasErrors())
      << "expected a parse failure";
}

} // namespace

TEST(Parser, Fig4ParsesCompletely) {
  StmtNode Root = parseOk(j2d5ptSource());
  const auto *TimeLoop = ast_dyn_cast<ForStmt>(Root.get());
  ASSERT_NE(TimeLoop, nullptr);
  EXPECT_EQ(TimeLoop->loopVar(), "t");
  EXPECT_FALSE(TimeLoop->isInclusiveUpper());
  EXPECT_EQ(TimeLoop->upperBound().toString(), "I_T");

  const auto *StreamLoop = ast_dyn_cast<ForStmt>(&TimeLoop->body());
  ASSERT_NE(StreamLoop, nullptr);
  EXPECT_EQ(StreamLoop->loopVar(), "i");
  EXPECT_TRUE(StreamLoop->isInclusiveUpper());

  const auto *InnerLoop = ast_dyn_cast<ForStmt>(&StreamLoop->body());
  ASSERT_NE(InnerLoop, nullptr);
  const auto *Assign = ast_dyn_cast<AssignStmt>(&InnerLoop->body());
  ASSERT_NE(Assign, nullptr);
  EXPECT_EQ(ast_cast<ArrayRefExpr>(Assign->lhs()).base(), "A");
  EXPECT_EQ(ast_cast<ArrayRefExpr>(Assign->lhs()).indices().size(), 3u);
}

TEST(Parser, StepForms) {
  parseOk("for (t = 0; t < 4; t++) for (i = 0; i < 4; ++i) "
          "for (j = 0; j < 4; j += 1) A[(t+1)%2][i][j] = A[t%2][i][j];");
  parseOk("for (t = 0; t < 4; t = t + 1) for (i = 0; i < 4; i++) "
          "for (j = 0; j < 4; j++) A[(t+1)%2][i][j] = A[t%2][i][j];");
}

TEST(Parser, RejectsNonUnitStride) {
  parseFails("for (t = 0; t < 4; t += 2) for (i = 0; i < 4; i++) "
             "for (j = 0; j < 4; j++) A[(t+1)%2][i][j] = A[t%2][i][j];");
}

TEST(Parser, RejectsWrongConditionVariable) {
  parseFails("for (t = 0; x < 4; t++) A[(t+1)%2][0][0] = 1;");
}

TEST(Parser, RejectsGreaterThanCondition) {
  parseFails("for (t = 4; t = 0; t++) A[1][0][0] = 1;");
}

TEST(Parser, RejectsTrailingTokens) {
  parseFails("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
             "for (j = 0; j < 4; j++) A[(t+1)%2][i][j] = A[t%2][i][j]; "
             "extra_tokens");
}

TEST(Parser, BracedBodies) {
  StmtNode Root = parseOk(
      "for (t = 0; t < 4; t++) { for (i = 0; i < 4; i++) { "
      "for (j = 0; j < 4; j++) { A[(t+1)%2][i][j] = A[t%2][i][j]; } } }");
  const auto *TimeLoop = ast_dyn_cast<ForStmt>(Root.get());
  ASSERT_NE(TimeLoop, nullptr);
  EXPECT_EQ(TimeLoop->body().kind(), Stmt::Kind::Compound);
}

TEST(Parser, IntDeclarationInInit) {
  parseOk("for (int t = 0; t < 4; t++) for (int i = 0; i < 4; i++) "
          "for (int j = 0; j < 4; j++) A[(t+1)%2][i][j] = A[t%2][i][j];");
}

TEST(Parser, ExpressionPrecedence) {
  StmtNode Root =
      parseOk("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
              "for (j = 0; j < 4; j++) "
              "A[(t+1)%2][i][j] = 1 + 2 * A[t%2][i][j];");
  // Walk to the assignment.
  const Stmt *S = Root.get();
  while (const auto *Loop = ast_dyn_cast<ForStmt>(S))
    S = &Loop->body();
  const auto *Assign = ast_dyn_cast<AssignStmt>(S);
  ASSERT_NE(Assign, nullptr);
  const auto *Add = ast_dyn_cast<BinaryOpExpr>(&Assign->rhs());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinOp::Add);
  const auto *Mul = ast_dyn_cast<BinaryOpExpr>(&Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinOp::Mul);
}

TEST(Parser, UnaryMinus) {
  StmtNode Root =
      parseOk("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
              "for (j = 0; j < 4; j++) "
              "A[(t+1)%2][i][j] = -A[t%2][i][j];");
  const Stmt *S = Root.get();
  while (const auto *Loop = ast_dyn_cast<ForStmt>(S))
    S = &Loop->body();
  const auto *Assign = ast_dyn_cast<AssignStmt>(S);
  ASSERT_NE(Assign, nullptr);
  EXPECT_EQ(Assign->rhs().kind(), Expr::Kind::Unary);
}

TEST(Parser, CallExpressions) {
  parseOk("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
          "for (j = 0; j < 4; j++) "
          "A[(t+1)%2][i][j] = sqrtf(A[t%2][i][j]);");
}

TEST(Parser, RejectsAssignmentToScalar) {
  parseFails("for (t = 0; t < 4; t++) x = 1;");
}

TEST(Parser, RejectsMissingSemicolon) {
  parseFails("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
             "for (j = 0; j < 4; j++) A[(t+1)%2][i][j] = A[t%2][i][j]");
}

TEST(Parser, RejectsUnbalancedParens) {
  parseFails("for (t = 0; t < 4; t++) for (i = 0; i < 4; i++) "
             "for (j = 0; j < 4; j++) A[(t+1)%2][i][j] = (1 + 2;");
}

TEST(Parser, AstPrinterRoundTrip) {
  StmtNode Root = parseOk(j2d5ptSource());
  const Stmt *S = Root.get();
  while (const auto *Loop = ast_dyn_cast<ForStmt>(S))
    S = &Loop->body();
  const auto *Assign = ast_dyn_cast<AssignStmt>(S);
  ASSERT_NE(Assign, nullptr);
  std::string Text = Assign->rhs().toString();
  EXPECT_NE(Text.find("5.1f"), std::string::npos);
  EXPECT_NE(Text.find("/ 118"), std::string::npos);
  EXPECT_FALSE(Text.empty());
}
