//===- AnalysisPassTest.cpp - Static dataflow pass framework -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The static analysis pipeline in three layers:
///
///  - framework: finding rendering (string / diagnostic / JSON), report
///    aggregation, pass manager wiring and its obs metrics;
///  - soundness: every builtin stencil, at every enumerated feasible
///    configuration, lowers to a tape and schedule the passes prove clean;
///  - completeness: mutation tests corrupt exactly one fact of a known-good
///    tape or schedule and assert the one finding ID that must catch it,
///    plus fixed-seed fuzzing over random DSL programs and random tape
///    corruptions (never crash; structured findings or success only).
///
//===----------------------------------------------------------------------===//

#include "analysis/passes/AccessBoundsProver.h"
#include "analysis/passes/AnalysisPass.h"
#include "analysis/passes/ResourceEstimator.h"
#include "analysis/passes/TapeVerifier.h"
#include "frontend/StencilExtractor.h"
#include "model/PerformanceModel.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "obs/JsonLite.h"
#include "obs/Metrics.h"
#include "schedule/ScheduleIR.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

using namespace an5d;

namespace {

TapeFacts factsOf(const StencilProgram &Program) {
  return TapeFacts::of(Program.plan(), Program);
}

/// j2d5pt at bT=2 bS=64: the canonical known-good schedule the mutation
/// tests corrupt one field at a time.
struct GoodSchedule {
  std::unique_ptr<StencilProgram> Program;
  ScheduleIR IR;

  explicit GoodSchedule(long long HS = 0) {
    Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
    BlockConfig Config;
    Config.BT = 2;
    Config.BS = {64};
    Config.HS = HS;
    IR = lowerSchedule(*Program, Config);
  }

  AnalysisReport prove() const {
    return proveAccessBounds(IR, Program->radius());
  }

  /// Shared invariants must change on the IR and every invocation in
  /// lockstep, or AN5D-A210 (structural disagreement) fires instead of
  /// the invariant check under test.
  template <typename Fn> void mutateShared(Fn &&Mutate) {
    Mutate(IR.GridHalo, IR.RingDepth, IR.Radius, IR.HaloPolicy);
    for (InvocationSchedule &Inv : IR.Invocations)
      Mutate(Inv.GridHalo, Inv.RingDepth, Inv.Radius, Inv.HaloPolicy);
  }
};

std::vector<std::string> allBuiltinNames() {
  std::vector<std::string> Names = benchmarkStencilNames();
  for (const std::string &Name : extraStencilNames())
    Names.push_back(Name);
  return Names;
}

} // namespace

//===----------------------------------------------------------------------===//
// Framework: findings, reports, pass manager
//===----------------------------------------------------------------------===//

TEST(AnalysisFramework, FindingRendersStably) {
  AnalysisFinding F;
  F.Id = "AN5D-A101";
  F.Severity = FindingSeverity::Error;
  F.Pass = "tape-verifier";
  F.Subject = "op 3 Add";
  F.Message = "stack underflow";
  EXPECT_EQ(F.toString(),
            "[AN5D-A101][error] tape-verifier: stack underflow (op 3 Add)");

  Diagnostic D = F.toDiagnostic();
  EXPECT_EQ(D.Kind, DiagnosticKind::Error);
  EXPECT_EQ(D.Message, "[AN5D-A101] stack underflow (op 3 Add)");

  F.Severity = FindingSeverity::Warn;
  EXPECT_EQ(F.toDiagnostic().Kind, DiagnosticKind::Warning);
  F.Severity = FindingSeverity::Info;
  EXPECT_EQ(F.toDiagnostic().Kind, DiagnosticKind::Note);
}

TEST(AnalysisFramework, SeverityNames) {
  EXPECT_STREQ(findingSeverityName(FindingSeverity::Error), "error");
  EXPECT_STREQ(findingSeverityName(FindingSeverity::Warn), "warn");
  EXPECT_STREQ(findingSeverityName(FindingSeverity::Info), "info");
}

TEST(AnalysisFramework, ReportAggregates) {
  AnalysisReport Report;
  EXPECT_TRUE(Report.proven());
  EXPECT_EQ(Report.toString(), "analysis clean\n");

  AnalysisFinding E;
  E.Id = "AN5D-A201";
  E.Severity = FindingSeverity::Error;
  Report.Findings.push_back(E);
  AnalysisFinding W = E;
  W.Id = "AN5D-A209";
  W.Severity = FindingSeverity::Warn;
  Report.Findings.push_back(W);

  EXPECT_EQ(Report.errorCount(), 1u);
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Warn), 1u);
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Info), 0u);
  EXPECT_FALSE(Report.proven());
  EXPECT_TRUE(Report.hasFinding("AN5D-A201"));
  EXPECT_TRUE(Report.hasFinding("AN5D-A209"));
  EXPECT_FALSE(Report.hasFinding("AN5D-A101"));

  DiagnosticEngine Diags;
  Report.render(Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
}

TEST(AnalysisFramework, ReportJsonRoundTrips) {
  AnalysisReport Report;
  AnalysisFinding F;
  F.Id = "AN5D-A207";
  F.Severity = FindingSeverity::Error;
  F.Pass = "access-bounds";
  F.Subject = "degree 2 tier 1 axis 0";
  F.Message = "ring lane overflow with \"quotes\" and\nnewline";
  Report.Findings.push_back(F);
  F.Id = "AN5D-A302";
  F.Severity = FindingSeverity::Info;
  Report.Findings.push_back(F);

  std::string Error;
  std::optional<obs::JsonValue> Parsed = obs::parseJson(Report.toJson(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  ASSERT_TRUE(Parsed->isArray());
  ASSERT_EQ(Parsed->Items.size(), 2u);

  const obs::JsonValue &First = Parsed->Items[0];
  ASSERT_TRUE(First.isObject());
  ASSERT_NE(First.find("id"), nullptr);
  EXPECT_EQ(First.find("id")->String, "AN5D-A207");
  EXPECT_EQ(First.find("severity")->String, "error");
  EXPECT_EQ(First.find("pass")->String, "access-bounds");
  EXPECT_EQ(First.find("subject")->String, "degree 2 tier 1 axis 0");
  EXPECT_EQ(First.find("message")->String,
            "ring lane overflow with \"quotes\" and\nnewline");
  EXPECT_EQ(Parsed->Items[1].find("severity")->String, "info");
}

TEST(AnalysisFramework, StandardPipelineRunsAllPassesWithMetrics) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {64};
  Config.HS = 0;
  ScheduleIR IR = lowerSchedule(*Program, Config);

  AnalysisPassManager Passes = AnalysisPassManager::standardPipeline();
  EXPECT_EQ(Passes.numPasses(), 3u);

  obs::MetricsRegistry &Registry = obs::MetricsRegistry::global();
  long long RunsBefore = Registry.counterValue("analysis.pass_runs");
  long long FindingsBefore = Registry.counterValue("analysis.findings");

  AnalysisInput Input;
  Input.Program = Program.get();
  Input.Schedule = &IR;
  AnalysisReport Report = Passes.run(Input);

  EXPECT_TRUE(Report.Findings.empty()) << Report.toString();
  EXPECT_EQ(Registry.counterValue("analysis.pass_runs") - RunsBefore, 3);
  EXPECT_EQ(Registry.counterValue("analysis.findings") - FindingsBefore, 0);
}

TEST(AnalysisFramework, PlanDefaultsToProgramAndScheduleIsOptional) {
  auto Program = makeBenchmarkStencil("star2d2r", ScalarType::Float);
  AnalysisInput Input;
  Input.Program = Program.get(); // no Plan, no Schedule
  AnalysisReport Report = AnalysisPassManager::standardPipeline().run(Input);
  EXPECT_TRUE(Report.Findings.empty()) << Report.toString();
}

//===----------------------------------------------------------------------===//
// Soundness: every builtin, every enumerated feasible configuration
//===----------------------------------------------------------------------===//

TEST(AnalysisSoundness, EveryBuiltinTapeVerifies) {
  for (const std::string &Name : allBuiltinNames())
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto Program = makeBenchmarkStencil(Name, Type);
      ASSERT_NE(Program, nullptr) << Name;
      AnalysisReport Report = verifyTape(factsOf(*Program));
      EXPECT_TRUE(Report.Findings.empty())
          << Name << ": " << Report.toString();
    }
}

TEST(AnalysisSoundness, EveryEnumeratedConfigProvesClean) {
  Tuner T(GpuSpec::teslaV100());
  const AnalysisPassManager Passes = AnalysisPassManager::standardPipeline();
  std::size_t Proven = 0;
  for (const std::string &Name : allBuiltinNames()) {
    auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(Program, nullptr) << Name;
    for (const BlockConfig &Config : T.enumerateConfigs(*Program)) {
      if (!Config.isFeasible(Program->radius()))
        continue;
      ScheduleIR IR = lowerSchedule(*Program, Config);
      AnalysisInput Input;
      Input.Program = Program.get();
      Input.Schedule = &IR;
      AnalysisReport Report = Passes.run(Input);
      EXPECT_EQ(Report.errorCount(), 0u)
          << Name << " " << Config.toString() << ": " << Report.toString();
      ++Proven;
    }
  }
  // The grid is supposed to be dense; an accidentally empty sweep would
  // vacuously pass everything above.
  EXPECT_GT(Proven, 1000u);
}

//===----------------------------------------------------------------------===//
// Tape mutations: one corrupted fact, one finding ID
//===----------------------------------------------------------------------===//

TEST(TapeMutation, A101StackUnderflow) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Ops.insert(Facts.Ops.begin(), TapeOp{TapeOpKind::Add, 0});
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A101")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A102StackResidue) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Ops.push_back(TapeOp{TapeOpKind::PushConst, 0});
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A102")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A103DepthDeclaredTooSmallIsError) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.MaxStackDepth -= 1;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A103")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A103DepthDeclaredTooLargeIsWarn) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.MaxStackDepth += 1;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A103")) << Report.toString();
  EXPECT_TRUE(Report.proven()) << "loose declaration must stay advisory";
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Warn), 1u);
}

TEST(TapeMutation, A104ConstantIndexOutOfRange) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  bool Mutated = false;
  for (TapeOp &Op : Facts.Ops)
    if (!Mutated && Op.Kind == TapeOpKind::PushConst) {
      Op.Arg = static_cast<std::uint16_t>(Facts.Constants.size());
      Mutated = true;
    }
  ASSERT_TRUE(Mutated) << "expected at least one PushConst in j2d5pt";
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A104")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A105TapIndexOutOfRange) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  bool Mutated = false;
  for (TapeOp &Op : Facts.Ops)
    if (!Mutated && Op.Kind == TapeOpKind::LoadTap) {
      Op.Arg = static_cast<std::uint16_t>(Facts.Taps.size());
      Mutated = true;
    }
  ASSERT_TRUE(Mutated) << "expected at least one LoadTap in j2d5pt";
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A105")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A106MathSelectorOutsideEnum) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Ops.push_back(TapeOp{TapeOpKind::MathCall, 17});
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A106")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A107FusedOpInBasePlan) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Ops.push_back(TapeOp{TapeOpKind::MacConstTap, 0});
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A107")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A108TapArityMismatch) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  ASSERT_FALSE(Facts.Taps.empty());
  Facts.Taps[0].pop_back();
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A108")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A109TapOffsetBeyondRadius) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  ASSERT_FALSE(Facts.Taps.empty());
  Facts.Taps[0] = {0, Facts.Radius + 1};
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A109")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A110NonFiniteConstant) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  ASSERT_FALSE(Facts.Constants.empty());
  Facts.Constants[0] = std::numeric_limits<double>::quiet_NaN();
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A110")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A111DivisionByConstantZero) {
  TapeFacts Facts;
  Facts.Ops = {TapeOp{TapeOpKind::LoadTap, 0}, TapeOp{TapeOpKind::PushConst, 0},
               TapeOp{TapeOpKind::Div, 0}};
  Facts.Constants = {0.0};
  Facts.Taps = {{0, 0}};
  Facts.MaxStackDepth = 2;
  Facts.HasConstantDivision = true;
  Facts.NumDims = 2;
  Facts.Radius = 1;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A111")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A112PredicateFalseNegativeIsError) {
  TapeFacts Facts;
  Facts.Ops = {TapeOp{TapeOpKind::LoadTap, 0}, TapeOp{TapeOpKind::PushConst, 0},
               TapeOp{TapeOpKind::Div, 0}};
  Facts.Constants = {2.0};
  Facts.Taps = {{0, 0}};
  Facts.MaxStackDepth = 2;
  Facts.HasConstantDivision = false; // the lie under test
  Facts.NumDims = 2;
  Facts.Radius = 1;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A112")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(TapeMutation, A112StalePredicateIsWarn) {
  auto P = makeBenchmarkStencil("star2d1r", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  ASSERT_FALSE(Facts.HasConstantDivision)
      << "star2d1r is expected to be division-free";
  Facts.HasConstantDivision = true;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A112")) << Report.toString();
  EXPECT_TRUE(Report.proven());
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Warn), 1u);
}

TEST(TapeMutation, A113UnusedConstantIsInfo) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Constants.push_back(42.0);
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A113")) << Report.toString();
  EXPECT_TRUE(Report.proven());
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Info), 1u);
}

TEST(TapeMutation, A114UnusedTapIsWarn) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  TapeFacts Facts = factsOf(*P);
  Facts.Taps.push_back({1, 1});
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A114")) << Report.toString();
  EXPECT_TRUE(Report.proven());
  EXPECT_EQ(Report.countBySeverity(FindingSeverity::Warn), 1u);
}

TEST(TapeMutation, A115NonFiniteConstantFold) {
  TapeFacts Facts;
  Facts.Ops = {TapeOp{TapeOpKind::PushConst, 0},
               TapeOp{TapeOpKind::MathCall,
                      static_cast<std::uint16_t>(MathFn::Sqrt)}};
  Facts.Constants = {-1.0}; // sqrt(-1) folds to NaN at CompiledTape build
  Facts.MaxStackDepth = 1;
  Facts.NumDims = 1;
  Facts.Radius = 0;
  AnalysisReport Report = verifyTape(Facts);
  EXPECT_TRUE(Report.hasFinding("AN5D-A115")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

//===----------------------------------------------------------------------===//
// Schedule mutations: one corrupted invariant, one finding ID
//===----------------------------------------------------------------------===//

TEST(ScheduleMutation, BaselineIsClean) {
  GoodSchedule S;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.Findings.empty()) << Report.toString();
}

TEST(ScheduleMutation, A201StreamLoadsPastAllocation) {
  GoodSchedule S;
  S.mutateShared([](long long &GridHalo, long long &, int &,
                    ScheduleHaloPolicy &) { GridHalo += 1; });
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A201")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A202BlockedLoadsPastAllocation) {
  GoodSchedule S;
  S.mutateShared([](long long &, long long &, int &Radius,
                    ScheduleHaloPolicy &) { Radius += 1; });
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A202")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A203GridHaloBelowStreamTaps) {
  GoodSchedule S;
  S.mutateShared([](long long &GridHalo, long long &, int &,
                    ScheduleHaloPolicy &) { GridHalo = 0; });
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A203")) << Report.toString();
  EXPECT_FALSE(Report.hasFinding("AN5D-A201"))
      << "shrunk halo stays inside the allocation";
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A204RingTooShallowForLifetime) {
  GoodSchedule S;
  S.mutateShared([](long long &, long long &RingDepth, int &,
                    ScheduleHaloPolicy &) { RingDepth -= 1; });
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A204")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A205ConsumerOutrunsProducer) {
  GoodSchedule S;
  ASSERT_GE(S.IR.Invocations.size(), 2u);
  S.IR.Invocations[1].Tiers[0].StreamLag = 0;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A205")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A206RingLaneUnderflow) {
  GoodSchedule S;
  ASSERT_GE(S.IR.Invocations.size(), 2u);
  S.IR.Invocations[1].LoadSpanHalo -= 1;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A206")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A207RingLaneOverflow) {
  GoodSchedule S;
  ASSERT_GE(S.IR.Invocations.size(), 2u);
  // Tier 1 needs exactly BS lanes (halo + compute + reach + tap), so any
  // shrink of the loaded span overflows the span's last lanes.
  S.IR.Invocations[1].BS[0] -= 2;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A207")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A208StoreWiderThanCompute) {
  GoodSchedule S;
  S.IR.Invocations[0].StoreWidth[0] += 1;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A208")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(ScheduleMutation, A209ChunkStrideGapIsWarn) {
  GoodSchedule S(/*HS=*/128);
  ASSERT_GT(S.IR.Invocations[0].ChunkLength, 0);
  S.IR.Invocations[0].ChunkStride += 16;
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A209")) << Report.toString();
  EXPECT_TRUE(Report.proven()) << "tiling gaps are advisory, not unsound";
}

TEST(ScheduleMutation, A210StructurallyMalformed) {
  {
    GoodSchedule S;
    S.IR.Invocations.clear();
    AnalysisReport Report = S.prove();
    EXPECT_TRUE(Report.hasFinding("AN5D-A210")) << Report.toString();
    EXPECT_FALSE(Report.proven());
  }
  {
    GoodSchedule S;
    S.IR.Invocations[1].Tiers.pop_back();
    AnalysisReport Report = S.prove();
    EXPECT_TRUE(Report.hasFinding("AN5D-A210")) << Report.toString();
    EXPECT_FALSE(Report.proven());
  }
}

TEST(ScheduleMutation, A211HaloPolicyContradictsShape) {
  GoodSchedule S;
  S.mutateShared([](long long &, long long &, int &,
                    ScheduleHaloPolicy &Policy) {
    Policy = ScheduleHaloPolicy::PinBoundaryOnly;
  });
  AnalysisReport Report = S.prove();
  EXPECT_TRUE(Report.hasFinding("AN5D-A211")) << Report.toString();
  EXPECT_FALSE(Report.proven());
}

TEST(SymBoundProof, AffineComparisonNeedsBothTerms) {
  // E - 3 <= E for all E >= 1: coefficient diff 0, offset diff 3.
  EXPECT_TRUE(provedLE(SymBound{1, -3}, SymBound{1, 0}, 1));
  // E <= 5 is unprovable for unbounded E even though it holds at E = 1.
  EXPECT_FALSE(provedLE(SymBound{1, 0}, SymBound{0, 5}, 1));
  // 2E - 8 <= E holds at the minimum extent 1 but fails for large E.
  EXPECT_FALSE(provedLE(SymBound{2, -8}, SymBound{1, 0}, 1));
  // 0 <= E - 4 only once the schedule's minimum extent reaches 4.
  EXPECT_FALSE(provedLE(SymBound{0, 0}, SymBound{1, -4}, 1));
  EXPECT_TRUE(provedLE(SymBound{0, 0}, SymBound{1, -4}, 4));
  EXPECT_EQ((SymBound{2, -3}).value(10), 17);
}

//===----------------------------------------------------------------------===//
// Resource estimation: features and grading
//===----------------------------------------------------------------------===//

TEST(ResourceEstimation, MatchesOccupancyModels) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {128};
  Config.HS = 0;
  ResourceEstimate E = estimateResources(*P, Config);
  ASSERT_TRUE(E.Valid);
  EXPECT_EQ(E.RegistersPerThread, an5dRegistersPerThread(*P, Config.BT));
  EXPECT_EQ(E.SmemBytesPerBlock,
            an5dSmemBytesPerBlock(*P, Config.numThreads()));
  // bT=4 tiers x RingDepth 3 x 8-byte words.
  EXPECT_EQ(E.RingBytesPerThread, 96);
  EXPECT_EQ(E.RingBytesPerBlock, 96 * Config.numThreads());
  EXPECT_GT(E.TapeFlops, 0);
  EXPECT_GT(E.ArithmeticIntensity, 0.0);
  EXPECT_GE(E.LoadRedundancy, 1.0);
}

TEST(ResourceEstimation, OccupancySliceAgreesWithFullEstimate) {
  auto P = makeBenchmarkStencil("star3d2r", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {32, 32};
  Config.HS = 0;
  ResourceEstimate Full = estimateResources(*P, Config);
  ResourceEstimate Occ = estimateOccupancy(*P, Config);
  ASSERT_TRUE(Full.Valid);
  ASSERT_TRUE(Occ.Valid);
  EXPECT_EQ(Occ.RegistersPerThread, Full.RegistersPerThread);
  EXPECT_EQ(Occ.SmemBytesPerBlock, Full.SmemBytesPerBlock);
  EXPECT_EQ(Occ.RingBytesPerThread, Full.RingBytesPerThread);
  EXPECT_EQ(Occ.RingBytesPerBlock, Full.RingBytesPerBlock);
}

TEST(ResourceEstimation, ModelBreakdownCarriesTheEstimate) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {256};
  Config.HS = 0;
  ModelBreakdown Out = evaluateModel(*P, GpuSpec::teslaV100(), Config,
                                     ProblemSize::paperDefault(2));
  ASSERT_TRUE(Out.Feasible);
  ASSERT_TRUE(Out.Resources.Valid);
  EXPECT_EQ(Out.Resources.RegistersPerThread,
            an5dRegistersPerThread(*P, Config.BT));
  EXPECT_EQ(Out.Resources.SmemBytesPerBlock,
            an5dSmemBytesPerBlock(*P, Config.numThreads()));
}

TEST(ResourceEstimation, A301FiresOnRegisterOverflow) {
  // Double-precision star2d4r at bT=16: 2*16*9 + 16 + 30 = 334 registers
  // per thread, far past the 255-register ISA encoding bound.
  auto P = makeBenchmarkStencil("star2d4r", ScalarType::Double);
  BlockConfig Config;
  Config.BT = 16;
  Config.BS = {512};
  Config.HS = 0;
  ASSERT_TRUE(Config.isFeasible(P->radius()));
  ASSERT_GT(an5dRegistersPerThread(*P, Config.BT), 255);
  ScheduleIR IR = lowerSchedule(*P, Config);
  AnalysisInput Input;
  Input.Program = P.get();
  Input.Schedule = &IR;
  AnalysisReport Report = AnalysisPassManager::standardPipeline().run(Input);
  EXPECT_TRUE(Report.hasFinding("AN5D-A301")) << Report.toString();
  EXPECT_TRUE(Report.proven()) << "register pressure is advisory for the "
                                  "tuner (the model prunes it)";
}

TEST(ResourceEstimation, A302FiresOnLowArithmeticIntensity) {
  // star1d1r at bT=1: ~5 FLOP against 16 amortized gmem bytes per cell.
  auto P = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 1;
  Config.BS = {};
  Config.HS = 0;
  ScheduleIR IR = lowerSchedule(*P, Config);
  ResourceEstimate E = estimateResources(*P, IR);
  ASSERT_TRUE(E.Valid);
  ASSERT_LT(E.ArithmeticIntensity, 1.0);
  AnalysisInput Input;
  Input.Program = P.get();
  Input.Schedule = &IR;
  AnalysisReport Report = AnalysisPassManager::standardPipeline().run(Input);
  EXPECT_TRUE(Report.hasFinding("AN5D-A302")) << Report.toString();
  EXPECT_TRUE(Report.proven());
}

TEST(ResourceEstimation, InvalidOnDegenerateSchedule) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 0; // lowers to an empty invocation list
  Config.BS = {64};
  ScheduleIR IR = lowerSchedule(*P, Config);
  ResourceEstimate E = estimateResources(*P, IR);
  EXPECT_FALSE(E.Valid);
}

//===----------------------------------------------------------------------===//
// Tuner integration: the pipeline gates candidates pre-JIT
//===----------------------------------------------------------------------===//

TEST(AnalysisTunerGate, EnumeratedCandidatesAreNeverRejected) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  EXPECT_TRUE(Outcome.Feasible);
  EXPECT_EQ(Outcome.AnalysisRejections, 0u) << Outcome.FirstAnalysisRejection;
  EXPECT_TRUE(Outcome.FirstAnalysisRejection.empty());
  EXPECT_EQ(Outcome.VerifierRejections, 0u);
}

TEST(AnalysisTunerGate, SweepCandidatesCarryResourceFeatures) {
  auto P = makeBenchmarkStencil("star2d2r", ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  ASSERT_TRUE(Outcome.Feasible);
  ASSERT_FALSE(Outcome.TopByModel.empty());
  // Every surviving model-ranked candidate was re-estimated from its
  // lowered schedule on the way into the measured sweep.
  const RankedConfig &Best = Outcome.TopByModel.front();
  EXPECT_TRUE(Best.Model.Resources.Valid);
  EXPECT_EQ(Best.Model.Resources.RegistersPerThread,
            an5dRegistersPerThread(*P, Best.Config.BT));
}

//===----------------------------------------------------------------------===//
// Fixed-seed fuzzing: DSL programs and tape corruptions
//===----------------------------------------------------------------------===//

namespace {

/// Deliberate corruptions with known-graceful failure modes (each trips a
/// parser or extractor diagnostic, never an assert).
enum class SourceCorruption {
  None,
  DropSemicolon,
  UnbalanceParen,
  TimeVarInValue,
  LoopVarAsCoefficient,
  ModuloInValue,
  Count,
};

std::string makeRandomStencilSource(std::mt19937 &Rng,
                                    SourceCorruption Corruption) {
  std::uniform_int_distribution<int> DimDist(1, 3);
  std::uniform_int_distribution<int> RadiusDist(1, 2);
  const int Dims = DimDist(Rng);
  const int Radius = RadiusDist(Rng);
  const char *Vars[] = {"i", "j", "k"};

  std::string Src = "for (t = 0; t < I_T; t++)\n";
  for (int D = 0; D < Dims; ++D) {
    Src += std::string(2 * (D + 1), ' ') + "for (" + Vars[D] + " = 1; " +
           Vars[D] + " <= I_S" + std::to_string(Dims - D) + "; " + Vars[D] +
           "++)\n";
  }

  auto Subscript = [&](const std::vector<int> &Offsets) {
    std::string Ref = "A[t%2]";
    for (int D = 0; D < Dims; ++D) {
      Ref += "[" + std::string(Vars[D]);
      if (Offsets[D] > 0)
        Ref += "+" + std::to_string(Offsets[D]);
      else if (Offsets[D] < 0)
        Ref += std::to_string(Offsets[D]);
      Ref += "]";
    }
    return Ref;
  };

  std::string Lhs = "A[(t+1)%2]";
  for (int D = 0; D < Dims; ++D)
    Lhs += "[" + std::string(Vars[D]) + "]";

  std::uniform_int_distribution<int> TermDist(1, 6);
  std::uniform_int_distribution<int> OffsetDist(-Radius, Radius);
  std::uniform_int_distribution<int> CoefDist(1, 99);
  const int Terms = TermDist(Rng);
  std::string Rhs;
  for (int T = 0; T < Terms; ++T) {
    std::vector<int> Offsets(Dims, 0);
    // Star-style taps keep one axis active so the extractor's shape
    // classification stays within supported territory.
    Offsets[static_cast<std::size_t>(T) % Dims] = OffsetDist(Rng);
    if (T > 0)
      Rhs += (Rng() % 2 ? " + " : " - ");
    Rhs += "0." + std::to_string(CoefDist(Rng)) + "f * " + Subscript(Offsets);
  }
  // Ensure at least one tap reads the center cell (keeps the program
  // non-degenerate whatever the offsets rolled above).
  Rhs += " + 0.5f * " + Subscript(std::vector<int>(Dims, 0));

  switch (Corruption) {
  case SourceCorruption::TimeVarInValue:
    Rhs += " + t";
    break;
  case SourceCorruption::LoopVarAsCoefficient:
    Rhs += " + " + std::string(Vars[0]);
    break;
  case SourceCorruption::ModuloInValue:
    Rhs += " % 2";
    break;
  default:
    break;
  }

  Src += std::string(2 * (Dims + 1), ' ') + Lhs + " = " + Rhs +
         (Corruption == SourceCorruption::DropSemicolon ? "\n" : ";\n");
  if (Corruption == SourceCorruption::UnbalanceParen) {
    std::size_t Paren = Src.find('(');
    Src[Paren] = ' ';
  }
  return Src;
}

} // namespace

TEST(AnalysisFuzz, RandomDslProgramsNeverCrashTheFrontend) {
  std::mt19937 Rng(0xA5D51u); // fixed seed: reproducible corpus
  int Extracted = 0, Rejected = 0;
  for (int Iter = 0; Iter < 300; ++Iter) {
    // Half the corpus stays uncorrupted so both outcomes get coverage.
    SourceCorruption Corruption =
        (Rng() % 2) ? SourceCorruption::None
                    : static_cast<SourceCorruption>(
                          1 + Rng() % (static_cast<unsigned>(
                                           SourceCorruption::Count) -
                                       1));
    std::string Src = makeRandomStencilSource(Rng, Corruption);

    DiagnosticEngine Diags;
    StencilExtractor Extractor(Diags);
    auto Result =
        Extractor.extractFromSource(Src, "fuzz" + std::to_string(Iter));

    if (Result) {
      // Success implies a TapeVerifier-clean plan (extraction re-verifies
      // at lowering time and refuses anything the interpreter refutes).
      AnalysisReport Report = verifyTape(factsOf(*Result->Program));
      EXPECT_EQ(Report.errorCount(), 0u)
          << "iteration " << Iter << "\n"
          << Src << Report.toString();
      ++Extracted;
    } else {
      EXPECT_TRUE(Diags.hasErrors())
          << "iteration " << Iter
          << ": rejection without a structured diagnostic\n"
          << Src;
      ++Rejected;
    }
    if (Corruption == SourceCorruption::None)
      EXPECT_TRUE(Result.has_value())
          << "iteration " << Iter << ": uncorrupted program rejected\n"
          << Src << Diags.toString();
  }
  // The corpus must exercise both outcomes or the loop proves nothing.
  EXPECT_GT(Extracted, 50);
  EXPECT_GT(Rejected, 50);
}

TEST(AnalysisFuzz, RandomTapeCorruptionsNeverCrashTheVerifier) {
  auto P = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  const TapeFacts Pristine = factsOf(*P);
  std::mt19937 Rng(0xA5D52u); // fixed seed: reproducible corpus
  for (int Iter = 0; Iter < 500; ++Iter) {
    TapeFacts Facts = Pristine;
    std::uniform_int_distribution<int> MutationCount(1, 3);
    for (int M = MutationCount(Rng); M > 0; --M) {
      switch (Rng() % 8) {
      case 0:
        if (!Facts.Ops.empty())
          Facts.Ops[Rng() % Facts.Ops.size()].Kind =
              static_cast<TapeOpKind>(Rng() % 17);
        break;
      case 1:
        if (!Facts.Ops.empty())
          Facts.Ops[Rng() % Facts.Ops.size()].Arg =
              static_cast<std::uint16_t>(Rng() % 1000);
        break;
      case 2:
        if (!Facts.Ops.empty())
          Facts.Ops.erase(Facts.Ops.begin() +
                          static_cast<long>(Rng() % Facts.Ops.size()));
        break;
      case 3:
        Facts.Ops.push_back(TapeOp{static_cast<TapeOpKind>(Rng() % 17),
                                   static_cast<std::uint16_t>(Rng() % 64)});
        break;
      case 4:
        Facts.MaxStackDepth += static_cast<int>(Rng() % 7) - 3;
        break;
      case 5:
        if (!Facts.Constants.empty())
          Facts.Constants[Rng() % Facts.Constants.size()] =
              (Rng() % 2) ? std::numeric_limits<double>::infinity() : -1.0;
        break;
      case 6:
        if (!Facts.Taps.empty()) {
          std::vector<int> &Tap = Facts.Taps[Rng() % Facts.Taps.size()];
          if (Rng() % 2 && !Tap.empty())
            Tap.pop_back();
          else
            Tap.push_back(static_cast<int>(Rng() % 9) - 4);
        }
        break;
      default:
        Facts.HasConstantDivision = !Facts.HasConstantDivision;
        break;
      }
    }
    // Whatever the corruption, the verifier must terminate with a
    // well-formed, JSON-renderable report — never crash or hang.
    AnalysisReport Report = verifyTape(Facts);
    std::string Rendered = Report.toString();
    EXPECT_FALSE(Rendered.empty());
    std::string Error;
    EXPECT_TRUE(obs::parseJson(Report.toJson(), &Error).has_value())
        << Error << " in iteration " << Iter;
  }
}
