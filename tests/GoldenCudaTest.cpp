//===- GoldenCudaTest.cpp - Golden-file regression for the CUDA backend -------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Byte-for-byte regression of representative generated CUDA translation
/// units against checked-in golden files (tests/golden/). If an intentional
/// codegen change breaks these, regenerate the goldens and review the diff
/// like any compiler change.
///
//===----------------------------------------------------------------------===//

#include "codegen/CudaCodegen.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace an5d;

namespace {

std::string readGolden(const std::string &FileName) {
  std::ifstream In(std::string(AN5D_GOLDEN_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "missing golden file " << FileName;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Reports the first differing line to make diffs actionable.
void expectEqualWithContext(const std::string &Got,
                            const std::string &Want,
                            const std::string &Tag) {
  if (Got == Want) {
    SUCCEED();
    return;
  }
  std::stringstream GotStream(Got), WantStream(Want);
  std::string GotLine, WantLine;
  int LineNo = 0;
  while (true) {
    ++LineNo;
    bool GotOk = static_cast<bool>(std::getline(GotStream, GotLine));
    bool WantOk = static_cast<bool>(std::getline(WantStream, WantLine));
    if (!GotOk && !WantOk)
      break;
    if (GotLine != WantLine || GotOk != WantOk) {
      FAIL() << Tag << ": first difference at line " << LineNo
             << "\n  golden:    " << (WantOk ? WantLine : "<eof>")
             << "\n  generated: " << (GotOk ? GotLine : "<eof>")
             << "\nIf the change is intentional, regenerate tests/golden/.";
      return;
    }
  }
  FAIL() << Tag << ": content differs (lengths " << Got.size() << " vs "
         << Want.size() << ")";
}

} // namespace

TEST(GoldenCuda, J2d5ptKernel) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.KernelSource,
                         readGolden("an5d_j2d5pt_bt2.cu.golden"),
                         "j2d5pt kernel");
}

TEST(GoldenCuda, J2d5ptHost) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.HostSource,
                         readGolden("an5d_j2d5pt_bt2_host.cpp.golden"),
                         "j2d5pt host");
}

TEST(GoldenCuda, Star3d1rDoubleKernel) {
  auto P = makeStarStencil(3, 1, ScalarType::Double);
  BlockConfig C;
  C.BT = 3;
  C.BS = {32, 16};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.KernelSource,
                         readGolden("an5d_star3d1r_bt3.cu.golden"),
                         "star3d1r kernel");
}

TEST(GoldenCuda, Every1dBuiltinKernel) {
  // The 1D pure-streaming schedule renders through the same ScheduleIR as
  // the blocked kernels: one golden per 1D builtin pins the thread-per-
  // chunk kernel shape (register rings only — no shared memory, no
  // __syncthreads). star1d2r is the double-precision point.
  struct OneDCase {
    const char *Name;
    ScalarType Type;
  } Cases[] = {
      {"star1d1r", ScalarType::Float}, {"star1d2r", ScalarType::Double},
      {"star1d3r", ScalarType::Float}, {"star1d4r", ScalarType::Float},
      {"box1d1r", ScalarType::Float},  {"box1d2r", ScalarType::Float},
      {"box1d3r", ScalarType::Float},  {"box1d4r", ScalarType::Float},
      {"j1d3pt", ScalarType::Float},
  };
  for (const OneDCase &Case : Cases) {
    auto P = makeBenchmarkStencil(Case.Name, Case.Type);
    ASSERT_NE(P, nullptr) << Case.Name;
    BlockConfig C;
    C.BT = 2;
    C.BS.clear(); // 1D pure streaming: no blocked dimensions
    C.HS = 32;
    GeneratedCuda Code = generateCuda(*P, C);
    expectEqualWithContext(Code.KernelSource,
                           readGolden(std::string("an5d_") + Case.Name +
                                      "_bt2.cu.golden"),
                           std::string(Case.Name) + " kernel");
    EXPECT_EQ(Code.KernelSource.find("__shared__"), std::string::npos)
        << Case.Name;
    EXPECT_EQ(Code.KernelSource.find("__syncthreads"), std::string::npos)
        << Case.Name;
  }
}

TEST(GoldenCuda, Star1d1rHost) {
  auto P = makeStarStencil(1, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear();
  C.HS = 32;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.HostSource,
                         readGolden("an5d_star1d1r_bt2_host.cpp.golden"),
                         "star1d1r host");
}

TEST(GoldenCuda, GenerationIsDeterministic) {
  auto P = makeJacobi2d9ptGol(ScalarType::Float);
  BlockConfig C;
  C.BT = 5;
  C.BS = {256};
  C.HS = 512;
  GeneratedCuda A = generateCuda(*P, C);
  GeneratedCuda B = generateCuda(*P, C);
  EXPECT_EQ(A.KernelSource, B.KernelSource);
  EXPECT_EQ(A.HostSource, B.HostSource);
}
