//===- GoldenCudaTest.cpp - Golden-file regression for the CUDA backend -------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Byte-for-byte regression of representative generated CUDA translation
/// units against checked-in golden files (tests/golden/). If an intentional
/// codegen change breaks these, regenerate the goldens and review the diff
/// like any compiler change.
///
//===----------------------------------------------------------------------===//

#include "codegen/CudaCodegen.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace an5d;

namespace {

std::string readGolden(const std::string &FileName) {
  std::ifstream In(std::string(AN5D_GOLDEN_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "missing golden file " << FileName;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Reports the first differing line to make diffs actionable.
void expectEqualWithContext(const std::string &Got,
                            const std::string &Want,
                            const std::string &Tag) {
  if (Got == Want) {
    SUCCEED();
    return;
  }
  std::stringstream GotStream(Got), WantStream(Want);
  std::string GotLine, WantLine;
  int LineNo = 0;
  while (true) {
    ++LineNo;
    bool GotOk = static_cast<bool>(std::getline(GotStream, GotLine));
    bool WantOk = static_cast<bool>(std::getline(WantStream, WantLine));
    if (!GotOk && !WantOk)
      break;
    if (GotLine != WantLine || GotOk != WantOk) {
      FAIL() << Tag << ": first difference at line " << LineNo
             << "\n  golden:    " << (WantOk ? WantLine : "<eof>")
             << "\n  generated: " << (GotOk ? GotLine : "<eof>")
             << "\nIf the change is intentional, regenerate tests/golden/.";
      return;
    }
  }
  FAIL() << Tag << ": content differs (lengths " << Got.size() << " vs "
         << Want.size() << ")";
}

} // namespace

TEST(GoldenCuda, J2d5ptKernel) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.KernelSource,
                         readGolden("an5d_j2d5pt_bt2.cu.golden"),
                         "j2d5pt kernel");
}

TEST(GoldenCuda, J2d5ptHost) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.HostSource,
                         readGolden("an5d_j2d5pt_bt2_host.cpp.golden"),
                         "j2d5pt host");
}

TEST(GoldenCuda, Star3d1rDoubleKernel) {
  auto P = makeStarStencil(3, 1, ScalarType::Double);
  BlockConfig C;
  C.BT = 3;
  C.BS = {32, 16};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  expectEqualWithContext(Code.KernelSource,
                         readGolden("an5d_star3d1r_bt3.cu.golden"),
                         "star3d1r kernel");
}

TEST(GoldenCuda, GenerationIsDeterministic) {
  auto P = makeJacobi2d9ptGol(ScalarType::Float);
  BlockConfig C;
  C.BT = 5;
  C.BS = {256};
  C.HS = 512;
  GeneratedCuda A = generateCuda(*P, C);
  GeneratedCuda B = generateCuda(*P, C);
  EXPECT_EQ(A.KernelSource, B.KernelSource);
  EXPECT_EQ(A.HostSource, B.HostSource);
}
