//===- ScheduleIrTest.cpp - Lowering and render-equivalence of ScheduleIR ----===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule IR's contract with the rest of the system:
///
///  1. lowerSchedule never rejects, and the verifier accepts the lowered
///     IR exactly when BlockConfig::isFeasible accepts the configuration —
///     property-tested over every enumerated configuration of every
///     built-in stencil.
///  2. The IR's derived fields encode the paper's schedule (ring depth
///     2*rad+1, tier stream lag T*rad, shrinking reach, hS chunking, the
///     1D PinBoundaryOnly / >=2D CarryPreviousTier halo policies).
///  3. Render equivalence: the backends are pure renderers — feeding the
///     explicitly lowered IR into CppCodegen/CudaCodegen reproduces the
///     config-overload output and the checked-in pre-refactor goldens
///     byte for byte.
///
//===----------------------------------------------------------------------===//

#include "analysis/ScheduleVerifier.h"
#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "schedule/ScheduleIR.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <climits>
#include <fstream>
#include <sstream>

using namespace an5d;

namespace {

std::vector<std::string> allBuiltinStencils() {
  std::vector<std::string> Names = benchmarkStencilNames();
  for (const std::string &Extra : extraStencilNames())
    Names.push_back(Extra);
  return Names;
}

std::string readGolden(const std::string &FileName) {
  std::ifstream In(std::string(AN5D_GOLDEN_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "missing golden file " << FileName;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lowering property: verifier verdict == feasibility, for every config
//===----------------------------------------------------------------------===//

// lowerSchedule is total: every enumerated configuration of every builtin
// lowers to an IR, and verifyScheduleIR proves that IR safe exactly when
// the feasibility model accepts the configuration (thread caps excepted —
// a hardware limit, not a schedule-safety property).
TEST(ScheduleIrLowering, VerifierAcceptsIffFeasibleOnEveryEnumeratedConfig) {
  Tuner T(GpuSpec::teslaV100());
  for (const std::string &Name : allBuiltinStencils()) {
    auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(Program, nullptr) << Name;
    for (const BlockConfig &Config : T.enumerateConfigs(*Program)) {
      ScheduleIR IR = lowerSchedule(*Program, Config);
      // Lowering is total and structurally faithful regardless of
      // feasibility.
      EXPECT_EQ(IR.StencilName, Program->name());
      EXPECT_EQ(IR.NumDims, Program->numDims());
      EXPECT_EQ(IR.Radius, Program->radius());
      EXPECT_EQ(IR.Config.toString(), Config.toString());
      ASSERT_EQ(static_cast<int>(IR.Invocations.size()), Config.BT)
          << Name << " " << Config.toString();
      const bool Feasible = Config.isFeasible(Program->radius(), INT_MAX);
      ScheduleVerifyResult Verdict = verifyScheduleIR(IR);
      EXPECT_EQ(Verdict.proven(), Feasible)
          << Name << " " << Config.toString() << ": " << Verdict.toString();
    }
  }
}

TEST(ScheduleIrLowering, SharedInvariantsMatchEveryInvocation) {
  auto Program = makeBenchmarkStencil("j2d9pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {128};
  Config.HS = 256;
  ScheduleIR IR = lowerSchedule(*Program, Config);
  EXPECT_EQ(IR.RingDepth, 2 * IR.Radius + 1);
  EXPECT_EQ(IR.GridHalo, IR.Radius);
  EXPECT_EQ(IR.HaloPolicy, ScheduleHaloPolicy::CarryPreviousTier);
  for (int Degree = 1; Degree <= Config.BT; ++Degree) {
    const InvocationSchedule &Inv = IR.at(Degree);
    EXPECT_EQ(Inv.Degree, Degree);
    EXPECT_EQ(Inv.RingDepth, IR.RingDepth);
    EXPECT_EQ(Inv.GridHalo, IR.GridHalo);
    EXPECT_EQ(Inv.HaloPolicy, IR.HaloPolicy);
    EXPECT_EQ(Inv.LoadSpanHalo, Degree * IR.Radius);
    EXPECT_EQ(Inv.LoadStreamReach, Degree * IR.Radius);
    ASSERT_EQ(static_cast<int>(Inv.Tiers.size()), Degree);
    for (const TierSchedule &Tier : Inv.Tiers) {
      EXPECT_EQ(Tier.StreamLag, Tier.Tier * IR.Radius);
      EXPECT_EQ(Tier.Reach, (Degree - Tier.Tier) * IR.Radius);
    }
    // Worksharing: blocks stride by exactly what they store (gap-free,
    // overlap-free by construction).
    EXPECT_EQ(Inv.BlockStride, Inv.StoreWidth);
    EXPECT_EQ(Inv.ChunkLength, Config.HS);
    EXPECT_EQ(Inv.ChunkStride, Config.HS);
  }
  EXPECT_EQ(&IR.full(), &IR.at(Config.BT));
}

TEST(ScheduleIrLowering, OneDStreamingLowersWithoutSpatialHalo) {
  auto Program = makeBenchmarkStencil("star1d2r", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 3;
  Config.BS.clear(); // pure streaming
  Config.HS = 64;
  ScheduleIR IR = lowerSchedule(*Program, Config);
  EXPECT_EQ(IR.HaloPolicy, ScheduleHaloPolicy::PinBoundaryOnly);
  const InvocationSchedule &Full = IR.full();
  EXPECT_TRUE(Full.BS.empty());
  EXPECT_TRUE(Full.ComputeWidth.empty());
  EXPECT_TRUE(Full.BlockStride.empty());
  EXPECT_EQ(Full.ChunkLength, 64);
  EXPECT_EQ(Full.LoadStreamReach, 3 * 2);
  EXPECT_TRUE(verifyScheduleIR(IR).proven());
}

//===----------------------------------------------------------------------===//
// Render equivalence: backends are pure renderers of the one IR
//===----------------------------------------------------------------------===//

// The config overloads are thin wrappers: rendering an explicitly lowered
// IR must reproduce their output — and the checked-in goldens — byte for
// byte on both backends. This pins "no backend re-derives the schedule":
// if a backend consulted anything but the IR, the two paths could drift.
TEST(ScheduleIrRender, CppSourcesMatchConfigPathAndGoldens) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  ScheduleIR IR = lowerSchedule(*P, C);
  std::string FromIr = generateCppKernelLibrary(*P, IR);
  EXPECT_EQ(FromIr, generateCppKernelLibrary(*P, C));
  EXPECT_EQ(FromIr, readGolden("an5d_j2d5pt_omp.cpp.golden"));

  BlockConfig CheckConfig;
  CheckConfig.BT = 2;
  CheckConfig.BS = {32};
  CheckConfig.HS = 8;
  ProblemSize Problem;
  Problem.Extents = {40, 37};
  Problem.TimeSteps = 11;
  ScheduleIR CheckIr = lowerSchedule(*P, CheckConfig);
  std::string Check = generateCppCheckProgram(*P, CheckIr, Problem);
  EXPECT_EQ(Check, generateCppCheckProgram(*P, CheckConfig, Problem));
  EXPECT_EQ(Check, readGolden("an5d_j2d5pt_check.cpp.golden"));
}

TEST(ScheduleIrRender, CudaSourcesMatchConfigPathAndGoldens) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {128};
  C.HS = 128;
  ScheduleIR IR = lowerSchedule(*P, C);
  GeneratedCuda FromIr = generateCuda(*P, IR);
  GeneratedCuda FromConfig = generateCuda(*P, C);
  EXPECT_EQ(FromIr.KernelSource, FromConfig.KernelSource);
  EXPECT_EQ(FromIr.HostSource, FromConfig.HostSource);
  EXPECT_EQ(FromIr.KernelSource, readGolden("an5d_j2d5pt_bt2.cu.golden"));
  EXPECT_EQ(FromIr.HostSource,
            readGolden("an5d_j2d5pt_bt2_host.cpp.golden"));
}

TEST(ScheduleIrRender, OneDCudaRendersFromTheStreamingIr) {
  auto P = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear();
  C.HS = 32;
  ScheduleIR IR = lowerSchedule(*P, C);
  GeneratedCuda FromIr = generateCuda(*P, IR);
  GeneratedCuda FromConfig = generateCuda(*P, C);
  EXPECT_EQ(FromIr.KernelSource, FromConfig.KernelSource);
  EXPECT_EQ(FromIr.HostSource, FromConfig.HostSource);
  EXPECT_EQ(FromIr.KernelSource,
            readGolden("an5d_star1d1r_bt2.cu.golden"));
}

// Every 1D builtin renders through generateCuda — the acceptance test of
// closing the 1D CUDA hole (goldens pin the exact bytes in
// GoldenCudaTest; here the property is totality across configurations).
TEST(ScheduleIrRender, GenerateCudaAcceptsEvery1dBuiltin) {
  for (const char *Name :
       {"star1d1r", "star1d2r", "star1d3r", "star1d4r", "box1d1r",
        "box1d2r", "box1d3r", "box1d4r", "j1d3pt"}) {
    auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(Program, nullptr) << Name;
    ASSERT_EQ(Program->numDims(), 1) << Name;
    for (int BT : {1, 2, 4}) {
      for (int HS : {0, 32}) {
        BlockConfig C;
        C.BT = BT;
        C.BS.clear();
        C.HS = HS;
        GeneratedCuda Code = generateCuda(*Program, C);
        EXPECT_NE(Code.KernelSource.find("extern \"C\" __global__"),
                  std::string::npos)
            << Name << " " << C.toString();
        EXPECT_NE(Code.HostSource.find("an5d_schedule"), std::string::npos)
            << Name << " " << C.toString();
      }
    }
  }
}
