//===- ExecutorTest.cpp - Blocked executor vs reference ----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The central correctness tests of the reproduction: the blocked N.5D
/// emulation must match the naive reference executor bit for bit, across
/// shapes, degrees, stream divisions and grid/block-size alignments.
///
//===----------------------------------------------------------------------===//

#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

/// Runs both executors from the same initial grid; returns the number of
/// mismatching cells (bitwise compare over the whole padded grid).
template <typename T>
std::size_t compareBlockedToReference(const StencilProgram &Program,
                                      const BlockConfig &Config,
                                      std::vector<long long> Extents,
                                      long long TimeSteps,
                                      BlockedExecOptions Options = {}) {
  int Halo = Program.radius();
  Grid<T> Ref0(Extents, Halo), Ref1(Extents, Halo);
  fillGridDeterministic(Ref0, 1234);
  copyGrid(Ref0, Ref1);
  Grid<T> Blk0 = Ref0, Blk1 = Ref0;

  referenceRun<T>(Program, {&Ref0, &Ref1}, TimeSteps);
  blockedRun<T>(Program, Config, {&Blk0, &Blk1}, TimeSteps, Options);

  const Grid<T> &Want = TimeSteps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = TimeSteps % 2 == 0 ? Blk0 : Blk1;
  std::size_t Mismatches = 0;
  for (std::size_t I = 0; I < Want.raw().size(); ++I) {
    T A = Want.raw()[I];
    T B = Got.raw()[I];
    if (!(A == B))
      ++Mismatches;
  }
  return Mismatches;
}

BlockConfig config2d(int BT, int BS, int HS = 0) {
  BlockConfig C;
  C.BT = BT;
  C.BS = {BS};
  C.HS = HS;
  return C;
}

BlockConfig config1d(int BT, int HS = 0) {
  BlockConfig C;
  C.BT = BT;
  C.HS = HS; // BS stays empty: 1D pure streaming.
  return C;
}

} // namespace

TEST(BlockedExecutor, OneDimensionalStreamingMatchesReference) {
  // The 1D path streams the single dimension with no blocked dimensions
  // (one lane per block); chunked and unchunked runs must both reproduce
  // the reference bit for bit.
  auto P = makeStarStencil(1, 2, ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config1d(3, 16), {97}, 9),
            0u);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config1d(3), {97}, 9), 0u)
      << "streaming off (single chunk)";
}

TEST(BlockedExecutor, OneDimensionalHighDegreeAndDouble) {
  auto P = makeJacobi1d3pt(ScalarType::Double);
  // Degree above the chunk length: redundant planes dominate each chunk.
  EXPECT_EQ(compareBlockedToReference<double>(*P, config1d(10, 8), {61}, 13),
            0u);
}

TEST(BlockedExecutor, OneDimensionalPoisonedHalosStayClean) {
  auto P = makeBoxStencil(1, 1, ScalarType::Float);
  BlockedExecOptions Options;
  Options.PoisonHalos = true;
  EXPECT_EQ(compareBlockedToReference<float>(*P, config1d(4, 12), {53}, 8,
                                             Options),
            0u);
}

TEST(BlockedExecutor, J2d5ptMatchesReferenceBitwise) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32), {40, 37},
                                             12),
            0u);
}

TEST(BlockedExecutor, J2d5ptDoublePrecision) {
  auto P = makeJacobi2d5pt(ScalarType::Double);
  EXPECT_EQ(compareBlockedToReference<double>(*P, config2d(4, 32), {40, 37},
                                              12),
            0u);
}

TEST(BlockedExecutor, HighDegreeBt10) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  // bT = 10 on a 64-wide block: compute width 44. This is the paper's
  // headline degree.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(10, 64), {50, 47},
                                             20),
            0u);
}

TEST(BlockedExecutor, SecondOrderStar) {
  auto P = makeJacobi2d9pt(ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(3, 32), {30, 29},
                                             9),
            0u);
}

TEST(BlockedExecutor, FourthOrderStar) {
  auto P = makeStarStencil(2, 4, ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(2, 48), {26, 25},
                                             6),
            0u);
}

TEST(BlockedExecutor, BoxStencil) {
  auto P = makeBoxStencil(2, 1, ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32), {28, 26},
                                             8),
            0u);
}

TEST(BlockedExecutor, BoxSecondOrder) {
  auto P = makeBoxStencil(2, 2, ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(2, 32), {24, 22},
                                             7),
            0u);
}

TEST(BlockedExecutor, GradientNonAssociative) {
  auto P = makeGradient2d(ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(3, 32), {26, 23},
                                             9),
            0u);
}

TEST(BlockedExecutor, StreamDivision) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  // hS = 8 cuts the 40-plane streaming dimension into 5 chunks.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32, 8),
                                             {40, 37}, 12),
            0u);
}

TEST(BlockedExecutor, StreamDivisionUnalignedChunk) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  // 40 % 12 != 0: the final chunk is short.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32, 12),
                                             {40, 37}, 12),
            0u);
}

TEST(BlockedExecutor, TimeRemainderAndParity) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  // IT=13 with bT=4: 4+4+4+1 = 4 calls, parity 13%2=1 != 0 -> adjusted.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32), {30, 27},
                                             13),
            0u);
  // IT=4 with bT=4: single call would break parity -> split.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32), {30, 27},
                                             4),
            0u);
}

TEST(BlockedExecutor, GridSmallerThanBlock) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  // Block span (32 lanes) exceeds the 9-wide grid: out-of-bound threads.
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(2, 32), {12, 9},
                                             6),
            0u);
}

TEST(BlockedExecutor, ThreeDimensionalStar) {
  auto P = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {12, 12};
  C.HS = 0;
  EXPECT_EQ(compareBlockedToReference<float>(*P, C, {14, 13, 11}, 6), 0u);
}

TEST(BlockedExecutor, ThreeDimensionalBoxWithStreamDivision) {
  auto P = makeBoxStencil(3, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {12, 10};
  C.HS = 6;
  EXPECT_EQ(compareBlockedToReference<float>(*P, C, {15, 11, 13}, 5), 0u);
}

TEST(BlockedExecutor, ThreeDimensional27Point) {
  auto P = makeJacobi3d27pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 3;
  C.BS = {16, 16};
  EXPECT_EQ(compareBlockedToReference<float>(*P, C, {12, 12, 12}, 7), 0u);
}

TEST(BlockedExecutor, PoisonedHalosNeverLeak) {
  // Failure injection: halo lanes carry NaN canaries instead of values;
  // valid results must be unaffected (the paper's argument that halo
  // overwrite values are never consumed by valid computations).
  BlockedExecOptions Poison;
  Poison.PoisonHalos = true;
  auto P = makeJacobi2d5pt(ScalarType::Float);
  EXPECT_EQ(compareBlockedToReference<float>(*P, config2d(4, 32), {40, 37},
                                             12, Poison),
            0u);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig C3;
  C3.BT = 2;
  C3.BS = {12, 12};
  C3.HS = 7;
  EXPECT_EQ(compareBlockedToReference<float>(*P3, C3, {14, 13, 11}, 6, Poison),
            0u);
}

TEST(BlockedExecutor, InteriorHasNaNDetectsPoison) {
  Grid<float> G({4, 4}, 1);
  EXPECT_FALSE(interiorHasNaN(G));
  G.at2(2, 2) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(interiorHasNaN(G));
}

TEST(GridTest, BoundaryAndInteriorAddressing) {
  Grid<float> G({4, 5}, 2);
  EXPECT_EQ(G.numDims(), 2);
  EXPECT_TRUE(G.inBounds(0, -2));
  EXPECT_FALSE(G.inBounds(0, -3));
  EXPECT_TRUE(G.inBounds(1, 6));
  EXPECT_FALSE(G.inBounds(1, 7));
  G.at2(-2, -2) = 7.0f;
  EXPECT_EQ(G.at2(-2, -2), 7.0f);
  EXPECT_TRUE(G.isInterior({0, 0}));
  EXPECT_FALSE(G.isInterior({-1, 0}));
  EXPECT_FALSE(G.isInterior({0, 5}));
  EXPECT_EQ(G.size(), static_cast<std::size_t>((4 + 4) * (5 + 4)));
}

TEST(GridTest, DeterministicFillIsReproducibleAndSeedSensitive) {
  Grid<double> A({8, 8}, 1), B({8, 8}, 1), C({8, 8}, 1);
  fillGridDeterministic(A, 7);
  fillGridDeterministic(B, 7);
  fillGridDeterministic(C, 8);
  EXPECT_EQ(A.raw(), B.raw());
  EXPECT_NE(A.raw(), C.raw());
  for (double V : A.raw()) {
    EXPECT_GT(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(ReferenceExecutorTest, OneStepAveragingStencil) {
  // A uniform grid stays uniform under an averaging stencil.
  ExprPtr Sum;
  for (auto Off : std::vector<std::vector<int>>{
           {0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}}) {
    ExprPtr Term = makeMul(makeNumber(0.2), makeGridRead("A", Off));
    Sum = Sum ? makeAdd(std::move(Sum), std::move(Term)) : std::move(Term);
  }
  StencilProgram P("avg", 2, ScalarType::Double, "A", std::move(Sum));
  Grid<double> A({6, 6}, 1), B({6, 6}, 1);
  for (double &V : A.raw())
    V = 2.5;
  copyGrid(A, B);
  referenceRun<double>(P, {&A, &B}, 1);
  for (long long I = 0; I < 6; ++I)
    for (long long J = 0; J < 6; ++J)
      EXPECT_NEAR(B.at2(I, J), 2.5, 1e-12);
}
