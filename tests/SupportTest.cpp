//===- SupportTest.cpp - Unit tests for the support library -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"
#include "support/StringUtils.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace an5d;

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
  EXPECT_EQ(ceilDiv(0, 5), 0);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv<long long>(16384, 236), 70);
}

TEST(RoundUpTo, Basics) {
  EXPECT_EQ(roundUpTo(10, 4), 12);
  EXPECT_EQ(roundUpTo(12, 4), 12);
  EXPECT_EQ(roundUpTo(1, 32), 32);
}

TEST(ClampTo, Basics) {
  EXPECT_EQ(clampTo(5, 0, 10), 5);
  EXPECT_EQ(clampTo(-5, 0, 10), 0);
  EXPECT_EQ(clampTo(50, 0, 10), 10);
}

TEST(Ipow, SmallPowers) {
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(3, 2), 9);
  EXPECT_EQ(ipow(5, 3), 125);
  EXPECT_EQ(ipow(9, 3), 729);
}

TEST(Diagnostics, AccumulateAndRender) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "something odd");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "something wrong");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.toString();
  EXPECT_NE(Text.find("warning: 1:2: something odd"), std::string::npos);
  EXPECT_NE(Text.find("error: 3:4: something wrong"), std::string::npos);
}

TEST(Diagnostics, UnknownLocationOmitted) {
  Diagnostic D;
  D.Kind = DiagnosticKind::Error;
  D.Message = "no location";
  EXPECT_EQ(D.toString(), "error: no location");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error({1, 1}, "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtils, IndentLines) {
  EXPECT_EQ(indentLines("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(indentLines("a\n\nb", 2), "  a\n\n  b");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(StringUtils, CountOccurrences) {
  EXPECT_EQ(countOccurrences("aaaa", "aa"), 2u);
  EXPECT_EQ(countOccurrences("CALC1 CALC2 CALC1", "CALC1"), 2u);
  EXPECT_EQ(countOccurrences("abc", ""), 0u);
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(1.5, 2), "1.50");
  EXPECT_EQ(formatDouble(0.125, 3), "0.125");
}

TEST(SourceLocation, Validity) {
  SourceLocation Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.toString(), "<unknown>");
  SourceLocation Valid{3, 7};
  EXPECT_TRUE(Valid.isValid());
  EXPECT_EQ(Valid.toString(), "3:7");
}
