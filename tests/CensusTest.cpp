//===- CensusTest.cpp - Thread census invariants -----------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ThreadCensus.h"

#include "stencils/Benchmarks.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

ProblemSize smallProblem2d() {
  ProblemSize P;
  P.Extents = {96, 80};
  P.TimeSteps = 24;
  return P;
}

} // namespace

TEST(Census, WritesEqualGridCells) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  for (int BT : {1, 2, 4}) {
    for (int HS : {0, 32}) {
      BlockConfig Config;
      Config.BT = BT;
      Config.BS = {64};
      Config.HS = HS;
      ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
      EXPECT_EQ(Census.GmWriteOps, Problem.cellCount())
          << "every interior cell stored exactly once per temporal block";
    }
  }
}

TEST(Census, ComputeCoversAtLeastUsefulWork) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {64};
  Config.HS = 0;
  ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
  long long Useful = Problem.cellCount() * Config.BT;
  EXPECT_GE(Census.ComputeOps, Useful);
  EXPECT_GT(Census.redundantComputeOps(Useful), 0)
      << "overlapped tiling always recomputes halo cells";
}

TEST(Census, NoTemporalBlockingHasNoRedundancy) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  BlockConfig Config;
  Config.BT = 1;
  Config.BS = {64};
  Config.HS = 0;
  ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
  // With bT = 1 the tier-1 valid region equals the compute region, so the
  // only extra compute comes from blocks overhanging the grid edge; with
  // 80 % 62 != 0 the last block overhangs, but valid lanes clip to the
  // grid, so compute equals the useful work exactly.
  EXPECT_EQ(Census.ComputeOps, Problem.cellCount());
}

TEST(Census, RedundancyGrowsWithBt) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  long long PrevCompute = 0;
  for (int BT : {1, 2, 4, 8}) {
    BlockConfig Config;
    Config.BT = BT;
    Config.BS = {64};
    Config.HS = 0;
    ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
    // Normalize per time-step: compute per step grows with bT.
    long long PerStep = Census.ComputeOps / BT;
    if (PrevCompute > 0) {
      EXPECT_GE(PerStep, PrevCompute)
          << "larger bT means larger halos and more redundant compute";
    }
    PrevCompute = PerStep;
  }
}

TEST(Census, StreamDivisionAddsRedundantPlanes) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  BlockConfig NoSplit, Split;
  NoSplit.BT = Split.BT = 4;
  NoSplit.BS = Split.BS = {64};
  NoSplit.HS = 0;
  Split.HS = 24;
  ThreadCensus A = computeThreadCensus(*Star, NoSplit, Problem);
  ThreadCensus B = computeThreadCensus(*Star, Split, Problem);
  EXPECT_GT(B.ComputeOps, A.ComputeOps);
  EXPECT_GT(B.GmReadOps, A.GmReadOps);
  EXPECT_GT(B.NumThreadBlocks, A.NumThreadBlocks)
      << "that extra redundancy is the price of more parallelism";
  EXPECT_EQ(B.GmWriteOps, A.GmWriteOps) << "stores never duplicate";

  // Section 4.2.3: per cut, each tier T < bT reloads rad*(bT-T) planes on
  // both sides.
  long long ExpectedExtraPlanesPerCut = 0;
  for (int T = 0; T < Split.BT; ++T)
    ExpectedExtraPlanesPerCut += 2 * 1 * (Split.BT - T);
  long long Cuts = ceilDiv(Problem.Extents[0],
                           static_cast<long long>(Split.HS)) -
                   1;
  EXPECT_GT(Cuts, 0);
  (void)ExpectedExtraPlanesPerCut;
}

TEST(Census, GmReadsCoverInputOncePlusHalos) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {64};
  Config.HS = 0;
  ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
  // Reads must at least cover the interior once and at most the padded
  // grid times the per-dimension block overlap factor.
  EXPECT_GE(Census.GmReadOps, Problem.cellCount());
  long long Padded = (Problem.Extents[0] + 2) * (Problem.Extents[1] + 2);
  long long Blocks = ceilDiv<long long>(80, 64 - 2 * 2);
  EXPECT_LE(Census.GmReadOps, Padded * Blocks);
}

TEST(Census, ThreeDimensionalCounts) {
  auto Star = makeStarStencil(3, 1, ScalarType::Float);
  ProblemSize Problem;
  Problem.Extents = {40, 36, 36};
  Problem.TimeSteps = 8;
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {24, 24};
  Config.HS = 20;
  ThreadCensus Census = computeThreadCensus(*Star, Config, Problem);
  EXPECT_EQ(Census.GmWriteOps, 40LL * 36 * 36);
  EXPECT_GE(Census.ComputeOps, 40LL * 36 * 36 * 2);
  long long BlocksPerDim = ceilDiv<long long>(36, 24 - 4);
  long long Chunks = 2;
  EXPECT_EQ(Census.NumThreadBlocks, BlocksPerDim * BlocksPerDim * Chunks);
}

TEST(Census, TrafficHelpersScaleWithWordSize) {
  auto F = makeStarStencil(2, 1, ScalarType::Float);
  auto D = makeStarStencil(2, 1, ScalarType::Double);
  ProblemSize Problem = smallProblem2d();
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {64};
  ThreadCensus CF = computeThreadCensus(*F, Config, Problem);
  ThreadCensus CD = computeThreadCensus(*D, Config, Problem);
  EXPECT_EQ(CF.ComputeOps, CD.ComputeOps);
  EXPECT_EQ(censusGmemBytes(CD, *D), 2 * censusGmemBytes(CF, *F));
  EXPECT_EQ(censusSmemBytes(CD, *D), 2 * censusSmemBytes(CF, *F));
}

TEST(Census, FlopsUseTable3Counts) {
  auto Box = makeBoxStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = smallProblem2d();
  BlockConfig Config;
  Config.BT = 1;
  Config.BS = {64};
  ThreadCensus Census = computeThreadCensus(*Box, Config, Problem);
  EXPECT_EQ(censusFlops(Census, *Box),
            Census.ComputeOps * Box->flopsPerCell().total());
}
