//===- ExecutorSweepTest.cpp - Property sweeps over the blocked executor -----===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Parameterized property sweeps: blocked == reference (bitwise) across the
/// cross product of stencil shape, temporal degree, block size, stream
/// division and grid alignment. Grids are intentionally chosen so that
/// block/chunk boundaries land both aligned and unaligned.
///
//===----------------------------------------------------------------------===//

#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace an5d;

namespace {

template <typename T>
bool blockedMatchesReference(const StencilProgram &Program,
                             const BlockConfig &Config,
                             std::vector<long long> Extents,
                             long long TimeSteps, bool Poison) {
  int Halo = Program.radius();
  Grid<T> Ref0(Extents, Halo), Ref1(Extents, Halo);
  fillGridDeterministic(Ref0, 99);
  copyGrid(Ref0, Ref1);
  Grid<T> Blk0 = Ref0, Blk1 = Ref0;

  referenceRun<T>(Program, {&Ref0, &Ref1}, TimeSteps);
  BlockedExecOptions Options;
  Options.PoisonHalos = Poison;
  blockedRun<T>(Program, Config, {&Blk0, &Blk1}, TimeSteps, Options);

  const Grid<T> &Want = TimeSteps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = TimeSteps % 2 == 0 ? Blk0 : Blk1;
  return Want.raw() == Got.raw() && !interiorHasNaN(Got);
}

} // namespace

//===----------------------------------------------------------------------===//
// 2D sweep: (stencil name, bT, bS, hS)
//===----------------------------------------------------------------------===//

using Sweep2dParam = std::tuple<const char *, int, int, int>;

class BlockedSweep2d : public ::testing::TestWithParam<Sweep2dParam> {};

TEST_P(BlockedSweep2d, MatchesReference) {
  auto [Name, BT, BS, HS] = GetParam();
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = BT;
  Config.BS = {BS};
  Config.HS = HS;
  if (!Config.isFeasible(Program->radius()))
    GTEST_SKIP() << "infeasible pairing in the sweep grid";
  // 41 x 35: prime-ish extents so nothing divides evenly.
  EXPECT_TRUE(blockedMatchesReference<float>(*Program, Config, {41, 35},
                                             /*TimeSteps=*/11,
                                             /*Poison=*/false))
      << Name << " " << Config.toString();
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDegrees, BlockedSweep2d,
    ::testing::Combine(
        ::testing::Values("star2d1r", "star2d2r", "box2d1r", "j2d5pt",
                          "j2d9pt-gol", "gradient2d"),
        ::testing::Values(1, 2, 3, 5), ::testing::Values(24, 40),
        ::testing::Values(0, 13)));

//===----------------------------------------------------------------------===//
// 2D high-order/high-degree sweep with halo poisoning
//===----------------------------------------------------------------------===//

using PoisonParam = std::tuple<const char *, int>;

class PoisonSweep2d : public ::testing::TestWithParam<PoisonParam> {};

TEST_P(PoisonSweep2d, PoisonNeverReachesValidCells) {
  auto [Name, BT] = GetParam();
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = BT;
  Config.BS = {Program->radius() * 2 * BT + 8};
  Config.HS = 9;
  ASSERT_TRUE(Config.isFeasible(Program->radius()));
  EXPECT_TRUE(blockedMatchesReference<float>(*Program, Config, {23, 19},
                                             /*TimeSteps=*/7,
                                             /*Poison=*/true))
      << Name << " bT=" << BT;
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, PoisonSweep2d,
    ::testing::Combine(::testing::Values("star2d1r", "star2d3r", "box2d2r",
                                         "j2d9pt"),
                       ::testing::Values(1, 2, 4)));

//===----------------------------------------------------------------------===//
// 3D sweep
//===----------------------------------------------------------------------===//

using Sweep3dParam = std::tuple<const char *, int, int>;

class BlockedSweep3d : public ::testing::TestWithParam<Sweep3dParam> {};

TEST_P(BlockedSweep3d, MatchesReference) {
  auto [Name, BT, HS] = GetParam();
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = BT;
  int Span = Program->radius() * 2 * BT + 6;
  Config.BS = {Span, Span + 2};
  Config.HS = HS;
  ASSERT_TRUE(Config.isFeasible(Program->radius()));
  EXPECT_TRUE(blockedMatchesReference<float>(*Program, Config, {13, 12, 11},
                                             /*TimeSteps=*/5,
                                             /*Poison=*/false))
      << Name << " " << Config.toString();
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDegrees, BlockedSweep3d,
    ::testing::Combine(::testing::Values("star3d1r", "star3d2r", "box3d1r",
                                         "j3d27pt"),
                       ::testing::Values(1, 2, 3), ::testing::Values(0, 5)));

//===----------------------------------------------------------------------===//
// Double-precision spot sweep
//===----------------------------------------------------------------------===//

class DoubleSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(DoubleSweep, MatchesReference) {
  auto Program = makeBenchmarkStencil(GetParam(), ScalarType::Double);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = 3;
  Config.BS = Program->numDims() == 2
                  ? std::vector<int>{Program->radius() * 6 + 10}
                  : std::vector<int>{Program->radius() * 6 + 8,
                                     Program->radius() * 6 + 8};
  Config.HS = 8;
  ASSERT_TRUE(Config.isFeasible(Program->radius()));
  std::vector<long long> Extents =
      Program->numDims() == 2 ? std::vector<long long>{21, 18}
                              : std::vector<long long>{11, 10, 9};
  EXPECT_TRUE(blockedMatchesReference<double>(*Program, Config, Extents,
                                              /*TimeSteps=*/6,
                                              /*Poison=*/false))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, DoubleSweep,
                         ::testing::Values("j2d5pt", "j2d9pt", "gradient2d",
                                           "star3d1r", "box2d1r",
                                           "j3d27pt"));

//===----------------------------------------------------------------------===//
// Time-step parity sweep: every (IT, bT) combination small enough to run
//===----------------------------------------------------------------------===//

class ParitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ParitySweep, AllTimeStepCounts) {
  int BT = GetParam();
  auto Program = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = BT;
  Config.BS = {2 * BT + 10};
  for (long long IT = 0; IT <= 9; ++IT) {
    EXPECT_TRUE(blockedMatchesReference<float>(*Program, Config, {17, 15},
                                               IT, /*Poison=*/false))
        << "IT=" << IT << " bT=" << BT;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, ParitySweep,
                         ::testing::Values(1, 2, 3, 4, 5));
