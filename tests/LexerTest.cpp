//===- LexerTest.cpp - Unit tests for the lexer ------------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

std::vector<Token> lex(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<Token> Tokens = L.tokenizeAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  return Tokens;
}

} // namespace

TEST(Lexer, EmptyInput) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, KeywordsAndIdentifiers) {
  std::vector<Token> Tokens = lex("for int float double foo I_S1 _x");
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwFor));
  EXPECT_TRUE(Tokens[1].is(TokenKind::KwInt));
  EXPECT_TRUE(Tokens[2].is(TokenKind::KwFloat));
  EXPECT_TRUE(Tokens[3].is(TokenKind::KwDouble));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[5].Text, "I_S1");
  EXPECT_EQ(Tokens[6].Text, "_x");
}

TEST(Lexer, IntegerLiteral) {
  std::vector<Token> Tokens = lex("118");
  ASSERT_TRUE(Tokens[0].is(TokenKind::Number));
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 118.0);
  EXPECT_TRUE(Tokens[0].IsIntegerLiteral);
  EXPECT_FALSE(Tokens[0].IsFloatSuffixed);
}

TEST(Lexer, FloatSuffixedLiteral) {
  std::vector<Token> Tokens = lex("5.1f 12.0F 7f");
  ASSERT_TRUE(Tokens[0].is(TokenKind::Number));
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 5.1);
  EXPECT_TRUE(Tokens[0].IsFloatSuffixed);
  EXPECT_FALSE(Tokens[0].IsIntegerLiteral);
  EXPECT_TRUE(Tokens[1].IsFloatSuffixed);
  EXPECT_TRUE(Tokens[2].IsFloatSuffixed);
  EXPECT_FALSE(Tokens[2].IsIntegerLiteral);
}

TEST(Lexer, ExponentLiteral) {
  std::vector<Token> Tokens = lex("1e3 2.5e-2");
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 1000.0);
  EXPECT_FALSE(Tokens[0].IsIntegerLiteral);
  EXPECT_DOUBLE_EQ(Tokens[1].NumberValue, 0.025);
}

TEST(Lexer, OperatorsAndPunctuation) {
  std::vector<Token> Tokens = lex("( ) [ ] { } ; , = < <= ++ += + - * / %");
  TokenKind Expected[] = {
      TokenKind::LParen,    TokenKind::RParen,   TokenKind::LBracket,
      TokenKind::RBracket,  TokenKind::LBrace,   TokenKind::RBrace,
      TokenKind::Semicolon, TokenKind::Comma,    TokenKind::Assign,
      TokenKind::Less,      TokenKind::LessEqual, TokenKind::PlusPlus,
      TokenKind::PlusEqual, TokenKind::Plus,     TokenKind::Minus,
      TokenKind::Star,      TokenKind::Slash,    TokenKind::Percent,
      TokenKind::EndOfFile};
  ASSERT_EQ(Tokens.size(), std::size(Expected));
  for (std::size_t I = 0; I < Tokens.size(); ++I)
    EXPECT_TRUE(Tokens[I].is(Expected[I])) << "token " << I;
}

TEST(Lexer, LineAndColumnTracking) {
  std::vector<Token> Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1);
  EXPECT_EQ(Tokens[0].Loc.Column, 1);
  EXPECT_EQ(Tokens[1].Loc.Line, 2);
  EXPECT_EQ(Tokens[1].Loc.Column, 3);
}

TEST(Lexer, LineComments) {
  std::vector<Token> Tokens = lex("a // comment with * and /\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(Lexer, BlockComments) {
  std::vector<Token> Tokens = lex("a /* multi\nline */ b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Loc.Line, 2);
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("a /* oops", Diags);
  L.tokenizeAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownCharacterDiagnosed) {
  DiagnosticEngine Diags;
  Lexer L("a @ b", Diags);
  std::vector<Token> Tokens = L.tokenizeAll();
  EXPECT_TRUE(Diags.hasErrors());
  bool SawUnknown = false;
  for (const Token &T : Tokens)
    if (T.is(TokenKind::Unknown))
      SawUnknown = true;
  EXPECT_TRUE(SawUnknown);
}

TEST(Lexer, Fig4FirstLine) {
  std::vector<Token> Tokens = lex("for (t = 0; t < I_T; t++)");
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwFor));
  EXPECT_TRUE(Tokens[1].is(TokenKind::LParen));
  EXPECT_EQ(Tokens[2].Text, "t");
  EXPECT_TRUE(Tokens[3].is(TokenKind::Assign));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Number));
  EXPECT_TRUE(Tokens[5].is(TokenKind::Semicolon));
  EXPECT_TRUE(Tokens[11].is(TokenKind::PlusPlus));
}
