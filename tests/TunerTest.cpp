//===- TunerTest.cpp - Section 6.3 tuning flow --------------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/Tuner.h"

#include "model/RegisterModel.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

TEST(Tuner, EnumerationMatchesSection63Counts) {
  Tuner T(GpuSpec::teslaV100());
  auto P2 = makeStarStencil(2, 1, ScalarType::Float);
  // 16 bT x 3 bS x 3 hS = 144 configurations for 2D.
  EXPECT_EQ(T.enumerateConfigs(*P2).size(), 144u);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  // 8 bT x 4 shapes x 2 hS = 64 configurations for 3D.
  EXPECT_EQ(T.enumerateConfigs(*P3).size(), 64u);
}

TEST(Tuner, RankingIsSortedAndFeasible) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto Ranked = T.rankByModel(*P, Problem, 5);
  ASSERT_EQ(Ranked.size(), 5u);
  for (std::size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_GE(Ranked[I - 1].Model.Gflops, Ranked[I].Model.Gflops);
  for (const RankedConfig &R : Ranked) {
    EXPECT_TRUE(R.Model.Feasible);
    EXPECT_TRUE(R.Config.isFeasible(P->radius()));
  }
}

TEST(Tuner, HighDegreePreferredForFirstOrder2d) {
  // Fig. 8: first-order 2D stencils peak at high temporal degrees (8-15).
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_GE(Outcome.Best.BT, 6) << Outcome.Best.toString();
}

TEST(Tuner, LowDegreePreferredForHighOrder3dBox) {
  // Table 5: box3d3r/box3d4r peak at bT = 1 (register pressure and halo
  // ratio kill temporal scaling).
  Tuner T(GpuSpec::teslaV100());
  auto P = makeBoxStencil(3, 4, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(3));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_LE(Outcome.Best.BT, 2) << Outcome.Best.toString();
}

TEST(Tuner, TunedBeatsSconfForFirstOrder) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  TuneOutcome Tuned = T.tune(*P, Problem);
  ASSERT_TRUE(Tuned.Feasible);
  BlockConfig Sconf = Tuner::sconf(*P);
  MeasuredResult SconfResult =
      simulateMeasured(*P, T.spec(), Sconf, Problem);
  ASSERT_TRUE(SconfResult.Feasible);
  EXPECT_GT(Tuned.BestMeasured.MeasuredGflops, SconfResult.MeasuredGflops);
}

TEST(Tuner, SconfShapes) {
  auto P2 = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig S2 = Tuner::sconf(*P2);
  EXPECT_EQ(S2.BT, 4);
  EXPECT_EQ(S2.BS, (std::vector<int>{32}));
  EXPECT_EQ(S2.HS, 128);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig S3 = Tuner::sconf(*P3);
  EXPECT_EQ(S3.BS.size(), 2u);
  EXPECT_EQ(S3.HS, 0) << "streaming division disabled for 3D Sconf";
}

TEST(Tuner, ModelAccuracyWithinPaperBands) {
  // Section 7.2: measured/model accuracy averages ~67% on V100 and ~49% on
  // P100 for shared-memory-bound stencils.
  for (auto [Spec, Low, High] :
       {std::tuple{GpuSpec::teslaV100(), 0.5, 0.95},
        std::tuple{GpuSpec::teslaP100(), 0.3, 0.75}}) {
    Tuner T(Spec);
    auto P = makeStarStencil(2, 1, ScalarType::Float);
    TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
    ASSERT_TRUE(Outcome.Feasible);
    double Accuracy = Outcome.BestMeasured.modelAccuracy();
    EXPECT_GE(Accuracy, Low) << Spec.Name;
    EXPECT_LE(Accuracy, High) << Spec.Name;
  }
}

TEST(Tuner, DoubleDivisionPenaltyShowsUp) {
  // j2d5pt double achieves far less than its model prediction (Fig. 6
  // discussion), unlike the division-free star2d1r.
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto Jacobi = makeJacobi2d5pt(ScalarType::Double);
  auto Star = makeStarStencil(2, 1, ScalarType::Double);
  TuneOutcome JacobiOutcome = T.tune(*Jacobi, Problem);
  TuneOutcome StarOutcome = T.tune(*Star, Problem);
  ASSERT_TRUE(JacobiOutcome.Feasible && StarOutcome.Feasible);
  EXPECT_LT(JacobiOutcome.BestMeasured.modelAccuracy(),
            StarOutcome.BestMeasured.modelAccuracy());
}

TEST(Tuner, RegisterCapChosenFromMenu) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 2, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  ASSERT_TRUE(Outcome.Feasible);
  bool InMenu = Outcome.Best.RegisterCap == 0 ||
                Outcome.Best.RegisterCap == 32 ||
                Outcome.Best.RegisterCap == 64 ||
                Outcome.Best.RegisterCap == 96;
  EXPECT_TRUE(InMenu);
  // The chosen cap never forces spilling.
  if (Outcome.Best.RegisterCap > 0) {
    EXPECT_GE(Outcome.Best.RegisterCap,
              an5dRegistersPerThread(*P, Outcome.Best.BT));
  }
}

TEST(Tuner, AllBenchmarksTuneFeasibly) {
  Tuner T(GpuSpec::teslaV100());
  for (const std::string &Name : benchmarkStencilNames()) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
    TuneOutcome Outcome = T.tune(*P, Problem);
    EXPECT_TRUE(Outcome.Feasible) << Name;
    if (Outcome.Feasible) {
      EXPECT_GT(Outcome.BestMeasured.MeasuredGflops, 0) << Name;
      EXPECT_LT(Outcome.BestMeasured.MeasuredGflops,
                T.spec().PeakGflopsFloat)
          << Name << ": cannot beat peak";
    }
  }
}
