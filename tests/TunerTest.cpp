//===- TunerTest.cpp - Section 6.3 tuning flow --------------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/Tuner.h"

#include "model/RegisterModel.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace an5d;

TEST(Tuner, EnumerationMatchesSection63Counts) {
  Tuner T(GpuSpec::teslaV100());
  auto P2 = makeStarStencil(2, 1, ScalarType::Float);
  // 16 bT x 4 bS x 3 hS = 192 configurations for 2D.
  EXPECT_EQ(T.enumerateConfigs(*P2).size(), 192u);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  // 8 bT x 4 shapes x 2 hS = 64 configurations for 3D.
  EXPECT_EQ(T.enumerateConfigs(*P3).size(), 64u);
  auto P1 = makeStarStencil(1, 1, ScalarType::Float);
  // 16 bT x 5 hS (off + four chunk lengths) = 80 configurations for 1D.
  EXPECT_EQ(T.enumerateConfigs(*P1).size(), 80u);
  for (const BlockConfig &C : T.enumerateConfigs(*P1))
    EXPECT_TRUE(C.BS.empty()) << "1D streams: no blocked dimensions";
}

TEST(Tuner, OneDimensionalRankingIsNonEmpty) {
  // The 1D grid used to emit configs BlockConfig::isFeasible rejected
  // unconditionally, so every 1D tune came back infeasible.
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(1);
  for (const char *Name : {"star1d1r", "star1d4r", "box1d2r", "j1d3pt"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(P, nullptr) << Name;
    auto Ranked = T.rankByModel(*P, Problem, 5);
    ASSERT_FALSE(Ranked.empty()) << Name;
    for (const RankedConfig &R : Ranked) {
      EXPECT_TRUE(R.Model.Feasible) << Name;
      EXPECT_TRUE(R.Config.BS.empty()) << Name;
    }
  }
}

TEST(Tuner, OneDimensionalTunePrefersStreamingDivision) {
  // hS=off launches a single thread block; any chunked config beats it on
  // SM utilization, so the tuned pick must divide the streaming dimension.
  Tuner T(GpuSpec::teslaV100());
  auto P = makeJacobi1d3pt(ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(1));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_GT(Outcome.Best.HS, 0) << Outcome.Best.toString();
  EXPECT_GT(Outcome.BestMeasured.MeasuredGflops, 0);
}

TEST(Tuner, RankingIsSortedAndFeasible) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto Ranked = T.rankByModel(*P, Problem, 5);
  ASSERT_EQ(Ranked.size(), 5u);
  for (std::size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_GE(Ranked[I - 1].Model.Gflops, Ranked[I].Model.Gflops);
  for (const RankedConfig &R : Ranked) {
    EXPECT_TRUE(R.Model.Feasible);
    EXPECT_TRUE(R.Config.isFeasible(P->radius()));
  }
}

TEST(Tuner, HighDegreePreferredForFirstOrder2d) {
  // Fig. 8: first-order 2D stencils peak at high temporal degrees (8-15).
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_GE(Outcome.Best.BT, 6) << Outcome.Best.toString();
}

TEST(Tuner, LowDegreePreferredForHighOrder3dBox) {
  // Table 5: box3d3r/box3d4r peak at bT = 1 (register pressure and halo
  // ratio kill temporal scaling).
  Tuner T(GpuSpec::teslaV100());
  auto P = makeBoxStencil(3, 4, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(3));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_LE(Outcome.Best.BT, 2) << Outcome.Best.toString();
}

TEST(Tuner, TunedBeatsSconfForFirstOrder) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  TuneOutcome Tuned = T.tune(*P, Problem);
  ASSERT_TRUE(Tuned.Feasible);
  BlockConfig Sconf = Tuner::sconf(*P);
  MeasuredResult SconfResult =
      simulateMeasured(*P, T.spec(), Sconf, Problem);
  ASSERT_TRUE(SconfResult.Feasible);
  EXPECT_GT(Tuned.BestMeasured.MeasuredGflops, SconfResult.MeasuredGflops);
}

TEST(Tuner, SconfShapes) {
  auto P2 = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig S2 = Tuner::sconf(*P2);
  EXPECT_EQ(S2.BT, 4);
  EXPECT_EQ(S2.BS, (std::vector<int>{32}));
  EXPECT_EQ(S2.HS, 128);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig S3 = Tuner::sconf(*P3);
  EXPECT_EQ(S3.BS.size(), 2u);
  EXPECT_EQ(S3.HS, 0) << "streaming division disabled for 3D Sconf";
}

TEST(Tuner, ModelAccuracyWithinPaperBands) {
  // Section 7.2: measured/model accuracy averages ~67% on V100 and ~49% on
  // P100 for shared-memory-bound stencils.
  for (auto [Spec, Low, High] :
       {std::tuple{GpuSpec::teslaV100(), 0.5, 0.95},
        std::tuple{GpuSpec::teslaP100(), 0.3, 0.75}}) {
    Tuner T(Spec);
    auto P = makeStarStencil(2, 1, ScalarType::Float);
    TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
    ASSERT_TRUE(Outcome.Feasible);
    double Accuracy = Outcome.BestMeasured.modelAccuracy();
    EXPECT_GE(Accuracy, Low) << Spec.Name;
    EXPECT_LE(Accuracy, High) << Spec.Name;
  }
}

TEST(Tuner, DoubleDivisionPenaltyShowsUp) {
  // j2d5pt double achieves far less than its model prediction (Fig. 6
  // discussion), unlike the division-free star2d1r.
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto Jacobi = makeJacobi2d5pt(ScalarType::Double);
  auto Star = makeStarStencil(2, 1, ScalarType::Double);
  TuneOutcome JacobiOutcome = T.tune(*Jacobi, Problem);
  TuneOutcome StarOutcome = T.tune(*Star, Problem);
  ASSERT_TRUE(JacobiOutcome.Feasible && StarOutcome.Feasible);
  EXPECT_LT(JacobiOutcome.BestMeasured.modelAccuracy(),
            StarOutcome.BestMeasured.modelAccuracy());
}

TEST(Tuner, RegisterCapChosenFromMenu) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 2, ScalarType::Float);
  TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(2));
  ASSERT_TRUE(Outcome.Feasible);
  bool InMenu = Outcome.Best.RegisterCap == 0 ||
                Outcome.Best.RegisterCap == 32 ||
                Outcome.Best.RegisterCap == 64 ||
                Outcome.Best.RegisterCap == 96;
  EXPECT_TRUE(InMenu);
  // The chosen cap never forces spilling.
  if (Outcome.Best.RegisterCap > 0) {
    EXPECT_GE(Outcome.Best.RegisterCap,
              an5dRegistersPerThread(*P, Outcome.Best.BT));
  }
}

TEST(Tuner, AllBenchmarksTuneFeasibly) {
  Tuner T(GpuSpec::teslaV100());
  std::vector<std::string> Names = benchmarkStencilNames();
  for (const std::string &Extra : extraStencilNames())
    Names.push_back(Extra);
  for (const std::string &Name : Names) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
    TuneOutcome Outcome = T.tune(*P, Problem);
    EXPECT_TRUE(Outcome.Feasible) << Name;
    if (Outcome.Feasible) {
      EXPECT_GT(Outcome.BestMeasured.MeasuredGflops, 0) << Name;
      EXPECT_LT(Outcome.BestMeasured.MeasuredGflops,
                T.spec().PeakGflopsFloat)
          << Name << ": cannot beat peak";
    }
  }
}

TEST(Tuner, RankingIsDeterministicAcrossRepeats) {
  // The model-score comparison is epsilon-relative and falls back to a
  // total order over the configuration fields, so repeated rankings (and
  // rankings across compilers/FP flags) must agree exactly.
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  auto First = T.rankByModel(*P, Problem, 50);
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Again = T.rankByModel(*P, Problem, 50);
    ASSERT_EQ(Again.size(), First.size());
    for (std::size_t I = 0; I < First.size(); ++I) {
      EXPECT_EQ(Again[I].Config.BT, First[I].Config.BT) << I;
      EXPECT_EQ(Again[I].Config.BS, First[I].Config.BS) << I;
      EXPECT_EQ(Again[I].Config.HS, First[I].Config.HS) << I;
    }
  }
  // Adjacent entries with equal quantized scores must follow the
  // documented tie-break (the same predicate the sort uses).
  for (std::size_t I = 1; I < First.size(); ++I) {
    const RankedConfig &A = First[I - 1], &B = First[I];
    if (quantizedModelScore(A.Model.Gflops) !=
        quantizedModelScore(B.Model.Gflops))
      continue; // genuinely different scores: order by score.
    EXPECT_TRUE(A.Config.BT < B.Config.BT ||
                (A.Config.BT == B.Config.BT &&
                 (A.Config.numThreads() < B.Config.numThreads() ||
                  (A.Config.numThreads() == B.Config.numThreads() &&
                   (A.Config.BS < B.Config.BS ||
                    (A.Config.BS == B.Config.BS &&
                     A.Config.HS < B.Config.HS))))))
        << "tie at rank " << I;
  }
}

TEST(Tuner, SweepResultBitIdenticalAcrossThreadCounts) {
  // The measured sweep fans out over a thread pool, but every candidate is
  // a pure function writing its own slot: the tuned pick must be
  // bit-identical for every worker count.
  Tuner T(GpuSpec::teslaV100());
  for (const char *Name : {"j2d5pt", "star1d1r", "star3d1r"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
    TuneOptions Serial;
    Serial.Threads = 1;
    TuneOutcome Base = T.tune(*P, Problem, Serial);
    ASSERT_TRUE(Base.Feasible) << Name;
    for (int Threads : {2, 4, 8}) {
      TuneOptions Parallel;
      Parallel.Threads = Threads;
      TuneOutcome Outcome = T.tune(*P, Problem, Parallel);
      ASSERT_TRUE(Outcome.Feasible) << Name;
      EXPECT_EQ(Outcome.Best.BT, Base.Best.BT) << Name;
      EXPECT_EQ(Outcome.Best.BS, Base.Best.BS) << Name;
      EXPECT_EQ(Outcome.Best.HS, Base.Best.HS) << Name;
      EXPECT_EQ(Outcome.Best.RegisterCap, Base.Best.RegisterCap) << Name;
      EXPECT_EQ(Outcome.BestMeasured.MeasuredGflops,
                Base.BestMeasured.MeasuredGflops)
          << Name << ": bitwise-identical measurement expected";
      EXPECT_EQ(Outcome.BestMeasured.MeasuredTimeSeconds,
                Base.BestMeasured.MeasuredTimeSeconds)
          << Name;
    }
  }
}

TEST(Tuner, TuneAcrossProblemsMatchesPerProblemTunes) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  std::vector<ProblemSize> Problems;
  Problems.push_back(ProblemSize::paperDefault(2));
  ProblemSize Small;
  Small.Extents = {4096, 4096};
  Small.TimeSteps = 500;
  Problems.push_back(Small);

  TuneOptions Options;
  Options.Threads = 3;
  std::vector<TuneOutcome> Joint = T.tuneAcrossProblems(*P, Problems, Options);
  ASSERT_EQ(Joint.size(), 2u);
  for (std::size_t I = 0; I < Problems.size(); ++I) {
    TuneOutcome Single = T.tune(*P, Problems[I], Options);
    ASSERT_EQ(Joint[I].Feasible, Single.Feasible) << I;
    EXPECT_EQ(Joint[I].Best.toString(), Single.Best.toString()) << I;
    EXPECT_EQ(Joint[I].BestMeasured.MeasuredGflops,
              Single.BestMeasured.MeasuredGflops)
        << I;
  }
}

TEST(Tuner, TuneOptionsTopKLimitsSweep) {
  Tuner T(GpuSpec::teslaV100());
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  TuneOptions Narrow;
  Narrow.TopK = 1;
  TuneOutcome Outcome = T.tune(*P, Problem, Narrow);
  ASSERT_TRUE(Outcome.Feasible);
  ASSERT_EQ(Outcome.TopByModel.size(), 1u);
  // The winner must be the single ranked candidate (any register cap).
  EXPECT_EQ(Outcome.Best.BT, Outcome.TopByModel[0].Config.BT);
  EXPECT_EQ(Outcome.Best.BS, Outcome.TopByModel[0].Config.BS);
  EXPECT_EQ(Outcome.Best.HS, Outcome.TopByModel[0].Config.HS);
}
