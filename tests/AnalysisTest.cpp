//===- AnalysisTest.cpp - Schedule verifier and kernel lint tests -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The static-analysis layer end to end:
///
///  * the schedule verifier proves every feasible enumerated configuration
///    of every built-in stencil safe and agrees with
///    BlockConfig::isFeasible (modulo thread caps, which are a hardware
///    resource, not a schedule property);
///  * mutation tests corrupt one ScheduleModel invariant at a time and
///    assert the verifier reports exactly the matching violation kind;
///  * the kernel linter passes every generated and golden translation
///    unit, and each lint rule fires on a TU corrupted against it;
///  * the kernel cache's LRU size cap evicts least-recently-used
///    artifacts and reports evictions in its statistics.
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "analysis/ScheduleVerifier.h"
#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "runtime/KernelCache.h"
#include "runtime/NativeCompiler.h"
#include "sim/TimeBlockScheduler.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace an5d;

namespace {

std::vector<std::string> allBuiltinStencils() {
  std::vector<std::string> Names = benchmarkStencilNames();
  for (const std::string &Extra : extraStencilNames())
    Names.push_back(Extra);
  return Names;
}

bool hasKind(const std::vector<ScheduleViolation> &Violations,
             ScheduleViolationKind Kind) {
  return std::any_of(Violations.begin(), Violations.end(),
                     [&](const ScheduleViolation &V) { return V.Kind == Kind; });
}

bool hasRule(const LintReport &Report, LintRule Rule) {
  return std::any_of(Report.Findings.begin(), Report.Findings.end(),
                     [&](const LintFinding &F) { return F.Rule == Rule; });
}

const LintFinding *findRule(const LintReport &Report, LintRule Rule) {
  for (const LintFinding &F : Report.Findings)
    if (F.Rule == Rule)
      return &F;
  return nullptr;
}

std::string readGolden(const std::string &FileName) {
  std::ifstream In(std::string(AN5D_GOLDEN_DIR) + "/" + FileName);
  EXPECT_TRUE(In.good()) << "missing golden file " << FileName;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// A known-good 2D model to mutate: j2d5pt (radius 1) at bT=2.
ScheduleModel referenceModel2d(int Degree = 2) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {32};
  C.HS = 8;
  return buildScheduleModel(*P, C, Degree);
}

/// A known-good 1D pure-streaming model (empty bS).
ScheduleModel referenceModel1d(int Degree = 2) {
  auto P = makeStarStencil(1, 1, ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear();
  C.HS = 8;
  return buildScheduleModel(*P, C, Degree);
}

} // namespace

//===----------------------------------------------------------------------===//
// Schedule verifier: agreement with the feasibility model
//===----------------------------------------------------------------------===//

// The cross-check the tuner's VerifierRejections counter relies on: for
// every built-in stencil and every enumerated configuration, the interval
// analysis and BlockConfig::isFeasible reach the same verdict once the
// thread cap (out of the verifier's scope) is lifted.
TEST(ScheduleVerifier, AgreesWithFeasibilityOnEveryEnumeratedConfig) {
  Tuner T(GpuSpec::teslaV100());
  for (const std::string &Name : allBuiltinStencils()) {
    auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(Program, nullptr) << Name;
    for (const BlockConfig &Config : T.enumerateConfigs(*Program)) {
      ASSERT_TRUE(Config.matchesDimensionality(Program->numDims()))
          << Name << " " << Config.toString();
      const bool Feasible = Config.isFeasible(Program->radius(), INT_MAX);
      ScheduleVerifyResult Verdict = verifySchedule(*Program, Config);
      EXPECT_EQ(Verdict.proven(), Feasible)
          << Name << " " << Config.toString() << ": "
          << Verdict.toString();
      EXPECT_EQ(Verdict.DegreesChecked, Config.BT)
          << Name << " " << Config.toString();
      if (!Feasible)
        EXPECT_TRUE(hasKind(Verdict.Violations,
                            ScheduleViolationKind::BlockTooSmall))
            << Name << " " << Config.toString() << ": "
            << Verdict.toString();
    }
  }
}

TEST(ScheduleVerifier, ProvenConfigsIncludeHostScheduleCheck) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 4;
  C.BS = {128};
  C.HS = 256;
  ProblemSize Problem;
  Problem.Extents = {512, 512};
  Problem.TimeSteps = 1000;
  ScheduleVerifyResult Verdict = verifySchedule(*P, C, &Problem);
  EXPECT_TRUE(Verdict.proven()) << Verdict.toString();
  EXPECT_EQ(Verdict.DegreesChecked, 4);
  EXPECT_NE(Verdict.toString().find("proven safe"), std::string::npos);
}

TEST(ScheduleVerifier, RejectsNonPositiveTemporalDegree) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 0;
  C.BS = {64};
  ScheduleVerifyResult Verdict = verifySchedule(*P, C);
  ASSERT_FALSE(Verdict.proven());
  EXPECT_TRUE(hasKind(Verdict.Violations,
                      ScheduleViolationKind::TimeScheduleInvariant));
}

TEST(ScheduleVerifier, RejectsArityMismatch) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS.clear(); // 2D stencil needs one blocked dimension.
  C.HS = 128;
  ScheduleVerifyResult Verdict = verifySchedule(*P, C);
  ASSERT_FALSE(Verdict.proven());
  EXPECT_TRUE(hasKind(Verdict.Violations, ScheduleViolationKind::ConfigArity));
}

TEST(ScheduleVerifier, RejectsHaloConsumingBlock) {
  auto P = makeJacobi2d5pt(ScalarType::Float); // radius 1
  BlockConfig C;
  C.BT = 4;
  C.BS = {8}; // 8 - 2*4*1 = 0: no compute region at full degree.
  C.HS = 128;
  EXPECT_FALSE(C.isFeasible(P->radius(), INT_MAX));
  ScheduleVerifyResult Verdict = verifySchedule(*P, C);
  ASSERT_FALSE(Verdict.proven());
  EXPECT_TRUE(hasKind(Verdict.Violations,
                      ScheduleViolationKind::BlockTooSmall));
  // Only the degrees whose halo overflows the block are flagged: degree 4
  // needs 8 halo lanes, degree 3 needs 6 (leaving width 2). The partial
  // degrees stay safe, and each violation names the offending degree.
  for (const ScheduleViolation &V : Verdict.Violations)
    EXPECT_EQ(V.Degree, 4) << V.toString();
}

//===----------------------------------------------------------------------===//
// Schedule verifier: mutation tests (one corrupted invariant, one kind)
//===----------------------------------------------------------------------===//

TEST(ScheduleVerifierMutation, ReferenceModelsAreProven) {
  EXPECT_TRUE(verifyScheduleModel(referenceModel2d(1)).empty());
  EXPECT_TRUE(verifyScheduleModel(referenceModel2d(2)).empty());
  EXPECT_TRUE(verifyScheduleModel(referenceModel1d(1)).empty());
  EXPECT_TRUE(verifyScheduleModel(referenceModel1d(2)).empty());
}

TEST(ScheduleVerifierMutation, ShallowRingIsClobbered) {
  ScheduleModel M = referenceModel2d();
  --M.RingDepth; // 2*rad + 1 -> 2*rad: the consumer's oldest plane is hit.
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  EXPECT_TRUE(hasKind(Violations, ScheduleViolationKind::RingClobber));
  EXPECT_FALSE(hasKind(Violations, ScheduleViolationKind::HaloViolation));
}

TEST(ScheduleVerifierMutation, ShrunkTierReachViolatesHalo) {
  ScheduleModel M = referenceModel2d(); // degree 2: tier 1 reach = rad.
  --M.Tiers[0].Reach; // Tier 2's taps now escape tier 1's valid region.
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  EXPECT_TRUE(hasKind(Violations, ScheduleViolationKind::HaloViolation));
}

TEST(ScheduleVerifierMutation, ShrunkLoadSpanViolatesHalo) {
  ScheduleModel M = referenceModel2d();
  --M.LoadSpanHalo; // Tier 1's leftmost tap now reads an unloaded lane.
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  EXPECT_TRUE(hasKind(Violations, ScheduleViolationKind::HaloViolation));
  // The violation names the blocked axis and the offending tap offset.
  EXPECT_EQ(Violations.front().Axis, 1);
  EXPECT_EQ(Violations.front().Offset, -1);
}

TEST(ScheduleVerifierMutation, ShrunkGridHaloViolatesHalo) {
  ScheduleModel M = referenceModel2d();
  --M.GridHalo; // radius-1 halo cannot hold radius-1 taps.
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  for (const ScheduleViolation &V : Violations)
    EXPECT_EQ(V.Kind, ScheduleViolationKind::HaloViolation) << V.toString();
}

TEST(ScheduleVerifierMutation, SwappedWaveOrderIsCaught) {
  ScheduleModel M = referenceModel2d(); // degree 2
  // Tier 1 now runs *after* tier 2 within a streaming step, so tier 2's
  // same-step read of its producer's newest plane breaks.
  std::swap(M.Tiers[0].OrderPosition, M.Tiers[1].OrderPosition);
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  EXPECT_TRUE(hasKind(Violations,
                      ScheduleViolationKind::WaveOrderViolation));
}

TEST(ScheduleVerifierMutation, SwappedStreamLagsAreCaught) {
  ScheduleModel M = referenceModel2d(); // degree 2
  // Tier 2 now runs *ahead* of tier 1 in the stream: it reads planes its
  // producer has not written.
  std::swap(M.Tiers[0].StreamLag, M.Tiers[1].StreamLag);
  auto Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Violations.empty());
  EXPECT_TRUE(hasKind(Violations,
                      ScheduleViolationKind::WaveOrderViolation));
}

TEST(ScheduleVerifierMutation, OverlappingBlocksAreARace) {
  ScheduleModel M = referenceModel2d();
  --M.BlockStride[0]; // Adjacent blocks now share one written lane.
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind, ScheduleViolationKind::RaceOverlap);
  EXPECT_EQ(Violations.front().Axis, 1);
  EXPECT_EQ(Violations.front().Offset, 1); // one overlapping cell
}

TEST(ScheduleVerifierMutation, StretchedBlockStrideLeavesAGap) {
  ScheduleModel M = referenceModel2d();
  ++M.BlockStride[0];
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind, ScheduleViolationKind::CoverageGap);
}

TEST(ScheduleVerifierMutation, WidenedStoreIsARace) {
  ScheduleModel M = referenceModel2d();
  ++M.StoreWidth[0]; // Stores one lane into the neighbor's region...
  auto Violations = verifyScheduleModel(M);
  EXPECT_TRUE(hasKind(Violations, ScheduleViolationKind::RaceOverlap));
  // ...which is also a lane the final tier never computed.
  EXPECT_TRUE(hasKind(Violations, ScheduleViolationKind::HaloViolation));
}

TEST(ScheduleVerifierMutation, OverlappingChunksAreARace) {
  ScheduleModel M = referenceModel1d();
  --M.ChunkStride;
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind, ScheduleViolationKind::RaceOverlap);
  EXPECT_EQ(Violations.front().Axis, 0); // the streaming axis
}

TEST(ScheduleVerifierMutation, StretchedChunkStrideLeavesAGap) {
  ScheduleModel M = referenceModel1d();
  ++M.ChunkStride;
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind, ScheduleViolationKind::CoverageGap);
}

TEST(ScheduleVerifierMutation, MissingTierIsATimeScheduleInvariant) {
  ScheduleModel M = referenceModel2d(); // degree 2, two tiers
  M.Tiers.pop_back();
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind,
            ScheduleViolationKind::TimeScheduleInvariant);
}

TEST(ScheduleVerifierMutation, ExtraBlockedAxisIsAnArityViolation) {
  ScheduleModel M = referenceModel1d();
  M.BS.push_back(10); // A 1D stream has no blocked axes.
  auto Violations = verifyScheduleModel(M);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations.front().Kind, ScheduleViolationKind::ConfigArity);
}

TEST(ScheduleVerifierMutation, ViolationRendersAsDiagnostic) {
  ScheduleModel M = referenceModel2d();
  --M.RingDepth;
  ScheduleVerifyResult Result;
  Result.Violations = verifyScheduleModel(M);
  ASSERT_FALSE(Result.proven());
  DiagnosticEngine Diags;
  Result.render(Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), Result.Violations.size());
  EXPECT_NE(Diags.toString().find("ring-clobber"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Host time-block schedule invariants
//===----------------------------------------------------------------------===//

TEST(TimeBlockInvariants, GeneratedSchedulesPass) {
  for (int BT = 1; BT <= 8; ++BT)
    for (long long Steps = 1; Steps <= 40; ++Steps)
      EXPECT_EQ(describeTimeBlockScheduleViolation(
                    scheduleTimeBlocks(Steps, BT), Steps, BT),
                "")
          << "BT=" << BT << " steps=" << Steps;
}

TEST(TimeBlockInvariants, DegreeOutOfBoundsIsNamed) {
  std::string Broken = describeTimeBlockScheduleViolation({5}, 5, 4);
  EXPECT_NE(Broken.find("degree 5"), std::string::npos);
  EXPECT_NE(describeTimeBlockScheduleViolation({0, 5}, 5, 4), "");
}

TEST(TimeBlockInvariants, StepSumMismatchIsNamed) {
  std::string Broken = describeTimeBlockScheduleViolation({2, 1}, 5, 2);
  EXPECT_NE(Broken.find("3"), std::string::npos);
  EXPECT_NE(Broken.find("5"), std::string::npos);
}

TEST(TimeBlockInvariants, CallCountParityMismatchIsNamed) {
  // Two calls of degree 2 cover 4 steps but 5 are required; 2+3 covers 5
  // with even calls for an odd step count: parity broken.
  std::string Broken = describeTimeBlockScheduleViolation({2, 3}, 5, 3);
  EXPECT_NE(Broken.find("parity"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Kernel lint: every generated and golden TU is clean
//===----------------------------------------------------------------------===//

TEST(KernelLint, AllGeneratedKernelLibrariesAreClean) {
  for (const std::string &Name : allBuiltinStencils()) {
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto Program = makeBenchmarkStencil(Name, Type);
      ASSERT_NE(Program, nullptr) << Name;
      BlockConfig C;
      C.BT = 2;
      if (Program->numDims() == 2)
        C.BS = {64};
      else if (Program->numDims() == 3)
        C.BS = {16, 16};
      C.HS = 128;
      LintReport Report = lintTranslationUnit(
          generateCppKernelLibrary(*Program, C), LintTarget::KernelLibrary,
          Type);
      EXPECT_TRUE(Report.clean())
          << Name << " "
          << (Type == ScalarType::Float ? "float" : "double") << ":\n"
          << Report.toString();
    }
  }
}

TEST(KernelLint, AllGeneratedCheckProgramsAreClean) {
  for (const std::string &Name : allBuiltinStencils()) {
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto Program = makeBenchmarkStencil(Name, Type);
      ASSERT_NE(Program, nullptr) << Name;
      BlockConfig C;
      C.BT = 2;
      int Rad = Program->radius();
      if (Program->numDims() == 2)
        C.BS = {4 * Rad + 8};
      else if (Program->numDims() == 3)
        C.BS = {4 * Rad + 8, 4 * Rad + 8};
      C.HS = 8;
      ProblemSize Problem;
      Problem.Extents = Program->numDims() == 1
                            ? std::vector<long long>{95}
                        : Program->numDims() == 2
                            ? std::vector<long long>{40, 37}
                            : std::vector<long long>{14, 12, 11};
      Problem.TimeSteps = 11;
      LintReport Report = lintTranslationUnit(
          generateCppCheckProgram(*Program, C, Problem),
          LintTarget::CheckProgram, Type);
      EXPECT_TRUE(Report.clean())
          << Name << " "
          << (Type == ScalarType::Float ? "float" : "double") << ":\n"
          << Report.toString();
    }
  }
}

TEST(KernelLint, GoldenTranslationUnitsAreClean) {
  struct GoldenCase {
    const char *File;
    LintTarget Target;
    ScalarType Type;
  } Cases[] = {
      {"an5d_j2d5pt_omp.cpp.golden", LintTarget::KernelLibrary,
       ScalarType::Float},
      {"an5d_star1d1r_omp.cpp.golden", LintTarget::KernelLibrary,
       ScalarType::Float},
      {"an5d_j2d5pt_check.cpp.golden", LintTarget::CheckProgram,
       ScalarType::Float},
      {"an5d_star1d1r_check.cpp.golden", LintTarget::CheckProgram,
       ScalarType::Float},
      {"an5d_star3d1r_check.cpp.golden", LintTarget::CheckProgram,
       ScalarType::Double},
      {"an5d_j2d5pt_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_star3d1r_bt3.cu.golden", LintTarget::CudaKernel,
       ScalarType::Double},
      // 1D pure-streaming CUDA kernels (one golden per 1D builtin;
      // star1d2r doubles as the double-precision point).
      {"an5d_star1d1r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_star1d2r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Double},
      {"an5d_star1d3r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_star1d4r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_box1d1r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_box1d2r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_box1d3r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_box1d4r_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
      {"an5d_j1d3pt_bt2.cu.golden", LintTarget::CudaKernel,
       ScalarType::Float},
  };
  for (const GoldenCase &Case : Cases) {
    LintReport Report =
        lintTranslationUnit(readGolden(Case.File), Case.Target, Case.Type);
    EXPECT_TRUE(Report.clean()) << Case.File << ":\n" << Report.toString();
  }
}

TEST(KernelLint, GeneratedCudaKernelIsClean) {
  auto P = makeJacobi3d27pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {32, 16};
  C.HS = 128;
  GeneratedCuda Cuda = generateCuda(*P, C);
  LintReport Report = lintTranslationUnit(Cuda.KernelSource,
                                          LintTarget::CudaKernel,
                                          ScalarType::Float);
  EXPECT_TRUE(Report.clean()) << Report.toString();
}

//===----------------------------------------------------------------------===//
// Kernel lint: each rule fires on a TU corrupted against it
//===----------------------------------------------------------------------===//

namespace {

/// The kernel-library source the corruption tests mutate.
std::string cleanLibrarySource() {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 2;
  C.BS = {64};
  C.HS = 128;
  return generateCppKernelLibrary(*P, C);
}

/// Replaces the first occurrence of \p From in \p Text with \p To,
/// asserting it exists (a corruption that fails to apply would silently
/// test nothing).
std::string replaceFirst(std::string Text, const std::string &From,
                         const std::string &To) {
  size_t Pos = Text.find(From);
  EXPECT_NE(Pos, std::string::npos) << "corruption target missing: " << From;
  if (Pos != std::string::npos)
    Text.replace(Pos, From.size(), To);
  return Text;
}

} // namespace

TEST(KernelLintMutation, MissingAbiSymbolIsFlagged) {
  std::string Source =
      replaceFirst(cleanLibrarySource(), "an5d_block_time", "an5d_blk_time");
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  EXPECT_TRUE(hasRule(Report, LintRule::MissingSymbol));
  EXPECT_EQ(Report.Findings.front().Subject, "an5d_block_time");
}

TEST(KernelLintMutation, MissingExternCIsFlagged) {
  std::string Source = cleanLibrarySource();
  // The library may open several extern "C" regions; blank every one.
  for (size_t Pos; (Pos = Source.find("extern \"C\"")) != std::string::npos;)
    Source.replace(Pos, 10, "          ");
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  EXPECT_TRUE(hasRule(Report, LintRule::MissingExternC));
}

TEST(KernelLintMutation, WrongAbiVersionIsFlagged) {
  std::string Source = replaceFirst(cleanLibrarySource(),
                                    "an5d_abi_version(void) { return 1; }",
                                    "an5d_abi_version(void) { return 7; }");
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  EXPECT_TRUE(hasRule(Report, LintRule::AbiVersionMismatch));
}

TEST(KernelLintMutation, UnsuffixedFloatLiteralIsFlagged) {
  // The j2d5pt 5.1 coefficient rounds to float as 5.0999999f; dropping
  // the suffix makes it evaluate in double precision.
  std::string Source =
      replaceFirst(cleanLibrarySource(), "5.0999999f", "5.0999999");
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  ASSERT_TRUE(hasRule(Report, LintRule::FloatLiteralPolicy));
  EXPECT_EQ(Report.Findings.front().Subject, "5.0999999");
  EXPECT_GT(Report.Findings.front().Line, 0);
}

TEST(KernelLintMutation, SuffixedLiteralInDoubleTuIsFlagged) {
  auto P = makeJacobi2d5pt(ScalarType::Double);
  BlockConfig C;
  C.BT = 2;
  C.BS = {64};
  C.HS = 128;
  std::string Source = generateCppKernelLibrary(*P, C);
  ASSERT_TRUE(lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                  ScalarType::Double)
                  .clean());
  Source += "\nstatic const double an5d_lint_probe = 2.5f;\n";
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Double);
  ASSERT_FALSE(Report.clean());
  EXPECT_TRUE(hasRule(Report, LintRule::FloatLiteralPolicy));
  EXPECT_EQ(Report.Findings.front().Subject, "2.5f");
}

TEST(KernelLintMutation, BannedCallIsFlagged) {
  std::string Source = cleanLibrarySource() +
                       "\nextern \"C\" void an5d_dbg(void) { "
                       "printf(\"%d\", 1); }\n";
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  EXPECT_TRUE(hasRule(Report, LintRule::BannedCall));
  EXPECT_EQ(Report.Findings.front().Subject, "printf");
}

TEST(KernelLintMutation, BannedCallAppliesToCheckProgramsToo) {
  // printf is legitimate in a check program (it reports PASS/FAIL), but
  // process control is banned in every TU flavor.
  LintReport Clean = lintTranslationUnit(
      "int main() { printf(\"ok\"); return 0; }", LintTarget::CheckProgram,
      ScalarType::Float);
  EXPECT_FALSE(hasRule(Clean, LintRule::BannedCall));
  LintReport Dirty = lintTranslationUnit(
      "int main() { system(\"rm\"); return 0; }", LintTarget::CheckProgram,
      ScalarType::Float);
  EXPECT_TRUE(hasRule(Dirty, LintRule::BannedCall));
}

TEST(KernelLintMutation, MissingRestrictIsFlagged) {
  std::string Source = cleanLibrarySource();
  // Strip every __restrict__ from the invocation's parameter list.
  size_t Pos;
  while ((Pos = Source.find("__restrict__ ")) != std::string::npos)
    Source.erase(Pos, 13);
  LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  EXPECT_TRUE(hasRule(Report, LintRule::MissingRestrict));
  EXPECT_EQ(Report.Findings.front().Subject, "runInvocation");
}

TEST(KernelLintMutation, CudaWithoutGlobalKernelIsFlagged) {
  LintReport Report = lintTranslationUnit(
      "extern \"C\" void not_a_kernel(float *__restrict__ p) { *p = 1.0f; }",
      LintTarget::CudaKernel, ScalarType::Float);
  EXPECT_TRUE(hasRule(Report, LintRule::MissingKernelQualifier));
  EXPECT_FALSE(hasRule(Report, LintRule::MissingExternC));
  EXPECT_FALSE(hasRule(Report, LintRule::MissingRestrict));
}

TEST(KernelLintMutation, FindingRendersAsDiagnostic) {
  LintReport Report = lintTranslationUnit("float x = 1.5;",
                                          LintTarget::CheckProgram,
                                          ScalarType::Float);
  ASSERT_FALSE(Report.clean());
  DiagnosticEngine Diags;
  Report.render(Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find("float-literal-policy"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Lint internals: the comment/string stripper
//===----------------------------------------------------------------------===//

TEST(LintStripper, BlanksCommentsAndStringsPreservingLines) {
  std::string Source = "int a; // trailing 1.5\n"
                       "/* block 2.5\n"
                       "   spans lines */ int b;\n"
                       "const char *s = \"quoted 3.5 \\\" str\";\n"
                       "char c = '7';\n";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(std::count(Source.begin(), Source.end(), '\n'),
            std::count(Stripped.begin(), Stripped.end(), '\n'));
  EXPECT_EQ(Source.size(), Stripped.size());
  EXPECT_EQ(Stripped.find("1.5"), std::string::npos);
  EXPECT_EQ(Stripped.find("2.5"), std::string::npos);
  EXPECT_EQ(Stripped.find("3.5"), std::string::npos);
  EXPECT_EQ(Stripped.find('7'), std::string::npos);
  EXPECT_NE(Stripped.find("int a;"), std::string::npos);
  EXPECT_NE(Stripped.find("int b;"), std::string::npos);
}

TEST(LintStripper, LiteralsInCommentsDoNotTripTheFloatPolicy) {
  // "Section 4.3.1" in a comment must not read as an unsuffixed literal.
  LintReport Report = lintTranslationUnit(
      "// Section 4.3.1 halo rule\n"
      "/* weight 0.25 documented */\n"
      "float x = 1.5f;\n",
      LintTarget::CheckProgram, ScalarType::Float);
  EXPECT_FALSE(hasRule(Report, LintRule::FloatLiteralPolicy));
}

TEST(LintStripper, ScientificAndSeparatorLiteralsAreParsed) {
  LintReport Double = lintTranslationUnit(
      "double a = 1e9; double b = 2.5E-3; double c = 1'000.5;\n"
      "int i = 0x1F; int j = 1'000'000;\n",
      LintTarget::CheckProgram, ScalarType::Double);
  EXPECT_FALSE(hasRule(Double, LintRule::FloatLiteralPolicy));
  LintReport Float = lintTranslationUnit("float a = 1e9;",
                                         LintTarget::CheckProgram,
                                         ScalarType::Float);
  EXPECT_TRUE(hasRule(Float, LintRule::FloatLiteralPolicy));
}

TEST(LintStripper, RawStringLiteralIsBlankedWhole) {
  // A raw string may contain quotes and backslashes that would desync the
  // escape-aware String state; everything up to )" must be blanked and the
  // code after it must still lint as code.
  std::string Source = "const char *r = R\"(weight 1.5 \" quote \\ slash)\";\n"
                       "float bad = 2.5;\n";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(Source.size(), Stripped.size());
  EXPECT_EQ(Stripped.find("1.5"), std::string::npos);
  EXPECT_NE(Stripped.find("float bad"), std::string::npos);
  EXPECT_NE(Stripped.find("2.5"), std::string::npos);

  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  const LintFinding *F = findRule(Report, LintRule::FloatLiteralPolicy);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Subject, "2.5");
  EXPECT_EQ(F->Line, 2)
      << "the multi-character raw literal must not shift line accounting";
}

TEST(LintStripper, DelimitedRawStringStopsAtItsOwnTerminator) {
  // The )" inside the delimited literal is content, not a terminator.
  std::string Source =
      "const char *r = R\"an5d(inner 3.5 )\" still inside)an5d\";\n"
      "float after = 4.5f;\n";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(Stripped.find("3.5"), std::string::npos);
  EXPECT_EQ(Stripped.find("still inside"), std::string::npos);
  EXPECT_NE(Stripped.find("float after = 4.5f;"), std::string::npos);
  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  EXPECT_FALSE(hasRule(Report, LintRule::FloatLiteralPolicy));
}

TEST(LintStripper, EncodingPrefixedRawStringsAreRecognized) {
  std::string Source = "const char *a = u8R\"(u8 raw 5.5)\";\n"
                       "const wchar_t *b = LR\"(wide raw 6.5)\";\n";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(Stripped.find("5.5"), std::string::npos);
  EXPECT_EQ(Stripped.find("6.5"), std::string::npos);
  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  EXPECT_FALSE(hasRule(Report, LintRule::FloatLiteralPolicy));
}

TEST(LintStripper, IdentifierEndingInRIsNotARawStringPrefix) {
  // FOOR"(x)" after an identifier character is an ordinary string: it
  // closes at the next quote, so the literal after it is still code.
  std::string Source = "auto s = FOOR\"(text)\"; float bad = 7.5;\n";
  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  const LintFinding *F = findRule(Report, LintRule::FloatLiteralPolicy);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Subject, "7.5");
}

TEST(LintStripper, UnterminatedRawStringBlanksToEndOfFile) {
  std::string Source = "const char *r = R\"(never closed 8.5\nfloat x = 9.5;";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(Stripped.find("8.5"), std::string::npos);
  EXPECT_EQ(Stripped.find("9.5"), std::string::npos);
  EXPECT_EQ(std::count(Source.begin(), Source.end(), '\n'),
            std::count(Stripped.begin(), Stripped.end(), '\n'));
}

TEST(LintStripper, BackslashContinuationExtendsLineComments) {
  // The backslash-newline splice keeps the next physical line inside the
  // // comment; the literal on it must not trip the float policy, and the
  // first genuine code line after the comment still lints.
  std::string Source = "// spliced comment \\\n"
                       "   hidden weight 1.5 continues here\n"
                       "float ok = 2.5f;\n"
                       "float bad = 3.5;\n";
  std::string Stripped = stripCommentsAndStrings(Source);
  EXPECT_EQ(Stripped.find("1.5"), std::string::npos);
  EXPECT_NE(Stripped.find("float ok = 2.5f;"), std::string::npos);
  EXPECT_EQ(std::count(Source.begin(), Source.end(), '\n'),
            std::count(Stripped.begin(), Stripped.end(), '\n'));

  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  const LintFinding *F = findRule(Report, LintRule::FloatLiteralPolicy);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Subject, "3.5");
  EXPECT_EQ(F->Line, 4);
}

TEST(LintStripper, CrLfContinuationAlsoSplices) {
  std::string Source = "// comment \\\r\n"
                       "   still hidden 4.5\r\n"
                       "float bad = 5.5;\r\n";
  LintReport Report = lintTranslationUnit(Source, LintTarget::CheckProgram,
                                          ScalarType::Float);
  const LintFinding *F = findRule(Report, LintRule::FloatLiteralPolicy);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Subject, "5.5");
}

//===----------------------------------------------------------------------===//
// Tuner integration: the verifier never rejects what the model accepts
//===----------------------------------------------------------------------===//

TEST(VerifierTunerIntegration, SimulatedTuneHasNoVerifierRejections) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome =
      T.tune(*P, ProblemSize::paperDefault(P->numDims()));
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_EQ(Outcome.VerifierRejections, 0u) << Outcome.FirstRejectionReason;
}

//===----------------------------------------------------------------------===//
// Kernel cache: LRU size cap
//===----------------------------------------------------------------------===//

namespace {

std::string freshCacheDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "an5d-analysis-cache-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// A trivially compilable source whose size (and hash) varies with \p Tag.
std::string tinySource(const std::string &Tag) {
  return "extern \"C\" int an5d_tag_" + Tag + "(void) { return " +
         std::to_string(Tag.size()) + "; }\n";
}

} // namespace

TEST(KernelCacheLru, DefaultCapComesFromTheEnvironment) {
  unsetenv("AN5D_KERNEL_CACHE_MAX_MB");
  EXPECT_EQ(KernelCache::defaultMaxBytes(), 512LL << 20);
  setenv("AN5D_KERNEL_CACHE_MAX_MB", "64", 1);
  EXPECT_EQ(KernelCache::defaultMaxBytes(), 64LL << 20);
  setenv("AN5D_KERNEL_CACHE_MAX_MB", "0", 1);
  EXPECT_EQ(KernelCache::defaultMaxBytes(), 0);
  unsetenv("AN5D_KERNEL_CACHE_MAX_MB");
  KernelCache Cache(freshCacheDir("default-cap"));
  EXPECT_EQ(Cache.maxBytes(), 512LL << 20);
}

TEST(KernelCacheLru, EvictsLeastRecentlyUsedOverCap) {
  NativeCompiler Compiler;
  if (!Compiler.available())
    GTEST_SKIP() << "no host compiler";
  // A cap of one byte keeps nothing but the artifact just built.
  KernelCache Cache(freshCacheDir("evict"), 1);
  KernelArtifact A = Cache.getOrBuild(tinySource("a"), Compiler);
  ASSERT_TRUE(A.Ok) << A.Log;
  EXPECT_TRUE(std::filesystem::exists(A.LibraryPath));

  KernelArtifact B = Cache.getOrBuild(tinySource("b"), Compiler);
  ASSERT_TRUE(B.Ok) << B.Log;
  // B survives (eviction never removes the key just built); A is gone.
  EXPECT_TRUE(std::filesystem::exists(B.LibraryPath));
  EXPECT_FALSE(std::filesystem::exists(A.LibraryPath));
  EXPECT_FALSE(std::filesystem::exists(A.SourcePath));
  EXPECT_GE(Cache.stats().Evictions, 1u);

  // The evicted kernel self-heals: the next request recompiles it.
  KernelArtifact A2 = Cache.getOrBuild(tinySource("a"), Compiler);
  ASSERT_TRUE(A2.Ok) << A2.Log;
  EXPECT_FALSE(A2.CacheHit);
}

TEST(KernelCacheLru, HitRefreshesRecency) {
  NativeCompiler Compiler;
  if (!Compiler.available())
    GTEST_SKIP() << "no host compiler";
  // Generous cap first so three artifacts coexist.
  std::string Dir = freshCacheDir("touch");
  KernelArtifact A, B;
  {
    KernelCache Warm(Dir, 0);
    A = Warm.getOrBuild(tinySource("older"), Compiler);
    ASSERT_TRUE(A.Ok) << A.Log;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    B = Warm.getOrBuild(tinySource("newer"), Compiler);
    ASSERT_TRUE(B.Ok) << B.Log;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Touch A: a cache hit must refresh its recency, making B the LRU.
    KernelArtifact Hit = Warm.getOrBuild(tinySource("older"), Compiler);
    ASSERT_TRUE(Hit.Ok);
    EXPECT_TRUE(Hit.CacheHit);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Now a capped cache builds a third kernel: B (least recently used)
  // must go first; A (touched) survives alongside the new artifact.
  long long Cap = static_cast<long long>(
      std::filesystem::file_size(A.LibraryPath) +
      std::filesystem::file_size(A.SourcePath) + 4096);
  KernelCache Capped(Dir, Cap);
  KernelArtifact C = Capped.getOrBuild(tinySource("third"), Compiler);
  ASSERT_TRUE(C.Ok) << C.Log;
  EXPECT_TRUE(std::filesystem::exists(C.LibraryPath));
  EXPECT_FALSE(std::filesystem::exists(B.LibraryPath));
  EXPECT_GE(Capped.stats().Evictions, 1u);
}

TEST(KernelCacheLru, UnlimitedCacheNeverEvicts) {
  NativeCompiler Compiler;
  if (!Compiler.available())
    GTEST_SKIP() << "no host compiler";
  KernelCache Cache(freshCacheDir("unlimited"), 0);
  EXPECT_EQ(Cache.maxBytes(), 0);
  std::vector<KernelArtifact> Artifacts;
  for (const char *Tag : {"one", "two", "three"}) {
    Artifacts.push_back(Cache.getOrBuild(tinySource(Tag), Compiler));
    ASSERT_TRUE(Artifacts.back().Ok) << Artifacts.back().Log;
  }
  for (const KernelArtifact &Artifact : Artifacts)
    EXPECT_TRUE(std::filesystem::exists(Artifact.LibraryPath));
  EXPECT_EQ(Cache.stats().Evictions, 0u);
}
