//===- ExprEvalTest.cpp - Unit tests for typed expression evaluation ---------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprEval.h"
#include "ir/StencilExpr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace an5d;

namespace {

/// Evaluates \p E with no grid reads and no coefficients; any lookup fails
/// the test.
template <typename T> T evalClosed(const StencilExpr &E) {
  return evalExpr<T>(
      E,
      [](const GridReadExpr &) -> T {
        ADD_FAILURE() << "unexpected grid read";
        return T(0);
      },
      [](const std::string &) -> T {
        ADD_FAILURE() << "unexpected coefficient lookup";
        return T(0);
      });
}

} // namespace

TEST(IsKnownMathCall, AcceptsEveryEvaluatorBuiltin) {
  for (const char *Name : {"sqrt", "fabs", "exp", "log", "sin", "cos"}) {
    EXPECT_TRUE(isKnownMathCall(Name)) << Name;
    EXPECT_TRUE(isKnownMathCall(std::string(Name) + "f")) << Name << "f";
  }
}

TEST(IsKnownMathCall, RejectsUnknownCallees) {
  EXPECT_FALSE(isKnownMathCall("fmin"));
  EXPECT_FALSE(isKnownMathCall("fmax"));
  EXPECT_FALSE(isKnownMathCall("pow"));
  EXPECT_FALSE(isKnownMathCall("tan"));
  EXPECT_FALSE(isKnownMathCall(""));
  EXPECT_FALSE(isKnownMathCall("SQRT"));
  EXPECT_FALSE(isKnownMathCall("sqrtl"));
}

TEST(MathFnRegistry, CalleeAndNameRoundTrip) {
  for (MathFn Fn : {MathFn::Sqrt, MathFn::Fabs, MathFn::Exp, MathFn::Log,
                    MathFn::Sin, MathFn::Cos}) {
    std::optional<MathFn> Back = mathFnForCallee(mathFnName(Fn));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, Fn);
    // The float spelling resolves to the same opcode.
    Back = mathFnForCallee(std::string(mathFnName(Fn)) + "f");
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, Fn);
  }
}

TEST(ApplyMathCall, MatchesLibm) {
  EXPECT_DOUBLE_EQ(applyMathCall<double>("sqrt", 2.0), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(applyMathCall<double>("fabs", -3.5), 3.5);
  EXPECT_DOUBLE_EQ(applyMathCall<double>("exp", 1.0), std::exp(1.0));
  EXPECT_DOUBLE_EQ(applyMathCall<double>("log", 2.0), std::log(2.0));
  EXPECT_DOUBLE_EQ(applyMathCall<double>("sin", 0.5), std::sin(0.5));
  EXPECT_DOUBLE_EQ(applyMathCall<double>("cos", 0.5), std::cos(0.5));
  EXPECT_FLOAT_EQ(applyMathCall<float>("sqrtf", 9.0f), 3.0f);
  EXPECT_FLOAT_EQ(applyMathCall<float>("fabsf", -0.25f), 0.25f);
  EXPECT_FLOAT_EQ(applyMathCall<float>("expf", 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(applyMathCall<float>("logf", 1.0f), 0.0f);
  EXPECT_FLOAT_EQ(applyMathCall<float>("sinf", 0.5f), std::sin(0.5f));
  EXPECT_FLOAT_EQ(applyMathCall<float>("cosf", 0.5f), std::cos(0.5f));
}

TEST(ApplyMathCallDeathTest, UnknownBuiltinReportsFatalDiagnostic) {
  EXPECT_DEATH(applyMathCall<double>("pow", 2.0),
               "unknown math builtin 'pow'");
}

TEST(EvalExpr, NumberTruncatesToElementType) {
  ExprPtr E = makeNumber(0.1);
  EXPECT_DOUBLE_EQ(evalClosed<double>(*E), 0.1);
  // float evaluation must round the double literal to float precision.
  EXPECT_EQ(evalClosed<float>(*E), 0.1f);
}

TEST(EvalExpr, CoefficientGoesThroughLookup) {
  ExprPtr E = makeAdd(makeCoefficient("c1"), makeCoefficient("c2"));
  std::map<std::string, double> Coefs = {{"c1", 1.5}, {"c2", 2.5}};
  double Got = evalExpr<double>(
      *E, [](const GridReadExpr &) { return 0.0; },
      [&](const std::string &Name) { return Coefs.at(Name); });
  EXPECT_DOUBLE_EQ(Got, 4.0);
}

TEST(EvalExpr, GridReadReceivesTheNode) {
  ExprPtr E = makeGridRead("A", {-1, 2});
  double Got = evalExpr<double>(
      *E,
      [](const GridReadExpr &Read) {
        EXPECT_EQ(Read.array(), "A");
        EXPECT_EQ(Read.offsets(), (std::vector<int>{-1, 2}));
        return 7.0;
      },
      [](const std::string &) { return 0.0; });
  EXPECT_DOUBLE_EQ(Got, 7.0);
}

TEST(EvalExpr, UnaryNegation) {
  ExprPtr E = makeNeg(makeNumber(4.0));
  EXPECT_DOUBLE_EQ(evalClosed<double>(*E), -4.0);
  ExprPtr Nested = makeNeg(makeNeg(makeNumber(4.0)));
  EXPECT_DOUBLE_EQ(evalClosed<double>(*Nested), 4.0);
}

TEST(EvalExpr, AllBinaryOperators) {
  EXPECT_DOUBLE_EQ(evalClosed<double>(*makeAdd(makeNumber(3), makeNumber(4))),
                   7.0);
  EXPECT_DOUBLE_EQ(evalClosed<double>(*makeSub(makeNumber(3), makeNumber(4))),
                   -1.0);
  EXPECT_DOUBLE_EQ(evalClosed<double>(*makeMul(makeNumber(3), makeNumber(4))),
                   12.0);
  EXPECT_DOUBLE_EQ(evalClosed<double>(*makeDiv(makeNumber(3), makeNumber(4))),
                   0.75);
}

TEST(EvalExpr, DivisionInFloatDiffersFromDouble) {
  // 1/3 rounds differently in float and double; evalExpr must use the
  // requested element type for the arithmetic, not promote to double.
  ExprPtr E = makeDiv(makeNumber(1.0), makeNumber(3.0));
  EXPECT_EQ(evalClosed<float>(*E), 1.0f / 3.0f);
  EXPECT_EQ(evalClosed<double>(*E), 1.0 / 3.0);
  EXPECT_NE(static_cast<double>(evalClosed<float>(*E)),
            evalClosed<double>(*E));
}

TEST(EvalExpr, CallAppliesMathBuiltin) {
  std::vector<ExprPtr> Args;
  Args.push_back(makeNumber(16.0));
  ExprPtr E = makeCall("sqrt", std::move(Args));
  EXPECT_DOUBLE_EQ(evalClosed<double>(*E), 4.0);
}

TEST(EvalExpr, NestedStencilUpdate) {
  // 0.25*A[-1] + 0.5*A[0] + 0.25*A[1] over synthetic grid values.
  ExprPtr Sum = makeMul(makeNumber(0.25), makeGridRead("A", {-1}));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(0.5), makeGridRead("A", {0})));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(0.25), makeGridRead("A", {1})));
  double Got = evalExpr<double>(
      *Sum,
      [](const GridReadExpr &Read) {
        return 10.0 + Read.offsets()[0]; // A[-1]=9, A[0]=10, A[1]=11
      },
      [](const std::string &) { return 0.0; });
  EXPECT_DOUBLE_EQ(Got, 0.25 * 9.0 + 0.5 * 10.0 + 0.25 * 11.0);
}
