//===- ExprPlanTest.cpp - Compiled-tape vs tree-walk equivalence ------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The contract of ir/ExprPlan.h: the compiled tape reproduces the
/// recursive evalExpr walk BIT FOR BIT — over randomized expression trees,
/// over every Table 3 benchmark stencil in both scalar types, through both
/// executors, and under poisoned-halo runs.
///
//===----------------------------------------------------------------------===//

#include "ir/ExprEval.h"
#include "ir/ExprPlan.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

using namespace an5d;

namespace {

/// Bitwise equality (NaN-safe, unlike operator==).
template <typename T> bool bitEqual(T A, T B) {
  return std::memcmp(&A, &B, sizeof(T)) == 0;
}

template <typename T>
std::size_t countBitMismatches(const Grid<T> &A, const Grid<T> &B) {
  std::size_t Mismatches = 0;
  for (std::size_t I = 0; I < A.raw().size(); ++I)
    if (!bitEqual(A.raw()[I], B.raw()[I]))
      ++Mismatches;
  return Mismatches;
}

/// Small interior extents per dimensionality — deliberately non-round and
/// non-equal so stride bugs can't cancel out.
std::vector<long long> testExtents(int NumDims) {
  if (NumDims == 1)
    return {23};
  if (NumDims == 2)
    return {17, 13};
  return {9, 8, 7};
}

/// A blocked configuration feasible for every benchmark order (radius<=4)
/// at degree 2: BS covers 2*BT*rad halo lanes plus a compute region.
BlockConfig testConfig(const StencilProgram &Program, int HS = 0) {
  BlockConfig Config;
  Config.BT = 2;
  Config.BS.assign(static_cast<std::size_t>(Program.numDims()) - 1, 24);
  Config.HS = HS;
  return Config;
}

//===----------------------------------------------------------------------===//
// Randomized expression equivalence
//===----------------------------------------------------------------------===//

/// Generates a random expression tree over a fixed 2D tap vocabulary.
class RandomExprGen {
public:
  RandomExprGen(std::mt19937 &Rng, std::map<std::string, double> &Coefficients)
      : Rng(Rng), Coefficients(Coefficients) {}

  ExprPtr gen(int Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 2 : 9);
    switch (Pick(Rng)) {
    case 0:
      return makeNumber(value());
    case 1: {
      std::string Name = "c" + std::to_string(Coefficients.size());
      Coefficients[Name] = value();
      return makeCoefficient(Name);
    }
    case 2: {
      std::uniform_int_distribution<int> Off(-2, 2);
      return makeGridRead("A", {Off(Rng), Off(Rng)});
    }
    case 3:
      return makeNeg(gen(Depth - 1));
    case 4: {
      // sqrt/log draw from positive leaves, but subtraction can still feed
      // them negative inputs — equivalence must then hold on the NaNs too.
      static const char *Callees[] = {"sqrt", "fabs", "exp",  "log",
                                      "sin",  "cos",  "sqrtf", "logf"};
      std::uniform_int_distribution<int> C(0, 7);
      std::vector<ExprPtr> Args;
      Args.push_back(gen(Depth - 1));
      return makeCall(Callees[C(Rng)], std::move(Args));
    }
    default: {
      std::uniform_int_distribution<int> Op(0, 3);
      return makeBinary(static_cast<BinaryOpKind>(Op(Rng)), gen(Depth - 1),
                        gen(Depth - 1));
    }
    }
  }

private:
  double value() {
    std::uniform_real_distribution<double> Dist(0.25, 2.0);
    return Dist(Rng);
  }

  std::mt19937 &Rng;
  std::map<std::string, double> &Coefficients;
};

template <typename T>
void checkRandomExprEquivalence(std::uint32_t Seed, int Trees) {
  std::mt19937 Rng(Seed);
  for (int Tree = 0; Tree < Trees; ++Tree) {
    std::map<std::string, double> Coefficients;
    RandomExprGen Gen(Rng, Coefficients);
    ExprPtr E = Gen.gen(5);

    ExprPlan Plan = ExprPlan::compile(*E, Coefficients);
    CompiledTape<T> Tape(Plan);
    ASSERT_GT(Plan.maxStackDepth(), 0);

    // Random values per distinct tap; the tree walk resolves offsets to
    // the same values through a map lookup.
    std::uniform_real_distribution<double> Dist(0.25, 2.0);
    std::vector<T> TapValues(static_cast<std::size_t>(Plan.numTaps()));
    std::vector<long long> TapIndices(TapValues.size());
    for (std::size_t K = 0; K < TapValues.size(); ++K) {
      TapValues[K] = static_cast<T>(Dist(Rng));
      TapIndices[K] = static_cast<long long>(K);
    }
    auto Read = [&](const GridReadExpr &R) -> T {
      const std::vector<std::vector<int>> &Taps = Plan.taps();
      for (std::size_t K = 0; K < Taps.size(); ++K)
        if (Taps[K] == R.offsets())
          return TapValues[K];
      ADD_FAILURE() << "grid read missing from the plan's tap table";
      return T(0);
    };
    auto Coef = [&](const std::string &Name) -> T {
      return static_cast<T>(Coefficients.at(Name));
    };

    T Want = evalExpr<T>(*E, Read, Coef);
    T Got = Tape.eval(TapValues.data(), TapIndices.data());
    EXPECT_TRUE(bitEqual(Want, Got))
        << "tree " << Tree << ": tree-walk " << Want << " vs tape " << Got
        << " for " << E->toString();
  }
}

} // namespace

TEST(ExprPlan, RandomizedEquivalenceFloat) {
  checkRandomExprEquivalence<float>(20260730, 300);
}

TEST(ExprPlan, RandomizedEquivalenceDouble) {
  checkRandomExprEquivalence<double>(987654321, 300);
}

//===----------------------------------------------------------------------===//
// Plan structure
//===----------------------------------------------------------------------===//

TEST(ExprPlan, J2d5ptPlanShape) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  const ExprPlan &Plan = P->plan();
  EXPECT_EQ(Plan.numTaps(), 5);
  EXPECT_TRUE(Plan.hasConstantDivision());
  EXPECT_GE(Plan.maxStackDepth(), 2);
  // 5 coefficients + the /118 divisor, all distinct.
  EXPECT_EQ(Plan.constants().size(), 6u);
  // Postfix length: 5 loads + 5 consts + 5 muls + 4 adds + 1 const + 1 div.
  EXPECT_EQ(Plan.ops().size(), 21u);
}

TEST(ExprPlan, DeduplicatesRepeatedTaps) {
  // gradient2d reads some taps more than once; the tap table holds each
  // distinct offset exactly once (same dedup rule as StencilProgram).
  auto P = makeGradient2d(ScalarType::Double);
  EXPECT_EQ(static_cast<std::size_t>(P->plan().numTaps()), P->taps().size());
}

TEST(ExprPlan, StarPlanHasNoDivision) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  EXPECT_FALSE(P->plan().hasConstantDivision());
}

TEST(CompiledTape, FoldsConstantSubtreesInElementType) {
  // (2 + 3) * A[0,0] + sqrt(16): the constant subexpressions fold away at
  // specialization, in the element type.
  std::vector<ExprPtr> Args;
  Args.push_back(makeNumber(16.0));
  ExprPtr E = makeAdd(
      makeMul(makeAdd(makeNumber(2.0), makeNumber(3.0)),
              makeGridRead("A", {0, 0})),
      makeCall("sqrt", std::move(Args)));
  ExprPlan Plan = ExprPlan::compile(*E, {});
  CompiledTape<float> Tape(Plan);
  // Folded and fused tape: MulConstTap(5, A[0,0]), AddConst(4).
  EXPECT_EQ(Tape.numOps(), 2);
  float Center = 1.5f;
  long long Index = 0;
  EXPECT_EQ(Tape.eval(&Center, &Index), 5.0f * 1.5f + 4.0f);
}

//===----------------------------------------------------------------------===//
// Executor equivalence over every benchmark stencil
//===----------------------------------------------------------------------===//

namespace {

template <typename T>
void checkReferenceEquivalence(const StencilProgram &Program,
                               long long TimeSteps) {
  std::vector<long long> Extents = testExtents(Program.numDims());
  int Halo = Program.radius();
  Grid<T> Tree0(Extents, Halo), Tree1(Extents, Halo);
  fillGridDeterministic(Tree0, 42);
  copyGrid(Tree0, Tree1);
  Grid<T> Tape0 = Tree0, Tape1 = Tree0;

  referenceRun<T>(Program, {&Tree0, &Tree1}, TimeSteps,
                  EvalStrategy::TreeWalk);
  referenceRun<T>(Program, {&Tape0, &Tape1}, TimeSteps,
                  EvalStrategy::CompiledTape);

  EXPECT_EQ(countBitMismatches(Tree0, Tape0), 0u) << Program.name();
  EXPECT_EQ(countBitMismatches(Tree1, Tape1), 0u) << Program.name();
}

template <typename T>
void checkBlockedEquivalence(const StencilProgram &Program,
                             long long TimeSteps) {
  std::vector<long long> Extents = testExtents(Program.numDims());
  BlockConfig Config = testConfig(Program);
  int Halo = Program.radius();
  Grid<T> Tree0(Extents, Halo), Tree1(Extents, Halo);
  fillGridDeterministic(Tree0, 7);
  copyGrid(Tree0, Tree1);
  Grid<T> Tape0 = Tree0, Tape1 = Tree0;
  Grid<T> Ref0 = Tree0, Ref1 = Tree0;

  BlockedExecOptions TreeOptions;
  TreeOptions.Strategy = EvalStrategy::TreeWalk;
  blockedRun<T>(Program, Config, {&Tree0, &Tree1}, TimeSteps, TreeOptions);
  blockedRun<T>(Program, Config, {&Tape0, &Tape1}, TimeSteps);
  referenceRun<T>(Program, {&Ref0, &Ref1}, TimeSteps);

  EXPECT_EQ(countBitMismatches(Tree0, Tape0), 0u) << Program.name();
  EXPECT_EQ(countBitMismatches(Tree1, Tape1), 0u) << Program.name();
  const Grid<T> &Want = TimeSteps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = TimeSteps % 2 == 0 ? Tape0 : Tape1;
  EXPECT_EQ(countBitMismatches(Want, Got), 0u)
      << Program.name() << " vs reference";
}

template <typename T>
void checkPoisonedEquivalence(const StencilProgram &Program,
                              long long TimeSteps) {
  std::vector<long long> Extents = testExtents(Program.numDims());
  BlockConfig Config = testConfig(Program);
  int Halo = Program.radius();
  Grid<T> Ref0(Extents, Halo), Ref1(Extents, Halo);
  fillGridDeterministic(Ref0, 99);
  copyGrid(Ref0, Ref1);
  Grid<T> Poi0 = Ref0, Poi1 = Ref0;

  referenceRun<T>(Program, {&Ref0, &Ref1}, TimeSteps);
  BlockedExecOptions Poison;
  Poison.PoisonHalos = true;
  blockedRun<T>(Program, Config, {&Poi0, &Poi1}, TimeSteps, Poison);

  const Grid<T> &Got = TimeSteps % 2 == 0 ? Poi0 : Poi1;
  EXPECT_FALSE(interiorHasNaN(Got)) << Program.name();
  // Interior cells only: the poison run deliberately trashes halo cells.
  const Grid<T> &Want = TimeSteps % 2 == 0 ? Ref0 : Ref1;
  std::vector<long long> Coords(static_cast<std::size_t>(Want.numDims()), 0);
  while (true) {
    EXPECT_TRUE(bitEqual(Want.at(Coords), Got.at(Coords))) << Program.name();
    int D = Want.numDims() - 1;
    while (D >= 0) {
      if (++Coords[static_cast<std::size_t>(D)] <
          Extents[static_cast<std::size_t>(D)])
        break;
      Coords[static_cast<std::size_t>(D)] = 0;
      --D;
    }
    if (D < 0)
      break;
  }
}

} // namespace

TEST(ExprPlanSuite, ReferenceTapeMatchesTreeWalkEverywhere) {
  for (const std::string &Name : benchmarkStencilNames())
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto P = makeBenchmarkStencil(Name, Type);
      ASSERT_TRUE(P) << Name;
      if (Type == ScalarType::Float)
        checkReferenceEquivalence<float>(*P, 3);
      else
        checkReferenceEquivalence<double>(*P, 3);
    }
}

TEST(ExprPlanSuite, BlockedTapeMatchesTreeWalkEverywhere) {
  for (const std::string &Name : benchmarkStencilNames())
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto P = makeBenchmarkStencil(Name, Type);
      ASSERT_TRUE(P) << Name;
      if (Type == ScalarType::Float)
        checkBlockedEquivalence<float>(*P, 3);
      else
        checkBlockedEquivalence<double>(*P, 3);
    }
}

TEST(ExprPlanSuite, PoisonedHaloTapeMatchesReferenceEverywhere) {
  for (const std::string &Name : benchmarkStencilNames())
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto P = makeBenchmarkStencil(Name, Type);
      ASSERT_TRUE(P) << Name;
      if (Type == ScalarType::Float)
        checkPoisonedEquivalence<float>(*P, 4);
      else
        checkPoisonedEquivalence<double>(*P, 4);
    }
}

TEST(ExprPlanSuite, ChunkedStreamingStaysEquivalent) {
  // Section 4.2.3 chunking (HS > 0) exercises a different ring schedule;
  // the tape must stay bit-identical there too.
  auto P = makeJacobi2d5pt(ScalarType::Float);
  std::vector<long long> Extents = testExtents(2);
  BlockConfig Config = testConfig(*P, /*HS=*/8);
  Grid<float> Tree0(Extents, 1), Tree1(Extents, 1);
  fillGridDeterministic(Tree0, 5);
  copyGrid(Tree0, Tree1);
  Grid<float> Tape0 = Tree0, Tape1 = Tree0;

  BlockedExecOptions TreeOptions;
  TreeOptions.Strategy = EvalStrategy::TreeWalk;
  blockedRun<float>(*P, Config, {&Tree0, &Tree1}, 5, TreeOptions);
  blockedRun<float>(*P, Config, {&Tape0, &Tape1}, 5);

  EXPECT_EQ(countBitMismatches(Tree0, Tape0), 0u);
  EXPECT_EQ(countBitMismatches(Tree1, Tape1), 0u);
}

TEST(ExprPlanSuite, StatsIdenticalAcrossStrategies) {
  // The operation census is schedule-determined, not engine-determined.
  auto P = makeStarStencil(2, 2, ScalarType::Float);
  std::vector<long long> Extents = testExtents(2);
  BlockConfig Config = testConfig(*P);

  auto RunWith = [&](EvalStrategy Strategy) {
    Grid<float> A(Extents, P->radius()), B(Extents, P->radius());
    fillGridDeterministic(A, 3);
    copyGrid(A, B);
    BlockedExecStats Stats;
    BlockedExecOptions Options;
    Options.Strategy = Strategy;
    Options.Stats = &Stats;
    blockedRun<float>(*P, Config, {&A, &B}, 4, Options);
    return Stats;
  };

  BlockedExecStats Tape = RunWith(EvalStrategy::CompiledTape);
  BlockedExecStats Tree = RunWith(EvalStrategy::TreeWalk);
  EXPECT_EQ(Tape.GmReadOps, Tree.GmReadOps);
  EXPECT_EQ(Tape.GmWriteOps, Tree.GmWriteOps);
  EXPECT_EQ(Tape.ComputeOps, Tree.ComputeOps);
  EXPECT_GT(Tape.ComputeOps, 0);
}
