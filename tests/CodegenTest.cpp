//===- CodegenTest.cpp - CUDA and C++ code generation -------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "codegen/ExprEmitter.h"
#include "codegen/LoopTilingCodegen.h"
#include "stencils/Benchmarks.h"
#include "support/StringUtils.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

/// Crude but effective sanity check on emitted sources.
void expectBalanced(const std::string &Source) {
  long Parens = 0, Braces = 0, Brackets = 0;
  for (char C : Source) {
    Parens += C == '(' ? 1 : C == ')' ? -1 : 0;
    Braces += C == '{' ? 1 : C == '}' ? -1 : 0;
    Brackets += C == '[' ? 1 : C == ']' ? -1 : 0;
  }
  EXPECT_EQ(Parens, 0);
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

BlockConfig config2d(int BT, int BS, int HS = 0) {
  BlockConfig C;
  C.BT = BT;
  C.BS = {BS};
  C.HS = HS;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Expression emission
//===----------------------------------------------------------------------===//

TEST(ExprEmitter, LiteralsCarryTypeSuffix) {
  EXPECT_EQ(emitLiteral(5.1, ScalarType::Float), "5.1f");
  EXPECT_EQ(emitLiteral(118.0, ScalarType::Double), "118.0");
  EXPECT_EQ(emitLiteral(0.25, ScalarType::Double), "0.25");
}

TEST(ExprEmitter, ReadsGoThroughCallback) {
  ExprPtr E = makeAdd(makeGridRead("A", {-1, 0}), makeGridRead("A", {0, 2}));
  ExprEmitOptions Options;
  Options.Type = ScalarType::Float;
  Options.ReadEmitter = defaultReadMacro;
  EXPECT_EQ(emitExpr(*E, Options), "(READ(-1, 0) + READ(0, 2))");
}

TEST(ExprEmitter, CoefficientsInlineAsValues) {
  StencilProgram P("t", 2, ScalarType::Float, "A",
                   makeMul(makeCoefficient("c1"), makeGridRead("A", {0, 0})),
                   {{"c1", 0.5}});
  ExprEmitOptions Options;
  Options.Type = ScalarType::Float;
  Options.Program = &P;
  Options.ReadEmitter = defaultReadMacro;
  EXPECT_EQ(emitExpr(P.update(), Options), "(0.5f * READ(0, 0))");
}

TEST(ExprEmitter, MathCallsFollowElementType) {
  std::vector<ExprPtr> Args;
  Args.push_back(makeGridRead("A", {0, 0}));
  ExprPtr E = makeCall("sqrt", std::move(Args));
  ExprEmitOptions Options;
  Options.ReadEmitter = defaultReadMacro;
  Options.Type = ScalarType::Float;
  EXPECT_EQ(emitExpr(*E, Options), "sqrtf(READ(0, 0))");
  Options.Type = ScalarType::Double;
  EXPECT_EQ(emitExpr(*E, Options), "sqrt(READ(0, 0))");
}

//===----------------------------------------------------------------------===//
// CUDA backend structure
//===----------------------------------------------------------------------===//

TEST(CudaCodegen, KernelHasMacroPipeline) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  GeneratedCuda Code = generateCuda(*P, config2d(4, 128, 128));
  EXPECT_EQ(Code.KernelName, "an5d_j2d5pt_bt4");

  // One CALC macro per intermediate time-step; the final tier computes
  // inside STORE (Fig. 5 shows CALC1..CALC3 + STORE for bT = 4).
  for (int T = 1; T <= 3; ++T)
    EXPECT_NE(Code.KernelSource.find("#define CALC" + std::to_string(T) +
                                     "("),
              std::string::npos);
  EXPECT_EQ(Code.KernelSource.find("#define CALC4("), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("#define LOAD("), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("#define STORE("), std::string::npos);

  // The three phases are annotated.
  EXPECT_NE(Code.KernelSource.find("head phase"), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("inner phase"), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("tail phase"), std::string::npos);

  // Double-buffered shared memory, not one buffer per tier.
  EXPECT_NE(Code.KernelSource.find("__shared__ float sm[2]"),
            std::string::npos);

  // One __syncthreads per tier inside each CALC macro.
  EXPECT_GE(countOccurrences(Code.KernelSource, "__syncthreads()"), 4u);
}

TEST(CudaCodegen, FixedRegisterAllocationDeclared) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  GeneratedCuda Code = generateCuda(*P, config2d(4, 128, 128));
  // bT=4 tiers x (2*rad+1)=3 registers: reg_0_0 .. reg_3_2 (Fig. 5).
  for (int T = 0; T < 4; ++T)
    for (int M = 0; M < 3; ++M)
      EXPECT_NE(Code.KernelSource.find("reg_" + std::to_string(T) + "_" +
                                       std::to_string(M)),
                std::string::npos)
          << T << "," << M;
  EXPECT_EQ(Code.KernelSource.find("reg_4_0"), std::string::npos);
}

TEST(CudaCodegen, SmemWrapperEmittedAndOptional) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  GeneratedCuda WithWrapper = generateCuda(*P, config2d(4, 128, 128));
  EXPECT_NE(WithWrapper.KernelSource.find("__an5d_sm_load"),
            std::string::npos);

  CodegenOptions NoWrapper;
  NoWrapper.DisableVectorizedSmemAccess = false;
  GeneratedCuda Without = generateCuda(*P, config2d(4, 128, 128), NoWrapper);
  EXPECT_EQ(Without.KernelSource.find("__an5d_sm_load"), std::string::npos);
}

TEST(CudaCodegen, GeneralStencilGetsMultiPlaneSmem) {
  // Non-associative box: shared memory holds 1+2*rad sub-planes per buffer.
  ExprPtr Update = makeMul(makeGridRead("A", {1, 1}),
                           makeGridRead("A", {-1, -1}));
  for (int I = -1; I <= 1; ++I)
    for (int J = -1; J <= 1; ++J) {
      if ((I == 1 && J == 1) || (I == -1 && J == -1))
        continue;
      Update = makeAdd(std::move(Update), makeGridRead("A", {I, J}));
    }
  StencilProgram P("nonassoc", 2, ScalarType::Float, "A", std::move(Update));
  GeneratedCuda Code = generateCuda(P, config2d(2, 64));
  EXPECT_NE(Code.KernelSource.find("sm[2][2 * RAD + 1]"),
            std::string::npos);
}

TEST(CudaCodegen, HostImplementsScheduleAndSwap) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  GeneratedCuda Code = generateCuda(*P, config2d(4, 128, 128));
  EXPECT_NE(Code.HostSource.find("an5d_schedule"), std::string::npos);
  EXPECT_NE(Code.HostSource.find("I_T % 2"), std::string::npos);
  EXPECT_NE(Code.HostSource.find("in ^= 1"), std::string::npos);
  EXPECT_NE(Code.HostSource.find(Code.KernelName + "<<<grid, block>>>"),
            std::string::npos);
  EXPECT_NE(Code.HostSource.find("cudaMalloc"), std::string::npos);
}

TEST(CudaCodegen, ThreeDimensionalKernel) {
  auto P = makeStarStencil(3, 1, ScalarType::Double);
  BlockConfig C;
  C.BT = 3;
  C.BS = {32, 16};
  C.HS = 128;
  GeneratedCuda Code = generateCuda(*P, C);
  EXPECT_NE(Code.KernelSource.find("threadIdx.y"), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("#define BS_Y 32"), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("#define BS_X 16"), std::string::npos);
  EXPECT_NE(Code.KernelSource.find("__shared__ double"), std::string::npos);
}

TEST(CudaCodegen, InnerLoopRollsByRingDepth) {
  auto P = makeJacobi2d9pt(ScalarType::Float); // rad 2 -> ring depth 5
  GeneratedCuda Code = generateCuda(*P, config2d(2, 128, 256));
  EXPECT_NE(Code.KernelSource.find("s += 5"), std::string::npos);
}

TEST(CudaCodegen, HighDegreeBt10Generates) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  GeneratedCuda Code = generateCuda(*P, config2d(10, 256, 256));
  for (int T = 1; T <= 9; ++T)
    EXPECT_NE(Code.KernelSource.find("CALC" + std::to_string(T) + "("),
              std::string::npos);
}

TEST(CudaCodegen, DisablingDaFreeOptFallsBackToMultiPlaneSmem) {
  // With the diagonal-access-free optimization off (Section 4.3.3's
  // compile-time switch), even a star stencil must keep 1+2*rad sub-planes
  // in shared memory per buffer.
  auto P = makeJacobi2d5pt(ScalarType::Float);
  CodegenOptions Options;
  Options.EnableDiagonalAccessFreeOpt = false;
  GeneratedCuda Code = generateCuda(*P, config2d(4, 128, 128), Options);
  EXPECT_NE(Code.KernelSource.find("sm[2][2 * RAD + 1]"),
            std::string::npos);
}

TEST(CudaCodegen, DisablingAssociativeOptOnBoxStencil) {
  auto P = makeJacobi2d9ptGol(ScalarType::Float); // associative box
  GeneratedCuda WithOpt = generateCuda(*P, config2d(4, 128, 128));
  EXPECT_NE(WithOpt.KernelSource.find("partial summation"),
            std::string::npos);
  EXPECT_EQ(WithOpt.KernelSource.find("sm[2][2 * RAD + 1]"),
            std::string::npos)
      << "associative boxes use single-plane double buffers";

  CodegenOptions Options;
  Options.EnableAssociativeOpt = false;
  GeneratedCuda Without = generateCuda(*P, config2d(4, 128, 128), Options);
  EXPECT_EQ(Without.KernelSource.find("partial summation"),
            std::string::npos);
  EXPECT_NE(Without.KernelSource.find("sm[2][2 * RAD + 1]"),
            std::string::npos);
}

TEST(CudaCodegen, UnrollSwitchEmitsPragma) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  CodegenOptions Options;
  Options.UnrollInnerLoop = true;
  GeneratedCuda Code = generateCuda(*P, config2d(4, 128, 128), Options);
  EXPECT_NE(Code.KernelSource.find("#pragma unroll"), std::string::npos);
  GeneratedCuda Default = generateCuda(*P, config2d(4, 128, 128));
  EXPECT_EQ(Default.KernelSource.find("#pragma unroll"), std::string::npos)
      << "the paper found unrolling counterproductive; off by default";
}

//===----------------------------------------------------------------------===//
// C++ backend structure
//===----------------------------------------------------------------------===//

TEST(CppCodegen, GeneratesSelfCheckedProgram) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  ProblemSize Problem;
  Problem.Extents = {40, 37};
  Problem.TimeSteps = 12;
  std::string Source =
      generateCppCheckProgram(*P, config2d(4, 32, 8), Problem);
  expectBalanced(Source);
  EXPECT_NE(Source.find("AN5D-CHECK OK"), std::string::npos);
  EXPECT_NE(Source.find("referenceStep"), std::string::npos);
  EXPECT_NE(Source.find("runInvocation"), std::string::npos);
  EXPECT_NE(Source.find("schedule(IT, BT, deg)"), std::string::npos);
  EXPECT_NE(Source.find("using Real = float;"), std::string::npos);
  EXPECT_NE(Source.find("5.1f"), std::string::npos)
      << "coefficients inlined";
}

//===----------------------------------------------------------------------===//
// Loop-tiling baseline backend
//===----------------------------------------------------------------------===//

TEST(LoopTilingCodegen, TwoDimensionalBaseline) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  GeneratedLoopTiling Code = generateLoopTilingCuda(*P);
  expectBalanced(Code.Source);
  EXPECT_EQ(Code.KernelName, "looptile_j2d5pt");
  EXPECT_NE(Code.Source.find("__global__"), std::string::npos);
  // One launch per time-step and no temporal machinery.
  EXPECT_NE(Code.Source.find("for (long long t = 0; t < steps; ++t)"),
            std::string::npos);
  EXPECT_EQ(Code.Source.find("__shared__"), std::string::npos);
  EXPECT_EQ(Code.Source.find("__syncthreads"), std::string::npos);
  EXPECT_NE(Code.Source.find("5.1f"), std::string::npos);
}

TEST(LoopTilingCodegen, ThreeDimensionalBaseline) {
  auto P = makeStarStencil(3, 2, ScalarType::Double);
  GeneratedLoopTiling Code = generateLoopTilingCuda(*P, {16, 8, 8});
  expectBalanced(Code.Source);
  EXPECT_NE(Code.Source.find("#define TILE_2 8"), std::string::npos);
  EXPECT_NE(Code.Source.find("blockIdx.z"), std::string::npos);
  EXPECT_NE(Code.Source.find("#define RAD 2"), std::string::npos);
  EXPECT_NE(Code.Source.find("double"), std::string::npos);
}

TEST(LoopTilingCodegen, ReadsGoStraightToGlobalMemory) {
  auto P = makeBoxStencil(2, 1, ScalarType::Float);
  GeneratedLoopTiling Code = generateLoopTilingCuda(*P);
  // All 9 taps appear as direct global reads.
  EXPECT_GE(countOccurrences(Code.Source, "in[gidx("), 9u);
}

TEST(CppCodegen, ThreeDimensionalVariant) {
  auto P = makeStarStencil(3, 1, ScalarType::Double);
  BlockConfig C;
  C.BT = 2;
  C.BS = {12, 10};
  C.HS = 6;
  ProblemSize Problem;
  Problem.Extents = {15, 11, 13};
  Problem.TimeSteps = 5;
  std::string Source = generateCppCheckProgram(*P, C, Problem);
  expectBalanced(Source);
  EXPECT_NE(Source.find("using Real = double;"), std::string::npos);
  EXPECT_NE(Source.find("int d2"), std::string::npos)
      << "3D read lambdas take three offsets";
  EXPECT_NE(Source.find("static const int BS2 = 10;"), std::string::npos);
}
