//===- ExtractorTest.cpp - Unit tests for stencil extraction -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/StencilExtractor.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

std::optional<ExtractionResult>
extractOk(const std::string &Source,
          std::map<std::string, double> Coefs = {}) {
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(Source, "test", std::nullopt,
                                            std::move(Coefs));
  EXPECT_TRUE(Result.has_value()) << Diags.toString();
  return Result;
}

void extractFails(const std::string &Source, const std::string &MsgPart) {
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(Source, "test");
  EXPECT_FALSE(Result.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find(MsgPart), std::string::npos)
      << "diagnostics were:\n"
      << Diags.toString();
}

} // namespace

TEST(Extractor, Fig4J2d5pt) {
  auto Result = extractOk(j2d5ptSource());
  const StencilProgram &P = *Result->Program;
  EXPECT_EQ(P.numDims(), 2);
  EXPECT_EQ(P.radius(), 1);
  EXPECT_EQ(P.shape(), StencilShape::Star);
  EXPECT_TRUE(P.isAssociative());
  EXPECT_EQ(P.elemType(), ScalarType::Float) << "f suffixes imply float";
  EXPECT_EQ(P.flopsPerCell().total(), 10) << "Table 3: j2d5pt = 10 FLOP";
  EXPECT_EQ(P.taps().size(), 5u);

  EXPECT_EQ(Result->Source.TimeVar, "t");
  ASSERT_EQ(Result->Source.SpatialVars.size(), 2u);
  EXPECT_EQ(Result->Source.SpatialVars[0], "i") << "streaming dim is i";
  EXPECT_EQ(Result->Source.SpatialVars[1], "j");
  EXPECT_EQ(Result->Source.TimeBound, "I_T");
  EXPECT_EQ(Result->Source.SpatialBounds[0], "I_S2");
}

TEST(Extractor, SecondOrderStar) {
  std::map<std::string, double> Coefs;
  for (int I = 0; I <= 9; ++I)
    Coefs["c" + std::to_string(I)] = 0.1;
  auto Result = extractOk(j2d9ptSource(), Coefs);
  const StencilProgram &P = *Result->Program;
  EXPECT_EQ(P.radius(), 2);
  EXPECT_EQ(P.shape(), StencilShape::Star);
  EXPECT_EQ(P.flopsPerCell().total(), 18) << "Table 3: j2d9pt = 18 FLOP";
}

TEST(Extractor, ThreeDimensionalStar) {
  auto Result = extractOk(star3d1rSource());
  const StencilProgram &P = *Result->Program;
  EXPECT_EQ(P.numDims(), 3);
  EXPECT_EQ(P.radius(), 1);
  EXPECT_EQ(P.shape(), StencilShape::Star);
  EXPECT_EQ(P.taps().size(), 7u);
  ASSERT_EQ(Result->Source.SpatialVars.size(), 3u);
  EXPECT_EQ(Result->Source.SpatialVars[0], "i");
}

TEST(Extractor, BoxWithDiagonals) {
  auto Result = extractOk(
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 0.1f * A[t%2][i-1][j-1] + 0.1f * "
      "A[t%2][i-1][j] + 0.1f * A[t%2][i-1][j+1]\n"
      "        + 0.1f * A[t%2][i][j-1] + 0.2f * A[t%2][i][j] + 0.1f * "
      "A[t%2][i][j+1]\n"
      "        + 0.1f * A[t%2][i+1][j-1] + 0.1f * A[t%2][i+1][j] + 0.1f * "
      "A[t%2][i+1][j+1];\n");
  EXPECT_EQ(Result->Program->shape(), StencilShape::Box);
  EXPECT_TRUE(Result->Program->isAssociative());
  EXPECT_EQ(Result->Program->optimizationClass(),
            OptimizationClass::AssociativeStencil);
}

TEST(Extractor, DoubleInferredWithoutSuffix) {
  auto Result = extractOk(
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 0.25 * A[t%2][i-1][j] + 0.75 * "
      "A[t%2][i][j];\n");
  EXPECT_EQ(Result->Program->elemType(), ScalarType::Double);
}

TEST(Extractor, TypeOverrideWins) {
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(j2d5ptSource(), "j2d5pt",
                                            ScalarType::Double);
  ASSERT_TRUE(Result.has_value()) << Diags.toString();
  EXPECT_EQ(Result->Program->elemType(), ScalarType::Double);
}

TEST(Extractor, RejectsReadOfOutputBuffer) {
  // Gauss-Seidel-style access violates rule 3 (data independence).
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = 0.5f * A[(t+1)%2][i-1][j] + 0.5f * "
               "A[t%2][i][j];\n",
               "data independent");
}

TEST(Extractor, RejectsNonStaticReadAddress) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][j * 2];\n",
               "static read");
}

TEST(Extractor, RejectsIndirectIndexing) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][B[j]];\n",
               "static read");
}

TEST(Extractor, RejectsNonDoubleBufferedStore) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[t%2][i][j] = A[t%2][i][j];\n",
               "(t+1) % 2");
}

TEST(Extractor, RejectsSecondArray) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = B[t%2][i][j];\n",
               "only one grid array");
}

TEST(Extractor, RejectsTimeLoopNotOutermost) {
  extractFails("for (i = 1; i <= I_S2; i++)\n"
               "  for (t = 0; t < I_T; t++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][j];\n",
               "time loop");
}

TEST(Extractor, RejectsMultipleStatements) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++) {\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][j];\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][j];\n"
               "    }\n",
               "singleton");
}

TEST(Extractor, RejectsLoopVarInComputation) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = A[t%2][i][j] + i;\n",
               "loop variable");
}

TEST(Extractor, RejectsUnknownCall) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][i][j] = myfunc(A[t%2][i][j]);\n",
               "unknown function");
}

TEST(Extractor, AcceptsExtendedMathBuiltins) {
  // log/sin/cos joined the builtin set alongside sqrt/fabs/exp; they must
  // flow through extraction like any other math call.
  auto Result = extractOk(
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 0.5f * A[t%2][i][j] +\n"
      "        0.1f * logf(1.5f + sinf(A[t%2][i-1][j]) * "
      "cosf(A[t%2][i+1][j]));\n");
  EXPECT_TRUE(Result->Program->usesMathCall());
}

TEST(Extractor, RejectsPermutedStoreSubscripts) {
  extractFails("for (t = 0; t < I_T; t++)\n"
               "  for (i = 1; i <= I_S2; i++)\n"
               "    for (j = 1; j <= I_S1; j++)\n"
               "      A[(t+1)%2][j][i] = A[t%2][i][j];\n",
               "loop variable");
}

TEST(Extractor, CoefficientIdentifiersBecomeCoefficients) {
  auto Result = extractOk(
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = alpha * A[t%2][i-1][j] + beta * "
      "A[t%2][i][j];\n",
      {{"alpha", 0.3}, {"beta", 0.7}});
  EXPECT_DOUBLE_EQ(Result->Program->coefficientValue("alpha"), 0.3);
  EXPECT_DOUBLE_EQ(Result->Program->coefficientValue("beta"), 0.7);
}

TEST(Extractor, GradientLikeNonAssociative) {
  auto Result = extractOk(
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S2; i++)\n"
      "    for (j = 1; j <= I_S1; j++)\n"
      "      A[(t+1)%2][i][j] = 0.5f * A[t%2][i][j] + 1.0f / sqrtf(1.0f + \n"
      "        (A[t%2][i][j] - A[t%2][i-1][j]) * (A[t%2][i][j] - "
      "A[t%2][i-1][j]));\n");
  EXPECT_FALSE(Result->Program->isAssociative());
  EXPECT_TRUE(Result->Program->usesMathCall());
  EXPECT_EQ(Result->Program->shape(), StencilShape::Star);
}
