//===- CensusCrossCheckTest.cpp - Model census vs emulator counters ----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The performance model's thread census (Section 5) and the blocked
/// executor are independent implementations of the same execution model.
/// These tests run one kernel invocation through the instrumented emulator
/// and demand that the analytic counts match the observed operation counts
/// *exactly* — global-memory reads, global-memory writes and stencil
/// evaluations — across shapes, degrees, block sizes and stream divisions.
///
//===----------------------------------------------------------------------===//

#include "model/ThreadCensus.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace an5d;

namespace {

/// Runs one invocation of degree Config.BT and returns the emulator's
/// counters.
BlockedExecStats runInstrumented(const StencilProgram &Program,
                                 const BlockConfig &Config,
                                 const ProblemSize &Problem) {
  Grid<float> In(Problem.Extents, Program.radius());
  Grid<float> Out(Problem.Extents, Program.radius());
  fillGridDeterministic(In, 3);
  copyGrid(In, Out);
  BlockedExecStats Stats;
  BlockedExecOptions Options;
  Options.Stats = &Stats;
  BlockedExecutor<float> Executor(Program, Config, Options);
  Executor.runKernelOnce(In, Out, Config.BT);
  return Stats;
}

} // namespace

using CrossParam = std::tuple<const char *, int, int, int>;

class CensusCrossCheck2d : public ::testing::TestWithParam<CrossParam> {};

TEST_P(CensusCrossCheck2d, EmulatorMatchesAnalyticCounts) {
  auto [Name, BT, BS, HS] = GetParam();
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = BT;
  Config.BS = {BS};
  Config.HS = HS;
  if (!Config.isFeasible(Program->radius()))
    GTEST_SKIP() << "infeasible pairing in the sweep grid";
  ProblemSize Problem;
  Problem.Extents = {37, 29};
  Problem.TimeSteps = BT; // one invocation

  ThreadCensus Census = computeThreadCensus(*Program, Config, Problem);
  BlockedExecStats Stats = runInstrumented(*Program, Config, Problem);

  EXPECT_EQ(Stats.GmReadOps, Census.GmReadOps) << Config.toString();
  EXPECT_EQ(Stats.GmWriteOps, Census.GmWriteOps) << Config.toString();
  EXPECT_EQ(Stats.ComputeOps, Census.ComputeOps) << Config.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CensusCrossCheck2d,
    ::testing::Combine(::testing::Values("star2d1r", "star2d2r", "box2d1r",
                                         "j2d9pt"),
                       ::testing::Values(1, 2, 4), ::testing::Values(28, 40),
                       ::testing::Values(0, 11, 16)));

using CrossParam3d = std::tuple<int, int>;

class CensusCrossCheck3d : public ::testing::TestWithParam<CrossParam3d> {};

TEST_P(CensusCrossCheck3d, EmulatorMatchesAnalyticCounts) {
  auto [BT, HS] = GetParam();
  auto Program = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = BT;
  Config.BS = {2 * BT + 8, 2 * BT + 6};
  Config.HS = HS;
  ASSERT_TRUE(Config.isFeasible(Program->radius()));
  ProblemSize Problem;
  Problem.Extents = {13, 12, 11};
  Problem.TimeSteps = BT;

  ThreadCensus Census = computeThreadCensus(*Program, Config, Problem);
  BlockedExecStats Stats = runInstrumented(*Program, Config, Problem);

  EXPECT_EQ(Stats.GmReadOps, Census.GmReadOps) << Config.toString();
  EXPECT_EQ(Stats.GmWriteOps, Census.GmWriteOps) << Config.toString();
  EXPECT_EQ(Stats.ComputeOps, Census.ComputeOps) << Config.toString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CensusCrossCheck3d,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 5, 7)));

TEST(CensusCrossCheck, BoxStencil3d) {
  auto Program = makeBoxStencil(3, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {12, 10};
  Config.HS = 6;
  ProblemSize Problem;
  Problem.Extents = {15, 11, 13};
  Problem.TimeSteps = 2;
  ThreadCensus Census = computeThreadCensus(*Program, Config, Problem);
  BlockedExecStats Stats = runInstrumented(*Program, Config, Problem);
  EXPECT_EQ(Stats.GmReadOps, Census.GmReadOps);
  EXPECT_EQ(Stats.GmWriteOps, Census.GmWriteOps);
  EXPECT_EQ(Stats.ComputeOps, Census.ComputeOps);
}

TEST(CensusCrossCheck, FourthOrderStencil) {
  auto Program = makeStarStencil(2, 4, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {40};
  Config.HS = 9;
  ProblemSize Problem;
  Problem.Extents = {23, 21};
  Problem.TimeSteps = 2;
  ThreadCensus Census = computeThreadCensus(*Program, Config, Problem);
  BlockedExecStats Stats = runInstrumented(*Program, Config, Problem);
  EXPECT_EQ(Stats.GmReadOps, Census.GmReadOps);
  EXPECT_EQ(Stats.GmWriteOps, Census.GmWriteOps);
  EXPECT_EQ(Stats.ComputeOps, Census.ComputeOps);
}
