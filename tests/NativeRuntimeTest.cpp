//===- NativeRuntimeTest.cpp - Native runtime subsystem tests -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the compile/cache/load/execute pipeline of src/runtime/:
///
///  * NativeExecutor vs ReferenceExecutor bit-for-bit on **every** built-in
///    benchmark — 1D (pure streaming, chunk-parallel), 2D and 3D — the
///    acceptance contract of the native backend;
///  * KernelCache hit/miss behavior, persistence across cache objects,
///    force-recompile, and failure accounting;
///  * NativeCompiler detection and failure reporting;
///  * the native measured sweep (compile pool + serial timing) and the
///    Tuner's Native measurement backend.
///
/// Kernels build with -O1 appended (overriding the default -O2) to keep
/// the many small test builds fast; optimization level cannot change
/// results because the kernels are compiled with -ffp-contract=off and no
/// fast-math. Most tests share one on-disk cache directory so repeated
/// ctest runs are compile-free; tests asserting miss-then-hit transitions
/// create private directories.
///
//===----------------------------------------------------------------------===//

#include "runtime/KernelCache.h"
#include "runtime/NativeCompiler.h"
#include "runtime/NativeExecutor.h"
#include "runtime/NativeMeasurement.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace an5d;

namespace {

/// The shared cache directory: stable across test processes (each ctest
/// entry is its own process) so every kernel compiles at most once per
/// source+flags version.
std::string sharedCacheDir() {
  return ::testing::TempDir() + "an5d-native-test-cache";
}

/// A directory unique to one test, for miss/hit-transition assertions.
std::string freshCacheDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "an5d-native-fresh-" + Tag;
  std::filesystem::remove_all(Dir);
  return Dir;
}

NativeRuntimeOptions fastBuildOptions(const std::string &CacheDir) {
  NativeRuntimeOptions Options;
  Options.CacheDir = CacheDir;
  Options.ExtraCompileFlags = {"-O1"};
  return Options;
}

/// A small feasible configuration for \p Program that exercises chunking
/// and a temporal degree > 1.
BlockConfig testConfig(const StencilProgram &Program) {
  int Rad = Program.radius();
  BlockConfig Config;
  Config.BT = 2;
  if (Program.numDims() == 1) {
    Config.BS.clear(); // pure streaming: no blocked dimensions
    Config.HS = 7;
  } else if (Program.numDims() == 2) {
    Config.BS = {4 * Rad + 8};
    Config.HS = 7;
  } else {
    Config.BS = {4 * Rad + 6, 4 * Rad + 4};
    Config.HS = 5;
  }
  return Config;
}

/// Runs \p Steps through the reference executor and the native kernel and
/// expects bitwise identical grids.
template <typename T>
void expectNativeMatchesReference(const StencilProgram &Program,
                                  const BlockConfig &Config,
                                  long long Steps) {
  NativeExecutor Executor(Program, Config,
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();

  std::vector<long long> Extents =
      Program.numDims() == 1   ? std::vector<long long>{53}
      : Program.numDims() == 2 ? std::vector<long long>{23, 19}
                               : std::vector<long long>{13, 11, 10};
  Grid<T> Ref0(Extents, Program.radius()), Ref1(Extents, Program.radius());
  fillGridDeterministic(Ref0, 33);
  copyGrid(Ref0, Ref1);
  Grid<T> Nat0 = Ref0, Nat1 = Ref0;

  referenceRun<T>(Program, {&Ref0, &Ref1}, Steps);
  Executor.run<T>({&Nat0, &Nat1}, Steps);

  const Grid<T> &Want = Steps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = Steps % 2 == 0 ? Nat0 : Nat1;
  EXPECT_EQ(Want.raw(), Got.raw())
      << Program.name() << " native result differs from the reference";
}

/// Every built-in benchmark: the Table 3 2D/3D set plus the extra 1D
/// stencils — the C++ kernel backend supports all of them.
std::vector<std::string> nativeBackendBenchmarks() {
  std::vector<std::string> Names = benchmarkStencilNames();
  for (const std::string &Name : extraStencilNames())
    Names.push_back(Name);
  return Names;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bit-for-bit equivalence on every built-in benchmark
//===----------------------------------------------------------------------===//

class NativeEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(NativeEquivalence, MatchesReferenceBitwise) {
  auto Program = makeBenchmarkStencil(GetParam(), ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  expectNativeMatchesReference<float>(*Program, testConfig(*Program), 9);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, NativeEquivalence,
    ::testing::ValuesIn(nativeBackendBenchmarks()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(NativeRuntime, DoublePrecisionMatchesReference) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Double);
  ASSERT_NE(Program, nullptr);
  expectNativeMatchesReference<double>(*Program, testConfig(*Program), 9);
  auto Program3 = makeBenchmarkStencil("star3d2r", ScalarType::Double);
  ASSERT_NE(Program3, nullptr);
  expectNativeMatchesReference<double>(*Program3, testConfig(*Program3), 8);
}

TEST(NativeRuntime, EvenStepCountEndsInBufferZero) {
  auto Program = makeBenchmarkStencil("j2d9pt", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  expectNativeMatchesReference<float>(*Program, testConfig(*Program), 8);
}

TEST(NativeRuntime, MathCallStencilMatches) {
  // gradient2d exercises the sqrt math-call path end to end.
  auto Program = makeBenchmarkStencil("gradient2d", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  expectNativeMatchesReference<float>(*Program, testConfig(*Program), 5);
}

TEST(NativeRuntime, StreamingDivisionVariantsMatch) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config = testConfig(*Program);
  Config.HS = 0; // single chunk spans the stream
  expectNativeMatchesReference<float>(*Program, Config, 9);
  Config.HS = 1000; // longer than the extent: also a single chunk
  expectNativeMatchesReference<float>(*Program, Config, 9);
}

TEST(NativeRuntime, HighDegreeMatches) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 5;
  Config.BS = {32};
  Config.HS = 8;
  expectNativeMatchesReference<float>(*Program, Config, 13);
}

TEST(NativeRuntime, OneDimensionalStreamingVariantsMatch) {
  // The 1D kernel parallelizes over hS chunks; hS=0 degenerates to one
  // chunk (serial), and an hS longer than the extent is also one chunk.
  auto Program = makeBenchmarkStencil("star1d2r", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config = testConfig(*Program);
  Config.HS = 0;
  expectNativeMatchesReference<float>(*Program, Config, 9);
  Config.HS = 1000;
  expectNativeMatchesReference<float>(*Program, Config, 9);
}

TEST(NativeRuntime, OneDimensionalHighDegreeMatches) {
  auto Program = makeBenchmarkStencil("box1d3r", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = 7; // degree 7, radius 3: 21-plane lag across chunk seams
  Config.HS = 11;
  expectNativeMatchesReference<float>(*Program, Config, 13);
}

TEST(NativeRuntime, OneDimensionalDoublePrecisionMatches) {
  auto Program = makeBenchmarkStencil("j1d3pt", ScalarType::Double);
  ASSERT_NE(Program, nullptr);
  expectNativeMatchesReference<double>(*Program, testConfig(*Program), 9);
}

//===----------------------------------------------------------------------===//
// Executor contract
//===----------------------------------------------------------------------===//

TEST(NativeRuntime, ZeroStepsLeavesBuffersUntouched) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  NativeExecutor Executor(*Program, testConfig(*Program),
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();
  Grid<float> A({9, 8}, 1), B({9, 8}, 1);
  fillGridDeterministic(A, 3);
  copyGrid(A, B);
  std::vector<float> WantA = A.raw(), WantB = B.raw();
  Executor.run<float>({&A, &B}, 0);
  EXPECT_EQ(A.raw(), WantA);
  EXPECT_EQ(B.raw(), WantB);
}

TEST(NativeRuntime, RunRawRejectsBadArguments) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  NativeExecutor Executor(*Program, testConfig(*Program),
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();
  long long Extents2[2] = {9, 8};
  long long Extents3[3] = {9, 8, 7};
  std::vector<float> Buf(11 * 10, 0.0f);
  // Wrong arity is caught by the loader side.
  EXPECT_EQ(Executor.runRaw(Buf.data(), Buf.data(), Extents3, 3, 1), -1);
  // Null buffers, negative steps and degenerate extents by the kernel.
  EXPECT_NE(Executor.runRaw(nullptr, Buf.data(), Extents2, 2, 1), 0);
  EXPECT_NE(Executor.runRaw(Buf.data(), Buf.data(), Extents2, 2, -1), 0);
  long long Degenerate[2] = {0, 8};
  EXPECT_NE(Executor.runRaw(Buf.data(), Buf.data(), Degenerate, 2, 1), 0);
}

TEST(NativeRuntime, ReportsKernelMetadata) {
  auto Program = makeBenchmarkStencil("star3d1r", ScalarType::Float);
  NativeExecutor Executor(*Program, testConfig(*Program),
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();
  EXPECT_GE(Executor.kernelMaxThreads(), 1);
  EXPECT_EQ(Executor.cacheKey().size(), 16u);
  EXPECT_TRUE(std::filesystem::exists(Executor.libraryPath()));
}

TEST(NativeRuntime, OneDimensionalKernelReportsMetadata) {
  auto Program = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  ASSERT_NE(Program, nullptr);
  BlockConfig Config;
  Config.BT = 2;
  Config.HS = 16;
  NativeExecutor Executor(*Program, Config,
                          fastBuildOptions(sharedCacheDir()));
  ASSERT_TRUE(Executor.ok()) << Executor.error();
  EXPECT_GE(Executor.kernelMaxThreads(), 1);
  // 1D extents arity is enforced like every other dimensionality.
  std::vector<float> Buf(16, 0.0f);
  long long Extents2[2] = {9, 8};
  EXPECT_EQ(Executor.runRaw(Buf.data(), Buf.data(), Extents2, 2, 1), -1);
}

TEST(NativeRuntime, RejectsInfeasibleConfiguration) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Config;
  Config.BT = 8;
  Config.BS = {16}; // compute width 16 - 2*8*1 = 0: infeasible
  NativeExecutor Executor(*Program, Config,
                          fastBuildOptions(sharedCacheDir()));
  EXPECT_FALSE(Executor.ok());
  EXPECT_NE(Executor.error().find("infeasible"), std::string::npos);
}

TEST(NativeRuntime, ReportsMissingCompiler) {
  NativeCompiler Compiler("/nonexistent/an5d-cxx");
  EXPECT_FALSE(Compiler.available());
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  NativeRuntimeOptions Options = fastBuildOptions(sharedCacheDir());
  Options.Compiler = "/nonexistent/an5d-cxx";
  NativeExecutor Executor(*Program, testConfig(*Program), Options);
  EXPECT_FALSE(Executor.ok());
  EXPECT_NE(Executor.error().find("not available"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Kernel cache
//===----------------------------------------------------------------------===//

TEST(KernelCache, HashKeyIsStableAndDiscriminating) {
  std::string KeyA = KernelCache::hashKey("source-a", "compiler-x");
  EXPECT_EQ(KeyA.size(), 16u);
  EXPECT_EQ(KeyA, KernelCache::hashKey("source-a", "compiler-x"));
  EXPECT_NE(KeyA, KernelCache::hashKey("source-b", "compiler-x"));
  EXPECT_NE(KeyA, KernelCache::hashKey("source-a", "compiler-y"));
  // The separator keeps (source, fingerprint) splits distinct.
  EXPECT_NE(KernelCache::hashKey("ab", "c"), KernelCache::hashKey("a", "bc"));
}

TEST(KernelCache, SecondBuildHitsWithoutCompiling) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  std::string Dir = freshCacheDir("hit");
  KernelCache Cache(Dir);
  NativeRuntimeOptions Options = fastBuildOptions(Dir);

  NativeExecutor First(*Program, testConfig(*Program), Options, &Cache);
  ASSERT_TRUE(First.ok()) << First.error();
  EXPECT_FALSE(First.cacheHit());
  EXPECT_GT(First.compileSeconds(), 0.0);

  NativeExecutor Second(*Program, testConfig(*Program), Options, &Cache);
  ASSERT_TRUE(Second.ok()) << Second.error();
  EXPECT_TRUE(Second.cacheHit());
  EXPECT_EQ(Second.libraryPath(), First.libraryPath());

  KernelCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Failures, 0u);
}

TEST(KernelCache, PersistsAcrossCacheObjects) {
  auto Program = makeBenchmarkStencil("j2d9pt", ScalarType::Float);
  std::string Dir = freshCacheDir("persist");
  NativeRuntimeOptions Options = fastBuildOptions(Dir);
  {
    NativeExecutor First(*Program, testConfig(*Program), Options);
    ASSERT_TRUE(First.ok()) << First.error();
    EXPECT_FALSE(First.cacheHit());
  }
  // A brand-new cache object (fresh process in real usage) over the same
  // directory must find the artifact.
  NativeExecutor Second(*Program, testConfig(*Program), Options);
  ASSERT_TRUE(Second.ok()) << Second.error();
  EXPECT_TRUE(Second.cacheHit());
}

TEST(KernelCache, ForceRecompileBypassesTheCache) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  std::string Dir = freshCacheDir("force");
  KernelCache Cache(Dir);
  NativeRuntimeOptions Options = fastBuildOptions(Dir);
  NativeExecutor First(*Program, testConfig(*Program), Options, &Cache);
  ASSERT_TRUE(First.ok()) << First.error();
  Options.ForceRecompile = true;
  NativeExecutor Second(*Program, testConfig(*Program), Options, &Cache);
  ASSERT_TRUE(Second.ok()) << Second.error();
  EXPECT_FALSE(Second.cacheHit());
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(KernelCache, DifferentFlagsLandOnDifferentKeys) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  std::string Dir = freshCacheDir("flags");
  KernelCache Cache(Dir);
  NativeRuntimeOptions O1 = fastBuildOptions(Dir);
  NativeRuntimeOptions O2 = fastBuildOptions(Dir);
  O2.ExtraCompileFlags = {"-O0"};
  NativeExecutor A(*Program, testConfig(*Program), O1, &Cache);
  NativeExecutor B(*Program, testConfig(*Program), O2, &Cache);
  ASSERT_TRUE(A.ok()) << A.error();
  ASSERT_TRUE(B.ok()) << B.error();
  EXPECT_NE(A.cacheKey(), B.cacheKey());
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(KernelCache, CompileFailureIsReportedWithLog) {
  std::string Dir = freshCacheDir("fail");
  KernelCache Cache(Dir);
  NativeCompiler Compiler;
  ASSERT_TRUE(Compiler.available());
  KernelArtifact Artifact =
      Cache.getOrBuild("this is not C++ at all!", Compiler, {"-O0"});
  EXPECT_FALSE(Artifact.Ok);
  EXPECT_FALSE(Artifact.CacheHit);
  EXPECT_NE(Artifact.Log.find("compile failed"), std::string::npos);
  EXPECT_EQ(Cache.stats().Failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(Artifact.LibraryPath));
}

//===----------------------------------------------------------------------===//
// Native measurement backend
//===----------------------------------------------------------------------===//

TEST(NativeMeasurement, MeasurementProblemIsCpuSized) {
  for (int Dims : {1, 2, 3}) {
    ProblemSize Problem = nativeMeasurementProblem(Dims);
    EXPECT_EQ(static_cast<int>(Problem.Extents.size()), Dims);
    EXPECT_GT(Problem.TimeSteps, 0);
    EXPECT_LE(Problem.cellCount(), 1LL << 20)
        << "native timing problems must stay CPU-sized";
  }
}

TEST(NativeMeasurement, SweepTimesRealKernelsAndDeduplicatesCaps) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  BlockConfig Base = testConfig(*Program);
  std::vector<SweepCandidate> Candidates;
  for (int Cap : {0, 64}) {
    SweepCandidate Item;
    Item.Config = Base;
    Item.Config.RegisterCap = Cap;
    Candidates.push_back(Item);
  }
  std::vector<ProblemSize> Problems = {nativeMeasurementProblem(2)};
  // Shrink timing further: unit tests only check plumbing.
  Problems[0].Extents = {64, 64};
  Problems[0].TimeSteps = 4;

  std::string Dir = freshCacheDir("sweep");
  KernelCache Cache(Dir);
  NativeMeasureOptions Options;
  Options.Runtime = fastBuildOptions(Dir);
  // Parallel compile stage on purpose: same-key builds serialize inside
  // KernelCache, so even concurrent builders must produce exactly one
  // compile (miss) and one wait-then-hit.
  Options.CompileThreads = 2;
  Options.Repeats = 1;
  std::vector<MeasuredResult> Results =
      nativeMeasuredSweep(*Program, Candidates, Problems, Options, &Cache);
  ASSERT_EQ(Results.size(), Candidates.size());
  for (const MeasuredResult &Result : Results) {
    EXPECT_TRUE(Result.Feasible);
    EXPECT_GT(Result.MeasuredGflops, 0.0);
    EXPECT_GT(Result.MeasuredTimeSeconds, 0.0);
  }
  // The register cap is not part of the kernel source: one compile, one
  // cache hit.
  KernelCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
}

TEST(NativeMeasurement, TunerNativeBackendPicksAMeasuredConfig) {
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOptions Options;
  Options.Backend = MeasurementBackend::Native;
  Options.TopK = 2;
  Options.Native.Runtime = fastBuildOptions(sharedCacheDir());
  Options.Native.Repeats = 1;
  ProblemSize Problem = nativeMeasurementProblem(2);
  Problem.Extents = {96, 96};
  Problem.TimeSteps = 4;
  TuneOutcome Outcome = T.tune(*Program, Problem, Options);
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_GT(Outcome.BestMeasured.MeasuredGflops, 0.0);
  EXPECT_GT(Outcome.BestMeasured.MeasuredTimeSeconds, 0.0);
  EXPECT_EQ(Outcome.Best.RegisterCap, 0)
      << "native backend collapses register caps";
}

TEST(NativeMeasurement, OneDimensionalTunesThroughRealKernels) {
  // 1D no longer falls back to the simulator: the tuner compiles and
  // times real streaming kernels, so the outcome carries a wall-clock
  // measurement and a cap-normalized configuration.
  auto Program = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOptions Options;
  Options.Backend = MeasurementBackend::Native;
  Options.TopK = 2;
  Options.Native.Runtime = fastBuildOptions(sharedCacheDir());
  Options.Native.Repeats = 1;
  ProblemSize Problem = nativeMeasurementProblem(1);
  Problem.Extents = {4096};
  Problem.TimeSteps = 8;
  TuneOutcome Outcome = T.tune(*Program, Problem, Options);
  ASSERT_TRUE(Outcome.Feasible);
  EXPECT_GT(Outcome.BestMeasured.MeasuredGflops, 0.0);
  EXPECT_GT(Outcome.BestMeasured.MeasuredTimeSeconds, 0.0);
  EXPECT_EQ(Outcome.Best.RegisterCap, 0);
  EXPECT_EQ(Outcome.MeasurementFailures, 0u);
  EXPECT_TRUE(Outcome.Best.BS.empty())
      << "1D native tuning must keep the pure-streaming shape";
}

TEST(NativeMeasurement, SweepRecordsPerCandidateFailureReasons) {
  // A broken host compiler must not masquerade as "infeasible": every
  // candidate records why its kernel never ran.
  auto Program = makeBenchmarkStencil("j2d5pt", ScalarType::Float);
  std::vector<SweepCandidate> Candidates(2);
  Candidates[0].Config = testConfig(*Program);
  Candidates[1].Config = testConfig(*Program);
  Candidates[1].Config.BT = 3;
  std::vector<ProblemSize> Problems = {nativeMeasurementProblem(2)};
  NativeMeasureOptions Options;
  Options.Runtime = fastBuildOptions(freshCacheDir("failreason"));
  Options.Runtime.Compiler = "/nonexistent/an5d-cxx";
  Options.CompileThreads = 1;
  std::vector<MeasuredResult> Results =
      nativeMeasuredSweep(*Program, Candidates, Problems, Options);
  ASSERT_EQ(Results.size(), 2u);
  for (const MeasuredResult &Result : Results) {
    EXPECT_FALSE(Result.Feasible);
    EXPECT_NE(Result.FailureReason.find("not available"),
              std::string::npos)
        << Result.FailureReason;
  }
}

TEST(NativeMeasurement, TunerCountsCompileFailures) {
  auto Program = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  TuneOptions Options;
  Options.Backend = MeasurementBackend::Native;
  Options.TopK = 2;
  Options.Native.Runtime = fastBuildOptions(sharedCacheDir());
  Options.Native.Runtime.Compiler = "/nonexistent/an5d-cxx";
  TuneOutcome Outcome =
      T.tune(*Program, nativeMeasurementProblem(1), Options);
  EXPECT_FALSE(Outcome.Feasible);
  EXPECT_EQ(Outcome.MeasurementFailures, Options.TopK)
      << "every candidate kernel should fail on the broken compiler";
  EXPECT_NE(Outcome.FirstFailureReason.find("not available"),
            std::string::npos)
      << Outcome.FirstFailureReason;
}

TEST(NativeMeasurement, TimingsAreClampedToResolvableDurations) {
  // A degenerate problem (4 cells, 1 step) can complete faster than the
  // clock resolves; the sweep must still report a usable positive time
  // rather than zero or infinite GFLOP/s.
  auto Program = makeBenchmarkStencil("star1d1r", ScalarType::Float);
  std::vector<SweepCandidate> Candidates(1);
  Candidates[0].Config = testConfig(*Program);
  std::vector<ProblemSize> Problems(1);
  Problems[0].Extents = {4};
  Problems[0].TimeSteps = 1;
  NativeMeasureOptions Options;
  Options.Runtime = fastBuildOptions(sharedCacheDir());
  Options.Repeats = 1;
  std::vector<MeasuredResult> Results =
      nativeMeasuredSweep(*Program, Candidates, Problems, Options);
  ASSERT_EQ(Results.size(), 1u);
  ASSERT_TRUE(Results[0].Feasible) << Results[0].FailureReason;
  EXPECT_GE(Results[0].MeasuredTimeSeconds, 1e-7);
}
