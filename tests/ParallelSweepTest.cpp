//===- ParallelSweepTest.cpp - Parallel measured-sweep determinism ------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/ParallelSweep.h"

#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

/// Every feasible grid point x register caps x the given problems — the
/// full-grid workload shared with bench_tuner_throughput.
std::vector<SweepCandidate> allCandidates(const StencilProgram &Program,
                                          const GpuSpec &Spec,
                                          std::size_t NumProblems) {
  return Tuner(Spec).enumerateSweepCandidates(Program, NumProblems);
}

} // namespace

TEST(ParallelSweep, EmptyCandidateListYieldsEmptyResults) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  std::vector<ProblemSize> Problems = {ProblemSize::paperDefault(2)};
  EXPECT_TRUE(parallelMeasuredSweep(*P, GpuSpec::teslaV100(), {}, Problems, 4)
                  .empty());
}

TEST(ParallelSweep, ThreadCountResolution) {
  EXPECT_EQ(resolveSweepThreads(1), 1);
  EXPECT_EQ(resolveSweepThreads(5), 5);
  EXPECT_EQ(resolveSweepThreads(12), 12) << "explicit counts pass through";
  int Auto = resolveSweepThreads(0);
  EXPECT_GE(Auto, 1);
  EXPECT_LE(Auto, 8) << "auto caps the pool at 8 workers";
}

TEST(ParallelSweep, ResultsBitIdenticalAcrossThreadCounts) {
  GpuSpec Spec = GpuSpec::teslaV100();
  for (const char *Name : {"star2d1r", "star1d1r", "j3d27pt"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    std::vector<ProblemSize> Problems = {
        ProblemSize::paperDefault(P->numDims())};
    ProblemSize Small = Problems[0];
    for (long long &E : Small.Extents)
      E /= 4;
    Problems.push_back(Small);

    std::vector<SweepCandidate> Candidates =
        allCandidates(*P, Spec, Problems.size());
    ASSERT_FALSE(Candidates.empty()) << Name;

    std::vector<MeasuredResult> Serial =
        parallelMeasuredSweep(*P, Spec, Candidates, Problems, 1);
    for (int Threads : {2, 3, 8}) {
      std::vector<MeasuredResult> Parallel =
          parallelMeasuredSweep(*P, Spec, Candidates, Problems, Threads);
      ASSERT_EQ(Parallel.size(), Serial.size()) << Name;
      for (std::size_t I = 0; I < Serial.size(); ++I) {
        EXPECT_EQ(Parallel[I].Feasible, Serial[I].Feasible)
            << Name << " item " << I;
        EXPECT_EQ(Parallel[I].MeasuredGflops, Serial[I].MeasuredGflops)
            << Name << " item " << I << ": bitwise equality expected";
        EXPECT_EQ(Parallel[I].MeasuredTimeSeconds,
                  Serial[I].MeasuredTimeSeconds)
            << Name << " item " << I;
        EXPECT_EQ(Parallel[I].Model.Gflops, Serial[I].Model.Gflops)
            << Name << " item " << I;
      }
    }
  }
}

TEST(ParallelSweep, MoreThreadsThanCandidatesIsSafe) {
  GpuSpec Spec = GpuSpec::teslaV100();
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  std::vector<ProblemSize> Problems = {ProblemSize::paperDefault(2)};
  std::vector<SweepCandidate> Candidates =
      allCandidates(*P, Spec, Problems.size());
  Candidates.resize(3);
  std::vector<MeasuredResult> Results =
      parallelMeasuredSweep(*P, Spec, Candidates, Problems, 64);
  ASSERT_EQ(Results.size(), 3u);
  for (const MeasuredResult &R : Results)
    EXPECT_TRUE(R.Feasible);
}

TEST(ParallelSweep, MatchesDirectSimulateMeasured) {
  GpuSpec Spec = GpuSpec::teslaV100();
  auto P = makeJacobi2d5pt(ScalarType::Double);
  std::vector<ProblemSize> Problems = {ProblemSize::paperDefault(2)};
  std::vector<SweepCandidate> Candidates =
      allCandidates(*P, Spec, Problems.size());
  ASSERT_FALSE(Candidates.empty());
  std::vector<MeasuredResult> Results =
      parallelMeasuredSweep(*P, Spec, Candidates, Problems, 4);
  for (std::size_t I = 0; I < Candidates.size(); I += 17) {
    MeasuredResult Direct = simulateMeasured(*P, Spec, Candidates[I].Config,
                                             Problems[0]);
    EXPECT_EQ(Results[I].Feasible, Direct.Feasible) << I;
    EXPECT_EQ(Results[I].MeasuredGflops, Direct.MeasuredGflops) << I;
  }
}
