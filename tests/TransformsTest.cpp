//===- TransformsTest.cpp - Expression simplification transforms --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/ExprSimplify.h"

#include "ir/ExprAnalysis.h"
#include "ir/ExprEval.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

ExprPtr read(int I, int J) { return makeGridRead("A", {I, J}); }

} // namespace

TEST(ConstantExpr, Detection) {
  EXPECT_TRUE(isConstantExpr(*makeNumber(3.0)));
  EXPECT_TRUE(isConstantExpr(*makeCoefficient("c")));
  EXPECT_FALSE(isConstantExpr(*read(0, 0)));
  EXPECT_TRUE(isConstantExpr(*makeAdd(makeNumber(1), makeNumber(2))));
  EXPECT_FALSE(isConstantExpr(*makeAdd(makeNumber(1), read(0, 0))));
}

TEST(ConstantExpr, Evaluation) {
  ExprPtr E = makeDiv(makeNumber(10.0), makeNumber(4.0));
  EXPECT_DOUBLE_EQ(evaluateConstantExpr(*E, nullptr), 2.5);

  StencilProgram P("t", 2, ScalarType::Double, "A",
                   makeMul(makeCoefficient("c"), read(0, 0)), {{"c", 3.0}});
  ExprPtr WithCoef = makeMul(makeCoefficient("c"), makeNumber(2.0));
  EXPECT_DOUBLE_EQ(evaluateConstantExpr(*WithCoef, &P), 6.0);
}

TEST(Simplify, FoldsConstantSubtrees) {
  // (2 + 3) * A[0][0] -> 5 * A[0][0]
  SimplifyStats Stats;
  ExprPtr E = makeMul(makeAdd(makeNumber(2), makeNumber(3)), read(0, 0));
  ExprPtr S = simplifyExpr(std::move(E), nullptr, &Stats);
  EXPECT_EQ(S->toString(), "(5 * A[i][j])");
  EXPECT_EQ(Stats.ConstantsFolded, 1);
}

TEST(Simplify, RemovesIdentities) {
  SimplifyStats Stats;
  // 1 * A + 0 -> A
  ExprPtr E = makeAdd(makeMul(makeNumber(1), read(0, 0)), makeNumber(0));
  ExprPtr S = simplifyExpr(std::move(E), nullptr, &Stats);
  EXPECT_EQ(S->toString(), "A[i][j]");
  EXPECT_EQ(Stats.IdentitiesRemoved, 2);

  // A * 0 -> 0
  ExprPtr Zero = simplifyExpr(makeMul(read(0, 0), makeNumber(0)));
  const auto *N = dyn_cast<NumberExpr>(Zero.get());
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->value(), 0.0);
}

TEST(Simplify, FoldsDoubleNegation) {
  SimplifyStats Stats;
  ExprPtr E = makeNeg(makeNeg(read(1, 0)));
  ExprPtr S = simplifyExpr(std::move(E), nullptr, &Stats);
  EXPECT_EQ(S->toString(), "A[i+1][j]");
  EXPECT_GE(Stats.NegationsFolded, 1);
}

TEST(Simplify, DivisionByOne) {
  ExprPtr S = simplifyExpr(makeDiv(read(0, 0), makeNumber(1)));
  EXPECT_EQ(S->toString(), "A[i][j]");
}

TEST(Simplify, FoldsConstantCalls) {
  std::vector<ExprPtr> Args;
  Args.push_back(makeNumber(9.0));
  ExprPtr S = simplifyExpr(makeCall("sqrt", std::move(Args)));
  const auto *N = dyn_cast<NumberExpr>(S.get());
  ASSERT_NE(N, nullptr);
  EXPECT_DOUBLE_EQ(N->value(), 3.0);
}

TEST(Simplify, LeavesNonTrivialExpressionsAlone) {
  // j2d5pt has no dead arithmetic; simplification must be a no-op.
  auto P = makeJacobi2d5pt(ScalarType::Float);
  SimplifyStats Stats;
  ExprPtr S = simplifyExpr(P->update().clone(), P.get(), &Stats);
  EXPECT_TRUE(S->equals(P->update()));
  EXPECT_EQ(Stats.total(), 0);
}

TEST(Simplify, PreservesDoublePrecisionSemantics) {
  // Simplified expressions evaluate to the same double value (folding is
  // exact in double precision).
  ExprPtr Original =
      makeAdd(makeMul(makeAdd(makeNumber(0.25), makeNumber(0.5)),
                      read(0, 0)),
              makeMul(makeNumber(1.0), read(1, 0)));
  ExprPtr Simplified = simplifyExpr(Original->clone());
  auto Read = [](const GridReadExpr &R) -> double {
    return R.offsets()[0] == 0 ? 1.5 : -2.0;
  };
  auto Coef = [](const std::string &) -> double { return 0; };
  EXPECT_DOUBLE_EQ(evalExpr<double>(*Original, Read, Coef),
                   evalExpr<double>(*Simplified, Read, Coef));
}

TEST(DivToMul, RewritesConstantDivision) {
  auto P = makeJacobi2d5pt(ScalarType::Double);
  int Rewritten = 0;
  ExprPtr R =
      rewriteDivisionByConstant(P->update().clone(), P.get(), &Rewritten);
  EXPECT_EQ(Rewritten, 1);
  EXPECT_EQ(countFlops(*R).Divs, 0);
  EXPECT_FALSE(containsConstantDivision(*R));
  // The rewritten program escapes the Section 7.1 double-division penalty.
  StencilProgram Q("j2d5pt-recip", 2, ScalarType::Double, "A", R->clone());
  EXPECT_FALSE(Q.usesDivision());
}

TEST(DivToMul, LeavesNonConstantDivisionAlone) {
  // gradient2d divides by sqrt(...) which reads the grid: untouched.
  auto P = makeGradient2d(ScalarType::Double);
  int Rewritten = 0;
  ExprPtr R =
      rewriteDivisionByConstant(P->update().clone(), P.get(), &Rewritten);
  EXPECT_EQ(Rewritten, 0);
  EXPECT_TRUE(R->equals(P->update()));
}

TEST(DivToMul, NumericallyCloseOnRealRun) {
  // The rewritten j2d5pt must stay within float tolerance of the original
  // over several reference steps (it is a work-around, not an identity).
  auto Original = makeJacobi2d5pt(ScalarType::Float);
  ExprPtr Rewritten = rewriteDivisionByConstant(
      Original->update().clone(), Original.get());
  StencilProgram Recip("j2d5pt-recip", 2, ScalarType::Float, "A",
                       std::move(Rewritten));

  Grid<float> A0({20, 18}, 1), A1({20, 18}, 1);
  fillGridDeterministic(A0, 21);
  copyGrid(A0, A1);
  Grid<float> B0 = A0, B1 = A0;
  referenceRun<float>(*Original, {&A0, &A1}, 6);
  referenceRun<float>(Recip, {&B0, &B1}, 6);
  for (std::size_t I = 0; I < A0.raw().size(); ++I)
    EXPECT_NEAR(A0.raw()[I], B0.raw()[I], 1e-5f);
}
