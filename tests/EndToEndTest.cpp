//===- EndToEndTest.cpp - Full pipeline integration tests ---------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Integration tests spanning the full pipeline: C source -> parse ->
/// extract -> (a) blocked emulation vs reference, (b) CUDA generation,
/// (c) portable C++ generation compiled with the host compiler and run.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "frontend/StencilExtractor.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace an5d;

TEST(EndToEnd, ParseExtractEmulateJ2d5pt) {
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(j2d5ptSource(), "j2d5pt");
  ASSERT_TRUE(Result.has_value()) << Diags.toString();
  const StencilProgram &P = *Result->Program;

  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {32};
  Config.HS = 8;

  Grid<float> Ref0({33, 29}, 1), Ref1({33, 29}, 1);
  fillGridDeterministic(Ref0, 5);
  copyGrid(Ref0, Ref1);
  Grid<float> Blk0 = Ref0, Blk1 = Ref0;

  referenceRun<float>(P, {&Ref0, &Ref1}, 10);
  blockedRun<float>(P, Config, {&Blk0, &Blk1}, 10);
  EXPECT_EQ(Ref0.raw(), Blk0.raw());
}

TEST(EndToEnd, ParsedAndBuiltProgramsAgreeNumerically) {
  // The Fig. 4 source and the programmatic j2d5pt builder must compute
  // identical results (same expression structure).
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Parsed = Extractor.extractFromSource(j2d5ptSource(), "j2d5pt");
  ASSERT_TRUE(Parsed.has_value());
  auto Built = makeJacobi2d5pt(ScalarType::Float);

  Grid<float> A0({20, 18}, 1), A1({20, 18}, 1);
  fillGridDeterministic(A0, 11);
  copyGrid(A0, A1);
  Grid<float> B0 = A0, B1 = A0;

  referenceRun<float>(*Parsed->Program, {&A0, &A1}, 6);
  referenceRun<float>(*Built, {&B0, &B1}, 6);
  EXPECT_EQ(A0.raw(), B0.raw());
}

TEST(EndToEnd, CudaGenerationForAllBenchmarks) {
  // Every Table 3 stencil must generate CUDA for its tuned configuration.
  Tuner T(GpuSpec::teslaV100());
  for (const std::string &Name : benchmarkStencilNames()) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    TuneOutcome Outcome = T.tune(*P, ProblemSize::paperDefault(P->numDims()));
    ASSERT_TRUE(Outcome.Feasible) << Name;
    GeneratedCuda Code = generateCuda(*P, Outcome.Best);
    EXPECT_FALSE(Code.KernelSource.empty()) << Name;
    EXPECT_FALSE(Code.HostSource.empty()) << Name;
    EXPECT_NE(Code.KernelSource.find("__global__"), std::string::npos)
        << Name;
  }
}

namespace {

/// Compiles and runs a generated C++ self-check program; returns true if
/// it printed AN5D-CHECK OK. Skips (returns nullopt) if no compiler.
std::optional<bool> compileAndRun(const std::string &Source,
                                  const std::string &Tag) {
  if (std::system("c++ --version > /dev/null 2>&1") != 0)
    return std::nullopt;
  std::string Dir = ::testing::TempDir();
  std::string CppPath = Dir + "/an5d_gen_" + Tag + ".cpp";
  std::string BinPath = Dir + "/an5d_gen_" + Tag;
  {
    std::ofstream Out(CppPath);
    Out << Source;
  }
  std::string Compile =
      "c++ -std=c++17 -O1 -o " + BinPath + " " + CppPath + " 2>&1";
  if (std::system(Compile.c_str()) != 0)
    return false;
  return std::system((BinPath + " > /dev/null").c_str()) == 0;
}

} // namespace

TEST(EndToEnd, GeneratedCppSelfCheck2d) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {32};
  Config.HS = 8;
  ProblemSize Problem;
  Problem.Extents = {40, 37};
  Problem.TimeSteps = 13; // exercises remainder + parity handling
  std::string Source = generateCppCheckProgram(*P, Config, Problem);
  auto Result = compileAndRun(Source, "j2d5pt");
  if (!Result.has_value())
    GTEST_SKIP() << "no host compiler available";
  EXPECT_TRUE(*Result) << "generated program failed its self-check";
}

TEST(EndToEnd, GeneratedCppSelfCheck2dHighOrder) {
  auto P = makeStarStencil(2, 3, ScalarType::Double);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {40};
  Config.HS = 0;
  ProblemSize Problem;
  Problem.Extents = {25, 23};
  Problem.TimeSteps = 8;
  std::string Source = generateCppCheckProgram(*P, Config, Problem);
  auto Result = compileAndRun(Source, "star2d3r");
  if (!Result.has_value())
    GTEST_SKIP() << "no host compiler available";
  EXPECT_TRUE(*Result);
}

TEST(EndToEnd, GeneratedCppSelfCheck3d) {
  auto P = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {12, 10};
  Config.HS = 6;
  ProblemSize Problem;
  Problem.Extents = {15, 11, 13};
  Problem.TimeSteps = 5;
  std::string Source = generateCppCheckProgram(*P, Config, Problem);
  auto Result = compileAndRun(Source, "star3d1r");
  if (!Result.has_value())
    GTEST_SKIP() << "no host compiler available";
  EXPECT_TRUE(*Result);
}

TEST(EndToEnd, GeneratedCppSelfCheckBox3d) {
  auto P = makeJacobi3d27pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = 3;
  Config.BS = {14, 14};
  Config.HS = 0;
  ProblemSize Problem;
  Problem.Extents = {10, 9, 8};
  Problem.TimeSteps = 7;
  std::string Source = generateCppCheckProgram(*P, Config, Problem);
  auto Result = compileAndRun(Source, "j3d27pt");
  if (!Result.has_value())
    GTEST_SKIP() << "no host compiler available";
  EXPECT_TRUE(*Result);
}
