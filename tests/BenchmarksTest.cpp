//===- BenchmarksTest.cpp - Table 3 benchmark builders -----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencils/Benchmarks.h"

#include "support/Support.h"

#include <gtest/gtest.h>

using namespace an5d;

TEST(Benchmarks, AllNamesBuild) {
  for (const std::string &Name : benchmarkStencilNames()) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_EQ(P->name(), Name);
    auto D = makeBenchmarkStencil(Name, ScalarType::Double);
    ASSERT_NE(D, nullptr) << Name;
    EXPECT_EQ(D->elemType(), ScalarType::Double);
  }
  EXPECT_EQ(benchmarkStencilNames().size(), 21u) << "Table 3 lists 21 rows";
}

TEST(Benchmarks, UnknownNameReturnsNull) {
  EXPECT_EQ(makeBenchmarkStencil("star2d5r", ScalarType::Float), nullptr);
  EXPECT_EQ(makeBenchmarkStencil("bogus", ScalarType::Float), nullptr);
}

TEST(Benchmarks, StarFlopCountsMatchTable3) {
  // star2d{x}r: 8x+1; star3d{x}r: 12x+1.
  for (int X = 1; X <= 4; ++X) {
    auto S2 = makeStarStencil(2, X, ScalarType::Float);
    EXPECT_EQ(S2->flopsPerCell().total(), 8 * X + 1) << "star2d" << X;
    EXPECT_EQ(S2->radius(), X);
    EXPECT_EQ(S2->shape(), StencilShape::Star);
    auto S3 = makeStarStencil(3, X, ScalarType::Float);
    EXPECT_EQ(S3->flopsPerCell().total(), 12 * X + 1) << "star3d" << X;
  }
}

TEST(Benchmarks, BoxFlopCountsMatchTable3) {
  // box2d{x}r: 2*(2x+1)^2 - 1; box3d{x}r: 2*(2x+1)^3 - 1.
  for (int X = 1; X <= 4; ++X) {
    auto B2 = makeBoxStencil(2, X, ScalarType::Float);
    EXPECT_EQ(B2->flopsPerCell().total(), 2 * ipow(2 * X + 1, 2) - 1);
    EXPECT_EQ(B2->shape(), StencilShape::Box);
    EXPECT_TRUE(B2->isAssociative());
    auto B3 = makeBoxStencil(3, X, ScalarType::Float);
    EXPECT_EQ(B3->flopsPerCell().total(), 2 * ipow(2 * X + 1, 3) - 1);
    EXPECT_EQ(B3->taps().size(),
              static_cast<std::size_t>(ipow(2 * X + 1, 3)));
  }
}

TEST(Benchmarks, JacobiFlopCountsMatchTable3) {
  EXPECT_EQ(makeJacobi2d5pt(ScalarType::Float)->flopsPerCell().total(), 10);
  EXPECT_EQ(makeJacobi2d9pt(ScalarType::Float)->flopsPerCell().total(), 18);
  EXPECT_EQ(makeJacobi2d9ptGol(ScalarType::Float)->flopsPerCell().total(),
            18);
  EXPECT_EQ(makeGradient2d(ScalarType::Float)->flopsPerCell().total(), 19);
  EXPECT_EQ(makeJacobi3d27pt(ScalarType::Float)->flopsPerCell().total(), 54);
}

TEST(Benchmarks, OptimizationClasses) {
  EXPECT_EQ(makeJacobi2d5pt(ScalarType::Float)->optimizationClass(),
            OptimizationClass::DiagonalAccessFree);
  EXPECT_EQ(makeJacobi2d9ptGol(ScalarType::Float)->optimizationClass(),
            OptimizationClass::AssociativeStencil);
  EXPECT_EQ(makeGradient2d(ScalarType::Float)->optimizationClass(),
            OptimizationClass::DiagonalAccessFree)
      << "gradient2d is star-shaped even though it is not associative";
  EXPECT_FALSE(makeGradient2d(ScalarType::Float)->isAssociative());
  EXPECT_EQ(makeJacobi3d27pt(ScalarType::Float)->optimizationClass(),
            OptimizationClass::AssociativeStencil);
}

TEST(Benchmarks, OrdersAndRadii) {
  EXPECT_EQ(makeJacobi2d9pt(ScalarType::Float)->radius(), 2)
      << "j2d9pt is the only non-first-order general benchmark";
  EXPECT_EQ(makeJacobi2d9ptGol(ScalarType::Float)->radius(), 1);
  EXPECT_EQ(makeGradient2d(ScalarType::Float)->radius(), 1);
  EXPECT_EQ(makeJacobi3d27pt(ScalarType::Float)->radius(), 1);
}

TEST(Benchmarks, CoefficientsKeepUpdatesBounded) {
  // Per-tap coefficients roughly average: their sum stays close to 1 so the
  // iterates neither explode nor vanish in long runs.
  for (const char *Name : {"star2d2r", "box3d2r"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Double);
    double Sum = 0;
    for (const auto &[CoefName, Value] : P->coefficients())
      if (CoefName != "c0")
        Sum += Value;
    EXPECT_NEAR(Sum, 1.0, 0.1) << Name;
  }
}

TEST(Benchmarks, SourcesExtractConsistentlyWithBuilders) {
  // The Fig. 4 C source and the programmatic builder agree on structure.
  auto FromBuilder = makeJacobi2d5pt(ScalarType::Float);
  EXPECT_EQ(FromBuilder->taps().size(), 5u);
  EXPECT_NE(j2d5ptSource().find("A[(t+1)%2][i][j]"), std::string::npos);
  EXPECT_NE(j2d9ptSource().find("i-2"), std::string::npos);
  EXPECT_NE(star3d1rSource().find("[k]"), std::string::npos);
}
