//===- MeasuredSimTest.cpp - Measured-performance simulator properties --------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/MeasuredSimulator.h"

#include "model/RegisterModel.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

BlockConfig config2d(int BT, int BS, int HS, int Cap = 0) {
  BlockConfig C;
  C.BT = BT;
  C.BS = {BS};
  C.HS = HS;
  C.RegisterCap = Cap;
  return C;
}

} // namespace

TEST(MeasuredSim, NeverExceedsModel) {
  // Every calibration term only slows things down, so the simulated
  // measurement is bounded by the pure model.
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (const char *Name : {"star2d1r", "j2d5pt", "box2d2r", "gradient2d"}) {
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      auto P = makeBenchmarkStencil(Name, Type);
      MeasuredResult R =
          simulateMeasured(*P, V100, config2d(4, 256, 512), Problem);
      ASSERT_TRUE(R.Feasible) << Name;
      EXPECT_LE(R.MeasuredGflops, R.Model.Gflops * 1.0001) << Name;
      EXPECT_GT(R.modelAccuracy(), 0.0) << Name;
      EXPECT_LE(R.modelAccuracy(), 1.0001) << Name;
    }
  }
}

TEST(MeasuredSim, InfeasiblePropagates) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto P = makeStarStencil(2, 4, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  MeasuredResult R =
      simulateMeasured(*P, V100, config2d(16, 128, 256), Problem);
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.MeasuredGflops, 0);
}

TEST(MeasuredSim, DivisionPenaltyOnlyForDoubleConstantDivision) {
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Config = config2d(4, 256, 512);

  // Same shape, with and without the constant division.
  auto JacobiF = makeJacobi2d5pt(ScalarType::Float);
  auto JacobiD = makeJacobi2d5pt(ScalarType::Double);
  auto StarF = makeStarStencil(2, 1, ScalarType::Float);
  auto StarD = makeStarStencil(2, 1, ScalarType::Double);

  double AccJacobiF =
      simulateMeasured(*JacobiF, V100, Config, Problem).modelAccuracy();
  double AccJacobiD =
      simulateMeasured(*JacobiD, V100, Config, Problem).modelAccuracy();
  double AccStarF =
      simulateMeasured(*StarF, V100, Config, Problem).modelAccuracy();
  double AccStarD =
      simulateMeasured(*StarD, V100, Config, Problem).modelAccuracy();

  EXPECT_NEAR(AccJacobiF, AccStarF, 0.1)
      << "float division folds into multiplies under fast math";
  EXPECT_LT(AccJacobiD, AccStarD - 0.15)
      << "double constant division must stand out (Section 7.1)";
}

TEST(MeasuredSim, SyncOverheadGrowsWithDegree) {
  // At fixed spatial parameters, the measured/model ratio of a
  // shared-memory-bound stencil must decay as bT rises.
  GpuSpec V100 = GpuSpec::teslaV100();
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  MeasuredResult R10 =
      simulateMeasured(*P, V100, config2d(10, 512, 256), Problem);
  MeasuredResult R14 =
      simulateMeasured(*P, V100, config2d(14, 512, 256), Problem);
  ASSERT_TRUE(R10.Feasible && R14.Feasible);
  EXPECT_GT(R10.modelAccuracy(), R14.modelAccuracy());
}

TEST(MeasuredSim, RegisterCapCanImproveOccupancy) {
  // star2d1r at bT=9/bS=512 needs 56 registers; NVCC's natural allocation
  // allows only one resident block, a 64-register cap allows two.
  GpuSpec V100 = GpuSpec::teslaV100();
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  MeasuredResult Uncapped =
      simulateMeasured(*P, V100, config2d(9, 512, 256, 0), Problem);
  MeasuredResult Capped =
      simulateMeasured(*P, V100, config2d(9, 512, 256, 64), Problem);
  ASSERT_TRUE(Uncapped.Feasible && Capped.Feasible);
  EXPECT_GT(Capped.Model.ConcurrentBlocksPerSm,
            Uncapped.Model.ConcurrentBlocksPerSm);
  EXPECT_GT(Capped.MeasuredGflops, Uncapped.MeasuredGflops);
}

TEST(MeasuredSim, HighOrder3dBoxCannotScaleTemporally) {
  // Section 7.3: for high-order 3D box stencils "register pressure and the
  // ratio of halo size to spatial block size is too high to allow
  // performance scaling with temporal blocking". Concretely: at bT=2 and
  // radius 4, every Section 6.3 block shape loses its compute region or
  // its register budget, so only bT=1 survives — which is exactly what
  // the tuner picks (Table 5).
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(3);
  auto Heavy = makeBoxStencil(3, 4, ScalarType::Double);
  static const int Shapes[][2] = {{16, 16}, {32, 16}, {32, 32}, {64, 16}};
  for (const auto &Shape : Shapes) {
    BlockConfig C;
    C.BT = 2;
    C.BS = {Shape[0], Shape[1]};
    C.HS = 128;
    EXPECT_FALSE(simulateMeasured(*Heavy, V100, C, Problem).Feasible)
        << Shape[0] << "x" << Shape[1];
  }
  // And the register estimate explains why even wider blocks would not
  // help: the live set alone dwarfs the budget of a 1024-thread block.
  EXPECT_GT(an5dRegistersPerThread(*Heavy, 2) * 1024, 65536);
}

TEST(MeasuredSim, P100AccuracyBelowV100) {
  ProblemSize Problem = ProblemSize::paperDefault(2);
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  BlockConfig Config = config2d(10, 512, 256, 64);
  MeasuredResult V =
      simulateMeasured(*P, GpuSpec::teslaV100(), Config, Problem);
  MeasuredResult Pp =
      simulateMeasured(*P, GpuSpec::teslaP100(), Config, Problem);
  ASSERT_TRUE(V.Feasible && Pp.Feasible);
  EXPECT_GT(V.modelAccuracy(), Pp.modelAccuracy())
      << "Section 7.2: V100's shared memory is markedly more efficient";
}

TEST(RegisterFloors, SpillPredictionsMatchSection71) {
  // At the Sconf degree (bT=4) and a 32-register cap: AN5D never spills;
  // STENCILGEN spills exactly for the second-order stencils.
  for (const char *Name : {"j2d5pt", "j2d9pt", "j2d9pt-gol", "gradient2d",
                           "star3d1r", "star3d2r", "j3d27pt"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    EXPECT_LE(an5dHardFloorRegisters(*P, 4), 32) << Name;
    bool SecondOrder = P->radius() == 2;
    EXPECT_EQ(stencilgenHardFloorRegisters(*P, 4) > 32, SecondOrder)
        << Name;
  }
}
