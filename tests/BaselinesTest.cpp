//===- BaselinesTest.cpp - Comparison framework models ------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "model/RegisterModel.h"
#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

double an5dTunedGflops(const StencilProgram &P, const GpuSpec &Spec) {
  Tuner T(Spec);
  TuneOutcome Outcome = T.tune(P, ProblemSize::paperDefault(P.numDims()));
  EXPECT_TRUE(Outcome.Feasible);
  return Outcome.BestMeasured.MeasuredGflops;
}

} // namespace

TEST(Baselines, AllFrameworksProduceResults) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto P = makeJacobi2d5pt(ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (const FrameworkResult &R :
       {simulateStencilGen(*P, V100, Problem),
        simulateHybridTiling(*P, V100, Problem),
        simulateLoopTiling(*P, V100, Problem)}) {
    EXPECT_TRUE(R.Feasible) << R.Framework;
    EXPECT_GT(R.Gflops, 0) << R.Framework;
    EXPECT_LT(R.Gflops, V100.PeakGflopsFloat) << R.Framework;
  }
}

TEST(Baselines, LoopTilingLosesToEveryone) {
  // Fig. 6: "Loop tiling fails to compete with any of the evaluated
  // frameworks."
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize P2 = ProblemSize::paperDefault(2);
  for (const char *Name : {"j2d5pt", "j2d9pt", "gradient2d"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    FrameworkResult Loop = simulateLoopTiling(*P, V100, P2);
    FrameworkResult Sg = simulateStencilGen(*P, V100, P2);
    FrameworkResult Hybrid = simulateHybridTiling(*P, V100, P2);
    EXPECT_LT(Loop.Gflops, Sg.Gflops) << Name;
    EXPECT_LT(Loop.Gflops, Hybrid.Gflops) << Name;
    EXPECT_LT(Loop.Gflops, an5dTunedGflops(*P, V100)) << Name;
  }
}

TEST(Baselines, An5dTunedWinsOnV100) {
  // Fig. 6 headline: AN5D achieves the highest performance on V100 for all
  // seven compared stencils, float and double.
  GpuSpec V100 = GpuSpec::teslaV100();
  for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
    for (const char *Name : {"j2d5pt", "j2d9pt", "j2d9pt-gol", "gradient2d",
                             "star3d1r", "star3d2r", "j3d27pt"}) {
      auto P = makeBenchmarkStencil(Name, Type);
      ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
      double An5d = an5dTunedGflops(*P, V100);
      EXPECT_GT(An5d, simulateStencilGen(*P, V100, Problem).Gflops)
          << Name << " vs STENCILGEN";
      EXPECT_GT(An5d, simulateHybridTiling(*P, V100, Problem).Gflops)
          << Name << " vs hybrid tiling";
      EXPECT_GT(An5d, simulateLoopTiling(*P, V100, Problem).Gflops)
          << Name << " vs loop tiling";
    }
  }
}

TEST(Baselines, HybridTilingWeakerIn3d) {
  // Section 7.1: hybrid tiling is competitive for 2D but falls behind
  // N.5D-based frameworks for 3D stencils (no streaming).
  GpuSpec V100 = GpuSpec::teslaV100();
  auto P2 = makeJacobi2d5pt(ScalarType::Float);
  auto P3 = makeStarStencil(3, 1, ScalarType::Float);
  FrameworkResult H2 =
      simulateHybridTiling(*P2, V100, ProblemSize::paperDefault(2));
  FrameworkResult S2 =
      simulateStencilGen(*P2, V100, ProblemSize::paperDefault(2));
  FrameworkResult H3 =
      simulateHybridTiling(*P3, V100, ProblemSize::paperDefault(3));
  FrameworkResult S3 =
      simulateStencilGen(*P3, V100, ProblemSize::paperDefault(3));
  double Ratio2d = H2.Gflops / S2.Gflops;
  double Ratio3d = H3.Gflops / S3.Gflops;
  EXPECT_LT(Ratio3d, Ratio2d)
      << "hybrid/N.5D ratio must drop from 2D to 3D";
}

TEST(Baselines, StencilGenRegisterUsage) {
  // Fig. 7: STENCILGEN uses more registers than AN5D on average, and its
  // second-order kernels spill at the 32-register cap while AN5D's do not.
  auto First = makeJacobi2d5pt(ScalarType::Float);
  auto Second = makeJacobi2d9pt(ScalarType::Float);
  EXPECT_GT(stencilgenRegisterUsage(*Second),
            an5dRegistersPerThread(*Second, 4));
  EXPECT_GT(stencilgenRegisterUsage(*Second), 32)
      << "second-order STENCILGEN kernels spill under a 32-register cap";
  EXPECT_GT(stencilgenRegisterUsage(*First), 0);
}

TEST(Baselines, An5dSconfCompetitiveWithStencilGen) {
  // Section 7.1: with STENCILGEN's own configuration, AN5D improves
  // performance in most cases, especially for double precision.
  GpuSpec V100 = GpuSpec::teslaV100();
  for (const char *Name : {"j2d5pt", "star3d1r"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Double);
    ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
    BlockConfig Sconf = Tuner::sconf(*P);
    MeasuredResult An5dSconf = simulateMeasured(*P, V100, Sconf, Problem);
    FrameworkResult Sg = simulateStencilGen(*P, V100, Problem);
    ASSERT_TRUE(An5dSconf.Feasible) << Name;
    EXPECT_GE(An5dSconf.MeasuredGflops, 0.8 * Sg.Gflops) << Name;
  }
}
