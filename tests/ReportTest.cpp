//===- ReportTest.cpp - Schedule/resource report rendering --------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "report/ScheduleReport.h"

#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

BlockConfig goodConfig2d() {
  BlockConfig C;
  C.BT = 9;
  C.BS = {512};
  C.HS = 256;
  C.RegisterCap = 64;
  return C;
}

} // namespace

TEST(ScheduleReport, ContainsAllSections) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  std::string Report = renderScheduleReport(
      *P, GpuSpec::teslaV100(), goodConfig2d(), ProblemSize::paperDefault(2));
  for (const char *Section :
       {"stencil", "configuration", "per-block resources", "occupancy",
        "traffic per temporal block", "roofline", "host schedule"})
    EXPECT_NE(Report.find(Section), std::string::npos) << Section;
  EXPECT_NE(Report.find("star2d1r"), std::string::npos);
  EXPECT_NE(Report.find("predicted bottleneck"), std::string::npos);
  EXPECT_NE(Report.find("GFLOP/s"), std::string::npos);
}

TEST(ScheduleReport, ReportsGmemSavings) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  std::string Report = renderScheduleReport(
      *P, GpuSpec::teslaV100(), goodConfig2d(), ProblemSize::paperDefault(2));
  EXPECT_NE(Report.find("gmem saved vs naive"), std::string::npos);
  EXPECT_NE(Report.find("redundant computation"), std::string::npos);
}

TEST(ScheduleReport, InfeasibleConfigExplained) {
  auto P = makeStarStencil(2, 4, ScalarType::Float);
  BlockConfig Bad;
  Bad.BT = 16;
  Bad.BS = {128}; // 2*16*4 = 128 halo: no compute region
  std::string Report = renderScheduleReport(
      *P, GpuSpec::teslaV100(), Bad, ProblemSize::paperDefault(2));
  EXPECT_NE(Report.find("INFEASIBLE"), std::string::npos);
}

TEST(ScheduleReport, ScheduleSectionShowsParity) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig C;
  C.BT = 4;
  C.BS = {256};
  C.HS = 256;
  ProblemSize Problem = ProblemSize::paperDefault(2);
  Problem.TimeSteps = 13; // forces remainder + parity handling
  std::string Report =
      renderScheduleReport(*P, GpuSpec::teslaV100(), C, Problem);
  EXPECT_NE(Report.find("kernel calls"), std::string::npos);
  EXPECT_NE(Report.find("result buffer"), std::string::npos);
  EXPECT_NE(Report.find("A[1]"), std::string::npos) << "13 % 2 == 1";
}

TEST(ScheduleReport, ThreeDimensionalConfig) {
  auto P = makeJacobi3d27pt(ScalarType::Double);
  BlockConfig C;
  C.BT = 3;
  C.BS = {32, 32};
  C.HS = 256;
  std::string Report = renderScheduleReport(
      *P, GpuSpec::teslaP100(), C, ProblemSize::paperDefault(3));
  EXPECT_NE(Report.find("P100"), std::string::npos);
  EXPECT_NE(Report.find("26 x 26"), std::string::npos)
      << "compute region 32 - 2*3*1 per blocked dimension";
}
