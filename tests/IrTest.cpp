//===- IrTest.cpp - Unit tests for the stencil IR ----------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprAnalysis.h"
#include "ir/ExprEval.h"
#include "ir/StencilExpr.h"
#include "ir/StencilProgram.h"

#include <gtest/gtest.h>

using namespace an5d;

namespace {

/// c1*A[-1,0] + c2*A[0,0] + c3*A[1,0]: a tiny 2D star along the streaming
/// axis.
ExprPtr makeTinyStar() {
  ExprPtr Sum = makeMul(makeCoefficient("c1"), makeGridRead("A", {-1, 0}));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeCoefficient("c2"), makeGridRead("A", {0, 0})));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeCoefficient("c3"), makeGridRead("A", {1, 0})));
  return Sum;
}

} // namespace

TEST(StencilExpr, CloneIsStructurallyEqual) {
  ExprPtr E = makeTinyStar();
  ExprPtr Copy = E->clone();
  EXPECT_TRUE(E->equals(*Copy));
}

TEST(StencilExpr, EqualityDetectsDifferences) {
  ExprPtr A = makeTinyStar();
  ExprPtr B = makeMul(makeCoefficient("c1"), makeGridRead("A", {-1, 0}));
  EXPECT_FALSE(A->equals(*B));
  ExprPtr C = makeGridRead("A", {0, 1});
  ExprPtr D = makeGridRead("A", {1, 0});
  EXPECT_FALSE(C->equals(*D));
  ExprPtr E = makeGridRead("B", {0, 1});
  EXPECT_FALSE(C->equals(*E));
}

TEST(StencilExpr, ToStringRendersOffsets) {
  ExprPtr E = makeGridRead("A", {-1, 2});
  EXPECT_EQ(E->toString(), "A[i-1][j+2]");
  ExprPtr Center = makeGridRead("A", {0, 0, 0});
  EXPECT_EQ(Center->toString(), "A[i][j][k]");
}

TEST(StencilExpr, IsaDynCast) {
  ExprPtr E = makeNumber(4.0);
  EXPECT_TRUE(isa<NumberExpr>(*E));
  EXPECT_FALSE(isa<GridReadExpr>(*E));
  EXPECT_NE(dyn_cast<NumberExpr>(E.get()), nullptr);
  EXPECT_EQ(dyn_cast<CallExpr>(E.get()), nullptr);
}

TEST(ExprAnalysis, CollectTapsDeduplicates) {
  // (A[0,0]-A[1,0])*(A[0,0]-A[1,0]) reads two distinct taps.
  ExprPtr Diff1 = makeSub(makeGridRead("A", {0, 0}), makeGridRead("A", {1, 0}));
  ExprPtr Diff2 = makeSub(makeGridRead("A", {0, 0}), makeGridRead("A", {1, 0}));
  ExprPtr E = makeMul(std::move(Diff1), std::move(Diff2));
  EXPECT_EQ(collectTaps(*E).size(), 2u);
}

TEST(ExprAnalysis, RadiusIsMaxAbsOffset) {
  ExprPtr E = makeAdd(makeGridRead("A", {-3, 0}), makeGridRead("A", {0, 2}));
  EXPECT_EQ(computeRadius(*E), 3);
}

TEST(ExprAnalysis, ShapeClassification) {
  EXPECT_EQ(classifyShape(*makeTinyStar(), 2), StencilShape::Star);

  // Full 3x3 box.
  ExprPtr Box;
  for (int I = -1; I <= 1; ++I)
    for (int J = -1; J <= 1; ++J) {
      ExprPtr Term = makeGridRead("A", {I, J});
      Box = Box ? makeAdd(std::move(Box), std::move(Term)) : std::move(Term);
    }
  EXPECT_EQ(classifyShape(*Box, 2), StencilShape::Box);

  // A diagonal tap without the full cube is General.
  ExprPtr Diag = makeAdd(makeGridRead("A", {1, 1}), makeGridRead("A", {0, 0}));
  EXPECT_EQ(classifyShape(*Diag, 2), StencilShape::General);
}

TEST(ExprAnalysis, FlopCountMatchesTable3Conventions) {
  // 3 muls + 2 adds.
  FlopCount Flops = countFlops(*makeTinyStar());
  EXPECT_EQ(Flops.Muls, 3);
  EXPECT_EQ(Flops.Adds, 2);
  EXPECT_EQ(Flops.Divs, 0);
  EXPECT_EQ(Flops.total(), 5);
}

TEST(ExprAnalysis, DivisionAndCallCounting) {
  std::vector<ExprPtr> Args;
  Args.push_back(makeGridRead("A", {0, 0}));
  ExprPtr E = makeDiv(makeCall("sqrt", std::move(Args)), makeNumber(2.0));
  FlopCount Flops = countFlops(*E);
  EXPECT_EQ(Flops.Divs, 1);
  EXPECT_EQ(Flops.total(), 1) << "sqrt is not charged as a FLOP";
  EXPECT_TRUE(containsMathCall(*E));
  EXPECT_TRUE(containsConstantDivision(*E));
}

TEST(ExprAnalysis, NonConstantDivisionDetected) {
  ExprPtr E = makeDiv(makeNumber(1.0), makeGridRead("A", {0, 0}));
  EXPECT_FALSE(containsConstantDivision(*E));
  EXPECT_EQ(countFlops(*E).Divs, 1);
}

TEST(ExprAnalysis, AssociativeDetection) {
  EXPECT_TRUE(isAssociativeUpdate(*makeTinyStar()));

  // Sum divided by a constant stays associative (the Jacobi pattern).
  ExprPtr Jacobi = makeDiv(makeTinyStar(), makeNumber(118.0));
  EXPECT_TRUE(isAssociativeUpdate(*Jacobi));

  // A product of two grid reads is not associative.
  ExprPtr Product =
      makeMul(makeGridRead("A", {0, 0}), makeGridRead("A", {1, 0}));
  EXPECT_FALSE(isAssociativeUpdate(*Product));

  // A sqrt anywhere breaks associativity.
  std::vector<ExprPtr> Args;
  Args.push_back(makeGridRead("A", {0, 0}));
  ExprPtr WithCall =
      makeAdd(makeCall("sqrt", std::move(Args)), makeGridRead("A", {1, 0}));
  EXPECT_FALSE(isAssociativeUpdate(*WithCall));
}

TEST(ExprAnalysis, InstructionMixAssociative) {
  // 3 terms, no trailing division: 2 FMA + 1 MUL.
  InstructionMix Mix = estimateInstructionMix(*makeTinyStar());
  EXPECT_EQ(Mix.Fma, 2);
  EXPECT_EQ(Mix.Mul, 1);
  // Retired FLOPs = 2*2+1 = 5 == the FLOP census.
  EXPECT_EQ(2 * Mix.Fma + Mix.Mul + Mix.Add + Mix.Other,
            countFlops(*makeTinyStar()).total());
}

TEST(ExprAnalysis, InstructionMixConstDivisionFusesFully) {
  ExprPtr Jacobi = makeDiv(makeTinyStar(), makeNumber(118.0));
  InstructionMix Mix = estimateInstructionMix(*Jacobi);
  EXPECT_EQ(Mix.Fma, 3);
  EXPECT_EQ(Mix.Mul, 0);
  EXPECT_DOUBLE_EQ(Mix.aluEfficiency(), 1.0);
}

TEST(ExprEval, ArithmeticAndCalls) {
  // 2*A[0,0] + A[1,0] with A[0,0]=3, A[1,0]=4 -> 10.
  ExprPtr E = makeAdd(makeMul(makeNumber(2.0), makeGridRead("A", {0, 0})),
                      makeGridRead("A", {1, 0}));
  auto Read = [](const GridReadExpr &R) -> double {
    return R.offsets()[0] == 0 ? 3.0 : 4.0;
  };
  auto Coef = [](const std::string &) -> double { return 0.0; };
  EXPECT_DOUBLE_EQ(evalExpr<double>(*E, Read, Coef), 10.0);

  std::vector<ExprPtr> Args;
  Args.push_back(makeNumber(9.0));
  ExprPtr Sqrt = makeCall("sqrt", std::move(Args));
  EXPECT_DOUBLE_EQ(evalExpr<double>(*Sqrt, Read, Coef), 3.0);
}

TEST(ExprEval, FloatTruncationMatchesFloatArithmetic) {
  ExprPtr E = makeDiv(makeNumber(1.0), makeNumber(3.0));
  auto Read = [](const GridReadExpr &) -> float { return 0.0f; };
  auto Coef = [](const std::string &) -> float { return 0.0f; };
  EXPECT_EQ(evalExpr<float>(*E, Read, Coef), 1.0f / 3.0f);
}

TEST(StencilProgram, DerivedPropertiesStar) {
  std::map<std::string, double> Coefs = {
      {"c1", 0.25}, {"c2", 0.5}, {"c3", 0.25}};
  StencilProgram P("tiny", 2, ScalarType::Float, "A", makeTinyStar(), Coefs);
  EXPECT_EQ(P.radius(), 1);
  EXPECT_EQ(P.shape(), StencilShape::Star);
  EXPECT_TRUE(P.isDiagonalAccessFree());
  EXPECT_TRUE(P.isAssociative());
  EXPECT_EQ(P.optimizationClass(), OptimizationClass::DiagonalAccessFree);
  EXPECT_EQ(P.wordSize(), 4);
  EXPECT_EQ(P.taps().size(), 3u);
  EXPECT_DOUBLE_EQ(P.coefficientValue("c2"), 0.5);
}

TEST(StencilProgram, ScalarTypeHelpers) {
  EXPECT_EQ(scalarSizeInBytes(ScalarType::Float), 4);
  EXPECT_EQ(scalarSizeInBytes(ScalarType::Double), 8);
  EXPECT_STREQ(scalarTypeName(ScalarType::Double), "double");
}

TEST(StencilProgram, ToStringMentionsShape) {
  StencilProgram P("tiny", 2, ScalarType::Double, "A", makeTinyStar(),
                   {{"c1", 1}, {"c2", 1}, {"c3", 1}});
  std::string Text = P.toString();
  EXPECT_NE(Text.find("tiny"), std::string::npos);
  EXPECT_NE(Text.find("star"), std::string::npos);
  EXPECT_NE(Text.find("radius 1"), std::string::npos);
}
