//===- ModelTest.cpp - GPU spec, Table 1/2, register and roofline model ------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/GpuSpec.h"
#include "model/PerformanceModel.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"

#include <gtest/gtest.h>

using namespace an5d;

TEST(GpuSpec, Table4Values) {
  GpuSpec V100 = GpuSpec::teslaV100();
  EXPECT_EQ(V100.PeakGflopsFloat, 15700);
  EXPECT_EQ(V100.PeakGflopsDouble, 7850);
  EXPECT_EQ(V100.MeasuredGmemGBsFloat, 791);
  EXPECT_EQ(V100.MeasuredSmemGBsDouble, 12750);
  EXPECT_EQ(V100.SmCount, 80);
  EXPECT_EQ(V100.SharedMemPerSmBytes, 96 * 1024);

  GpuSpec P100 = GpuSpec::teslaP100();
  EXPECT_EQ(P100.PeakGflopsFloat, 10600);
  EXPECT_EQ(P100.SmCount, 56);
  EXPECT_EQ(P100.SharedMemPerSmBytes, 64 * 1024);
  EXPECT_LT(P100.SmemKernelEfficiency, V100.SmemKernelEfficiency)
      << "Section 7.2: V100 has the more efficient shared memory";
}

TEST(BlockConfigTest, ThreadsAndComputeWidth) {
  BlockConfig C;
  C.BT = 10;
  C.BS = {256};
  EXPECT_EQ(C.numThreads(), 256);
  EXPECT_EQ(C.computeWidth(0, 1), 256 - 20);
  EXPECT_TRUE(C.isFeasible(1));
  EXPECT_FALSE(C.isFeasible(13)) << "2*10*13 = 260 > 256";

  BlockConfig C3;
  C3.BT = 4;
  C3.BS = {32, 32};
  EXPECT_EQ(C3.numThreads(), 1024);
  EXPECT_TRUE(C3.isFeasible(1, 1024));
  EXPECT_FALSE(C3.isFeasible(1, 512)) << "thread limit";
}

TEST(ProblemSizeTest, PaperDefaults) {
  ProblemSize P2 = ProblemSize::paperDefault(2);
  EXPECT_EQ(P2.Extents, (std::vector<long long>{16384, 16384}));
  EXPECT_EQ(P2.TimeSteps, 1000);
  EXPECT_EQ(P2.cellCount(), 16384LL * 16384);
  ProblemSize P3 = ProblemSize::paperDefault(3);
  EXPECT_EQ(P3.cellCount(), 512LL * 512 * 512);
}

//===----------------------------------------------------------------------===//
// Table 1
//===----------------------------------------------------------------------===//

TEST(Table1, SmemFootprintDiagonalAccessFree) {
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  // AN5D: 2 * nthr * nword regardless of bT.
  EXPECT_EQ(an5dSmemBytesPerBlock(*Star, 256), 2LL * 256 * 4);
  // STENCILGEN: nthr * bT * nword.
  EXPECT_EQ(stencilgenSmemBytesPerBlock(*Star, 256, 4), 256LL * 4 * 4);
  // AN5D wins once bT > 2.
  EXPECT_LT(an5dSmemBytesPerBlock(*Star, 256),
            stencilgenSmemBytesPerBlock(*Star, 256, 10));
}

TEST(Table1, SmemFootprintAssociative) {
  auto Gol = makeJacobi2d9ptGol(ScalarType::Double);
  EXPECT_EQ(Gol->optimizationClass(), OptimizationClass::AssociativeStencil);
  EXPECT_EQ(an5dSmemBytesPerBlock(*Gol, 128), 2LL * 128 * 8);
  EXPECT_EQ(stencilgenSmemBytesPerBlock(*Gol, 128, 6), 6LL * 128 * 8);
}

TEST(Table1, SmemFootprintOtherwise) {
  // A non-associative box-shaped stencil falls into the Otherwise row.
  ExprPtr Update = makeMul(makeGridRead("A", {1, 1}),
                           makeGridRead("A", {-1, -1}));
  // Add remaining taps of the 3x3 cube so the shape classifies as box.
  for (int I = -1; I <= 1; ++I)
    for (int J = -1; J <= 1; ++J) {
      if ((I == 1 && J == 1) || (I == -1 && J == -1))
        continue;
      Update = makeAdd(std::move(Update), makeGridRead("A", {I, J}));
    }
  StencilProgram P("nonassoc-box", 2, ScalarType::Float, "A",
                   std::move(Update));
  EXPECT_EQ(P.shape(), StencilShape::Box);
  EXPECT_FALSE(P.isAssociative());
  EXPECT_EQ(P.optimizationClass(), OptimizationClass::Otherwise);
  // 2 * nthr * (1 + 2*rad) * nword.
  EXPECT_EQ(an5dSmemBytesPerBlock(P, 100), 2LL * 100 * 3 * 4);
  EXPECT_EQ(stencilgenSmemBytesPerBlock(P, 100, 4), 4LL * 100 * 3 * 4);
  EXPECT_EQ(smemStoresPerCell(P), 3);
}

TEST(Table1, StoresPerCell) {
  EXPECT_EQ(smemStoresPerCell(*makeStarStencil(2, 3, ScalarType::Float)), 1);
  EXPECT_EQ(smemStoresPerCell(*makeBoxStencil(3, 2, ScalarType::Float)), 1)
      << "associative box stores once (partial summation)";
}

//===----------------------------------------------------------------------===//
// Table 2
//===----------------------------------------------------------------------===//

TEST(Table2, SmemReadsPerThread) {
  for (int Rad = 1; Rad <= 4; ++Rad) {
    auto S2 = makeStarStencil(2, Rad, ScalarType::Float);
    EXPECT_EQ(smemReadsPerThreadExpected(*S2), 2 * Rad);
    EXPECT_EQ(smemReadsPerThreadPractical(*S2), 2 * Rad);

    auto B2 = makeBoxStencil(2, Rad, ScalarType::Float);
    long long D = 2 * Rad + 1;
    EXPECT_EQ(smemReadsPerThreadExpected(*B2), D * D - D);
    EXPECT_EQ(smemReadsPerThreadPractical(*B2), D - 1);

    auto S3 = makeStarStencil(3, Rad, ScalarType::Float);
    EXPECT_EQ(smemReadsPerThreadExpected(*S3), 4 * Rad);

    auto B3 = makeBoxStencil(3, Rad, ScalarType::Float);
    EXPECT_EQ(smemReadsPerThreadExpected(*B3), D * D * D - D);
    EXPECT_EQ(smemReadsPerThreadPractical(*B3), D * D - 1);
  }
  EXPECT_EQ(smemWritesPerThread(), 1);
}

//===----------------------------------------------------------------------===//
// Register model
//===----------------------------------------------------------------------===//

TEST(RegisterModel, Section63Formulas) {
  auto Star1 = makeStarStencil(2, 1, ScalarType::Float);
  EXPECT_EQ(an5dRegistersPerThread(*Star1, 4), 4 * 3 + 4 + 20);
  auto Star1D = makeStarStencil(2, 1, ScalarType::Double);
  EXPECT_EQ(an5dRegistersPerThread(*Star1D, 4), 2 * 4 * 3 + 4 + 30);
}

TEST(RegisterModel, StencilGenUsesMoreRegisters) {
  for (int Rad = 1; Rad <= 2; ++Rad) {
    auto P = makeStarStencil(2, Rad, ScalarType::Float);
    EXPECT_GT(stencilgenRegistersPerThread(*P, 4),
              an5dRegistersPerThread(*P, 4))
        << "Fig. 7: the shifting allocation costs extra registers";
  }
}

TEST(RegisterModel, PruningLimits) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Box4 = makeBoxStencil(3, 4, ScalarType::Double);
  BlockConfig Big;
  Big.BT = 8;
  Big.BS = {32, 32};
  // 2*8*9 + 8 + 30 = 182 regs/thread, 1024 threads -> way over 65536/SM.
  EXPECT_TRUE(exceedsRegisterLimits(*Box4, Big, V100));

  auto Star1 = makeStarStencil(2, 1, ScalarType::Float);
  BlockConfig Small;
  Small.BT = 4;
  Small.BS = {256};
  EXPECT_FALSE(exceedsRegisterLimits(*Star1, Small, V100));
}

TEST(RegisterModel, PreferredCap) {
  auto Star1 = makeStarStencil(2, 1, ScalarType::Float);
  EXPECT_EQ(preferredRegisterCap(*Star1, 2), 32);  // 2*3+2+20 = 28
  EXPECT_EQ(preferredRegisterCap(*Star1, 8), 64);  // 8*3+8+20 = 52
  auto Box4D = makeBoxStencil(3, 4, ScalarType::Double);
  EXPECT_EQ(preferredRegisterCap(*Box4D, 8), 0) << "does not fit any cap";
}

//===----------------------------------------------------------------------===//
// Roofline model
//===----------------------------------------------------------------------===//

TEST(PerformanceModel, InfeasibleConfigsRejected) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(2, 4, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig NoComputeRegion;
  NoComputeRegion.BT = 16;
  NoComputeRegion.BS = {128};
  EXPECT_FALSE(
      evaluateModel(*Star, V100, NoComputeRegion, Problem).Feasible);
}

TEST(PerformanceModel, DimensionalityMismatchedConfigsRejected) {
  // isFeasible accepts an empty BS (the 1D streaming config) and cannot
  // see the stencil's dimensionality; the model must reject configs whose
  // blocked-dimension count does not match the program.
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star2 = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize P2 = ProblemSize::paperDefault(2);
  BlockConfig Empty; // BS empty: valid for 1D only.
  Empty.BT = 4;
  Empty.HS = 256;
  EXPECT_FALSE(evaluateModel(*Star2, V100, Empty, P2).Feasible);
  EXPECT_FALSE(simulateMeasured(*Star2, V100, Empty, P2).Feasible);

  BlockConfig ThreeD;
  ThreeD.BT = 4;
  ThreeD.BS = {32, 32};
  EXPECT_FALSE(evaluateModel(*Star2, V100, ThreeD, P2).Feasible);

  auto Star1 = makeStarStencil(1, 1, ScalarType::Float);
  ProblemSize P1 = ProblemSize::paperDefault(1);
  BlockConfig Blocked1d;
  Blocked1d.BT = 4;
  Blocked1d.BS = {256};
  EXPECT_FALSE(evaluateModel(*Star1, V100, Blocked1d, P1).Feasible);
  EXPECT_TRUE(evaluateModel(*Star1, V100, Empty, P1).Feasible);
}

TEST(PerformanceModel, SaneOutputForPaperConfig) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Config;
  Config.BT = 10;
  Config.BS = {256};
  Config.HS = 256;
  Config.RegisterCap = 64;
  ModelBreakdown Model = evaluateModel(*Star, V100, Config, Problem);
  ASSERT_TRUE(Model.Feasible);
  EXPECT_GT(Model.Gflops, 1000) << "multi-TFLOP/s territory expected";
  EXPECT_LT(Model.Gflops, 20000) << "below FP32 peak";
  EXPECT_GE(Model.EffAlu, 0.9);
  EXPECT_LE(Model.EffSm, 1.0);
  EXPECT_EQ(Model.Limit, Bottleneck::SharedMemory)
      << "Section 7.2: shared memory is the predicted bottleneck";
}

TEST(PerformanceModel, TemporalBlockingReducesGmemTraffic) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Bt1, Bt8;
  Bt1.BT = 1;
  Bt1.BS = {256};
  Bt1.HS = 512;
  Bt8 = Bt1;
  Bt8.BT = 8;
  ModelBreakdown M1 = evaluateModel(*Star, V100, Bt1, Problem);
  ModelBreakdown M8 = evaluateModel(*Star, V100, Bt8, Problem);
  ASSERT_TRUE(M1.Feasible && M8.Feasible);
  EXPECT_LT(M8.TotalGmemBytes, M1.TotalGmemBytes / 4)
      << "bT=8 should cut global traffic by nearly 8x";
  EXPECT_GT(M8.Gflops, M1.Gflops);
}

TEST(PerformanceModel, SpillingCapRejected) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Config;
  Config.BT = 10;
  Config.BS = {256};
  Config.HS = 256;
  Config.RegisterCap = 32; // needs 10*3+10+20 = 60 > 32
  EXPECT_FALSE(evaluateModel(*Star, V100, Config, Problem).Feasible);
}

TEST(PerformanceModel, DoublePrecisionSlower) {
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Config;
  Config.BT = 6;
  Config.BS = {256};
  Config.HS = 512;
  auto F = makeStarStencil(2, 1, ScalarType::Float);
  auto D = makeStarStencil(2, 1, ScalarType::Double);
  ModelBreakdown MF = evaluateModel(*F, V100, Config, Problem);
  ModelBreakdown MD = evaluateModel(*D, V100, Config, Problem);
  ASSERT_TRUE(MF.Feasible && MD.Feasible);
  EXPECT_GT(MF.Gflops, MD.Gflops);
}

TEST(PerformanceModel, SmUtilizationScoresTailWaveByFill) {
  // One wave = 10 blocks here. The old Floor/Ceil form scored every
  // partial second wave 0.5 — 1.9 waves (a nearly full tail) the same as
  // 1.1 — and rankings flipped at wave boundaries.
  EXPECT_NEAR(smUtilizationEfficiency(19, 1, 10), 0.95, 1e-12);
  EXPECT_NEAR(smUtilizationEfficiency(11, 1, 10), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(smUtilizationEfficiency(20, 1, 10), 1.0);
  EXPECT_NEAR(smUtilizationEfficiency(21, 1, 10), 0.7, 1e-12);
  // Less than one wave: utilization is the filled fraction.
  EXPECT_NEAR(smUtilizationEfficiency(5, 1, 10), 0.5, 1e-12);
  // Degenerate inputs.
  EXPECT_EQ(smUtilizationEfficiency(0, 1, 10), 0.0);
  EXPECT_EQ(smUtilizationEfficiency(10, 0, 10), 0.0);
}

TEST(PerformanceModel, SmUtilizationMonotoneAndContinuous) {
  // BlocksPerWave = 2 * 16 = 32. Within a wave the efficiency must rise
  // continuously (steps of at most 1/BlocksPerWave) up to exactly 1.0 at
  // full waves, and the effective time proxy Blocks/Eff — proportional to
  // Ceil(Waves) — must never decrease as blocks are added: adding work
  // can't make the predicted launch faster.
  const int BlocksPerSm = 2, SmCount = 16;
  const double BlocksPerWave = 32.0;
  double PrevEff = 0.0, PrevTimeProxy = 0.0;
  for (long long Blocks = 1; Blocks <= 10 * 32; ++Blocks) {
    double Eff = smUtilizationEfficiency(Blocks, BlocksPerSm, SmCount);
    ASSERT_GT(Eff, 0.0) << Blocks;
    ASSERT_LE(Eff, 1.0) << Blocks;
    bool NewWaveStarted = (Blocks - 1) % 32 == 0 && Blocks > 32;
    if (!NewWaveStarted) {
      EXPECT_GT(Eff, PrevEff) << Blocks << ": rising within a wave";
      EXPECT_LE(Eff - PrevEff, 1.0 / BlocksPerWave + 1e-12)
          << Blocks << ": no jumps within a wave";
    }
    if (Blocks % 32 == 0)
      EXPECT_DOUBLE_EQ(Eff, 1.0) << Blocks << ": full waves saturate";
    double TimeProxy = static_cast<double>(Blocks) / Eff;
    EXPECT_GE(TimeProxy, PrevTimeProxy - 1e-9)
        << Blocks << ": predicted time must not drop when work is added";
    PrevEff = Eff;
    PrevTimeProxy = TimeProxy;
  }
}

TEST(PerformanceModel, ResidentBlockLimitRespected) {
  // A 1D pure-streaming config has one-lane blocks; without the
  // MaxBlocksPerSm cap the occupancy term would claim thousands of
  // resident blocks per SM.
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(1, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(1);
  BlockConfig Config;
  Config.BT = 4;
  Config.HS = 512;
  ModelBreakdown Model = evaluateModel(*Star, V100, Config, Problem);
  ASSERT_TRUE(Model.Feasible);
  EXPECT_LE(Model.ConcurrentBlocksPerSm, V100.MaxBlocksPerSm);
  EXPECT_GT(Model.ConcurrentBlocksPerSm, 0);
}

TEST(PerformanceModel, ToStringMentionsBottleneck) {
  GpuSpec V100 = GpuSpec::teslaV100();
  auto Star = makeStarStencil(2, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {256};
  Config.HS = 512;
  ModelBreakdown Model = evaluateModel(*Star, V100, Config, Problem);
  ASSERT_TRUE(Model.Feasible);
  EXPECT_NE(Model.toString().find("bound="), std::string::npos);
  ModelBreakdown Bad;
  EXPECT_EQ(Bad.toString(), "infeasible");
}
