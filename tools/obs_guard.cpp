//===- obs_guard.cpp - Schema & drift guard for the observability exports ----===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the files an5dc --metrics / --trace write:
///
///   obs_guard metrics.json [trace.json]
///
/// The metrics file must parse, carry the counters/gauges/histograms (and
/// optional spans) sections with the right shapes, and use only metric
/// names from the canonical glossary (obs::knownMetricNames) — so a
/// producer that invents a name without extending the glossary (and the
/// README) fails CI instead of silently drifting. The trace file must be a
/// well-formed Chrome trace-event document of "X" complete events.
///
/// Exit status: 0 when everything validates, 1 otherwise (first problem
/// printed to stderr), 2 for usage errors.
///
//===----------------------------------------------------------------------===//

#include "obs/JsonLite.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace an5d;

namespace {

bool Failed = false;

void fail(const std::string &File, const std::string &Why) {
  std::fprintf(stderr, "obs_guard: %s: %s\n", File.c_str(), Why.c_str());
  Failed = true;
}

bool knownName(const std::string &Name) {
  const std::vector<std::string> &Known = obs::knownMetricNames();
  return std::find(Known.begin(), Known.end(), Name) != Known.end();
}

/// Counters and gauges: every member a number, every name in the glossary.
void checkScalarSection(const std::string &File, const obs::JsonValue &Root,
                        const char *Section) {
  const obs::JsonValue *Value = Root.find(Section);
  if (!Value || !Value->isObject()) {
    fail(File, std::string("missing or non-object \"") + Section +
                   "\" section");
    return;
  }
  for (const auto &Member : Value->Members) {
    if (!Member.second.isNumber())
      fail(File, std::string(Section) + "." + Member.first +
                     " is not a number");
    if (!knownName(Member.first))
      fail(File, std::string(Section) + "." + Member.first +
                     " is not in the metric glossary "
                     "(obs::knownMetricNames)");
  }
}

void checkHistograms(const std::string &File, const obs::JsonValue &Root) {
  const obs::JsonValue *Section = Root.find("histograms");
  if (!Section || !Section->isObject()) {
    fail(File, "missing or non-object \"histograms\" section");
    return;
  }
  for (const auto &Member : Section->Members) {
    const std::string Prefix = "histograms." + Member.first;
    if (!knownName(Member.first))
      fail(File, Prefix + " is not in the metric glossary "
                          "(obs::knownMetricNames)");
    const obs::JsonValue &H = Member.second;
    const obs::JsonValue *Count = H.find("count");
    const obs::JsonValue *Sum = H.find("sum");
    const obs::JsonValue *Buckets = H.find("buckets");
    if (!H.isObject() || !Count || !Count->isNumber() || !Sum ||
        !Sum->isNumber() || !Buckets || !Buckets->isArray()) {
      fail(File, Prefix + " lacks the {count, sum, buckets[]} shape");
      continue;
    }
    double BucketTotal = 0;
    bool SawOverflow = false;
    for (const obs::JsonValue &Bucket : Buckets->Items) {
      const obs::JsonValue *Le = Bucket.find("le");
      const obs::JsonValue *N = Bucket.find("count");
      if (!Bucket.isObject() || !Le || !N || !N->isNumber()) {
        fail(File, Prefix + " has a bucket without {le, count}");
        continue;
      }
      BucketTotal += N->Number;
      if (Le->isString() && Le->String == "+inf")
        SawOverflow = true;
      else if (!Le->isNumber())
        fail(File, Prefix + " has a bucket bound that is neither a number "
                            "nor \"+inf\"");
    }
    if (!SawOverflow)
      fail(File, Prefix + " lacks the \"+inf\" overflow bucket");
    if (BucketTotal != Count->Number)
      fail(File, Prefix + " bucket counts do not sum to its count");
  }
}

void checkSpans(const std::string &File, const obs::JsonValue &Root) {
  const obs::JsonValue *Section = Root.find("spans");
  if (!Section)
    return; // optional: only present when spans were recorded
  if (!Section->isObject()) {
    fail(File, "\"spans\" is not an object");
    return;
  }
  for (const auto &Member : Section->Members)
    for (const char *Field :
         {"count", "total_ms", "mean_ms", "min_ms", "max_ms"}) {
      const obs::JsonValue *Value = Member.second.find(Field);
      if (!Value || !Value->isNumber())
        fail(File, "spans." + Member.first + " lacks numeric " + Field);
    }
}

void checkMetricsFile(const std::string &File, const std::string &Text) {
  std::string Error;
  std::optional<obs::JsonValue> Root = obs::parseJson(Text, &Error);
  if (!Root) {
    fail(File, "invalid JSON: " + Error);
    return;
  }
  if (!Root->isObject()) {
    fail(File, "top level is not an object");
    return;
  }
  checkScalarSection(File, *Root, "counters");
  checkScalarSection(File, *Root, "gauges");
  checkHistograms(File, *Root);
  checkSpans(File, *Root);
}

void checkTraceFile(const std::string &File, const std::string &Text) {
  std::string Error;
  std::optional<obs::JsonValue> Root = obs::parseJson(Text, &Error);
  if (!Root) {
    fail(File, "invalid JSON: " + Error);
    return;
  }
  const obs::JsonValue *Unit =
      Root->isObject() ? Root->find("displayTimeUnit") : nullptr;
  if (!Unit || !Unit->isString() || Unit->String != "ms")
    fail(File, "displayTimeUnit is not \"ms\"");
  const obs::JsonValue *Events =
      Root->isObject() ? Root->find("traceEvents") : nullptr;
  if (!Events || !Events->isArray()) {
    fail(File, "missing or non-array \"traceEvents\"");
    return;
  }
  std::size_t Index = 0;
  for (const obs::JsonValue &Event : Events->Items) {
    const std::string Prefix =
        "traceEvents[" + std::to_string(Index++) + "]";
    const obs::JsonValue *Name = Event.find("name");
    const obs::JsonValue *Phase = Event.find("ph");
    if (!Event.isObject() || !Name || !Name->isString() || !Phase ||
        !Phase->isString() || Phase->String != "X") {
      fail(File, Prefix + " is not a named \"X\" complete event");
      continue;
    }
    for (const char *Field : {"pid", "tid", "ts", "dur"}) {
      const obs::JsonValue *Value = Event.find(Field);
      if (!Value || !Value->isNumber())
        fail(File, Prefix + " lacks numeric " + Field);
    }
    if (const obs::JsonValue *Dur = Event.find("dur");
        Dur && Dur->isNumber() && Dur->Number < 0)
      fail(File, Prefix + " has a negative duration");
  }
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    fail(Path, "cannot open");
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  if (Out.empty())
    fail(Path, "file is empty");
  return !Out.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2 || Argc > 3) {
    std::fprintf(stderr, "usage: obs_guard metrics.json [trace.json]\n");
    return 2;
  }

  std::string Text;
  if (readFile(Argv[1], Text))
    checkMetricsFile(Argv[1], Text);
  if (Argc == 3 && readFile(Argv[2], Text))
    checkTraceFile(Argv[2], Text);

  if (Failed)
    return 1;
  std::printf("obs_guard: %s%s%s: ok\n", Argv[1], Argc == 3 ? " and " : "",
              Argc == 3 ? Argv[2] : "");
  return 0;
}
