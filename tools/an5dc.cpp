//===- an5dc.cpp - The AN5D source-to-source stencil compiler -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line front door of the framework, mirroring what the paper's
/// AN5D tool does: read an unoptimized double-buffered C stencil, detect
/// the pattern, pick (or accept) a blocking configuration, and emit CUDA
/// host + kernel code. Additional switches expose the performance model,
/// the tuner and the portable self-checking C++ backend.
///
/// Usage:
///   an5dc [options] input.c
///   an5dc --list-benchmarks
///   an5dc --benchmark j2d5pt --tune --emit-cuda out/
///
/// Options:
///   --name NAME          stencil name (default: input file stem)
///   --benchmark NAME     use a built-in Table 3 benchmark instead of a file
///   --type float|double  element type override
///   --device v100|p100   target GPU for tuning/model (default v100)
///   --bt N --bs N[,N] --hs N --regs N    manual configuration
///   --tune               pick the configuration with the Section 6.3 flow
///   --tune-threads N     measured-sweep worker threads (0 = auto)
///   --tune-topk N        model-ranked candidates to measure (default 16;
///                        8 with --measure native)
///   --measure SOURCE     measured-sweep source: simulated (default) or
///                        native (JIT-compiled OpenMP kernels on this CPU)
///   --measure-threads N  OpenMP threads per timed native kernel — applies
///                        to the --tune --measure native sweep and to
///                        --run-native (0 = the tune sweep pins to this
///                        machine's hardware concurrency)
///   --measure-repeats N  timed repetitions, best kept (>= 1) — applies
///                        to the tune sweep (plus one untimed warmup)
///                        and to --run-native
///   --print-stencil      show the detected stencil and classification
///   --print-model        show the roofline breakdown for the configuration
///   --verify-schedule    statically prove the configuration's schedule
///                        safe (halo coverage, ring depth, wavefront
///                        order, OpenMP write-set disjointness) without
///                        compiling anything; non-zero exit on violation
///   --lint               lint the generated kernel-library and
///                        check-program sources (ABI symbols, exact-float
///                        literals, banned calls, restrict qualifiers)
///                        and lint every JIT kernel before compiling it
///   --analyze FILE       run the static analysis passes (tape verifier,
///                        access-bounds prover, resource estimator) over
///                        the configuration's lowered schedule and write
///                        the an5d-analysis-v1 JSON report (findings +
///                        resource estimates) to FILE ('-' = stdout);
///                        non-zero exit on Error-severity findings
///   --emit-cuda DIR      write <kernel>.cu and <kernel>_host.cpp to DIR
///   --emit-check DIR     write the self-checking portable C++ program
///   --emit-omp DIR       write the callable OpenMP kernel library source
///   --verify             run the blocked emulator vs the reference
///   --verify-native      compile the native kernel and check it against
///                        the reference bit for bit
///   --run-native         compile (or fetch from cache), load and time the
///                        native kernel on a CPU-sized problem
///   --kernel-cache DIR   kernel-cache directory (default: see README)
///   --trace FILE         record trace spans across the whole run and write
///                        them as Chrome trace-event JSON (open in
///                        Perfetto); AN5D_TRACE in the environment is the
///                        flagless equivalent
///   --metrics FILE       write the metrics-registry export (counters,
///                        gauges, histograms, span aggregates) as JSON;
///                        AN5D_METRICS is the flagless equivalent
///   --obs-summary        print the aggregated span table and the non-zero
///                        metrics on exit (implies span recording)
///
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"
#include "analysis/ScheduleVerifier.h"
#include "analysis/passes/AnalysisPass.h"
#include "analysis/passes/ResourceEstimator.h"
#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "codegen/LoopTilingCodegen.h"
#include "frontend/StencilExtractor.h"
#include "obs/JsonLite.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "report/ScheduleReport.h"
#include "runtime/NativeExecutor.h"
#include "runtime/NativeMeasurement.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/MeasuredSimulator.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "transforms/ExprSimplify.h"
#include "tuning/Tuner.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

using namespace an5d;

namespace {

struct CliOptions {
  std::string InputPath;
  std::string Name;
  std::string Benchmark;
  std::optional<ScalarType> Type;
  bool UseP100 = false;
  int BT = 0;
  std::vector<int> BS;
  int HS = -1;
  int Regs = 0;
  bool Tune = false;
  TuneOptions Tuning;
  bool TopKSet = false;
  int MeasureThreads = -1; ///< --measure-threads; -1 = not set
  int MeasureRepeats = 0;  ///< --measure-repeats; 0 = not set
  bool PrintStencil = false;
  bool PrintModel = false;
  bool Report = false;
  bool Simplify = false;
  bool DivToMul = false;
  bool Verify = false;
  bool VerifyNative = false;
  bool VerifySchedule = false;
  bool Lint = false;
  std::string AnalyzePath; ///< --analyze; empty = off, "-" = stdout
  bool RunNative = false;
  std::string TracePath;   ///< --trace / AN5D_TRACE; empty = off
  std::string MetricsPath; ///< --metrics / AN5D_METRICS; empty = off
  bool ObsSummary = false; ///< --obs-summary
  NativeRuntimeOptions NativeOpts;
  CodegenOptions Codegen;
  std::string EmitCudaDir;
  std::string EmitCheckDir;
  std::string EmitOmpDir;
  std::string EmitLoopTilingDir;
  bool ListBenchmarks = false;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: an5dc [options] input.c\n"
      "  --benchmark NAME | --list-benchmarks\n"
      "  --name NAME --type float|double --device v100|p100\n"
      "  --bt N --bs N[,N] --hs N --regs N | --tune\n"
      "  --tune-threads N --tune-topk N --measure simulated|native\n"
      "  --measure-threads N --measure-repeats N\n"
      "  --print-stencil --print-model --report --verify\n"
      "  --verify-native --verify-schedule --lint --analyze FILE\n"
      "  --run-native --kernel-cache DIR\n"
      "  --trace FILE --metrics FILE --obs-summary\n"
      "  --simplify --div-to-mul\n"
      "  --no-assoc-opt --no-dafree-opt --vectorized-smem --unroll-inner\n"
      "  --emit-cuda DIR --emit-check DIR --emit-omp DIR "
      "--emit-loop-tiling DIR\n");
}

/// Parses a full decimal integer >= \p MinValue into \p Out; anything else
/// ("foo", "12x", overflow, too small) gets a diagnostic naming \p Flag.
bool parseIntValue(const char *Flag, const char *Text, int MinValue,
                   int &Out) {
  char *End = nullptr;
  errno = 0;
  long Value = std::strtol(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE || Value < MinValue ||
      Value > INT_MAX) {
    std::fprintf(stderr,
                 "an5dc: invalid value '%s' for %s (expected an integer "
                 ">= %d)\n",
                 Text, Flag, MinValue);
    return false;
  }
  Out = static_cast<int>(Value);
  return true;
}

/// Parses a comma-separated list of positive integers (--bs).
bool parseIntListValue(const char *Flag, const std::string &Text,
                       std::vector<int> &Out) {
  Out.clear();
  std::stringstream Stream(Text);
  std::string Item;
  while (std::getline(Stream, Item, ',')) {
    int Value = 0;
    if (!parseIntValue(Flag, Item.c_str(), 1, Value))
      return false;
    Out.push_back(Value);
  }
  if (Out.empty()) {
    std::fprintf(stderr, "an5dc: empty value for %s\n", Flag);
    return false;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "an5dc: missing value for %s\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (Arg == "--list-benchmarks") {
      Options.ListBenchmarks = true;
    } else if (Arg == "--benchmark") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Benchmark = V;
    } else if (Arg == "--name") {
      const char *V = Next();
      if (!V)
        return false;
      Options.Name = V;
    } else if (Arg == "--type") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "float") == 0)
        Options.Type = ScalarType::Float;
      else if (std::strcmp(V, "double") == 0)
        Options.Type = ScalarType::Double;
      else {
        std::fprintf(stderr, "an5dc: unknown type '%s'\n", V);
        return false;
      }
    } else if (Arg == "--device") {
      const char *V = Next();
      if (!V)
        return false;
      Options.UseP100 = std::strcmp(V, "p100") == 0;
    } else if (Arg == "--bt") {
      const char *V = Next();
      if (!V || !parseIntValue("--bt", V, 1, Options.BT))
        return false;
    } else if (Arg == "--bs") {
      const char *V = Next();
      if (!V || !parseIntListValue("--bs", V, Options.BS))
        return false;
    } else if (Arg == "--hs") {
      const char *V = Next();
      if (!V || !parseIntValue("--hs", V, 0, Options.HS))
        return false;
    } else if (Arg == "--regs") {
      const char *V = Next();
      if (!V || !parseIntValue("--regs", V, 0, Options.Regs))
        return false;
    } else if (Arg == "--tune") {
      Options.Tune = true;
    } else if (Arg == "--tune-threads") {
      const char *V = Next();
      if (!V ||
          !parseIntValue("--tune-threads", V, 0, Options.Tuning.Threads))
        return false;
    } else if (Arg == "--tune-topk") {
      const char *V = Next();
      int K = 0;
      if (!V || !parseIntValue("--tune-topk", V, 1, K))
        return false;
      Options.Tuning.TopK = static_cast<std::size_t>(K);
      Options.TopKSet = true;
    } else if (Arg == "--measure") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "simulated") == 0)
        Options.Tuning.Backend = MeasurementBackend::Simulated;
      else if (std::strcmp(V, "native") == 0)
        Options.Tuning.Backend = MeasurementBackend::Native;
      else {
        std::fprintf(stderr,
                     "an5dc: unknown measurement source '%s' (expected "
                     "'simulated' or 'native')\n",
                     V);
        return false;
      }
    } else if (Arg == "--measure-threads") {
      const char *V = Next();
      if (!V ||
          !parseIntValue("--measure-threads", V, 0, Options.MeasureThreads))
        return false;
    } else if (Arg == "--measure-repeats") {
      const char *V = Next();
      if (!V ||
          !parseIntValue("--measure-repeats", V, 1, Options.MeasureRepeats))
        return false;
    } else if (Arg == "--kernel-cache") {
      const char *V = Next();
      if (!V)
        return false;
      Options.NativeOpts.CacheDir = V;
    } else if (Arg == "--trace") {
      const char *V = Next();
      if (!V)
        return false;
      Options.TracePath = V;
    } else if (Arg == "--metrics") {
      const char *V = Next();
      if (!V)
        return false;
      Options.MetricsPath = V;
    } else if (Arg == "--obs-summary") {
      Options.ObsSummary = true;
    } else if (Arg == "--verify-native") {
      Options.VerifyNative = true;
    } else if (Arg == "--verify-schedule") {
      Options.VerifySchedule = true;
    } else if (Arg == "--lint") {
      Options.Lint = true;
      Options.NativeOpts.LintKernels = true;
    } else if (Arg == "--analyze") {
      const char *V = Next();
      if (!V)
        return false;
      Options.AnalyzePath = V;
    } else if (Arg == "--run-native") {
      Options.RunNative = true;
    } else if (Arg == "--print-stencil") {
      Options.PrintStencil = true;
    } else if (Arg == "--print-model") {
      Options.PrintModel = true;
    } else if (Arg == "--report") {
      Options.Report = true;
    } else if (Arg == "--simplify") {
      Options.Simplify = true;
    } else if (Arg == "--div-to-mul") {
      Options.DivToMul = true;
    } else if (Arg == "--verify") {
      Options.Verify = true;
    } else if (Arg == "--no-assoc-opt") {
      // Section 4.3.3: the associative-stencil optimization can be
      // disabled with a compile-time switch.
      Options.Codegen.EnableAssociativeOpt = false;
    } else if (Arg == "--no-dafree-opt") {
      Options.Codegen.EnableDiagonalAccessFreeOpt = false;
    } else if (Arg == "--vectorized-smem") {
      // Re-enable NVCC's vectorized shared-memory access (the paper
      // disables it by default to cut register pressure).
      Options.Codegen.DisableVectorizedSmemAccess = false;
    } else if (Arg == "--unroll-inner") {
      Options.Codegen.UnrollInnerLoop = true;
    } else if (Arg == "--emit-cuda") {
      const char *V = Next();
      if (!V)
        return false;
      Options.EmitCudaDir = V;
    } else if (Arg == "--emit-check") {
      const char *V = Next();
      if (!V)
        return false;
      Options.EmitCheckDir = V;
    } else if (Arg == "--emit-omp") {
      const char *V = Next();
      if (!V)
        return false;
      Options.EmitOmpDir = V;
    } else if (Arg == "--emit-loop-tiling") {
      const char *V = Next();
      if (!V)
        return false;
      Options.EmitLoopTilingDir = V;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "an5dc: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Options.InputPath = Arg;
    }
  }
  return true;
}

/// Verifies the blocked schedule against the reference on a small grid.
template <typename T>
bool verifyBlocked(const StencilProgram &Program, const BlockConfig &Config) {
  std::vector<long long> Extents =
      Program.numDims() == 1   ? std::vector<long long>{97}
      : Program.numDims() == 2 ? std::vector<long long>{41, 37}
                               : std::vector<long long>{15, 13, 12};
  long long Steps = 9;
  Grid<T> Ref0(Extents, Program.radius()), Ref1(Extents, Program.radius());
  fillGridDeterministic(Ref0, 77);
  copyGrid(Ref0, Ref1);
  Grid<T> Blk0 = Ref0, Blk1 = Ref0;
  referenceRun<T>(Program, {&Ref0, &Ref1}, Steps);
  blockedRun<T>(Program, Config, {&Blk0, &Blk1}, Steps);
  const Grid<T> &Want = Steps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = Steps % 2 == 0 ? Blk0 : Blk1;
  return Want.raw() == Got.raw();
}

/// Shrinks a tuned configuration to something the CPU emulator can verify
/// quickly while preserving the temporal degree when possible.
BlockConfig verificationConfig(const StencilProgram &Program,
                               const BlockConfig &Tuned) {
  BlockConfig Small = Tuned;
  int Rad = Program.radius();
  while (Small.BT > 1 && 2 * Small.BT * Rad + 8 > 40)
    --Small.BT; // keep blocks emulator-sized
  for (int &B : Small.BS)
    B = 2 * Small.BT * Rad + 8;
  Small.HS = 10;
  return Small;
}

/// Verifies the compiled native kernel against the reference bit for bit.
/// Unlike --verify this runs the *actual* configuration — the native
/// kernel handles production-sized blocks without shrinking.
template <typename T>
bool verifyNativeKernel(const StencilProgram &Program,
                        const BlockConfig &Config,
                        const NativeRuntimeOptions &NativeOpts) {
  NativeExecutor Executor(Program, Config, NativeOpts);
  if (!Executor.ok()) {
    std::fprintf(stderr, "an5dc: %s\n", Executor.error().c_str());
    return false;
  }
  std::vector<long long> Extents =
      Program.numDims() == 1   ? std::vector<long long>{193}
      : Program.numDims() == 2 ? std::vector<long long>{97, 89}
                               : std::vector<long long>{33, 29, 27};
  long long Steps = 9;
  Grid<T> Ref0(Extents, Program.radius()), Ref1(Extents, Program.radius());
  fillGridDeterministic(Ref0, 77);
  copyGrid(Ref0, Ref1);
  Grid<T> Nat0 = Ref0, Nat1 = Ref0;
  referenceRun<T>(Program, {&Ref0, &Ref1}, Steps);
  Executor.run<T>({&Nat0, &Nat1}, Steps);
  const Grid<T> &Want = Steps % 2 == 0 ? Ref0 : Ref1;
  const Grid<T> &Got = Steps % 2 == 0 ? Nat0 : Nat1;
  return Want.raw() == Got.raw();
}

/// Compiles (or fetches), loads and times the native kernel on the
/// CPU-sized measurement problem; prints throughput and cache behavior.
/// \p Repeats > 1 keeps the fastest run (--measure-repeats).
template <typename T>
bool runNativeTimed(const StencilProgram &Program, const BlockConfig &Config,
                    const NativeRuntimeOptions &NativeOpts, int Repeats) {
  NativeExecutor Executor(Program, Config, NativeOpts);
  if (!Executor.ok()) {
    std::fprintf(stderr, "an5dc: %s\n", Executor.error().c_str());
    return false;
  }
  if (Executor.cacheHit())
    std::printf("kernel cache: hit (%s)\n", Executor.libraryPath().c_str());
  else
    std::printf("kernel cache: miss, compiled in %.2f s (%s)\n",
                Executor.compileSeconds(), Executor.libraryPath().c_str());

  ProblemSize Problem = nativeMeasurementProblem(Program.numDims());
  Repeats = std::max(1, Repeats);
  // The same warmup/pin/best-of/clamp protocol the tune sweep uses, so
  // --run-native numbers are directly comparable to --measure native.
  KernelTiming Timing = timeNativeKernel<T>(
      Executor, Problem, Program.radius(), Repeats, NativeOpts.Threads);
  if (Timing.Rc != 0) {
    std::fprintf(stderr, "an5dc: native kernel rejected the run (code %d)\n",
                 Timing.Rc);
    return false;
  }
  double CellUpdates = static_cast<double>(Problem.cellCount()) *
                       static_cast<double>(Problem.TimeSteps);
  double Gflops = static_cast<double>(Program.flopsPerCell().total()) *
                  CellUpdates / Timing.Seconds / 1e9;
  std::printf("native run (%s, %s): %.3f s (best of %d), %.2f GFLOP/s on "
              "%d thread(s)\n",
              Config.toString().c_str(), Problem.toString().c_str(),
              Timing.Seconds, Repeats, Gflops, Timing.ThreadsUsed);
  return true;
}

/// Flushes the observability outputs on every exit path: installed right
/// after argument parsing, so a tune that fails halfway still leaves its
/// partial trace and metrics behind for diagnosis.
struct ObsFlushGuard {
  const CliOptions &Options;

  explicit ObsFlushGuard(const CliOptions &Options) : Options(Options) {
    if (!Options.TracePath.empty() || Options.ObsSummary)
      obs::TraceRecorder::global().enable();
  }

  ~ObsFlushGuard() {
    obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
    obs::MetricsRegistry &Registry = obs::MetricsRegistry::global();

    if (!Options.TracePath.empty()) {
      std::ofstream Out(Options.TracePath);
      Out << Recorder.toChromeTraceJson();
      if (Out)
        std::printf("wrote trace %s (load it in Perfetto or "
                    "chrome://tracing)\n",
                    Options.TracePath.c_str());
      else
        std::fprintf(stderr, "an5dc: cannot write trace file %s\n",
                     Options.TracePath.c_str());
    }

    if (!Options.MetricsPath.empty()) {
      std::ofstream Out(Options.MetricsPath);
      Out << Registry.toJson(&Recorder);
      if (Out)
        std::printf("wrote metrics %s\n", Options.MetricsPath.c_str());
      else
        std::fprintf(stderr, "an5dc: cannot write metrics file %s\n",
                     Options.MetricsPath.c_str());
    }

    if (Options.ObsSummary) {
      std::string Spans = Recorder.summaryTable();
      if (!Spans.empty())
        std::printf("--- span summary ---\n%s", Spans.c_str());
      std::string Metrics = Registry.summaryTable();
      if (!Metrics.empty())
        std::printf("--- metrics ---\n%s", Metrics.c_str());
    }

    // The kernel-cache scoreboard prints whenever this run touched the
    // cache at all — cheap visibility into whether a tune re-used or
    // re-built its kernels, no flag needed.
    long long Hits = Registry.counterValue("kernel_cache.hits");
    long long Misses = Registry.counterValue("kernel_cache.misses");
    long long Failures = Registry.counterValue("kernel_cache.failures");
    long long Evictions = Registry.counterValue("kernel_cache.evictions");
    if (Hits + Misses + Failures > 0)
      std::printf("kernel cache: %lld hit(s), %lld miss(es), %lld "
                  "failure(s), %lld eviction(s), %.0f%% hit rate\n",
                  Hits, Misses, Failures, Evictions,
                  Hits + Misses > 0
                      ? 100.0 * static_cast<double>(Hits) /
                            static_cast<double>(Hits + Misses)
                      : 0.0);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }

  // Flagless observability for wrapped invocations (CI, bench scripts):
  // the environment supplies the paths the flags would.
  if (Options.TracePath.empty())
    if (const char *Env = std::getenv("AN5D_TRACE"); Env && *Env)
      Options.TracePath = Env;
  if (Options.MetricsPath.empty())
    if (const char *Env = std::getenv("AN5D_METRICS"); Env && *Env)
      Options.MetricsPath = Env;
  // Every return below flows through the guard's flush.
  ObsFlushGuard ObsFlush(Options);

  if (Options.ListBenchmarks) {
    for (const std::string &Name : benchmarkStencilNames())
      std::printf("%s\n", Name.c_str());
    for (const std::string &Name : extraStencilNames())
      std::printf("%s\n", Name.c_str());
    return 0;
  }

  // Obtain the stencil: built-in benchmark or parsed C input.
  std::unique_ptr<StencilProgram> Program;
  if (!Options.Benchmark.empty()) {
    Program = makeBenchmarkStencil(
        Options.Benchmark, Options.Type.value_or(ScalarType::Float));
    if (!Program) {
      std::fprintf(stderr, "an5dc: unknown benchmark '%s'\n",
                   Options.Benchmark.c_str());
      return 2;
    }
  } else {
    if (Options.InputPath.empty()) {
      std::fprintf(stderr, "an5dc: no input file\n");
      printUsage();
      return 2;
    }
    std::ifstream In(Options.InputPath);
    if (!In) {
      std::fprintf(stderr, "an5dc: cannot open '%s'\n",
                   Options.InputPath.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    std::string Name = Options.Name.empty()
                           ? std::filesystem::path(Options.InputPath)
                                 .stem()
                                 .string()
                           : Options.Name;
    DiagnosticEngine Diags;
    StencilExtractor Extractor(Diags);
    auto Result =
        Extractor.extractFromSource(Buffer.str(), Name, Options.Type);
    if (!Result) {
      std::fprintf(stderr, "%s", Diags.toString().c_str());
      return 1;
    }
    Program = std::move(Result->Program);
  }

  // Opt-in normalization passes (these change floating-point rounding;
  // the default pipeline stays bit-exact with the input program).
  if (Options.Simplify || Options.DivToMul) {
    ExprPtr Update = Program->update().clone();
    if (Options.Simplify) {
      SimplifyStats Stats;
      Update = simplifyExpr(std::move(Update), Program.get(), &Stats);
      std::printf("simplify: folded %d constants, removed %d identities\n",
                  Stats.ConstantsFolded, Stats.IdentitiesRemoved);
    }
    if (Options.DivToMul) {
      int Rewritten = 0;
      Update = rewriteDivisionByConstant(std::move(Update), Program.get(),
                                         &Rewritten);
      std::printf("div-to-mul: rewrote %d division(s) by a constant "
                  "(Section 7.1 work-around)\n",
                  Rewritten);
    }
    Program = std::make_unique<StencilProgram>(
        Program->name(), Program->numDims(), Program->elemType(),
        Program->arrayName(), std::move(Update), Program->coefficients());
  }

  if (Options.PrintStencil)
    std::printf("%s\n  class: %s, FLOP/cell: %lld, effALU: %.3f\n",
                Program->toString().c_str(),
                optimizationClassName(Program->optimizationClass()),
                Program->flopsPerCell().total(),
                Program->instructionMix().aluEfficiency());

  GpuSpec Spec =
      Options.UseP100 ? GpuSpec::teslaP100() : GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(Program->numDims());

  // A thread request applies to every native-kernel run this invocation
  // makes (--run-native, --verify-native, and — via the Runtime copy
  // below — the measured tune sweep).
  if (Options.MeasureThreads > 0)
    Options.NativeOpts.Threads = Options.MeasureThreads;

  bool NativeMeasure =
      Options.Tuning.Backend == MeasurementBackend::Native;

  // Configuration: manual, tuned, or a sensible default.
  BlockConfig Config;
  if (Options.Tune) {
    // The native backend times real kernels on this CPU, so it tunes over
    // the CPU-sized measurement problem (the paper-default extents are
    // sized for a V100) and narrows the default top-K — each candidate
    // costs a compile. `Problem` itself stays on the paper default so
    // --print-model / --report keep their usual meaning.
    ProblemSize TuneProblem = Problem;
    if (NativeMeasure) {
      TuneProblem = nativeMeasurementProblem(Program->numDims());
      if (!Options.TopKSet)
        Options.Tuning.TopK = 8;
      Options.Tuning.Native.Runtime = Options.NativeOpts;
      if (Options.MeasureRepeats > 0)
        Options.Tuning.Native.Repeats = Options.MeasureRepeats;
    }
    Tuner T(Spec);
    TuneOutcome Outcome = T.tune(*Program, TuneProblem, Options.Tuning);
    if (Outcome.MeasurementFailures > 0) {
      // Distinct from "infeasible": these candidates never produced a
      // measurement (usually a broken host compiler, not a bad config).
      // Flatten the reason — compile failures span several lines and the
      // first one alone is a contentless "kernel build failed:" header.
      std::string Reason = Outcome.FirstFailureReason.substr(0, 300);
      for (char &C : Reason)
        if (C == '\n')
          C = ' ';
      if (Outcome.FirstFailureReason.size() > 300)
        Reason += "...";
      // The kind label is the same vocabulary the metrics counters use
      // (measure.failures.<label>), so the warning, the metrics export
      // and TuneOutcome all classify a failure identically.
      std::fprintf(stderr,
                   "an5dc: warning: %zu candidate kernel(s) failed to "
                   "compile or run (first [%s]: %s)\n",
                   Outcome.MeasurementFailures,
                   measureFailureKindLabel(Outcome.FirstFailureKind),
                   Reason.c_str());
    }
    if (!Outcome.Feasible) {
      std::fprintf(stderr, "an5dc: tuning found no feasible config\n");
      return 1;
    }
    Config = Outcome.Best;
    if (NativeMeasure)
      std::printf("tuned: %s  (native %.2f GFLOP/s measured on host CPU, "
                  "%.3f s)\n",
                  Config.toString().c_str(),
                  Outcome.BestMeasured.MeasuredGflops,
                  Outcome.BestMeasured.MeasuredTimeSeconds);
    else
      std::printf("tuned: %s  (simulated %.0f GFLOP/s on %s)\n",
                  Config.toString().c_str(),
                  Outcome.BestMeasured.MeasuredGflops, Spec.Name.c_str());
  } else {
    Config.BT = Options.BT > 0 ? Options.BT : 4;
    if (!Options.BS.empty())
      Config.BS = Options.BS;
    else if (Program->numDims() == 2)
      Config.BS = {256};
    else if (Program->numDims() == 3)
      Config.BS = {32, 32};
    // 1D: BS stays empty (pure streaming; see model/BlockConfig.h).
    Config.HS = Options.HS >= 0 ? Options.HS
                                : (Program->numDims() == 3 ? 128 : 256);
    Config.RegisterCap = Options.Regs;
    if (static_cast<int>(Config.BS.size()) != Program->numDims() - 1) {
      std::fprintf(stderr,
                   "an5dc: --bs needs %d value(s) for a %dD stencil\n",
                   Program->numDims() - 1, Program->numDims());
      return 1;
    }
    if (!Config.isFeasible(Program->radius(), Spec.MaxThreadsPerBlock)) {
      std::fprintf(stderr,
                   "an5dc: configuration %s is infeasible for radius %d\n",
                   Config.toString().c_str(), Program->radius());
      return 1;
    }
  }

  if (Options.VerifySchedule) {
    // Static proof over every temporal degree the host schedule can
    // issue, plus the Section 4.3.1 host-schedule postconditions for the
    // problem's step count. Nothing is compiled or executed.
    ScheduleVerifyResult Verdict = verifySchedule(*Program, Config,
                                                  &Problem);
    if (Verdict.proven()) {
      std::printf("verify-schedule (%s): proven safe (%d degree(s): halo "
                  "coverage, ring depth, wave order, write-set "
                  "disjointness)\n",
                  Config.toString().c_str(), Verdict.DegreesChecked);
    } else {
      std::fprintf(stderr, "an5dc: schedule verification failed for %s:\n%s",
                   Config.toString().c_str(), Verdict.toString().c_str());
      return 1;
    }
  }

  if (!Options.AnalyzePath.empty()) {
    // The dataflow pass pipeline over the lowered schedule, plus the
    // per-candidate resource estimate, as one machine-readable report.
    // Error-severity findings fail the invocation after the report is
    // written — the artifact is the point, reviewers read it either way.
    ScheduleIR Lowered = lowerSchedule(*Program, Config);
    AnalysisInput PassInput;
    PassInput.Program = Program.get();
    PassInput.Schedule = &Lowered;
    AnalysisReport Analysis =
        AnalysisPassManager::standardPipeline().run(PassInput);
    ResourceEstimate Resources = estimateResources(*Program, Lowered);

    std::string Json = "{\"schema\":\"an5d-analysis-v1\",\"stencil\":";
    obs::appendJsonString(Json, Program->name());
    Json += ",\"config\":";
    obs::appendJsonString(Json, Config.toString());
    Json += ",\"errors\":" + std::to_string(Analysis.errorCount());
    Json += ",\"warnings\":" + std::to_string(Analysis.countBySeverity(
                                   FindingSeverity::Warn));
    Json += ",\"infos\":" + std::to_string(Analysis.countBySeverity(
                                FindingSeverity::Info));
    Json += ",\"findings\":" + Analysis.toJson();
    Json += ",\"resources\":";
    appendResourceJson(Json, Resources);
    Json += "}\n";

    if (Options.AnalyzePath == "-") {
      std::fwrite(Json.data(), 1, Json.size(), stdout);
    } else {
      std::ofstream Out(Options.AnalyzePath);
      if (!Out) {
        std::fprintf(stderr, "an5dc: cannot write '%s'\n",
                     Options.AnalyzePath.c_str());
        return 1;
      }
      Out << Json;
      std::printf("analyze (%s): %zu finding(s), %zu error(s); report "
                  "written to %s\n",
                  Config.toString().c_str(), Analysis.Findings.size(),
                  Analysis.errorCount(), Options.AnalyzePath.c_str());
    }
    if (!Analysis.proven()) {
      std::fprintf(stderr, "an5dc: static analysis found %zu error(s):\n%s",
                   Analysis.errorCount(), Analysis.toString().c_str());
      return 1;
    }
  }

  if (Options.Lint) {
    // Lint the sources --emit-omp and --emit-check would write for this
    // configuration (JIT candidates are additionally linted through
    // NativeRuntimeOptions::LintKernels, set alongside this flag).
    bool Clean = true;
    auto LintOne = [&](const std::string &Source, LintTarget Target,
                       const char *Tag) {
      LintReport Report = lintTranslationUnit(Source, Target,
                                              Program->elemType());
      if (Report.clean()) {
        std::printf("lint (%s, %s): clean\n", Tag,
                    Config.toString().c_str());
      } else {
        std::fprintf(stderr, "an5dc: lint failed for the %s:\n%s", Tag,
                     Report.toString().c_str());
        Clean = false;
      }
    };
    LintOne(generateCppKernelLibrary(*Program, Config),
            LintTarget::KernelLibrary, "kernel library");
    ProblemSize CheckSize;
    CheckSize.Extents = Program->numDims() == 1
                            ? std::vector<long long>{95}
                        : Program->numDims() == 2
                            ? std::vector<long long>{40, 37}
                            : std::vector<long long>{14, 12, 11};
    CheckSize.TimeSteps = 11;
    LintOne(generateCppCheckProgram(
                *Program, verificationConfig(*Program, Config), CheckSize),
            LintTarget::CheckProgram, "check program");
    if (!Clean)
      return 1;
  }

  if (Options.Report)
    std::printf("%s", renderScheduleReport(*Program, Spec, Config, Problem)
                          .c_str());

  if (Options.PrintModel) {
    ModelBreakdown Model = evaluateModel(*Program, Spec, Config, Problem);
    std::printf("model (%s, %s): %s\n", Spec.Name.c_str(),
                Problem.toString().c_str(), Model.toString().c_str());
    MeasuredResult Measured =
        simulateMeasured(*Program, Spec, Config, Problem);
    if (Measured.Feasible)
      std::printf("simulated measurement: %.0f GFLOP/s (accuracy %.0f%%)\n",
                  Measured.MeasuredGflops,
                  100 * Measured.modelAccuracy());
  }

  if (Program->numDims() == 1 && !Options.EmitLoopTilingDir.empty()) {
    // generateCuda renders the 1D pure-streaming schedule, but the
    // loop-tiling baseline generator only knows 2D/3D kernel shapes.
    std::fprintf(stderr,
                 "an5dc: the loop-tiling CUDA baseline does not support 1D "
                 "stencils (use --emit-cuda for the blocked kernel)\n");
    return 1;
  }

  if (!Options.EmitCudaDir.empty()) {
    std::filesystem::create_directories(Options.EmitCudaDir);
    GeneratedCuda Cuda = generateCuda(*Program, Config, Options.Codegen);
    std::string Base = Options.EmitCudaDir + "/" + Cuda.KernelName;
    std::ofstream(Base + ".cu") << Cuda.KernelSource;
    std::ofstream(Base + "_host.cpp") << Cuda.HostSource;
    std::printf("wrote %s.cu and %s_host.cpp\n", Base.c_str(), Base.c_str());
  }

  if (!Options.EmitLoopTilingDir.empty()) {
    std::filesystem::create_directories(Options.EmitLoopTilingDir);
    GeneratedLoopTiling Baseline = generateLoopTilingCuda(*Program);
    std::string Path = Options.EmitLoopTilingDir + "/" +
                       Baseline.KernelName + ".cu";
    std::ofstream(Path) << Baseline.Source;
    std::printf("wrote %s (baseline, no temporal blocking)\n",
                Path.c_str());
  }

  if (!Options.EmitCheckDir.empty()) {
    std::filesystem::create_directories(Options.EmitCheckDir);
    BlockConfig Small = verificationConfig(*Program, Config);
    ProblemSize CheckSize;
    CheckSize.Extents = Program->numDims() == 1
                            ? std::vector<long long>{95}
                        : Program->numDims() == 2
                            ? std::vector<long long>{40, 37}
                            : std::vector<long long>{14, 12, 11};
    CheckSize.TimeSteps = 11;
    std::string Path = Options.EmitCheckDir + "/" +
                       Program->name() + "_check.cpp";
    std::ofstream(Path) << generateCppCheckProgram(*Program, Small,
                                                   CheckSize);
    std::printf("wrote %s\n", Path.c_str());
  }

  if (!Options.EmitOmpDir.empty()) {
    std::filesystem::create_directories(Options.EmitOmpDir);
    std::string Path =
        Options.EmitOmpDir + "/" + Program->name() + "_omp.cpp";
    std::ofstream(Path) << generateCppKernelLibrary(*Program, Config);
    std::printf("wrote %s (callable kernel library, an5d_run ABI)\n",
                Path.c_str());
  }

  if (Options.RunNative) {
    bool Ok = Program->elemType() == ScalarType::Float
                  ? runNativeTimed<float>(*Program, Config,
                                          Options.NativeOpts,
                                          Options.MeasureRepeats)
                  : runNativeTimed<double>(*Program, Config,
                                           Options.NativeOpts,
                                           Options.MeasureRepeats);
    if (!Ok)
      return 1;
  }

  if (Options.VerifyNative) {
    bool Ok = Program->elemType() == ScalarType::Float
                  ? verifyNativeKernel<float>(*Program, Config,
                                              Options.NativeOpts)
                  : verifyNativeKernel<double>(*Program, Config,
                                               Options.NativeOpts);
    std::printf("verify-native (%s): %s\n", Config.toString().c_str(),
                Ok ? "native == reference (bitwise)" : "MISMATCH");
    if (!Ok)
      return 1;
  }

  if (Options.Verify) {
    BlockConfig Small = verificationConfig(*Program, Config);
    bool Ok = Program->elemType() == ScalarType::Float
                  ? verifyBlocked<float>(*Program, Small)
                  : verifyBlocked<double>(*Program, Small);
    std::printf("verify (%s): %s\n", Small.toString().c_str(),
                Ok ? "blocked == reference (bitwise)" : "MISMATCH");
    if (!Ok)
      return 1;
  }
  return 0;
}
