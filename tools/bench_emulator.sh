#!/usr/bin/env bash
#===- tools/bench_emulator.sh - Dump emulator + tuner benches to JSON ------===#
#
# Part of the AN5D reproduction project, under the MIT license.
#
# Runs bench_emulator_throughput and bench_tuner_throughput (both Google
# Benchmark) and dumps the results to BENCH_emulator.json and
# BENCH_tuner.json so the emulator's and the measured sweep's performance
# trajectories can be tracked PR over PR. Build the benches first:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#
# Usage:
#   tools/bench_emulator.sh [build-dir] [output.json] [extra benchmark args]
#
# The tuner results land next to [output.json] as BENCH_tuner.json; the
# extra benchmark args apply to both binaries.
#
# Examples:
#   tools/bench_emulator.sh
#   tools/bench_emulator.sh build BENCH_emulator.json --benchmark_filter=Blocked
#
#===------------------------------------------------------------------------===#

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_emulator.json}"
shift $(( $# > 2 ? 2 : $# ))

TUNER_OUT="$(dirname "$OUT")/BENCH_tuner.json"

BIN="$BUILD_DIR/bench/bench_emulator_throughput"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable." >&2
  echo "Build it with: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  echo "(Google Benchmark development headers are required at configure time.)" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json "$@"
echo "wrote $OUT"

TUNER_BIN="$BUILD_DIR/bench/bench_tuner_throughput"
if [ -x "$TUNER_BIN" ]; then
  "$TUNER_BIN" --benchmark_out="$TUNER_OUT" --benchmark_out_format=json "$@"
  echo "wrote $TUNER_OUT"
else
  echo "warning: $TUNER_BIN not found; skipping BENCH_tuner.json" >&2
fi
