#!/usr/bin/env bash
#===- tools/bench_emulator.sh - Dump emulator throughput to JSON ----------===#
#
# Part of the AN5D reproduction project, under the MIT license.
#
# Runs bench_emulator_throughput (Google Benchmark) and dumps the results
# to BENCH_emulator.json so the emulator's performance trajectory can be
# tracked PR over PR. Build the benches first:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#
# Usage:
#   tools/bench_emulator.sh [build-dir] [output.json] [extra benchmark args]
#
# Examples:
#   tools/bench_emulator.sh
#   tools/bench_emulator.sh build BENCH_emulator.json --benchmark_filter=Blocked
#
#===------------------------------------------------------------------------===#

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_emulator.json}"
shift $(( $# > 2 ? 2 : $# ))

BIN="$BUILD_DIR/bench/bench_emulator_throughput"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable." >&2
  echo "Build it with: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  echo "(Google Benchmark development headers are required at configure time.)" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json "$@"
echo "wrote $OUT"
