#!/usr/bin/env bash
#===- tools/bench_emulator.sh - Dump emulator/tuner/native benches to JSON -===#
#
# Part of the AN5D reproduction project, under the MIT license.
#
# Runs the Google-Benchmark binaries — bench_emulator_throughput,
# bench_tuner_throughput, bench_native_runtime and bench_analysis_passes
# — and dumps the results to BENCH_emulator.json, BENCH_tuner.json,
# BENCH_native.json and BENCH_analysis.json so the emulator's, the
# measured sweep's, the native kernel's and the static-analysis
# pipeline's performance trajectories can be tracked PR over PR. Another
# artifact,
# BENCH_obs.json, is the metrics+spans export of one traced native tune
# (an5dc --tune --measure native --metrics): the tuner phase-time
# breakdown (tune/tune.sweep/cache.compile/measure.repeat span
# aggregates) and the kernel-cache hit/miss counters, so compile-time
# regressions show up even when kernel throughput does not move. Every
# BENCH_*.json is checked non-empty before the script succeeds — an
# empty record must fail loudly, not get committed. Build first:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#
# Usage:
#   tools/bench_emulator.sh [build-dir] [output] [extra benchmark args]
#
# [output] may be a directory (all three JSON files land inside) or a
# .json file path for the emulator results (the tuner and native results
# land next to it). Extra benchmark args apply to every binary. A missing
# bench binary is an error — benches must not silently drop out of the
# record.
#
# Examples:
#   tools/bench_emulator.sh
#   tools/bench_emulator.sh build results/
#   tools/bench_emulator.sh build BENCH_emulator.json --benchmark_filter=Blocked
#
#===------------------------------------------------------------------------===#

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_emulator.json}"
shift $(( $# > 2 ? 2 : $# ))

# Directory output: keep the canonical file names inside it.
if [ -d "$OUT" ] || [[ "$OUT" == */ ]]; then
  OUT_DIR="${OUT%/}"
  mkdir -p "$OUT_DIR"
  OUT="$OUT_DIR/BENCH_emulator.json"
else
  OUT_DIR="$(dirname "$OUT")"
  mkdir -p "$OUT_DIR"
fi
TUNER_OUT="$OUT_DIR/BENCH_tuner.json"
NATIVE_OUT="$OUT_DIR/BENCH_native.json"
ANALYSIS_OUT="$OUT_DIR/BENCH_analysis.json"
OBS_OUT="$OUT_DIR/BENCH_obs.json"
OBS_TRACE_OUT="$OUT_DIR/BENCH_obs_trace.json"

fail_missing() {
  echo "error: $1 not found or not executable." >&2
  echo "Build it with: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  echo "(Google Benchmark development headers are required at configure time.)" >&2
  exit 1
}

EMULATOR_BIN="$BUILD_DIR/bench/bench_emulator_throughput"
TUNER_BIN="$BUILD_DIR/bench/bench_tuner_throughput"
NATIVE_BIN="$BUILD_DIR/bench/bench_native_runtime"
ANALYSIS_BIN="$BUILD_DIR/bench/bench_analysis_passes"
AN5DC_BIN="$BUILD_DIR/tools/an5dc"

[ -x "$EMULATOR_BIN" ] || fail_missing "$EMULATOR_BIN"
[ -x "$TUNER_BIN" ] || fail_missing "$TUNER_BIN"
[ -x "$NATIVE_BIN" ] || fail_missing "$NATIVE_BIN"
[ -x "$ANALYSIS_BIN" ] || fail_missing "$ANALYSIS_BIN"
[ -x "$AN5DC_BIN" ] || fail_missing "$AN5DC_BIN"

# An empty or truncated record must fail the run: grep for the key every
# well-formed file of that kind carries.
check_artifact() {
  local file="$1" key="$2"
  if [ ! -s "$file" ] || ! grep -q "$key" "$file"; then
    echo "error: $file is empty or lacks $key — refusing to record it." >&2
    exit 1
  fi
}

"$EMULATOR_BIN" --benchmark_out="$OUT" --benchmark_out_format=json "$@"
echo "wrote $OUT"

"$TUNER_BIN" --benchmark_out="$TUNER_OUT" --benchmark_out_format=json "$@"
echo "wrote $TUNER_OUT"

"$NATIVE_BIN" --benchmark_out="$NATIVE_OUT" --benchmark_out_format=json "$@"
echo "wrote $NATIVE_OUT"

"$ANALYSIS_BIN" --benchmark_out="$ANALYSIS_OUT" --benchmark_out_format=json "$@"
echo "wrote $ANALYSIS_OUT"

# One traced native tune: the metrics export (counters + histograms +
# span aggregates) is the observability record; the trace file rides
# along for Perfetto.
"$AN5DC_BIN" --benchmark j2d5pt --tune --measure native \
  --tune-topk 2 --measure-repeats 2 \
  --trace "$OBS_TRACE_OUT" --metrics "$OBS_OUT" >/dev/null
echo "wrote $OBS_OUT"

check_artifact "$OUT" '"benchmarks"'
check_artifact "$TUNER_OUT" '"benchmarks"'
check_artifact "$NATIVE_OUT" '"benchmarks"'
check_artifact "$ANALYSIS_OUT" '"benchmarks"'
check_artifact "$OBS_OUT" '"counters"'
check_artifact "$OBS_TRACE_OUT" '"traceEvents"'
