//===- golden_guard.cpp - Golden-file drift guard ----------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-emits every checked-in golden translation unit (tests/golden/) from
/// the current ScheduleIR lowering + codegen path and compares byte for
/// byte. Run as a ctest (`golden_drift_guard`) so a schedule or codegen
/// edit can never silently desync the goldens from what the compiler
/// actually emits — the gtest golden suites pin a *subset* per backend;
/// this tool walks the complete table.
///
///   golden_guard <golden-dir>          check (exit 1 on drift)
///   golden_guard <golden-dir> --write  regenerate in place
///
/// --write is the deliberate regeneration step tests/golden/README.md
/// describes: run it after an intentional codegen change, then review the
/// diff like any compiler change.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "schedule/ScheduleIR.h"
#include "stencils/Benchmarks.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace an5d;

namespace {

/// Which generator an artifact comes out of.
enum class ArtifactKind {
  CudaKernel, ///< generateCuda(...).KernelSource
  CudaHost,   ///< generateCuda(...).HostSource
  CppCheck,   ///< generateCppCheckProgram (needs a problem size)
  CppKernel,  ///< generateCppKernelLibrary
};

/// One golden file: the (stencil, type, config[, problem]) point that
/// produced it. This table is the single complete list of goldens; the
/// gtest suites (GoldenCudaTest/GoldenCppTest) pin representative entries
/// with first-diff context, the AnalysisTest lint pass reads the same
/// files, and this guard re-emits all of them.
struct GoldenSpec {
  const char *File;
  ArtifactKind Kind;
  const char *Stencil;
  ScalarType Type;
  int BT;
  std::vector<int> BS;
  int HS;
  std::vector<long long> Extents; ///< CppCheck only.
  long long TimeSteps = 0;        ///< CppCheck only.
};

std::vector<GoldenSpec> goldenTable() {
  std::vector<GoldenSpec> Table = {
      // CUDA backend (GoldenCudaTest configs).
      {"an5d_j2d5pt_bt2.cu.golden", ArtifactKind::CudaKernel, "j2d5pt",
       ScalarType::Float, 2, {128}, 128},
      {"an5d_j2d5pt_bt2_host.cpp.golden", ArtifactKind::CudaHost, "j2d5pt",
       ScalarType::Float, 2, {128}, 128},
      {"an5d_star3d1r_bt3.cu.golden", ArtifactKind::CudaKernel, "star3d1r",
       ScalarType::Double, 3, {32, 16}, 128},
      // 1D pure-streaming CUDA kernels: every 1D builtin emits through the
      // same schedule IR the native runtime executes (star1d2r doubles as
      // the double-precision coverage point).
      {"an5d_star1d1r_bt2_host.cpp.golden", ArtifactKind::CudaHost,
       "star1d1r", ScalarType::Float, 2, {}, 32},
      // C++ backend (GoldenCppTest configs).
      {"an5d_j2d5pt_check.cpp.golden", ArtifactKind::CppCheck, "j2d5pt",
       ScalarType::Float, 2, {32}, 8, {40, 37}, 11},
      {"an5d_star3d1r_check.cpp.golden", ArtifactKind::CppCheck, "star3d1r",
       ScalarType::Double, 2, {12, 10}, 6, {14, 12, 11}, 11},
      {"an5d_star1d1r_check.cpp.golden", ArtifactKind::CppCheck, "star1d1r",
       ScalarType::Float, 2, {}, 8, {95}, 11},
      {"an5d_j2d5pt_omp.cpp.golden", ArtifactKind::CppKernel, "j2d5pt",
       ScalarType::Float, 2, {128}, 128},
      {"an5d_star1d1r_omp.cpp.golden", ArtifactKind::CppKernel, "star1d1r",
       ScalarType::Float, 2, {}, 128},
  };
  for (const char *Name : {"star1d1r", "star1d2r", "star1d3r", "star1d4r",
                           "box1d1r", "box1d2r", "box1d3r", "box1d4r",
                           "j1d3pt"}) {
    ScalarType Type = std::string(Name) == "star1d2r" ? ScalarType::Double
                                                      : ScalarType::Float;
    Table.push_back({nullptr, ArtifactKind::CudaKernel, Name, Type, 2, {},
                     32});
  }
  return Table;
}

std::string fileNameFor(const GoldenSpec &Spec) {
  if (Spec.File)
    return Spec.File;
  return std::string("an5d_") + Spec.Stencil + "_bt" +
         std::to_string(Spec.BT) + ".cu.golden";
}

std::string emit(const GoldenSpec &Spec) {
  auto Program = makeBenchmarkStencil(Spec.Stencil, Spec.Type);
  if (!Program)
    return {};
  BlockConfig Config;
  Config.BT = Spec.BT;
  Config.BS = Spec.BS;
  Config.HS = Spec.HS;
  // Lower explicitly: the guard exercises the same one-IR path every
  // backend renders.
  ScheduleIR Schedule = lowerSchedule(*Program, Config);
  switch (Spec.Kind) {
  case ArtifactKind::CudaKernel:
    return generateCuda(*Program, Schedule).KernelSource;
  case ArtifactKind::CudaHost:
    return generateCuda(*Program, Schedule).HostSource;
  case ArtifactKind::CppCheck: {
    ProblemSize Problem;
    Problem.Extents = Spec.Extents;
    Problem.TimeSteps = Spec.TimeSteps;
    return generateCppCheckProgram(*Program, Schedule, Problem);
  }
  case ArtifactKind::CppKernel:
    return generateCppKernelLibrary(*Program, Schedule);
  }
  return {};
}

std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = In.good();
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// The first line where \p A and \p B part ways (1-based; 0 if equal).
int firstDifferingLine(const std::string &A, const std::string &B) {
  std::stringstream SA(A), SB(B);
  std::string LA, LB;
  int Line = 0;
  while (true) {
    ++Line;
    bool OkA = static_cast<bool>(std::getline(SA, LA));
    bool OkB = static_cast<bool>(std::getline(SB, LB));
    if (!OkA && !OkB)
      return 0;
    if (OkA != OkB || LA != LB)
      return Line;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: golden_guard <golden-dir> [--write]\n");
    return 2;
  }
  std::string Dir = Argv[1];
  bool Write = Argc > 2 && std::string(Argv[2]) == "--write";

  int Drifted = 0;
  for (const GoldenSpec &Spec : goldenTable()) {
    std::string File = fileNameFor(Spec);
    std::string Path = Dir + "/" + File;
    std::string Generated = emit(Spec);
    if (Generated.empty()) {
      std::fprintf(stderr, "golden_guard: cannot emit %s (unknown stencil "
                           "%s?)\n",
                   File.c_str(), Spec.Stencil);
      ++Drifted;
      continue;
    }
    if (Write) {
      std::ofstream Out(Path, std::ios::trunc);
      Out << Generated;
      std::printf("wrote %s (%zu bytes)\n", Path.c_str(), Generated.size());
      continue;
    }
    bool Ok = false;
    std::string Checked = readFile(Path, Ok);
    if (!Ok) {
      std::fprintf(stderr, "golden_guard: missing golden %s\n",
                   Path.c_str());
      ++Drifted;
      continue;
    }
    if (Checked != Generated) {
      std::fprintf(stderr,
                   "golden_guard: %s drifted (first difference at line %d; "
                   "regenerate with --write and review the diff)\n",
                   File.c_str(), firstDifferingLine(Generated, Checked));
      ++Drifted;
    }
  }
  if (!Write) {
    if (Drifted) {
      std::fprintf(stderr, "golden_guard: %d golden file(s) out of sync\n",
                   Drifted);
      return 1;
    }
    std::printf("golden_guard: all goldens match the current emitters\n");
  }
  return 0;
}
