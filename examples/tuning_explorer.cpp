//===- tuning_explorer.cpp - Explore the Section 6.3 search space ------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive-style explorer: pick a benchmark (argv[1], default
/// star2d1r; Table 3 names plus the 1D extras), a device (argv[2]:
/// v100|p100), a precision (argv[3]: float|double) and a measured-sweep
/// thread count (argv[4], default 0 = auto); the tool prints the
/// model-ranked top five configurations with full roofline breakdowns and
/// the simulated "Tuned" measurement — the per-stencil slice of Table 5.
/// The sweep result is bit-identical for every thread count.
///
//===----------------------------------------------------------------------===//

#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"
#include "support/StringUtils.h"
#include "tuning/ParallelSweep.h"
#include "tuning/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace an5d;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "star2d1r";
  bool UseP100 = argc > 2 && std::strcmp(argv[2], "p100") == 0;
  bool UseDouble = argc > 3 && std::strcmp(argv[3], "double") == 0;
  TuneOptions Tuning;
  Tuning.Threads = argc > 4 ? std::atoi(argv[4]) : 0;

  auto Program = makeBenchmarkStencil(
      Name, UseDouble ? ScalarType::Double : ScalarType::Float);
  if (!Program) {
    std::fprintf(stderr, "unknown benchmark '%s'; known names:\n",
                 Name.c_str());
    for (const std::string &N : benchmarkStencilNames())
      std::fprintf(stderr, "  %s\n", N.c_str());
    for (const std::string &N : extraStencilNames())
      std::fprintf(stderr, "  %s\n", N.c_str());
    return 1;
  }

  GpuSpec Spec = UseP100 ? GpuSpec::teslaP100() : GpuSpec::teslaV100();
  ProblemSize Problem = ProblemSize::paperDefault(Program->numDims());
  std::printf("%s on %s, %s, problem %s\n\n", Program->toString().c_str(),
              Spec.Name.c_str(),
              UseDouble ? "double" : "float",
              Problem.toString().c_str());

  Tuner T(Spec);
  auto Ranked = T.rankByModel(*Program, Problem, 5);
  std::printf("top-5 configurations by model (Section 6.3 flow):\n");
  for (std::size_t I = 0; I < Ranked.size(); ++I) {
    const RankedConfig &R = Ranked[I];
    std::printf("  #%zu %-28s %s\n", I + 1, R.Config.toString().c_str(),
                R.Model.toString().c_str());
    std::printf("      traffic/invocation: gmem %.1f MiB, smem %.1f MiB, "
                "redundant compute %.1f%%\n",
                static_cast<double>(censusGmemBytes(
                    R.Model.CensusPerInvocation, *Program)) /
                    (1 << 20),
                static_cast<double>(censusSmemBytes(
                    R.Model.CensusPerInvocation, *Program)) /
                    (1 << 20),
                100.0 *
                    static_cast<double>(
                        R.Model.CensusPerInvocation.redundantComputeOps(
                            Problem.cellCount() * R.Config.BT)) /
                    static_cast<double>(
                        R.Model.CensusPerInvocation.ComputeOps));
  }

  TuneOutcome Outcome = T.tune(*Program, Problem, Tuning);
  if (!Outcome.Feasible) {
    std::printf("\nno feasible configuration found\n");
    return 1;
  }
  std::printf("\nmeasured sweep: top-%zu x %zu register caps on %d "
              "thread(s)\n",
              Tuning.TopK, Tuning.RegisterCaps.size(),
              resolveSweepThreads(Tuning.Threads));
  std::printf("\ntuned pick: %s\n  model %.0f GFLOP/s -> simulated "
              "measurement %.0f GFLOP/s (accuracy %.0f%%)\n",
              Outcome.Best.toString().c_str(),
              Outcome.BestMeasured.Model.Gflops,
              Outcome.BestMeasured.MeasuredGflops,
              100.0 * Outcome.BestMeasured.modelAccuracy());
  return 0;
}
