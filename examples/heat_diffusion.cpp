//===- heat_diffusion.cpp - Physical 2D heat equation scenario ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A domain-specific example: explicit finite-difference integration of the
/// 2D heat equation  u_t = alpha * (u_xx + u_yy)  — the canonical workload
/// behind j2d5pt-style stencils. The stencil is built programmatically, the
/// temporal-blocking degree is swept to show the Fig. 8 effect on the
/// model, and the blocked emulation integrates a hot-plate scenario whose
/// physical plausibility is checked (heat spreads, maximum principle).
///
//===----------------------------------------------------------------------===//

#include "model/PerformanceModel.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "stencils/Benchmarks.h"

#include <cstdio>

using namespace an5d;

int main() {
  // Build u' = (1-4r)*u + r*(N+S+E+W) with r = alpha*dt/dx^2 = 0.2.
  const double R = 0.2;
  ExprPtr Update =
      makeMul(makeCoefficient("center"), makeGridRead("U", {0, 0}));
  for (auto Off : std::vector<std::vector<int>>{
           {-1, 0}, {1, 0}, {0, -1}, {0, 1}})
    Update = makeAdd(std::move(Update),
                     makeMul(makeCoefficient("r"), makeGridRead("U", Off)));
  StencilProgram Heat("heat2d", 2, ScalarType::Double, "U",
                      std::move(Update),
                      {{"center", 1.0 - 4.0 * R}, {"r", R}});
  std::printf("stencil: %s\n\n", Heat.toString().c_str());

  // Model sweep over the temporal degree on V100 (the Fig. 8 shape).
  GpuSpec V100 = GpuSpec::teslaV100();
  ProblemSize Paper = ProblemSize::paperDefault(2);
  std::printf("bT sweep on %s (bS=256, hS=256):\n", V100.Name.c_str());
  for (int BT : {1, 2, 4, 6, 8, 10, 12}) {
    BlockConfig Config;
    Config.BT = BT;
    Config.BS = {256};
    Config.HS = 256;
    ModelBreakdown Model = evaluateModel(Heat, V100, Config, Paper);
    if (Model.Feasible)
      std::printf("  bT=%2d -> %6.0f GFLOP/s (model, %s-bound)\n", BT,
                  Model.Gflops, bottleneckName(Model.Limit));
    else
      std::printf("  bT=%2d -> infeasible\n", BT);
  }

  // Physical scenario: cold 96x96 plate, hot boundary on one edge.
  Grid<double> U0({96, 96}, 1), U1({96, 96}, 1);
  for (double &V : U0.raw())
    V = 0.0;
  for (long long J = -1; J <= 96; ++J)
    U0.at2(-1, J) = 100.0; // hot north boundary
  copyGrid(U0, U1);

  BlockConfig Config;
  Config.BT = 5;
  Config.BS = {64};
  Config.HS = 24;
  const long long Steps = 200;
  blockedRun<double>(Heat, Config, {&U0, &U1}, Steps);
  const Grid<double> &U = Steps % 2 == 0 ? U0 : U1;

  // Report the temperature profile along the column x = 48.
  std::printf("\ntemperature profile (column 48) after %lld steps:\n",
              Steps);
  double Prev = 101.0;
  bool Monotone = true, MaxPrinciple = true;
  for (long long I = 0; I < 96; I += 12) {
    double Temp = U.at2(I, 48);
    std::printf("  depth %2lld: %7.3f\n", I, Temp);
    if (Temp > Prev + 1e-9)
      Monotone = false;
    if (Temp < -1e-9 || Temp > 100.0 + 1e-9)
      MaxPrinciple = false;
    Prev = Temp;
  }
  std::printf("\nchecks: heat decays away from the hot edge: %s; "
              "maximum principle (0..100): %s\n",
              Monotone ? "yes" : "NO", MaxPrinciple ? "yes" : "NO");
  return Monotone && MaxPrinciple ? 0 : 1;
}
