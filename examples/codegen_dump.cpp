//===- codegen_dump.cpp - Emit generated CUDA and C++ to files ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits, for a chosen benchmark (argv[1], default j2d5pt), the full
/// generated artifacts into ./an5d_generated/: the CUDA kernel (.cu), the
/// CUDA host driver (.cpp), and the portable self-checking C++ program.
/// This is what the AN5D tool would hand to nvcc.
///
//===----------------------------------------------------------------------===//

#include "codegen/CppCodegen.h"
#include "codegen/CudaCodegen.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace an5d;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "j2d5pt";
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  if (!Program) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Name.c_str());
    return 1;
  }

  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome =
      T.tune(*Program, ProblemSize::paperDefault(Program->numDims()));
  if (!Outcome.Feasible) {
    std::fprintf(stderr, "no feasible configuration\n");
    return 1;
  }

  std::filesystem::create_directories("an5d_generated");
  GeneratedCuda Cuda = generateCuda(*Program, Outcome.Best);

  std::string Base = "an5d_generated/" + Cuda.KernelName;
  {
    std::ofstream Out(Base + ".cu");
    Out << Cuda.KernelSource;
  }
  {
    std::ofstream Out(Base + "_host.cpp");
    Out << Cuda.HostSource;
  }

  // Portable self-check at an emulation-friendly size.
  ProblemSize Small;
  if (Program->numDims() == 2) {
    Small.Extents = {48, 45};
    BlockConfig C;
    C.BT = std::min(Outcome.Best.BT, 4);
    C.BS = {32};
    C.HS = 12;
    if (!C.isFeasible(Program->radius()))
      C.BT = 1;
    Small.TimeSteps = 11;
    std::ofstream Out(Base + "_check.cpp");
    Out << generateCppCheckProgram(*Program, C, Small);
  } else {
    Small.Extents = {14, 12, 12};
    BlockConfig C;
    C.BT = 2;
    C.BS = {10 + 4 * Program->radius(), 10 + 4 * Program->radius()};
    C.HS = 0;
    if (!C.isFeasible(Program->radius()))
      C.BT = 1;
    Small.TimeSteps = 7;
    std::ofstream Out(Base + "_check.cpp");
    Out << generateCppCheckProgram(*Program, C, Small);
  }

  std::printf("wrote:\n  %s.cu\n  %s_host.cpp\n  %s_check.cpp\n"
              "config: %s\n"
              "compile the check with: c++ -O2 %s_check.cpp && ./a.out\n",
              Base.c_str(), Base.c_str(), Base.c_str(),
              Outcome.Best.toString().c_str(), Base.c_str());
  return 0;
}
