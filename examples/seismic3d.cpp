//===- seismic3d.cpp - 3D anisotropic smoothing scenario ----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 3D domain example in the spirit of the paper's HPC motivation
/// (seismic/atmospheric kernels are the canonical star3d users): iterative
/// anisotropic smoothing of a seismic velocity volume with a 7-point star
/// whose axis weights differ (stronger vertical coupling). The example
/// builds the stencil from source through the frontend, prints the full
/// schedule report for a V100, runs the blocked emulation on a synthetic
/// layered volume, and checks physical plausibility (layer boundaries
/// blur; volume mean is approximately conserved by the near-averaging
/// kernel).
///
//===----------------------------------------------------------------------===//

#include "frontend/StencilExtractor.h"
#include "report/ScheduleReport.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "tuning/Tuner.h"

#include <cmath>
#include <cstdio>

using namespace an5d;

int main() {
  // Anisotropic 7-point smoothing written as plain C; wz couples the
  // vertical (streaming) axis more strongly than the horizontal ones.
  const std::string Source =
      "for (t = 0; t < I_T; t++)\n"
      "  for (i = 1; i <= I_S3; i++)\n"
      "    for (j = 1; j <= I_S2; j++)\n"
      "      for (k = 1; k <= I_S1; k++)\n"
      "        A[(t+1)%2][i][j][k] = wc * A[t%2][i][j][k]\n"
      "          + wz * A[t%2][i-1][j][k] + wz * A[t%2][i+1][j][k]\n"
      "          + wh * A[t%2][i][j-1][k] + wh * A[t%2][i][j+1][k]\n"
      "          + wh * A[t%2][i][j][k-1] + wh * A[t%2][i][j][k+1];\n";

  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(
      Source, "seismic-smooth3d", ScalarType::Double,
      {{"wc", 0.4}, {"wz", 0.15}, {"wh", 0.075}});
  if (!Result) {
    std::fprintf(stderr, "%s", Diags.toString().c_str());
    return 1;
  }
  const StencilProgram &Smooth = *Result->Program;

  // Tune for V100 and show the full schedule report.
  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome = T.tune(Smooth, ProblemSize::paperDefault(3));
  if (!Outcome.Feasible) {
    std::fprintf(stderr, "no feasible configuration\n");
    return 1;
  }
  std::printf("%s\n", renderScheduleReport(Smooth, T.spec(), Outcome.Best,
                                           ProblemSize::paperDefault(3))
                          .c_str());

  // Synthetic velocity volume: two layers with a sharp interface at the
  // mid-depth, plus boundary cells pinned to their layer values.
  const long long N = 40;
  Grid<double> V0({N, N, N}, 1), V1({N, N, N}, 1);
  for (long long I = -1; I <= N; ++I)
    for (long long J = -1; J <= N; ++J)
      for (long long K = -1; K <= N; ++K)
        V0.at3(I, J, K) = I < N / 2 ? 2.0 : 4.5; // km/s
  copyGrid(V0, V1);

  double MeanBefore = 0;
  for (long long I = 0; I < N; ++I)
    for (long long J = 0; J < N; ++J)
      for (long long K = 0; K < N; ++K)
        MeanBefore += V0.at3(I, J, K);
  MeanBefore /= static_cast<double>(N * N * N);

  BlockConfig Config;
  Config.BT = 3;
  Config.BS = {16, 16};
  Config.HS = 20;
  const long long Steps = 30;
  blockedRun<double>(Smooth, Config, {&V0, &V1}, Steps);
  const Grid<double> &V = Steps % 2 == 0 ? V0 : V1;

  // Interface sharpness: velocity jump across the mid-depth cells.
  double JumpBefore = 4.5 - 2.0;
  double JumpAfter =
      V.at3(N / 2, N / 2, N / 2) - V.at3(N / 2 - 1, N / 2, N / 2);
  double MeanAfter = 0;
  for (long long I = 0; I < N; ++I)
    for (long long J = 0; J < N; ++J)
      for (long long K = 0; K < N; ++K)
        MeanAfter += V.at3(I, J, K);
  MeanAfter /= static_cast<double>(N * N * N);

  std::printf("layered volume after %lld smoothing steps (bT=%d blocked "
              "emulation):\n",
              Steps, Config.BT);
  std::printf("  interface jump: %.3f -> %.3f km/s (blurred: %s)\n",
              JumpBefore, JumpAfter,
              JumpAfter < 0.5 * JumpBefore ? "yes" : "NO");
  std::printf("  volume mean:    %.4f -> %.4f km/s (drift %.2f%%)\n",
              MeanBefore, MeanAfter,
              100.0 * std::fabs(MeanAfter - MeanBefore) / MeanBefore);

  bool Ok = JumpAfter < 0.5 * JumpBefore &&
            std::fabs(MeanAfter - MeanBefore) / MeanBefore < 0.05;
  std::printf("checks: %s\n", Ok ? "passed" : "FAILED");
  return Ok ? 0 : 1;
}
