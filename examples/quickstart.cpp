//===- quickstart.cpp - AN5D reproduction quickstart --------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 5-minute tour: feed the framework the exact C code of Fig. 4 of the
/// paper (j2d5pt), watch it detect the stencil, generate CUDA, and verify
/// the blocked N.5D schedule against the naive reference on the CPU.
///
//===----------------------------------------------------------------------===//

#include "codegen/CudaCodegen.h"
#include "frontend/StencilExtractor.h"
#include "model/PerformanceModel.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <cstdio>

using namespace an5d;

int main() {
  // 1. The input: unoptimized double-buffered C (Fig. 4 of the paper).
  std::string Source = j2d5ptSource();
  std::printf("== input C code ==\n%s\n", Source.c_str());

  // 2. Detect the stencil (Section 4.3.3 rules).
  DiagnosticEngine Diags;
  StencilExtractor Extractor(Diags);
  auto Result = Extractor.extractFromSource(Source, "j2d5pt");
  if (!Result) {
    std::fprintf(stderr, "stencil detection failed:\n%s",
                 Diags.toString().c_str());
    return 1;
  }
  const StencilProgram &Program = *Result->Program;
  std::printf("== detected stencil ==\n%s\n\n", Program.toString().c_str());

  // 3. Tune for a Tesla V100 with the Section 5 performance model.
  Tuner T(GpuSpec::teslaV100());
  TuneOutcome Outcome = T.tune(Program, ProblemSize::paperDefault(2));
  if (!Outcome.Feasible) {
    std::fprintf(stderr, "tuning failed\n");
    return 1;
  }
  std::printf("== tuned configuration (V100) ==\n%s\n  model: %s\n"
              "  simulated measurement: %.0f GFLOP/s\n\n",
              Outcome.Best.toString().c_str(),
              Outcome.BestMeasured.Model.toString().c_str(),
              Outcome.BestMeasured.MeasuredGflops);

  // 4. Generate the CUDA pair.
  GeneratedCuda Cuda = generateCuda(Program, Outcome.Best);
  std::printf("== generated CUDA ==\n  kernel %s: %zu bytes of kernel "
              "source, %zu bytes of host source\n\n",
              Cuda.KernelName.c_str(), Cuda.KernelSource.size(),
              Cuda.HostSource.size());

  // 5. Verify the blocked schedule bit-for-bit against the reference on a
  //    small grid (no GPU required).
  BlockConfig Small;
  Small.BT = Outcome.Best.BT;
  Small.BS = {64};
  Small.HS = 16;
  Grid<float> Ref0({60, 57}, 1), Ref1({60, 57}, 1);
  fillGridDeterministic(Ref0, 2026);
  copyGrid(Ref0, Ref1);
  Grid<float> Blk0 = Ref0, Blk1 = Ref0;
  long long Steps = 25;
  referenceRun<float>(Program, {&Ref0, &Ref1}, Steps);
  blockedRun<float>(Program, Small, {&Blk0, &Blk1}, Steps);
  const Grid<float> &Want = Steps % 2 == 0 ? Ref0 : Ref1;
  const Grid<float> &Got = Steps % 2 == 0 ? Blk0 : Blk1;
  bool Match = Want.raw() == Got.raw();
  std::printf("== emulation check ==\n  %lld time-steps, bT=%d: %s\n", Steps,
              Small.BT,
              Match ? "blocked result matches reference bit-for-bit"
                    : "MISMATCH (bug!)");
  return Match ? 0 : 1;
}
