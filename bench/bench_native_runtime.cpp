//===- bench_native_runtime.cpp - Tape emulator vs native OpenMP kernels ------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark comparison of the two execution tiers that run the
/// blocked N.5D schedule on this machine: the in-process compiled-tape
/// emulator (sim/BlockedExecutor.h) and the JIT-compiled native OpenMP
/// kernel (runtime/NativeExecutor.h). Both compute bit-identical results;
/// the native kernel exists so "measured" tuning can time real hardware
/// behavior, and this bench tracks how much faster it runs.
///
/// Native cases appear at 1 and 4 OpenMP threads (4 is clamped to the
/// machine's pool when smaller); the BM_Native* cases report the live
/// ratio against a best-of-3 tape-emulator run as "native_vs_tape_x". On
/// the 3D benchmarks at >= 4 threads the native kernel is expected to beat
/// the tape emulator comfortably (specialized constants, no interpreter
/// dispatch, parallel blocks). The 1D cases cover the pure-streaming
/// kernel (empty bS, OpenMP over hS chunks). Kernels compile once into a
/// per-user cache (AN5D_KERNEL_CACHE overrides), so repeat runs skip
/// compilation; tools/bench_emulator.sh dumps the results to
/// BENCH_native.json.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "runtime/NativeExecutor.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "stencils/Benchmarks.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

using namespace an5d;

namespace {

long long cellSteps(const std::vector<long long> &Extents, long long Steps) {
  long long Cells = 1;
  for (long long E : Extents)
    Cells *= E;
  return Cells * Steps;
}

/// One benchmarked scenario: stencil, configuration, problem.
struct Scenario {
  std::unique_ptr<StencilProgram> Program;
  BlockConfig Config;
  std::vector<long long> Extents;
  long long Steps;
};

Scenario makeScenario(const std::string &Name,
                      ScalarType Type = ScalarType::Float) {
  Scenario S;
  S.Program = makeBenchmarkStencil(Name, Type);
  if (S.Program->numDims() == 1) {
    // Pure streaming: bS stays empty, parallelism comes from hS chunks.
    S.Config.BT = 8;
    S.Config.BS.clear();
    S.Config.HS = 4096;
    S.Extents = {1 << 16};
    S.Steps = 32;
  } else if (S.Program->numDims() == 2) {
    S.Config.BT = 4;
    S.Config.BS = {128};
    S.Config.HS = 128;
    S.Extents = {512, 512};
    S.Steps = 8;
  } else {
    S.Config.BT = 2;
    S.Config.BS = {32, 32};
    S.Config.HS = 0;
    S.Extents = {64, 64, 64};
    S.Steps = 4;
  }
  return S;
}

/// Best-of-3 wall time of one tape-emulator run, for the ratio counter.
template <typename T> double timeTapeNs(const Scenario &S) {
  Grid<T> A(S.Extents, S.Program->radius()), B(A);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    blockedRun<T>(*S.Program, S.Config, {&A, &B}, S.Steps);
    auto End = std::chrono::steady_clock::now();
    double Ns =
        std::chrono::duration<double, std::nano>(End - Start).count();
    Best = Rep == 0 ? Ns : std::min(Best, Ns);
  }
  return Best;
}

template <typename T>
void runTapeBench(benchmark::State &State, const std::string &Name,
                  ScalarType Type) {
  Scenario S = makeScenario(Name, Type);
  Grid<T> A(S.Extents, S.Program->radius()), B(A);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    blockedRun<T>(*S.Program, S.Config, {&A, &B}, S.Steps);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * cellSteps(S.Extents, S.Steps));
}

void runTapeBench(benchmark::State &State, const std::string &Name) {
  runTapeBench<float>(State, Name, ScalarType::Float);
}

template <typename T>
void runNativeBench(benchmark::State &State, const std::string &Name,
                    ScalarType Type, int Threads) {
  Scenario S = makeScenario(Name, Type);
  NativeRuntimeOptions Options;
  Options.Threads = Threads;
  NativeExecutor Executor(*S.Program, S.Config, Options);
  if (!Executor.ok()) {
    State.SkipWithError(Executor.error().c_str());
    return;
  }
  Grid<T> A(S.Extents, S.Program->radius()), B(A);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    Executor.run<T>({&A, &B}, S.Steps);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * cellSteps(S.Extents, S.Steps));
  State.counters["kernel_threads"] =
      static_cast<double>(Executor.kernelMaxThreads());
  // Live ratio against the tape emulator: benchmark reports per-iteration
  // time only after the fact, so time one more native run by hand.
  double TapeNs = timeTapeNs<T>(S);
  auto Start = std::chrono::steady_clock::now();
  Executor.run<T>({&A, &B}, S.Steps);
  double NativeNs = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  State.counters["tape_ns_per_run"] = TapeNs;
  if (NativeNs > 0)
    State.counters["native_vs_tape_x"] = TapeNs / NativeNs;
}

void runNativeBench(benchmark::State &State, const std::string &Name,
                    int Threads) {
  runNativeBench<float>(State, Name, ScalarType::Float, Threads);
}

} // namespace

//===----------------------------------------------------------------------===//
// 1D (pure streaming; native parallelism comes from hS chunks)
//===----------------------------------------------------------------------===//

static void BM_TapeBlocked_j1d3pt(benchmark::State &State) {
  runTapeBench(State, "j1d3pt");
}
BENCHMARK(BM_TapeBlocked_j1d3pt)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_j1d3pt(benchmark::State &State) {
  runNativeBench(State, "j1d3pt", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_j1d3pt)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

static void BM_TapeBlocked_star1d2r(benchmark::State &State) {
  runTapeBench(State, "star1d2r");
}
BENCHMARK(BM_TapeBlocked_star1d2r)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_star1d2r(benchmark::State &State) {
  runNativeBench(State, "star1d2r", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_star1d2r)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// 2D
//===----------------------------------------------------------------------===//

static void BM_TapeBlocked_j2d5pt(benchmark::State &State) {
  runTapeBench(State, "j2d5pt");
}
BENCHMARK(BM_TapeBlocked_j2d5pt)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_j2d5pt(benchmark::State &State) {
  runNativeBench(State, "j2d5pt", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_j2d5pt)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// Double-precision points: same stencil and schedule, 8-byte elements —
// BENCH_native.json tracks both element types for the native-vs-tape
// ratio (bandwidth doubles, the tape's interpretive overhead does not).
static void BM_TapeBlocked_j2d5pt_double(benchmark::State &State) {
  runTapeBench<double>(State, "j2d5pt", ScalarType::Double);
}
BENCHMARK(BM_TapeBlocked_j2d5pt_double)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_j2d5pt_double(benchmark::State &State) {
  runNativeBench<double>(State, "j2d5pt", ScalarType::Double,
                         static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_j2d5pt_double)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

static void BM_TapeBlocked_star2d2r(benchmark::State &State) {
  runTapeBench(State, "star2d2r");
}
BENCHMARK(BM_TapeBlocked_star2d2r)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_star2d2r(benchmark::State &State) {
  runNativeBench(State, "star2d2r", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_star2d2r)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// 3D (the acceptance cases: native must win at >= 4 threads)
//===----------------------------------------------------------------------===//

static void BM_TapeBlocked_star3d1r(benchmark::State &State) {
  runTapeBench(State, "star3d1r");
}
BENCHMARK(BM_TapeBlocked_star3d1r)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_star3d1r(benchmark::State &State) {
  runNativeBench(State, "star3d1r", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_star3d1r)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

static void BM_TapeBlocked_star3d1r_double(benchmark::State &State) {
  runTapeBench<double>(State, "star3d1r", ScalarType::Double);
}
BENCHMARK(BM_TapeBlocked_star3d1r_double)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_star3d1r_double(benchmark::State &State) {
  runNativeBench<double>(State, "star3d1r", ScalarType::Double,
                         static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_star3d1r_double)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

static void BM_TapeBlocked_j3d27pt(benchmark::State &State) {
  runTapeBench(State, "j3d27pt");
}
BENCHMARK(BM_TapeBlocked_j3d27pt)->Unit(benchmark::kMillisecond);

static void BM_NativeOmp_j3d27pt(benchmark::State &State) {
  runNativeBench(State, "j3d27pt", static_cast<int>(State.range(0)));
}
BENCHMARK(BM_NativeOmp_j3d27pt)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Observability guard: the disabled-span fast path
//===----------------------------------------------------------------------===//

// The native hot paths (runtime/NativeMeasurement.cpp, NativeExecutor)
// carry AN5D_TRACE_SPAN instrumentation that must be free when tracing is
// off — one relaxed atomic load and a branch, no clock read, no lock.
// This guard pins that cost at the nanosecond scale so a regression (an
// accidental clock read or allocation on the disabled path) shows up in
// BENCH_native.json even though kernel throughput would not move.
static void BM_ObsDisabledSpan(benchmark::State &State) {
  obs::TraceRecorder::global().disable();
  for (auto _ : State) {
    AN5D_TRACE_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabledSpan);

// The enabled cost for contrast: clock reads plus a striped-lock append.
// The buffer is dropped in batches outside the span itself so memory stays
// bounded; the amortized clear is part of the reported cost.
static void BM_ObsEnabledSpan(benchmark::State &State) {
  obs::TraceRecorder &Recorder = obs::TraceRecorder::global();
  Recorder.clear();
  Recorder.enable();
  std::size_t SinceClear = 0;
  for (auto _ : State) {
    { AN5D_TRACE_SPAN("bench.enabled"); }
    if (++SinceClear == 8192) {
      Recorder.clear();
      SinceClear = 0;
    }
  }
  Recorder.disable();
  Recorder.clear();
}
BENCHMARK(BM_ObsEnabledSpan);

BENCHMARK_MAIN();
