//===- bench_tuner_throughput.cpp - Measured-sweep scaling --------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the tuner's measured-sweep stage
/// (tuning/ParallelSweep.h) at 1/2/4/8 worker threads, over the Table 3 2D
/// benchmarks plus the 1D streaming path. Each sweep covers the stencil's
/// whole feasible grid x the four register caps x three problem sizes —
/// the workload every later scenario sweep (more GPUs, more problem sizes,
/// more benchmarks) runs on — so these numbers bound how much of the
/// search space one tuning session can afford.
///
/// The serial stage is timed once up front (best of 3) and every parallel
/// case reports the live ratio as the "sweep_speedup_x" counter; the
/// candidate count rides along as "candidates". tools/bench_emulator.sh
/// dumps the results to BENCH_tuner.json to track the trajectory PR over
/// PR. The sweep result itself is bit-identical for every thread count
/// (tests/ParallelSweepTest.cpp enforces this); only wall-clock changes.
///
//===----------------------------------------------------------------------===//

#include "stencils/Benchmarks.h"
#include "tuning/ParallelSweep.h"
#include "tuning/Tuner.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>

using namespace an5d;

namespace {

/// Problem sizes swept per stencil: the paper's evaluation size plus two
/// smaller squares (quarter and sixteenth area).
std::vector<ProblemSize> sweepProblems(int NumDims) {
  std::vector<ProblemSize> Problems;
  Problems.push_back(ProblemSize::paperDefault(NumDims));
  for (int Shrink : {2, 4}) {
    ProblemSize Smaller = ProblemSize::paperDefault(NumDims);
    for (long long &E : Smaller.Extents)
      E /= Shrink;
    Problems.push_back(std::move(Smaller));
  }
  return Problems;
}

/// Best-of-3 wall time of one serial sweep, for the speedup counter.
double timeSerialSweepNs(const StencilProgram &Program, const GpuSpec &Spec,
                         const std::vector<SweepCandidate> &Candidates,
                         const std::vector<ProblemSize> &Problems) {
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    auto Results =
        parallelMeasuredSweep(Program, Spec, Candidates, Problems, 1);
    benchmark::DoNotOptimize(Results.data());
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    if (Rep == 0 || Ns < Best)
      Best = Ns;
  }
  return Best;
}

void runSweepBench(benchmark::State &State, const std::string &Name) {
  int Threads = static_cast<int>(State.range(0));
  auto Program = makeBenchmarkStencil(Name, ScalarType::Float);
  GpuSpec Spec = GpuSpec::teslaV100();
  Tuner T(Spec);
  std::vector<ProblemSize> Problems = sweepProblems(Program->numDims());
  // The full measured workload: every feasible grid point (not just the
  // top-K) x register caps x problem sizes.
  std::vector<SweepCandidate> Candidates =
      T.enumerateSweepCandidates(*Program, Problems.size());

  // The serial baseline is identical for every thread-count case of one
  // stencil; time it once and share it across the Args (benchmark cases
  // run sequentially, so the cache needs no locking).
  static std::map<std::string, double> SerialNsByName;
  auto Cached = SerialNsByName.find(Name);
  if (Cached == SerialNsByName.end())
    Cached = SerialNsByName
                 .emplace(Name, timeSerialSweepNs(*Program, Spec, Candidates,
                                                  Problems))
                 .first;
  double SerialNs = Cached->second;

  double SweepNs = 0;
  for (auto _ : State) {
    auto Start = std::chrono::steady_clock::now();
    auto Results =
        parallelMeasuredSweep(*Program, Spec, Candidates, Problems, Threads);
    auto End = std::chrono::steady_clock::now();
    SweepNs += std::chrono::duration<double, std::nano>(End - Start).count();
    benchmark::DoNotOptimize(Results.data());
  }

  State.SetItemsProcessed(State.iterations() *
                          static_cast<long long>(Candidates.size()));
  State.counters["candidates"] =
      benchmark::Counter(static_cast<double>(Candidates.size()));
  State.counters["threads"] =
      benchmark::Counter(static_cast<double>(Threads));
  State.counters["serial_ms"] = benchmark::Counter(SerialNs / 1e6);
  State.counters["sweep_speedup_x"] =
      SweepNs > 0
          ? SerialNs * static_cast<double>(State.iterations()) / SweepNs
          : 0;
}

void registerBenches() {
  // Table 3's 2D rows (a star, a box, the Fig. 4 Jacobi and the
  // non-associative gradient) plus the fixed 1D streaming path.
  static const char *Names[] = {"star2d1r", "box2d2r", "j2d5pt",
                                "gradient2d", "star1d1r"};
  for (const char *Name : Names) {
    auto *Bench = benchmark::RegisterBenchmark(
        ("BM_MeasuredSweep/" + std::string(Name)).c_str(),
        [Name](benchmark::State &State) { runSweepBench(State, Name); });
    Bench->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

} // namespace

int main(int argc, char **argv) {
  registerBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
