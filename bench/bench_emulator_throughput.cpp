//===- bench_emulator_throughput.cpp - Emulator microbenchmarks ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the functional components themselves (not a
/// paper figure): the reference executor and the blocked N.5D emulator —
/// both through the default compiled-tape engine and the recursive
/// tree-walk oracle — plus the thread census and the full tuning flow.
/// The emulator is the correctness oracle and the tuner's inner loop, so
/// its throughput bounds how many scenarios the whole reproduction can
/// sweep; tools/bench_emulator.sh dumps these numbers to
/// BENCH_emulator.json to track the trajectory PR over PR.
///
/// The *TapeVsTreeWalk cases time the tape in the benchmark loop and the
/// tree walk once up front, reporting the ratio as the
/// "tape_speedup_x" counter (≥5x expected on the J2d5pt cases).
///
//===----------------------------------------------------------------------===//

#include "model/ThreadCensus.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace an5d;

namespace {

/// Cells per invocation for the given extents and steps.
long long cellSteps(const std::vector<long long> &Extents, long long Steps) {
  long long Cells = 1;
  for (long long E : Extents)
    Cells *= E;
  return Cells * Steps;
}

void runReferenceBench(benchmark::State &State, const StencilProgram &P,
                       std::vector<long long> Extents, long long Steps,
                       EvalStrategy Strategy) {
  Grid<float> A(Extents, P.radius()), B(Extents, P.radius());
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    referenceRun<float>(P, {&A, &B}, Steps, Strategy);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * cellSteps(Extents, Steps));
}

void runBlockedBench(benchmark::State &State, const StencilProgram &P,
                     const BlockConfig &Config,
                     std::vector<long long> Extents, long long Steps,
                     EvalStrategy Strategy) {
  Grid<float> A(Extents, P.radius()), B(Extents, P.radius());
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  BlockedExecOptions Options;
  Options.Strategy = Strategy;
  for (auto _ : State) {
    blockedRun<float>(P, Config, {&A, &B}, Steps, Options);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * cellSteps(Extents, Steps));
}

/// Best-of-3 wall time of one tree-walk invocation, for the comparison
/// counters.
template <typename Fn> double timeTreeWalkNs(const Fn &Run) {
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    Run();
    auto End = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(End - Start).count();
    Best = Rep == 0 ? Ns : std::min(Best, Ns);
  }
  return Best;
}

} // namespace

//===----------------------------------------------------------------------===//
// Reference executor
//===----------------------------------------------------------------------===//

static void BM_ReferenceJ2d5pt(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  runReferenceBench(State, *P, {64, 64}, 2, EvalStrategy::CompiledTape);
}
BENCHMARK(BM_ReferenceJ2d5pt);

static void BM_ReferenceJ2d5ptTreeWalk(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  runReferenceBench(State, *P, {64, 64}, 2, EvalStrategy::TreeWalk);
}
BENCHMARK(BM_ReferenceJ2d5ptTreeWalk);

static void BM_ReferenceStar2d4r(benchmark::State &State) {
  // High-order (rad 4) star: 17 taps.
  auto P = makeStarStencil(2, 4, ScalarType::Float);
  runReferenceBench(State, *P, {64, 64}, 2, EvalStrategy::CompiledTape);
}
BENCHMARK(BM_ReferenceStar2d4r);

static void BM_ReferenceBox2d2r(benchmark::State &State) {
  // High-order (rad 2) box: 25 taps.
  auto P = makeBoxStencil(2, 2, ScalarType::Float);
  runReferenceBench(State, *P, {64, 64}, 2, EvalStrategy::CompiledTape);
}
BENCHMARK(BM_ReferenceBox2d2r);

static void BM_ReferenceJ3d27pt(benchmark::State &State) {
  auto P = makeJacobi3d27pt(ScalarType::Float);
  runReferenceBench(State, *P, {24, 24, 24}, 2, EvalStrategy::CompiledTape);
}
BENCHMARK(BM_ReferenceJ3d27pt);

static void BM_ReferenceBox3d2r(benchmark::State &State) {
  // 3D high-order box: 125 taps.
  auto P = makeBoxStencil(3, 2, ScalarType::Float);
  runReferenceBench(State, *P, {24, 24, 24}, 2, EvalStrategy::CompiledTape);
}
BENCHMARK(BM_ReferenceBox3d2r);

//===----------------------------------------------------------------------===//
// Blocked N.5D emulator
//===----------------------------------------------------------------------===//

static void BM_BlockedJ2d5pt(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = static_cast<int>(State.range(0));
  Config.BS = {64};
  Config.HS = 0;
  runBlockedBench(State, *P, Config, {64, 64}, Config.BT,
                  EvalStrategy::CompiledTape);
}
BENCHMARK(BM_BlockedJ2d5pt)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_BlockedJ2d5ptTreeWalk(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = static_cast<int>(State.range(0));
  Config.BS = {64};
  Config.HS = 0;
  runBlockedBench(State, *P, Config, {64, 64}, Config.BT,
                  EvalStrategy::TreeWalk);
}
BENCHMARK(BM_BlockedJ2d5ptTreeWalk)->Arg(1)->Arg(8);

static void BM_BlockedStar2d2r(benchmark::State &State) {
  // rad 2 at degree 2: 8 halo lanes per side of the 64-lane block.
  auto P = makeStarStencil(2, 2, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {64};
  Config.HS = 0;
  runBlockedBench(State, *P, Config, {64, 64}, 2,
                  EvalStrategy::CompiledTape);
}
BENCHMARK(BM_BlockedStar2d2r);

static void BM_BlockedStar3d(benchmark::State &State) {
  auto P = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {16, 16};
  Config.HS = 0;
  runBlockedBench(State, *P, Config, {24, 24, 24}, 2,
                  EvalStrategy::CompiledTape);
}
BENCHMARK(BM_BlockedStar3d);

static void BM_BlockedBox3d2r(benchmark::State &State) {
  // 3D high-order box (125 taps), rad 2 at degree 1.
  auto P = makeBoxStencil(3, 2, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 1;
  Config.BS = {16, 16};
  Config.HS = 0;
  runBlockedBench(State, *P, Config, {24, 24, 24}, 2,
                  EvalStrategy::CompiledTape);
}
BENCHMARK(BM_BlockedBox3d2r);

//===----------------------------------------------------------------------===//
// Tape vs tree-walk comparison counters
//===----------------------------------------------------------------------===//

static void BM_ReferenceJ2d5ptTapeVsTreeWalk(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  Grid<float> A({64, 64}, 1), B({64, 64}, 1);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  double TreeNs = timeTreeWalkNs([&] {
    referenceRun<float>(*P, {&A, &B}, 2, EvalStrategy::TreeWalk);
  });
  double TapeNs = 0;
  for (auto _ : State) {
    auto Start = std::chrono::steady_clock::now();
    referenceRun<float>(*P, {&A, &B}, 2, EvalStrategy::CompiledTape);
    auto End = std::chrono::steady_clock::now();
    TapeNs += std::chrono::duration<double, std::nano>(End - Start).count();
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * 64 * 64);
  State.counters["treewalk_ns"] = TreeNs;
  State.counters["tape_speedup_x"] =
      TapeNs > 0 ? TreeNs * static_cast<double>(State.iterations()) / TapeNs
                 : 0;
}
BENCHMARK(BM_ReferenceJ2d5ptTapeVsTreeWalk);

static void BM_BlockedJ2d5ptTapeVsTreeWalk(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = 4;
  Config.BS = {64};
  Config.HS = 0;
  Grid<float> A({64, 64}, 1), B({64, 64}, 1);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  BlockedExecOptions Tree;
  Tree.Strategy = EvalStrategy::TreeWalk;
  double TreeNs = timeTreeWalkNs([&] {
    blockedRun<float>(*P, Config, {&A, &B}, Config.BT, Tree);
  });
  double TapeNs = 0;
  for (auto _ : State) {
    auto Start = std::chrono::steady_clock::now();
    blockedRun<float>(*P, Config, {&A, &B}, Config.BT);
    auto End = std::chrono::steady_clock::now();
    TapeNs += std::chrono::duration<double, std::nano>(End - Start).count();
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * Config.BT * 64 * 64);
  State.counters["treewalk_ns"] = TreeNs;
  State.counters["tape_speedup_x"] =
      TapeNs > 0 ? TreeNs * static_cast<double>(State.iterations()) / TapeNs
                 : 0;
}
BENCHMARK(BM_BlockedJ2d5ptTapeVsTreeWalk);

//===----------------------------------------------------------------------===//
// Census and tuner
//===----------------------------------------------------------------------===//

static void BM_ThreadCensus2d(benchmark::State &State) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 10;
  Config.BS = {256};
  Config.HS = 256;
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (auto _ : State) {
    ThreadCensus Census = computeThreadCensus(*P, Config, Problem);
    benchmark::DoNotOptimize(Census.ComputeOps);
  }
}
BENCHMARK(BM_ThreadCensus2d);

static void BM_FullTuneStar2d(benchmark::State &State) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (auto _ : State) {
    TuneOutcome Outcome = T.tune(*P, Problem);
    benchmark::DoNotOptimize(Outcome.BestMeasured.MeasuredGflops);
  }
}
BENCHMARK(BM_FullTuneStar2d);

BENCHMARK_MAIN();
