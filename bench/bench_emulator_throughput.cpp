//===- bench_emulator_throughput.cpp - Emulator microbenchmarks ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the functional components themselves (not a
/// paper figure): the reference executor, the blocked N.5D emulator at
/// several temporal degrees, the thread census and the full tuning flow.
/// Useful for keeping the reproduction's own tools fast.
///
//===----------------------------------------------------------------------===//

#include "model/ThreadCensus.h"
#include "sim/BlockedExecutor.h"
#include "sim/Grid.h"
#include "sim/ReferenceExecutor.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <benchmark/benchmark.h>

using namespace an5d;

static void BM_ReferenceJ2d5pt(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  Grid<float> A({64, 64}, 1), B({64, 64}, 1);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    referenceRun<float>(*P, {&A, &B}, 2);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * 64 * 64);
}
BENCHMARK(BM_ReferenceJ2d5pt);

static void BM_BlockedJ2d5pt(benchmark::State &State) {
  auto P = makeJacobi2d5pt(ScalarType::Float);
  BlockConfig Config;
  Config.BT = static_cast<int>(State.range(0));
  Config.BS = {64};
  Config.HS = 0;
  Grid<float> A({64, 64}, 1), B({64, 64}, 1);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    blockedRun<float>(*P, Config, {&A, &B}, Config.BT);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * Config.BT * 64 * 64);
}
BENCHMARK(BM_BlockedJ2d5pt)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_BlockedStar3d(benchmark::State &State) {
  auto P = makeStarStencil(3, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 2;
  Config.BS = {16, 16};
  Config.HS = 0;
  Grid<float> A({24, 24, 24}, 1), B({24, 24, 24}, 1);
  fillGridDeterministic(A, 1);
  copyGrid(A, B);
  for (auto _ : State) {
    blockedRun<float>(*P, Config, {&A, &B}, 2);
    benchmark::DoNotOptimize(A.raw().data());
  }
  State.SetItemsProcessed(State.iterations() * 2 * 24 * 24 * 24);
}
BENCHMARK(BM_BlockedStar3d);

static void BM_ThreadCensus2d(benchmark::State &State) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  BlockConfig Config;
  Config.BT = 10;
  Config.BS = {256};
  Config.HS = 256;
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (auto _ : State) {
    ThreadCensus Census = computeThreadCensus(*P, Config, Problem);
    benchmark::DoNotOptimize(Census.ComputeOps);
  }
}
BENCHMARK(BM_ThreadCensus2d);

static void BM_FullTuneStar2d(benchmark::State &State) {
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  ProblemSize Problem = ProblemSize::paperDefault(2);
  for (auto _ : State) {
    TuneOutcome Outcome = T.tune(*P, Problem);
    benchmark::DoNotOptimize(Outcome.BestMeasured.MeasuredGflops);
  }
}
BENCHMARK(BM_FullTuneStar2d);

BENCHMARK_MAIN();
