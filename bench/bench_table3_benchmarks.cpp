//===- bench_table3_benchmarks.cpp - Regenerates Table 3 ---------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 3 of the paper: the benchmark suite with per-cell FLOP counts
/// (validated in tests against the paper's closed forms), plus the derived
/// classification that drives AN5D's optimization choices.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ir/ExprAnalysis.h"
#include "stencils/Benchmarks.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Table 3: Benchmarks (FLOP/cell and derived classification)");

  Table T({"stencil", "dims", "radius", "shape", "class", "FLOP/cell",
           "effALU", "taps"});
  for (const std::string &Name : benchmarkStencilNames()) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    T.addRow({Name, std::to_string(P->numDims()),
              std::to_string(P->radius()), stencilShapeName(P->shape()),
              optimizationClassName(P->optimizationClass()),
              std::to_string(P->flopsPerCell().total()),
              formatDouble(P->instructionMix().aluEfficiency(), 3),
              std::to_string(P->taps().size())});
  }
  T.print();

  std::printf("Closed forms (paper): star2d{x}r = 8x+1, box2d{x}r = "
              "2(2x+1)^2-1,\nstar3d{x}r = 12x+1, box3d{x}r = 2(2x+1)^3-1, "
              "j2d5pt = 10, j2d9pt = 18,\nj2d9pt-gol = 18, gradient2d = 19, "
              "j3d27pt = 54.\n");
  return 0;
}
