//===- bench_fig6_framework_comparison.cpp - Regenerates Fig. 6 ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 6 of the paper: performance comparison across frameworks — PPCG
/// loop tiling, hybrid hexagonal tiling, STENCILGEN, AN5D (Sconf), AN5D
/// (Tuned) and the model prediction — on Tesla V100 and P100, float and
/// double, for the seven stencils STENCILGEN's repository covers.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

#include "baselines/Baselines.h"
#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Fig. 6: Framework comparison (GFLOP/s; 16384^2 / 512^3, "
              "IT=1000)");

  const char *Stencils[] = {"j2d5pt",     "j2d9pt",   "j2d9pt-gol",
                            "gradient2d", "star3d1r", "star3d2r",
                            "j3d27pt"};

  for (const GpuSpec &Spec : {GpuSpec::teslaV100(), GpuSpec::teslaP100()}) {
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      std::printf("--- %s (%s) ---\n", Spec.Name.c_str(),
                  scalarTypeName(Type));
      Table T({"stencil", "Loop Tiling", "Hybrid Tiling", "STENCILGEN",
               "AN5D (Sconf)", "AN5D (Tuned)", "AN5D (Model)", "winner"});
      Tuner Tune(Spec);
      for (const char *Name : Stencils) {
        auto P = makeBenchmarkStencil(Name, Type);
        ProblemSize Problem = ProblemSize::paperDefault(P->numDims());

        FrameworkResult Loop = simulateLoopTiling(*P, Spec, Problem);
        FrameworkResult Hybrid = simulateHybridTiling(*P, Spec, Problem);
        FrameworkResult Sg = simulateStencilGen(*P, Spec, Problem);
        MeasuredResult Sconf =
            simulateMeasured(*P, Spec, Tuner::sconf(*P), Problem);
        TuneOutcome Tuned = Tune.tune(*P, Problem);

        double An5dBest =
            std::max(Sconf.Feasible ? Sconf.MeasuredGflops : 0.0,
                     Tuned.Feasible ? Tuned.BestMeasured.MeasuredGflops
                                    : 0.0);
        const char *Winner = "AN5D";
        if (Sg.Gflops > An5dBest && Sg.Gflops > Hybrid.Gflops)
          Winner = "STENCILGEN";
        else if (Hybrid.Gflops > An5dBest)
          Winner = "Hybrid";

        T.addRow({Name, gflopsCell(Loop.Feasible, Loop.Gflops),
                  gflopsCell(Hybrid.Feasible, Hybrid.Gflops),
                  gflopsCell(Sg.Feasible, Sg.Gflops),
                  gflopsCell(Sconf.Feasible, Sconf.MeasuredGflops),
                  gflopsCell(Tuned.Feasible,
                             Tuned.BestMeasured.MeasuredGflops),
                  gflopsCell(Tuned.Feasible,
                             Tuned.BestMeasured.Model.Gflops),
                  Winner});
      }
      T.print();
    }
  }

  std::printf(
      "Shape checks vs the paper: AN5D (Tuned or Sconf) leads everywhere on\n"
      "V100; loop tiling is never competitive; hybrid tiling is close for\n"
      "2D but falls behind for 3D; the double-precision j* stencils land\n"
      "well below their model due to the constant-division penalty.\n");
  return 0;
}
