//===- bench_table4_gpu_specs.cpp - Regenerates Table 4 ----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 4 of the paper: the evaluation GPUs (float | double columns).
/// These values parameterize the whole performance model; on this GPU-less
/// machine they are constants rather than measurements, as documented in
/// EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "model/GpuSpec.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Table 4: GPU Specifications (Float | Double)");

  Table T({"GPU", "Perf (GFLOP/s)", "Peak gmem (GB/s)",
           "Measured gmem (GB/s)", "Measured smem (GB/s)", "SMs",
           "smem/SM (KiB)"});
  for (const GpuSpec &Spec : {GpuSpec::teslaP100(), GpuSpec::teslaV100()}) {
    T.addRow({Spec.Name,
              formatDouble(Spec.PeakGflopsFloat, 0) + " | " +
                  formatDouble(Spec.PeakGflopsDouble, 0),
              formatDouble(Spec.PeakGmemGBs, 0) + " | " +
                  formatDouble(Spec.PeakGmemGBs, 0),
              formatDouble(Spec.MeasuredGmemGBsFloat, 0) + " | " +
                  formatDouble(Spec.MeasuredGmemGBsDouble, 0),
              formatDouble(Spec.MeasuredSmemGBsFloat, 0) + " | " +
                  formatDouble(Spec.MeasuredSmemGBsDouble, 0),
              std::to_string(Spec.SmCount),
              std::to_string(Spec.SharedMemPerSmBytes / 1024)});
  }
  T.print();

  std::printf("Calibration used by the measured-performance simulator:\n"
              "  shared-memory kernel efficiency: V100 %.0f%%, P100 %.0f%% "
              "(Section 7.2 accuracy bands)\n",
              GpuSpec::teslaV100().SmemKernelEfficiency * 100,
              GpuSpec::teslaP100().SmemKernelEfficiency * 100);
  return 0;
}
