//===- bench_table2_smem_access.cpp - Regenerates Table 2 --------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 2 of the paper: shared-memory accesses per computing thread —
/// expected reads, practical reads (after NVCC's register caching of box
/// columns), and writes — for 2D/3D star/box stencils of radius 1..4.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "model/SharedMemoryModel.h"
#include "stencils/Benchmarks.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Table 2: Shared Memory Access per Thread");

  Table T({"shape", "rad", "read (expected)", "read (practical)", "write"});
  for (int Dims : {2, 3}) {
    for (bool Box : {false, true}) {
      for (int Rad = 1; Rad <= 4; ++Rad) {
        auto P = Box ? makeBoxStencil(Dims, Rad, ScalarType::Float)
                     : makeStarStencil(Dims, Rad, ScalarType::Float);
        T.addRow({std::to_string(Dims) + "D " + (Box ? "box" : "star"),
                  std::to_string(Rad),
                  std::to_string(smemReadsPerThreadExpected(*P)),
                  std::to_string(smemReadsPerThreadPractical(*P)),
                  std::to_string(smemWritesPerThread())});
      }
    }
  }
  T.print();

  std::printf("Formulas (paper):\n"
              "  2D star: 2*rad | 2*rad          2D box: (2rad+1)^2-(2rad+1) "
              "| (2rad+1)-1\n"
              "  3D star: 4*rad | 4*rad          3D box: (2rad+1)^3-(2rad+1) "
              "| (2rad+1)^2-1\n");
  return 0;
}
