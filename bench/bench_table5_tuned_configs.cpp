//===- bench_table5_tuned_configs.cpp - Regenerates Table 5 -------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 5 of the paper: for every Table 3 stencil, on V100 and P100, float
/// and double — the best configuration (bT, bS, hSN, register cap) found by
/// the Section 6.3 tuning flow, the simulated "Tuned" measurement and the
/// model prediction in GFLOP/s.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

using namespace an5d;
using namespace an5d::bench;

namespace {

std::string bsString(const BlockConfig &C) {
  std::string Out;
  for (std::size_t I = 0; I < C.BS.size(); ++I) {
    if (I != 0)
      Out += 'x';
    Out += std::to_string(C.BS[I]);
  }
  return Out;
}

} // namespace

int main() {
  printBanner("Table 5: AN5D Configuration and Performance "
              "(Tuned & Model in GFLOP/s)");

  for (const GpuSpec &Spec : {GpuSpec::teslaV100(), GpuSpec::teslaP100()}) {
    for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
      std::printf("--- %s (%s) ---\n", Spec.Name.c_str(),
                  scalarTypeName(Type));
      Table T({"pattern", "bT", "bS", "hSN", "Regs", "Tuned", "Model",
               "accuracy"});
      Tuner Tune(Spec);
      for (const std::string &Name : benchmarkStencilNames()) {
        auto P = makeBenchmarkStencil(Name, Type);
        ProblemSize Problem = ProblemSize::paperDefault(P->numDims());
        TuneOutcome Outcome = Tune.tune(*P, Problem);
        if (!Outcome.Feasible) {
          T.addRow({Name, "-", "-", "-", "-", "-", "-", "-"});
          continue;
        }
        const BlockConfig &C = Outcome.Best;
        T.addRow({Name, std::to_string(C.BT), bsString(C),
                  C.HS > 0 ? std::to_string(C.HS) : "off",
                  C.RegisterCap > 0 ? std::to_string(C.RegisterCap) : "-",
                  formatDouble(Outcome.BestMeasured.MeasuredGflops, 0),
                  formatDouble(Outcome.BestMeasured.Model.Gflops, 0),
                  formatDouble(100 * Outcome.BestMeasured.modelAccuracy(),
                               0) +
                      "%"});
      }
      T.print();
    }
  }

  std::printf(
      "Shape checks vs the paper: first-order 2D stencils tune to high bT\n"
      "(8-16); 3D star stencils to bT 2-5; high-order 3D box stencils to\n"
      "bT 1; model accuracy is higher on V100 than P100 and drops for\n"
      "double-precision stencils that divide by a constant.\n");
  return 0;
}
