//===- bench_analysis_passes.cpp - Static analysis pipeline cost --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Google-benchmark timings of the static analysis pipeline
/// (analysis/passes/): one full standardPipeline() run over a lowered
/// schedule, and the tuner-gate workload — analyzing every enumerated
/// feasible configuration of a stencil, the exact set the pre-JIT gate
/// walks on each tune. The per-candidate cost bounds how much static
/// checking a tuning session can afford before it starts competing with
/// the measured sweep itself; tools/bench_emulator.sh dumps the results
/// to BENCH_analysis.json to track the trajectory PR over PR.
///
/// Lowering is done in setup (it is the scheduler's cost, benched
/// elsewhere); the timed region is analysis only. Every analyzed
/// schedule must come back clean — a non-zero error count aborts the
/// bench rather than recording the cost of a broken pipeline.
///
//===----------------------------------------------------------------------===//

#include "analysis/passes/AnalysisPass.h"
#include "schedule/ScheduleIR.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace an5d;

namespace {

/// Pre-lowered analysis workload for one stencil: the program plus every
/// feasible enumerated schedule (what the tuner's pre-JIT gate walks).
struct Workload {
  std::unique_ptr<StencilProgram> Program;
  std::vector<ScheduleIR> Schedules;
};

Workload makeWorkload(const std::string &Name) {
  Workload W;
  W.Program = makeBenchmarkStencil(Name, ScalarType::Float);
  Tuner T(GpuSpec::teslaV100());
  for (const BlockConfig &Config : T.enumerateConfigs(*W.Program)) {
    if (!Config.isFeasible(W.Program->radius()))
      continue;
    W.Schedules.push_back(lowerSchedule(*W.Program, Config));
  }
  if (W.Schedules.empty()) {
    std::fprintf(stderr, "bench_analysis_passes: no feasible config for %s\n",
                 Name.c_str());
    std::abort();
  }
  return W;
}

void requireClean(const AnalysisReport &Report, const std::string &Name) {
  if (Report.errorCount() == 0)
    return;
  std::fprintf(stderr, "bench_analysis_passes: %s analyzed dirty:\n%s\n",
               Name.c_str(), Report.toString().c_str());
  std::abort();
}

/// One standardPipeline() run over the stencil's first feasible schedule:
/// the an5dc --analyze hot path.
void runPipelineBench(benchmark::State &State, const std::string &Name) {
  Workload W = makeWorkload(Name);
  AnalysisPassManager Manager = AnalysisPassManager::standardPipeline();
  AnalysisInput Input;
  Input.Program = W.Program.get();
  Input.Schedule = &W.Schedules.front();

  std::size_t Findings = 0;
  for (auto _ : State) {
    AnalysisReport Report = Manager.run(Input);
    requireClean(Report, Name);
    Findings = Report.Findings.size();
    benchmark::DoNotOptimize(Report.Findings.data());
  }

  State.SetItemsProcessed(State.iterations());
  State.counters["findings"] =
      benchmark::Counter(static_cast<double>(Findings));
}

/// The tuner-gate workload: every enumerated feasible configuration of
/// the stencil analyzed back to back. items/s is candidates per second.
void runSweepGateBench(benchmark::State &State, const std::string &Name) {
  Workload W = makeWorkload(Name);
  AnalysisPassManager Manager = AnalysisPassManager::standardPipeline();

  for (auto _ : State) {
    for (const ScheduleIR &IR : W.Schedules) {
      AnalysisInput Input;
      Input.Program = W.Program.get();
      Input.Schedule = &IR;
      AnalysisReport Report = Manager.run(Input);
      requireClean(Report, Name);
      benchmark::DoNotOptimize(Report.Findings.data());
    }
  }

  State.SetItemsProcessed(State.iterations() *
                          static_cast<long long>(W.Schedules.size()));
  State.counters["candidates"] =
      benchmark::Counter(static_cast<double>(W.Schedules.size()));
}

void registerBenches() {
  // One stencil per shape class: 1D streaming, 2D star/box/Jacobi, 3D
  // star — the same roster the tuner-throughput bench samples.
  static const char *Names[] = {"star1d1r", "star2d1r", "box2d2r", "j2d5pt",
                                "star3d2r"};
  for (const char *Name : Names) {
    benchmark::RegisterBenchmark(
        ("BM_AnalysisPipeline/" + std::string(Name)).c_str(),
        [Name](benchmark::State &State) { runPipelineBench(State, Name); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_AnalysisSweepGate/" + std::string(Name)).c_str(),
        [Name](benchmark::State &State) { runSweepGateBench(State, Name); })
        ->Unit(benchmark::kMillisecond);
  }
}

} // namespace

int main(int argc, char **argv) {
  registerBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
