//===- bench_fig8_bt_scaling.cpp - Regenerates Fig. 8 -------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 8 of the paper: performance scaling with the temporal blocking
/// degree bT on Tesla V100 (float, rad=1), for 2D (bT 1..16) and 3D
/// (bT 1..8) star and box stencils. Spatial parameters stay fixed at the
/// tuned values while the register cap is re-tuned per bT, exactly as in
/// the paper. Both the simulated measurement ("Tuned") and the model
/// series are printed.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

using namespace an5d;
using namespace an5d::bench;

namespace {

void sweep(const StencilProgram &Program, const GpuSpec &Spec, int MaxBt) {
  ProblemSize Problem = ProblemSize::paperDefault(Program.numDims());
  Tuner T(Spec);
  TuneOutcome Base = T.tune(Program, Problem);
  if (!Base.Feasible) {
    std::printf("  (no feasible configuration)\n");
    return;
  }

  Table Tab({"bT", "Tuned (GFLOP/s)", "Model (GFLOP/s)", "bound",
             "blocks/SM", "redundant %"});
  double BestMeasured = 0;
  int BestBt = 0;
  for (int BT = 1; BT <= MaxBt; ++BT) {
    BlockConfig Config = Base.Best;
    Config.BT = BT;
    // Re-tune only the register cap, as the paper does for this figure.
    MeasuredResult Best;
    for (int Cap : {0, 32, 64, 96}) {
      Config.RegisterCap = Cap;
      MeasuredResult R = simulateMeasured(Program, Spec, Config, Problem);
      if (R.Feasible &&
          (!Best.Feasible || R.MeasuredGflops > Best.MeasuredGflops))
        Best = R;
    }
    if (!Best.Feasible) {
      Tab.addRow({std::to_string(BT), "-", "-", "-", "-", "-"});
      continue;
    }
    if (Best.MeasuredGflops > BestMeasured) {
      BestMeasured = Best.MeasuredGflops;
      BestBt = BT;
    }
    long long Useful = Problem.cellCount() * BT;
    double Redundant =
        100.0 *
        static_cast<double>(
            Best.Model.CensusPerInvocation.redundantComputeOps(Useful)) /
        static_cast<double>(Best.Model.CensusPerInvocation.ComputeOps);
    Tab.addRow({std::to_string(BT),
                formatDouble(Best.MeasuredGflops, 0),
                formatDouble(Best.Model.Gflops, 0),
                bottleneckName(Best.Model.Limit),
                std::to_string(Best.Model.ConcurrentBlocksPerSm),
                formatDouble(Redundant, 1)});
  }
  Tab.print();
  std::printf("  peak at bT = %d (%.0f GFLOP/s)\n\n", BestBt, BestMeasured);
}

} // namespace

int main() {
  printBanner("Fig. 8: Scaling with degree of temporal blocking "
              "(Tesla V100, float, rad=1)");
  GpuSpec V100 = GpuSpec::teslaV100();

  std::printf("2D star (bT in 1..16):\n");
  sweep(*makeStarStencil(2, 1, ScalarType::Float), V100, 16);
  std::printf("2D box (bT in 1..16):\n");
  sweep(*makeBoxStencil(2, 1, ScalarType::Float), V100, 16);
  std::printf("3D star (bT in 1..8):\n");
  sweep(*makeStarStencil(3, 1, ScalarType::Float), V100, 8);
  std::printf("3D box (bT in 1..8):\n");
  sweep(*makeBoxStencil(3, 1, ScalarType::Float), V100, 8);

  std::printf(
      "Shape checks vs the paper: 2D performance scales to bT ~ 10, 3D star\n"
      "to bT ~ 5, 3D box to bT ~ 3; beyond the peak, halo redundancy and\n"
      "shrinking occupancy flatten and then reverse the curve.\n");
  return 0;
}
