//===- bench_table1_smem_footprint.cpp - Regenerates Table 1 -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 1 of the paper: shared-memory footprint per block and stores per
/// cell, STENCILGEN vs AN5D, per optimization class — evaluated both as
/// formulas and on concrete stencils across temporal degrees to show where
/// double buffering starts winning.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "model/SharedMemoryModel.h"
#include "stencils/Benchmarks.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Table 1: Comparison to STENCILGEN (shared memory use)");

  std::printf("Symbolic footprints per block (nword bytes per word):\n"
              "  diagonal-access free / associative:\n"
              "    STENCILGEN: nthr * bT * nword     AN5D: 2 * nthr * "
              "nword\n"
              "  otherwise:\n"
              "    STENCILGEN: nthr * bT * (1+2*rad) * nword\n"
              "    AN5D:       2 * nthr * (1+2*rad) * nword\n\n");

  Table T({"stencil", "class", "nthr", "bT", "STENCILGEN (B)", "AN5D (B)",
           "AN5D wins?", "stores/cell"});

  struct Case {
    const char *Name;
    long long Threads;
  };
  for (const Case &C : {Case{"star2d1r", 256}, Case{"j2d9pt-gol", 256},
                        Case{"box3d2r", 512}, Case{"star3d1r", 1024}}) {
    auto P = makeBenchmarkStencil(C.Name, ScalarType::Float);
    for (int BT : {1, 2, 4, 8, 10}) {
      long long Sg = stencilgenSmemBytesPerBlock(*P, C.Threads, BT);
      long long An = an5dSmemBytesPerBlock(*P, C.Threads);
      T.addRow({C.Name, optimizationClassName(P->optimizationClass()),
                std::to_string(C.Threads), std::to_string(BT),
                std::to_string(Sg), std::to_string(An),
                An < Sg ? "yes" : (An == Sg ? "tie" : "no"),
                std::to_string(smemStoresPerCell(*P))});
    }
  }
  T.print();

  std::printf("Shape check: AN5D's double buffering is independent of bT, so "
              "it wins for\nevery bT > 2 — exactly the regime that enables "
              "high-degree temporal blocking.\n");
  return 0;
}
