//===- bench_fig7_register_usage.cpp - Regenerates Fig. 7 --------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 7 of the paper: registers per thread with no register limitation
/// (float, Sconf configuration bT=4), STENCILGEN vs AN5D, plus the
/// 32-register spilling check of Section 7.1.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "baselines/Baselines.h"
#include "model/RegisterModel.h"
#include "stencils/Benchmarks.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Fig. 7: Register usage with no register limitation (float, "
              "bT=4)");

  const char *Stencils[] = {"j2d5pt",     "j2d9pt",   "j2d9pt-gol",
                            "gradient2d", "star3d1r", "star3d2r",
                            "j3d27pt"};

  Table T({"stencil", "STENCILGEN regs", "AN5D regs", "AN5D fewer?",
           "spills @32 (SG)", "spills @32 (AN5D)"});
  double SgTotal = 0, AnTotal = 0;
  for (const char *Name : Stencils) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    int Sg = stencilgenRegisterUsage(*P);
    int An = an5dRegistersPerThread(*P, 4);
    SgTotal += Sg;
    AnTotal += An;
    T.addRow({Name, std::to_string(Sg), std::to_string(An),
              An < Sg ? "yes" : "no",
              stencilgenHardFloorRegisters(*P, 4) > 32 ? "spills" : "fits",
              an5dHardFloorRegisters(*P, 4) > 32 ? "spills" : "fits"});
  }
  T.print();

  std::printf("Average registers/thread: STENCILGEN %.1f, AN5D %.1f\n",
              SgTotal / std::size(Stencils), AnTotal / std::size(Stencils));
  std::printf(
      "Shape checks vs the paper: AN5D uses fewer registers on average even\n"
      "though it dedicates bT extra registers to sub-plane management, and\n"
      "under a 32-register cap the second-order stencils (j2d9pt, star3d2r)\n"
      "spill only for STENCILGEN.\n");
  return 0;
}
