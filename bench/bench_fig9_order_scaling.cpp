//===- bench_fig9_order_scaling.cpp - Regenerates Fig. 9 ----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig. 9 of the paper: performance of the synthetic star/box stencils from
/// first to fourth order on Tesla V100 (float and double), each annotated
/// with the temporal degree the tuner picked — showing that first-order
/// stencils want high degrees while high-order 3D box stencils fall back to
/// bT = 1.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

using namespace an5d;
using namespace an5d::bench;

int main() {
  printBanner("Fig. 9: Star/box stencils, order 1-4 (Tesla V100)");
  GpuSpec V100 = GpuSpec::teslaV100();
  Tuner T(V100);

  for (ScalarType Type : {ScalarType::Float, ScalarType::Double}) {
    std::printf("--- %s ---\n", scalarTypeName(Type));
    Table Tab({"stencil", "order", "best bT", "Tuned (GFLOP/s)",
               "Model (GFLOP/s)", "GCell/s"});
    for (int Dims : {2, 3}) {
      for (bool Box : {false, true}) {
        for (int Order = 1; Order <= 4; ++Order) {
          auto P = Box ? makeBoxStencil(Dims, Order, Type)
                       : makeStarStencil(Dims, Order, Type);
          ProblemSize Problem = ProblemSize::paperDefault(Dims);
          TuneOutcome Outcome = T.tune(*P, Problem);
          if (!Outcome.Feasible) {
            Tab.addRow({P->name(), std::to_string(Order), "-", "-", "-",
                        "-"});
            continue;
          }
          double GcellPerSec = Outcome.BestMeasured.MeasuredGflops /
                               static_cast<double>(
                                   P->flopsPerCell().total());
          Tab.addRow({P->name(), std::to_string(Order),
                      std::to_string(Outcome.Best.BT),
                      formatDouble(Outcome.BestMeasured.MeasuredGflops, 0),
                      formatDouble(Outcome.BestMeasured.Model.Gflops, 0),
                      formatDouble(GcellPerSec, 1)});
        }
      }
    }
    Tab.print();
  }

  std::printf(
      "Shape checks vs the paper: first-order stencils tune to high degrees\n"
      "(2D: 8-15, 3D: 3-5); most others still prefer bT >= 2; high-order 3D\n"
      "box stencils drop to bT = 1 yet keep high absolute GFLOP/s thanks to\n"
      "their large per-cell arithmetic.\n");
  return 0;
}
