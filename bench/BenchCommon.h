//===- BenchCommon.h - Shared helpers for the table/figure benches -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small fixed-width table printer shared by the bench binaries that
/// regenerate the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_BENCH_BENCHCOMMON_H
#define AN5D_BENCH_BENCHCOMMON_H

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace an5d {
namespace bench {

/// Prints a separator + centered title banner.
inline void printBanner(const std::string &Title) {
  std::string Bar(78, '=');
  std::printf("%s\n%s\n%s\n", Bar.c_str(), Title.c_str(), Bar.c_str());
}

/// A fixed-width table: set headers, add rows, print.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {
    for (const std::string &H : this->Headers)
      Widths.push_back(H.size());
  }

  void addRow(std::vector<std::string> Row) {
    while (Row.size() < Headers.size())
      Row.push_back("");
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
    Rows.push_back(std::move(Row));
  }

  void print() const {
    printRow(Headers);
    std::string Rule;
    for (std::size_t W : Widths) {
      Rule += std::string(W, '-');
      Rule += "  ";
    }
    std::printf("%s\n", Rule.c_str());
    for (const auto &Row : Rows)
      printRow(Row);
    std::printf("\n");
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::size_t> Widths;

  void printRow(const std::vector<std::string> &Row) const {
    std::string Line;
    for (std::size_t I = 0; I < Row.size(); ++I) {
      Line += padRight(Row[I], Widths[I]);
      Line += "  ";
    }
    std::printf("%s\n", Line.c_str());
  }
};

/// GFLOP/s rendered with no decimals, or "-" when infeasible.
inline std::string gflopsCell(bool Feasible, double Gflops) {
  if (!Feasible)
    return "-";
  return formatDouble(Gflops, 0);
}

} // namespace bench
} // namespace an5d

#endif // AN5D_BENCH_BENCHCOMMON_H
