//===- bench_ablation_design_choices.cpp - Ablations of Section 4.2 -----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablation study of AN5D's individual design choices (not a single paper
/// figure; quantifies the Section 4.2 claims one by one):
///
///  A. Shared-memory double buffering vs STENCILGEN-style multi-buffering:
///     footprint -> concurrent blocks/SM as bT grows.
///  B. Fixed vs shifting register allocation: registers/thread and the
///     occupancy they allow.
///  C. Division of the streaming dimension: thread-block count, redundant
///     work and simulated performance with hSN off/128/256.
///  D. Register cap (-maxrregcount) sweep at the tuned configuration.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "model/ThreadCensus.h"
#include "sim/MeasuredSimulator.h"
#include "stencils/Benchmarks.h"
#include "tuning/Tuner.h"

using namespace an5d;
using namespace an5d::bench;

static void ablationDoubleBuffering(const GpuSpec &Spec) {
  std::printf("A. Double buffering (Section 4.2.2): concurrent blocks/SM "
              "under the\n   shared-memory limit alone (star2d1r float, "
              "nthr=256, %d KiB/SM)\n\n",
              Spec.SharedMemPerSmBytes / 1024);
  auto P = makeStarStencil(2, 1, ScalarType::Float);
  Table T({"bT", "multi-buffer bytes", "blocks/SM", "double-buffer bytes",
           "blocks/SM", "gain"});
  for (int BT : {2, 4, 6, 8, 10, 12, 16}) {
    long long Multi = stencilgenSmemBytesPerBlock(*P, 256, BT);
    long long Double = an5dSmemBytesPerBlock(*P, 256);
    long long BlocksMulti = Spec.SharedMemPerSmBytes / Multi;
    long long BlocksDouble = Spec.SharedMemPerSmBytes / Double;
    T.addRow({std::to_string(BT), std::to_string(Multi),
              std::to_string(BlocksMulti), std::to_string(Double),
              std::to_string(BlocksDouble),
              formatDouble(static_cast<double>(BlocksDouble) /
                               static_cast<double>(BlocksMulti),
                           1) +
                  "x"});
  }
  T.print();
}

static void ablationRegisterAllocation() {
  std::printf("B. Fixed vs shifting register allocation (Section 4.2.1): "
              "registers per\n   thread at bT=4 (float)\n\n");
  Table T({"stencil", "shifting (STENCILGEN)", "fixed (AN5D)", "saved"});
  for (const char *Name : {"star2d1r", "j2d9pt", "star3d1r", "box3d2r"}) {
    auto P = makeBenchmarkStencil(Name, ScalarType::Float);
    int Shifting = stencilgenRegistersPerThread(*P, 4);
    int Fixed = an5dRegistersPerThread(*P, 4);
    T.addRow({Name, std::to_string(Shifting), std::to_string(Fixed),
              std::to_string(Shifting - Fixed)});
  }
  T.print();
}

static void ablationStreamDivision(const GpuSpec &Spec) {
  std::printf("C. Division of the streaming dimension (Section 4.2.3): "
              "star3d1r float,\n   bT=4, bS=32x32\n\n");
  auto P = makeStarStencil(3, 1, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(3);
  Table T({"hSN", "thread-blocks", "redundant compute %", "simulated "
           "GFLOP/s"});
  for (int HS : {0, 256, 128, 64}) {
    BlockConfig Config;
    Config.BT = 4;
    Config.BS = {32, 32};
    Config.HS = HS;
    MeasuredResult R = simulateMeasured(*P, Spec, Config, Problem);
    if (!R.Feasible) {
      T.addRow({HS > 0 ? std::to_string(HS) : "off", "-", "-", "-"});
      continue;
    }
    const ThreadCensus &Census = R.Model.CensusPerInvocation;
    long long Useful = Problem.cellCount() * Config.BT;
    T.addRow({HS > 0 ? std::to_string(HS) : "off",
              std::to_string(Census.NumThreadBlocks),
              formatDouble(100.0 *
                               static_cast<double>(
                                   Census.redundantComputeOps(Useful)) /
                               static_cast<double>(Census.ComputeOps),
                           1),
              formatDouble(R.MeasuredGflops, 0)});
  }
  T.print();
  std::printf("   The division buys thread-block-level parallelism for a "
              "minor amount of\n   extra redundancy, exactly the Section "
              "4.2.3 trade-off.\n\n");
}

static void ablationRegisterCap(const GpuSpec &Spec) {
  std::printf("D. Register cap sweep (Section 6.3): star2d2r float at its "
              "tuned spatial\n   parameters\n\n");
  auto P = makeStarStencil(2, 2, ScalarType::Float);
  ProblemSize Problem = ProblemSize::paperDefault(2);
  Tuner T(Spec);
  TuneOutcome Outcome = T.tune(*P, Problem);
  if (!Outcome.Feasible) {
    std::printf("   (no feasible configuration)\n");
    return;
  }
  Table Tab({"cap", "min regs needed", "blocks/SM", "simulated GFLOP/s"});
  for (int Cap : {0, 32, 64, 96}) {
    BlockConfig Config = Outcome.Best;
    Config.RegisterCap = Cap;
    MeasuredResult R = simulateMeasured(*P, Spec, Config, Problem);
    Tab.addRow({Cap > 0 ? std::to_string(Cap) : "none",
                std::to_string(an5dRegistersPerThread(*P, Config.BT)),
                R.Feasible ? std::to_string(R.Model.ConcurrentBlocksPerSm)
                           : "spill",
                gflopsCell(R.Feasible, R.MeasuredGflops)});
  }
  Tab.print();
}

int main() {
  printBanner("Ablations: the Section 4.2 design choices in isolation");
  GpuSpec V100 = GpuSpec::teslaV100();
  ablationDoubleBuffering(V100);
  ablationRegisterAllocation();
  ablationStreamDivision(V100);
  ablationRegisterCap(V100);
  return 0;
}
