//===- ReferenceExecutor.h - Naive stencil execution ------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive, trivially correct stencil executor: the literal semantics of
/// the input C loop nest (Fig. 4). It alternates between two buffers per
/// time-step and updates every interior cell from the previous buffer.
/// This is the oracle the blocked N.5D emulator is compared against —
/// because both evaluate cells through the same typed ExprEval, a correct
/// blocked schedule reproduces these results bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_REFERENCEEXECUTOR_H
#define AN5D_SIM_REFERENCEEXECUTOR_H

#include "ir/ExprEval.h"
#include "ir/StencilProgram.h"
#include "sim/Grid.h"

#include <array>

namespace an5d {

/// Updates one interior cell of \p Out at \p Coords from \p In.
template <typename T>
T evalStencilCell(const StencilProgram &Program, const Grid<T> &In,
                  const std::vector<long long> &Coords) {
  std::vector<long long> Neighbor(Coords.size());
  auto Read = [&](const GridReadExpr &R) -> T {
    for (std::size_t D = 0; D < Coords.size(); ++D)
      Neighbor[D] = Coords[D] + R.offsets()[D];
    return In.at(Neighbor);
  };
  auto Coef = [&](const std::string &Name) -> T {
    return static_cast<T>(Program.coefficientValue(Name));
  };
  return evalExpr<T>(Program.update(), Read, Coef);
}

/// Advances \p NumSteps time-steps naively. \p Buffers[0] holds the input
/// at t=0; on return the result of step NumSteps is in
/// Buffers[NumSteps % 2]. Boundary cells are expected to hold identical
/// (constant) values in both buffers and are never written.
template <typename T>
void referenceRun(const StencilProgram &Program,
                  std::array<Grid<T> *, 2> Buffers, long long NumSteps) {
  const std::vector<long long> &Extents = Buffers[0]->extents();
  int NumDims = Buffers[0]->numDims();
  std::vector<long long> Coords(static_cast<std::size_t>(NumDims), 0);

  for (long long Step = 0; Step < NumSteps; ++Step) {
    const Grid<T> &In = *Buffers[Step % 2];
    Grid<T> &Out = *Buffers[(Step + 1) % 2];

    // Odometer walk over the interior cells.
    std::fill(Coords.begin(), Coords.end(), 0);
    while (true) {
      Out.at(Coords) = evalStencilCell(Program, In, Coords);
      int D = NumDims - 1;
      while (D >= 0) {
        if (++Coords[static_cast<std::size_t>(D)] <
            Extents[static_cast<std::size_t>(D)])
          break;
        Coords[static_cast<std::size_t>(D)] = 0;
        --D;
      }
      if (D < 0)
        break;
    }
  }
}

} // namespace an5d

#endif // AN5D_SIM_REFERENCEEXECUTOR_H
