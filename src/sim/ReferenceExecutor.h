//===- ReferenceExecutor.h - Naive stencil execution ------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive, trivially correct stencil executor: the literal semantics of
/// the input C loop nest (Fig. 4). It alternates between two buffers per
/// time-step and updates every interior cell from the previous buffer.
/// This is the oracle the blocked N.5D emulator is compared against.
///
/// Two evaluation engines are available (EvalStrategy in ir/ExprPlan.h):
///
///  * CompiledTape (default): the update expression is lowered once to the
///    flat tape of ExprPlan; each tap's coordinate arithmetic collapses to
///    one pre-linearized flat offset against the grid's strides, and the
///    interior is walked as raw-pointer rows along the innermost
///    dimension — no recursion, name lookups or allocation per cell.
///  * TreeWalk: the recursive evalExpr walk, kept as the bit-for-bit
///    oracle the tape is tested against (tests/ExprPlanTest.cpp).
///
/// Both engines perform identical arithmetic in identical order, so their
/// results — and therefore the blocked emulator's — match bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_REFERENCEEXECUTOR_H
#define AN5D_SIM_REFERENCEEXECUTOR_H

#include "ir/ExprEval.h"
#include "ir/ExprPlan.h"
#include "ir/StencilProgram.h"
#include "sim/Grid.h"

#include <algorithm>
#include <array>

namespace an5d {

/// Updates one interior cell of the grid at \p Coords from \p In through
/// the recursive tree walk (the oracle path; the hot path goes through
/// CompiledTape instead).
template <typename T>
T evalStencilCell(const StencilProgram &Program, const Grid<T> &In,
                  const std::vector<long long> &Coords) {
  std::vector<long long> Neighbor(Coords.size());
  auto Read = [&](const GridReadExpr &R) -> T {
    for (std::size_t D = 0; D < Coords.size(); ++D)
      Neighbor[D] = Coords[D] + R.offsets()[D];
    return In.at(Neighbor);
  };
  auto Coef = [&](const std::string &Name) -> T {
    return static_cast<T>(Program.coefficientValue(Name));
  };
  return evalExpr<T>(Program.update(), Read, Coef);
}

/// Pre-linearizes the plan's taps against \p G's strides: the flat-index
/// delta of each tap relative to the current cell.
template <typename T>
std::vector<long long> linearizeTaps(const ExprPlan &Plan, const Grid<T> &G) {
  std::vector<long long> Offsets(static_cast<std::size_t>(Plan.numTaps()), 0);
  const std::vector<std::vector<int>> &Taps = Plan.taps();
  for (std::size_t K = 0; K < Taps.size(); ++K)
    for (std::size_t D = 0; D < Taps[K].size(); ++D)
      Offsets[K] += static_cast<long long>(Taps[K][D]) *
                    G.stride(static_cast<int>(D));
  return Offsets;
}

/// Advances \p NumSteps time-steps naively. \p Buffers[0] holds the input
/// at t=0; on return the result of step NumSteps is in
/// Buffers[NumSteps % 2]. Boundary cells are expected to hold identical
/// (constant) values in both buffers and are never written.
template <typename T>
void referenceRun(const StencilProgram &Program,
                  std::array<Grid<T> *, 2> Buffers, long long NumSteps,
                  EvalStrategy Strategy = EvalStrategy::CompiledTape) {
  const std::vector<long long> &Extents = Buffers[0]->extents();
  int NumDims = Buffers[0]->numDims();
  std::vector<long long> Coords(static_cast<std::size_t>(NumDims), 0);

  if (Strategy == EvalStrategy::CompiledTape) {
    // Tap offsets and row bases are linearized once against Buffers[0],
    // so the tape path needs both buffers to share one padded layout.
    assert(Buffers[1]->halo() == Buffers[0]->halo() &&
           Buffers[1]->extents() == Extents &&
           "tape evaluation requires identically laid out buffers");
    const ExprPlan &Plan = Program.plan();
    CompiledTape<T> Tape(Plan);
    std::vector<long long> TapOffsets = linearizeTaps(Plan, *Buffers[0]);
    long long RowLength = Extents[static_cast<std::size_t>(NumDims) - 1];

    for (long long Step = 0; Step < NumSteps; ++Step) {
      const Grid<T> &In = *Buffers[Step % 2];
      Grid<T> &Out = *Buffers[(Step + 1) % 2];
      const T *InData = In.data();
      T *OutData = Out.data();

      // Odometer over the outer dimensions; the innermost dimension runs
      // as a contiguous raw-pointer row.
      std::fill(Coords.begin(), Coords.end(), 0);
      while (true) {
        std::size_t Base = In.flattenBase(Coords);
        const T *InRow = InData + Base;
        T *OutRow = OutData + Base;
        for (long long J = 0; J < RowLength; ++J)
          OutRow[J] = Tape.eval(InRow + J, TapOffsets.data());

        int D = NumDims - 2;
        while (D >= 0) {
          if (++Coords[static_cast<std::size_t>(D)] <
              Extents[static_cast<std::size_t>(D)])
            break;
          Coords[static_cast<std::size_t>(D)] = 0;
          --D;
        }
        if (D < 0)
          break;
      }
    }
    return;
  }

  for (long long Step = 0; Step < NumSteps; ++Step) {
    const Grid<T> &In = *Buffers[Step % 2];
    Grid<T> &Out = *Buffers[(Step + 1) % 2];

    // Odometer walk over the interior cells.
    std::fill(Coords.begin(), Coords.end(), 0);
    while (true) {
      Out.at(Coords) = evalStencilCell(Program, In, Coords);
      int D = NumDims - 1;
      while (D >= 0) {
        if (++Coords[static_cast<std::size_t>(D)] <
            Extents[static_cast<std::size_t>(D)])
          break;
        Coords[static_cast<std::size_t>(D)] = 0;
        --D;
      }
      if (D < 0)
        break;
    }
  }
}

} // namespace an5d

#endif // AN5D_SIM_REFERENCEEXECUTOR_H
