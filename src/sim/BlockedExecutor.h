//===- BlockedExecutor.h - Functional N.5D blocking emulation ---*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CPU emulation of the exact execution model AN5D's generated CUDA
/// kernels implement (Section 4.1), rendered from the lowered
/// schedule/ScheduleIR — the executor consumes the same schedule object
/// the codegen backends print and the verifier proves:
///
///  * one thread-block per spatial block of bS lanes (compute region
///    bS - 2*bT*rad plus halo), streaming over dimension 0;
///  * bT computational streams (tiers); tier T at streaming step s
///    processes sub-plane s - T*rad, so each tier lags its producer by one
///    stencil radius;
///  * per tier, a ring of 2*rad+1 sub-planes (the register-held window);
///  * halo lanes overwrite with the previous tier's value (the paper's
///    "original values" rule that avoids branching);
///  * boundary sub-planes and boundary lanes stay pinned to the input's
///    boundary conditions (the spare-register trick of Section 4.1);
///  * optional division of the streaming dimension into hSN-long chunks
///    with redundant leading/trailing planes (Section 4.2.3);
///  * host-side temporal block scheduling with the parity adjustment of
///    Section 4.3.1.
///
/// Cell evaluation runs through the compiled flat tape of ir/ExprPlan.h by
/// default: each tap collapses to one flat ring offset
/// (slot(plane + tap_stream_offset) * laneCount + tap_lane_offset),
/// re-linearized once per sub-plane and shared by every lane, so the
/// innermost lane loops do no recursion, name resolution or allocation.
/// The recursive evalExpr walk remains selectable
/// (BlockedExecOptions::Strategy = EvalStrategy::TreeWalk) as the
/// bit-for-bit oracle; both engines perform identical arithmetic, so a
/// correct schedule reproduces the naive reference result bit for bit
/// under either — this is the correctness oracle for the whole framework.
///
/// The PoisonHalos option writes quiet NaNs instead of the halo-overwrite
/// values; since halo values must never feed a valid computation, results
/// must still match the reference exactly (failure injection for tests).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_BLOCKEDEXECUTOR_H
#define AN5D_SIM_BLOCKEDEXECUTOR_H

#include "ir/ExprEval.h"
#include "ir/ExprPlan.h"
#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "schedule/ScheduleIR.h"
#include "sim/Grid.h"
#include "sim/TimeBlockScheduler.h"
#include "support/Support.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace an5d {

/// Operation counters filled by the emulator when requested; comparable
/// one-to-one with the analytic ThreadCensus of the performance model
/// (the cross-check lives in tests/CensusCrossCheckTest.cpp).
struct BlockedExecStats {
  long long GmReadOps = 0;  ///< Loads of existing (interior+boundary) cells.
  long long GmWriteOps = 0; ///< Compute-region stores.
  long long ComputeOps = 0; ///< Stencil evaluations, redundancy included.
};

/// Behavioral switches for the blocked emulation.
struct BlockedExecOptions {
  /// Write NaN canaries into halo lanes and out-of-bound loads instead of
  /// the halo-overwrite values. Valid outputs must stay NaN-free.
  bool PoisonHalos = false;

  /// Which evaluation engine cells run through.
  EvalStrategy Strategy = EvalStrategy::CompiledTape;

  /// When set, the emulator accumulates operation counts here.
  BlockedExecStats *Stats = nullptr;
};

/// Emulates AN5D's blocked execution of one stencil.
template <typename T> class BlockedExecutor {
public:
  /// Renders a pre-lowered schedule (callers that already lowered — the
  /// tuner, the sweep — hand the IR down instead of re-lowering).
  BlockedExecutor(const StencilProgram &Program, ScheduleIR Schedule,
                  BlockedExecOptions Options = {})
      : Program(Program), IR(std::move(Schedule)), Options(Options),
        Radius(IR.Radius), RingDepth(static_cast<int>(IR.RingDepth)),
        Tape(Program.plan()) {
    const BlockConfig &Config = IR.Config;
    assert(Config.isFeasible(Radius) && "infeasible block configuration");
    assert(static_cast<int>(Config.BS.size()) == Program.numDims() - 1 &&
           "one block size per non-streaming dimension required");

    // Lane strides depend only on the configured block sizes, so each
    // tap's lane-offset component linearizes once here; only the
    // stream-dimension ring slot varies at run time (per sub-plane).
    int NumBlockedDims = static_cast<int>(Config.BS.size());
    LaneStride.assign(static_cast<std::size_t>(NumBlockedDims), 1);
    {
      long long Stride = 1;
      for (int D = NumBlockedDims - 1; D >= 0; --D) {
        LaneStride[static_cast<std::size_t>(D)] = Stride;
        Stride *= Config.BS[static_cast<std::size_t>(D)];
      }
    }
    const std::vector<std::vector<int>> &Taps = Program.plan().taps();
    TapLane.assign(Taps.size(), 0);
    for (std::size_t K = 0; K < Taps.size(); ++K)
      for (int D = 0; D < NumBlockedDims; ++D)
        TapLane[K] += static_cast<long long>(
                          Taps[K][static_cast<std::size_t>(D) + 1]) *
                      LaneStride[static_cast<std::size_t>(D)];
    TapOffsets.assign(Taps.size(), 0);
  }

  /// Lowers (\p Program, \p Config) through the shared lowerSchedule
  /// entry point and renders the resulting IR.
  BlockedExecutor(const StencilProgram &Program, const BlockConfig &Config,
                  BlockedExecOptions Options = {})
      : BlockedExecutor(Program, lowerSchedule(Program, Config), Options) {}

  /// The lowered schedule this executor renders.
  const ScheduleIR &schedule() const { return IR; }

  /// Advances \p TimeSteps steps. \p Buffers[0] holds the input at t=0; on
  /// return the result is in Buffers[TimeSteps % 2], exactly as the
  /// original double-buffered loop would leave it.
  void run(std::array<Grid<T> *, 2> Buffers, long long TimeSteps) {
    int InputIndex = 0;
    for (int Degree : scheduleTimeBlocks(TimeSteps, IR.Config.BT)) {
      runInvocation(*Buffers[InputIndex], *Buffers[1 - InputIndex], Degree);
      InputIndex = 1 - InputIndex;
    }
  }

  /// Runs exactly one kernel call of \p Degree combined steps (bypasses
  /// the host-side scheduler); used by the census cross-check tests.
  void runKernelOnce(const Grid<T> &In, Grid<T> &Out, int Degree) {
    runInvocation(In, Out, Degree);
  }

private:
  const StencilProgram &Program;
  /// The lowered schedule; every structural quantity the executor uses
  /// (ring depth, compute widths, chunking, tier lags and reaches) is
  /// read from here, never re-derived.
  ScheduleIR IR;
  BlockedExecOptions Options;
  int Radius;
  int RingDepth;
  CompiledTape<T> Tape;
  std::vector<long long> LaneStride;
  /// Per-tap lane-offset component (constant per configuration).
  std::vector<long long> TapLane;
  /// Per-tap flat ring offsets, re-linearized per sub-plane.
  std::vector<long long> TapOffsets;
  /// Per-tier ring buffers, reused (re-zeroed) across blocks.
  std::vector<std::vector<T>> Rings;

  static T poisonValue() {
    return std::numeric_limits<T>::quiet_NaN();
  }

  /// One kernel call: one temporal block of \p Degree steps over the whole
  /// grid, reading \p In and writing \p Out. The per-degree plan —
  /// compute widths, block strides, chunk decomposition — comes straight
  /// from the lowered IR.
  void runInvocation(const Grid<T> &In, Grid<T> &Out, int Degree) {
    const InvocationSchedule &Inv = IR.at(Degree);
    const std::vector<long long> &Extents = In.extents();
    long long StreamExtent = Extents[0];
    int NumBlockedDims = static_cast<int>(Inv.BS.size());

    std::vector<long long> NumBlocks(NumBlockedDims);
    for (int D = 0; D < NumBlockedDims; ++D) {
      assert(Inv.ComputeWidth[static_cast<std::size_t>(D)] >= 1 &&
             "degree too large for block size");
      NumBlocks[D] =
          ceilDiv(Extents[static_cast<std::size_t>(D) + 1],
                  Inv.BlockStride[static_cast<std::size_t>(D)]);
    }

    long long ChunkLength =
        Inv.ChunkLength > 0 ? Inv.ChunkLength : StreamExtent;
    long long ChunkStride =
        Inv.ChunkStride > 0 ? Inv.ChunkStride : StreamExtent;
    long long NumChunks = ceilDiv(StreamExtent, ChunkStride);

    Rings.resize(static_cast<std::size_t>(Degree));

    // Iterate the worksharing decomposition the IR describes: all
    // (chunk, block-tuple) pairs; blocks are independent.
    std::vector<long long> BlockIndex(static_cast<std::size_t>(NumBlockedDims),
                                      0);
    for (long long Chunk = 0; Chunk < NumChunks; ++Chunk) {
      long long ChunkLo = Chunk * ChunkStride;
      long long ChunkHi = std::min(ChunkLo + ChunkLength, StreamExtent);
      std::fill(BlockIndex.begin(), BlockIndex.end(), 0);
      while (true) {
        std::vector<long long> Origins(static_cast<std::size_t>(
            NumBlockedDims));
        for (int D = 0; D < NumBlockedDims; ++D)
          Origins[static_cast<std::size_t>(D)] =
              BlockIndex[static_cast<std::size_t>(D)] *
              Inv.BlockStride[static_cast<std::size_t>(D)];
        runBlock(In, Out, Inv, ChunkLo, ChunkHi, Origins);

        int D = NumBlockedDims - 1;
        while (D >= 0) {
          if (++BlockIndex[static_cast<std::size_t>(D)] < NumBlocks[D])
            break;
          BlockIndex[static_cast<std::size_t>(D)] = 0;
          --D;
        }
        if (D < 0)
          break;
      }
    }
  }

  /// Streams one thread-block through one chunk.
  void runBlock(const Grid<T> &In, Grid<T> &Out,
                const InvocationSchedule &Inv, long long ChunkLo,
                long long ChunkHi, const std::vector<long long> &Origins) {
    if (Options.Strategy == EvalStrategy::CompiledTape)
      runBlockTape(In, Out, Inv, ChunkLo, ChunkHi, Origins);
    else
      runBlockTree(In, Out, Inv, ChunkLo, ChunkHi, Origins);
  }

  /// A maximal run of span positions of one blocked dimension over which
  /// the lane classification (exists / interior / tier-valid) is constant.
  /// Decomposing each dimension into such segments once per block lets the
  /// tape path run branch-free inner loops — no per-lane coordinate
  /// decode, no per-lane predicates.
  struct LaneSeg {
    long long Lo, Hi;
    bool Exists, Interior, Valid;
  };

  /// Classifies span positions [0, \p BS) of a blocked dimension whose
  /// span starts at coordinate \p SpanLo, for a tier with halo reach
  /// \p Reach. \p Extent is the grid's interior extent of that dimension;
  /// [\p OriginLo, OriginLo + Width) its compute region.
  std::vector<LaneSeg> classifySpan(long long BS, long long SpanLo,
                                    long long Extent, long long OriginLo,
                                    long long Width, long long Reach) const {
    auto ToSpan = [&](long long X) {
      return clampTo(X - SpanLo, 0LL, BS);
    };
    long long ExLo = ToSpan(-Radius), ExHi = ToSpan(Extent + Radius);
    long long InLo = ToSpan(0), InHi = ToSpan(Extent);
    long long VaLo = ToSpan(OriginLo - Reach);
    long long VaHi = ToSpan(OriginLo + Width + Reach);
    long long Cuts[8] = {0, BS, ExLo, ExHi, InLo, InHi, VaLo, VaHi};
    std::sort(std::begin(Cuts), std::end(Cuts));
    std::vector<LaneSeg> Segs;
    for (int I = 0; I + 1 < 8; ++I) {
      long long Lo = Cuts[I], Hi = Cuts[I + 1];
      if (Lo >= Hi)
        continue;
      Segs.push_back({Lo, Hi, Lo >= ExLo && Lo < ExHi,
                      Lo >= InLo && Lo < InHi, Lo >= VaLo && Lo < VaHi});
    }
    return Segs;
  }

  /// Segment-decomposed streaming of one thread-block (CompiledTape
  /// strategy). Semantically identical to runBlockTree — the equivalence
  /// suite checks bit-for-bit agreement and identical op census — but
  /// all per-lane work beyond the tape evaluation itself is hoisted:
  /// loads/carries become contiguous row copies and evaluations run over
  /// precomputed lane ranges.
  void runBlockTape(const Grid<T> &In, Grid<T> &Out,
                    const InvocationSchedule &Inv, long long ChunkLo,
                    long long ChunkHi,
                    const std::vector<long long> &Origins) {
    const int Degree = Inv.Degree;
    const std::vector<long long> &ComputeWidth = Inv.ComputeWidth;
    const std::vector<long long> &Extents = In.extents();
    long long StreamExtent = Extents[0];
    int NumBlockedDims = static_cast<int>(Inv.BS.size());
    int Halo = In.halo();
    const T *GridIn = In.data();
    T *GridOut = Out.data();
    const T Fill = Options.PoisonHalos ? poisonValue() : T(0);

    long long LaneCount = 1;
    for (long long B : Inv.BS)
      LaneCount *= B;

    // Normalize to exactly two loop dimensions (outer, inner). Missing
    // blocked dimensions become synthetic size-1 dims whose span is the
    // whole interior, so classifySpan marks them exists/interior/valid
    // everywhere and the loop structure stays uniform. Grid strides are 0
    // for synthetic dims (their only position is 0).
    struct LoopDim {
      long long BS = 1, SpanLo = 0, Extent = 1, Origin = 0, Width = 1;
      long long LaneStrideD = 1, GridStrideD = 0;
    };
    LoopDim Outer, Inner;
    auto BindDim = [&](LoopDim &LD, int BD) {
      LD.BS = Inv.BS[static_cast<std::size_t>(BD)];
      LD.SpanLo = Origins[static_cast<std::size_t>(BD)] - Inv.LoadSpanHalo;
      LD.Extent = Extents[static_cast<std::size_t>(BD) + 1];
      LD.Origin = Origins[static_cast<std::size_t>(BD)];
      LD.Width = ComputeWidth[static_cast<std::size_t>(BD)];
      LD.LaneStrideD = LaneStride[static_cast<std::size_t>(BD)];
      LD.GridStrideD = In.stride(BD + 1);
    };
    if (NumBlockedDims >= 1)
      BindDim(NumBlockedDims == 1 ? Inner : Outer, 0);
    if (NumBlockedDims == 2)
      BindDim(Inner, 1);

    // Per-tier span classification (tier 0 only consumes Exists).
    std::vector<std::vector<LaneSeg>> OuterSegs(
        static_cast<std::size_t>(Degree) + 1);
    std::vector<std::vector<LaneSeg>> InnerSegs(
        static_cast<std::size_t>(Degree) + 1);
    for (int Tier = 0; Tier <= Degree; ++Tier) {
      long long Reach = Tier == 0
                            ? Inv.LoadSpanHalo
                            : Inv.Tiers[static_cast<std::size_t>(Tier) - 1]
                                  .Reach;
      OuterSegs[static_cast<std::size_t>(Tier)] =
          classifySpan(Outer.BS, Outer.SpanLo, Outer.Extent, Outer.Origin,
                       Outer.Width, Reach);
      InnerSegs[static_cast<std::size_t>(Tier)] =
          classifySpan(Inner.BS, Inner.SpanLo, Inner.Extent, Inner.Origin,
                       Inner.Width, Reach);
    }

    // Final-tier store window: interior ∩ compute region, per dimension.
    auto StoreRange = [](const LoopDim &LD) {
      long long Lo = clampTo(std::max(0LL, LD.Origin) - LD.SpanLo, 0LL,
                             LD.BS);
      long long Hi = clampTo(std::min(LD.Extent, LD.Origin + LD.Width) -
                                 LD.SpanLo,
                             0LL, LD.BS);
      return std::pair<long long, long long>(Lo, std::max(Lo, Hi));
    };
    auto [StoreLoOut, StoreHiOut] = StoreRange(Outer);
    auto [StoreLoIn, StoreHiIn] = StoreRange(Inner);

    // Flat-index base of span position (0, 0) in the grid's padded
    // layout, per plane: PlaneBase(P) = (P + Halo) * stride(0) + SpanBase.
    long long SpanBase = (Outer.SpanLo + Halo) * Outer.GridStrideD +
                         (Inner.SpanLo + Halo) * Inner.GridStrideD;
    long long StreamStride = In.stride(0);

    for (auto &Ring : Rings)
      Ring.assign(static_cast<std::size_t>(RingDepth) *
                      static_cast<std::size_t>(LaneCount),
                  T(0));
    auto RingSlot = [&](long long Plane) {
      long long M = Plane % RingDepth;
      return static_cast<std::size_t>(M < 0 ? M + RingDepth : M);
    };
    const std::vector<std::vector<int>> &Taps = Tape.taps();
    auto LinearizeTaps = [&](long long Plane) {
      for (std::size_t K = 0; K < Taps.size(); ++K)
        TapOffsets[K] =
            static_cast<long long>(RingSlot(Plane + Taps[K][0])) * LaneCount +
            TapLane[K];
    };

    long long Tier0Lo = std::max(ChunkLo - Inv.LoadStreamReach,
                                 -static_cast<long long>(Inv.GridHalo));
    long long Tier0Hi = std::min(ChunkHi - 1 + Inv.LoadStreamReach,
                                 StreamExtent - 1 + Inv.GridHalo);

    // Streaming schedule: at step s, tier T processes plane
    // s - StreamLag_T (the IR's per-tier lags). The window opens early
    // enough for the tier-0 preload and closes once the final tier has
    // drained its lag.
    long long SBegin = ChunkLo - Inv.LoadStreamReach;
    long long SEnd = ChunkHi - 1 + Inv.Tiers.back().StreamLag;
    for (long long S = SBegin; S <= SEnd; ++S) {
      // Tier 0: load plane S from global memory into the tier-0 ring.
      if (S >= Tier0Lo && S <= Tier0Hi && Degree >= 1) {
        T *DstRow = Rings[0].data() + RingSlot(S) * LaneCount;
        long long PlaneBase = (S + Halo) * StreamStride + SpanBase;
        for (const LaneSeg &O : OuterSegs[0])
          for (long long P1 = O.Lo; P1 < O.Hi; ++P1) {
            T *Row = DstRow + P1 * Outer.LaneStrideD;
            long long RowBase = PlaneBase + P1 * Outer.GridStrideD;
            for (const LaneSeg &I : InnerSegs[0]) {
              if (O.Exists && I.Exists) {
                for (long long P2 = I.Lo; P2 < I.Hi; ++P2)
                  Row[P2] = GridIn[RowBase + P2];
                if (Options.Stats)
                  Options.Stats->GmReadOps += I.Hi - I.Lo;
              } else {
                std::fill(Row + I.Lo, Row + I.Hi, Fill);
              }
            }
          }
      }

      // Tiers 1..Degree, each with the lag and reach the IR assigns.
      for (const TierSchedule &TS : Inv.Tiers) {
        const int Tier = TS.Tier;
        long long Plane = S - TS.StreamLag;
        long long Reach = TS.Reach;
        long long NeedLo = std::max(ChunkLo - Reach, -Inv.GridHalo);
        long long NeedHi =
            std::min(ChunkHi - 1 + Reach, StreamExtent - 1 + Inv.GridHalo);
        if (Plane < NeedLo || Plane > NeedHi)
          continue;

        std::vector<T> &PrevRing =
            Rings[static_cast<std::size_t>(Tier) - 1];
        const T *PrevData = PrevRing.data();
        bool IsInteriorPlane = Plane >= 0 && Plane < StreamExtent;
        LinearizeTaps(Plane);
        long long PlaneBase = (Plane + Halo) * StreamStride + SpanBase;

        if (Tier < Degree) {
          std::vector<T> &DstRing = Rings[static_cast<std::size_t>(Tier)];
          T *DstRow = DstRing.data() + RingSlot(Plane) * LaneCount;
          const T *CarryRow = PrevData + RingSlot(Plane) * LaneCount;
          for (const LaneSeg &O : OuterSegs[static_cast<std::size_t>(Tier)])
            for (long long P1 = O.Lo; P1 < O.Hi; ++P1) {
              long long RowOff = P1 * Outer.LaneStrideD;
              long long RowBase = PlaneBase + P1 * Outer.GridStrideD;
              for (const LaneSeg &I :
                   InnerSegs[static_cast<std::size_t>(Tier)]) {
                long long Len = I.Hi - I.Lo;
                if (!IsInteriorPlane || !(O.Interior && I.Interior)) {
                  // Boundary sub-planes / boundary lanes stay pinned to
                  // the input's boundary conditions; lanes past the
                  // padded grid are out-of-bound threads. (These refreshes
                  // are not GmReadOps: the census charges boundary values
                  // to the tier-0 load, matching the spare-register trick
                  // of Section 4.1.)
                  if (O.Exists && I.Exists) {
                    for (long long P2 = I.Lo; P2 < I.Hi; ++P2)
                      DstRow[RowOff + P2] = GridIn[RowBase + P2];
                  } else {
                    std::fill(DstRow + RowOff + I.Lo, DstRow + RowOff + I.Hi,
                              Fill);
                  }
                } else if (O.Valid && I.Valid) {
                  for (long long P2 = I.Lo; P2 < I.Hi; ++P2)
                    DstRow[RowOff + P2] =
                        Tape.eval(PrevData + RowOff + P2, TapOffsets.data());
                  if (Options.Stats)
                    Options.Stats->ComputeOps += Len;
                } else if (Options.PoisonHalos) {
                  std::fill(DstRow + RowOff + I.Lo, DstRow + RowOff + I.Hi,
                            poisonValue());
                } else {
                  // Halo overwrite (Section 4.1): carry the previous
                  // tier's value forward.
                  for (long long P2 = I.Lo; P2 < I.Hi; ++P2)
                    DstRow[RowOff + P2] = CarryRow[RowOff + P2];
                }
              }
            }
        } else {
          // Final tier: store the compute region of the chunk's own
          // interior planes straight to global memory.
          if (!IsInteriorPlane || Plane < ChunkLo || Plane >= ChunkHi)
            continue;
          for (long long P1 = StoreLoOut; P1 < StoreHiOut; ++P1) {
            long long RowOff = P1 * Outer.LaneStrideD;
            long long RowBase = PlaneBase + P1 * Outer.GridStrideD;
            for (long long P2 = StoreLoIn; P2 < StoreHiIn; ++P2)
              GridOut[RowBase + P2] =
                  Tape.eval(PrevData + RowOff + P2, TapOffsets.data());
            if (Options.Stats) {
              Options.Stats->ComputeOps += StoreHiIn - StoreLoIn;
              Options.Stats->GmWriteOps += StoreHiIn - StoreLoIn;
            }
          }
        }
      }
    }
  }

  /// Per-lane streaming of one thread-block through the recursive
  /// evalExpr oracle (EvalStrategy::TreeWalk).
  void runBlockTree(const Grid<T> &In, Grid<T> &Out,
                    const InvocationSchedule &Inv, long long ChunkLo,
                    long long ChunkHi,
                    const std::vector<long long> &Origins) {
    const int Degree = Inv.Degree;
    const std::vector<long long> &ComputeWidth = Inv.ComputeWidth;
    const std::vector<long long> &Extents = In.extents();
    long long StreamExtent = Extents[0];
    int NumBlockedDims = static_cast<int>(Inv.BS.size());

    // Lane bookkeeping: lane l decomposes into per-dimension positions
    // within the block span [Origin - LoadSpanHalo, ... + bS).
    long long LaneCount = 1;
    for (long long B : Inv.BS)
      LaneCount *= B;
    std::vector<long long> SpanLo(static_cast<std::size_t>(NumBlockedDims));
    for (int D = 0; D < NumBlockedDims; ++D)
      SpanLo[static_cast<std::size_t>(D)] =
          Origins[static_cast<std::size_t>(D)] - Inv.LoadSpanHalo;

    // Register-window rings for tiers 0..Degree-1, zeroed per block (the
    // vectors keep their capacity across blocks and invocations).
    for (auto &Ring : Rings)
      Ring.assign(static_cast<std::size_t>(RingDepth) *
                      static_cast<std::size_t>(LaneCount),
                  T(0));
    auto RingSlot = [&](long long Plane) {
      long long M = Plane % RingDepth;
      return static_cast<std::size_t>(M < 0 ? M + RingDepth : M);
    };
    auto RingCell = [&](std::vector<T> &Ring, long long Plane,
                        long long Lane) -> T & {
      return Ring[RingSlot(Plane) * static_cast<std::size_t>(LaneCount) +
                  static_cast<std::size_t>(Lane)];
    };

    std::vector<long long> Coords(static_cast<std::size_t>(NumBlockedDims));
    auto DecodeLane = [&](long long Lane) {
      for (int D = 0; D < NumBlockedDims; ++D)
        Coords[static_cast<std::size_t>(D)] =
            SpanLo[static_cast<std::size_t>(D)] +
            (Lane / LaneStride[static_cast<std::size_t>(D)]) %
                Inv.BS[static_cast<std::size_t>(D)];
    };

    auto CellExists = [&](const std::vector<long long> &C) {
      for (int D = 0; D < NumBlockedDims; ++D)
        if (C[static_cast<std::size_t>(D)] < -Radius ||
            C[static_cast<std::size_t>(D)] >=
                Extents[static_cast<std::size_t>(D) + 1] + Radius)
          return false;
      return true;
    };
    auto IsInteriorLane = [&](const std::vector<long long> &C) {
      for (int D = 0; D < NumBlockedDims; ++D)
        if (C[static_cast<std::size_t>(D)] < 0 ||
            C[static_cast<std::size_t>(D)] >=
                Extents[static_cast<std::size_t>(D) + 1])
          return false;
      return true;
    };
    auto InTierValidRegion = [&](const std::vector<long long> &C, int Tier) {
      long long Reach = Inv.Tiers[static_cast<std::size_t>(Tier) - 1].Reach;
      for (int D = 0; D < NumBlockedDims; ++D) {
        long long Lo = Origins[static_cast<std::size_t>(D)] - Reach;
        long long Hi = Origins[static_cast<std::size_t>(D)] +
                       ComputeWidth[static_cast<std::size_t>(D)] + Reach;
        long long X = C[static_cast<std::size_t>(D)];
        if (X < Lo || X >= Hi)
          return false;
      }
      return true;
    };

    std::vector<long long> GridCoords(
        static_cast<std::size_t>(NumBlockedDims) + 1);
    auto ReadInput = [&](long long Plane,
                         const std::vector<long long> &C) -> T {
      GridCoords[0] = Plane;
      for (int D = 0; D < NumBlockedDims; ++D)
        GridCoords[static_cast<std::size_t>(D) + 1] =
            C[static_cast<std::size_t>(D)];
      return In.at(GridCoords);
    };

    // The oracle per-cell evaluation (EvalStrategy::TreeWalk): reads come
    // from the previous tier's ring, shifted by the tap offsets. The tape
    // path reads the very same ring elements through TapOffsets.
    auto EvalCellTree = [&](std::vector<T> &PrevRing, long long Plane,
                            const std::vector<long long> &C) -> T {
      auto Read = [&](const GridReadExpr &R) -> T {
        long long NeighborPlane = Plane + R.offsets()[0];
        long long Lane = 0;
        for (int D = 0; D < NumBlockedDims; ++D) {
          long long X = C[static_cast<std::size_t>(D)] +
                        R.offsets()[static_cast<std::size_t>(D) + 1];
          Lane += (X - SpanLo[static_cast<std::size_t>(D)]) *
                  LaneStride[static_cast<std::size_t>(D)];
        }
        return RingCell(PrevRing, NeighborPlane, Lane);
      };
      auto Coef = [&](const std::string &Name) -> T {
        return static_cast<T>(Program.coefficientValue(Name));
      };
      return evalExpr<T>(Program.update(), Read, Coef);
    };

    // Streaming schedule: at step s, tier T processes plane
    // s - StreamLag_T (the IR's per-tier lags).
    long long SBegin = ChunkLo - Inv.LoadStreamReach;
    long long SEnd = ChunkHi - 1 + Inv.Tiers.back().StreamLag;
    for (long long S = SBegin; S <= SEnd; ++S) {
      // Tier 0: load plane S from global memory into the tier-0 ring.
      {
        long long NeedLo =
            std::max(ChunkLo - Inv.LoadStreamReach, -Inv.GridHalo);
        long long NeedHi = std::min(ChunkHi - 1 + Inv.LoadStreamReach,
                                    StreamExtent - 1 + Inv.GridHalo);
        if (S >= NeedLo && S <= NeedHi && Degree >= 1) {
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            T Value;
            if (CellExists(Coords)) {
              Value = ReadInput(S, Coords);
              if (Options.Stats)
                ++Options.Stats->GmReadOps;
            } else {
              Value = Options.PoisonHalos ? poisonValue() : T(0);
            }
            RingCell(Rings[0], S, Lane) = Value;
          }
        }
      }

      // Tiers 1..Degree, each with the lag and reach the IR assigns.
      for (const TierSchedule &TS : Inv.Tiers) {
        const int Tier = TS.Tier;
        long long Plane = S - TS.StreamLag;
        long long Reach = TS.Reach;
        long long NeedLo = std::max(ChunkLo - Reach, -Inv.GridHalo);
        long long NeedHi =
            std::min(ChunkHi - 1 + Reach, StreamExtent - 1 + Inv.GridHalo);
        if (Plane < NeedLo || Plane > NeedHi)
          continue;

        std::vector<T> &PrevRing =
            Rings[static_cast<std::size_t>(Tier) - 1];
        bool IsInteriorPlane = Plane >= 0 && Plane < StreamExtent;

        if (Tier < Degree) {
          std::vector<T> &DstRing = Rings[static_cast<std::size_t>(Tier)];
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            T Value;
            if (!IsInteriorPlane || !IsInteriorLane(Coords)) {
              // Boundary sub-planes / boundary lanes stay pinned to the
              // input's boundary conditions; lanes past the padded grid
              // are out-of-bound threads.
              Value = CellExists(Coords)
                          ? ReadInput(Plane, Coords)
                          : (Options.PoisonHalos ? poisonValue() : T(0));
            } else if (InTierValidRegion(Coords, Tier)) {
              Value = EvalCellTree(PrevRing, Plane, Coords);
              if (Options.Stats)
                ++Options.Stats->ComputeOps;
            } else {
              // Halo overwrite (Section 4.1): carry the previous tier's
              // value forward, or a canary under poisoning.
              Value = Options.PoisonHalos
                          ? poisonValue()
                          : RingCell(PrevRing, Plane, Lane);
            }
            RingCell(DstRing, Plane, Lane) = Value;
          }
        } else {
          // Final tier: store the compute region of the chunk's own
          // interior planes straight to global memory.
          if (!IsInteriorPlane || Plane < ChunkLo || Plane >= ChunkHi)
            continue;
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            if (!IsInteriorLane(Coords))
              continue;
            bool InComputeRegion = true;
            for (int D = 0; D < NumBlockedDims; ++D) {
              long long X = Coords[static_cast<std::size_t>(D)];
              if (X < Origins[static_cast<std::size_t>(D)] ||
                  X >= Origins[static_cast<std::size_t>(D)] +
                           ComputeWidth[static_cast<std::size_t>(D)]) {
                InComputeRegion = false;
                break;
              }
            }
            if (!InComputeRegion)
              continue;
            T Value = EvalCellTree(PrevRing, Plane, Coords);
            if (Options.Stats) {
              ++Options.Stats->ComputeOps;
              ++Options.Stats->GmWriteOps;
            }
            GridCoords[0] = Plane;
            for (int D = 0; D < NumBlockedDims; ++D)
              GridCoords[static_cast<std::size_t>(D) + 1] =
                  Coords[static_cast<std::size_t>(D)];
            Out.at(GridCoords) = Value;
          }
        }
      }
    }
  }
};

/// Convenience wrapper: construct an executor and run it.
template <typename T>
void blockedRun(const StencilProgram &Program, const BlockConfig &Config,
                std::array<Grid<T> *, 2> Buffers, long long TimeSteps,
                BlockedExecOptions Options = {}) {
  BlockedExecutor<T> Executor(Program, Config, Options);
  Executor.run(Buffers, TimeSteps);
}

/// True if any interior cell of \p G is NaN (poison-leak detector).
template <typename T> bool interiorHasNaN(const Grid<T> &G) {
  std::vector<long long> Coords(static_cast<std::size_t>(G.numDims()), 0);
  const std::vector<long long> &Extents = G.extents();
  while (true) {
    if (std::isnan(static_cast<double>(G.at(Coords))))
      return true;
    int D = G.numDims() - 1;
    while (D >= 0) {
      if (++Coords[static_cast<std::size_t>(D)] <
          Extents[static_cast<std::size_t>(D)])
        break;
      Coords[static_cast<std::size_t>(D)] = 0;
      --D;
    }
    if (D < 0)
      return false;
  }
}

} // namespace an5d

#endif // AN5D_SIM_BLOCKEDEXECUTOR_H
