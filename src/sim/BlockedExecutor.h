//===- BlockedExecutor.h - Functional N.5D blocking emulation ---*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CPU emulation of the exact execution model AN5D's generated CUDA
/// kernels implement (Section 4.1):
///
///  * one thread-block per spatial block of bS lanes (compute region
///    bS - 2*bT*rad plus halo), streaming over dimension 0;
///  * bT computational streams (tiers); tier T at streaming step s
///    processes sub-plane s - T*rad, so each tier lags its producer by one
///    stencil radius;
///  * per tier, a ring of 2*rad+1 sub-planes (the register-held window);
///  * halo lanes overwrite with the previous tier's value (the paper's
///    "original values" rule that avoids branching);
///  * boundary sub-planes and boundary lanes stay pinned to the input's
///    boundary conditions (the spare-register trick of Section 4.1);
///  * optional division of the streaming dimension into hSN-long chunks
///    with redundant leading/trailing planes (Section 4.2.3);
///  * host-side temporal block scheduling with the parity adjustment of
///    Section 4.3.1.
///
/// Because every cell evaluates through the same typed ExprEval as the
/// reference executor, a correct schedule reproduces the naive result bit
/// for bit — this is the correctness oracle for the whole framework.
///
/// The PoisonHalos option writes quiet NaNs instead of the halo-overwrite
/// values; since halo values must never feed a valid computation, results
/// must still match the reference exactly (failure injection for tests).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_BLOCKEDEXECUTOR_H
#define AN5D_SIM_BLOCKEDEXECUTOR_H

#include "ir/ExprEval.h"
#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "sim/Grid.h"
#include "sim/TimeBlockScheduler.h"
#include "support/Support.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace an5d {

/// Operation counters filled by the emulator when requested; comparable
/// one-to-one with the analytic ThreadCensus of the performance model
/// (the cross-check lives in tests/CensusCrossCheckTest.cpp).
struct BlockedExecStats {
  long long GmReadOps = 0;  ///< Loads of existing (interior+boundary) cells.
  long long GmWriteOps = 0; ///< Compute-region stores.
  long long ComputeOps = 0; ///< Stencil evaluations, redundancy included.
};

/// Behavioral switches for the blocked emulation.
struct BlockedExecOptions {
  /// Write NaN canaries into halo lanes and out-of-bound loads instead of
  /// the halo-overwrite values. Valid outputs must stay NaN-free.
  bool PoisonHalos = false;

  /// When set, the emulator accumulates operation counts here.
  BlockedExecStats *Stats = nullptr;
};

/// Emulates AN5D's blocked execution of one stencil.
template <typename T> class BlockedExecutor {
public:
  BlockedExecutor(const StencilProgram &Program, const BlockConfig &Config,
                  BlockedExecOptions Options = {})
      : Program(Program), Config(Config), Options(Options),
        Radius(Program.radius()),
        RingDepth(2 * Program.radius() + 1) {
    assert(Config.isFeasible(Radius) && "infeasible block configuration");
    assert(static_cast<int>(Config.BS.size()) == Program.numDims() - 1 &&
           "one block size per non-streaming dimension required");
  }

  /// Advances \p TimeSteps steps. \p Buffers[0] holds the input at t=0; on
  /// return the result is in Buffers[TimeSteps % 2], exactly as the
  /// original double-buffered loop would leave it.
  void run(std::array<Grid<T> *, 2> Buffers, long long TimeSteps) const {
    int InputIndex = 0;
    for (int Degree : scheduleTimeBlocks(TimeSteps, Config.BT)) {
      runInvocation(*Buffers[InputIndex], *Buffers[1 - InputIndex], Degree);
      InputIndex = 1 - InputIndex;
    }
  }

  /// Runs exactly one kernel call of \p Degree combined steps (bypasses
  /// the host-side scheduler); used by the census cross-check tests.
  void runKernelOnce(const Grid<T> &In, Grid<T> &Out, int Degree) const {
    runInvocation(In, Out, Degree);
  }

private:
  const StencilProgram &Program;
  const BlockConfig &Config;
  BlockedExecOptions Options;
  int Radius;
  int RingDepth;

  static T poisonValue() {
    return std::numeric_limits<T>::quiet_NaN();
  }

  /// One kernel call: one temporal block of \p Degree steps over the whole
  /// grid, reading \p In and writing \p Out.
  void runInvocation(const Grid<T> &In, Grid<T> &Out, int Degree) const {
    const std::vector<long long> &Extents = In.extents();
    long long StreamExtent = Extents[0];
    int NumBlockedDims = static_cast<int>(Config.BS.size());

    // Compute-region widths for this invocation's degree.
    std::vector<long long> ComputeWidth(NumBlockedDims);
    std::vector<long long> NumBlocks(NumBlockedDims);
    for (int D = 0; D < NumBlockedDims; ++D) {
      ComputeWidth[D] = Config.BS[static_cast<std::size_t>(D)] -
                        2LL * Degree * Radius;
      assert(ComputeWidth[D] >= 1 && "degree too large for block size");
      NumBlocks[D] = ceilDiv(Extents[static_cast<std::size_t>(D) + 1],
                             ComputeWidth[D]);
    }

    long long ChunkLength =
        Config.HS > 0 ? static_cast<long long>(Config.HS) : StreamExtent;
    long long NumChunks = ceilDiv(StreamExtent, ChunkLength);

    // Iterate all (chunk, block-tuple) pairs; blocks are independent.
    std::vector<long long> BlockIndex(static_cast<std::size_t>(NumBlockedDims),
                                      0);
    for (long long Chunk = 0; Chunk < NumChunks; ++Chunk) {
      long long ChunkLo = Chunk * ChunkLength;
      long long ChunkHi = std::min(ChunkLo + ChunkLength, StreamExtent);
      std::fill(BlockIndex.begin(), BlockIndex.end(), 0);
      while (true) {
        std::vector<long long> Origins(static_cast<std::size_t>(
            NumBlockedDims));
        for (int D = 0; D < NumBlockedDims; ++D)
          Origins[static_cast<std::size_t>(D)] =
              BlockIndex[static_cast<std::size_t>(D)] * ComputeWidth[D];
        runBlock(In, Out, Degree, ChunkLo, ChunkHi, Origins, ComputeWidth);

        int D = NumBlockedDims - 1;
        while (D >= 0) {
          if (++BlockIndex[static_cast<std::size_t>(D)] < NumBlocks[D])
            break;
          BlockIndex[static_cast<std::size_t>(D)] = 0;
          --D;
        }
        if (D < 0)
          break;
      }
    }
  }

  /// Streams one thread-block through one chunk.
  void runBlock(const Grid<T> &In, Grid<T> &Out, int Degree,
                long long ChunkLo, long long ChunkHi,
                const std::vector<long long> &Origins,
                const std::vector<long long> &ComputeWidth) const {
    const std::vector<long long> &Extents = In.extents();
    long long StreamExtent = Extents[0];
    int NumBlockedDims = static_cast<int>(Config.BS.size());

    // Lane bookkeeping: lane l decomposes into per-dimension positions
    // within the block span [Origin - Degree*rad, ... + bS).
    long long LaneCount = 1;
    for (int B : Config.BS)
      LaneCount *= B;
    std::vector<long long> LaneStride(static_cast<std::size_t>(
        NumBlockedDims));
    {
      long long Stride = 1;
      for (int D = NumBlockedDims - 1; D >= 0; --D) {
        LaneStride[static_cast<std::size_t>(D)] = Stride;
        Stride *= Config.BS[static_cast<std::size_t>(D)];
      }
    }
    std::vector<long long> SpanLo(static_cast<std::size_t>(NumBlockedDims));
    for (int D = 0; D < NumBlockedDims; ++D)
      SpanLo[static_cast<std::size_t>(D)] =
          Origins[static_cast<std::size_t>(D)] -
          static_cast<long long>(Degree) * Radius;

    // Register-window rings for tiers 0..Degree-1.
    std::vector<std::vector<T>> Rings(static_cast<std::size_t>(Degree));
    for (auto &Ring : Rings)
      Ring.assign(static_cast<std::size_t>(RingDepth) *
                      static_cast<std::size_t>(LaneCount),
                  T(0));
    auto RingSlot = [&](long long Plane) {
      long long M = Plane % RingDepth;
      return static_cast<std::size_t>(M < 0 ? M + RingDepth : M);
    };
    auto RingCell = [&](std::vector<T> &Ring, long long Plane,
                        long long Lane) -> T & {
      return Ring[RingSlot(Plane) * static_cast<std::size_t>(LaneCount) +
                  static_cast<std::size_t>(Lane)];
    };

    std::vector<long long> Coords(static_cast<std::size_t>(NumBlockedDims));
    auto DecodeLane = [&](long long Lane) {
      for (int D = 0; D < NumBlockedDims; ++D)
        Coords[static_cast<std::size_t>(D)] =
            SpanLo[static_cast<std::size_t>(D)] +
            (Lane / LaneStride[static_cast<std::size_t>(D)]) %
                Config.BS[static_cast<std::size_t>(D)];
    };

    auto CellExists = [&](const std::vector<long long> &C) {
      for (int D = 0; D < NumBlockedDims; ++D)
        if (C[static_cast<std::size_t>(D)] < -Radius ||
            C[static_cast<std::size_t>(D)] >=
                Extents[static_cast<std::size_t>(D) + 1] + Radius)
          return false;
      return true;
    };
    auto IsInteriorLane = [&](const std::vector<long long> &C) {
      for (int D = 0; D < NumBlockedDims; ++D)
        if (C[static_cast<std::size_t>(D)] < 0 ||
            C[static_cast<std::size_t>(D)] >=
                Extents[static_cast<std::size_t>(D) + 1])
          return false;
      return true;
    };
    auto InTierValidRegion = [&](const std::vector<long long> &C, int Tier) {
      long long Reach = static_cast<long long>(Degree - Tier) * Radius;
      for (int D = 0; D < NumBlockedDims; ++D) {
        long long Lo = Origins[static_cast<std::size_t>(D)] - Reach;
        long long Hi = Origins[static_cast<std::size_t>(D)] +
                       ComputeWidth[static_cast<std::size_t>(D)] + Reach;
        long long X = C[static_cast<std::size_t>(D)];
        if (X < Lo || X >= Hi)
          return false;
      }
      return true;
    };

    std::vector<long long> GridCoords(
        static_cast<std::size_t>(NumBlockedDims) + 1);
    auto ReadInput = [&](long long Plane,
                         const std::vector<long long> &C) -> T {
      GridCoords[0] = Plane;
      for (int D = 0; D < NumBlockedDims; ++D)
        GridCoords[static_cast<std::size_t>(D) + 1] =
            C[static_cast<std::size_t>(D)];
      return In.at(GridCoords);
    };

    // The per-cell evaluation shared by all tiers: reads come from the
    // previous tier's ring, shifted by the tap offsets.
    std::vector<long long> NeighborCoords(
        static_cast<std::size_t>(NumBlockedDims));
    auto EvalCell = [&](std::vector<T> &PrevRing, long long Plane,
                        const std::vector<long long> &C) -> T {
      auto Read = [&](const GridReadExpr &R) -> T {
        long long NeighborPlane = Plane + R.offsets()[0];
        long long Lane = 0;
        for (int D = 0; D < NumBlockedDims; ++D) {
          long long X = C[static_cast<std::size_t>(D)] +
                        R.offsets()[static_cast<std::size_t>(D) + 1];
          Lane += (X - SpanLo[static_cast<std::size_t>(D)]) *
                  LaneStride[static_cast<std::size_t>(D)];
        }
        (void)NeighborCoords;
        return RingCell(PrevRing, NeighborPlane, Lane);
      };
      auto Coef = [&](const std::string &Name) -> T {
        return static_cast<T>(Program.coefficientValue(Name));
      };
      return evalExpr<T>(Program.update(), Read, Coef);
    };

    // Streaming schedule: at step s, tier T processes plane s - T*rad.
    long long SBegin = ChunkLo - static_cast<long long>(Degree) * Radius;
    long long SEnd = ChunkHi - 1 + static_cast<long long>(Degree) * Radius;
    for (long long S = SBegin; S <= SEnd; ++S) {
      // Tier 0: load plane S from global memory into the tier-0 ring.
      {
        long long NeedLo =
            std::max(ChunkLo - static_cast<long long>(Degree) * Radius,
                     -static_cast<long long>(Radius));
        long long NeedHi =
            std::min(ChunkHi - 1 + static_cast<long long>(Degree) * Radius,
                     StreamExtent - 1 + Radius);
        if (S >= NeedLo && S <= NeedHi && Degree >= 1) {
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            T Value;
            if (CellExists(Coords)) {
              Value = ReadInput(S, Coords);
              if (Options.Stats)
                ++Options.Stats->GmReadOps;
            } else {
              Value = Options.PoisonHalos ? poisonValue() : T(0);
            }
            RingCell(Rings[0], S, Lane) = Value;
          }
        }
      }

      // Tiers 1..Degree.
      for (int Tier = 1; Tier <= Degree; ++Tier) {
        long long Plane = S - static_cast<long long>(Tier) * Radius;
        long long Reach = static_cast<long long>(Degree - Tier) * Radius;
        long long NeedLo = std::max(ChunkLo - Reach,
                                    -static_cast<long long>(Radius));
        long long NeedHi =
            std::min(ChunkHi - 1 + Reach, StreamExtent - 1 + Radius);
        if (Plane < NeedLo || Plane > NeedHi)
          continue;

        std::vector<T> &PrevRing =
            Rings[static_cast<std::size_t>(Tier) - 1];
        bool IsInteriorPlane = Plane >= 0 && Plane < StreamExtent;

        if (Tier < Degree) {
          std::vector<T> &DstRing = Rings[static_cast<std::size_t>(Tier)];
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            T Value;
            if (!IsInteriorPlane || !IsInteriorLane(Coords)) {
              // Boundary sub-planes / boundary lanes stay pinned to the
              // input's boundary conditions; lanes past the padded grid
              // are out-of-bound threads.
              Value = CellExists(Coords)
                          ? ReadInput(Plane, Coords)
                          : (Options.PoisonHalos ? poisonValue() : T(0));
            } else if (InTierValidRegion(Coords, Tier)) {
              Value = EvalCell(PrevRing, Plane, Coords);
              if (Options.Stats)
                ++Options.Stats->ComputeOps;
            } else {
              // Halo overwrite (Section 4.1): carry the previous tier's
              // value forward, or a canary under poisoning.
              Value = Options.PoisonHalos
                          ? poisonValue()
                          : RingCell(PrevRing, Plane, Lane);
            }
            RingCell(DstRing, Plane, Lane) = Value;
          }
        } else {
          // Final tier: store the compute region of the chunk's own
          // interior planes straight to global memory.
          if (!IsInteriorPlane || Plane < ChunkLo || Plane >= ChunkHi)
            continue;
          for (long long Lane = 0; Lane < LaneCount; ++Lane) {
            DecodeLane(Lane);
            if (!IsInteriorLane(Coords))
              continue;
            bool InComputeRegion = true;
            for (int D = 0; D < NumBlockedDims; ++D) {
              long long X = Coords[static_cast<std::size_t>(D)];
              if (X < Origins[static_cast<std::size_t>(D)] ||
                  X >= Origins[static_cast<std::size_t>(D)] +
                           ComputeWidth[static_cast<std::size_t>(D)]) {
                InComputeRegion = false;
                break;
              }
            }
            if (!InComputeRegion)
              continue;
            T Value = EvalCell(PrevRing, Plane, Coords);
            if (Options.Stats) {
              ++Options.Stats->ComputeOps;
              ++Options.Stats->GmWriteOps;
            }
            GridCoords[0] = Plane;
            for (int D = 0; D < NumBlockedDims; ++D)
              GridCoords[static_cast<std::size_t>(D) + 1] =
                  Coords[static_cast<std::size_t>(D)];
            Out.at(GridCoords) = Value;
          }
        }
      }
    }
  }
};

/// Convenience wrapper: construct an executor and run it.
template <typename T>
void blockedRun(const StencilProgram &Program, const BlockConfig &Config,
                std::array<Grid<T> *, 2> Buffers, long long TimeSteps,
                BlockedExecOptions Options = {}) {
  BlockedExecutor<T> Executor(Program, Config, Options);
  Executor.run(Buffers, TimeSteps);
}

/// True if any interior cell of \p G is NaN (poison-leak detector).
template <typename T> bool interiorHasNaN(const Grid<T> &G) {
  std::vector<long long> Coords(static_cast<std::size_t>(G.numDims()), 0);
  const std::vector<long long> &Extents = G.extents();
  while (true) {
    if (std::isnan(static_cast<double>(G.at(Coords))))
      return true;
    int D = G.numDims() - 1;
    while (D >= 0) {
      if (++Coords[static_cast<std::size_t>(D)] <
          Extents[static_cast<std::size_t>(D)])
        break;
      Coords[static_cast<std::size_t>(D)] = 0;
      --D;
    }
    if (D < 0)
      return false;
  }
}

} // namespace an5d

#endif // AN5D_SIM_BLOCKEDEXECUTOR_H
