//===- TimeBlockScheduler.cpp - Host-side temporal block schedule -----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/TimeBlockScheduler.h"

#include <cassert>

namespace an5d {

std::vector<int> scheduleTimeBlocks(long long TimeSteps, int BT) {
  assert(TimeSteps >= 0 && "negative time-step count");
  assert(BT >= 1 && "temporal degree must be positive");

  std::vector<int> Degrees;
  long long Full = TimeSteps / BT;
  int Remainder = static_cast<int>(TimeSteps % BT);
  Degrees.assign(static_cast<std::size_t>(Full), BT);
  if (Remainder > 0)
    Degrees.push_back(Remainder);

  // Buffer-parity fix-up: each kernel call flips the double buffer once,
  // so the call count must match TimeSteps mod 2. Splitting any block of
  // degree >= 2 adds one call without changing the step total.
  long long Calls = static_cast<long long>(Degrees.size());
  if ((Calls % 2) != (TimeSteps % 2)) {
    for (std::size_t I = 0; I < Degrees.size(); ++I) {
      if (Degrees[I] >= 2) {
        int High = Degrees[I] - Degrees[I] / 2;
        int Low = Degrees[I] / 2;
        Degrees[I] = High;
        Degrees.insert(Degrees.begin() + static_cast<std::ptrdiff_t>(I) + 1,
                       Low);
        break;
      }
    }
  }

  // The parity mismatch can only arise when some degree is at least 2, so
  // the fix-up above always succeeds.
  assert(((static_cast<long long>(Degrees.size()) % 2) == (TimeSteps % 2)) &&
         "parity fix-up failed");
  return Degrees;
}

std::string
describeTimeBlockScheduleViolation(const std::vector<int> &Degrees,
                                   long long TimeSteps, int BT) {
  long long Sum = 0;
  for (std::size_t I = 0; I < Degrees.size(); ++I) {
    if (Degrees[I] < 1 || Degrees[I] > BT)
      return "host schedule call " + std::to_string(I) + " has degree " +
             std::to_string(Degrees[I]) + " outside [1, " +
             std::to_string(BT) + "]";
    Sum += Degrees[I];
  }
  if (Sum != TimeSteps)
    return "host schedule covers " + std::to_string(Sum) +
           " time-steps instead of " + std::to_string(TimeSteps);
  if ((static_cast<long long>(Degrees.size()) % 2) != (TimeSteps % 2))
    return "host schedule issues " + std::to_string(Degrees.size()) +
           " kernel calls, breaking the buffer parity of " +
           std::to_string(TimeSteps) + " time-steps";
  return std::string();
}

} // namespace an5d
