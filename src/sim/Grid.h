//===- Grid.h - Halo-padded N-dimensional grid ------------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense N-dimensional grid (N = 1..3) with a halo of boundary cells of
/// width \c Halo on every side. Interior cells live at coordinates
/// [0, Extent) per dimension; boundary cells at [-Halo, 0) and
/// [Extent, Extent+Halo) hold the (constant) boundary conditions, matching
/// the input layout of Fig. 4 where loops run 1..I_S over an array with one
/// extra cell per side.
///
/// Dimension 0 is the streaming dimension throughout the project.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_GRID_H
#define AN5D_SIM_GRID_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace an5d {

template <typename T> class Grid {
public:
  /// Constructs a zero-initialized grid with the given interior extents
  /// (streaming dimension first) and halo width.
  Grid(std::vector<long long> Extents, int Halo)
      : Extents(std::move(Extents)), Halo(Halo) {
    assert(!this->Extents.empty() && this->Extents.size() <= 3 &&
           "grids support 1 to 3 dimensions");
    long long Total = 1;
    for (long long E : this->Extents) {
      assert(E >= 1 && "grid extents must be positive");
      PaddedExtents.push_back(E + 2 * Halo);
      Total *= E + 2 * Halo;
    }
    Strides.assign(this->Extents.size(), 1);
    for (int D = static_cast<int>(this->Extents.size()) - 2; D >= 0; --D)
      Strides[D] = Strides[D + 1] * PaddedExtents[D + 1];
    Data.assign(static_cast<std::size_t>(Total), T(0));
  }

  int numDims() const { return static_cast<int>(Extents.size()); }
  int halo() const { return Halo; }
  const std::vector<long long> &extents() const { return Extents; }

  /// Row-major stride (in elements, over the padded layout) of dim \p D.
  /// The innermost dimension has stride 1; a stencil tap's flat offset is
  /// sum over D of offset[D] * stride(D).
  long long stride(int D) const {
    return Strides[static_cast<std::size_t>(D)];
  }

  /// Total cells including the halo ring.
  std::size_t size() const { return Data.size(); }

  /// True if interior coordinate \p C along dim \p D addresses an existing
  /// cell (interior or boundary).
  bool inBounds(int D, long long C) const {
    return C >= -Halo && C < Extents[static_cast<std::size_t>(D)] + Halo;
  }

  /// True if the coordinates address an interior (updated) cell.
  bool isInterior(const std::vector<long long> &Coords) const {
    for (std::size_t D = 0; D < Coords.size(); ++D)
      if (Coords[D] < 0 || Coords[D] >= Extents[D])
        return false;
    return true;
  }

  /// Element access by interior coordinates (boundary cells reachable with
  /// negative / >=Extent coordinates within the halo).
  T &at(const std::vector<long long> &Coords) {
    return Data[flatten(Coords)];
  }
  const T &at(const std::vector<long long> &Coords) const {
    return Data[flatten(Coords)];
  }

  /// Convenience 2D access (streaming coordinate \p I, blocked \p J).
  T &at2(long long I, long long J) {
    assert(numDims() == 2 && "at2 requires a 2D grid");
    return Data[flatten2(I, J)];
  }
  const T &at2(long long I, long long J) const {
    assert(numDims() == 2 && "at2 requires a 2D grid");
    return Data[flatten2(I, J)];
  }

  /// Convenience 3D access.
  T &at3(long long I, long long J, long long K) {
    assert(numDims() == 3 && "at3 requires a 3D grid");
    return Data[flatten3(I, J, K)];
  }
  const T &at3(long long I, long long J, long long K) const {
    assert(numDims() == 3 && "at3 requires a 3D grid");
    return Data[flatten3(I, J, K)];
  }

  /// Flat index of interior coordinate \p Coords — the anchor for
  /// unchecked row walks: data()[flattenBase(Coords) + j] advances along
  /// the innermost dimension, and adding a tap's pre-linearized offset
  /// (see stride()) lands on that neighbor. Bounds are asserted once here
  /// instead of per access in the hot loop.
  std::size_t flattenBase(const std::vector<long long> &Coords) const {
    return flatten(Coords);
  }

  /// Raw element pointers (row-major over the padded extents) for the
  /// compiled-tape executors' unchecked row loops.
  T *data() { return Data.data(); }
  const T *data() const { return Data.data(); }

  /// Raw storage (row-major over padded extents) for whole-grid compares.
  const std::vector<T> &raw() const { return Data; }
  std::vector<T> &raw() { return Data; }

private:
  std::vector<long long> Extents;
  int Halo;
  std::vector<long long> PaddedExtents;
  std::vector<long long> Strides;
  std::vector<T> Data;

  std::size_t flatten(const std::vector<long long> &Coords) const {
    assert(Coords.size() == Extents.size() && "coordinate arity mismatch");
    long long Index = 0;
    for (std::size_t D = 0; D < Coords.size(); ++D) {
      assert(inBounds(static_cast<int>(D), Coords[D]) &&
             "grid access out of padded bounds");
      Index += (Coords[D] + Halo) * Strides[D];
    }
    return static_cast<std::size_t>(Index);
  }

  std::size_t flatten2(long long I, long long J) const {
    assert(inBounds(0, I) && inBounds(1, J) && "grid access out of bounds");
    return static_cast<std::size_t>((I + Halo) * Strides[0] + (J + Halo));
  }

  std::size_t flatten3(long long I, long long J, long long K) const {
    assert(inBounds(0, I) && inBounds(1, J) && inBounds(2, K) &&
           "grid access out of bounds");
    return static_cast<std::size_t>((I + Halo) * Strides[0] +
                                    (J + Halo) * Strides[1] + (K + Halo));
  }
};

/// Deterministically fills \p G (interior and boundary) with values in
/// (0, 1) derived from a linear congruential sequence; \p Seed selects the
/// sequence.
template <typename T> void fillGridDeterministic(Grid<T> &G, std::uint64_t Seed) {
  std::uint64_t State = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (T &Cell : G.raw()) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    // Map the top bits into (0, 1).
    double Unit = static_cast<double>((State >> 11) + 1) /
                  static_cast<double>((1ULL << 53) + 2);
    Cell = static_cast<T>(Unit);
  }
}

/// Copies every cell of \p Src into \p Dst (extents must match).
template <typename T> void copyGrid(const Grid<T> &Src, Grid<T> &Dst) {
  assert(Src.size() == Dst.size() && "grid size mismatch");
  Dst.raw() = Src.raw();
}

} // namespace an5d

#endif // AN5D_SIM_GRID_H
