//===- MeasuredSimulator.cpp - Calibrated measured-performance stand-in -----===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/MeasuredSimulator.h"

#include "ir/ExprPlan.h"
#include "model/RegisterModel.h"

#include <algorithm>

namespace an5d {

const char *measureFailureKindLabel(MeasureFailureKind Kind) {
  switch (Kind) {
  case MeasureFailureKind::None:
    return "";
  case MeasureFailureKind::VerifierRejected:
    return "verifier_rejected";
  case MeasureFailureKind::BuildFailed:
    return "build_failed";
  case MeasureFailureKind::NeverBuilt:
    return "never_built";
  case MeasureFailureKind::RunRejected:
    return "run_rejected";
  }
  return "";
}

std::string measureFailureMetricName(MeasureFailureKind Kind) {
  const char *Label = measureFailureKindLabel(Kind);
  if (!*Label)
    return std::string();
  return std::string("measure.failures.") + Label;
}

/// Slowdown of double-precision constant division relative to the fast-math
/// multiply the model assumes (Section 7.1 reports up to ~2x end-to-end
/// degradation versus same-shaped division-free stencils).
static constexpr double DoubleDivisionPenalty = 5.0;

/// Fraction of peak FMA throughput a real stencil kernel retires once
/// address arithmetic, predication and load/store slots share the issue
/// ports with the FMAs (the paper's compute-bound box stencils reach
/// roughly 60-70% of peak, Section 7.3).
static constexpr double AchievableComputeFraction = 0.72;

/// Per-tier pipeline cost the roofline cannot see: each combined time-step
/// adds a __syncthreads() barrier and one more dependent shared-memory
/// round-trip per sub-plane, so the achieved shared-memory throughput
/// degrades linearly with bT. This is what bends the Fig. 8 curves over
/// after their peak (~bT 10 in 2D) on real hardware.
static constexpr double SyncOverheadPerTier = 0.008;

/// Latency-hiding efficiency as a function of resident blocks per SM: a
/// single resident block cannot fully cover barrier and memory latency;
/// this is why capping registers below NVCC's natural allocation often
/// buys measurable performance (Section 6.3's -maxrregcount finding).
static double occupancyEfficiency(int BlocksPerSm) {
  return std::min(1.0, 0.7 + 0.15 * BlocksPerSm);
}

/// Extra compute-path derating once register pressure approaches the
/// 255-register architectural cap (the box3d3r/box3d4r effect of
/// Section 7.2).
static double registerPressurePenalty(const StencilProgram &Program,
                                      const BlockConfig &Config) {
  int Needed = an5dRegistersPerThread(Program, Config.BT);
  if (Needed <= 120)
    return 1.0;
  return static_cast<double>(Needed) / 120.0;
}

MeasuredResult simulateMeasured(const StencilProgram &Program,
                                const GpuSpec &Spec,
                                const BlockConfig &Config,
                                const ProblemSize &Problem) {
  MeasuredResult Out;
  Out.Model = evaluateModel(Program, Spec, Config, Problem);
  if (!Out.Model.Feasible)
    return Out;

  double TimeSmem = Out.Model.TimeSmem / Spec.SmemKernelEfficiency *
                    (1.0 + SyncOverheadPerTier * Config.BT);

  // The tuner evaluates this for every candidate configuration, so the
  // division predicate comes from the program's compiled plan instead of
  // re-walking the expression tree per call.
  double TimeCompute = Out.Model.TimeCompute / AchievableComputeFraction;
  if (Program.elemType() == ScalarType::Double &&
      Program.plan().hasConstantDivision())
    TimeCompute *= DoubleDivisionPenalty;

  double Slowest =
      std::max({TimeCompute, Out.Model.TimeGmem, TimeSmem});
  double Time = Slowest / Out.Model.EffSm /
                occupancyEfficiency(Out.Model.ConcurrentBlocksPerSm) *
                registerPressurePenalty(Program, Config);

  double UsefulFlops = static_cast<double>(Problem.cellCount()) *
                       static_cast<double>(Problem.TimeSteps) *
                       static_cast<double>(Program.flopsPerCell().total());
  Out.MeasuredTimeSeconds = Time;
  Out.MeasuredGflops = UsefulFlops / Time / 1e9;
  Out.Feasible = true;
  return Out;
}

} // namespace an5d
