//===- TimeBlockScheduler.h - Host-side temporal block schedule -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-side adjustment of Section 4.3.1: AN5D's host code issues one
/// kernel call per temporal block of bT time-steps. Because the input code
/// is double buffered through the t%2 index and each kernel call flips the
/// global buffers exactly once, the schedule must (a) cover exactly IT
/// steps with degrees between 1 and bT, and (b) use a number of kernel
/// calls congruent to IT mod 2 so that the final result lands in buffer
/// IT%2 — the adjustment the paper applies when (IT mod bT) != 0 or
/// ((IT/bT) mod 2) != (bT mod 2).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SIM_TIMEBLOCKSCHEDULER_H
#define AN5D_SIM_TIMEBLOCKSCHEDULER_H

#include <string>
#include <vector>

namespace an5d {

/// Computes the sequence of per-kernel temporal degrees for \p TimeSteps
/// total steps with maximum degree \p BT.
///
/// Postconditions: every degree d satisfies 1 <= d <= BT; the degrees sum
/// to TimeSteps; and the number of kernel calls is congruent to
/// TimeSteps mod 2.
std::vector<int> scheduleTimeBlocks(long long TimeSteps, int BT);

/// Checks the scheduleTimeBlocks postconditions on \p Degrees for
/// (\p TimeSteps, \p BT): degree bounds, step sum, and call-count parity.
/// Returns an empty string when they all hold, otherwise a description of
/// the first broken invariant (LLVM diagnostic style). The schedule
/// verifier uses this to validate host schedules it did not produce.
std::string describeTimeBlockScheduleViolation(const std::vector<int> &Degrees,
                                               long long TimeSteps, int BT);

} // namespace an5d

#endif // AN5D_SIM_TIMEBLOCKSCHEDULER_H
