//===- Baselines.cpp - Comparison frameworks of Section 7 -------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Baselines.h"

#include "ir/ExprAnalysis.h"
#include "model/PerformanceModel.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "model/ThreadCensus.h"
#include "support/StringUtils.h"
#include "support/Support.h"

#include <algorithm>
#include <cmath>

namespace an5d {

/// Useful floating-point work of the whole run.
static double usefulFlops(const StencilProgram &Program,
                          const ProblemSize &Problem) {
  return static_cast<double>(Problem.cellCount()) *
         static_cast<double>(Problem.TimeSteps) *
         static_cast<double>(Program.flopsPerCell().total());
}

/// The double-precision constant-division penalty shared with the AN5D
/// measured simulator (kept equal so Fig. 6 comparisons are fair).
static double divisionPenalty(const StencilProgram &Program) {
  if (Program.elemType() == ScalarType::Double &&
      containsConstantDivision(Program.update()))
    return 5.0;
  return 1.0;
}

//===----------------------------------------------------------------------===//
// STENCILGEN
//===----------------------------------------------------------------------===//

FrameworkResult simulateStencilGen(const StencilProgram &Program,
                                   const GpuSpec &Spec,
                                   const ProblemSize &Problem) {
  FrameworkResult Out;
  Out.Framework = "STENCILGEN";

  // Published kernel parameters: bT = 4, hSN = 128, bS = 32 (2D) / 32x4
  // (3D without streaming division).
  BlockConfig Config;
  Config.BT = 4;
  if (Program.numDims() == 2) {
    Config.BS = {32};
    Config.HS = 128;
  } else {
    Config.BS = {32, 32};
    Config.HS = 0;
  }
  Out.ConfigSummary = Config.toString();
  if (!Config.isFeasible(Program.radius(), Spec.MaxThreadsPerBlock))
    return Out;

  ThreadCensus Census = computeThreadCensus(Program, Config, Problem);
  double Invocations = static_cast<double>(Problem.TimeSteps) / Config.BT;

  double Flops = static_cast<double>(censusFlops(Census, Program)) *
                 Invocations;
  double GmBytes = static_cast<double>(censusGmemBytes(Census, Program)) *
                   Invocations;
  // The shifting register allocation re-stores every sub-plane value
  // 1 + 2*rad times through the register/shared-memory pipeline instead of
  // AN5D's single fixed-register store (Section 4.2.1); model the extra
  // data movement as added shared-memory traffic.
  double ShiftFactor =
      1.0 + 0.5 * static_cast<double>(2 * Program.radius());
  double SmBytes = static_cast<double>(censusSmemBytes(Census, Program)) *
                   Invocations * ShiftFactor;

  double EffAlu = Program.instructionMix().aluEfficiency();
  double TimeComp = Flops / (Spec.peakGflops(Program.elemType()) * 1e9 *
                             EffAlu * 0.72) *
                    divisionPenalty(Program);
  double TimeGm =
      GmBytes / (Spec.measuredGmemGBs(Program.elemType()) * 1e9);
  double TimeSm = SmBytes /
                  (Spec.measuredSmemGBs(Program.elemType()) * 1e9) /
                  Spec.SmemKernelEfficiency * (1.0 + 0.008 * Config.BT);

  // Occupancy under STENCILGEN's multi-buffered footprint and higher
  // register pressure.
  long long Threads = Config.numThreads();
  long long ByThreads = Spec.MaxThreadsPerSm / Threads;
  long long Footprint =
      stencilgenSmemBytesPerBlock(Program, Threads, Config.BT);
  long long BySmem = Spec.SharedMemPerSmBytes / std::max(1LL, Footprint);
  int Regs = stencilgenRegistersPerThread(Program, Config.BT);
  // NVCC clamps allocation so one block launches; the overflow spills to
  // local memory and costs time (the Section 7.1 spilling observation).
  int MaxLaunchable =
      static_cast<int>(Spec.RegistersPerSm / std::max(1LL, Threads));
  double SpillPenalty = 1.0;
  if (Regs > MaxLaunchable) {
    SpillPenalty = static_cast<double>(Regs) / MaxLaunchable;
    Regs = MaxLaunchable;
  }
  long long ByRegs =
      Spec.RegistersPerSm / std::max<long long>(1, Threads * Regs);
  long long BlocksPerSm = std::min({ByThreads, BySmem, ByRegs});
  if (BlocksPerSm < 1)
    return Out;

  double BlocksPerWave =
      static_cast<double>(BlocksPerSm) * Spec.SmCount;
  double Waves = static_cast<double>(Census.NumThreadBlocks) / BlocksPerWave;
  double EffSm = Waves <= 1.0 ? Waves
                 : std::floor(Waves) == std::ceil(Waves)
                     ? 1.0
                     : std::floor(Waves) / std::ceil(Waves);
  if (EffSm <= 0)
    return Out;

  // Same occupancy-based latency-hiding derate as the AN5D simulator.
  double OccEff = std::min(1.0, 0.7 + 0.15 * static_cast<double>(BlocksPerSm));
  double Time =
      std::max({TimeComp, TimeGm, TimeSm}) / EffSm / OccEff * SpillPenalty;
  Out.Gflops = usefulFlops(Program, Problem) / Time / 1e9;
  Out.Feasible = true;
  return Out;
}

int stencilgenRegisterUsage(const StencilProgram &Program) {
  return stencilgenRegistersPerThread(Program, /*BT=*/4);
}

//===----------------------------------------------------------------------===//
// Hybrid hexagonal/classical tiling
//===----------------------------------------------------------------------===//

FrameworkResult simulateHybridTiling(const StencilProgram &Program,
                                     const GpuSpec &Spec,
                                     const ProblemSize &Problem) {
  FrameworkResult Out;
  Out.Framework = "Hybrid Tiling";

  int NumDims = Program.numDims();
  int Rad = Program.radius();
  double EffAlu = Program.instructionMix().aluEfficiency();
  double Useful = usefulFlops(Program, Problem);
  double Cells = static_cast<double>(Problem.cellCount());
  double Steps = static_cast<double>(Problem.TimeSteps);
  int Nword = Program.wordSize();

  // On-chip capacity available to one tile (two buffers resident).
  double CapacityCells = static_cast<double>(Spec.SharedMemPerSmBytes) /
                         (2.0 * Nword);

  // Hexagonal tiling has no redundant computation, but all spatial
  // dimensions are blocked (no streaming), so the wavefront must reload
  // tile faces that grow with the temporal height.
  double SmemReads = static_cast<double>(
      smemReadsPerThreadPractical(Program) + smemWritesPerThread());

  double BestTime = 0;
  std::string BestConfig;
  for (int TimeHeight = 2; TimeHeight <= 20; ++TimeHeight) {
    // Balanced tile shape subject to the capacity limit.
    double Side = std::pow(CapacityCells, 1.0 / NumDims);
    double TileSide = std::min(Side, 512.0);
    if (TileSide < 4 * Rad * TimeHeight)
      continue; // tile too small for this temporal height

    // Halo-to-volume overhead of the wavefront: each face advances by
    // rad per combined step in every blocked dimension.
    double Overhead = 0;
    for (int D = 0; D < NumDims; ++D)
      Overhead += 2.0 * TimeHeight * Rad / TileSide;

    double GmBytes = Cells * Steps / TimeHeight * Nword * 2.0 *
                     (1.0 + Overhead);
    double SmBytes = Cells * Steps * SmemReads * Nword;
    double Flops = Useful; // non-redundant

    double TimeComp = Flops / (Spec.peakGflops(Program.elemType()) * 1e9 *
                               EffAlu * 0.72) *
                      divisionPenalty(Program);
    double TimeGm =
        GmBytes / (Spec.measuredGmemGBs(Program.elemType()) * 1e9);
    // Like AN5D's tiers, every combined step adds a synchronization and a
    // dependent shared-memory round trip.
    double TimeSm = SmBytes /
                    (Spec.measuredSmemGBs(Program.elemType()) * 1e9) /
                    Spec.SmemKernelEfficiency *
                    (1.0 + 0.008 * TimeHeight);

    // Wavefront dependencies between neighboring tiles cost parallelism;
    // the penalty grows with dimensionality since every blocked dimension
    // participates in the wavefront. Hexagonal tiles also fill the entire
    // shared memory, so only one block resides per SM — the same
    // latency-hiding derate the AN5D simulator applies to 1-block
    // configurations.
    double WavefrontEfficiency = NumDims == 2 ? 0.85 : 0.6;
    double SingleBlockOccupancy = 0.85;
    double Time = std::max({TimeComp, TimeGm, TimeSm}) /
                  (WavefrontEfficiency * SingleBlockOccupancy);
    if (BestTime == 0 || Time < BestTime) {
      BestTime = Time;
      BestConfig = "timeHeight=" + std::to_string(TimeHeight) + " tile~" +
                   std::to_string(static_cast<int>(TileSide)) + "^" +
                   std::to_string(NumDims);
    }
  }
  if (BestTime == 0)
    return Out;

  Out.Gflops = Useful / BestTime / 1e9;
  Out.ConfigSummary = BestConfig;
  Out.Feasible = true;
  return Out;
}

//===----------------------------------------------------------------------===//
// PPCG loop tiling
//===----------------------------------------------------------------------===//

FrameworkResult simulateLoopTiling(const StencilProgram &Program,
                                   const GpuSpec &Spec,
                                   const ProblemSize &Problem) {
  FrameworkResult Out;
  Out.Framework = "Loop Tiling";
  Out.ConfigSummary = "PPCG default tile sizes";

  double Useful = usefulFlops(Program, Problem);
  double Cells = static_cast<double>(Problem.cellCount());
  double Steps = static_cast<double>(Problem.TimeSteps);
  int Nword = Program.wordSize();

  // One full read + write of the grid per time-step, plus a cache-miss
  // share of the neighbor taps: PPCG's default (untuned) tile sizes leave
  // a sizable fraction of the halo reads uncovered, more so in 3D where
  // the third dimension thrashes the L1/texture cache.
  double MissRate = Program.numDims() == 2 ? 0.2 : 0.3;
  double Taps = static_cast<double>(Program.taps().size());
  double WordsPerCell = 2.0 + MissRate * (Taps - 1.0);
  double GmBytes = Cells * Steps * Nword * WordsPerCell;

  double EffAlu = Program.instructionMix().aluEfficiency();
  double TimeComp = Useful / (Spec.peakGflops(Program.elemType()) * 1e9 *
                              EffAlu * 0.72) *
                    divisionPenalty(Program);
  double TimeGm = GmBytes / (Spec.measuredGmemGBs(Program.elemType()) * 1e9);

  double Time = std::max(TimeComp, TimeGm);
  Out.Gflops = Useful / Time / 1e9;
  Out.Feasible = true;
  return Out;
}

} // namespace an5d
