//===- Baselines.h - Comparison frameworks of Section 7 ---------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytic performance models of the three comparison points of Fig. 6,
/// built from the paper's own characterization of each framework:
///
/// * STENCILGEN (Rawat et al.): the same N.5D blocking structure as AN5D
///   but with a shifting register allocation and one shared-memory buffer
///   per combined time-step (Table 1), which caps its occupancy and its
///   temporal scaling at bT ~ 4.
/// * Hybrid (hexagonal/classical) tiling: non-redundant temporal blocking
///   that blocks all spatial dimensions (no streaming), so tile sizes are
///   bounded by on-chip memory and the halo-to-volume ratio grows quickly,
///   especially in 3D (Section 3).
/// * PPCG loop tiling: plain spatial blocking, one global-memory round
///   trip per time-step.
///
/// Since this environment has no GPU, each model is passed through the
/// same calibrated "measured" adjustments as AN5D (shared-memory kernel
/// efficiency, double-division penalty) so that Fig. 6's relative
/// comparison is meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_BASELINES_BASELINES_H
#define AN5D_BASELINES_BASELINES_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"

#include <string>

namespace an5d {

/// One framework's simulated result on one benchmark.
struct FrameworkResult {
  std::string Framework;
  bool Feasible = false;
  double Gflops = 0;
  /// Chosen internal configuration, for reporting.
  std::string ConfigSummary;
};

/// STENCILGEN with its published kernel parameters (bT=4, the Sconf block
/// shape).
FrameworkResult simulateStencilGen(const StencilProgram &Program,
                                   const GpuSpec &Spec,
                                   const ProblemSize &Problem);

/// Hybrid hexagonal/classical tiling, parameter-searched over tile shapes
/// and temporal heights as in Section 6.3.
FrameworkResult simulateHybridTiling(const StencilProgram &Program,
                                     const GpuSpec &Spec,
                                     const ProblemSize &Problem);

/// PPCG's default loop tiling (spatial blocking only).
FrameworkResult simulateLoopTiling(const StencilProgram &Program,
                                   const GpuSpec &Spec,
                                   const ProblemSize &Problem);

/// STENCILGEN's register usage for Fig. 7 (no register cap, float).
int stencilgenRegisterUsage(const StencilProgram &Program);

} // namespace an5d

#endif // AN5D_BASELINES_BASELINES_H
