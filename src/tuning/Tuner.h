//===- Tuner.h - Model-guided parameter tuning (Section 6.3) ----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model-guided tuning flow of Section 6.3 in two stages:
///
///  1. Enumerate/prune: walk the parameter grid for the stencil's
///     dimensionality (bT in [1,16] for 1D/2D, [1,8] for 3D; bS in
///     {64,128,256,512} for 2D, {16x16, 32x16, 32x32, 64x16} for 3D, none
///     for 1D pure streaming; hSN in {off,128,256,512,1024} for 1D,
///     {256,512,1024} for 2D, {128,256} for 3D), drop register-infeasible
///     points, and rank the rest with the Section 5 performance model.
///
///  2. Measured sweep: "run" the top-K candidates through the
///     measured-performance simulator with each register cap
///     ({none, 32, 64, 96}), dispatched across a small thread pool
///     (tuning/ParallelSweep.h), and keep the fastest. The sweep is
///     bit-identical for every thread count.
///
/// TuneOptions carries the knobs (top-K, register-cap menu, worker
/// threads) and is threaded through an5dc --tune and
/// examples/tuning_explorer.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_TUNING_TUNER_H
#define AN5D_TUNING_TUNER_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"
#include "model/PerformanceModel.h"
#include "runtime/NativeMeasurement.h"
#include "sim/MeasuredSimulator.h"
#include "tuning/ParallelSweep.h"

#include <cstddef>
#include <vector>

namespace an5d {

/// The ranking key derived from a model score: the GFLOP/s value rounded
/// to float precision (~7 significant digits), so scores that differ only
/// by FP noise compare equal — exactly — and fall through to the field
/// tie-break. Exposed so tests can assert the tie-break with the same
/// predicate the sort uses.
double quantizedModelScore(double Gflops);

/// One model-ranked candidate.
struct RankedConfig {
  BlockConfig Config;
  ModelBreakdown Model;
};

/// The tuner's final verdict for one stencil on one device.
struct TuneOutcome {
  bool Feasible = false;
  BlockConfig Best;            ///< Includes the chosen register cap.
  MeasuredResult BestMeasured; ///< Simulated "Tuned" performance.
  std::vector<RankedConfig> TopByModel;

  /// Sweep candidates whose measurement failed outright (native backend:
  /// kernel did not compile/load or rejected the run) — distinct from
  /// model-infeasible candidates, which are silently pruned. A non-zero
  /// count with Feasible == false usually means a broken host toolchain,
  /// not an untunable stencil; an5dc surfaces it on stderr.
  std::size_t MeasurementFailures = 0;
  std::string FirstFailureReason; ///< Representative failure (e.g. the
                                  ///< compiler log of the first one).
  /// Normalized classification of FirstFailureReason (None when no
  /// measurement failed); an5dc renders the warning label from this
  /// instead of re-parsing the free-form string.
  MeasureFailureKind FirstFailureKind = MeasureFailureKind::None;

  /// Model-ranked candidates the schedule verifier
  /// (analysis/ScheduleVerifier.h) statically rejected before any kernel
  /// was compiled — distinct from model-infeasible candidates (silently
  /// pruned in stage 1) and from MeasurementFailures (the backend tried
  /// and failed). Non-zero means the feasibility model and the verifier
  /// disagree; the cross-check suite keeps this at zero for every
  /// enumerated configuration.
  std::size_t VerifierRejections = 0;
  std::string FirstRejectionReason; ///< Representative verifier verdict.

  /// Candidates the static analysis pipeline (analysis/passes/) rejected
  /// with an Error-severity finding after the schedule verifier had
  /// already accepted them — tape breakage or an access-bounds
  /// refutation the shape checks cannot see. Like VerifierRejections,
  /// this stays at zero for every enumerated configuration; non-zero
  /// means lowering and the dataflow passes disagree.
  std::size_t AnalysisRejections = 0;
  std::string FirstAnalysisRejection; ///< Representative finding.
};

/// Knobs of the Section 6.3 search.
struct TuneOptions {
  /// Model-ranked candidates that advance to the measured sweep. The
  /// paper measures the top five serially; with the parallel sweep the
  /// default widens to 16 so several block-shape families reach the
  /// measured stage even when near-tied model scores make the head of the
  /// ranking homogeneous (the model slightly favors wide blocks whose
  /// measured occupancy disappoints).
  std::size_t TopK = 16;

  /// Register caps tried per candidate (0 = uncapped), Section 6.3.
  std::vector<int> RegisterCaps = {0, 32, 64, 96};

  /// Worker threads for the measured sweep; 0 picks one per hardware
  /// thread (capped at 8). Any value yields bit-identical results (the
  /// native backend parallelizes only compilation, never timing).
  int Threads = 0;

  /// Measurement source of stage 2. With Native, register caps collapse
  /// to {0} — -maxrregcount is a CUDA knob with no CPU analogue, so cap
  /// variants would compile and time the same kernel repeatedly. All
  /// dimensionalities run real kernels (1D streams through the
  /// chunk-parallel kernel).
  MeasurementBackend Backend = MeasurementBackend::Simulated;

  /// Compile/cache/timing knobs of the Native backend.
  NativeMeasureOptions Native;
};

/// Model-guided configuration search for one device.
class Tuner {
public:
  explicit Tuner(GpuSpec Spec) : Spec(std::move(Spec)) {}

  const GpuSpec &spec() const { return Spec; }

  /// The raw parameter grid for \p Program's dimensionality (no pruning,
  /// RegisterCap unset).
  std::vector<BlockConfig> enumerateConfigs(const StencilProgram &Program)
      const;

  /// Stage 1: evaluates the model over the pruned grid and returns the
  /// best \p TopK candidates in descending model performance. Scores
  /// compare through quantizedModelScore with a total order over the
  /// configuration fields as tie-break, so the ranking is deterministic
  /// across compilers and FP flags.
  std::vector<RankedConfig> rankByModel(const StencilProgram &Program,
                                        const ProblemSize &Problem,
                                        std::size_t TopK) const;

  /// The full measured workload over the raw grid (no model ranking):
  /// every feasible, register-legal configuration x \p RegisterCaps,
  /// replicated for problem indices [0, NumProblems). The throughput
  /// bench and the sweep tests dispatch this to exercise the pool beyond
  /// the tuner's own top-K stage.
  std::vector<SweepCandidate> enumerateSweepCandidates(
      const StencilProgram &Program, std::size_t NumProblems,
      const std::vector<int> &RegisterCaps = {0, 32, 64, 96}) const;

  /// Full tuning flow: rank, sweep the top-K with each register cap
  /// across Options.Threads workers, return the fastest measured
  /// configuration. Bit-identical for every thread count.
  TuneOutcome tune(const StencilProgram &Program, const ProblemSize &Problem,
                   const TuneOptions &Options = TuneOptions()) const;

  /// Tunes one stencil for several problem sizes at once: the per-problem
  /// candidates (top-K x register caps, cross-product with the problem
  /// list) form a single measured sweep over the shared thread pool, then
  /// each problem reduces serially to its own outcome.
  std::vector<TuneOutcome>
  tuneAcrossProblems(const StencilProgram &Program,
                     const std::vector<ProblemSize> &Problems,
                     const TuneOptions &Options = TuneOptions()) const;

  /// The Sconf configuration of Section 6.3 (STENCILGEN's kernel
  /// parameters): bT=4, hSN=128, bS=32 for 2D / 32x32 for 3D, with the
  /// streaming division disabled for 3D stencils. For 1D (which the paper
  /// does not evaluate) this is the pure-streaming analogue bT=4, hSN=128.
  static BlockConfig sconf(const StencilProgram &Program);

private:
  /// The dimensionality-independent pruning both stages share: block
  /// feasibility plus the register-limit estimate.
  bool passesStaticPruning(const StencilProgram &Program,
                           const BlockConfig &Config) const;

  GpuSpec Spec;
};

} // namespace an5d

#endif // AN5D_TUNING_TUNER_H
