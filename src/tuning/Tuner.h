//===- Tuner.h - Model-guided parameter tuning (Section 6.3) ----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model-guided tuning flow of Section 6.3: enumerate the parameter
/// sets (bT in [1,16] for 2D / [1,8] for 3D; bS in {128,256,512} for 2D /
/// {16x16, 32x16, 32x32, 64x16} for 3D; hSN in {256,512,1024} / {128,256}),
/// prune by the register-usage estimate, rank everything with the
/// performance model, "run" the top five through the measured-performance
/// simulator with register caps {none, 32, 64, 96}, and keep the fastest.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_TUNING_TUNER_H
#define AN5D_TUNING_TUNER_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"
#include "model/PerformanceModel.h"
#include "sim/MeasuredSimulator.h"

#include <vector>

namespace an5d {

/// One model-ranked candidate.
struct RankedConfig {
  BlockConfig Config;
  ModelBreakdown Model;
};

/// The tuner's final verdict for one stencil on one device.
struct TuneOutcome {
  bool Feasible = false;
  BlockConfig Best;            ///< Includes the chosen register cap.
  MeasuredResult BestMeasured; ///< Simulated "Tuned" performance.
  std::vector<RankedConfig> TopByModel;
};

/// Model-guided configuration search for one device.
class Tuner {
public:
  explicit Tuner(GpuSpec Spec) : Spec(std::move(Spec)) {}

  const GpuSpec &spec() const { return Spec; }

  /// The raw Section 6.3 parameter grid for \p Program's dimensionality
  /// (no pruning, RegisterCap unset).
  std::vector<BlockConfig> enumerateConfigs(const StencilProgram &Program)
      const;

  /// Evaluates the model over the pruned grid and returns the best \p TopK
  /// candidates in descending model performance.
  std::vector<RankedConfig> rankByModel(const StencilProgram &Program,
                                        const ProblemSize &Problem,
                                        std::size_t TopK) const;

  /// Full tuning flow: rank, simulate the top five with each register cap,
  /// return the fastest measured configuration.
  TuneOutcome tune(const StencilProgram &Program,
                   const ProblemSize &Problem) const;

  /// The Sconf configuration of Section 6.3 (STENCILGEN's kernel
  /// parameters): bT=4, hSN=128, bS=32 for 2D / 32x4 for 3D, with the
  /// streaming division disabled for 3D stencils.
  static BlockConfig sconf(const StencilProgram &Program);

private:
  GpuSpec Spec;
};

} // namespace an5d

#endif // AN5D_TUNING_TUNER_H
