//===- ParallelSweep.cpp - Parallel measured-performance sweep --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/ParallelSweep.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

namespace an5d {

int resolveSweepThreads(int Requested) {
  if (Requested >= 1)
    return Requested;
  unsigned Hardware = std::thread::hardware_concurrency();
  if (Hardware == 0)
    Hardware = 1;
  return static_cast<int>(std::min(Hardware, 8u));
}

std::vector<MeasuredResult>
parallelMeasuredSweep(const StencilProgram &Program, const GpuSpec &Spec,
                      const std::vector<SweepCandidate> &Candidates,
                      const std::vector<ProblemSize> &Problems, int Threads) {
  std::vector<MeasuredResult> Results(Candidates.size());
  if (Candidates.empty())
    return Results;
  obs::count("sweep.candidates", static_cast<long long>(Candidates.size()));

  std::atomic<std::size_t> NextItem{0};
  auto Worker = [&]() {
    for (std::size_t Item;
         (Item = NextItem.fetch_add(1, std::memory_order_relaxed)) <
         Candidates.size();) {
      const SweepCandidate &Candidate = Candidates[Item];
      assert(Candidate.ProblemIndex < Problems.size() &&
             "candidate addresses a problem size outside the sweep");
      Results[Item] = simulateMeasured(Program, Spec, Candidate.Config,
                                       Problems[Candidate.ProblemIndex]);
    }
  };

  int NumWorkers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolveSweepThreads(Threads)),
      Candidates.size()));
  if (NumWorkers <= 1) {
    Worker();
    return Results;
  }

  // The calling thread is worker zero; NumWorkers - 1 helpers join it.
  std::vector<std::thread> Helpers;
  Helpers.reserve(static_cast<std::size_t>(NumWorkers) - 1);
  for (int I = 1; I < NumWorkers; ++I)
    Helpers.emplace_back(Worker);
  Worker();
  for (std::thread &Helper : Helpers)
    Helper.join();
  return Results;
}

} // namespace an5d
