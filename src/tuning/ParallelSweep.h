//===- ParallelSweep.h - Parallel measured-performance sweep ----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measured-sweep stage of the Section 6.3 tuning flow as a parallel
/// subsystem: a flat list of (configuration, problem-size) candidates is
/// dispatched across a small pool of std::thread workers that pull items
/// off an atomic work index and run simulateMeasured for each.
///
/// simulateMeasured (and the whole model stack underneath it) is a pure
/// function of its arguments, and every candidate writes only its own
/// pre-allocated result slot, so the sweep output is bit-identical for any
/// worker count — the thread count is purely a wall-clock knob. All
/// ordering-sensitive reductions (argmax over candidates) happen serially
/// in the caller over the deterministic result array.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_TUNING_PARALLELSWEEP_H
#define AN5D_TUNING_PARALLELSWEEP_H

#include "analysis/passes/ResourceEstimator.h"
#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"
#include "schedule/ScheduleIR.h"
#include "sim/MeasuredSimulator.h"

#include <cstddef>
#include <vector>

namespace an5d {

/// One work item of a measured sweep: a fully specified configuration
/// (register cap included) paired with an index into the sweep's
/// problem-size list.
struct SweepCandidate {
  BlockConfig Config;
  std::size_t ProblemIndex = 0;

  /// The candidate's lowered schedule, when the producer already lowered
  /// it (the tuner lowers once per candidate and hands the IR down to the
  /// verifier and the native backend). Left default-constructed — an
  /// empty StencilName marks it absent — by callers that only fill
  /// Config; consumers that need the IR lower it themselves then. When
  /// set, Schedule.Config must equal Config.
  ScheduleIR Schedule;

  /// Static resource features of this candidate (ring bytes, working
  /// sets, tape FLOPs, arithmetic intensity), filled by producers that
  /// ran the analysis pipeline — the tuner estimates every candidate it
  /// lowers. Valid == false when no producer estimated.
  ResourceEstimate Resources;
};

/// Which measurement source the tuning flow's second stage runs the
/// candidates through.
enum class MeasurementBackend {
  /// The calibrated MeasuredSimulator below (default): models the paper's
  /// GPUs, microseconds per candidate, fully parallel.
  Simulated,
  /// Real JIT-compiled OpenMP kernels timed on the host CPU
  /// (runtime/NativeMeasurement.h): compilation fans out over the same
  /// thread pool, the timed runs are serialized so candidates do not
  /// contend for cores.
  Native,
};

/// Resolves a requested worker count: values >= 1 pass through; 0 (the
/// "auto" default of TuneOptions) maps to the hardware concurrency,
/// clamped to [1, 8] — the sweep items are microseconds-sized, so a small
/// pool saturates long before the core count on big machines.
int resolveSweepThreads(int Requested);

/// Runs simulateMeasured for every candidate, fanning the items out over
/// \p Threads workers (see resolveSweepThreads for 0). Results are indexed
/// exactly like \p Candidates; each candidate's ProblemIndex must address
/// \p Problems. The result is bit-identical for every thread count.
std::vector<MeasuredResult>
parallelMeasuredSweep(const StencilProgram &Program, const GpuSpec &Spec,
                      const std::vector<SweepCandidate> &Candidates,
                      const std::vector<ProblemSize> &Problems, int Threads);

} // namespace an5d

#endif // AN5D_TUNING_PARALLELSWEEP_H
