//===- Tuner.cpp - Model-guided parameter tuning (Section 6.3) --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/Tuner.h"

#include "analysis/ScheduleVerifier.h"
#include "analysis/passes/AnalysisPass.h"
#include "analysis/passes/ResourceEstimator.h"
#include "model/RegisterModel.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "tuning/ParallelSweep.h"

#include <algorithm>
#include <cmath>

namespace an5d {

std::vector<BlockConfig>
Tuner::enumerateConfigs(const StencilProgram &Program) const {
  std::vector<BlockConfig> Configs;
  if (Program.numDims() == 2) {
    for (int BT = 1; BT <= 16; ++BT)
      for (int BS : {64, 128, 256, 512})
        for (int HS : {256, 512, 1024}) {
          BlockConfig C;
          C.BT = BT;
          C.BS = {BS};
          C.HS = HS;
          Configs.push_back(std::move(C));
        }
    return Configs;
  }
  if (Program.numDims() == 3) {
    static const int Shapes[][2] = {{16, 16}, {32, 16}, {32, 32}, {64, 16}};
    for (int BT = 1; BT <= 8; ++BT)
      for (const auto &Shape : Shapes)
        for (int HS : {128, 256}) {
          BlockConfig C;
          C.BT = BT;
          C.BS = {Shape[0], Shape[1]};
          C.HS = HS;
          Configs.push_back(std::move(C));
        }
    return Configs;
  }
  // 1D stencils stream their single dimension (no blocked dimensions, one
  // lane per block): all thread-block parallelism comes from the hSN
  // division of Section 4.2.3, so the grid crosses bT with the chunk
  // length, streaming off (hS=0, a single chunk) included for reference —
  // the model ranks it last because one block idles every other SM.
  for (int BT = 1; BT <= 16; ++BT)
    for (int HS : {0, 128, 256, 512, 1024}) {
      BlockConfig C;
      C.BT = BT;
      C.BS.clear();
      C.HS = HS;
      Configs.push_back(std::move(C));
    }
  return Configs;
}

double quantizedModelScore(double Gflops) {
  // Float's 2^-24 relative quantum is ~10 orders of magnitude above the
  // double-rounding noise the model can accumulate, so scores that differ
  // only in compiler/FP-flag-dependent low bits collapse to the same key
  // and fall through to the field tie-break. Comparing quantized keys
  // exactly keeps the sort comparator a strict weak ordering (an
  // epsilon-relative "tied" predicate would not be transitive).
  return static_cast<double>(static_cast<float>(Gflops));
}

bool Tuner::passesStaticPruning(const StencilProgram &Program,
                                const BlockConfig &Config) const {
  return Config.isFeasible(Program.radius(), Spec.MaxThreadsPerBlock) &&
         !exceedsRegisterLimits(Program, Config, Spec);
}

std::vector<RankedConfig> Tuner::rankByModel(const StencilProgram &Program,
                                             const ProblemSize &Problem,
                                             std::size_t TopK) const {
  std::vector<RankedConfig> Ranked;
  for (const BlockConfig &Config : enumerateConfigs(Program)) {
    if (!passesStaticPruning(Program, Config))
      continue;
    ModelBreakdown Model = evaluateModel(Program, Spec, Config, Problem);
    if (!Model.Feasible)
      continue;
    Ranked.push_back({Config, std::move(Model)});
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedConfig &A, const RankedConfig &B) {
              double QA = quantizedModelScore(A.Model.Gflops);
              double QB = quantizedModelScore(B.Model.Gflops);
              if (QA != QB)
                return QA > QB;
              // Deterministic tie-break: smaller bT, then smaller block,
              // then the remaining fields — a total order over distinct
              // configurations, so equal scores cannot reorder between
              // compilers or std::sort implementations.
              if (A.Config.BT != B.Config.BT)
                return A.Config.BT < B.Config.BT;
              if (A.Config.numThreads() != B.Config.numThreads())
                return A.Config.numThreads() < B.Config.numThreads();
              if (A.Config.BS != B.Config.BS)
                return A.Config.BS < B.Config.BS;
              return A.Config.HS < B.Config.HS;
            });
  if (Ranked.size() > TopK)
    Ranked.resize(TopK);
  return Ranked;
}

std::vector<SweepCandidate> Tuner::enumerateSweepCandidates(
    const StencilProgram &Program, std::size_t NumProblems,
    const std::vector<int> &RegisterCaps) const {
  // Enumeration and static pruning are problem-independent: walk the grid
  // once, then cross the survivors with the problem indices and caps.
  std::vector<BlockConfig> Pruned;
  for (const BlockConfig &Config : enumerateConfigs(Program))
    if (passesStaticPruning(Program, Config))
      Pruned.push_back(Config);

  std::vector<SweepCandidate> Candidates;
  Candidates.reserve(NumProblems * Pruned.size() * RegisterCaps.size());
  for (std::size_t P = 0; P < NumProblems; ++P)
    for (const BlockConfig &Config : Pruned)
      for (int Cap : RegisterCaps) {
        SweepCandidate Item;
        Item.Config = Config;
        Item.Config.RegisterCap = Cap;
        Item.ProblemIndex = P;
        Candidates.push_back(std::move(Item));
      }
  return Candidates;
}

TuneOutcome Tuner::tune(const StencilProgram &Program,
                        const ProblemSize &Problem,
                        const TuneOptions &Options) const {
  return tuneAcrossProblems(Program, {Problem}, Options).front();
}

std::vector<TuneOutcome>
Tuner::tuneAcrossProblems(const StencilProgram &Program,
                          const std::vector<ProblemSize> &Problems,
                          const TuneOptions &Options) const {
  std::vector<TuneOutcome> Outcomes(Problems.size());

  obs::TraceSpan TuneSpan("tune");
  if (TuneSpan.active()) {
    TuneSpan.attr("stencil", Program.name());
    TuneSpan.attr("problems", std::to_string(Problems.size()));
  }
  obs::count("tuner.tunes");

  // The native backend times real CPU kernels (all dimensionalities —
  // 1D streams through the chunk-parallel kernel): register caps are a
  // CUDA knob the kernel source does not encode, so cap variants would
  // rebuild and re-time identical kernels.
  bool UseNative = Options.Backend == MeasurementBackend::Native;
  static const std::vector<int> NativeCaps = {0};
  const std::vector<int> &Caps =
      UseNative ? NativeCaps : Options.RegisterCaps;

  // Stage 1 (enumerate/prune): per-problem model ranking, then the full
  // candidate list — top-K x register caps, cross-product with the
  // problem sizes — for one shared sweep.
  std::vector<SweepCandidate> Candidates;
  const AnalysisPassManager Passes = AnalysisPassManager::standardPipeline();
  for (std::size_t P = 0; P < Problems.size(); ++P) {
    {
      AN5D_TRACE_SPAN("tune.rank");
      Outcomes[P].TopByModel =
          rankByModel(Program, Problems[P], Options.TopK);
    }
    obs::count("tuner.candidates_ranked",
               static_cast<long long>(Outcomes[P].TopByModel.size()));
    for (const RankedConfig &Candidate : Outcomes[P].TopByModel) {
      obs::TraceSpan CandidateSpan("tune.candidate");
      if (CandidateSpan.active())
        CandidateSpan.attr("config", Candidate.Config.toString());
      // Lower once; the verifier checks this IR and the sweep candidates
      // carry it down to the native backend, so nothing re-derives the
      // schedule from the raw configuration.
      ScheduleIR Lowered = [&] {
        AN5D_TRACE_SPAN("tune.lower");
        return lowerSchedule(Program, Candidate.Config);
      }();
      // Static schedule verification gates the sweep: a candidate the
      // interval analysis cannot prove safe never reaches the compiler.
      // rankByModel only emits feasibility-pruned configs, so a rejection
      // here means the model and the verifier disagree — worth surfacing
      // loudly rather than timing a kernel with a latent race.
      ScheduleVerifyResult Verdict = [&] {
        AN5D_TRACE_SPAN("tune.verify");
        return verifyScheduleIR(Lowered, &Problems[P]);
      }();
      if (!Verdict.proven()) {
        ++Outcomes[P].VerifierRejections;
        obs::count("tuner.verifier_rejections");
        if (Outcomes[P].FirstRejectionReason.empty())
          Outcomes[P].FirstRejectionReason =
              Candidate.Config.toString() + ": " +
              Verdict.Violations.front().toString();
        continue;
      }
      // The dataflow pass pipeline runs next to the verifier on the same
      // IR: tape discipline, symbolic access bounds, and the resource
      // features the sweep candidates carry. An Error finding rejects the
      // candidate pre-JIT, exactly like a verifier refutation.
      AnalysisInput PassInput;
      PassInput.Program = &Program;
      PassInput.Schedule = &Lowered;
      AnalysisReport Analysis = [&] {
        AN5D_TRACE_SPAN("tune.analyze");
        return Passes.run(PassInput);
      }();
      if (!Analysis.proven()) {
        ++Outcomes[P].AnalysisRejections;
        obs::count("tuner.analysis_rejections");
        if (Outcomes[P].FirstAnalysisRejection.empty()) {
          for (const AnalysisFinding &F : Analysis.Findings) {
            if (F.Severity != FindingSeverity::Error)
              continue;
            Outcomes[P].FirstAnalysisRejection =
                Candidate.Config.toString() + ": " + F.toString();
            break;
          }
        }
        continue;
      }
      ResourceEstimate Resources = estimateResources(Program, Lowered);
      for (int Cap : Caps) {
        SweepCandidate Item;
        Item.Config = Candidate.Config;
        Item.Config.RegisterCap = Cap;
        Item.Schedule = Lowered;
        Item.Schedule.Config.RegisterCap = Cap;
        Item.ProblemIndex = P;
        Item.Resources = Resources;
        Candidates.push_back(std::move(Item));
      }
    }
  }

  // Stage 2 (measured sweep): parallel across the pool; the reduction
  // below walks the deterministic result array serially in candidate
  // order, so the outcome is bit-identical for every thread count. The
  // native backend parallelizes compilation over the same pool and then
  // times the compiled kernels serially.
  NativeMeasureOptions NativeOptions = Options.Native;
  if (NativeOptions.CompileThreads == 0)
    NativeOptions.CompileThreads = Options.Threads;
  std::vector<MeasuredResult> Results = [&] {
    obs::TraceSpan SweepSpan("tune.sweep");
    if (SweepSpan.active()) {
      SweepSpan.attr("backend", UseNative ? "native" : "simulated");
      SweepSpan.attr("candidates", std::to_string(Candidates.size()));
    }
    return UseNative ? nativeMeasuredSweep(Program, Candidates, Problems,
                                           NativeOptions)
                     : parallelMeasuredSweep(Program, Spec, Candidates,
                                             Problems, Options.Threads);
  }();
  for (std::size_t I = 0; I < Candidates.size(); ++I) {
    const MeasuredResult &Measured = Results[I];
    TuneOutcome &Outcome = Outcomes[Candidates[I].ProblemIndex];
    if (!Measured.Feasible) {
      // Candidates the backend could not run at all (compile/load
      // failure, rejected run) are counted separately from genuinely
      // infeasible ones so the caller can warn about a broken toolchain.
      if (!Measured.FailureReason.empty()) {
        ++Outcome.MeasurementFailures;
        if (Outcome.FirstFailureReason.empty()) {
          Outcome.FirstFailureReason = Measured.FailureReason;
          Outcome.FirstFailureKind = Measured.FailureKind;
        }
      }
      continue;
    }
    if (!Outcome.Feasible ||
        Measured.MeasuredGflops > Outcome.BestMeasured.MeasuredGflops) {
      Outcome.Feasible = true;
      Outcome.Best = Candidates[I].Config;
      Outcome.BestMeasured = Measured;
    }
  }
  return Outcomes;
}

BlockConfig Tuner::sconf(const StencilProgram &Program) {
  BlockConfig Config;
  Config.BT = 4;
  if (Program.numDims() == 1) {
    // No STENCILGEN 1D baseline exists in the paper; the pure-streaming
    // analogue keeps bT=4 and the 2D chunk length.
    Config.BS.clear();
    Config.HS = 128;
  } else if (Program.numDims() == 2) {
    Config.BS = {32};
    Config.HS = 128;
  } else {
    // The paper abbreviates STENCILGEN's 3D block shape; 32x32 is the
    // shape its released 3D kernels use and keeps bT=4 halos feasible for
    // second-order stencils (interpretation documented in EXPERIMENTS.md).
    Config.BS = {32, 32};
    Config.HS = 0; // streaming division disabled for 3D (Section 6.3)
  }
  return Config;
}

} // namespace an5d
