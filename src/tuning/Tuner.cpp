//===- Tuner.cpp - Model-guided parameter tuning (Section 6.3) --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuning/Tuner.h"

#include "model/RegisterModel.h"

#include <algorithm>

namespace an5d {

std::vector<BlockConfig>
Tuner::enumerateConfigs(const StencilProgram &Program) const {
  std::vector<BlockConfig> Configs;
  if (Program.numDims() == 2) {
    for (int BT = 1; BT <= 16; ++BT)
      for (int BS : {128, 256, 512})
        for (int HS : {256, 512, 1024}) {
          BlockConfig C;
          C.BT = BT;
          C.BS = {BS};
          C.HS = HS;
          Configs.push_back(std::move(C));
        }
    return Configs;
  }
  if (Program.numDims() == 3) {
    static const int Shapes[][2] = {{16, 16}, {32, 16}, {32, 32}, {64, 16}};
    for (int BT = 1; BT <= 8; ++BT)
      for (const auto &Shape : Shapes)
        for (int HS : {128, 256}) {
          BlockConfig C;
          C.BT = BT;
          C.BS = {Shape[0], Shape[1]};
          C.HS = HS;
          Configs.push_back(std::move(C));
        }
    return Configs;
  }
  // 1D stencils: a reduced grid in the same spirit.
  for (int BT = 1; BT <= 16; ++BT) {
    BlockConfig C;
    C.BT = BT;
    C.BS.clear();
    C.HS = 0;
    Configs.push_back(std::move(C));
  }
  return Configs;
}

std::vector<RankedConfig> Tuner::rankByModel(const StencilProgram &Program,
                                             const ProblemSize &Problem,
                                             std::size_t TopK) const {
  std::vector<RankedConfig> Ranked;
  for (const BlockConfig &Config : enumerateConfigs(Program)) {
    if (!Config.isFeasible(Program.radius(), Spec.MaxThreadsPerBlock))
      continue;
    if (exceedsRegisterLimits(Program, Config, Spec))
      continue;
    ModelBreakdown Model = evaluateModel(Program, Spec, Config, Problem);
    if (!Model.Feasible)
      continue;
    Ranked.push_back({Config, std::move(Model)});
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedConfig &A, const RankedConfig &B) {
              if (A.Model.Gflops != B.Model.Gflops)
                return A.Model.Gflops > B.Model.Gflops;
              // Deterministic tie-break: smaller bT, then smaller block.
              if (A.Config.BT != B.Config.BT)
                return A.Config.BT < B.Config.BT;
              return A.Config.numThreads() < B.Config.numThreads();
            });
  if (Ranked.size() > TopK)
    Ranked.resize(TopK);
  return Ranked;
}

TuneOutcome Tuner::tune(const StencilProgram &Program,
                        const ProblemSize &Problem) const {
  TuneOutcome Outcome;
  Outcome.TopByModel = rankByModel(Program, Problem, /*TopK=*/5);
  if (Outcome.TopByModel.empty())
    return Outcome;

  for (const RankedConfig &Candidate : Outcome.TopByModel) {
    // Section 6.3: besides the uncapped build, try register limits of 32,
    // 64 and 96 per thread and keep whichever measures fastest.
    for (int Cap : {0, 32, 64, 96}) {
      BlockConfig Config = Candidate.Config;
      Config.RegisterCap = Cap;
      MeasuredResult Measured =
          simulateMeasured(Program, Spec, Config, Problem);
      if (!Measured.Feasible)
        continue;
      if (!Outcome.Feasible ||
          Measured.MeasuredGflops > Outcome.BestMeasured.MeasuredGflops) {
        Outcome.Feasible = true;
        Outcome.Best = Config;
        Outcome.BestMeasured = Measured;
      }
    }
  }
  return Outcome;
}

BlockConfig Tuner::sconf(const StencilProgram &Program) {
  BlockConfig Config;
  Config.BT = 4;
  if (Program.numDims() == 2) {
    Config.BS = {32};
    Config.HS = 128;
  } else {
    // The paper abbreviates STENCILGEN's 3D block shape; 32x32 is the
    // shape its released 3D kernels use and keeps bT=4 halos feasible for
    // second-order stencils (interpretation documented in EXPERIMENTS.md).
    Config.BS = {32, 32};
    Config.HS = 0; // streaming division disabled for 3D (Section 6.3)
  }
  return Config;
}

} // namespace an5d
