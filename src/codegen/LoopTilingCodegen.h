//===- LoopTilingCodegen.h - Baseline loop-tiling CUDA backend --*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline the paper generates with PPCG's default flow
/// (Section 6.1 "general loop tiling"): plain spatial blocking with one
/// kernel launch per time-step and one global-memory round trip per cell —
/// no temporal blocking, no streaming, no explicit on-chip management.
/// Having the actual baseline code generator (not just its analytic model)
/// makes the Fig. 6 comparison reproducible end to end: both code paths
/// consume the same StencilProgram.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_CODEGEN_LOOPTILINGCODEGEN_H
#define AN5D_CODEGEN_LOOPTILINGCODEGEN_H

#include "ir/StencilProgram.h"

#include <string>
#include <vector>

namespace an5d {

/// A generated loop-tiling translation unit (kernel + host in one file,
/// PPCG style).
struct GeneratedLoopTiling {
  std::string KernelName;
  std::string Source;
};

/// Generates the baseline CUDA. \p TileSizes gives the thread-block shape
/// over the innermost spatial dimensions (defaults to PPCG's 32x16 /
/// 32x4x4 style shapes when empty).
GeneratedLoopTiling
generateLoopTilingCuda(const StencilProgram &Program,
                       std::vector<int> TileSizes = {});

} // namespace an5d

#endif // AN5D_CODEGEN_LOOPTILINGCODEGEN_H
