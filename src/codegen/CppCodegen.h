//===- CppCodegen.h - Portable C++ backend ----------------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a standalone C++ translation of the blocked N.5D schedule for
/// one stencil and configuration, plus a naive reference and a bitwise
/// self-check. This is the executable stand-in for the CUDA backend on a
/// GPU-less machine: the emitted program encodes the same tier pipeline,
/// halo overwrite, boundary pinning, stream division and host-side
/// temporal scheduling as the CUDA kernel, and `main` exits 0 printing
/// "AN5D-CHECK OK" only if the blocked result matches the reference bit
/// for bit. An integration test compiles and runs it with the host
/// compiler.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_CODEGEN_CPPCODEGEN_H
#define AN5D_CODEGEN_CPPCODEGEN_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"

#include <string>

namespace an5d {

/// Generates the self-checking C++ program. \p Problem fixes the grid
/// extents and time-step count baked into the program.
std::string generateCppCheckProgram(const StencilProgram &Program,
                                    const BlockConfig &Config,
                                    const ProblemSize &Problem);

} // namespace an5d

#endif // AN5D_CODEGEN_CPPCODEGEN_H
