//===- CppCodegen.h - Portable C++ backend ----------------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates portable C++ translations of the blocked N.5D schedule for one
/// stencil and configuration — 1D (pure streaming: empty bS, one lane per
/// hS chunk, OpenMP worksharing over chunks), 2D and 3D — in two modes
/// sharing one blocked-invocation body (tier pipeline, halo overwrite,
/// boundary pinning, stream division, host-side temporal scheduling):
///
///  * **Self-check program** (generateCppCheckProgram): a standalone `main`
///    with a naive reference and a bitwise self-check, baking the problem
///    size into the program. `main` exits 0 printing "AN5D-CHECK OK" only
///    if the blocked result matches the reference bit for bit. An
///    integration test compiles and runs it with the host compiler.
///
///  * **Kernel library** (generateCppKernelLibrary): a shared-library
///    translation unit exporting the `extern "C"` entry point
///    `an5d_run(buf0, buf1, extents, timeSteps)` plus metadata query
///    symbols (see runtime/NativeExecutor.h for the ABI contract). Grid
///    extents and the step count are runtime arguments; the configuration
///    and stencil are baked in. The (chunk x block) pair loop is an OpenMP
///    worksharing loop when compiled with -fopenmp. This is what the
///    native runtime (src/runtime/) compiles, caches and loads.
///
/// Both modes emit exactly the per-cell arithmetic of the in-process
/// evaluators (same expression tree, float literals round-tripped through
/// float precision in kernel mode), so a kernel compiled with
/// -ffp-contract=off reproduces ReferenceExecutor bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_CODEGEN_CPPCODEGEN_H
#define AN5D_CODEGEN_CPPCODEGEN_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "schedule/ScheduleIR.h"

#include <string>

namespace an5d {

/// Renders the self-checking C++ program from a lowered schedule.
/// \p Problem fixes the grid extents and time-step count baked into the
/// program.
std::string generateCppCheckProgram(const StencilProgram &Program,
                                    const ScheduleIR &Schedule,
                                    const ProblemSize &Problem);

/// Convenience wrapper: lowers \p Config with lowerSchedule and renders
/// the resulting IR.
std::string generateCppCheckProgram(const StencilProgram &Program,
                                    const BlockConfig &Config,
                                    const ProblemSize &Problem);

/// Renders the callable OpenMP kernel library from a lowered schedule:
/// the translation unit the native runtime compiles into a shared
/// object. Extents and time-steps are parameters of the exported
/// `an5d_run`.
std::string generateCppKernelLibrary(const StencilProgram &Program,
                                     const ScheduleIR &Schedule);

/// Convenience wrapper: lowers \p Config with lowerSchedule and renders
/// the resulting IR.
std::string generateCppKernelLibrary(const StencilProgram &Program,
                                     const BlockConfig &Config);

/// The current `an5d_*` ABI version emitted into kernel libraries and
/// checked by the loader before calling into one.
constexpr int CppKernelAbiVersion = 1;

} // namespace an5d

#endif // AN5D_CODEGEN_CPPCODEGEN_H
