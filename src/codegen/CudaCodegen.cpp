//===- CudaCodegen.cpp - CUDA host + kernel generation ----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaCodegen.h"

#include "codegen/ExprEmitter.h"
#include "support/StringUtils.h"

#include <cassert>

namespace an5d {

namespace {

/// Shared state for one kernel-generation run: a renderer over the
/// lowered ScheduleIR (ring depth, halo policy, compute widths and chunk
/// plan all come from the IR, never re-derived here).
struct CudaEmitter {
  const StencilProgram &Program;
  const ScheduleIR &IR;
  const BlockConfig &Config; ///< IR.Config, for the tunable knobs.
  const CodegenOptions &Options;

  int Rad;
  int RingDepth;       ///< IR.RingDepth register planes per tier.
  int NumBlockedDims;  ///< 0 (1D pure streaming), 1 (2D) or 2 (3D).
  bool UseDaFree;      ///< Star optimization active.
  bool UseAssociative; ///< Partial-summation optimization active.
  std::string RealT;
  std::string KernelName;

  CudaEmitter(const StencilProgram &Program, const ScheduleIR &IR,
              const CodegenOptions &Options)
      : Program(Program), IR(IR), Config(IR.Config), Options(Options),
        Rad(IR.Radius), RingDepth(static_cast<int>(IR.RingDepth)),
        NumBlockedDims(IR.NumDims - 1),
        UseDaFree(Options.EnableDiagonalAccessFreeOpt &&
                  Program.shape() == StencilShape::Star),
        UseAssociative(Options.EnableAssociativeOpt &&
                       Program.shape() != StencilShape::Star &&
                       Program.isAssociative()),
        RealT(scalarTypeName(Program.elemType())),
        KernelName("an5d_" + sanitize(IR.StencilName) + "_bt" +
                   std::to_string(IR.Config.BT)) {}

  static std::string sanitize(std::string Name) {
    for (char &C : Name)
      if (C == '-')
        C = '_';
    return Name;
  }

  std::string regName(int Tier, int Slot) const {
    return "reg_" + std::to_string(Tier) + "_" + std::to_string(Slot);
  }

  /// Shared-memory read through the anti-vectorization wrapper
  /// (Section 4.3.2).
  std::string smRead(const std::string &Buffer, int PlaneOffset,
                     const std::vector<int> &LaneOffsets) const {
    std::string Index;
    if (!UseDaFree && !UseAssociative)
      Index += "[" + std::to_string(PlaneOffset + Rad) + "]";
    if (NumBlockedDims == 2)
      Index += "[ty + (" + std::to_string(LaneOffsets[0]) + ")]";
    std::string Inner = NumBlockedDims == 2 ? std::to_string(LaneOffsets[1])
                                            : std::to_string(LaneOffsets[0]);
    Index += "[tx + (" + Inner + ")]";
    std::string Access = "sm[" + Buffer + "]" + Index;
    if (Options.DisableVectorizedSmemAccess)
      return "__an5d_sm_load(&" + Access + ")";
    return Access;
  }

  /// The per-cell update expression with reads routed to the fixed source
  /// registers (streaming axis) and shared memory (in-plane); \p BufferExpr
  /// names the shared-memory buffer to read.
  std::string calcExpression(const std::string &BufferExpr) const {
    ExprEmitOptions Emit;
    Emit.Type = Program.elemType();
    Emit.Program = &Program;
    Emit.ReadEmitter = [this,
                        &BufferExpr](const GridReadExpr &R) -> std::string {
      int StreamOffset = R.offsets()[0];
      std::vector<int> LaneOffsets(R.offsets().begin() + 1,
                                   R.offsets().end());
      bool InPlaneCenter = true;
      for (int O : LaneOffsets)
        if (O != 0)
          InPlaneCenter = false;
      // The thread's own streaming column lives in the fixed registers of
      // the previous tier (Section 4.2.1).
      if (InPlaneCenter)
        return "(s" + std::to_string(StreamOffset + Rad) + ")";
      // Star stencils never mix a streaming offset with an in-plane one;
      // for box stencils the off-column planes come from shared memory.
      return smRead(BufferExpr, StreamOffset, LaneOffsets);
    };
    return emitExpr(Program.update(), Emit);
  }

  /// Register parameter list s0..s{2rad} of a CALC macro. The 1D
  /// pure-streaming schedule has no shared memory, so no read-buffer
  /// selector either.
  std::string calcParams() const {
    std::vector<std::string> Params = {"dst"};
    if (NumBlockedDims > 0)
      Params.push_back("sb");
    Params.push_back("s_idx");
    for (int M = 0; M < RingDepth; ++M)
      Params.push_back("s" + std::to_string(M));
    return join(Params, ", ");
  }

  /// Macro argument sequence encoding the fixed register allocation for
  /// tier \p Tier at rotation \p Rotation (Fig. 3b / Fig. 5). Tier T reads
  /// the shared-memory buffer its producer staged ((T+1)%2) and stages the
  /// other one.
  std::string calcArgs(int Tier, int Rotation,
                       const std::string &StreamIdx) const {
    std::vector<std::string> Args;
    Args.push_back(regName(Tier, Rotation % RingDepth));
    if (NumBlockedDims > 0)
      Args.push_back(std::to_string((Tier + 1) % 2)); // read-buffer selector
    Args.push_back(StreamIdx);
    for (int M = 0; M < RingDepth; ++M)
      Args.push_back(regName(Tier - 1, (Rotation + 1 + M) % RingDepth));
    return join(Args, ", ");
  }

  std::string loadArgs(int Rotation, const std::string &StreamIdx) const {
    return regName(0, Rotation % RingDepth) + ", " + StreamIdx;
  }

  std::string storeArgs(int Rotation, const std::string &StreamIdx) const {
    std::vector<std::string> Args = {StreamIdx};
    for (int M = 0; M < RingDepth; ++M)
      Args.push_back(
          regName(Config.BT - 1, (Rotation + 1 + M) % RingDepth));
    return join(Args, ", ");
  }

  std::string emitKernelSource() const;
  std::string emitHostSource() const;
  std::string emitMacros() const;
  std::string emitMainKernel() const;
  std::string emitGenericKernel() const;
};

std::string CudaEmitter::emitMacros() const {
  std::string Out;
  Out += "// ---- generated macros: one sub-plane of one time-step each ----\n";

  // Global-memory indexing.
  if (NumBlockedDims == 0) {
    Out += "#define GIDX(s) ((long long)(s) + RAD)\n";
  } else if (NumBlockedDims == 1) {
    Out += "#define GIDX(s, x) ((long long)(s) * (I_S1 + 2 * RAD) + (x))\n";
  } else {
    Out += "#define GIDX(s, y, x) (((long long)(s) * (I_S2 + 2 * RAD) + "
           "(y)) * (I_S1 + 2 * RAD) + (x))\n";
  }

  // LOAD: tier-0 global read, plus shared staging when a spatial tile
  // exists (2D/3D).
  Out += "#define LOAD(dst, s_idx) do { \\\n";
  Out += "    if (InsideInput(s_idx)) { \\\n";
  if (NumBlockedDims == 0)
    Out += "      (dst) = input[GIDX(s_idx)]; \\\n";
  else if (NumBlockedDims == 1)
    Out += "      (dst) = input[GIDX((s_idx) + RAD, gx)]; \\\n";
  else
    Out += "      (dst) = input[GIDX((s_idx) + RAD, gy, gx)]; \\\n";
  Out += "    } \\\n";
  if (NumBlockedDims > 0)
    Out += "    SM_STAGE(0, dst); \\\n";
  Out += "  } while (0)\n\n";

  // SM_STAGE: every thread stores, out-of-bound threads included, to avoid
  // divergent branches (Section 4.1). The 1D schedule has no tile and
  // therefore no shared memory.
  if (NumBlockedDims == 1)
    Out += "#define SM_STAGE(sb, v) (sm[sb][tx] = (v))\n\n";
  else if (NumBlockedDims == 2)
    Out += "#define SM_STAGE(sb, v) (sm[sb][ty][tx] = (v))\n\n";

  // CALC tiers 1..bT-1: compute one sub-plane, keep it in the fixed
  // destination register and stage it for the next tier (Fig. 5 generates
  // CALC1..CALC3 for bT = 4; the final tier lives in STORE).
  const bool PinBoundary =
      IR.HaloPolicy == ScheduleHaloPolicy::PinBoundaryOnly;
  std::string Expr = calcExpression("sb");
  for (int Tier = 1; Tier < Config.BT; ++Tier) {
    Out += "#define CALC" + std::to_string(Tier) + "(" + calcParams() +
           ") do { \\\n";
    if (NumBlockedDims > 0)
      Out += "    __syncthreads(); \\\n";
    Out += "    if (InsideBlockT" + std::to_string(Tier) +
           "(s_idx)) { \\\n";
    if (UseAssociative) {
      Out += "      /* associative stencil: partial summation, one "
             "sub-plane per step */ \\\n";
    }
    Out += "      " + RealT + " __r = " + Expr + "; \\\n";
    Out += "      (dst) = __r; \\\n";
    if (NumBlockedDims > 0)
      Out += "      SM_STAGE((sb) ^ 1, __r); \\\n";
    Out += "    } else { \\\n";
    if (PinBoundary) {
      Out += "      /* boundary pinning: outside the input the sub-plane "
             "keeps input values */ \\\n";
      Out += "      (dst) = input[GIDX(s_idx)]; \\\n";
    } else {
      Out += "      /* halo overwrite: carry the previous tier's value "
             "forward */ \\\n";
      Out += "      (dst) = (s" + std::to_string(Rad) + "); \\\n";
      Out += "      SM_STAGE((sb) ^ 1, (dst)); \\\n";
    }
    Out += "    } \\\n";
    Out += "  } while (0)\n\n";
  }

  // STORE: the final tier computes from the bT-1 registers and writes the
  // compute region straight to global memory (Fig. 5's STORE(s, reg_3_*)).
  std::string StoreBuffer = std::to_string((Config.BT - 1) % 2);
  std::string StoreExpr = calcExpression(StoreBuffer);
  Out += "#define STORE(s_idx";
  for (int M = 0; M < RingDepth; ++M)
    Out += ", s" + std::to_string(M);
  Out += ") do { \\\n";
  if (NumBlockedDims > 0)
    Out += "    __syncthreads(); \\\n";
  Out += "    if (InsideComputeRegion(s_idx)) { \\\n";
  Out += "      " + RealT + " __r = " + StoreExpr + "; \\\n";
  if (NumBlockedDims == 0)
    Out += "      output[GIDX(s_idx)] = __r; \\\n";
  else if (NumBlockedDims == 1)
    Out += "      output[GIDX((s_idx) + RAD, gx)] = __r; \\\n";
  else
    Out += "      output[GIDX((s_idx) + RAD, gy, gx)] = __r; \\\n";
  Out += "    } \\\n";
  Out += "  } while (0)\n\n";
  return Out;
}

std::string CudaEmitter::emitMainKernel() const {
  std::string Out;
  int BT = Config.BT;

  // Signature.
  Out += "extern \"C\" __global__ void " + KernelName + "(\n";
  Out += "    const " + RealT + " *__restrict__ input, " + RealT +
         " *__restrict__ output,\n";
  if (NumBlockedDims == 0)
    Out += "    int I_S1, int n_chunks, int chunk_len) {\n";
  else if (NumBlockedDims == 1)
    Out += "    int I_S2, int I_S1, int stream_lo, int stream_hi) {\n";
  else
    Out += "    int I_S3, int I_S2, int I_S1, int stream_lo, "
           "int stream_hi) {\n";

  if (NumBlockedDims == 0) {
    // 1D pure streaming: no spatial tile, so each stream chunk of the
    // hS division (Section 4.2.3) is one fully independent thread that
    // holds only its register rings.
    Out += "  const int cid = blockIdx.x * blockDim.x + threadIdx.x;\n";
    Out += "  if (cid >= n_chunks) return;\n";
    Out += "  const long long c0 = (long long)cid * chunk_len;\n";
    Out += "  const long long c1 = c0 + chunk_len < I_S1 ? c0 + chunk_len "
           ": I_S1;\n";
  } else {
    // Thread/block coordinates.
    Out += "  const int tx = threadIdx.x;\n";
    if (NumBlockedDims == 2)
      Out += "  const int ty = threadIdx.y;\n";
    Out += "  const int gx = blockIdx.x * (BS_X - 2 * BT * RAD) + tx;\n";
    if (NumBlockedDims == 2)
      Out += "  const int gy = blockIdx.y * (BS_Y - 2 * BT * RAD) + ty;\n";

    // Shared memory: double buffered (Section 4.2.2); general stencils
    // hold 1+2*rad sub-planes per buffer (Table 1).
    std::string SmDims;
    if (!UseDaFree && !UseAssociative)
      SmDims += "[2 * RAD + 1]";
    if (NumBlockedDims == 2)
      SmDims += "[BS_Y]";
    SmDims += "[BS_X]";
    Out += "  __shared__ " + RealT + " sm[2]" + SmDims + ";\n";
  }

  // Fixed register sets: RingDepth registers per tier (Fig. 3b).
  for (int Tier = 0; Tier < BT; ++Tier) {
    Out += "  " + RealT + " ";
    for (int M = 0; M < RingDepth; ++M) {
      if (M != 0)
        Out += ", ";
      Out += regName(Tier, M) + " = (" + RealT + ")0";
    }
    Out += ";\n";
  }
  Out += "\n  // ---- head phase (statically generated; loops would raise "
         "register pressure) ----\n";
  if (NumBlockedDims == 0)
    Out += "  long long s = c0 - BT * RAD;\n";
  else
    Out += "  int s = stream_lo - BT * RAD;\n";
  // Head: fill the pipeline. Step k performs LOAD + the CALCs whose inputs
  // are ready, mirroring the Lowermost_Block sequence of Fig. 5. The
  // pipeline depth in planes is twice the full invocation's stream reach.
  int HeadSteps = 2 * static_cast<int>(IR.full().LoadStreamReach);
  for (int K = 0; K < HeadSteps; ++K) {
    Out += "  LOAD(" + loadArgs(K, "s") + ");";
    for (int Tier = 1; Tier < BT; ++Tier) {
      // Tier T starts once 2*rad planes of tier T-1 exist: step >= 2*rad*T.
      if (K >= 2 * Rad * Tier)
        Out += " CALC" + std::to_string(Tier) + "(" +
               calcArgs(Tier, K, "s - " + std::to_string(Tier) + " * RAD") +
               ");";
    }
    Out += " ++s;\n";
  }

  std::string StreamHi = NumBlockedDims == 0 ? "c1" : "stream_hi";
  Out += "\n  // ---- inner phase (rolled; unrolling hurts instruction "
         "fetch) ----\n";
  if (Options.UnrollInnerLoop)
    Out += "#pragma unroll\n";
  Out += "  for (; s + " + std::to_string(RingDepth) + " <= " + StreamHi +
         " + BT * RAD; s += " + std::to_string(RingDepth) + ") {\n";
  for (int R = 0; R < RingDepth; ++R) {
    std::string Si = "s + " + std::to_string(R);
    Out += "    LOAD(" + loadArgs(HeadSteps + R, Si) + ");";
    for (int Tier = 1; Tier < BT; ++Tier)
      Out += " CALC" + std::to_string(Tier) + "(" +
             calcArgs(Tier, HeadSteps + R,
                      Si + " - " + std::to_string(Tier) + " * RAD") +
             ");";
    Out += "\n    STORE(" + storeArgs(HeadSteps + R, Si + " - BT * RAD") +
           ");\n";
  }
  Out += "  }\n";

  Out += "\n  // ---- tail phase (statically generated) ----\n";
  for (int K = 0; K < RingDepth; ++K) {
    Out += "  if (s > " + StreamHi + " + BT * RAD) return;\n";
    std::string Si = "s";
    Out += "  LOAD(" + loadArgs(HeadSteps + K, Si) + ");";
    for (int Tier = 1; Tier < BT; ++Tier)
      Out += " CALC" + std::to_string(Tier) + "(" +
             calcArgs(Tier, HeadSteps + K,
                      Si + " - " + std::to_string(Tier) + " * RAD") +
             ");";
    Out += "\n  STORE(" + storeArgs(HeadSteps + K, Si + " - BT * RAD") +
           "); ++s;\n";
  }
  Out += "}\n";
  return Out;
}

std::string CudaEmitter::emitGenericKernel() const {
  // Remainder temporal blocks (degree < BT) run through a degree-templated
  // kernel; the host instantiates the static branch chain of Section 4.3.1.
  std::string Out;
  Out += "// Remainder kernel for the final (adjusted) temporal blocks.\n";
  Out += "template <int DEGREE>\n";
  Out += "__global__ void " + KernelName + "_rem(\n";
  Out += "    const " + RealT + " *__restrict__ input, " + RealT +
         " *__restrict__ output,\n";
  std::string SizeSig, SizeInts;
  if (NumBlockedDims == 0) {
    SizeSig = "    int I_S1, int n_chunks, int chunk_len);\n";
    SizeInts = "int, int, int";
  } else if (NumBlockedDims == 1) {
    SizeSig = "    int I_S2, int I_S1, int stream_lo, int stream_hi);\n";
    SizeInts = "int, int, int, int";
  } else {
    SizeSig = "    int I_S3, int I_S2, int I_S1, int stream_lo, "
              "int stream_hi);\n";
    SizeInts = "int, int, int, int, int";
  }
  Out += SizeSig;
  for (int D = 1; D < Config.BT; ++D)
    Out += "template __global__ void " + KernelName + "_rem<" +
           std::to_string(D) + ">(const " + RealT + " *__restrict__, " +
           RealT + " *__restrict__, " + SizeInts + ");\n";
  return Out;
}

std::string CudaEmitter::emitKernelSource() const {
  std::string Out;
  Out += "// " + std::string(74, '-') + "\n";
  Out += "// CUDA kernel generated by the AN5D reproduction framework\n";
  Out += "// stencil: " + Program.name() + " (" +
         stencilShapeName(Program.shape()) + ", radius " +
         std::to_string(Rad) + ", " +
         optimizationClassName(Program.optimizationClass()) + ")\n";
  Out += "// config:  " + Config.toString() + "\n";
  Out += "// " + std::string(74, '-') + "\n\n";
  Out += "#include <cuda_runtime.h>\n\n";

  Out += "#define RAD " + std::to_string(Rad) + "\n";
  Out += "#define BT " + std::to_string(Config.BT) + "\n";
  if (NumBlockedDims > 0) {
    Out += "#define BS_X " +
           std::to_string(Config.BS[NumBlockedDims == 2 ? 1 : 0]) + "\n";
    if (NumBlockedDims == 2)
      Out += "#define BS_Y " + std::to_string(Config.BS[0]) + "\n";
  }
  Out += "\n";

  if (NumBlockedDims > 0 && Options.DisableVectorizedSmemAccess) {
    Out += "// Shared-memory loads go through a device function so nvcc "
           "does not\n// vectorize them (saves registers, Section 4.3.2).\n";
    Out += "static __device__ __forceinline__ " + RealT +
           " __an5d_sm_load(const volatile " + RealT +
           " *addr) { return *addr; }\n\n";
  }

  // Guard predicates; left as macros so the generated code stays legible.
  // The 1D pure-streaming kernel guards on the chunk bounds instead of the
  // spatial tile coordinates.
  std::string InputArgs =
      NumBlockedDims == 0
          ? "c0, c1"
          : "gx" + std::string(NumBlockedDims == 2 ? ", gy" : "");
  std::string TileArgs =
      NumBlockedDims == 0
          ? "c0, c1"
          : "tx" + std::string(NumBlockedDims == 2 ? ", ty" : "");
  Out += "#define InsideInput(s_idx) an5d_inside_input(s_idx, " + InputArgs +
         ")\n";
  for (int Tier = 1; Tier < Config.BT; ++Tier)
    Out += "#define InsideBlockT" + std::to_string(Tier) +
           "(s_idx) an5d_inside_tier(" + std::to_string(Tier) +
           ", s_idx, " + TileArgs + ")\n";
  Out += "#define InsideComputeRegion(s_idx) an5d_inside_store(s_idx, " +
         TileArgs + ")\n\n";

  Out += emitMacros();
  Out += emitMainKernel();
  Out += "\n";
  Out += emitGenericKernel();
  return Out;
}

std::string CudaEmitter::emitHostSource() const {
  std::string Out;
  int BT = Config.BT;
  Out += "// Host driver generated by the AN5D reproduction framework for " +
         Program.name() + ".\n";
  Out += "// Issues one kernel call per temporal block; the remainder and\n";
  Out += "// buffer-parity adjustment follows Section 4.3.1.\n\n";
  Out += "#include <cuda_runtime.h>\n#include <cstdio>\n\n";
  Out += "#define BT_DEGREE " + std::to_string(BT) + "\n\n";

  std::string SizeInts = NumBlockedDims == 0   ? "int, int, int"
                         : NumBlockedDims == 1 ? "int, int, int, int"
                                               : "int, int, int, int, int";
  Out += "extern \"C\" __global__ void " + KernelName + "(const " + RealT +
         " *, " + RealT + " *, " + SizeInts + ");\n\n";

  Out += "// Temporal block schedule: degrees sum to I_T and the call count\n"
         "// is congruent to I_T mod 2 so the result lands in buffer "
         "I_T%2.\n";
  Out += "static int an5d_schedule(long long I_T, int *degrees) {\n";
  Out += "  int n = 0;\n";
  Out += "  for (long long done = 0; done + BT_DEGREE <= I_T; done += "
         "BT_DEGREE)\n";
  Out += "    degrees[n++] = BT_DEGREE;\n";
  Out += "  int rem = (int)(I_T % BT_DEGREE);\n";
  Out += "  if (rem > 0) degrees[n++] = rem;\n";
  Out += "  if ((n % 2) != (int)(I_T % 2)) {\n";
  Out += "    // split one block of degree >= 2 to fix the buffer parity\n";
  Out += "    for (int i = 0; i < n; ++i) {\n";
  Out += "      if (degrees[i] >= 2) {\n";
  Out += "        int high = degrees[i] - degrees[i] / 2;\n";
  Out += "        int low = degrees[i] / 2;\n";
  Out += "        for (int j = n; j > i + 1; --j) degrees[j] = "
         "degrees[j - 1];\n";
  Out += "        degrees[i] = high; degrees[i + 1] = low; ++n;\n";
  Out += "        break;\n";
  Out += "      }\n";
  Out += "    }\n";
  Out += "  }\n";
  Out += "  return n;\n";
  Out += "}\n\n";

  std::string SizeParams = NumBlockedDims == 0
                               ? "long long I_S1"
                           : NumBlockedDims == 1
                               ? "long long I_S2, long long I_S1"
                               : "long long I_S3, long long I_S2, "
                                 "long long I_S1";
  Out += "extern \"C\" void an5d_" + CudaEmitter::sanitize(IR.StencilName) +
         "_run(" + RealT + " *host_a0, " + RealT + " *host_a1, " +
         SizeParams + ", long long I_T) {\n";
  Out += "  " + RealT + " *dev[2];\n";
  std::string CellCount =
      NumBlockedDims == 0
          ? "(I_S1 + 2 * " + std::to_string(Rad) + ")"
      : NumBlockedDims == 1
          ? "(I_S2 + 2 * " + std::to_string(Rad) + ") * (I_S1 + 2 * " +
                std::to_string(Rad) + ")"
          : "(I_S3 + 2 * " + std::to_string(Rad) + ") * (I_S2 + 2 * " +
                std::to_string(Rad) + ") * (I_S1 + 2 * " +
                std::to_string(Rad) + ")";
  Out += "  size_t bytes = sizeof(" + RealT + ") * (size_t)(" + CellCount +
         ");\n";
  Out += "  cudaMalloc(&dev[0], bytes);\n  cudaMalloc(&dev[1], bytes);\n";
  Out += "  cudaMemcpy(dev[0], host_a0, bytes, cudaMemcpyHostToDevice);\n";
  Out += "  cudaMemcpy(dev[1], host_a1, bytes, cudaMemcpyHostToDevice);\n";
  Out += "  static int degrees[1 << 20];\n";
  Out += "  int calls = an5d_schedule(I_T, degrees);\n";
  Out += "  int in = 0;\n";

  const InvocationSchedule &Full = IR.full();
  if (NumBlockedDims == 0) {
    // 1D pure streaming: one thread per hS chunk, one launch per temporal
    // block — the chunk division (Section 4.2.3) IS the parallel axis.
    std::string ChunkLen =
        Full.ChunkLength > 0 ? std::to_string(Full.ChunkLength) : "I_S1";
    Out += "  // division of the streaming dimension (Section 4.2.3):\n";
    Out += "  // each chunk runs as one independent CUDA thread\n";
    Out += "  const long long chunk = " + ChunkLen + ";\n";
    Out += "  const long long nchunks = (I_S1 + chunk - 1) / chunk;\n";
    Out += "  dim3 block(256, 1, 1);\n";
    Out += "  dim3 grid((unsigned)((nchunks + 255) / 256), 1, 1);\n";
    Out += "  for (int c = 0; c < calls; ++c) {\n";
    Out += "    if (degrees[c] == BT_DEGREE)\n";
    Out += "      " + KernelName + "<<<grid, block>>>(dev[in], "
           "dev[in ^ 1], (int)I_S1, (int)nchunks, (int)chunk);\n";
    Out += "    else\n";
    Out += "      /* statically generated remainder branch chain */\n";
    Out += "      an5d_launch_remainder(degrees[c], dev[in], dev[in ^ 1], "
           "(int)I_S1, (int)nchunks, (int)chunk);\n";
    Out += "    in ^= 1;\n";
    Out += "  }\n";
  } else {
    std::string Grid;
    if (NumBlockedDims == 1)
      Grid = "dim3 grid((unsigned)((I_S1 + CW - 1) / CW), 1, 1);\n"
             "  dim3 block(BS, 1, 1);\n";
    else
      Grid = "dim3 grid((unsigned)((I_S1 + CWX - 1) / CWX), "
             "(unsigned)((I_S2 + CWY - 1) / CWY), 1);\n"
             "  dim3 block(BSX, BSY, 1);\n";
    long long CwInner = Full.ComputeWidth[NumBlockedDims == 2 ? 1 : 0];
    if (NumBlockedDims == 1) {
      Out += "  const long long CW = " + std::to_string(CwInner) + ";\n";
      Out += "  const int BS = " + std::to_string(Config.BS[0]) + ";\n";
    } else {
      Out += "  const long long CWX = " + std::to_string(CwInner) + ";\n";
      Out += "  const long long CWY = " +
             std::to_string(Full.ComputeWidth[0]) + ";\n";
      Out += "  const int BSX = " + std::to_string(Config.BS[1]) +
             ", BSY = " + std::to_string(Config.BS[0]) + ";\n";
    }
    Out += "  " + Grid;

    std::string StreamExtent = NumBlockedDims == 1 ? "I_S2" : "I_S3";
    std::string ChunkLen = Full.ChunkLength > 0
                               ? std::to_string(Full.ChunkLength)
                               : StreamExtent;
    Out += "  const long long chunk = " + ChunkLen + ";\n";
    Out += "  for (int c = 0; c < calls; ++c) {\n";
    Out += "    // division of the streaming dimension (Section 4.2.3)\n";
    Out += "    for (long long lo = 0; lo < " + StreamExtent +
           "; lo += chunk) {\n";
    Out += "      long long hi = lo + chunk < " + StreamExtent +
           " ? lo + chunk : " + StreamExtent + ";\n";
    Out += "      if (degrees[c] == BT_DEGREE)\n";
    std::string SizeArgs = NumBlockedDims == 1 ? "(int)I_S2, (int)I_S1"
                                               : "(int)I_S3, (int)I_S2, "
                                                 "(int)I_S1";
    Out += "        " + KernelName + "<<<grid, block>>>(dev[in], "
           "dev[in ^ 1], " + SizeArgs + ", (int)lo, (int)hi);\n";
    Out += "      else\n";
    Out += "        /* statically generated remainder branch chain */\n";
    Out += "        an5d_launch_remainder(degrees[c], dev[in], "
           "dev[in ^ 1], " + SizeArgs + ", (int)lo, (int)hi);\n";
    Out += "    }\n";
    Out += "    in ^= 1;\n";
    Out += "  }\n";
  }
  Out += "  cudaMemcpy(host_a0, dev[I_T % 2 == 0 ? in : in ^ 1], bytes, "
         "cudaMemcpyDeviceToHost);\n";
  Out += "  cudaMemcpy(host_a1, dev[I_T % 2 == 0 ? in ^ 1 : in], bytes, "
         "cudaMemcpyDeviceToHost);\n";
  Out += "  cudaFree(dev[0]);\n  cudaFree(dev[1]);\n";
  Out += "}\n";
  return Out;
}

} // namespace

GeneratedCuda generateCuda(const StencilProgram &Program,
                           const ScheduleIR &Schedule,
                           const CodegenOptions &Options) {
  assert(Schedule.NumDims == Program.numDims() &&
         "schedule was lowered from a different program");
  assert(Schedule.Config.isFeasible(Schedule.Radius) &&
         "codegen requires a feasible configuration");
  assert(!Schedule.Invocations.empty() &&
         "codegen requires a schedule with bT >= 1");
  CudaEmitter Emitter(Program, Schedule, Options);
  GeneratedCuda Out;
  Out.KernelName = Emitter.KernelName;
  Out.KernelSource = Emitter.emitKernelSource();
  Out.HostSource = Emitter.emitHostSource();
  return Out;
}

GeneratedCuda generateCuda(const StencilProgram &Program,
                           const BlockConfig &Config,
                           const CodegenOptions &Options) {
  return generateCuda(Program, lowerSchedule(Program, Config), Options);
}

} // namespace an5d
