//===- ExprEmitter.h - Emit stencil expressions as C/CUDA text --*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a StencilExpr as compilable C/CUDA source text. Grid reads are
/// delegated to a caller-supplied callback so the same expression can be
/// emitted against shared-memory buffers, register rings or plain arrays.
/// Named coefficients are inlined as numeric literals (they are
/// compile-time constants in AN5D's model).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_CODEGEN_EXPREMITTER_H
#define AN5D_CODEGEN_EXPREMITTER_H

#include "ir/StencilProgram.h"

#include <functional>
#include <string>

namespace an5d {

/// Emission parameters.
struct ExprEmitOptions {
  /// Element type; float emission appends 'f' suffixes and uses sqrtf.
  ScalarType Type = ScalarType::Float;

  /// Round every float literal through float precision before formatting,
  /// so the emitted decimal parses back to exactly the value an in-process
  /// float evaluator uses (static_cast<float> of the stored double). The
  /// native kernel library needs this for its bit-for-bit contract with
  /// ReferenceExecutor; the self-contained backends (CUDA, check program)
  /// compare only against themselves and keep the historical formatting.
  bool ExactFloatLiterals = false;

  /// Maps a grid read to source text (e.g. "READ(-1, 0)" or
  /// "sm0[ty-1][tx]").
  std::function<std::string(const GridReadExpr &)> ReadEmitter;

  /// Supplies coefficient values for inlining; required when the
  /// expression uses named coefficients.
  const StencilProgram *Program = nullptr;
};

/// Formats \p Value as a literal of the requested type.
std::string emitLiteral(double Value, ScalarType Type);

/// Renders \p E as an expression string.
std::string emitExpr(const StencilExpr &E, const ExprEmitOptions &Options);

/// Default read emitter: "READ(o0, o1[, o2])".
std::string defaultReadMacro(const GridReadExpr &Read);

} // namespace an5d

#endif // AN5D_CODEGEN_EXPREMITTER_H
