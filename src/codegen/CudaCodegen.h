//===- CudaCodegen.h - CUDA host + kernel generation ------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the CUDA host and kernel code of Section 4.3 from a lowered
/// schedule/ScheduleIR:
///
///  * a kernel built from LOAD / CALC1..CALCbT / STORE macro invocations,
///    statically unrolled head and tail phases and a rolled inner loop of
///    2*rad+1 rotations encoding the fixed register allocation as macro
///    argument sequences (Fig. 5);
///  * double-buffered shared memory with one __syncthreads() per tier
///    (2D/3D; the 1D pure-streaming schedule needs neither — each chunk
///    is one independent thread holding only its register rings);
///  * a __device__ wrapper around shared-memory loads to suppress NVCC's
///    vectorization (Section 4.3.2);
///  * host code issuing one kernel call per temporal block, with the
///    statically generated remainder/parity branches of Section 4.3.1.
///
/// The output targets nvcc; on this GPU-less machine it is validated
/// structurally (tests, KernelLint, goldens) and semantically via the
/// equivalent portable C++ backend (CppCodegen), which compiles and runs
/// the same schedule IR.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_CODEGEN_CUDACODEGEN_H
#define AN5D_CODEGEN_CUDACODEGEN_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "schedule/ScheduleIR.h"

#include <string>

namespace an5d {

/// Switches mirroring AN5D's compile-time options (Section 4.3.3).
struct CodegenOptions {
  /// Star stencils: keep upper/lower sub-planes in registers only.
  bool EnableDiagonalAccessFreeOpt = true;
  /// Associative box stencils: partial summation over sub-planes.
  bool EnableAssociativeOpt = true;
  /// Route shared-memory loads through a device function so NVCC does not
  /// vectorize them (reduces register pressure, Section 4.3.2).
  bool DisableVectorizedSmemAccess = true;
  /// Unroll the inner streaming loop (off by default; the paper found it
  /// counterproductive due to instruction fetch latency).
  bool UnrollInnerLoop = false;
};

/// A generated translation-unit pair.
struct GeneratedCuda {
  std::string KernelName;
  std::string KernelSource; ///< .cu with macros + __global__ kernels.
  std::string HostSource;   ///< host driver with the time-block loop.
};

/// Renders CUDA for \p Program from a lowered schedule.
GeneratedCuda generateCuda(const StencilProgram &Program,
                           const ScheduleIR &Schedule,
                           const CodegenOptions &Options = {});

/// Convenience wrapper: lowers \p Config with lowerSchedule and renders
/// the resulting IR.
GeneratedCuda generateCuda(const StencilProgram &Program,
                           const BlockConfig &Config,
                           const CodegenOptions &Options = {});

} // namespace an5d

#endif // AN5D_CODEGEN_CUDACODEGEN_H
