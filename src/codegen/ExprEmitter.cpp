//===- ExprEmitter.cpp - Emit stencil expressions as C/CUDA text ------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/ExprEmitter.h"

#include <cassert>
#include <cstdio>

namespace an5d {

std::string emitLiteral(double Value, ScalarType Type) {
  char Buffer[64];
  if (Type == ScalarType::Float) {
    std::snprintf(Buffer, sizeof(Buffer), "%.9g", Value);
    std::string S = Buffer;
    // "118f" is not a valid literal; force a decimal point first.
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos)
      S += ".0";
    return S + "f";
  } else {
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
    // Ensure a double literal (avoid bare integers turning into int
    // arithmetic).
    std::string S = Buffer;
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos &&
        S.find("inf") == std::string::npos)
      S += ".0";
    return S;
  }
  return Buffer;
}

std::string defaultReadMacro(const GridReadExpr &Read) {
  std::string Out = "READ(";
  for (std::size_t D = 0; D < Read.offsets().size(); ++D) {
    if (D != 0)
      Out += ", ";
    Out += std::to_string(Read.offsets()[D]);
  }
  Out += ')';
  return Out;
}

/// Maps a math builtin to the type-appropriate CUDA/C spelling.
static std::string mathCallSpelling(const std::string &Callee,
                                    ScalarType Type) {
  std::string Base = Callee;
  if (!Base.empty() && Base.back() == 'f')
    Base.pop_back(); // normalize sqrtf -> sqrt
  if (Type == ScalarType::Float)
    return Base + "f";
  return Base;
}

/// Pre-rounds \p Value for emission: under ExactFloatLiterals a float
/// literal is formatted from the value the evaluators actually use.
static double literalValue(double Value, const ExprEmitOptions &Options) {
  if (Options.ExactFloatLiterals && Options.Type == ScalarType::Float)
    return static_cast<double>(static_cast<float>(Value));
  return Value;
}

std::string emitExpr(const StencilExpr &E, const ExprEmitOptions &Options) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number:
    return emitLiteral(literalValue(cast<NumberExpr>(E).value(), Options),
                       Options.Type);
  case StencilExpr::Kind::Coefficient: {
    assert(Options.Program && "coefficient emission requires value bindings");
    double Value =
        Options.Program->coefficientValue(cast<CoefficientExpr>(E).name());
    return emitLiteral(literalValue(Value, Options), Options.Type);
  }
  case StencilExpr::Kind::GridRead:
    assert(Options.ReadEmitter && "read emitter required");
    return Options.ReadEmitter(cast<GridReadExpr>(E));
  case StencilExpr::Kind::Unary:
    return "(-" + emitExpr(cast<UnaryExpr>(E).operand(), Options) + ")";
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return "(" + emitExpr(B.lhs(), Options) + " " +
           binaryOpSpelling(B.op()) + " " + emitExpr(B.rhs(), Options) + ")";
  }
  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(E);
    std::string Out = mathCallSpelling(C.callee(), Options.Type);
    Out += '(';
    for (std::size_t I = 0; I < C.args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += emitExpr(*C.args()[I], Options);
    }
    Out += ')';
    return Out;
  }
  }
  assert(false && "unhandled expression kind");
  return "";
}

} // namespace an5d
