//===- ScheduleIR.cpp - Backend-neutral N.5D schedule IR ------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "schedule/ScheduleIR.h"

#include <cassert>

using namespace an5d;

const char *an5d::scheduleHaloPolicyName(ScheduleHaloPolicy Policy) {
  switch (Policy) {
  case ScheduleHaloPolicy::CarryPreviousTier:
    return "carry-previous-tier";
  case ScheduleHaloPolicy::PinBoundaryOnly:
    return "pin-boundary-only";
  }
  return "unknown";
}

const InvocationSchedule &ScheduleIR::at(int Degree) const {
  assert(Degree >= 1 &&
         static_cast<size_t>(Degree) <= Invocations.size() &&
         "invocation degree outside [1, bT]");
  return Invocations[static_cast<size_t>(Degree) - 1];
}

const InvocationSchedule &ScheduleIR::full() const {
  assert(!Invocations.empty() && "schedule has no invocations (bT < 1)");
  return Invocations.back();
}

InvocationSchedule an5d::lowerInvocation(const StencilProgram &Program,
                                         const BlockConfig &Config,
                                         int Degree) {
  const long long Rad = Program.radius();
  InvocationSchedule M;
  M.Name = Program.name() + " " + Config.toString() + " degree " +
           std::to_string(Degree);
  M.NumDims = Program.numDims();
  M.Radius = Program.radius();
  M.Degree = Degree;
  M.GridHalo = Rad;
  M.RingDepth = 2 * Rad + 1;
  M.LoadSpanHalo = Degree * Rad;
  M.LoadStreamReach = Degree * Rad;
  M.LoadOrderPosition = 0;
  for (int B : Config.BS) {
    // Every backend recomputes the width per invocation degree
    // (cw = bS - 2*degree*rad), so a partial-degree call has a wider
    // compute region than the full-bT call.
    const long long Width = B - 2 * Degree * Rad;
    M.BS.push_back(B);
    M.ComputeWidth.push_back(Width);
    M.BlockStride.push_back(Width);
    M.StoreWidth.push_back(Width);
  }
  M.ChunkLength = Config.HS > 0 ? Config.HS : 0;
  M.ChunkStride = M.ChunkLength;
  M.Taps = Program.taps();
  for (int T = 1; T <= Degree; ++T) {
    TierSchedule Tier;
    Tier.Tier = T;
    Tier.OrderPosition = T;
    Tier.StreamLag = static_cast<long long>(T) * Rad;
    Tier.Reach = static_cast<long long>(Degree - T) * Rad;
    M.Tiers.push_back(Tier);
  }
  M.HaloPolicy = Config.BS.empty() ? ScheduleHaloPolicy::PinBoundaryOnly
                                   : ScheduleHaloPolicy::CarryPreviousTier;
  return M;
}

ScheduleIR an5d::lowerSchedule(const StencilProgram &Program,
                               const BlockConfig &Config) {
  const long long Rad = Program.radius();
  ScheduleIR IR;
  IR.StencilName = Program.name();
  IR.NumDims = Program.numDims();
  IR.Radius = Program.radius();
  IR.Config = Config;
  IR.GridHalo = Rad;
  IR.RingDepth = 2 * Rad + 1;
  IR.HaloPolicy = Config.BS.empty() ? ScheduleHaloPolicy::PinBoundaryOnly
                                    : ScheduleHaloPolicy::CarryPreviousTier;
  for (int Degree = 1; Degree <= Config.BT; ++Degree)
    IR.Invocations.push_back(lowerInvocation(Program, Config, Degree));
  return IR;
}
