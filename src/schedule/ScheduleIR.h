//===- ScheduleIR.h - Backend-neutral N.5D schedule IR ----------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit schedule intermediate representation of the N.5D execution
/// model: a backend-neutral description of one temporal-block invocation,
/// produced once by lowerSchedule(StencilProgram, BlockConfig) and then
/// *rendered* — never re-derived — by every consumer:
///
///   - sim/BlockedExecutor executes it cell-by-cell (tape and tree modes),
///   - codegen/CppCodegen prints it as the OpenMP self-check program and
///     the `an5d_run` kernel library,
///   - codegen/CudaCodegen prints it as the register-ring CUDA kernel and
///     its host driver, and
///   - analysis/ScheduleVerifier proves its invariants statically.
///
/// The IR captures, per invocation degree d in [1, bT]:
///
///   - the ring-buffer plan: RingDepth sub-planes per tier, rotation by
///     streaming step, and each tier's stream lag (tier T at streaming
///     step s processes sub-plane s - T*radius, so a sub-plane's lifetime
///     spans RingDepth steps between production and slot reuse);
///   - the halo rules: the loaded block span per blocked axis (lanes
///     [-LoadSpanHalo, bS_i - LoadSpanHalo)), the tier-0 stream reach
///     beyond the chunk bounds, each tier's shrinking valid region
///     (reach (d - T)*radius), and the overwrite policy — blocked
///     dimensions carry the previous tier's value across the halo
///     (ScheduleHaloPolicy::CarryPreviousTier), while the 1D pure
///     streaming schedule has no spatial halo at all and only pins
///     boundary planes to the input (ScheduleHaloPolicy::PinBoundaryOnly);
///   - the worksharing decomposition: the hS division of the streaming
///     axis into chunks (Section 4.2.3) and the block grid over the
///     blocked axes (origin stride = stored width), whose cross product
///     is the concurrent work-item set of the emitted `omp for` /
///     CUDA grid.
///
/// Every field is a plain mutable value so tests can corrupt single
/// invariants (shrink a halo, swap a wave, overlap two lanes) and assert
/// the verifier flags exactly that corruption.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SCHEDULE_SCHEDULEIR_H
#define AN5D_SCHEDULE_SCHEDULEIR_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"

#include <string>
#include <vector>

namespace an5d {

/// How a tier treats lanes outside its valid region (the halo-overwrite
/// rule of Section 4.2.2). Boundary planes along the streaming axis are
/// pinned to the input under both policies.
enum class ScheduleHaloPolicy {
  /// Blocked dimensions exist (>= 2D): a tier evaluating a halo lane
  /// carries the previous tier's value for that cell instead of
  /// computing, so the register pipeline stays dense across the block
  /// span.
  CarryPreviousTier,
  /// 1D pure streaming (empty bS): each lane is its own compute region,
  /// there is no spatial halo to overwrite, and only stream-boundary
  /// pinning applies.
  PinBoundaryOnly,
};

/// Stable lowercase name of \p Policy (e.g. "carry-previous-tier").
const char *scheduleHaloPolicyName(ScheduleHaloPolicy Policy);

/// One computing tier of the pipeline (tiers 1..degree; the tier-0 load
/// stage is modeled by the Load* fields of InvocationSchedule).
struct TierSchedule {
  int Tier = 1;
  /// Execution position within one streaming step. The load stage runs at
  /// LoadOrderPosition; a consumer may read a producer's same-step write
  /// only if the producer's position is smaller.
  int OrderPosition = 1;
  /// Tier T processes sub-plane s - StreamLag at streaming step s.
  long long StreamLag = 0;
  /// Half-width of the tier's valid region beyond the compute region, in
  /// cells, on every axis: (degree - T) * radius by construction.
  long long Reach = 0;
};

/// Explicit schedule of one temporal-block invocation at a fixed degree.
/// lowerInvocation derives it from (program, config); every field is a
/// plain value so tests can corrupt single invariants.
struct InvocationSchedule {
  std::string Name; ///< "<stencil> <config> degree <d>" for messages.
  int NumDims = 1;  ///< Spatial dimensions (streaming dim included).
  int Radius = 1;
  int Degree = 1;

  /// Halo cells allocated per side of every axis of the global padded
  /// buffers (Grid layout: radius).
  long long GridHalo = 0;

  /// Sub-planes per tier ring (2*radius + 1 by construction).
  long long RingDepth = 0;

  /// Loaded block span per blocked axis (bS_i), and the span's left halo:
  /// lanes [-LoadSpanHalo, BS_i - LoadSpanHalo) relative to the block
  /// origin (degree * radius by construction).
  std::vector<long long> BS;
  long long LoadSpanHalo = 0;

  /// Stream-direction reach of the tier-0 load beyond the chunk bounds
  /// (degree * radius by construction).
  long long LoadStreamReach = 0;

  /// Execution position of the tier-0 load within one streaming step.
  int LoadOrderPosition = 0;

  /// Compute-region width per blocked axis (bS_i - 2*degree*radius).
  std::vector<long long> ComputeWidth;

  /// Origin stride between adjacent blocks per blocked axis (compute
  /// width by construction: block b owns [b*Stride, b*Stride + Store)).
  std::vector<long long> BlockStride;

  /// Cells the final tier stores per blocked axis from each block
  /// (compute width by construction).
  std::vector<long long> StoreWidth;

  /// Stream-chunk length and the stride between adjacent chunk starts
  /// (hS and hS; 0 disables chunking — one chunk spans the extent and
  /// the streaming axis carries no concurrency).
  long long ChunkLength = 0;
  long long ChunkStride = 0;

  /// Deduplicated tap offsets (streaming component first).
  std::vector<std::vector<int>> Taps;

  /// Computing tiers 1..degree in pipeline order.
  std::vector<TierSchedule> Tiers;

  /// The halo-overwrite rule this invocation's tiers apply outside their
  /// valid regions (PinBoundaryOnly iff no blocked dimensions exist).
  ScheduleHaloPolicy HaloPolicy = ScheduleHaloPolicy::CarryPreviousTier;
};

/// The complete lowered schedule of one (stencil, config) pair: the
/// invocation plan for every degree the Section 4.3.1 host schedule can
/// issue, plus the invariants shared across degrees. This is the single
/// schedule object the emulator, the C++ and CUDA backends, and the
/// verifier all consume.
struct ScheduleIR {
  std::string StencilName;
  int NumDims = 1;
  int Radius = 1;

  /// The originating configuration point (bT, bS_i, hS, register cap).
  BlockConfig Config;

  /// Halo cells per side of the padded global buffers (= radius).
  long long GridHalo = 0;

  /// Sub-planes per tier ring, shared by every degree (2*radius + 1).
  long long RingDepth = 0;

  /// The halo-overwrite rule (PinBoundaryOnly iff the stencil is 1D).
  ScheduleHaloPolicy HaloPolicy = ScheduleHaloPolicy::CarryPreviousTier;

  /// Invocation plans for degrees 1..Config.BT in order (empty when
  /// Config.BT < 1 — lowering never rejects; the verifier does).
  std::vector<InvocationSchedule> Invocations;

  /// The plan for invocation degree \p Degree (1 <= Degree <=
  /// Config.BT). Asserts on out-of-range degrees.
  const InvocationSchedule &at(int Degree) const;

  /// The full-degree (bT) plan every complete temporal block runs.
  /// Asserts when Invocations is empty.
  const InvocationSchedule &full() const;
};

/// Lowers the invocation plan of \p Config at temporal degree \p Degree
/// (1 <= Degree <= Config.BT; the host schedule can issue any such
/// degree). Never rejects: structurally broken configurations lower to a
/// plan the verifier refutes.
InvocationSchedule lowerInvocation(const StencilProgram &Program,
                                   const BlockConfig &Config, int Degree);

/// The single lowering entry point: derives the complete ScheduleIR the
/// emulator, both codegen backends, and the verifier share for
/// (\p Program, \p Config). Never rejects — infeasible configurations
/// lower to an IR the verifier refutes, so callers decide policy.
ScheduleIR lowerSchedule(const StencilProgram &Program,
                         const BlockConfig &Config);

} // namespace an5d

#endif // AN5D_SCHEDULE_SCHEDULEIR_H
