//===- Diagnostic.cpp - Error and warning reporting -----------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

namespace an5d {

static const char *kindLabel(DiagnosticKind Kind) {
  switch (Kind) {
  case DiagnosticKind::Error:
    return "error";
  case DiagnosticKind::Warning:
    return "warning";
  case DiagnosticKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::toString() const {
  std::string Result = kindLabel(Kind);
  Result += ": ";
  if (Loc.isValid()) {
    Result += Loc.toString();
    Result += ": ";
  }
  Result += Message;
  return Result;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticKind::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::report(Diagnostic D) {
  if (D.Kind == DiagnosticKind::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
}

std::string DiagnosticEngine::toString() const {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    Result += D.toString();
    Result += '\n';
  }
  return Result;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

} // namespace an5d
