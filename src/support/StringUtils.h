//===- StringUtils.h - String formatting helpers ----------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers used by the code generator and the benchmark table
/// printers: join, indent, fixed-width numeric formatting.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SUPPORT_STRINGUTILS_H
#define AN5D_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace an5d {

/// Joins \p Items with \p Separator between consecutive elements.
std::string join(const std::vector<std::string> &Items,
                 const std::string &Separator);

/// Prefixes every non-empty line of \p Text with \p Spaces spaces.
std::string indentLines(const std::string &Text, int Spaces);

/// Formats \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision);

/// Right-pads \p Text with spaces to at least \p Width characters.
std::string padRight(const std::string &Text, std::size_t Width);

/// Left-pads \p Text with spaces to at least \p Width characters.
std::string padLeft(const std::string &Text, std::size_t Width);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Counts non-overlapping occurrences of \p Needle in \p Haystack.
std::size_t countOccurrences(const std::string &Haystack,
                             const std::string &Needle);

} // namespace an5d

#endif // AN5D_SUPPORT_STRINGUTILS_H
