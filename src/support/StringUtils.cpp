//===- StringUtils.cpp - String formatting helpers ------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

namespace an5d {

std::string join(const std::vector<std::string> &Items,
                 const std::string &Separator) {
  std::string Result;
  for (std::size_t I = 0; I < Items.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Items[I];
  }
  return Result;
}

std::string indentLines(const std::string &Text, int Spaces) {
  std::string Prefix(static_cast<std::size_t>(Spaces), ' ');
  std::string Result;
  std::size_t Start = 0;
  while (Start <= Text.size()) {
    std::size_t End = Text.find('\n', Start);
    std::string Line = Text.substr(
        Start, End == std::string::npos ? std::string::npos : End - Start);
    if (!Line.empty())
      Result += Prefix + Line;
    if (End == std::string::npos) {
      break;
    }
    Result += '\n';
    Start = End + 1;
  }
  return Result;
}

std::string formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string padRight(const std::string &Text, std::size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}

std::string padLeft(const std::string &Text, std::size_t Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

bool startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::size_t countOccurrences(const std::string &Haystack,
                             const std::string &Needle) {
  if (Needle.empty())
    return 0;
  std::size_t Count = 0;
  std::size_t Pos = Haystack.find(Needle);
  while (Pos != std::string::npos) {
    ++Count;
    Pos = Haystack.find(Needle, Pos + Needle.size());
  }
  return Count;
}

} // namespace an5d
