//===- SourceLocation.h - Positions within stencil source -------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight (line, column) pair used by the lexer, parser and the
/// diagnostic engine to point at positions in the user's C stencil source.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SUPPORT_SOURCELOCATION_H
#define AN5D_SUPPORT_SOURCELOCATION_H

#include <string>

namespace an5d {

/// A 1-based (line, column) position in the input buffer. Line 0 denotes an
/// invalid/unknown location (used for programmatically built IR).
struct SourceLocation {
  int Line = 0;
  int Column = 0;

  constexpr bool isValid() const { return Line > 0; }

  std::string toString() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend constexpr bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace an5d

#endif // AN5D_SUPPORT_SOURCELOCATION_H
