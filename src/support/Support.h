//===- Support.h - Small math and container helpers ------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Freestanding helpers used across the AN5D libraries: integer ceiling
/// division, rounding, and small numeric utilities shared by the performance
/// model and the emulator.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SUPPORT_SUPPORT_H
#define AN5D_SUPPORT_SUPPORT_H

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace an5d {

/// Integer ceiling division for non-negative numerators and positive
/// denominators; mirrors the ceil() terms in the paper's formulas for
/// thread-block counts (Section 4.1) and SM utilization (Section 5).
template <typename T>
constexpr T ceilDiv(T Numerator, T Denominator) {
  static_assert(std::is_integral_v<T>, "ceilDiv requires an integral type");
  assert(Denominator > 0 && "ceilDiv by non-positive denominator");
  assert(Numerator >= 0 && "ceilDiv of negative numerator");
  return (Numerator + Denominator - 1) / Denominator;
}

/// Rounds \p Value up to the next multiple of \p Multiple.
template <typename T>
constexpr T roundUpTo(T Value, T Multiple) {
  return ceilDiv(Value, Multiple) * Multiple;
}

/// Clamps \p Value into the closed interval [\p Lo, \p Hi].
template <typename T>
constexpr T clampTo(T Value, T Lo, T Hi) {
  assert(Lo <= Hi && "clampTo with inverted bounds");
  if (Value < Lo)
    return Lo;
  if (Value > Hi)
    return Hi;
  return Value;
}

/// Integer power with a small non-negative exponent.
constexpr std::int64_t ipow(std::int64_t Base, int Exponent) {
  assert(Exponent >= 0 && "ipow of negative exponent");
  std::int64_t Result = 1;
  for (int I = 0; I < Exponent; ++I)
    Result *= Base;
  return Result;
}

} // namespace an5d

#endif // AN5D_SUPPORT_SUPPORT_H
