//===- Diagnostic.h - Error and warning reporting ---------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine shared by the lexer, parser and the stencil
/// extractor. Diagnostics accumulate in a DiagnosticEngine; callers inspect
/// hasErrors() after a phase and may render all diagnostics to a string.
/// Messages follow the LLVM style: lowercase first letter, no trailing
/// period.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_SUPPORT_DIAGNOSTIC_H
#define AN5D_SUPPORT_DIAGNOSTIC_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace an5d {

/// Severity of a diagnostic message.
enum class DiagnosticKind { Error, Warning, Note };

/// One reported issue: severity, location and message text.
struct Diagnostic {
  DiagnosticKind Kind = DiagnosticKind::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "error: 3:5: message" (location omitted when unknown).
  std::string toString() const;
};

/// Collects diagnostics produced while processing one input buffer.
class DiagnosticEngine {
public:
  /// Reports an error at \p Loc.
  void error(SourceLocation Loc, std::string Message);

  /// Reports a warning at \p Loc.
  void warning(SourceLocation Loc, std::string Message);

  /// Attaches an explanatory note at \p Loc.
  void note(SourceLocation Loc, std::string Message);

  /// Records a pre-built diagnostic (the analysis passes construct theirs
  /// structurally and hand them over whole). Errors count toward
  /// hasErrors() exactly like error().
  void report(Diagnostic D);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every accumulated diagnostic, one per line.
  std::string toString() const;

  /// Drops all accumulated diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace an5d

#endif // AN5D_SUPPORT_DIAGNOSTIC_H
