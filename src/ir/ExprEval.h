//===- ExprEval.h - Typed evaluation of stencil expressions -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed recursive evaluator for StencilExpr trees, plus the registry of
/// math builtins shared by every component that interprets or emits calls
/// (ExprEval, ExprPlan, the CUDA and C++ code generators, the frontend).
///
/// The recursive walk is the semantic oracle of the project: the compiled
/// tape of ExprPlan.h and both executors are tested bit-for-bit against it.
/// Hot loops should prefer the tape (see ExprPlan.h); this walk re-resolves
/// names per node and recurses per cell, which is exactly the overhead the
/// plan removes.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_EXPREVAL_H
#define AN5D_IR_EXPREVAL_H

#include "ir/StencilExpr.h"

#include <cmath>
#include <cstdint>
#include <optional>

namespace an5d {

/// The math builtins understood by the evaluators and the code generators.
/// Both the double spelling ("sqrt") and the float spelling ("sqrtf") of a
/// builtin map to the same opcode; evaluation applies it in the element
/// type, and the emitters re-spell it for the target scalar type.
enum class MathFn : std::uint8_t { Sqrt, Fabs, Exp, Log, Sin, Cos };

/// Maps \p Callee ("sqrt", "sqrtf", ...) to its opcode; std::nullopt for
/// unknown callees.
std::optional<MathFn> mathFnForCallee(const std::string &Callee);

/// The canonical (double-precision) spelling of \p Fn.
const char *mathFnName(MathFn Fn);

/// Returns true if \p Callee is a math builtin the evaluator (and the code
/// generator) understands.
bool isKnownMathCall(const std::string &Callee);

/// Prints a fatal diagnostic naming \p Callee and the supported builtin set,
/// then aborts. Reaching this indicates IR that bypassed the frontend's
/// isKnownMathCall gate.
[[noreturn]] void reportUnknownMathCall(const std::string &Callee);

/// Applies the math builtin \p Fn to \p Arg in type \p T.
template <typename T> T applyMathFn(MathFn Fn, T Arg) {
  switch (Fn) {
  case MathFn::Sqrt:
    return static_cast<T>(std::sqrt(Arg));
  case MathFn::Fabs:
    return static_cast<T>(std::fabs(Arg));
  case MathFn::Exp:
    return static_cast<T>(std::exp(Arg));
  case MathFn::Log:
    return static_cast<T>(std::log(Arg));
  case MathFn::Sin:
    return static_cast<T>(std::sin(Arg));
  case MathFn::Cos:
    return static_cast<T>(std::cos(Arg));
  }
  assert(false && "unhandled math builtin opcode");
  return Arg;
}

/// Applies the math builtin named \p Callee to \p Arg; fatal diagnostic on
/// unknown names.
template <typename T> T applyMathCall(const std::string &Callee, T Arg) {
  if (std::optional<MathFn> Fn = mathFnForCallee(Callee))
    return applyMathFn<T>(*Fn, Arg);
  reportUnknownMathCall(Callee);
}

/// Evaluates \p E with element type \p T.
///
/// \param Read  callable (const GridReadExpr &) -> T supplying grid values.
/// \param Coef  callable (const std::string &) -> T supplying coefficient
///        values.
template <typename T, typename ReadFn, typename CoefFn>
T evalExpr(const StencilExpr &E, const ReadFn &Read, const CoefFn &Coef) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number:
    return static_cast<T>(cast<NumberExpr>(E).value());
  case StencilExpr::Kind::Coefficient:
    return Coef(cast<CoefficientExpr>(E).name());
  case StencilExpr::Kind::GridRead:
    return Read(cast<GridReadExpr>(E));
  case StencilExpr::Kind::Unary:
    return -evalExpr<T>(cast<UnaryExpr>(E).operand(), Read, Coef);
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    T L = evalExpr<T>(B.lhs(), Read, Coef);
    T R = evalExpr<T>(B.rhs(), Read, Coef);
    switch (B.op()) {
    case BinaryOpKind::Add:
      return L + R;
    case BinaryOpKind::Sub:
      return L - R;
    case BinaryOpKind::Mul:
      return L * R;
    case BinaryOpKind::Div:
      return L / R;
    }
    assert(false && "unhandled binary operator");
    return L;
  }
  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(E);
    assert(C.args().size() == 1 && "only unary math builtins are supported");
    T Arg = evalExpr<T>(*C.args()[0], Read, Coef);
    return applyMathCall<T>(C.callee(), Arg);
  }
  }
  assert(false && "unhandled expression kind");
  return T(0);
}

} // namespace an5d

#endif // AN5D_IR_EXPREVAL_H
