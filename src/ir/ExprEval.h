//===- ExprEval.h - Typed evaluation of stencil expressions -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed recursive evaluator for StencilExpr trees. Both the naive
/// reference executor and the blocked N.5D emulator evaluate cells through
/// this single entry point, with arithmetic performed in the stencil's
/// element type — so a correct blocked schedule reproduces the reference
/// result bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_EXPREVAL_H
#define AN5D_IR_EXPREVAL_H

#include "ir/StencilExpr.h"

#include <cmath>

namespace an5d {

/// Returns true if \p Callee is a math builtin the evaluator (and the code
/// generator) understands.
bool isKnownMathCall(const std::string &Callee);

/// Applies the math builtin \p Callee to \p Arg.
template <typename T> T applyMathCall(const std::string &Callee, T Arg) {
  if (Callee == "sqrt" || Callee == "sqrtf")
    return static_cast<T>(std::sqrt(Arg));
  if (Callee == "fabs" || Callee == "fabsf")
    return static_cast<T>(std::fabs(Arg));
  if (Callee == "exp" || Callee == "expf")
    return static_cast<T>(std::exp(Arg));
  assert(false && "unknown math builtin");
  return Arg;
}

/// Evaluates \p E with element type \p T.
///
/// \param Read  callable (const GridReadExpr &) -> T supplying grid values.
/// \param Coef  callable (const std::string &) -> T supplying coefficient
///        values.
template <typename T, typename ReadFn, typename CoefFn>
T evalExpr(const StencilExpr &E, const ReadFn &Read, const CoefFn &Coef) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number:
    return static_cast<T>(cast<NumberExpr>(E).value());
  case StencilExpr::Kind::Coefficient:
    return Coef(cast<CoefficientExpr>(E).name());
  case StencilExpr::Kind::GridRead:
    return Read(cast<GridReadExpr>(E));
  case StencilExpr::Kind::Unary:
    return -evalExpr<T>(cast<UnaryExpr>(E).operand(), Read, Coef);
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    T L = evalExpr<T>(B.lhs(), Read, Coef);
    T R = evalExpr<T>(B.rhs(), Read, Coef);
    switch (B.op()) {
    case BinaryOpKind::Add:
      return L + R;
    case BinaryOpKind::Sub:
      return L - R;
    case BinaryOpKind::Mul:
      return L * R;
    case BinaryOpKind::Div:
      return L / R;
    }
    assert(false && "unhandled binary operator");
    return L;
  }
  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(E);
    assert(C.args().size() == 1 && "only unary math builtins are supported");
    T Arg = evalExpr<T>(*C.args()[0], Read, Coef);
    return applyMathCall<T>(C.callee(), Arg);
  }
  }
  assert(false && "unhandled expression kind");
  return T(0);
}

} // namespace an5d

#endif // AN5D_IR_EXPREVAL_H
