//===- StencilExpr.cpp - Expression tree of a stencil update --------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/StencilExpr.h"

#include <cstdio>

namespace an5d {

void StencilExpr::anchor() {}

const char *binaryOpSpelling(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// clone
//===----------------------------------------------------------------------===//

ExprPtr NumberExpr::clone() const { return makeNumber(Value); }

ExprPtr CoefficientExpr::clone() const { return makeCoefficient(Name); }

ExprPtr GridReadExpr::clone() const { return makeGridRead(Array, Offsets); }

ExprPtr UnaryExpr::clone() const { return makeNeg(Operand->clone()); }

ExprPtr BinaryExpr::clone() const {
  return makeBinary(Op, LHS->clone(), RHS->clone());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const ExprPtr &A : Args)
    ClonedArgs.push_back(A->clone());
  return makeCall(Callee, std::move(ClonedArgs));
}

int GridReadExpr::numNonZeroOffsets() const {
  int Count = 0;
  for (int O : Offsets)
    if (O != 0)
      ++Count;
  return Count;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static void printExpr(const StencilExpr &E, std::string &Out) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number: {
    const auto &N = cast<NumberExpr>(E);
    char Buffer[48];
    // Print integers without a decimal tail, other values compactly.
    if (N.value() == static_cast<long long>(N.value()))
      std::snprintf(Buffer, sizeof(Buffer), "%lld",
                    static_cast<long long>(N.value()));
    else
      std::snprintf(Buffer, sizeof(Buffer), "%g", N.value());
    Out += Buffer;
    return;
  }
  case StencilExpr::Kind::Coefficient:
    Out += cast<CoefficientExpr>(E).name();
    return;
  case StencilExpr::Kind::GridRead: {
    const auto &R = cast<GridReadExpr>(E);
    Out += R.array();
    static const char *IndexNames[] = {"i", "j", "k", "l"};
    for (std::size_t D = 0; D < R.offsets().size(); ++D) {
      Out += '[';
      Out += IndexNames[D];
      int Offset = R.offsets()[D];
      if (Offset > 0) {
        Out += '+';
        Out += std::to_string(Offset);
      } else if (Offset < 0) {
        Out += std::to_string(Offset);
      }
      Out += ']';
    }
    return;
  }
  case StencilExpr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    Out += "(-";
    printExpr(U.operand(), Out);
    Out += ')';
    return;
  }
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    Out += '(';
    printExpr(B.lhs(), Out);
    Out += ' ';
    Out += binaryOpSpelling(B.op());
    Out += ' ';
    printExpr(B.rhs(), Out);
    Out += ')';
    return;
  }
  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(E);
    Out += C.callee();
    Out += '(';
    for (std::size_t I = 0; I < C.args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*C.args()[I], Out);
    }
    Out += ')';
    return;
  }
  }
}

std::string StencilExpr::toString() const {
  std::string Out;
  printExpr(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

bool StencilExpr::equals(const StencilExpr &Other) const {
  if (TheKind != Other.kind())
    return false;
  switch (TheKind) {
  case Kind::Number:
    return cast<NumberExpr>(*this).value() == cast<NumberExpr>(Other).value();
  case Kind::Coefficient:
    return cast<CoefficientExpr>(*this).name() ==
           cast<CoefficientExpr>(Other).name();
  case Kind::GridRead: {
    const auto &A = cast<GridReadExpr>(*this);
    const auto &B = cast<GridReadExpr>(Other);
    return A.array() == B.array() && A.offsets() == B.offsets();
  }
  case Kind::Unary: {
    const auto &A = cast<UnaryExpr>(*this);
    const auto &B = cast<UnaryExpr>(Other);
    return A.op() == B.op() && A.operand().equals(B.operand());
  }
  case Kind::Binary: {
    const auto &A = cast<BinaryExpr>(*this);
    const auto &B = cast<BinaryExpr>(Other);
    return A.op() == B.op() && A.lhs().equals(B.lhs()) &&
           A.rhs().equals(B.rhs());
  }
  case Kind::Call: {
    const auto &A = cast<CallExpr>(*this);
    const auto &B = cast<CallExpr>(Other);
    if (A.callee() != B.callee() || A.args().size() != B.args().size())
      return false;
    for (std::size_t I = 0; I < A.args().size(); ++I)
      if (!A.args()[I]->equals(*B.args()[I]))
        return false;
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Builder helpers
//===----------------------------------------------------------------------===//

ExprPtr makeNumber(double Value) { return std::make_unique<NumberExpr>(Value); }

ExprPtr makeCoefficient(std::string Name) {
  return std::make_unique<CoefficientExpr>(std::move(Name));
}

ExprPtr makeGridRead(std::string Array, std::vector<int> Offsets) {
  return std::make_unique<GridReadExpr>(std::move(Array), std::move(Offsets));
}

ExprPtr makeNeg(ExprPtr Operand) {
  return std::make_unique<UnaryExpr>(UnaryOpKind::Neg, std::move(Operand));
}

ExprPtr makeBinary(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS) {
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS));
}

ExprPtr makeAdd(ExprPtr LHS, ExprPtr RHS) {
  return makeBinary(BinaryOpKind::Add, std::move(LHS), std::move(RHS));
}

ExprPtr makeSub(ExprPtr LHS, ExprPtr RHS) {
  return makeBinary(BinaryOpKind::Sub, std::move(LHS), std::move(RHS));
}

ExprPtr makeMul(ExprPtr LHS, ExprPtr RHS) {
  return makeBinary(BinaryOpKind::Mul, std::move(LHS), std::move(RHS));
}

ExprPtr makeDiv(ExprPtr LHS, ExprPtr RHS) {
  return makeBinary(BinaryOpKind::Div, std::move(LHS), std::move(RHS));
}

ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args) {
  return std::make_unique<CallExpr>(std::move(Callee), std::move(Args));
}

} // namespace an5d
