//===- ExprPlan.h - Compiled flat-tape stencil evaluation -------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiled evaluation of stencil update expressions. A StencilProgram is
/// lowered ONCE into an ExprPlan — a flat postfix tape whose operands are
/// already resolved: coefficient names become immediate values, math-call
/// names become MathFn opcodes, and grid reads become indices into a
/// deduplicated tap table. The executors then specialize the plan per
/// element type into a CompiledTape<T>, which additionally folds
/// constant-only subtrees in T precision, and evaluate it with a small
/// register-file interpreter: no recursion, no string comparisons, no
/// per-cell heap allocation.
///
/// Addressing is left to the caller: evaluation takes a base pointer (the
/// current cell in a Grid, or the current lane in a BlockedExecutor ring)
/// plus one pre-linearized flat offset per tap. This lets both executors
/// hoist all coordinate arithmetic out of their innermost loops.
///
/// Because folding and evaluation perform exactly the operations of the
/// recursive evalExpr walk, in the same order and the same type, the tape
/// result matches the tree walk bit for bit — tests/ExprPlanTest.cpp
/// enforces this over every benchmark stencil. The tree walk stays
/// available behind EvalStrategy::TreeWalk as the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_EXPRPLAN_H
#define AN5D_IR_EXPRPLAN_H

#include "ir/ExprEval.h"

#include <cstdint>
#include <map>
#include <vector>

namespace an5d {

/// Selects the evaluation engine an executor runs cells through.
enum class EvalStrategy {
  /// The flat postfix tape of ExprPlan (default; fast path).
  CompiledTape,
  /// The recursive evalExpr tree walk (bit-for-bit oracle).
  TreeWalk,
};

/// One instruction of the flat evaluation tape. ExprPlan::compile emits
/// only the base ops; the fused superinstructions below the marker are
/// introduced by CompiledTape's peephole pass and halve-to-quarter the
/// dispatch count of typical weighted-sum stencils.
enum class TapeOpKind : std::uint8_t {
  PushConst, ///< Push constant \c Arg of the constant table.
  LoadTap,   ///< Push the grid value of tap \c Arg.
  Neg,       ///< Negate the top of stack.
  Add,       ///< Pop two, push sum.
  Sub,       ///< Pop two, push difference.
  Mul,       ///< Pop two, push product.
  Div,       ///< Pop two, push quotient.
  MathCall,  ///< Apply MathFn(\c Arg) to the top of stack.

  // Fused superinstructions (CompiledTape only; \c Value holds the
  // constant where one participates).
  MulConstTap, ///< Push Value * tap[Arg].
  MacConstTap, ///< top = top + Value * tap[Arg].
  AddTap,      ///< top = top + tap[Arg].
  SubTap,      ///< top = top - tap[Arg].
  MulTap,      ///< top = top * tap[Arg].
  AddConst,    ///< top = top + Value.
  SubConst,    ///< top = top - Value.
  MulConst,    ///< top = top * Value.
  DivConst,    ///< top = top / Value.
};

struct TapeOp {
  TapeOpKind Kind;
  std::uint16_t Arg = 0;
};

/// The type-neutral compiled form of one stencil update expression.
class ExprPlan {
public:
  /// Lowers \p Update into a plan. Coefficient names are resolved against
  /// \p Coefficients (missing bindings assert, as in
  /// StencilProgram::coefficientValue); math callees are resolved to
  /// MathFn opcodes (unknown callees raise the fatal diagnostic of
  /// reportUnknownMathCall).
  static ExprPlan compile(const StencilExpr &Update,
                          const std::map<std::string, double> &Coefficients);

  /// The postfix instruction sequence.
  const std::vector<TapeOp> &ops() const { return Ops; }

  /// Constant pool referenced by PushConst (numbers and resolved
  /// coefficients, deduplicated).
  const std::vector<double> &constants() const { return Constants; }

  /// Distinct spatial taps referenced by LoadTap, in first-use order.
  /// Duplicate reads of one tap in the source expression share one entry.
  const std::vector<std::vector<int>> &taps() const { return Taps; }

  int numTaps() const { return static_cast<int>(Taps.size()); }

  /// Peak operand-stack depth needed to evaluate the tape.
  int maxStackDepth() const { return MaxStackDepth; }

  /// True if the update divides by a compile-time constant (literal or
  /// named coefficient) — mirrors containsConstantDivision over the tree,
  /// pre-computed so per-configuration model evaluation never re-walks the
  /// expression.
  bool hasConstantDivision() const { return HasConstantDivision; }

private:
  std::vector<TapeOp> Ops;
  std::vector<double> Constants;
  std::vector<std::vector<int>> Taps;
  int MaxStackDepth = 0;
  bool HasConstantDivision = false;
};

/// An ExprPlan specialized to element type \p T: constants are narrowed to
/// T once, and any subtree whose operands are all constants is folded at
/// construction — in T precision and post-order, i.e. exactly the
/// operations the tree walk would have performed on it.
template <typename T> class CompiledTape {
public:
  explicit CompiledTape(const ExprPlan &Plan) : Taps(Plan.taps()) {
    const std::vector<double> &Pool = Plan.constants();
    // Indices of the op that starts each operand currently on the build
    // stack; an operand is a folded constant iff it spans exactly one
    // PushConst op.
    std::vector<std::size_t> Starts;
    auto IsConstFrom = [&](std::size_t Start, std::size_t End) {
      return End == Start + 1 && Ops[Start].Kind == TapeOpKind::PushConst;
    };
    for (const TapeOp &Op : Plan.ops()) {
      switch (Op.Kind) {
      case TapeOpKind::PushConst:
        Starts.push_back(Ops.size());
        Ops.push_back({Op.Kind, Op.Arg, static_cast<T>(Pool[Op.Arg])});
        break;
      case TapeOpKind::LoadTap:
        Starts.push_back(Ops.size());
        Ops.push_back({Op.Kind, Op.Arg, T(0)});
        break;
      case TapeOpKind::Neg:
        if (IsConstFrom(Starts.back(), Ops.size()))
          Ops.back().Value = -Ops.back().Value;
        else
          Ops.push_back({Op.Kind, 0, T(0)});
        break;
      case TapeOpKind::MathCall:
        if (IsConstFrom(Starts.back(), Ops.size()))
          Ops.back().Value =
              applyMathFn<T>(static_cast<MathFn>(Op.Arg), Ops.back().Value);
        else
          Ops.push_back({Op.Kind, Op.Arg, T(0)});
        break;
      case TapeOpKind::Add:
      case TapeOpKind::Sub:
      case TapeOpKind::Mul:
      case TapeOpKind::Div: {
        std::size_t RhsStart = Starts.back();
        Starts.pop_back();
        std::size_t LhsStart = Starts.back();
        if (IsConstFrom(LhsStart, RhsStart) &&
            IsConstFrom(RhsStart, Ops.size())) {
          T Folded = applyBinary(Op.Kind, Ops[LhsStart].Value,
                                 Ops[RhsStart].Value);
          Ops.resize(LhsStart);
          Ops.push_back({TapeOpKind::PushConst, 0, Folded});
        } else {
          Ops.push_back({Op.Kind, 0, T(0)});
        }
        break;
      }
      }
    }
    assert(Starts.size() == 1 && "malformed evaluation tape");
    fuseSuperinstructions();
    Scratch.assign(static_cast<std::size_t>(Plan.maxStackDepth()), T(0));
  }

  /// The tap table evaluation reads through (shared with the plan).
  const std::vector<std::vector<int>> &taps() const { return Taps; }
  int numTaps() const { return static_cast<int>(Taps.size()); }

  /// Instructions remaining after folding (folding diagnostics / tests).
  int numOps() const { return static_cast<int>(Ops.size()); }

  /// Evaluates the tape for one cell. Tap \c K reads
  /// \c Cell[TapOffsets[K]]; the caller pre-linearizes the offsets against
  /// its own storage (grid strides, or ring slot*lane arithmetic) so this
  /// loop touches memory and nothing else.
  T eval(const T *Cell, const long long *TapOffsets) {
    T *Stack = Scratch.data();
    int SP = 0;
    for (const TypedOp &Op : Ops) {
      switch (Op.Kind) {
      case TapeOpKind::PushConst:
        Stack[SP++] = Op.Value;
        break;
      case TapeOpKind::LoadTap:
        Stack[SP++] = Cell[TapOffsets[Op.Arg]];
        break;
      case TapeOpKind::Neg:
        Stack[SP - 1] = -Stack[SP - 1];
        break;
      case TapeOpKind::Add:
        Stack[SP - 2] = Stack[SP - 2] + Stack[SP - 1];
        --SP;
        break;
      case TapeOpKind::Sub:
        Stack[SP - 2] = Stack[SP - 2] - Stack[SP - 1];
        --SP;
        break;
      case TapeOpKind::Mul:
        Stack[SP - 2] = Stack[SP - 2] * Stack[SP - 1];
        --SP;
        break;
      case TapeOpKind::Div:
        Stack[SP - 2] = Stack[SP - 2] / Stack[SP - 1];
        --SP;
        break;
      case TapeOpKind::MathCall:
        Stack[SP - 1] =
            applyMathFn<T>(static_cast<MathFn>(Op.Arg), Stack[SP - 1]);
        break;
      case TapeOpKind::MulConstTap:
        Stack[SP++] = Op.Value * Cell[TapOffsets[Op.Arg]];
        break;
      case TapeOpKind::MacConstTap: {
        // Two distinct IEEE operations, exactly as the tree walk performs
        // them. A compiler must not contract them into an FMA — that
        // would break the bit-for-bit oracle contract that
        // tests/ExprPlanTest.cpp enforces; the root CMakeLists passes
        // -ffp-contract=off project-wide to guarantee it.
        T Product = Op.Value * Cell[TapOffsets[Op.Arg]];
        Stack[SP - 1] = Stack[SP - 1] + Product;
        break;
      }
      case TapeOpKind::AddTap:
        Stack[SP - 1] = Stack[SP - 1] + Cell[TapOffsets[Op.Arg]];
        break;
      case TapeOpKind::SubTap:
        Stack[SP - 1] = Stack[SP - 1] - Cell[TapOffsets[Op.Arg]];
        break;
      case TapeOpKind::MulTap:
        Stack[SP - 1] = Stack[SP - 1] * Cell[TapOffsets[Op.Arg]];
        break;
      case TapeOpKind::AddConst:
        Stack[SP - 1] = Stack[SP - 1] + Op.Value;
        break;
      case TapeOpKind::SubConst:
        Stack[SP - 1] = Stack[SP - 1] - Op.Value;
        break;
      case TapeOpKind::MulConst:
        Stack[SP - 1] = Stack[SP - 1] * Op.Value;
        break;
      case TapeOpKind::DivConst:
        Stack[SP - 1] = Stack[SP - 1] / Op.Value;
        break;
      }
    }
    return Stack[0];
  }

private:
  struct TypedOp {
    TapeOpKind Kind;
    std::uint16_t Arg;
    T Value; ///< Immediate for PushConst; unused otherwise.
  };

  /// Peephole pass over the folded postfix tape: an op that consumes the
  /// value(s) the immediately preceding single-push op(s) produced can
  /// absorb them. This is always sound in postfix form — adjacency means
  /// "top of stack" — and it turns the dominant weighted-sum shape
  /// (c*A[tap] accumulation chains) into one dispatch per tap.
  /// Swapping LoadTap/PushConst multiplication operands is bitwise safe:
  /// IEEE multiplication of the finite constant and the loaded value is
  /// commutative.
  void fuseSuperinstructions() {
    std::vector<TypedOp> Fused;
    Fused.reserve(Ops.size());
    auto Last = [&]() -> TypedOp & { return Fused.back(); };
    auto LastIs = [&](TapeOpKind Kind, std::size_t Back = 1) {
      return Fused.size() >= Back &&
             Fused[Fused.size() - Back].Kind == Kind;
    };
    for (const TypedOp &Op : Ops) {
      switch (Op.Kind) {
      case TapeOpKind::Mul:
        if (LastIs(TapeOpKind::LoadTap) && LastIs(TapeOpKind::PushConst, 2)) {
          std::uint16_t Tap = Last().Arg;
          Fused.pop_back();
          Last() = {TapeOpKind::MulConstTap, Tap, Last().Value};
          continue;
        }
        if (LastIs(TapeOpKind::PushConst) && LastIs(TapeOpKind::LoadTap, 2)) {
          T Weight = Last().Value;
          Fused.pop_back();
          Last() = {TapeOpKind::MulConstTap, Last().Arg, Weight};
          continue;
        }
        if (LastIs(TapeOpKind::LoadTap)) {
          Last().Kind = TapeOpKind::MulTap;
          continue;
        }
        if (LastIs(TapeOpKind::PushConst)) {
          Last().Kind = TapeOpKind::MulConst;
          continue;
        }
        break;
      case TapeOpKind::Add:
        if (LastIs(TapeOpKind::MulConstTap)) {
          Last().Kind = TapeOpKind::MacConstTap;
          continue;
        }
        if (LastIs(TapeOpKind::LoadTap)) {
          Last().Kind = TapeOpKind::AddTap;
          continue;
        }
        if (LastIs(TapeOpKind::PushConst)) {
          Last().Kind = TapeOpKind::AddConst;
          continue;
        }
        break;
      case TapeOpKind::Sub:
        if (LastIs(TapeOpKind::LoadTap)) {
          Last().Kind = TapeOpKind::SubTap;
          continue;
        }
        if (LastIs(TapeOpKind::PushConst)) {
          Last().Kind = TapeOpKind::SubConst;
          continue;
        }
        break;
      case TapeOpKind::Div:
        if (LastIs(TapeOpKind::PushConst)) {
          Last().Kind = TapeOpKind::DivConst;
          continue;
        }
        break;
      default:
        break;
      }
      Fused.push_back(Op);
    }
    Ops = std::move(Fused);
  }

  static T applyBinary(TapeOpKind Kind, T L, T R) {
    switch (Kind) {
    case TapeOpKind::Add:
      return L + R;
    case TapeOpKind::Sub:
      return L - R;
    case TapeOpKind::Mul:
      return L * R;
    case TapeOpKind::Div:
      return L / R;
    default:
      assert(false && "applyBinary on non-binary op");
      return L;
    }
  }

  std::vector<TypedOp> Ops;
  std::vector<std::vector<int>> Taps;
  std::vector<T> Scratch;
};

} // namespace an5d

#endif // AN5D_IR_EXPRPLAN_H
