//===- ExprAnalysis.cpp - Static analyses over stencil expressions --------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprAnalysis.h"

#include "support/Support.h"

#include <algorithm>
#include <cstdlib>
#include <set>

namespace an5d {

//===----------------------------------------------------------------------===//
// Tap collection, radius, shape
//===----------------------------------------------------------------------===//

static void collectTapsImpl(const StencilExpr &E,
                            std::set<std::vector<int>> &Out) {
  switch (E.kind()) {
  case StencilExpr::Kind::GridRead:
    Out.insert(cast<GridReadExpr>(E).offsets());
    return;
  case StencilExpr::Kind::Unary:
    collectTapsImpl(cast<UnaryExpr>(E).operand(), Out);
    return;
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    collectTapsImpl(B.lhs(), Out);
    collectTapsImpl(B.rhs(), Out);
    return;
  }
  case StencilExpr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      collectTapsImpl(*A, Out);
    return;
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
    return;
  }
}

std::vector<std::vector<int>> collectTaps(const StencilExpr &E) {
  std::set<std::vector<int>> Set;
  collectTapsImpl(E, Set);
  return {Set.begin(), Set.end()};
}

int computeRadius(const StencilExpr &E) {
  int Radius = 0;
  for (const std::vector<int> &Tap : collectTaps(E))
    for (int Offset : Tap)
      Radius = std::max(Radius, std::abs(Offset));
  return Radius;
}

StencilShape classifyShape(const StencilExpr &E, int NumDims) {
  std::vector<std::vector<int>> Taps = collectTaps(E);
  if (Taps.empty())
    return StencilShape::General;

  bool AllAxisAligned = true;
  for (const std::vector<int> &Tap : Taps) {
    int NonZero = 0;
    for (int Offset : Tap)
      if (Offset != 0)
        ++NonZero;
    if (NonZero > 1)
      AllAxisAligned = false;
  }
  if (AllAxisAligned)
    return StencilShape::Star;

  // Box requires the full (2*rad+1)^NumDims cube of taps.
  int Radius = computeRadius(E);
  long long CubeSize = ipow(2 * Radius + 1, NumDims);
  if (static_cast<long long>(Taps.size()) == CubeSize)
    return StencilShape::Box;
  return StencilShape::General;
}

//===----------------------------------------------------------------------===//
// FLOP census (Table 3)
//===----------------------------------------------------------------------===//

static void countFlopsImpl(const StencilExpr &E, FlopCount &Out) {
  switch (E.kind()) {
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    switch (B.op()) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
      ++Out.Adds;
      break;
    case BinaryOpKind::Mul:
      ++Out.Muls;
      break;
    case BinaryOpKind::Div:
      ++Out.Divs;
      break;
    }
    countFlopsImpl(B.lhs(), Out);
    countFlopsImpl(B.rhs(), Out);
    return;
  }
  case StencilExpr::Kind::Unary:
    // Negation folds into the consuming instruction; Table 3 does not
    // charge it.
    countFlopsImpl(cast<UnaryExpr>(E).operand(), Out);
    return;
  case StencilExpr::Kind::Call:
    // Math calls (sqrt) are not counted as FLOPs in Table 3.
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      countFlopsImpl(*A, Out);
    return;
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
  case StencilExpr::Kind::GridRead:
    return;
  }
}

FlopCount countFlops(const StencilExpr &E) {
  FlopCount Out;
  countFlopsImpl(E, Out);
  return Out;
}

bool containsMathCall(const StencilExpr &E) {
  switch (E.kind()) {
  case StencilExpr::Kind::Call:
    return true;
  case StencilExpr::Kind::Unary:
    return containsMathCall(cast<UnaryExpr>(E).operand());
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return containsMathCall(B.lhs()) || containsMathCall(B.rhs());
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Associativity detection
//===----------------------------------------------------------------------===//

static bool isConstantLeaf(const StencilExpr &E) {
  return isa<NumberExpr>(E) || isa<CoefficientExpr>(E);
}

bool containsConstantDivision(const StencilExpr &E) {
  switch (E.kind()) {
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    if (B.op() == BinaryOpKind::Div && isConstantLeaf(B.rhs()))
      return true;
    return containsConstantDivision(B.lhs()) ||
           containsConstantDivision(B.rhs());
  }
  case StencilExpr::Kind::Unary:
    return containsConstantDivision(cast<UnaryExpr>(E).operand());
  case StencilExpr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      if (containsConstantDivision(*A))
        return true;
    return false;
  default:
    return false;
  }
}

/// Flattens a +/- chain into individual term expressions (sign ignored —
/// only the structure matters for associativity).
static void flattenSum(const StencilExpr &E,
                       std::vector<const StencilExpr *> &Terms) {
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (B->op() == BinaryOpKind::Add || B->op() == BinaryOpKind::Sub) {
      flattenSum(B->lhs(), Terms);
      flattenSum(B->rhs(), Terms);
      return;
    }
  }
  if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
    flattenSum(U->operand(), Terms);
    return;
  }
  Terms.push_back(&E);
}

/// A valid partial-summation term is a product of leaves with at most one
/// grid read and no divisions or calls.
static bool isAssociativeTerm(const StencilExpr &E, int &NumReads) {
  if (isConstantLeaf(E))
    return true;
  if (isa<GridReadExpr>(E)) {
    ++NumReads;
    return NumReads <= 1;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(&E))
    return isAssociativeTerm(U->operand(), NumReads);
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (B->op() != BinaryOpKind::Mul)
      return false;
    return isAssociativeTerm(B->lhs(), NumReads) &&
           isAssociativeTerm(B->rhs(), NumReads);
  }
  return false;
}

bool isAssociativeUpdate(const StencilExpr &E) {
  const StencilExpr *Body = &E;
  // Strip one top-level division by a constant (the /c0 of the Jacobi
  // benchmarks).
  if (const auto *B = dyn_cast<BinaryExpr>(Body))
    if (B->op() == BinaryOpKind::Div && isConstantLeaf(B->rhs()))
      Body = &B->lhs();

  std::vector<const StencilExpr *> Terms;
  flattenSum(*Body, Terms);
  if (Terms.empty())
    return false;

  for (const StencilExpr *Term : Terms) {
    int NumReads = 0;
    if (!isAssociativeTerm(*Term, NumReads))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Fast-math instruction-mix estimation
//===----------------------------------------------------------------------===//

static void mixOfGeneral(const StencilExpr &E, InstructionMix &Mix);

/// Handles an Add/Sub node, fusing one multiplicand side into an FMA when
/// available — the greedy pattern NVCC applies under fast math.
static void mixOfAddLike(const BinaryExpr &B, InstructionMix &Mix) {
  const StencilExpr *Sides[2] = {&B.lhs(), &B.rhs()};
  for (int I = 0; I < 2; ++I) {
    const auto *Mul = dyn_cast<BinaryExpr>(Sides[I]);
    if (Mul && Mul->op() == BinaryOpKind::Mul) {
      ++Mix.Fma;
      mixOfGeneral(Mul->lhs(), Mix);
      mixOfGeneral(Mul->rhs(), Mix);
      mixOfGeneral(*Sides[1 - I], Mix);
      return;
    }
  }
  ++Mix.Add;
  mixOfGeneral(B.lhs(), Mix);
  mixOfGeneral(B.rhs(), Mix);
}

static void mixOfGeneral(const StencilExpr &E, InstructionMix &Mix) {
  switch (E.kind()) {
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    switch (B.op()) {
    case BinaryOpKind::Add:
    case BinaryOpKind::Sub:
      mixOfAddLike(B, Mix);
      return;
    case BinaryOpKind::Mul:
      ++Mix.Mul;
      break;
    case BinaryOpKind::Div:
      // Fast math turns division by a constant into a multiply; other
      // divisions retire through the special-function path.
      if (isConstantLeaf(B.rhs()))
        ++Mix.Mul;
      else
        ++Mix.Other;
      break;
    }
    mixOfGeneral(B.lhs(), Mix);
    mixOfGeneral(B.rhs(), Mix);
    return;
  }
  case StencilExpr::Kind::Unary:
    mixOfGeneral(cast<UnaryExpr>(E).operand(), Mix);
    return;
  case StencilExpr::Kind::Call:
    ++Mix.Other;
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      mixOfGeneral(*A, Mix);
    return;
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
  case StencilExpr::Kind::GridRead:
    return;
  }
}

InstructionMix estimateInstructionMix(const StencilExpr &E) {
  InstructionMix Mix;

  if (isAssociativeUpdate(E)) {
    // Sum of K coefficient*read products. Without a trailing constant
    // division one product seeds the accumulator as a plain MUL and the
    // remaining K-1 fuse; with the division, fast math distributes the
    // reciprocal over the sum and every product fuses into an FMA
    // (Section 5's analysis of the Jacobi stencils).
    const StencilExpr *Body = &E;
    bool HasConstDiv = false;
    if (const auto *B = dyn_cast<BinaryExpr>(Body))
      if (B->op() == BinaryOpKind::Div && (isa<NumberExpr>(B->rhs()) ||
                                           isa<CoefficientExpr>(B->rhs()))) {
        Body = &B->lhs();
        HasConstDiv = true;
      }
    std::vector<const StencilExpr *> Terms;
    flattenSum(*Body, Terms);
    long long K = static_cast<long long>(Terms.size());
    if (HasConstDiv) {
      Mix.Fma = K;
    } else {
      Mix.Fma = K - 1;
      Mix.Mul = 1;
    }
    return Mix;
  }

  mixOfGeneral(E, Mix);
  return Mix;
}

} // namespace an5d
