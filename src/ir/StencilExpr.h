//===- StencilExpr.h - Expression tree of a stencil update ------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized expression IR that a stencil update statement lowers to.
/// A StencilExpr tree is what the frontend extracts from the C input
/// (Section 4.3.3 of the paper) and what every downstream component —
/// classification, FLOP/FMA analysis, the reference and blocked executors,
/// and the CUDA code generator — consumes.
///
/// The hierarchy uses LLVM-style kind tags with isa<>/dyn_cast<> helpers
/// instead of C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_STENCILEXPR_H
#define AN5D_IR_STENCILEXPR_H

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace an5d {

class StencilExpr;
using ExprPtr = std::unique_ptr<StencilExpr>;

/// Binary arithmetic operators appearing in stencil updates.
enum class BinaryOpKind { Add, Sub, Mul, Div };

/// Unary operators appearing in stencil updates.
enum class UnaryOpKind { Neg };

/// Returns the C spelling of \p Op ("+", "-", "*", "/").
const char *binaryOpSpelling(BinaryOpKind Op);

/// Base class of all stencil expression nodes.
class StencilExpr {
public:
  enum class Kind { Number, Coefficient, GridRead, Unary, Binary, Call };

  explicit StencilExpr(Kind K) : TheKind(K) {}
  virtual ~StencilExpr() = default;

  StencilExpr(const StencilExpr &) = delete;
  StencilExpr &operator=(const StencilExpr &) = delete;

  Kind kind() const { return TheKind; }

  /// Deep-copies this subtree.
  virtual ExprPtr clone() const = 0;

  /// Renders this subtree as a C expression string.
  std::string toString() const;

  /// Structural equality (node kinds, operators, names, offsets, values).
  bool equals(const StencilExpr &Other) const;

private:
  const Kind TheKind;

  virtual void anchor();
};

/// A floating-point literal (e.g. the 5.1f coefficients in Fig. 4 of the
/// paper). The value is stored as double; evaluation truncates to the
/// stencil's element type.
class NumberExpr final : public StencilExpr {
public:
  explicit NumberExpr(double Value)
      : StencilExpr(Kind::Number), Value(Value) {}

  double value() const { return Value; }

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::Number;
  }

private:
  double Value;
};

/// A named compile-time constant coefficient (the c_(x,y) symbols of
/// Table 3). Values are bound in StencilProgram::coefficientValue.
class CoefficientExpr final : public StencilExpr {
public:
  explicit CoefficientExpr(std::string Name)
      : StencilExpr(Kind::Coefficient), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::Coefficient;
  }

private:
  std::string Name;
};

/// A read of the stencil grid at a constant spatial offset from the current
/// cell, at the previous time-step. Offsets are ordered outermost spatial
/// dimension first; index 0 is the streaming dimension of N.5D blocking.
class GridReadExpr final : public StencilExpr {
public:
  GridReadExpr(std::string Array, std::vector<int> Offsets)
      : StencilExpr(Kind::GridRead), Array(std::move(Array)),
        Offsets(std::move(Offsets)) {}

  const std::string &array() const { return Array; }
  const std::vector<int> &offsets() const { return Offsets; }
  int numDims() const { return static_cast<int>(Offsets.size()); }

  /// Number of offset components that are non-zero; 0 means the center cell.
  int numNonZeroOffsets() const;

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::GridRead;
  }

private:
  std::string Array;
  std::vector<int> Offsets;
};

/// A unary operation (currently only negation).
class UnaryExpr final : public StencilExpr {
public:
  UnaryExpr(UnaryOpKind Op, ExprPtr Operand)
      : StencilExpr(Kind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOpKind op() const { return Op; }
  const StencilExpr &operand() const { return *Operand; }

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::Unary;
  }

private:
  UnaryOpKind Op;
  ExprPtr Operand;
};

/// A binary arithmetic operation.
class BinaryExpr final : public StencilExpr {
public:
  BinaryExpr(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS)
      : StencilExpr(Kind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOpKind op() const { return Op; }
  const StencilExpr &lhs() const { return *LHS; }
  const StencilExpr &rhs() const { return *RHS; }

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::Binary;
  }

private:
  BinaryOpKind Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// A call to a unary math builtin (sqrt, fabs, exp, log, sin, cos and
/// their float 'f' spellings — the MathFn set of ir/ExprEval.h).
class CallExpr final : public StencilExpr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : StencilExpr(Kind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }

  ExprPtr clone() const override;

  static bool classof(const StencilExpr *E) {
    return E->kind() == Kind::Call;
  }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// LLVM-style isa<> over StencilExpr nodes.
template <typename T> bool isa(const StencilExpr &E) { return T::classof(&E); }

/// LLVM-style dyn_cast<> over StencilExpr pointers; returns nullptr on
/// kind mismatch.
template <typename T> const T *dyn_cast(const StencilExpr *E) {
  assert(E && "dyn_cast on null expression");
  return T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

/// LLVM-style cast<> over StencilExpr pointers; asserts on kind mismatch.
template <typename T> const T &cast(const StencilExpr &E) {
  assert(T::classof(&E) && "cast to wrong expression kind");
  return static_cast<const T &>(E);
}

//===----------------------------------------------------------------------===//
// Builder helpers
//===----------------------------------------------------------------------===//

/// Creates a floating-point literal node.
ExprPtr makeNumber(double Value);

/// Creates a named-coefficient node.
ExprPtr makeCoefficient(std::string Name);

/// Creates a grid read at the given spatial \p Offsets.
ExprPtr makeGridRead(std::string Array, std::vector<int> Offsets);

/// Creates a unary negation node.
ExprPtr makeNeg(ExprPtr Operand);

/// Creates a binary operation node.
ExprPtr makeBinary(BinaryOpKind Op, ExprPtr LHS, ExprPtr RHS);

ExprPtr makeAdd(ExprPtr LHS, ExprPtr RHS);
ExprPtr makeSub(ExprPtr LHS, ExprPtr RHS);
ExprPtr makeMul(ExprPtr LHS, ExprPtr RHS);
ExprPtr makeDiv(ExprPtr LHS, ExprPtr RHS);

/// Creates a call to a math builtin.
ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args);

} // namespace an5d

#endif // AN5D_IR_STENCILEXPR_H
