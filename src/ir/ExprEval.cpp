//===- ExprEval.cpp - Typed evaluation of stencil expressions -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprEval.h"

#include <cstdio>
#include <cstdlib>

namespace an5d {

std::optional<MathFn> mathFnForCallee(const std::string &Callee) {
  if (Callee == "sqrt" || Callee == "sqrtf")
    return MathFn::Sqrt;
  if (Callee == "fabs" || Callee == "fabsf")
    return MathFn::Fabs;
  if (Callee == "exp" || Callee == "expf")
    return MathFn::Exp;
  if (Callee == "log" || Callee == "logf")
    return MathFn::Log;
  if (Callee == "sin" || Callee == "sinf")
    return MathFn::Sin;
  if (Callee == "cos" || Callee == "cosf")
    return MathFn::Cos;
  return std::nullopt;
}

const char *mathFnName(MathFn Fn) {
  switch (Fn) {
  case MathFn::Sqrt:
    return "sqrt";
  case MathFn::Fabs:
    return "fabs";
  case MathFn::Exp:
    return "exp";
  case MathFn::Log:
    return "log";
  case MathFn::Sin:
    return "sin";
  case MathFn::Cos:
    return "cos";
  }
  return "<unknown>";
}

bool isKnownMathCall(const std::string &Callee) {
  return mathFnForCallee(Callee).has_value();
}

void reportUnknownMathCall(const std::string &Callee) {
  std::fprintf(stderr,
               "an5d fatal error: unknown math builtin '%s'; supported "
               "builtins are sqrt, fabs, exp, log, sin, cos (and their "
               "float 'f' spellings)\n",
               Callee.c_str());
  std::abort();
}

} // namespace an5d
