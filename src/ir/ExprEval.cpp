//===- ExprEval.cpp - Typed evaluation of stencil expressions -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprEval.h"

namespace an5d {

bool isKnownMathCall(const std::string &Callee) {
  return Callee == "sqrt" || Callee == "sqrtf" || Callee == "fabs" ||
         Callee == "fabsf" || Callee == "exp" || Callee == "expf";
}

} // namespace an5d
