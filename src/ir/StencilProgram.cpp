//===- StencilProgram.cpp - Normalized stencil description ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/StencilProgram.h"

#include "ir/ExprAnalysis.h"
#include "ir/ExprPlan.h"

namespace an5d {

int scalarSizeInBytes(ScalarType Type) {
  return Type == ScalarType::Float ? 4 : 8;
}

const char *scalarTypeName(ScalarType Type) {
  return Type == ScalarType::Float ? "float" : "double";
}

const char *stencilShapeName(StencilShape Shape) {
  switch (Shape) {
  case StencilShape::Star:
    return "star";
  case StencilShape::Box:
    return "box";
  case StencilShape::General:
    return "general";
  }
  return "unknown";
}

const char *optimizationClassName(OptimizationClass Class) {
  switch (Class) {
  case OptimizationClass::DiagonalAccessFree:
    return "diagonal-access-free";
  case OptimizationClass::AssociativeStencil:
    return "associative";
  case OptimizationClass::Otherwise:
    return "otherwise";
  }
  return "unknown";
}

double InstructionMix::aluEfficiency() const {
  long long Slots = Fma + Mul + Add + Other;
  if (Slots == 0)
    return 1.0;
  long long Retired = 2 * Fma + Mul + Add + Other;
  return static_cast<double>(Retired) / static_cast<double>(2 * Slots);
}

StencilProgram::StencilProgram(std::string Name, int NumDims,
                               ScalarType ElemType, std::string ArrayName,
                               ExprPtr Update,
                               std::map<std::string, double> Coefficients)
    : Name(std::move(Name)), NumDims(NumDims), ElemType(ElemType),
      ArrayName(std::move(ArrayName)), Update(std::move(Update)),
      Coefficients(std::move(Coefficients)) {
  assert(this->Update && "stencil program requires an update expression");
  assert((NumDims == 1 || NumDims == 2 || NumDims == 3) &&
         "only 1D/2D/3D stencils are supported");
  analyze();
  Plan = std::make_unique<ExprPlan>(
      ExprPlan::compile(*this->Update, this->Coefficients));
}

StencilProgram::~StencilProgram() = default;

void StencilProgram::analyze() {
  Taps = collectTaps(*Update);
  assert(!Taps.empty() && "update expression reads no grid cell");
  for (const std::vector<int> &Tap : Taps) {
    assert(static_cast<int>(Tap.size()) == NumDims &&
           "grid read arity differs from declared dimensionality");
    (void)Tap;
  }
  Radius = computeRadius(*Update);
  Shape = classifyShape(*Update, NumDims);
  Associative = isAssociativeUpdate(*Update);
  UsesMathCall = containsMathCall(*Update);
  Flops = countFlops(*Update);
  Mix = estimateInstructionMix(*Update);
}

OptimizationClass StencilProgram::optimizationClass() const {
  if (Shape == StencilShape::Star)
    return OptimizationClass::DiagonalAccessFree;
  if (Associative)
    return OptimizationClass::AssociativeStencil;
  return OptimizationClass::Otherwise;
}

double StencilProgram::coefficientValue(const std::string &CoefName) const {
  auto It = Coefficients.find(CoefName);
  assert(It != Coefficients.end() && "unbound coefficient name");
  return It->second;
}

std::string StencilProgram::toString() const {
  std::string Out = Name;
  Out += ": ";
  Out += scalarTypeName(ElemType);
  Out += ' ';
  Out += ArrayName;
  Out += "[t+1]... = ";
  Out += Update->toString();
  Out += "  (radius ";
  Out += std::to_string(Radius);
  Out += ", ";
  Out += stencilShapeName(Shape);
  Out += Associative ? ", associative" : "";
  Out += ")";
  return Out;
}

} // namespace an5d
