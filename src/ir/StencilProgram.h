//===- StencilProgram.h - Normalized stencil description --------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StencilProgram is the normalized form of a detected stencil: the update
/// expression plus derived properties (radius, shape, optimization class)
/// that drive the performance model (Section 5 of the paper), the blocked
/// executor and the CUDA code generator.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_STENCILPROGRAM_H
#define AN5D_IR_STENCILPROGRAM_H

#include "ir/StencilExpr.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace an5d {

class ExprPlan;

/// Element type of the stencil grid.
enum class ScalarType { Float, Double };

/// Bytes per element for \p Type (the paper's nword, in bytes).
int scalarSizeInBytes(ScalarType Type);

/// The C spelling of \p Type ("float" / "double").
const char *scalarTypeName(ScalarType Type);

/// Spatial tap pattern of a stencil (Section 2.1 of the paper).
enum class StencilShape {
  /// Neighbors differ from the center in at most one dimension.
  Star,
  /// Taps cover the full (2*rad+1)^N cube.
  Box,
  /// Any other tap set.
  General,
};

const char *stencilShapeName(StencilShape Shape);

/// Which on-chip optimization strategy applies (Table 1 rows).
enum class OptimizationClass {
  /// Star stencils: registers cover the upper/lower sub-planes, shared
  /// memory is only used within the current sub-plane.
  DiagonalAccessFree,
  /// Associative box stencils: partial summation over sub-planes, one
  /// shared-memory store per cell.
  AssociativeStencil,
  /// General stencils: 1 + 2*rad sub-planes of shared memory per buffer.
  Otherwise,
};

const char *optimizationClassName(OptimizationClass Class);

/// Per-operation FLOP census of an update expression.
struct FlopCount {
  long long Adds = 0; ///< Additions and subtractions.
  long long Muls = 0;
  long long Divs = 0;

  /// Total floating-point operations per cell. Math calls (sqrt) do not
  /// count, which matches the FLOP/Cell column of Table 3.
  long long total() const { return Adds + Muls + Divs; }
};

/// Post-compilation instruction mix used for the ALU-efficiency term of the
/// performance model (Section 5): FMA counts as two FLOPs retired per
/// instruction slot.
struct InstructionMix {
  long long Fma = 0;
  long long Mul = 0;
  long long Add = 0;
  long long Other = 0;

  /// effALU = (2*FMA + MUL + ADD + OTHER) / (2 * total instructions).
  double aluEfficiency() const;
};

/// A fully analyzed stencil program: one double-buffered update statement
/// over an N-dimensional grid.
class StencilProgram {
public:
  /// Builds and analyzes a stencil.
  ///
  /// \param Name benchmark-style identifier (e.g. "j2d5pt").
  /// \param NumDims number of spatial dimensions (1, 2 or 3).
  /// \param ElemType element type of the grid.
  /// \param ArrayName name of the double-buffered array in the source.
  /// \param Update the right-hand side of the update statement. Grid reads
  ///        must address \p ArrayName with offsets of size \p NumDims.
  /// \param Coefficients values for named coefficients used in \p Update.
  StencilProgram(std::string Name, int NumDims, ScalarType ElemType,
                 std::string ArrayName, ExprPtr Update,
                 std::map<std::string, double> Coefficients = {});

  ~StencilProgram();

  const std::string &name() const { return Name; }
  int numDims() const { return NumDims; }
  ScalarType elemType() const { return ElemType; }
  const std::string &arrayName() const { return ArrayName; }
  const StencilExpr &update() const { return *Update; }

  /// Bytes per grid element (nword in the paper's formulas).
  int wordSize() const { return scalarSizeInBytes(ElemType); }

  /// The stencil radius: the maximum absolute offset over all taps and
  /// dimensions (Section 2.1).
  int radius() const { return Radius; }

  /// The spatial tap pattern.
  StencilShape shape() const { return Shape; }

  /// True if no tap has more than one non-zero offset component.
  bool isDiagonalAccessFree() const {
    return Shape == StencilShape::Star;
  }

  /// True if the update is a sum of per-tap products, optionally divided by
  /// a constant — the shape that permits partial summation (Section 3).
  bool isAssociative() const { return Associative; }

  /// The Table 1 optimization row this stencil falls into.
  OptimizationClass optimizationClass() const;

  /// Distinct spatial taps read by the update (deduplicated, sorted
  /// lexicographically). gradient2d reads some taps repeatedly; those appear
  /// once here.
  const std::vector<std::vector<int>> &taps() const { return Taps; }

  /// FLOPs per cell update (Table 3 census: every textual arithmetic
  /// operator counts once).
  const FlopCount &flopsPerCell() const { return Flops; }

  /// Estimated post-fast-math instruction mix (drives effALU).
  const InstructionMix &instructionMix() const { return Mix; }

  /// True if the update contains a division whose divisor is not a
  /// compile-time constant, or any division when \p ForDouble — the case
  /// where the paper reports inefficient NVCC code for double precision.
  bool usesDivision() const { return Flops.Divs > 0; }

  /// True if the update calls a math builtin (sqrt etc.).
  bool usesMathCall() const { return UsesMathCall; }

  /// Value bound to coefficient \p Name; asserts that the binding exists.
  double coefficientValue(const std::string &CoefName) const;

  const std::map<std::string, double> &coefficients() const {
    return Coefficients;
  }

  /// The compiled flat-tape form of the update expression (ExprPlan.h),
  /// lowered once at construction. Executors and the measured simulator
  /// consume this instead of re-walking the tree per cell / per
  /// configuration.
  const ExprPlan &plan() const { return *Plan; }

  /// Renders the update statement as C-like text (for docs and debugging).
  std::string toString() const;

private:
  std::string Name;
  int NumDims;
  ScalarType ElemType;
  std::string ArrayName;
  ExprPtr Update;
  std::map<std::string, double> Coefficients;

  // Derived by analysis at construction time.
  int Radius = 0;
  StencilShape Shape = StencilShape::General;
  bool Associative = false;
  bool UsesMathCall = false;
  std::vector<std::vector<int>> Taps;
  FlopCount Flops;
  InstructionMix Mix;
  std::unique_ptr<ExprPlan> Plan;

  void analyze();
};

} // namespace an5d

#endif // AN5D_IR_STENCILPROGRAM_H
