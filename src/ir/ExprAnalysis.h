//===- ExprAnalysis.h - Static analyses over stencil expressions -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyses over StencilExpr trees: tap collection, FLOP census (Table 3),
/// associativity detection (the partial-summation precondition of
/// Section 3/4.1), and the fast-math FMA mapping that feeds the
/// ALU-efficiency term of the performance model (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_IR_EXPRANALYSIS_H
#define AN5D_IR_EXPRANALYSIS_H

#include "ir/StencilProgram.h"

#include <vector>

namespace an5d {

/// Collects the distinct spatial taps read by \p E, sorted
/// lexicographically.
std::vector<std::vector<int>> collectTaps(const StencilExpr &E);

/// Maximum absolute offset component over all taps of \p E.
int computeRadius(const StencilExpr &E);

/// Classifies the tap set of \p E: Star when no tap is diagonal, Box when
/// the taps form the full (2*rad+1)^NumDims cube, General otherwise.
StencilShape classifyShape(const StencilExpr &E, int NumDims);

/// Counts textual arithmetic operators (Table 3's FLOP/Cell census; math
/// calls are free).
FlopCount countFlops(const StencilExpr &E);

/// True if \p E contains any CallExpr.
bool containsMathCall(const StencilExpr &E);

/// True if \p E contains a division whose divisor is a compile-time
/// constant (literal or named coefficient) — the pattern that NVCC
/// compiles inefficiently for double precision (Section 7.1).
bool containsConstantDivision(const StencilExpr &E);

/// True if \p E is associative in the paper's sense: a sum of terms, each
/// term a product of leaf factors with at most one grid read, with the sum
/// optionally wrapped in a single division by a constant. This is the form
/// that permits per-sub-plane partial summation.
bool isAssociativeUpdate(const StencilExpr &E);

/// Estimates the post-compilation instruction mix under --use_fast_math
/// (Section 5): division by a constant becomes a multiply; in associative
/// sums the compiler distributes the reciprocal and fuses each
/// multiply-accumulate into an FMA; sqrt and non-constant division retire
/// as OTHER slots.
InstructionMix estimateInstructionMix(const StencilExpr &E);

} // namespace an5d

#endif // AN5D_IR_EXPRANALYSIS_H
