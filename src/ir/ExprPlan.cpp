//===- ExprPlan.cpp - Compiled flat-tape stencil evaluation ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ExprPlan.h"

#include "ir/ExprAnalysis.h"

#include <cstring>
#include <limits>

namespace an5d {

namespace {

/// Single-pass lowering state: emits postfix ops and interns constants and
/// taps as it walks the tree.
class PlanBuilder {
public:
  PlanBuilder(const std::map<std::string, double> &Coefficients,
              std::vector<TapeOp> &Ops, std::vector<double> &Constants,
              std::vector<std::vector<int>> &Taps)
      : Coefficients(Coefficients), Ops(Ops), Constants(Constants),
        Taps(Taps) {}

  int maxDepth() const { return MaxDepth; }

  void lower(const StencilExpr &E) {
    switch (E.kind()) {
    case StencilExpr::Kind::Number:
      emitConst(cast<NumberExpr>(E).value());
      return;
    case StencilExpr::Kind::Coefficient: {
      auto It = Coefficients.find(cast<CoefficientExpr>(E).name());
      assert(It != Coefficients.end() && "unbound coefficient");
      emitConst(It->second);
      return;
    }
    case StencilExpr::Kind::GridRead:
      emit({TapeOpKind::LoadTap, internTap(cast<GridReadExpr>(E).offsets())},
           +1);
      return;
    case StencilExpr::Kind::Unary:
      lower(cast<UnaryExpr>(E).operand());
      emit({TapeOpKind::Neg, 0}, 0);
      return;
    case StencilExpr::Kind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      lower(B.lhs());
      lower(B.rhs());
      TapeOpKind Kind = TapeOpKind::Add;
      switch (B.op()) {
      case BinaryOpKind::Add:
        Kind = TapeOpKind::Add;
        break;
      case BinaryOpKind::Sub:
        Kind = TapeOpKind::Sub;
        break;
      case BinaryOpKind::Mul:
        Kind = TapeOpKind::Mul;
        break;
      case BinaryOpKind::Div:
        Kind = TapeOpKind::Div;
        break;
      }
      emit({Kind, 0}, -1);
      return;
    }
    case StencilExpr::Kind::Call: {
      const auto &C = cast<CallExpr>(E);
      assert(C.args().size() == 1 && "only unary math builtins are supported");
      lower(*C.args()[0]);
      std::optional<MathFn> Fn = mathFnForCallee(C.callee());
      if (!Fn)
        reportUnknownMathCall(C.callee());
      emit({TapeOpKind::MathCall, static_cast<std::uint16_t>(*Fn)}, 0);
      return;
    }
    }
    assert(false && "unhandled expression kind");
  }

private:
  void emit(TapeOp Op, int DepthDelta) {
    Ops.push_back(Op);
    Depth += DepthDelta;
    if (Depth > MaxDepth)
      MaxDepth = Depth;
  }

  void emitConst(double Value) {
    emit({TapeOpKind::PushConst, internConst(Value)}, +1);
  }

  std::uint16_t internConst(double Value) {
    // Dedup by bit pattern, not operator== — the latter would conflate
    // +0.0 and -0.0, whose difference is observable (x + -0.0 vs
    // x + +0.0 at x = -0.0) and would break the bit-for-bit contract.
    for (std::size_t I = 0; I < Constants.size(); ++I)
      if (std::memcmp(&Constants[I], &Value, sizeof(double)) == 0)
        return static_cast<std::uint16_t>(I);
    assert(Constants.size() < std::numeric_limits<std::uint16_t>::max() &&
           "constant pool overflow");
    Constants.push_back(Value);
    return static_cast<std::uint16_t>(Constants.size() - 1);
  }

  std::uint16_t internTap(const std::vector<int> &Offsets) {
    for (std::size_t I = 0; I < Taps.size(); ++I)
      if (Taps[I] == Offsets)
        return static_cast<std::uint16_t>(I);
    assert(Taps.size() < std::numeric_limits<std::uint16_t>::max() &&
           "tap table overflow");
    Taps.push_back(Offsets);
    return static_cast<std::uint16_t>(Taps.size() - 1);
  }

  const std::map<std::string, double> &Coefficients;
  std::vector<TapeOp> &Ops;
  std::vector<double> &Constants;
  std::vector<std::vector<int>> &Taps;
  int Depth = 0;
  int MaxDepth = 0;
};

} // namespace

ExprPlan ExprPlan::compile(const StencilExpr &Update,
                           const std::map<std::string, double> &Coefficients) {
  ExprPlan Plan;
  PlanBuilder Builder(Coefficients, Plan.Ops, Plan.Constants, Plan.Taps);
  Builder.lower(Update);
  Plan.MaxStackDepth = Builder.maxDepth();
  Plan.HasConstantDivision = containsConstantDivision(Update);
  return Plan;
}

} // namespace an5d
