//===- KernelLint.cpp - Structural linter for emitted kernels -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelLint.h"

#include "codegen/CppCodegen.h"

#include <cctype>
#include <cstdlib>

using namespace an5d;

namespace {

/// 1-based line of byte offset \p Pos in \p Text.
int lineOf(const std::string &Text, size_t Pos) {
  int Line = 1;
  for (size_t I = 0; I < Pos && I < Text.size(); ++I)
    if (Text[I] == '\n')
      ++Line;
  return Line;
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Finds \p Token in \p Text at a non-identifier boundary on both sides.
size_t findToken(const std::string &Text, const std::string &Token,
                 size_t From = 0) {
  for (size_t Pos = Text.find(Token, From); Pos != std::string::npos;
       Pos = Text.find(Token, Pos + 1)) {
    const bool LeftOk = Pos == 0 || !isIdentChar(Text[Pos - 1]);
    const size_t End = Pos + Token.size();
    const bool RightOk = End >= Text.size() || !isIdentChar(Text[End]);
    if (LeftOk && RightOk)
      return Pos;
  }
  return std::string::npos;
}

void addFinding(LintReport &Report, LintRule Rule, int Line,
                std::string Subject, std::string Message) {
  LintFinding F;
  F.Rule = Rule;
  F.Line = Line;
  F.Subject = std::move(Subject);
  F.Message = std::move(Message);
  Report.Findings.push_back(std::move(F));
}

/// The `an5d_*` symbols every kernel library must define
/// (runtime/NativeExecutor.h, CppKernelAbiVersion contract).
const char *const RequiredAbiSymbols[] = {
    "an5d_abi_version", "an5d_stencil_name", "an5d_config",
    "an5d_num_dims",    "an5d_radius",       "an5d_elem_size",
    "an5d_block_time",  "an5d_max_threads",  "an5d_set_threads",
    "an5d_run",
};

/// Process-control and allocation-free-stdio calls that have no place in
/// any generated TU.
const char *const BannedEverywhere[] = {"system", "fork", "popen", "rand",
                                        "srand"};

/// Additionally banned inside a dlopen'd kernel library: nothing a timed,
/// host-loaded shared object may do to the host process or its stdio.
const char *const BannedInKernelLibrary[] = {"exit",   "abort", "printf",
                                             "fprintf", "puts"};

void checkBannedCall(LintReport &Report, const std::string &Stripped,
                     const std::string &Name, LintTarget Target) {
  for (size_t Pos = findToken(Stripped, Name); Pos != std::string::npos;
       Pos = findToken(Stripped, Name, Pos + 1)) {
    // Only flag calls: the next non-space character must open the
    // argument list.
    size_t After = Pos + Name.size();
    while (After < Stripped.size() &&
           std::isspace(static_cast<unsigned char>(Stripped[After])))
      ++After;
    if (After >= Stripped.size() || Stripped[After] != '(')
      continue;
    addFinding(Report, LintRule::BannedCall, lineOf(Stripped, Pos), Name,
               "call to '" + Name + "' is banned in a " +
                   lintTargetName(Target) + " translation unit");
  }
}

/// Scans \p Stripped for floating-point literals and enforces the
/// exact-literal policy: float TUs suffix every FP literal with f/F,
/// double TUs suffix none.
void checkFloatLiterals(LintReport &Report, const std::string &Stripped,
                        ScalarType ElemType) {
  for (size_t I = 0; I < Stripped.size();) {
    const char C = Stripped[I];
    const bool StartsNumber =
        std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < Stripped.size() &&
         std::isdigit(static_cast<unsigned char>(Stripped[I + 1])));
    const bool Boundary =
        I == 0 || (!isIdentChar(Stripped[I - 1]) && Stripped[I - 1] != '.');
    if (!StartsNumber || !Boundary) {
      ++I;
      continue;
    }
    const size_t Begin = I;
    // Hexadecimal (and binary) literals are integers here; skip them.
    if (C == '0' && I + 1 < Stripped.size() &&
        (Stripped[I + 1] == 'x' || Stripped[I + 1] == 'X' ||
         Stripped[I + 1] == 'b' || Stripped[I + 1] == 'B')) {
      I += 2;
      while (I < Stripped.size() && (isIdentChar(Stripped[I])))
        ++I;
      continue;
    }
    bool SawDot = false, SawExponent = false;
    while (I < Stripped.size()) {
      const char D = Stripped[I];
      if (std::isdigit(static_cast<unsigned char>(D)) || D == '\'') {
        ++I;
      } else if (D == '.' && !SawDot && !SawExponent) {
        SawDot = true;
        ++I;
      } else if ((D == 'e' || D == 'E') && !SawExponent) {
        SawExponent = true;
        ++I;
        if (I < Stripped.size() &&
            (Stripped[I] == '+' || Stripped[I] == '-'))
          ++I;
      } else {
        break;
      }
    }
    std::string Suffix;
    while (I < Stripped.size() && std::isalpha(static_cast<unsigned char>(
                                      Stripped[I])))
      Suffix += Stripped[I++];
    if (!SawDot && !SawExponent)
      continue; // Integer literal.
    const bool HasF = Suffix.find('f') != std::string::npos ||
                      Suffix.find('F') != std::string::npos;
    const std::string Literal =
        Stripped.substr(Begin, I - Begin);
    if (ElemType == ScalarType::Float && !HasF)
      addFinding(Report, LintRule::FloatLiteralPolicy, lineOf(Stripped, Begin),
                 Literal,
                 "unsuffixed literal '" + Literal +
                     "' in a float translation unit evaluates in double "
                     "precision, breaking the bit-for-bit contract");
    else if (ElemType == ScalarType::Double && HasF)
      addFinding(Report, LintRule::FloatLiteralPolicy, lineOf(Stripped, Begin),
                 Literal,
                 "f-suffixed literal '" + Literal +
                     "' in a double translation unit rounds to float "
                     "precision");
  }
}

/// Checks that the first definition of \p Function restrict-qualifies at
/// least \p MinCount pointer parameters.
void checkRestrict(LintReport &Report, const std::string &Stripped,
                   const std::string &Function, int MinCount) {
  const size_t Pos = findToken(Stripped, Function);
  if (Pos == std::string::npos)
    return; // A missing invocation body is reported elsewhere.
  const size_t Open = Stripped.find('(', Pos);
  const size_t Close = Open == std::string::npos
                           ? std::string::npos
                           : Stripped.find(')', Open);
  if (Open == std::string::npos || Close == std::string::npos)
    return;
  const std::string Params = Stripped.substr(Open, Close - Open);
  int Count = 0;
  for (size_t P = Params.find("__restrict__"); P != std::string::npos;
       P = Params.find("__restrict__", P + 1))
    ++Count;
  if (Count < MinCount)
    addFinding(Report, LintRule::MissingRestrict, lineOf(Stripped, Pos),
               Function,
               "'" + Function + "' must __restrict__-qualify its " +
                   std::to_string(MinCount) +
                   " buffer pointers (the schedule verifier proves they "
                   "never alias)");
}

} // namespace

const char *an5d::lintTargetName(LintTarget Target) {
  switch (Target) {
  case LintTarget::KernelLibrary:
    return "kernel-library";
  case LintTarget::CheckProgram:
    return "check-program";
  case LintTarget::CudaKernel:
    return "cuda-kernel";
  }
  return "unknown";
}

const char *an5d::lintRuleName(LintRule Rule) {
  switch (Rule) {
  case LintRule::MissingSymbol:
    return "missing-symbol";
  case LintRule::MissingExternC:
    return "missing-extern-c";
  case LintRule::AbiVersionMismatch:
    return "abi-version-mismatch";
  case LintRule::FloatLiteralPolicy:
    return "float-literal-policy";
  case LintRule::BannedCall:
    return "banned-call";
  case LintRule::MissingRestrict:
    return "missing-restrict";
  case LintRule::MissingKernelQualifier:
    return "missing-kernel-qualifier";
  }
  return "unknown";
}

std::string LintFinding::toString() const {
  std::string S = "[";
  S += lintRuleName(Rule);
  S += "]";
  if (Line > 0)
    S += " line " + std::to_string(Line);
  S += ": ";
  S += Message;
  return S;
}

Diagnostic LintFinding::toDiagnostic() const {
  Diagnostic D;
  D.Kind = DiagnosticKind::Error;
  D.Message = toString();
  return D;
}

std::string LintReport::toString() const {
  if (Findings.empty())
    return "lint clean";
  std::string S;
  for (const LintFinding &F : Findings) {
    if (!S.empty())
      S += "\n";
    S += F.toString();
  }
  return S;
}

void LintReport::render(DiagnosticEngine &Diags) const {
  for (const LintFinding &F : Findings)
    Diags.report(F.toDiagnostic());
}

std::string an5d::stripCommentsAndStrings(const std::string &Source) {
  std::string Out = Source;
  enum State { Code, LineComment, BlockComment, String, Char } S = Code;

  auto IsIdentChar = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_';
  };
  // True when the quote at \p I opens a raw-string literal: an R
  // immediately before it, optionally behind a u8/u/U/L encoding prefix,
  // and no identifier character in front of the whole prefix (so FOOR"x"
  // stays an ordinary string after an identifier).
  auto IsRawStringQuote = [&](size_t I) {
    if (I == 0 || Out[I - 1] != 'R')
      return false;
    size_t P = I - 1; // the R
    if (P >= 2 && Out[P - 2] == 'u' && Out[P - 1] == '8')
      P -= 2;
    else if (P >= 1 &&
             (Out[P - 1] == 'u' || Out[P - 1] == 'U' || Out[P - 1] == 'L'))
      P -= 1;
    return P == 0 || !IsIdentChar(Out[P - 1]);
  };

  for (size_t I = 0; I < Out.size(); ++I) {
    const char C = Out[I];
    const char Next = I + 1 < Out.size() ? Out[I + 1] : '\0';
    switch (S) {
    case Code:
      if (C == '/' && Next == '/') {
        S = LineComment;
        Out[I] = ' ';
      } else if (C == '/' && Next == '*') {
        S = BlockComment;
        Out[I] = ' ';
      } else if (C == '"') {
        // Raw strings have no escapes and may span lines and contain
        // quotes; blank them whole up to their )delim" terminator (the
        // delimiter is at most 16 characters by the standard — longer
        // means this is not a raw string after all).
        size_t Paren;
        if (IsRawStringQuote(I) &&
            (Paren = Out.find('(', I + 1)) != std::string::npos &&
            Paren - I - 1 <= 16) {
          const std::string Terminator =
              ")" + Out.substr(I + 1, Paren - I - 1) + "\"";
          size_t Close = Out.find(Terminator, Paren + 1);
          size_t End = Close == std::string::npos
                           ? Out.size()
                           : Close + Terminator.size();
          for (size_t J = I; J < End; ++J)
            if (Out[J] != '\n')
              Out[J] = ' ';
          I = End - 1;
        } else {
          S = String;
          Out[I] = ' ';
        }
      } else if (C == '\'') {
        S = Char;
        Out[I] = ' ';
      }
      break;
    case LineComment:
      if (C == '\\' && (Next == '\n' ||
                        (Next == '\r' && I + 2 < Out.size() &&
                         Out[I + 2] == '\n'))) {
        // Backslash-newline splices the next physical line into the
        // comment; keep the newline itself for line accounting.
        Out[I] = ' ';
        I += Next == '\r' ? 2 : 1;
      } else if (C == '\n')
        S = Code;
      else
        Out[I] = ' ';
      break;
    case BlockComment:
      if (C == '*' && Next == '/') {
        Out[I] = ' ';
        Out[I + 1] = ' ';
        ++I;
        S = Code;
      } else if (C != '\n') {
        Out[I] = ' ';
      }
      break;
    case String:
      if (C == '\\' && Next != '\0') {
        Out[I] = ' ';
        if (Next != '\n')
          Out[I + 1] = ' ';
        ++I;
      } else if (C == '"') {
        Out[I] = ' ';
        S = Code;
      } else if (C != '\n') {
        Out[I] = ' ';
      }
      break;
    case Char:
      if (C == '\\' && Next != '\0') {
        Out[I] = ' ';
        if (Next != '\n')
          Out[I + 1] = ' ';
        ++I;
      } else if (C == '\'') {
        Out[I] = ' ';
        S = Code;
      } else if (C != '\n') {
        Out[I] = ' ';
      }
      break;
    }
  }
  return Out;
}

LintReport an5d::lintTranslationUnit(const std::string &Source,
                                     LintTarget Target, ScalarType ElemType) {
  LintReport Report;
  const std::string Stripped = stripCommentsAndStrings(Source);

  // extern "C" linkage: matched against the raw source because the "C"
  // string literal is blanked by the stripper.
  const bool HasExternC = Source.find("extern \"C\"") != std::string::npos;

  if (Target == LintTarget::KernelLibrary) {
    if (!HasExternC)
      addFinding(Report, LintRule::MissingExternC, 0, "extern \"C\"",
                 "kernel library never opens an extern \"C\" block; the "
                 "loader resolves unmangled an5d_* symbols");
    for (const char *Symbol : RequiredAbiSymbols)
      if (findToken(Stripped, Symbol) == std::string::npos)
        addFinding(Report, LintRule::MissingSymbol, 0, Symbol,
                   std::string("required ABI symbol '") + Symbol +
                       "' is not defined");

    // an5d_abi_version must return the version the loader checks.
    const size_t VersionPos = findToken(Stripped, "an5d_abi_version");
    if (VersionPos != std::string::npos) {
      const size_t ReturnPos = Stripped.find("return", VersionPos);
      bool Matches = false;
      if (ReturnPos != std::string::npos) {
        const char *P = Stripped.c_str() + ReturnPos + 6;
        char *End = nullptr;
        const long Version = std::strtol(P, &End, 10);
        Matches = End != P && Version == CppKernelAbiVersion;
      }
      if (!Matches)
        addFinding(Report, LintRule::AbiVersionMismatch,
                   lineOf(Stripped, VersionPos), "an5d_abi_version",
                   "an5d_abi_version does not return " +
                       std::to_string(CppKernelAbiVersion) +
                       " (the version runtime/NativeExecutor.h loads)");
    }
    for (const char *Name : BannedInKernelLibrary)
      checkBannedCall(Report, Stripped, Name, Target);
    checkRestrict(Report, Stripped, "runInvocation", 2);
  }

  if (Target == LintTarget::CheckProgram) {
    if (findToken(Stripped, "main") == std::string::npos)
      addFinding(Report, LintRule::MissingSymbol, 0, "main",
                 "check program has no main function");
    checkRestrict(Report, Stripped, "runInvocation", 2);
  }

  if (Target == LintTarget::CudaKernel) {
    if (!HasExternC)
      addFinding(Report, LintRule::MissingExternC, 0, "extern \"C\"",
                 "CUDA kernel never opens an extern \"C\" block; the host "
                 "launcher resolves the unmangled kernel name");
    if (findToken(Stripped, "__global__") == std::string::npos)
      addFinding(Report, LintRule::MissingKernelQualifier, 0, "__global__",
                 "CUDA translation unit defines no __global__ kernel");
    const size_t RestrictPos = Stripped.find("__restrict__");
    if (RestrictPos == std::string::npos)
      addFinding(Report, LintRule::MissingRestrict, 0, "__restrict__",
                 "CUDA kernel parameters must __restrict__-qualify the "
                 "input/output buffers");
  }

  for (const char *Name : BannedEverywhere)
    checkBannedCall(Report, Stripped, Name, Target);
  checkFloatLiterals(Report, Stripped, ElemType);

  return Report;
}
