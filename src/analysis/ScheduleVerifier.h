//===- ScheduleVerifier.h - Static proof of N.5D schedule safety -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis over the blocked N.5D schedule: given the lowered
/// schedule/ScheduleIR of a (StencilProgram, BlockConfig) pair — ring
/// depth, per-tier stream lag and spatial reach, work-item write strides —
/// statically prove, before any kernel is compiled, that
///
///   1. every tap read falls inside the allocated halo (the bT x radius
///      rule, for the padded global grid, the loaded block span, and each
///      tier's shrinking valid region — including the 1D empty-bS
///      streaming schedule and boundary-plane pinning),
///   2. the per-tier rings are deep enough that no producer overwrites a
///      sub-plane a consumer has not read yet (ring clobber),
///   3. wavefront dependency order holds — no tier reads a sub-plane its
///      producer has not written by that streaming step (wave order), and
///   4. the write-sets of concurrently scheduled OpenMP work items (the
///      chunk x block worksharing set) are pairwise disjoint and gap-free
///      (static race detector for the emitted `omp for`).
///
/// The verifier checks the exact InvocationSchedule object the emulator
/// and both codegen backends render (tier T at streaming step s processes
/// sub-plane p = s - T*radius, holds a ring of RingDepth sub-planes, and
/// keeps a valid region that shrinks by radius per tier, reach
/// (bT - T)*radius) — so a proof here covers every consumer of the IR.
/// Violations carry a structured kind plus the offending axis, tier and
/// tap offset, and render as support/Diagnostic errors.
///
/// The IR's fields are deliberately mutable so tests can corrupt one
/// invariant at a time (shrink a halo, swap a wave, overlap two lanes)
/// and assert the verifier flags exactly that corruption.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_SCHEDULEVERIFIER_H
#define AN5D_ANALYSIS_SCHEDULEVERIFIER_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "schedule/ScheduleIR.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace an5d {

/// What a schedule violation breaks. Each kind names one invariant of the
/// N.5D schedule; the mutation tests assert kind-for-corruption.
enum class ScheduleViolationKind {
  /// BS arity does not match the stencil dimensionality (bS carries one
  /// entry per non-streaming dimension).
  ConfigArity,
  /// A blocked dimension's halo consumes the whole block: compute width
  /// < 1 (the bS >= 2*bT*rad + 1 rule).
  BlockTooSmall,
  /// A tap read escapes the region its producer guarantees: the padded
  /// global grid, the loaded block span, or the producing tier's valid
  /// region.
  HaloViolation,
  /// A tier's ring is too shallow: a sub-plane is overwritten (slot
  /// reuse) before the consuming tier has read it.
  RingClobber,
  /// Wavefront order broken: a tier reads a sub-plane its producer has
  /// not written by that streaming step.
  WaveOrderViolation,
  /// Two concurrently scheduled work items write overlapping cells.
  RaceOverlap,
  /// Concurrent work items leave interior cells unwritten (stride
  /// exceeds the stored width) — not a race, but an incorrect schedule.
  CoverageGap,
  /// The host-side temporal block schedule breaks a Section 4.3.1
  /// postcondition (degree bounds, step sum, or call-count parity).
  TimeScheduleInvariant,
};

/// Stable lowercase name of \p Kind (e.g. "halo-violation").
const char *scheduleViolationKindName(ScheduleViolationKind Kind);

/// One statically detected schedule defect. Axis 0 is the streaming
/// dimension; axes 1..N-1 are the blocked dimensions; -1 means the
/// violation is not tied to one axis. Tier -1 likewise means no single
/// tier (tier 0 is the load tier, 1..degree compute).
struct ScheduleViolation {
  ScheduleViolationKind Kind = ScheduleViolationKind::HaloViolation;
  int Degree = 0;
  int Tier = -1;
  int Axis = -1;
  long long Offset = 0; ///< Offending tap offset or overlap width.
  std::string Message;  ///< Human-readable detail, LLVM diag style.

  /// "[halo-violation] degree 2 tier 1 axis 1: <message>".
  std::string toString() const;

  /// The same content as a support/Diagnostic error.
  Diagnostic toDiagnostic() const;
};

/// Outcome of verifying one (program, config) pair across all temporal
/// degrees the schedule can issue.
struct ScheduleVerifyResult {
  std::vector<ScheduleViolation> Violations;
  int DegreesChecked = 0;

  /// True when every checked degree is statically safe.
  bool proven() const { return Violations.empty(); }

  /// One line per violation; "schedule proven safe" when clean.
  std::string toString() const;

  /// Reports every violation into \p Diags as an error.
  void render(DiagnosticEngine &Diags) const;
};

/// The verifier operates directly on the schedule IR: the per-degree
/// invocation plan is schedule/ScheduleIR.h's InvocationSchedule, kept
/// under its historical verifier-side names for the mutation tests.
using TierModel = TierSchedule;
using ScheduleModel = InvocationSchedule;

/// Derives the per-degree invocation plan (1 <= Degree <= Config.BT; the
/// host schedule can issue any such degree). Thin alias over
/// schedule/ScheduleIR.h's lowerInvocation — the verifier checks exactly
/// what the backends render.
ScheduleModel buildScheduleModel(const StencilProgram &Program,
                                 const BlockConfig &Config, int Degree);

/// Checks every invariant of \p Model and returns all violations found
/// (empty means statically proven safe at Model.Degree).
std::vector<ScheduleViolation> verifyScheduleModel(const ScheduleModel &Model);

/// Verifies a lowered \p IR across every invocation degree it carries.
/// When \p Problem is non-null, additionally validates the Section 4.3.1
/// host-schedule postconditions for Problem->TimeSteps. Thread caps are
/// deliberately out of scope: they are a hardware resource limit, not a
/// schedule-safety property (see BlockConfig::isFeasible). This is the
/// core entry point: the emulator, codegens, and tuner verify the same
/// IR object they render.
ScheduleVerifyResult verifyScheduleIR(const ScheduleIR &IR,
                                      const ProblemSize *Problem = nullptr);

/// Convenience wrapper: lowers (\p Program, \p Config) with lowerSchedule
/// and verifies the resulting IR.
ScheduleVerifyResult verifySchedule(const StencilProgram &Program,
                                    const BlockConfig &Config,
                                    const ProblemSize *Problem = nullptr);

} // namespace an5d

#endif // AN5D_ANALYSIS_SCHEDULEVERIFIER_H
