//===- ScheduleVerifier.h - Static proof of N.5D schedule safety -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval analysis over the blocked N.5D schedule: given a
/// (StencilProgram, BlockConfig) pair, build an explicit ScheduleModel of
/// one temporal-block invocation — ring depth, per-tier stream lag and
/// spatial reach, work-item write strides — and statically prove, before
/// any kernel is compiled, that
///
///   1. every tap read falls inside the allocated halo (the bT x radius
///      rule, for the padded global grid, the loaded block span, and each
///      tier's shrinking valid region — including the 1D empty-bS
///      streaming schedule and boundary-plane pinning),
///   2. the per-tier rings are deep enough that no producer overwrites a
///      sub-plane a consumer has not read yet (ring clobber),
///   3. wavefront dependency order holds — no tier reads a sub-plane its
///      producer has not written by that streaming step (wave order), and
///   4. the write-sets of concurrently scheduled OpenMP work items (the
///      chunk x block worksharing set) are pairwise disjoint and gap-free
///      (static race detector for the emitted `omp for`).
///
/// The model mirrors sim/BlockedExecutor.h and the codegen backends: tier
/// T at streaming step s processes sub-plane p = s - T*radius, holds a
/// ring of RingDepth sub-planes, and keeps a valid region that shrinks by
/// radius per tier (reach (bT - T)*radius). Violations carry a structured
/// kind plus the offending axis, tier and tap offset, and render as
/// support/Diagnostic errors.
///
/// The model's fields are deliberately mutable so tests can corrupt one
/// invariant at a time (shrink a halo, swap a wave, overlap two lanes)
/// and assert the verifier flags exactly that corruption.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_SCHEDULEVERIFIER_H
#define AN5D_ANALYSIS_SCHEDULEVERIFIER_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace an5d {

/// What a schedule violation breaks. Each kind names one invariant of the
/// N.5D schedule; the mutation tests assert kind-for-corruption.
enum class ScheduleViolationKind {
  /// BS arity does not match the stencil dimensionality (bS carries one
  /// entry per non-streaming dimension).
  ConfigArity,
  /// A blocked dimension's halo consumes the whole block: compute width
  /// < 1 (the bS >= 2*bT*rad + 1 rule).
  BlockTooSmall,
  /// A tap read escapes the region its producer guarantees: the padded
  /// global grid, the loaded block span, or the producing tier's valid
  /// region.
  HaloViolation,
  /// A tier's ring is too shallow: a sub-plane is overwritten (slot
  /// reuse) before the consuming tier has read it.
  RingClobber,
  /// Wavefront order broken: a tier reads a sub-plane its producer has
  /// not written by that streaming step.
  WaveOrderViolation,
  /// Two concurrently scheduled work items write overlapping cells.
  RaceOverlap,
  /// Concurrent work items leave interior cells unwritten (stride
  /// exceeds the stored width) — not a race, but an incorrect schedule.
  CoverageGap,
  /// The host-side temporal block schedule breaks a Section 4.3.1
  /// postcondition (degree bounds, step sum, or call-count parity).
  TimeScheduleInvariant,
};

/// Stable lowercase name of \p Kind (e.g. "halo-violation").
const char *scheduleViolationKindName(ScheduleViolationKind Kind);

/// One statically detected schedule defect. Axis 0 is the streaming
/// dimension; axes 1..N-1 are the blocked dimensions; -1 means the
/// violation is not tied to one axis. Tier -1 likewise means no single
/// tier (tier 0 is the load tier, 1..degree compute).
struct ScheduleViolation {
  ScheduleViolationKind Kind = ScheduleViolationKind::HaloViolation;
  int Degree = 0;
  int Tier = -1;
  int Axis = -1;
  long long Offset = 0; ///< Offending tap offset or overlap width.
  std::string Message;  ///< Human-readable detail, LLVM diag style.

  /// "[halo-violation] degree 2 tier 1 axis 1: <message>".
  std::string toString() const;

  /// The same content as a support/Diagnostic error.
  Diagnostic toDiagnostic() const;
};

/// Outcome of verifying one (program, config) pair across all temporal
/// degrees the schedule can issue.
struct ScheduleVerifyResult {
  std::vector<ScheduleViolation> Violations;
  int DegreesChecked = 0;

  /// True when every checked degree is statically safe.
  bool proven() const { return Violations.empty(); }

  /// One line per violation; "schedule proven safe" when clean.
  std::string toString() const;

  /// Reports every violation into \p Diags as an error.
  void render(DiagnosticEngine &Diags) const;
};

/// One computing tier of the pipeline (tiers 1..degree; the tier-0 load
/// stage is modeled by the Load* fields of ScheduleModel).
struct TierModel {
  int Tier = 1;
  /// Execution position within one streaming step. The load stage runs at
  /// LoadOrderPosition; a consumer may read a producer's same-step write
  /// only if the producer's position is smaller.
  int OrderPosition = 1;
  /// Tier T processes sub-plane s - StreamLag at streaming step s.
  long long StreamLag = 0;
  /// Half-width of the tier's valid region beyond the compute region, in
  /// cells, on every axis: (degree - T) * radius by construction.
  long long Reach = 0;
};

/// Explicit model of one temporal-block invocation at a fixed degree.
/// buildScheduleModel derives it from (program, config); every field is a
/// plain value so tests can corrupt single invariants.
struct ScheduleModel {
  std::string Name; ///< "<stencil> <config> degree <d>" for messages.
  int NumDims = 1;  ///< Spatial dimensions (streaming dim included).
  int Radius = 1;
  int Degree = 1;

  /// Halo cells allocated per side of every axis of the global padded
  /// buffers (Grid layout: radius).
  long long GridHalo = 0;

  /// Sub-planes per tier ring (2*radius + 1 by construction).
  long long RingDepth = 0;

  /// Loaded block span per blocked axis (bS_i), and the span's left halo:
  /// lanes [-LoadSpanHalo, BS_i - LoadSpanHalo) relative to the block
  /// origin (degree * radius by construction).
  std::vector<long long> BS;
  long long LoadSpanHalo = 0;

  /// Stream-direction reach of the tier-0 load beyond the chunk bounds
  /// (degree * radius by construction).
  long long LoadStreamReach = 0;

  /// Execution position of the tier-0 load within one streaming step.
  int LoadOrderPosition = 0;

  /// Compute-region width per blocked axis (bS_i - 2*degree*radius).
  std::vector<long long> ComputeWidth;

  /// Origin stride between adjacent blocks per blocked axis (compute
  /// width by construction: block b owns [b*Stride, b*Stride + Store)).
  std::vector<long long> BlockStride;

  /// Cells the final tier stores per blocked axis from each block
  /// (compute width by construction).
  std::vector<long long> StoreWidth;

  /// Stream-chunk length and the stride between adjacent chunk starts
  /// (hS and hS; 0 disables chunking — one chunk spans the extent and
  /// the streaming axis carries no concurrency).
  long long ChunkLength = 0;
  long long ChunkStride = 0;

  /// Deduplicated tap offsets (streaming component first).
  std::vector<std::vector<int>> Taps;

  /// Computing tiers 1..degree in pipeline order.
  std::vector<TierModel> Tiers;
};

/// Derives the ScheduleModel the emulator and both codegen backends
/// implement for \p Config at temporal degree \p Degree (1 <= Degree <=
/// Config.BT; the host schedule can issue any such degree).
ScheduleModel buildScheduleModel(const StencilProgram &Program,
                                 const BlockConfig &Config, int Degree);

/// Checks every invariant of \p Model and returns all violations found
/// (empty means statically proven safe at Model.Degree).
std::vector<ScheduleViolation> verifyScheduleModel(const ScheduleModel &Model);

/// Verifies \p Config for \p Program across every temporal degree in
/// [1, Config.BT] (the host-side scheduler can issue any of them). When
/// \p Problem is non-null, additionally validates the Section 4.3.1
/// host-schedule postconditions for Problem->TimeSteps. Thread caps are
/// deliberately out of scope: they are a hardware resource limit, not a
/// schedule-safety property (see BlockConfig::isFeasible).
ScheduleVerifyResult verifySchedule(const StencilProgram &Program,
                                    const BlockConfig &Config,
                                    const ProblemSize *Problem = nullptr);

} // namespace an5d

#endif // AN5D_ANALYSIS_SCHEDULEVERIFIER_H
