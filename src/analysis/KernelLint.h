//===- KernelLint.h - Structural linter for emitted kernels -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural linter over the translation units the code generators
/// emit (self-check programs, OpenMP kernel libraries, CUDA kernels),
/// enforcing the contracts the loaders and the bit-for-bit equivalence
/// suite rely on:
///
///  * every `an5d_*` ABI symbol a kernel library must export is present,
///    inside an `extern "C"` block, and `an5d_abi_version` returns the
///    version the loader checks (runtime/NativeExecutor.h);
///  * the exact-float-literal policy: a float TU suffixes every
///    floating-point literal with `f` (one double-rounded literal breaks
///    the bit-for-bit promise), and a double TU carries no `f` suffix;
///  * no banned calls — process control and stdio have no place in a
///    shared object a tuner dlopens and times;
///  * the buffer pointers of the blocked invocation are
///    restrict-qualified (the schedule verifier proves the buffers never
///    alias; the qualifier hands that proof to the optimizer);
///  * CUDA TUs declare an `extern "C" __global__` kernel.
///
/// The linter parses nothing: it strips comments and string literals
/// (preserving line structure) and matches tokens, which is exactly as
/// strong as the emitters' determinism allows and keeps it dependency-
/// free. It runs over all goldens in the test suite and over every JIT
/// candidate when NativeRuntimeOptions::LintKernels (or the
/// AN5D_LINT_KERNELS environment variable) is set.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_KERNELLINT_H
#define AN5D_ANALYSIS_KERNELLINT_H

#include "ir/StencilProgram.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace an5d {

/// Which emitted TU flavor is being linted (the contract differs: a check
/// program has a `main` and may print; a kernel library must not).
enum class LintTarget { KernelLibrary, CheckProgram, CudaKernel };

const char *lintTargetName(LintTarget Target);

/// The individual contract rules.
enum class LintRule {
  /// A required `an5d_*` ABI symbol is not defined.
  MissingSymbol,
  /// The TU never opens an `extern "C"` linkage block.
  MissingExternC,
  /// `an5d_abi_version` does not return CppKernelAbiVersion.
  AbiVersionMismatch,
  /// A floating-point literal violates the exact-literal policy for the
  /// TU's element type.
  FloatLiteralPolicy,
  /// A call to a function banned in this TU flavor.
  BannedCall,
  /// The blocked invocation's buffer pointers lack __restrict__.
  MissingRestrict,
  /// A CUDA TU without a __global__ kernel.
  MissingKernelQualifier,
};

/// Stable lowercase name of \p Rule (e.g. "missing-symbol").
const char *lintRuleName(LintRule Rule);

/// One lint hit: the broken rule, the 1-based source line (0 when the
/// finding is about the whole TU), and the offending token.
struct LintFinding {
  LintRule Rule = LintRule::MissingSymbol;
  int Line = 0;
  std::string Subject; ///< Offending symbol/literal/call name.
  std::string Message;

  /// "[missing-symbol] line 12: <message>".
  std::string toString() const;

  /// The same content as a support/Diagnostic error.
  Diagnostic toDiagnostic() const;
};

/// All findings for one TU.
struct LintReport {
  std::vector<LintFinding> Findings;

  bool clean() const { return Findings.empty(); }

  /// One line per finding; "lint clean" when empty.
  std::string toString() const;

  /// Reports every finding into \p Diags as an error.
  void render(DiagnosticEngine &Diags) const;
};

/// Lints \p Source as a \p Target TU whose grid element type is
/// \p ElemType.
LintReport lintTranslationUnit(const std::string &Source, LintTarget Target,
                               ScalarType ElemType);

/// Strips // and /* */ comments plus string and character literals from
/// \p Source, replacing them with spaces so byte offsets and line numbers
/// survive. Exposed for tests.
std::string stripCommentsAndStrings(const std::string &Source);

} // namespace an5d

#endif // AN5D_ANALYSIS_KERNELLINT_H
