//===- AnalysisPass.h - Static dataflow pass framework ----------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small pass framework for static analyses over the lowered pipeline
/// state: typed passes run over (StencilProgram, ExprPlan, ScheduleIR) and
/// emit structured findings with stable IDs (`AN5D-A###`), one severity
/// each, and both human and JSON renderings. It is the layer above the
/// PR-6 ScheduleVerifier: the verifier proves one schedule's shape; the
/// passes here prove tape well-formedness, buffer-access bounds, and
/// compute static resource features for the tuner's cost model.
///
/// Finding IDs are append-only and never reused — tests, the `--analyze`
/// JSON report and the README glossary all key on them:
///
///   AN5D-A1xx  TapeVerifier       (analysis/passes/TapeVerifier.h)
///   AN5D-A2xx  AccessBoundsProver (analysis/passes/AccessBoundsProver.h)
///   AN5D-A3xx  ResourceEstimator  (analysis/passes/ResourceEstimator.h)
///
/// The AnalysisPassManager wraps each pass run in an "analysis.pass" obs
/// span (attributed with the pass name) and counts pass runs and emitted
/// findings in the metrics registry.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_PASSES_ANALYSISPASS_H
#define AN5D_ANALYSIS_PASSES_ANALYSISPASS_H

#include "support/Diagnostic.h"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace an5d {

class StencilProgram;
class ExprPlan;
struct ScheduleIR;

/// Severity of one analysis finding. Error findings gate the tuner's
/// pre-JIT pipeline and make `an5dc --analyze` exit non-zero; Warn and
/// Info findings are advisory.
enum class FindingSeverity { Error, Warn, Info };

/// Stable lowercase name of \p Severity ("error" / "warn" / "info").
const char *findingSeverityName(FindingSeverity Severity);

/// One structured finding emitted by an analysis pass.
struct AnalysisFinding {
  std::string Id;   ///< Stable identifier, e.g. "AN5D-A101".
  FindingSeverity Severity = FindingSeverity::Error;
  std::string Pass;    ///< Emitting pass name, e.g. "tape-verifier".
  std::string Subject; ///< What the finding is about (op, tier, axis...).
  std::string Message; ///< LLVM style: lowercase start, no trailing period.

  /// Renders as "[AN5D-A101][error] tape-verifier: message (subject)".
  std::string toString() const;

  /// Maps onto the shared diagnostic model (Error -> Error, Warn ->
  /// Warning, Info -> Note) so frontends can report findings through
  /// their DiagnosticEngine.
  Diagnostic toDiagnostic() const;

  /// Appends this finding as one JSON object to \p Out.
  void appendJson(std::string &Out) const;
};

/// The aggregated result of one pipeline run.
struct AnalysisReport {
  std::vector<AnalysisFinding> Findings;

  std::size_t errorCount() const;
  std::size_t countBySeverity(FindingSeverity Severity) const;

  /// True when no Error-severity finding was emitted (Warn/Info allowed).
  bool proven() const { return errorCount() == 0; }

  /// True when \p Id appears among the findings (mutation-test helper).
  bool hasFinding(const std::string &Id) const;

  /// One finding per line; "analysis clean" when empty.
  std::string toString() const;

  /// The findings as a JSON array (stable member order, self-parseable
  /// through obs/JsonLite.h).
  std::string toJson() const;

  /// Reports every finding into \p Diags via AnalysisFinding::toDiagnostic.
  void render(DiagnosticEngine &Diags) const;
};

/// The state one pipeline run analyzes. Program is mandatory; Plan
/// defaults to Program->plan() when null; Schedule may be null, in which
/// case schedule-level passes have nothing to check and stay silent.
struct AnalysisInput {
  const StencilProgram *Program = nullptr;
  const ExprPlan *Plan = nullptr;
  const ScheduleIR *Schedule = nullptr;
};

/// One typed static analysis. Passes are stateless: run() derives every
/// fact from the input and appends findings to the report.
class AnalysisPass {
public:
  virtual ~AnalysisPass() = default;

  /// Stable pass name used in findings, span attributes and the report.
  virtual const char *name() const = 0;

  virtual void run(const AnalysisInput &Input,
                   AnalysisReport &Report) const = 0;
};

/// Runs an ordered list of passes over one input, with per-pass obs spans
/// and metrics.
class AnalysisPassManager {
public:
  AnalysisPassManager() = default;
  AnalysisPassManager(AnalysisPassManager &&) = default;
  AnalysisPassManager &operator=(AnalysisPassManager &&) = default;

  AnalysisPassManager &add(std::unique_ptr<AnalysisPass> Pass);

  std::size_t numPasses() const { return Passes.size(); }

  /// The shipped pipeline: tape-verifier, access-bounds, then
  /// resource-estimator — the order an5dc --analyze and the tuner's
  /// pre-JIT gate both run.
  static AnalysisPassManager standardPipeline();

  AnalysisReport run(const AnalysisInput &Input) const;

private:
  std::vector<std::unique_ptr<AnalysisPass>> Passes;
};

} // namespace an5d

#endif // AN5D_ANALYSIS_PASSES_ANALYSISPASS_H
