//===- AccessBoundsProver.h - Symbolic buffer-access bounds -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic interval analysis over ScheduleIR proving every global-buffer
/// load/store and every register-ring access of the emitted kernels
/// in-bounds for ALL problem extents above the schedule's minimum —
/// statically, instead of waiting for one unlucky extent to trip ASan.
///
/// Bounds are affine in the per-axis extent E: `Coeff*E + Offset`
/// (SymBound). An inequality `a <= b` is proven for every E >= MinExtent
/// iff the difference has a non-negative extent coefficient AND is
/// non-negative at E = MinExtent — so one check covers the whole extent
/// family, which is exactly what a clamp such as
/// `min(ChunkHi-1+LoadStreamReach, E-1+GridHalo)` needs.
///
/// The access model is the one BlockedExecutor executes and both codegen
/// backends render: tier-0 stream loads clamped to
/// [-GridHalo, E-1+GridHalo]; blocked-axis loads clipped by the Exists
/// region [-Radius, E+Radius); ring lanes (X + tap - SpanLo) in [0, BS);
/// sub-plane lifetimes of RingDepth steps between production and slot
/// reuse; final-tier stores clamped to the interior. Findings:
///
///   AN5D-A201  stream-axis load outside the allocated halo
///   AN5D-A202  blocked-axis load outside the allocated halo
///   AN5D-A203  grid halo smaller than the widest stream tap
///   AN5D-A204  ring too shallow for a consumed sub-plane's lifetime
///   AN5D-A205  tier consumes a sub-plane its producer has not written
///   AN5D-A206  ring lane underflow (load-span halo too small)
///   AN5D-A207  ring lane overflow (span exceeds the loaded block)
///   AN5D-A208  store width exceeds the computed width
///   AN5D-A209  block/chunk tiling leaves gaps or overlap (Warn)
///   AN5D-A210  schedule structurally malformed
///   AN5D-A211  halo policy inconsistent with the blocked-axis set
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_PASSES_ACCESSBOUNDSPROVER_H
#define AN5D_ANALYSIS_PASSES_ACCESSBOUNDSPROVER_H

#include "analysis/passes/AnalysisPass.h"

namespace an5d {

struct ScheduleIR;

/// An affine bound in one axis extent E: value(E) = ExtentCoeff*E + Offset.
struct SymBound {
  long long ExtentCoeff = 0;
  long long Offset = 0;

  long long value(long long Extent) const {
    return ExtentCoeff * Extent + Offset;
  }
};

/// True iff A <= B for every extent E >= MinExtent: the difference B - A
/// must grow (or stay flat) with E and already hold at the minimum.
inline bool provedLE(SymBound A, SymBound B, long long MinExtent) {
  long long DCoeff = B.ExtentCoeff - A.ExtentCoeff;
  long long DAtMin = B.value(MinExtent) - A.value(MinExtent);
  return DCoeff >= 0 && DAtMin >= 0;
}

/// Runs every A2xx check over \p IR against buffers allocated with
/// \p AllocHalo cells per side (the Grid layout allocates radius), for
/// every per-axis extent >= \p MinExtent.
void proveAccessBounds(const ScheduleIR &IR, long long AllocHalo,
                       AnalysisReport &Report, long long MinExtent = 1);

/// Convenience wrapper returning a fresh report.
AnalysisReport proveAccessBounds(const ScheduleIR &IR, long long AllocHalo);

/// The pass adapter: proves Input.Schedule against an allocation halo of
/// Program->radius(). Silent when the input carries no schedule.
class AccessBoundsProverPass : public AnalysisPass {
public:
  const char *name() const override { return "access-bounds"; }
  void run(const AnalysisInput &Input, AnalysisReport &Report) const override;
};

} // namespace an5d

#endif // AN5D_ANALYSIS_PASSES_ACCESSBOUNDSPROVER_H
