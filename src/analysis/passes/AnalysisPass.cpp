//===- AnalysisPass.cpp - Static dataflow pass framework ------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/passes/AnalysisPass.h"

#include "analysis/passes/AccessBoundsProver.h"
#include "analysis/passes/ResourceEstimator.h"
#include "analysis/passes/TapeVerifier.h"
#include "ir/StencilProgram.h"
#include "obs/JsonLite.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

namespace an5d {

const char *findingSeverityName(FindingSeverity Severity) {
  switch (Severity) {
  case FindingSeverity::Error:
    return "error";
  case FindingSeverity::Warn:
    return "warn";
  case FindingSeverity::Info:
    return "info";
  }
  return "error";
}

std::string AnalysisFinding::toString() const {
  std::string Out;
  Out += "[" + Id + "][";
  Out += findingSeverityName(Severity);
  Out += "] " + Pass + ": " + Message;
  if (!Subject.empty())
    Out += " (" + Subject + ")";
  return Out;
}

Diagnostic AnalysisFinding::toDiagnostic() const {
  Diagnostic D;
  switch (Severity) {
  case FindingSeverity::Error:
    D.Kind = DiagnosticKind::Error;
    break;
  case FindingSeverity::Warn:
    D.Kind = DiagnosticKind::Warning;
    break;
  case FindingSeverity::Info:
    D.Kind = DiagnosticKind::Note;
    break;
  }
  D.Message = "[" + Id + "] " + Message;
  if (!Subject.empty())
    D.Message += " (" + Subject + ")";
  return D;
}

void AnalysisFinding::appendJson(std::string &Out) const {
  Out += "{\"id\":";
  obs::appendJsonString(Out, Id);
  Out += ",\"severity\":\"";
  Out += findingSeverityName(Severity);
  Out += "\",\"pass\":";
  obs::appendJsonString(Out, Pass);
  Out += ",\"subject\":";
  obs::appendJsonString(Out, Subject);
  Out += ",\"message\":";
  obs::appendJsonString(Out, Message);
  Out += "}";
}

std::size_t AnalysisReport::errorCount() const {
  return countBySeverity(FindingSeverity::Error);
}

std::size_t AnalysisReport::countBySeverity(FindingSeverity Severity) const {
  std::size_t N = 0;
  for (const AnalysisFinding &F : Findings)
    if (F.Severity == Severity)
      ++N;
  return N;
}

bool AnalysisReport::hasFinding(const std::string &Id) const {
  for (const AnalysisFinding &F : Findings)
    if (F.Id == Id)
      return true;
  return false;
}

std::string AnalysisReport::toString() const {
  if (Findings.empty())
    return "analysis clean\n";
  std::string Out;
  for (const AnalysisFinding &F : Findings) {
    Out += F.toString();
    Out += "\n";
  }
  return Out;
}

std::string AnalysisReport::toJson() const {
  std::string Out = "[";
  for (std::size_t I = 0; I < Findings.size(); ++I) {
    if (I)
      Out += ",";
    Findings[I].appendJson(Out);
  }
  Out += "]";
  return Out;
}

void AnalysisReport::render(DiagnosticEngine &Diags) const {
  for (const AnalysisFinding &F : Findings)
    Diags.report(F.toDiagnostic());
}

AnalysisPassManager &
AnalysisPassManager::add(std::unique_ptr<AnalysisPass> Pass) {
  Passes.push_back(std::move(Pass));
  return *this;
}

AnalysisPassManager AnalysisPassManager::standardPipeline() {
  AnalysisPassManager PM;
  PM.add(std::make_unique<TapeVerifierPass>());
  PM.add(std::make_unique<AccessBoundsProverPass>());
  PM.add(std::make_unique<ResourceEstimatorPass>());
  return PM;
}

AnalysisReport AnalysisPassManager::run(const AnalysisInput &Input) const {
  AnalysisInput Resolved = Input;
  if (!Resolved.Plan && Resolved.Program)
    Resolved.Plan = &Resolved.Program->plan();

  AnalysisReport Report;
  for (const std::unique_ptr<AnalysisPass> &Pass : Passes) {
    AN5D_TRACE_SPAN("analysis.pass", {{"pass", Pass->name()}});
    std::size_t Before = Report.Findings.size();
    Pass->run(Resolved, Report);
    obs::count("analysis.pass_runs");
    obs::count("analysis.findings",
               static_cast<long long>(Report.Findings.size() - Before));
  }
  return Report;
}

} // namespace an5d
