//===- ResourceEstimator.h - Static per-candidate resource facts *- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static resource estimation per (stencil, configuration) candidate: the
/// register-ring bytes of the N.5D pipeline, per-tier and per-block
/// working-set bytes, FLOP/byte counts straight off the ExprPlan tape,
/// load redundancy of the overlapped tiling, and the resulting arithmetic
/// intensity. These are the paper's statically knowable facts — the
/// degree-vs-register-pressure tradeoff made explicit — surfaced three
/// ways: as SweepCandidate features the tuner records, as PerformanceModel
/// inputs (registers/thread and smem/block feed the occupancy term), and
/// as the `resources` object of the `an5dc --analyze` JSON report.
///
/// Estimation never rejects; the companion pass grades the estimate:
///
///   AN5D-A301  register demand exceeds the 255-per-thread ISA bound (Warn)
///   AN5D-A302  arithmetic intensity below 1 FLOP/byte (Info)
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_PASSES_RESOURCEESTIMATOR_H
#define AN5D_ANALYSIS_PASSES_RESOURCEESTIMATOR_H

#include "analysis/passes/AnalysisPass.h"

namespace an5d {

class StencilProgram;
struct BlockConfig;
struct ScheduleIR;

/// Static resource facts of one candidate. All byte figures assume the
/// double-precision grids the pipeline executes (8-byte words).
struct ResourceEstimate {
  bool Valid = false;

  // Occupancy inputs (the exact figures PerformanceModel consumes).
  int RegistersPerThread = 0;      ///< an5dRegistersPerThread(program, bT).
  long long SmemBytesPerBlock = 0; ///< an5dSmemBytesPerBlock(program, thr).

  // Register-ring footprint of the tier pipeline.
  long long RingBytesPerThread = 0; ///< bT tiers x RingDepth words.
  long long RingBytesPerBlock = 0;  ///< RingBytesPerThread x threads.

  // Working sets (block-local; lanes x ring planes x word).
  long long TierWorkingSetBytes = 0;  ///< One tier's live ring rows.
  long long BlockWorkingSetBytes = 0; ///< All bT tiers plus the load stage.
  long long ChunkWorkingSetBytes = 0; ///< Streamed chunk incl. load reach.

  // Tape operation census (one cell, one tier application).
  long long TapeAdds = 0;
  long long TapeMuls = 0;
  long long TapeDivs = 0;
  long long TapeMathCalls = 0;
  long long TapeFlops = 0; ///< Total counted ops (math calls weigh 1).

  /// FLOPs per stored cell per time-step sweep: bT tier applications
  /// amortized over the bT steps one temporal block advances.
  double FlopsPerCell = 0;

  /// Global-memory bytes per stored cell per time-step: one load + one
  /// store per temporal block, scaled by the overlapped-tiling load
  /// redundancy and amortized over bT.
  double GmemBytesPerCell = 0;

  /// Loaded cells over stored cells of one block (block-span overlap
  /// times the streaming-chunk overlap); 1.0 means no redundancy.
  double LoadRedundancy = 1;

  /// FlopsPerCell / GmemBytesPerCell.
  double ArithmeticIntensity = 0;
};

/// Estimates off an already-lowered \p IR (the tuner path: the IR exists
/// for the verifier anyway, so nothing is re-lowered).
ResourceEstimate estimateResources(const StencilProgram &Program,
                                   const ScheduleIR &IR);

/// Convenience overload lowering \p Config internally (model callers that
/// have no ScheduleIR at hand).
ResourceEstimate estimateResources(const StencilProgram &Program,
                                   const BlockConfig &Config);

/// The occupancy-relevant slice only — registers/thread, smem/block and
/// the register-ring bytes — computed without lowering a schedule, so the
/// performance model can consume estimator features inside its
/// per-configuration hot loop. Fields outside that slice stay zero.
ResourceEstimate estimateOccupancy(const StencilProgram &Program,
                                   const BlockConfig &Config);

/// Appends \p Estimate as one JSON object to \p Out (the `resources`
/// member of the --analyze report).
void appendResourceJson(std::string &Out, const ResourceEstimate &Estimate);

/// The pass adapter: estimates Input.Schedule's candidate and grades it
/// (A301/A302). Silent when the input carries no schedule.
class ResourceEstimatorPass : public AnalysisPass {
public:
  const char *name() const override { return "resource-estimator"; }
  void run(const AnalysisInput &Input, AnalysisReport &Report) const override;
};

} // namespace an5d

#endif // AN5D_ANALYSIS_PASSES_RESOURCEESTIMATOR_H
