//===- TapeVerifier.h - ExprPlan tape abstract interpretation ---*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interpretation of the flat postfix ExprPlan tape — the
/// emulator's correctness oracle, which until now was itself unverified.
/// The verifier simulates the operand stack with constant-ness tracking
/// and proves, per tape:
///
///   AN5D-A101  stack underflow (an op pops more operands than pushed)
///   AN5D-A102  stack residue (tape does not end with exactly one value)
///   AN5D-A103  declared MaxStackDepth vs simulated peak (Error when the
///              declaration is too small — CompiledTape would size its
///              scratch file short; Warn when merely loose)
///   AN5D-A104  PushConst index outside the constant pool
///   AN5D-A105  LoadTap index outside the tap table
///   AN5D-A106  MathCall selector outside the MathFn enum
///   AN5D-A107  fused superinstruction in a base plan (fused ops exist
///              only inside CompiledTape's peephole output)
///   AN5D-A108  tap arity != NumDims
///   AN5D-A109  tap offset beyond the declared radius
///   AN5D-A110  non-finite constant in the pool
///   AN5D-A111  division by a known constant zero
///   AN5D-A112  hasConstantDivision predicate inconsistent with the tape
///   AN5D-A113  constant never referenced (Info)
///   AN5D-A114  tap never referenced (Warn)
///   AN5D-A115  constant fold produces a non-finite value (what
///              CompiledTape's construction-time folding would compute)
///
/// ExprPlan's members are private and its compiler is trusted to emit
/// well-formed tapes, so the verifier runs over a plain mutable TapeFacts
/// snapshot instead — the same idiom as ScheduleIR's deliberately-mutable
/// fields: tests corrupt exactly one fact and assert the one finding ID
/// that must catch it.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_ANALYSIS_PASSES_TAPEVERIFIER_H
#define AN5D_ANALYSIS_PASSES_TAPEVERIFIER_H

#include "analysis/passes/AnalysisPass.h"
#include "ir/ExprPlan.h"

#include <vector>

namespace an5d {

/// A mutable snapshot of everything the tape verifier reasons about.
struct TapeFacts {
  std::vector<TapeOp> Ops;
  std::vector<double> Constants;
  std::vector<std::vector<int>> Taps;
  int MaxStackDepth = 0;
  bool HasConstantDivision = false;
  int NumDims = 0; ///< Declared dimensionality every tap must match.
  int Radius = 0;  ///< Declared radius bounding every tap component.

  /// Snapshots \p Plan against \p Program's declared shape.
  static TapeFacts of(const ExprPlan &Plan, const StencilProgram &Program);

  /// Snapshots \p Plan against an explicit shape (extractor-time callers
  /// that have no StencilProgram yet).
  static TapeFacts of(const ExprPlan &Plan, int NumDims, int Radius);
};

/// Runs every A1xx check over \p Facts, appending findings to \p Report.
void verifyTape(const TapeFacts &Facts, AnalysisReport &Report);

/// Convenience wrapper returning a fresh report.
AnalysisReport verifyTape(const TapeFacts &Facts);

/// The pass adapter: verifies Input.Plan (or Program->plan()) against
/// Program's declared shape. Silent when the input has no plan.
class TapeVerifierPass : public AnalysisPass {
public:
  const char *name() const override { return "tape-verifier"; }
  void run(const AnalysisInput &Input, AnalysisReport &Report) const override;
};

} // namespace an5d

#endif // AN5D_ANALYSIS_PASSES_TAPEVERIFIER_H
