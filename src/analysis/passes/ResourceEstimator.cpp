//===- ResourceEstimator.cpp - Static per-candidate resource facts --------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/passes/ResourceEstimator.h"

#include "ir/ExprPlan.h"
#include "ir/StencilProgram.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "schedule/ScheduleIR.h"

#include <cstdio>
#include <string>

namespace an5d {

namespace {

constexpr long long WordBytes = 8; // Double-precision grids throughout.

void appendJsonNumber(std::string &Out, const char *Key, double Value,
                      bool First = false) {
  if (!First)
    Out += ",";
  Out += "\"";
  Out += Key;
  Out += "\":";
  // Integral values print without a fraction so the report stays stable.
  if (Value == static_cast<double>(static_cast<long long>(Value))) {
    Out += std::to_string(static_cast<long long>(Value));
  } else {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
    Out += Buf;
  }
}

} // namespace

ResourceEstimate estimateResources(const StencilProgram &Program,
                                   const ScheduleIR &IR) {
  ResourceEstimate E;
  if (IR.Invocations.empty() || IR.Config.BT < 1)
    return E;
  const InvocationSchedule &Full = IR.full();
  const long long Threads = IR.Config.numThreads();
  if (Threads < 1 || Full.RingDepth < 1)
    return E;

  E.Valid = true;

  // Occupancy inputs: exactly the figures concurrentBlocksPerSm feeds
  // into the register-file and shared-memory limits, so the model's
  // consumption of this estimate is bit-identical to computing them
  // in place.
  E.RegistersPerThread = an5dRegistersPerThread(Program, IR.Config.BT);
  E.SmemBytesPerBlock = an5dSmemBytesPerBlock(Program, Threads);

  // Register rings: every tier keeps RingDepth sub-plane values per
  // thread in registers.
  E.RingBytesPerThread = static_cast<long long>(IR.Config.BT) *
                         Full.RingDepth * WordBytes;
  E.RingBytesPerBlock = E.RingBytesPerThread * Threads;

  // Working sets: one ring row spans the loaded block (all lanes of every
  // blocked axis; a 1D schedule streams single cells).
  long long LanesPerPlane = 1;
  for (long long Span : Full.BS)
    LanesPerPlane *= Span;
  E.TierWorkingSetBytes = Full.RingDepth * LanesPerPlane * WordBytes;
  // The load stage keeps its own ring of loaded planes ahead of tier 1.
  E.BlockWorkingSetBytes =
      (static_cast<long long>(IR.Config.BT) + 1) * E.TierWorkingSetBytes;
  const long long ChunkPlanes =
      (Full.ChunkLength > 0 ? Full.ChunkLength : 1) +
      2 * Full.LoadStreamReach;
  E.ChunkWorkingSetBytes = ChunkPlanes * LanesPerPlane * WordBytes;

  // Tape census: what one tier application spends per cell.
  for (const TapeOp &Op : Program.plan().ops()) {
    switch (Op.Kind) {
    case TapeOpKind::Add:
    case TapeOpKind::Sub:
    case TapeOpKind::Neg:
      ++E.TapeAdds;
      break;
    case TapeOpKind::Mul:
      ++E.TapeMuls;
      break;
    case TapeOpKind::Div:
      ++E.TapeDivs;
      break;
    case TapeOpKind::MathCall:
      ++E.TapeMathCalls;
      break;
    default:
      break; // Pushes and loads are not FLOPs.
    }
  }
  E.TapeFlops = E.TapeAdds + E.TapeMuls + E.TapeDivs + E.TapeMathCalls;

  // A full-degree temporal block advances bT time-steps while running bT
  // tier applications per cell and touching global memory once each way,
  // so per cell per step the FLOPs stay at the tape cost and the traffic
  // shrinks by bT (the whole point of temporal blocking) — inflated by
  // the overlapped-tiling redundancy on the load side.
  long long LoadedCells = LanesPerPlane;
  long long StoredCells = 1;
  for (long long Width : Full.StoreWidth)
    StoredCells *= Width;
  double Redundancy =
      StoredCells > 0
          ? static_cast<double>(LoadedCells) / static_cast<double>(StoredCells)
          : 1.0;
  if (Full.ChunkLength > 0)
    Redundancy *= static_cast<double>(Full.ChunkLength +
                                      2 * Full.LoadStreamReach) /
                  static_cast<double>(Full.ChunkLength);
  E.LoadRedundancy = Redundancy;

  E.FlopsPerCell = static_cast<double>(E.TapeFlops);
  E.GmemBytesPerCell = static_cast<double>(WordBytes) * (Redundancy + 1.0) /
                       static_cast<double>(IR.Config.BT);
  E.ArithmeticIntensity =
      E.GmemBytesPerCell > 0 ? E.FlopsPerCell / E.GmemBytesPerCell : 0.0;
  return E;
}

ResourceEstimate estimateResources(const StencilProgram &Program,
                                   const BlockConfig &Config) {
  return estimateResources(Program, lowerSchedule(Program, Config));
}

ResourceEstimate estimateOccupancy(const StencilProgram &Program,
                                   const BlockConfig &Config) {
  ResourceEstimate E;
  const long long Threads = Config.numThreads();
  if (Config.BT < 1 || Threads < 1)
    return E;
  E.Valid = true;
  E.RegistersPerThread = an5dRegistersPerThread(Program, Config.BT);
  E.SmemBytesPerBlock = an5dSmemBytesPerBlock(Program, Threads);
  const long long RingDepth = 2LL * Program.radius() + 1;
  E.RingBytesPerThread =
      static_cast<long long>(Config.BT) * RingDepth * WordBytes;
  E.RingBytesPerBlock = E.RingBytesPerThread * Threads;
  return E;
}

void appendResourceJson(std::string &Out, const ResourceEstimate &Estimate) {
  Out += "{";
  appendJsonNumber(Out, "valid", Estimate.Valid ? 1 : 0, /*First=*/true);
  appendJsonNumber(Out, "registers_per_thread", Estimate.RegistersPerThread);
  appendJsonNumber(Out, "smem_bytes_per_block",
                   static_cast<double>(Estimate.SmemBytesPerBlock));
  appendJsonNumber(Out, "ring_bytes_per_thread",
                   static_cast<double>(Estimate.RingBytesPerThread));
  appendJsonNumber(Out, "ring_bytes_per_block",
                   static_cast<double>(Estimate.RingBytesPerBlock));
  appendJsonNumber(Out, "tier_working_set_bytes",
                   static_cast<double>(Estimate.TierWorkingSetBytes));
  appendJsonNumber(Out, "block_working_set_bytes",
                   static_cast<double>(Estimate.BlockWorkingSetBytes));
  appendJsonNumber(Out, "chunk_working_set_bytes",
                   static_cast<double>(Estimate.ChunkWorkingSetBytes));
  appendJsonNumber(Out, "tape_adds", static_cast<double>(Estimate.TapeAdds));
  appendJsonNumber(Out, "tape_muls", static_cast<double>(Estimate.TapeMuls));
  appendJsonNumber(Out, "tape_divs", static_cast<double>(Estimate.TapeDivs));
  appendJsonNumber(Out, "tape_math_calls",
                   static_cast<double>(Estimate.TapeMathCalls));
  appendJsonNumber(Out, "tape_flops",
                   static_cast<double>(Estimate.TapeFlops));
  appendJsonNumber(Out, "flops_per_cell", Estimate.FlopsPerCell);
  appendJsonNumber(Out, "gmem_bytes_per_cell", Estimate.GmemBytesPerCell);
  appendJsonNumber(Out, "load_redundancy", Estimate.LoadRedundancy);
  appendJsonNumber(Out, "arithmetic_intensity", Estimate.ArithmeticIntensity);
  Out += "}";
}

void ResourceEstimatorPass::run(const AnalysisInput &Input,
                                AnalysisReport &Report) const {
  if (!Input.Schedule || !Input.Program)
    return;
  ResourceEstimate E = estimateResources(*Input.Program, *Input.Schedule);
  if (!E.Valid)
    return;

  auto Grade = [&Report](const char *Id, FindingSeverity Severity,
                         std::string Subject, std::string Message) {
    AnalysisFinding F;
    F.Id = Id;
    F.Severity = Severity;
    F.Pass = "resource-estimator";
    F.Subject = std::move(Subject);
    F.Message = std::move(Message);
    Report.Findings.push_back(std::move(F));
  };

  if (E.RegistersPerThread > 255)
    Grade("AN5D-A301", FindingSeverity::Warn, "registers",
          "estimated register demand " +
              std::to_string(E.RegistersPerThread) +
              " per thread exceeds the 255-register ISA bound (spills "
              "certain at any cap)");
  if (E.ArithmeticIntensity < 1.0)
    Grade("AN5D-A302", FindingSeverity::Info, "arithmetic intensity",
          "estimated arithmetic intensity below 1 FLOP/byte; the candidate "
          "is firmly bandwidth-bound");
}

} // namespace an5d
