//===- TapeVerifier.cpp - ExprPlan tape abstract interpretation -----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/passes/TapeVerifier.h"

#include "ir/ExprEval.h"
#include "ir/StencilProgram.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

namespace an5d {

namespace {

const char *tapeOpKindName(TapeOpKind Kind) {
  switch (Kind) {
  case TapeOpKind::PushConst:
    return "PushConst";
  case TapeOpKind::LoadTap:
    return "LoadTap";
  case TapeOpKind::Neg:
    return "Neg";
  case TapeOpKind::Add:
    return "Add";
  case TapeOpKind::Sub:
    return "Sub";
  case TapeOpKind::Mul:
    return "Mul";
  case TapeOpKind::Div:
    return "Div";
  case TapeOpKind::MathCall:
    return "MathCall";
  case TapeOpKind::MulConstTap:
    return "MulConstTap";
  case TapeOpKind::MacConstTap:
    return "MacConstTap";
  case TapeOpKind::AddTap:
    return "AddTap";
  case TapeOpKind::SubTap:
    return "SubTap";
  case TapeOpKind::MulTap:
    return "MulTap";
  case TapeOpKind::AddConst:
    return "AddConst";
  case TapeOpKind::SubConst:
    return "SubConst";
  case TapeOpKind::MulConst:
    return "MulConst";
  case TapeOpKind::DivConst:
    return "DivConst";
  }
  return "<unknown>";
}

/// One abstract operand: either a known compile-time constant (the value
/// CompiledTape's construction-time folding would have computed) or an
/// unknown grid-dependent value.
struct AbsVal {
  bool IsConst = false;
  double Value = 0.0;
};

std::string opSubject(std::size_t Index, TapeOpKind Kind) {
  return "op " + std::to_string(Index) + " " + tapeOpKindName(Kind);
}

void finding(AnalysisReport &Report, const char *Id, FindingSeverity Severity,
             std::string Subject, std::string Message) {
  AnalysisFinding F;
  F.Id = Id;
  F.Severity = Severity;
  F.Pass = "tape-verifier";
  F.Subject = std::move(Subject);
  F.Message = std::move(Message);
  Report.Findings.push_back(std::move(F));
}

} // namespace

TapeFacts TapeFacts::of(const ExprPlan &Plan, const StencilProgram &Program) {
  return of(Plan, Program.numDims(), Program.radius());
}

TapeFacts TapeFacts::of(const ExprPlan &Plan, int NumDims, int Radius) {
  TapeFacts Facts;
  Facts.Ops = Plan.ops();
  Facts.Constants = Plan.constants();
  Facts.Taps = Plan.taps();
  Facts.MaxStackDepth = Plan.maxStackDepth();
  Facts.HasConstantDivision = Plan.hasConstantDivision();
  Facts.NumDims = NumDims;
  Facts.Radius = Radius;
  return Facts;
}

void verifyTape(const TapeFacts &Facts, AnalysisReport &Report) {
  // Pool- and table-level checks run regardless of whether the stack
  // simulation survives: a corrupted tape must not mask a bad constant.
  for (std::size_t I = 0; I < Facts.Constants.size(); ++I) {
    if (!std::isfinite(Facts.Constants[I]))
      finding(Report, "AN5D-A110", FindingSeverity::Error,
              "constant " + std::to_string(I),
              "constant pool holds a non-finite value");
  }
  for (std::size_t I = 0; I < Facts.Taps.size(); ++I) {
    const std::vector<int> &Tap = Facts.Taps[I];
    if (static_cast<int>(Tap.size()) != Facts.NumDims) {
      finding(Report, "AN5D-A108", FindingSeverity::Error,
              "tap " + std::to_string(I),
              "tap has " + std::to_string(Tap.size()) +
                  " components, expected NumDims = " +
                  std::to_string(Facts.NumDims));
      continue;
    }
    for (std::size_t D = 0; D < Tap.size(); ++D) {
      if (std::abs(Tap[D]) > Facts.Radius)
        finding(Report, "AN5D-A109", FindingSeverity::Error,
                "tap " + std::to_string(I) + " axis " + std::to_string(D),
                "tap offset " + std::to_string(Tap[D]) +
                    " exceeds declared radius " +
                    std::to_string(Facts.Radius));
    }
  }

  // Abstract interpretation of the stack machine, tracking constant-ness
  // so constant folds are checked exactly as CompiledTape would compute
  // them. A structural break (underflow) aborts the simulation — every
  // later stack-derived fact would be noise.
  std::vector<AbsVal> Stack;
  std::vector<bool> ConstUsed(Facts.Constants.size(), false);
  std::vector<bool> TapUsed(Facts.Taps.size(), false);
  int Peak = 0;
  bool SawConstDivision = false;
  bool Bailed = false;

  auto Pop = [&Stack]() {
    AbsVal V = Stack.back();
    Stack.pop_back();
    return V;
  };
  auto Push = [&Stack, &Peak](AbsVal V) {
    Stack.push_back(V);
    Peak = std::max(Peak, static_cast<int>(Stack.size()));
  };
  auto CheckFold = [&Report](double Value, std::size_t Index,
                             TapeOpKind Kind) {
    if (!std::isfinite(Value))
      finding(Report, "AN5D-A115", FindingSeverity::Error,
              opSubject(Index, Kind),
              "constant fold produces a non-finite value");
  };

  for (std::size_t I = 0; I < Facts.Ops.size() && !Bailed; ++I) {
    const TapeOp &Op = Facts.Ops[I];
    if (Op.Kind > TapeOpKind::MathCall) {
      finding(Report, "AN5D-A107", FindingSeverity::Error,
              opSubject(I, Op.Kind),
              "fused superinstruction in a base plan (fused ops exist only "
              "inside CompiledTape)");
      Bailed = true;
      break;
    }
    int Need = 0;
    switch (Op.Kind) {
    case TapeOpKind::PushConst:
    case TapeOpKind::LoadTap:
      Need = 0;
      break;
    case TapeOpKind::Neg:
    case TapeOpKind::MathCall:
      Need = 1;
      break;
    default:
      Need = 2;
      break;
    }
    if (static_cast<int>(Stack.size()) < Need) {
      finding(Report, "AN5D-A101", FindingSeverity::Error,
              opSubject(I, Op.Kind),
              "stack underflow: op pops " + std::to_string(Need) +
                  " operands but only " + std::to_string(Stack.size()) +
                  " are on the stack");
      Bailed = true;
      break;
    }

    switch (Op.Kind) {
    case TapeOpKind::PushConst:
      if (Op.Arg >= Facts.Constants.size()) {
        finding(Report, "AN5D-A104", FindingSeverity::Error,
                opSubject(I, Op.Kind),
                "constant index " + std::to_string(Op.Arg) +
                    " outside pool of size " +
                    std::to_string(Facts.Constants.size()));
        Push({});
      } else {
        ConstUsed[Op.Arg] = true;
        Push({true, Facts.Constants[Op.Arg]});
      }
      break;
    case TapeOpKind::LoadTap:
      if (Op.Arg >= Facts.Taps.size()) {
        finding(Report, "AN5D-A105", FindingSeverity::Error,
                opSubject(I, Op.Kind),
                "tap index " + std::to_string(Op.Arg) +
                    " outside table of size " +
                    std::to_string(Facts.Taps.size()));
      } else {
        TapUsed[Op.Arg] = true;
      }
      Push({});
      break;
    case TapeOpKind::Neg: {
      AbsVal V = Pop();
      Push({V.IsConst, -V.Value});
      break;
    }
    case TapeOpKind::MathCall: {
      AbsVal V = Pop();
      if (Op.Arg > static_cast<std::uint16_t>(MathFn::Cos)) {
        finding(Report, "AN5D-A106", FindingSeverity::Error,
                opSubject(I, Op.Kind),
                "math-function selector " + std::to_string(Op.Arg) +
                    " outside the MathFn enum");
        Push({});
        break;
      }
      if (V.IsConst) {
        double Folded =
            applyMathFn<double>(static_cast<MathFn>(Op.Arg), V.Value);
        CheckFold(Folded, I, Op.Kind);
        Push({true, Folded});
      } else {
        Push({});
      }
      break;
    }
    case TapeOpKind::Add:
    case TapeOpKind::Sub:
    case TapeOpKind::Mul:
    case TapeOpKind::Div: {
      AbsVal Rhs = Pop();
      AbsVal Lhs = Pop();
      if (Op.Kind == TapeOpKind::Div && Rhs.IsConst) {
        SawConstDivision = true;
        if (Rhs.Value == 0.0) {
          finding(Report, "AN5D-A111", FindingSeverity::Error,
                  opSubject(I, Op.Kind),
                  "division by a constant zero");
          Push({});
          break;
        }
      }
      if (Lhs.IsConst && Rhs.IsConst) {
        double Folded = 0.0;
        switch (Op.Kind) {
        case TapeOpKind::Add:
          Folded = Lhs.Value + Rhs.Value;
          break;
        case TapeOpKind::Sub:
          Folded = Lhs.Value - Rhs.Value;
          break;
        case TapeOpKind::Mul:
          Folded = Lhs.Value * Rhs.Value;
          break;
        default:
          Folded = Lhs.Value / Rhs.Value;
          break;
        }
        CheckFold(Folded, I, Op.Kind);
        Push({true, Folded});
      } else {
        Push({});
      }
      break;
    }
    default:
      break; // Fused kinds handled above.
    }
  }

  if (Bailed)
    return;

  if (Stack.size() != 1)
    finding(Report, "AN5D-A102", FindingSeverity::Error, "end of tape",
            "tape leaves " + std::to_string(Stack.size()) +
                " values on the stack, expected exactly 1");

  if (Facts.MaxStackDepth < Peak)
    finding(Report, "AN5D-A103", FindingSeverity::Error, "MaxStackDepth",
            "declared stack depth " + std::to_string(Facts.MaxStackDepth) +
                " is smaller than the simulated peak " + std::to_string(Peak) +
                " (CompiledTape would size its scratch file short)");
  else if (Facts.MaxStackDepth > Peak)
    finding(Report, "AN5D-A103", FindingSeverity::Warn, "MaxStackDepth",
            "declared stack depth " + std::to_string(Facts.MaxStackDepth) +
                " exceeds the simulated peak " + std::to_string(Peak));

  if (SawConstDivision && !Facts.HasConstantDivision)
    finding(Report, "AN5D-A112", FindingSeverity::Error,
            "hasConstantDivision",
            "tape divides by a compile-time constant but the plan predicate "
            "says it does not (div-to-mul rewrites would be skipped)");
  else if (!SawConstDivision && Facts.HasConstantDivision)
    finding(Report, "AN5D-A112", FindingSeverity::Warn, "hasConstantDivision",
            "plan predicate claims a constant division the tape never "
            "performs");

  for (std::size_t I = 0; I < ConstUsed.size(); ++I)
    if (!ConstUsed[I])
      finding(Report, "AN5D-A113", FindingSeverity::Info,
              "constant " + std::to_string(I),
              "constant pool entry is never referenced");
  for (std::size_t I = 0; I < TapUsed.size(); ++I)
    if (!TapUsed[I])
      finding(Report, "AN5D-A114", FindingSeverity::Warn,
              "tap " + std::to_string(I), "tap table entry is never loaded");
}

AnalysisReport verifyTape(const TapeFacts &Facts) {
  AnalysisReport Report;
  verifyTape(Facts, Report);
  return Report;
}

void TapeVerifierPass::run(const AnalysisInput &Input,
                           AnalysisReport &Report) const {
  const ExprPlan *Plan = Input.Plan;
  if (!Plan && Input.Program)
    Plan = &Input.Program->plan();
  if (!Plan || !Input.Program)
    return;
  verifyTape(TapeFacts::of(*Plan, *Input.Program), Report);
}

} // namespace an5d
