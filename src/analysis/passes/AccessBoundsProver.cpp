//===- AccessBoundsProver.cpp - Symbolic buffer-access bounds -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/passes/AccessBoundsProver.h"

#include "ir/StencilProgram.h"
#include "schedule/ScheduleIR.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace an5d {

namespace {

void finding(AnalysisReport &Report, const char *Id, FindingSeverity Severity,
             std::string Subject, std::string Message) {
  AnalysisFinding F;
  F.Id = Id;
  F.Severity = Severity;
  F.Pass = "access-bounds";
  F.Subject = std::move(Subject);
  F.Message = std::move(Message);
  Report.Findings.push_back(std::move(F));
}

std::string degreeSubject(const InvocationSchedule &Inv) {
  return "degree " + std::to_string(Inv.Degree);
}

/// Structural sanity (AN5D-A210). Returns false when the invocation is too
/// malformed for the bounds checks to index into safely.
bool checkStructure(const ScheduleIR &IR, const InvocationSchedule &Inv,
                    AnalysisReport &Report) {
  const std::string Subject = degreeSubject(Inv);
  auto Malformed = [&](std::string Message) {
    finding(Report, "AN5D-A210", FindingSeverity::Error, Subject,
            std::move(Message));
  };

  bool Ok = true;
  if (Inv.NumDims < 1 || Inv.Radius < 1 || Inv.Degree < 1) {
    Malformed("non-positive NumDims, Radius or Degree");
    Ok = false;
  }
  if (Inv.NumDims != IR.NumDims || Inv.Radius != IR.Radius ||
      Inv.GridHalo != IR.GridHalo || Inv.RingDepth != IR.RingDepth ||
      Inv.HaloPolicy != IR.HaloPolicy) {
    Malformed("invocation disagrees with the shared ScheduleIR invariants");
    Ok = false;
  }
  if (Inv.RingDepth < 1) {
    Malformed("ring depth must be at least 1");
    Ok = false;
  }
  if (Inv.GridHalo < 0 || Inv.LoadSpanHalo < 0 || Inv.LoadStreamReach < 0 ||
      Inv.ChunkLength < 0 || Inv.ChunkStride < 0) {
    Malformed("negative halo, reach or chunk field");
    Ok = false;
  }

  const std::size_t Blocked =
      Inv.NumDims >= 1 ? static_cast<std::size_t>(Inv.NumDims - 1) : 0;
  if ((!Inv.BS.empty() && Inv.BS.size() != Blocked) ||
      Inv.ComputeWidth.size() != Inv.BS.size() ||
      Inv.BlockStride.size() != Inv.BS.size() ||
      Inv.StoreWidth.size() != Inv.BS.size()) {
    Malformed("blocked-axis vectors disagree in size");
    return false;
  }
  for (std::size_t D = 0; D < Inv.BS.size(); ++D) {
    if (Inv.BS[D] < 1 || Inv.ComputeWidth[D] < 1 || Inv.BlockStride[D] < 1 ||
        Inv.StoreWidth[D] < 1) {
      Malformed("non-positive block span, compute width, stride or store "
                "width on axis " +
                std::to_string(D));
      Ok = false;
    }
  }

  if (Inv.Tiers.size() != static_cast<std::size_t>(std::max(Inv.Degree, 0))) {
    Malformed("tier count " + std::to_string(Inv.Tiers.size()) +
              " does not match degree " + std::to_string(Inv.Degree));
    return false;
  }
  for (std::size_t T = 0; T < Inv.Tiers.size(); ++T) {
    if (Inv.Tiers[T].Tier != static_cast<int>(T) + 1) {
      Malformed("tier numbering broken at position " + std::to_string(T));
      Ok = false;
    }
    if (Inv.Tiers[T].StreamLag < 0 || Inv.Tiers[T].Reach < 0) {
      Malformed("negative stream lag or reach at tier " +
                std::to_string(T + 1));
      Ok = false;
    }
  }

  for (std::size_t K = 0; K < Inv.Taps.size(); ++K) {
    if (static_cast<int>(Inv.Taps[K].size()) != Inv.NumDims) {
      Malformed("tap " + std::to_string(K) + " arity does not match NumDims");
      return false;
    }
  }
  return Ok;
}

void checkInvocation(const ScheduleIR &IR, const InvocationSchedule &Inv,
                     long long AllocHalo, long long MinExtent,
                     AnalysisReport &Report) {
  if (!checkStructure(IR, Inv, Report))
    return;
  const std::string Subject = degreeSubject(Inv);

  // AN5D-A211: the 1D pure-streaming schedule (no blocked axes) is the
  // only shape without a spatial halo to carry.
  const bool WantsPin = Inv.BS.empty();
  const bool IsPin = Inv.HaloPolicy == ScheduleHaloPolicy::PinBoundaryOnly;
  if (WantsPin != IsPin)
    finding(Report, "AN5D-A211", FindingSeverity::Error, Subject,
            std::string("halo policy ") + scheduleHaloPolicyName(Inv.HaloPolicy) +
                (WantsPin ? " on a schedule with no blocked axes"
                          : " on a schedule with blocked axes"));

  // AN5D-A201: tier-0 stream loads are clamped to
  // [-GridHalo, E-1+GridHalo]; the buffers allocate AllocHalo per side.
  {
    SymBound AccessLo{0, -Inv.GridHalo};
    SymBound AccessHi{1, Inv.GridHalo - 1};
    SymBound AllocLo{0, -AllocHalo};
    SymBound AllocHi{1, AllocHalo - 1};
    if (!provedLE(AllocLo, AccessLo, MinExtent) ||
        !provedLE(AccessHi, AllocHi, MinExtent))
      finding(Report, "AN5D-A201", FindingSeverity::Error,
              Subject + " stream axis",
              "stream-axis loads reach " + std::to_string(Inv.GridHalo) +
                  " cells past the edge but only " +
                  std::to_string(AllocHalo) + " are allocated");
  }

  // AN5D-A203: boundary pinning reads the input at plane P+tap for every
  // stream tap, so the halo must cover the widest stream offset.
  long long MaxAbsStreamTap = 0;
  long long MinTap0 = 0, MaxTap0 = 0;
  for (const std::vector<int> &Tap : Inv.Taps) {
    MaxAbsStreamTap = std::max(MaxAbsStreamTap,
                               static_cast<long long>(std::abs(Tap[0])));
    MinTap0 = std::min(MinTap0, static_cast<long long>(Tap[0]));
    MaxTap0 = std::max(MaxTap0, static_cast<long long>(Tap[0]));
  }
  if (Inv.GridHalo < MaxAbsStreamTap)
    finding(Report, "AN5D-A203", FindingSeverity::Error,
            Subject + " stream axis",
            "grid halo " + std::to_string(Inv.GridHalo) +
                " is smaller than the widest stream tap offset " +
                std::to_string(MaxAbsStreamTap));

  // AN5D-A202: blocked-axis loads are clipped by the Exists region
  // [-Radius, E+Radius) before touching the buffers.
  for (std::size_t D = 0; D < Inv.BS.size(); ++D) {
    SymBound AccessLo{0, -static_cast<long long>(Inv.Radius)};
    SymBound AccessHi{1, static_cast<long long>(Inv.Radius) - 1};
    SymBound AllocLo{0, -AllocHalo};
    SymBound AllocHi{1, AllocHalo - 1};
    if (!provedLE(AllocLo, AccessLo, MinExtent) ||
        !provedLE(AccessHi, AllocHi, MinExtent))
      finding(Report, "AN5D-A202", FindingSeverity::Error,
              Subject + " axis " + std::to_string(D),
              "blocked-axis loads reach " + std::to_string(Inv.Radius) +
                  " cells past the edge but only " +
                  std::to_string(AllocHalo) + " are allocated");
  }

  // Per-tier pipeline checks. The producer of tier T is tier T-1; tier 1
  // consumes the tier-0 load stage (lag 0, position LoadOrderPosition).
  for (std::size_t T = 0; T < Inv.Tiers.size(); ++T) {
    const TierSchedule &Tier = Inv.Tiers[T];
    const long long PrevLag = T == 0 ? 0 : Inv.Tiers[T - 1].StreamLag;
    const int PrevPos =
        T == 0 ? Inv.LoadOrderPosition : Inv.Tiers[T - 1].OrderPosition;
    const long long LagDiff = Tier.StreamLag - PrevLag;
    const std::string TierSubject =
        Subject + " tier " + std::to_string(Tier.Tier);

    // AN5D-A205: at step s the consumer reads the producer's sub-plane
    // s - StreamLag + MaxTap0. Same-step availability requires the
    // producer to run earlier in the step; otherwise only step s-1 is
    // written.
    const long long Newest =
        PrevPos < Tier.OrderPosition ? LagDiff : LagDiff - 1;
    if (Newest < MaxTap0)
      finding(Report, "AN5D-A205", FindingSeverity::Error, TierSubject,
              "tier consumes sub-plane lag " + std::to_string(LagDiff) +
                  " + tap " + std::to_string(MaxTap0) +
                  " before its producer has written it");

    // AN5D-A204: the oldest consumed sub-plane s - StreamLag + MinTap0 is
    // overwritten (slot reuse) RingDepth planes after production; it must
    // survive until the consumer's read. Equality is tolerable only when
    // the consumer runs before the producer within the step.
    const long long LifetimeNeed = LagDiff - MinTap0;
    const bool RingOk =
        Inv.RingDepth > LifetimeNeed ||
        (Inv.RingDepth == LifetimeNeed && Tier.OrderPosition < PrevPos);
    if (!RingOk)
      finding(Report, "AN5D-A204", FindingSeverity::Error, TierSubject,
              "ring depth " + std::to_string(Inv.RingDepth) +
                  " cannot hold a sub-plane for the " +
                  std::to_string(LifetimeNeed) +
                  " steps between production and last read");

    // Ring lane bounds: a tier evaluates lanes across its valid region
    // (reach beyond the compute region) and reads lane X + tap - SpanLo
    // with SpanLo = Origin - LoadSpanHalo; the ring rows hold BS lanes.
    for (std::size_t D = 0; D < Inv.BS.size(); ++D) {
      long long MinTapD = 0, MaxTapD = 0;
      for (const std::vector<int> &Tap : Inv.Taps) {
        MinTapD = std::min(MinTapD, static_cast<long long>(Tap[D + 1]));
        MaxTapD = std::max(MaxTapD, static_cast<long long>(Tap[D + 1]));
      }
      const std::string AxisSubject =
          TierSubject + " axis " + std::to_string(D);
      const long long MinLane = Inv.LoadSpanHalo - Tier.Reach + MinTapD;
      if (MinLane < 0)
        finding(Report, "AN5D-A206", FindingSeverity::Error, AxisSubject,
                "ring lane underflow: load-span halo " +
                    std::to_string(Inv.LoadSpanHalo) +
                    " does not cover reach " + std::to_string(Tier.Reach) +
                    " plus tap " + std::to_string(MinTapD));
      const long long MaxLaneEnd = Inv.LoadSpanHalo + Inv.ComputeWidth[D] +
                                   Tier.Reach + MaxTapD;
      if (MaxLaneEnd > Inv.BS[D])
        finding(Report, "AN5D-A207", FindingSeverity::Error, AxisSubject,
                "ring lane overflow: span needs " +
                    std::to_string(MaxLaneEnd) + " lanes but the block loads " +
                    std::to_string(Inv.BS[D]));
    }
  }

  // AN5D-A208 / AN5D-A209: store and tiling coverage per blocked axis.
  for (std::size_t D = 0; D < Inv.BS.size(); ++D) {
    if (Inv.StoreWidth[D] > Inv.ComputeWidth[D])
      finding(Report, "AN5D-A208", FindingSeverity::Error,
              Subject + " axis " + std::to_string(D),
              "store width " + std::to_string(Inv.StoreWidth[D]) +
                  " exceeds computed width " +
                  std::to_string(Inv.ComputeWidth[D]));
    if (Inv.BlockStride[D] != Inv.StoreWidth[D])
      finding(Report, "AN5D-A209", FindingSeverity::Warn,
              Subject + " axis " + std::to_string(D),
              "block stride " + std::to_string(Inv.BlockStride[D]) +
                  " differs from store width " +
                  std::to_string(Inv.StoreWidth[D]) +
                  " (tiling gaps or double stores)");
  }
  if (Inv.ChunkLength > 0 && Inv.ChunkStride != Inv.ChunkLength)
    finding(Report, "AN5D-A209", FindingSeverity::Warn,
            Subject + " stream axis",
            "chunk stride " + std::to_string(Inv.ChunkStride) +
                " differs from chunk length " +
                std::to_string(Inv.ChunkLength) +
                " (streaming gaps or double stores)");
}

} // namespace

void proveAccessBounds(const ScheduleIR &IR, long long AllocHalo,
                       AnalysisReport &Report, long long MinExtent) {
  if (IR.Invocations.empty()) {
    finding(Report, "AN5D-A210", FindingSeverity::Error, IR.StencilName,
            "schedule lowered no invocations (bT = " +
                std::to_string(IR.Config.BT) + ")");
    return;
  }
  for (const InvocationSchedule &Inv : IR.Invocations)
    checkInvocation(IR, Inv, AllocHalo, MinExtent, Report);
}

AnalysisReport proveAccessBounds(const ScheduleIR &IR, long long AllocHalo) {
  AnalysisReport Report;
  proveAccessBounds(IR, AllocHalo, Report);
  return Report;
}

void AccessBoundsProverPass::run(const AnalysisInput &Input,
                                 AnalysisReport &Report) const {
  if (!Input.Schedule || !Input.Program)
    return;
  proveAccessBounds(*Input.Schedule, Input.Program->radius(), Report);
}

} // namespace an5d
