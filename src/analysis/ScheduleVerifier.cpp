//===- ScheduleVerifier.cpp - Static proof of N.5D schedule safety --------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ScheduleVerifier.h"

#include "obs/Metrics.h"
#include "sim/TimeBlockScheduler.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

using namespace an5d;

namespace {

/// printf-style std::string builder for diagnostic messages.
std::string format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  char Buffer[512];
  std::vsnprintf(Buffer, sizeof(Buffer), Fmt, Args);
  va_end(Args);
  return Buffer;
}

/// Closed integer interval [Lo, Hi] (non-empty by construction here: every
/// interval the verifier forms spans at least one cell).
struct Span {
  long long Lo = 0;
  long long Hi = 0;

  bool within(const Span &Outer) const {
    return Lo >= Outer.Lo && Hi <= Outer.Hi;
  }
};

/// Minimum and maximum tap offset along \p Axis (0 = streaming).
Span tapRange(const std::vector<std::vector<int>> &Taps, int Axis) {
  Span R{0, 0};
  for (const std::vector<int> &Tap : Taps) {
    if (Axis >= static_cast<int>(Tap.size()))
      continue;
    R.Lo = std::min<long long>(R.Lo, Tap[static_cast<size_t>(Axis)]);
    R.Hi = std::max<long long>(R.Hi, Tap[static_cast<size_t>(Axis)]);
  }
  return R;
}

void addViolation(std::vector<ScheduleViolation> &Out,
                  ScheduleViolationKind Kind, int Degree, int Tier, int Axis,
                  long long Offset, std::string Message) {
  ScheduleViolation V;
  V.Kind = Kind;
  V.Degree = Degree;
  V.Tier = Tier;
  V.Axis = Axis;
  V.Offset = Offset;
  V.Message = std::move(Message);
  Out.push_back(std::move(V));
}

} // namespace

const char *an5d::scheduleViolationKindName(ScheduleViolationKind Kind) {
  switch (Kind) {
  case ScheduleViolationKind::ConfigArity:
    return "config-arity";
  case ScheduleViolationKind::BlockTooSmall:
    return "block-too-small";
  case ScheduleViolationKind::HaloViolation:
    return "halo-violation";
  case ScheduleViolationKind::RingClobber:
    return "ring-clobber";
  case ScheduleViolationKind::WaveOrderViolation:
    return "wave-order-violation";
  case ScheduleViolationKind::RaceOverlap:
    return "race-overlap";
  case ScheduleViolationKind::CoverageGap:
    return "coverage-gap";
  case ScheduleViolationKind::TimeScheduleInvariant:
    return "time-schedule-invariant";
  }
  return "unknown";
}

std::string ScheduleViolation::toString() const {
  std::string S = "[";
  S += scheduleViolationKindName(Kind);
  S += format("] degree %d", Degree);
  if (Tier >= 0)
    S += format(" tier %d", Tier);
  if (Axis >= 0)
    S += format(" axis %d", Axis);
  S += ": ";
  S += Message;
  return S;
}

Diagnostic ScheduleViolation::toDiagnostic() const {
  Diagnostic D;
  D.Kind = DiagnosticKind::Error;
  D.Message = toString();
  return D;
}

std::string ScheduleVerifyResult::toString() const {
  if (Violations.empty())
    return format("schedule proven safe (%d degree%s checked)",
                  DegreesChecked, DegreesChecked == 1 ? "" : "s");
  std::string S;
  for (const ScheduleViolation &V : Violations) {
    if (!S.empty())
      S += "\n";
    S += V.toString();
  }
  return S;
}

void ScheduleVerifyResult::render(DiagnosticEngine &Diags) const {
  for (const ScheduleViolation &V : Violations)
    Diags.report(V.toDiagnostic());
}

ScheduleModel an5d::buildScheduleModel(const StencilProgram &Program,
                                       const BlockConfig &Config,
                                       int Degree) {
  // The verifier owns no schedule derivation of its own: the plan it
  // checks is the one schedule/ScheduleIR lowers for every backend.
  return lowerInvocation(Program, Config, Degree);
}

std::vector<ScheduleViolation>
an5d::verifyScheduleModel(const ScheduleModel &M) {
  std::vector<ScheduleViolation> Out;
  const int D = M.Degree;

  // Structural sanity: the blocked-axis vectors must agree with the
  // dimensionality before any per-axis reasoning makes sense.
  const size_t NumBlocked = M.BS.size();
  if (static_cast<int>(NumBlocked) != M.NumDims - 1 ||
      M.ComputeWidth.size() != NumBlocked ||
      M.BlockStride.size() != NumBlocked ||
      M.StoreWidth.size() != NumBlocked) {
    addViolation(Out, ScheduleViolationKind::ConfigArity, D, -1, -1, 0,
                 format("bS carries %zu entr%s but the stencil has %d "
                        "non-streaming dimension%s",
                        M.BS.size(), M.BS.size() == 1 ? "y" : "ies",
                        M.NumDims - 1, M.NumDims - 1 == 1 ? "" : "s"));
    return Out;
  }
  if (D < 1 || M.Tiers.size() != static_cast<size_t>(D)) {
    addViolation(Out, ScheduleViolationKind::TimeScheduleInvariant, D, -1, -1,
                 0,
                 format("invocation degree %d needs exactly %d computing "
                        "tier%s (model has %zu)",
                        D, std::max(D, 0), D == 1 ? "" : "s",
                        M.Tiers.size()));
    return Out;
  }

  // 1. Global grid halo: every tap of a valid computation (and every
  // boundary-pinning read) lands inside the padded allocation.
  for (int Axis = 0; Axis < M.NumDims; ++Axis) {
    const Span Tap = tapRange(M.Taps, Axis);
    if (Tap.Lo < -M.GridHalo || Tap.Hi > M.GridHalo) {
      const long long Bad = Tap.Hi > M.GridHalo ? Tap.Hi : Tap.Lo;
      addViolation(Out, ScheduleViolationKind::HaloViolation, D, -1, Axis,
                   Bad,
                   format("tap offset %+lld exceeds the allocated grid halo "
                          "of %lld cell%s per side",
                          Bad, M.GridHalo, M.GridHalo == 1 ? "" : "s"));
    }
  }

  // 2. Blocked axes: compute width, then the per-tier containment chain
  // (reads within the loaded span and within the producer's valid
  // region), then the final tier's store region.
  for (size_t A = 0; A < NumBlocked; ++A) {
    const int Axis = static_cast<int>(A) + 1;
    const long long CW = M.ComputeWidth[A];
    if (CW < 1) {
      addViolation(Out, ScheduleViolationKind::BlockTooSmall, D, -1, Axis, CW,
                   format("compute width %lld is not positive (bS=%lld needs "
                          "2*%d*%d halo cells): the halo consumes the block",
                          CW, M.BS[A], D, M.Radius));
      continue; // Per-tier intervals are meaningless on this axis.
    }
    const Span LoadSpan{-M.LoadSpanHalo, M.BS[A] - 1 - M.LoadSpanHalo};
    const Span Tap = tapRange(M.Taps, Axis);
    for (size_t I = 0; I < M.Tiers.size(); ++I) {
      const TierModel &T = M.Tiers[I];
      const Span Valid{-T.Reach, CW - 1 + T.Reach};
      const Span Reads{Valid.Lo + Tap.Lo, Valid.Hi + Tap.Hi};
      if (!Reads.within(LoadSpan)) {
        addViolation(Out, ScheduleViolationKind::HaloViolation, D, T.Tier,
                     Axis, Reads.Lo < LoadSpan.Lo ? Tap.Lo : Tap.Hi,
                     format("reads lanes [%lld, %lld] outside the loaded "
                            "block span [%lld, %lld]",
                            Reads.Lo, Reads.Hi, LoadSpan.Lo, LoadSpan.Hi));
        continue;
      }
      if (I > 0) {
        const TierModel &P = M.Tiers[I - 1];
        const Span Produced{-P.Reach, CW - 1 + P.Reach};
        if (!Reads.within(Produced))
          addViolation(Out, ScheduleViolationKind::HaloViolation, D, T.Tier,
                       Axis, Reads.Lo < Produced.Lo ? Tap.Lo : Tap.Hi,
                       format("reads lanes [%lld, %lld] outside tier %d's "
                              "valid region [%lld, %lld]",
                              Reads.Lo, Reads.Hi, P.Tier, Produced.Lo,
                              Produced.Hi));
      }
    }
    // Stores must come from cells the final tier actually evaluated.
    const TierModel &Last = M.Tiers.back();
    const Span Store{0, M.StoreWidth[A] - 1};
    const Span LastValid{-Last.Reach, CW - 1 + Last.Reach};
    if (M.StoreWidth[A] >= 1 && !Store.within(LastValid))
      addViolation(Out, ScheduleViolationKind::HaloViolation, D, Last.Tier,
                   Axis, Store.Hi - LastValid.Hi,
                   format("stores lanes [0, %lld] beyond its valid region "
                          "[%lld, %lld]",
                          Store.Hi, LastValid.Lo, LastValid.Hi));
  }

  // 3. Streaming axis: each tier's computed plane range, widened by the
  // stream taps, must stay within what its producer has (symbolically in
  // the chunk bounds, so only the reach offsets compare).
  const Span StreamTap = tapRange(M.Taps, 0);
  for (size_t I = 0; I < M.Tiers.size(); ++I) {
    const TierModel &T = M.Tiers[I];
    const long long ProducerReach =
        I == 0 ? M.LoadStreamReach : M.Tiers[I - 1].Reach;
    const int ProducerTier = I == 0 ? 0 : M.Tiers[I - 1].Tier;
    const Span Reads{-T.Reach + StreamTap.Lo, T.Reach + StreamTap.Hi};
    if (!Reads.within(Span{-ProducerReach, ProducerReach}))
      addViolation(Out, ScheduleViolationKind::HaloViolation, D, T.Tier, 0,
                   Reads.Hi > ProducerReach ? StreamTap.Hi : StreamTap.Lo,
                   format("needs producer sub-planes at chunk offsets "
                          "[%lld, %lld] but tier %d only covers "
                          "[%lld, %lld]",
                          Reads.Lo, Reads.Hi, ProducerTier, -ProducerReach,
                          ProducerReach));
  }

  // 4. Ring capacity and wavefront order. Consumer tier T at streaming
  // step s reads producer plane p + o (p = s - StreamLag_T, o a stream
  // tap); the producer writes plane q at step q + StreamLag_P. The plane
  // must already be written (wave order) and must not share a ring slot
  // with a later plane the producer has also written (clobber).
  for (size_t I = 0; I < M.Tiers.size(); ++I) {
    const TierModel &T = M.Tiers[I];
    const long long ProducerLag = I == 0 ? 0 : M.Tiers[I - 1].StreamLag;
    const int ProducerOrder =
        I == 0 ? M.LoadOrderPosition : M.Tiers[I - 1].OrderPosition;
    const int ProducerTier = I == 0 ? 0 : M.Tiers[I - 1].Tier;
    const long long LagDiff = T.StreamLag - ProducerLag;
    const bool ProducerFirst = ProducerOrder < T.OrderPosition;

    // Wave order, worst case at the most positive stream tap: the read
    // plane is written at step p + o + ProducerLag, which must precede
    // the read at step p + StreamLag_T.
    if (StreamTap.Hi > LagDiff ||
        (StreamTap.Hi == LagDiff && !ProducerFirst))
      addViolation(Out, ScheduleViolationKind::WaveOrderViolation, D, T.Tier,
                   0, StreamTap.Hi,
                   format("reads sub-plane p%+lld that producer tier %d has "
                          "not written at read time (producer lags %lld "
                          "plane%s behind%s)",
                          StreamTap.Hi, ProducerTier, LagDiff,
                          LagDiff == 1 ? "" : "s",
                          StreamTap.Hi == LagDiff && !ProducerFirst
                              ? ", and runs after the consumer within a step"
                              : ""));

    // Ring clobber, worst case at the most negative stream tap: the slot
    // of plane p + o is reused by plane p + o + RingDepth, which the
    // producer writes at step p + o + RingDepth + ProducerLag. That step
    // must still be in the future at read time.
    const long long Slack = ProducerFirst ? 0 : 1;
    if (M.RingDepth + StreamTap.Lo + Slack <= LagDiff)
      addViolation(Out, ScheduleViolationKind::RingClobber, D, T.Tier, 0,
                   StreamTap.Lo,
                   format("ring depth %lld is too shallow: producer tier %d "
                          "overwrites the slot of sub-plane p%+lld before "
                          "tier %d reads it (needs depth > %lld)",
                          M.RingDepth, ProducerTier, StreamTap.Lo, T.Tier,
                          LagDiff - StreamTap.Lo - Slack));
  }

  // 5. Race freedom and coverage of the concurrent work-item grid: the
  // chunk x block OpenMP worksharing set partitions the interior iff
  // adjacent strides neither overlap (a static data race on `out`) nor
  // leave gaps.
  for (size_t A = 0; A < NumBlocked; ++A) {
    const int Axis = static_cast<int>(A) + 1;
    const long long Stride = M.BlockStride[A];
    const long long Store = M.StoreWidth[A];
    if (Store < 1)
      continue; // Degenerate store already reported as BlockTooSmall.
    if (Stride < Store)
      addViolation(Out, ScheduleViolationKind::RaceOverlap, D, -1, Axis,
                   Store - Stride,
                   format("adjacent blocks write %lld overlapping cell%s "
                          "(origin stride %lld < stored width %lld)",
                          Store - Stride, Store - Stride == 1 ? "" : "s",
                          Stride, Store));
    else if (Stride > Store)
      addViolation(Out, ScheduleViolationKind::CoverageGap, D, -1, Axis,
                   Stride - Store,
                   format("adjacent blocks leave %lld cell%s unwritten "
                          "(origin stride %lld > stored width %lld)",
                          Stride - Store, Stride - Store == 1 ? "" : "s",
                          Stride, Store));
  }
  if (M.ChunkLength > 0) {
    if (M.ChunkStride < M.ChunkLength)
      addViolation(Out, ScheduleViolationKind::RaceOverlap, D, -1, 0,
                   M.ChunkLength - M.ChunkStride,
                   format("adjacent stream chunks write %lld overlapping "
                          "sub-plane%s (chunk stride %lld < length %lld)",
                          M.ChunkLength - M.ChunkStride,
                          M.ChunkLength - M.ChunkStride == 1 ? "" : "s",
                          M.ChunkStride, M.ChunkLength));
    else if (M.ChunkStride > M.ChunkLength)
      addViolation(Out, ScheduleViolationKind::CoverageGap, D, -1, 0,
                   M.ChunkStride - M.ChunkLength,
                   format("adjacent stream chunks leave %lld sub-plane%s "
                          "unwritten (chunk stride %lld > length %lld)",
                          M.ChunkStride - M.ChunkLength,
                          M.ChunkStride - M.ChunkLength == 1 ? "" : "s",
                          M.ChunkStride, M.ChunkLength));
  }

  return Out;
}

namespace {

ScheduleVerifyResult verifyScheduleIRImpl(const ScheduleIR &IR,
                                          const ProblemSize *Problem) {
  ScheduleVerifyResult Result;
  const BlockConfig &Config = IR.Config;

  if (Config.BT < 1) {
    addViolation(Result.Violations,
                 ScheduleViolationKind::TimeScheduleInvariant, Config.BT, -1,
                 -1, 0,
                 format("temporal blocking degree bT=%d must be >= 1",
                        Config.BT));
    return Result;
  }
  if (static_cast<int>(Config.BS.size()) != IR.NumDims - 1) {
    addViolation(Result.Violations, ScheduleViolationKind::ConfigArity,
                 Config.BT, -1, -1, 0,
                 format("bS carries %zu entr%s but %s has %d non-streaming "
                        "dimension%s",
                        Config.BS.size(), Config.BS.size() == 1 ? "y" : "ies",
                        IR.StencilName.c_str(), IR.NumDims - 1,
                        IR.NumDims - 1 == 1 ? "" : "s"));
    return Result;
  }

  // The host schedule (Section 4.3.1) can issue any degree in [1, bT], so
  // a config is safe only when every degree's invocation is. The IR
  // carries exactly those invocations — no re-lowering here.
  for (const InvocationSchedule &Invocation : IR.Invocations) {
    std::vector<ScheduleViolation> V = verifyScheduleModel(Invocation);
    Result.Violations.insert(Result.Violations.end(),
                             std::make_move_iterator(V.begin()),
                             std::make_move_iterator(V.end()));
    ++Result.DegreesChecked;
  }

  if (Problem && Problem->TimeSteps > 0) {
    const std::vector<int> Degrees =
        scheduleTimeBlocks(Problem->TimeSteps, Config.BT);
    const std::string Broken =
        describeTimeBlockScheduleViolation(Degrees, Problem->TimeSteps,
                                           Config.BT);
    if (!Broken.empty())
      addViolation(Result.Violations,
                   ScheduleViolationKind::TimeScheduleInvariant, Config.BT,
                   -1, -1, 0, Broken);
  }

  return Result;
}

} // namespace

ScheduleVerifyResult an5d::verifyScheduleIR(const ScheduleIR &IR,
                                            const ProblemSize *Problem) {
  ScheduleVerifyResult Result = verifyScheduleIRImpl(IR, Problem);
  obs::count("verifier.checks");
  if (!Result.proven())
    obs::count("verifier.rejections");
  return Result;
}

ScheduleVerifyResult an5d::verifySchedule(const StencilProgram &Program,
                                          const BlockConfig &Config,
                                          const ProblemSize *Problem) {
  return verifyScheduleIR(lowerSchedule(Program, Config), Problem);
}
