//===- NativeCompiler.cpp - Host C++ compiler driver -------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/NativeCompiler.h"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace an5d {

namespace {

/// Runs \p Command with stderr folded into stdout; returns (exit code,
/// captured output). Exit code -1 means the shell could not be spawned
/// or the command died abnormally (e.g. a signal-killed cc1plus must not
/// masquerade as exit 0, which WEXITSTATUS alone would report).
std::pair<int, std::string> runCommand(const std::string &Command) {
  std::string Full = Command + " 2>&1";
  FILE *Pipe = ::popen(Full.c_str(), "r");
  if (!Pipe)
    return {-1, "popen failed"};
  std::string Output;
  std::array<char, 4096> Buffer;
  while (std::fgets(Buffer.data(), Buffer.size(), Pipe))
    Output += Buffer.data();
  int Status = ::pclose(Pipe);
  if (Status == -1)
    return {-1, Output};
#if !defined(_WIN32)
  if (!WIFEXITED(Status)) {
    if (WIFSIGNALED(Status))
      Output += "\ncommand terminated by signal " +
                std::to_string(WTERMSIG(Status));
    else
      Output += "\ncommand terminated abnormally";
    return {-1, Output};
  }
  return {WEXITSTATUS(Status), Output};
#else
  return {Status, Output};
#endif
}

/// Single-quotes \p Path for the shell (cache and temp dirs may contain
/// spaces).
std::string shellQuote(const std::string &Path) {
  std::string Out = "'";
  for (char C : Path) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += "'";
  return Out;
}

/// One-time probe results for a compiler command. Probing forks the
/// compiler twice (--version, and an actual -fopenmp -shared build, since
/// e.g. clang without libomp only fails at link time), so results are
/// memoized per process: NativeExecutor constructs a NativeCompiler per
/// kernel and must not pay the probe on every cache hit.
struct CompilerProbe {
  std::string Version;
  bool OpenMp = false;
};

const CompilerProbe &probeCompiler(const std::string &Command) {
  static std::mutex RegistryMutex;
  static std::map<std::string, CompilerProbe> Registry;
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  auto It = Registry.find(Command);
  if (It != Registry.end())
    return It->second;

  CompilerProbe Probe;
  auto [Code, Output] = runCommand(shellQuote(Command) + " --version");
  if (Code == 0) {
    std::size_t Eol = Output.find('\n');
    Probe.Version = Eol == std::string::npos ? Output : Output.substr(0, Eol);
  }

  if (!Probe.Version.empty()) {
    namespace fs = std::filesystem;
    std::error_code Ec;
    fs::path Tmp = fs::temp_directory_path(Ec);
    if (Ec)
      Tmp = "/tmp";
#if defined(_WIN32)
    std::string Tag = "an5d_omp_probe";
#else
    std::string Tag = "an5d_omp_probe_" + std::to_string(::getpid());
#endif
    fs::path Source = Tmp / (Tag + ".cpp");
    fs::path Library = Tmp / (Tag + ".so");
    {
      std::ofstream Out(Source);
      Out << "extern \"C\" int an5d_omp_probe(void) {\n"
             "  int n = 0;\n"
             "#pragma omp parallel\n"
             "  { n = 1; }\n"
             "  return n;\n"
             "}\n";
    }
    auto [ProbeCode, ProbeOutput] = runCommand(
        shellQuote(Command) + " -shared -fPIC -fopenmp -o " +
        shellQuote(Library.string()) + " " + shellQuote(Source.string()));
    (void)ProbeOutput;
    Probe.OpenMp = ProbeCode == 0;
    fs::remove(Source, Ec);
    fs::remove(Library, Ec);
  }

  return Registry.emplace(Command, std::move(Probe)).first->second;
}

} // namespace

std::string NativeCompiler::detect() {
  if (const char *Env = std::getenv("AN5D_CXX"); Env && *Env)
    return Env;
#ifdef AN5D_HOST_CXX
  return AN5D_HOST_CXX;
#else
  return "c++";
#endif
}

NativeCompiler::NativeCompiler(std::string Command)
    : Command_(Command.empty() ? detect() : std::move(Command)) {
  const CompilerProbe &Probe = probeCompiler(Command_);
  Version = Probe.Version;
  OpenMp = Probe.OpenMp;
}

std::vector<std::string> NativeCompiler::sanitizerFlags() {
  std::string Raw;
  if (const char *Env = std::getenv("AN5D_KERNEL_SANITIZE"))
    Raw = Env;
#ifdef AN5D_SANITIZE_FLAGS
  else
    Raw = AN5D_SANITIZE_FLAGS;
#endif
  if (Raw.empty() || Raw == "none" || Raw == "0")
    return {};
  std::vector<std::string> Flags;
  std::string Current;
  for (char C : Raw) {
    if (C == ' ' || C == ';') {
      if (!Current.empty())
        Flags.push_back(std::move(Current));
      Current.clear();
    } else {
      Current += C;
    }
  }
  if (!Current.empty())
    Flags.push_back(std::move(Current));
  return Flags;
}

std::vector<std::string> NativeCompiler::flags() const {
  // -ffp-contract=off keeps the bit-for-bit contract with the in-process
  // executors (no fused mul/add); see the file comment. -fopenmp appears
  // only when the probe built an OpenMP shared library, and through
  // fingerprint() it is part of the cache key — so a toolchain gaining or
  // losing OpenMP support (or a sanitizer appearing) can never be served
  // a stale artifact.
  std::vector<std::string> Flags = {"-std=c++17", "-O2", "-shared",
                                    "-fPIC", "-ffp-contract=off"};
  const std::vector<std::string> Sanitize = sanitizerFlags();
  bool ThreadSanitizer = false;
  for (const std::string &Flag : Sanitize)
    if (Flag.find("thread") != std::string::npos)
      ThreadSanitizer = true;
  // Under -fsanitize=thread kernels build without OpenMP: the system
  // libgomp is not TSan-instrumented, so every worksharing barrier would
  // be reported as a false-positive race. The kernels' serial path is
  // schedule-identical (the pair loop just runs on one thread), so TSan
  // still exercises the full tier pipeline. See README "Static
  // verification & sanitizers".
  if (OpenMp && !ThreadSanitizer)
    Flags.push_back("-fopenmp");
  Flags.insert(Flags.end(), Sanitize.begin(), Sanitize.end());
  return Flags;
}

std::string
NativeCompiler::fingerprint(const std::vector<std::string> &ExtraFlags) const {
  std::string Out = Command_ + "\n" + Version + "\n";
  for (const std::string &Flag : flags())
    Out += Flag + " ";
  for (const std::string &Flag : ExtraFlags)
    Out += Flag + " ";
  return Out;
}

CompileOutcome NativeCompiler::compileSharedLibrary(
    const std::string &SourcePath, const std::string &OutputPath,
    const std::vector<std::string> &ExtraFlags) const {
  CompileOutcome Outcome;
  auto Start = std::chrono::steady_clock::now();

  std::string Cmd = shellQuote(Command_);
  for (const std::string &Flag : flags())
    Cmd += " " + Flag;
  for (const std::string &Flag : ExtraFlags)
    Cmd += " " + Flag;
  Cmd += " -o " + shellQuote(OutputPath) + " " + shellQuote(SourcePath);

  Outcome.Command = Cmd;
  auto [Code, Output] = runCommand(Cmd);
  Outcome.Log = Output;
  Outcome.Success = Code == 0;
  Outcome.Seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
  return Outcome;
}

} // namespace an5d
