//===- NativeMeasurement.h - Real measured sweep on compiled kernels -*-C++-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Native measurement backend of the tuning flow: instead of the
/// calibrated MeasuredSimulator, each sweep candidate is compiled into a
/// real OpenMP kernel (runtime/NativeExecutor.h) and timed on the host
/// CPU. Compilation fans out across a thread pool — kernel builds are
/// independent compiler processes — while the timed runs execute strictly
/// serially, one kernel at a time with the machine to itself, so
/// measurements are not polluted by sibling candidates.
///
/// The numbers are wall-clock GFLOP/s of this machine's CPU, not of the
/// modeled GPU: they rank configurations by real behavior but live on a
/// different scale than the simulated backend (see README "Native
/// runtime" for the caveats).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_NATIVEMEASUREMENT_H
#define AN5D_RUNTIME_NATIVEMEASUREMENT_H

#include "runtime/NativeExecutor.h"
#include "sim/MeasuredSimulator.h"
#include "tuning/ParallelSweep.h"

#include <vector>

namespace an5d {

/// Knobs of the native measured sweep.
struct NativeMeasureOptions {
  /// Compile/cache/load pipeline settings (cache dir, compiler, kernel
  /// threads). Threads == 0 lets each kernel use the full OpenMP default.
  NativeRuntimeOptions Runtime;

  /// Worker threads for the parallel compile stage; 0 resolves like the
  /// simulated sweep (resolveSweepThreads). Timing is always serial.
  int CompileThreads = 0;

  /// Timed repetitions per candidate; the fastest is kept (compensates
  /// for scheduler noise on a busy host).
  int Repeats = 2;
};

/// A problem size small enough for wall-clock candidate timing on a CPU
/// (the paper-default sizes are sized for a V100 and would take minutes
/// per candidate here).
ProblemSize nativeMeasurementProblem(int NumDims);

/// Runs every candidate through a compiled kernel: compilation in
/// parallel across \p Options.CompileThreads workers (deduplicated by the
/// kernel cache — candidates differing only in RegisterCap share one
/// artifact), timing serially in candidate order. Results are indexed
/// exactly like \p Candidates; infeasible or failed-to-build candidates
/// come back with Feasible == false. \p Cache may be null (a private
/// cache over Options.Runtime.CacheDir is used).
std::vector<MeasuredResult>
nativeMeasuredSweep(const StencilProgram &Program,
                    const std::vector<SweepCandidate> &Candidates,
                    const std::vector<ProblemSize> &Problems,
                    const NativeMeasureOptions &Options,
                    KernelCache *Cache = nullptr);

} // namespace an5d

#endif // AN5D_RUNTIME_NATIVEMEASUREMENT_H
