//===- NativeMeasurement.h - Real measured sweep on compiled kernels -*-C++-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Native measurement backend of the tuning flow: instead of the
/// calibrated MeasuredSimulator, each sweep candidate is compiled into a
/// real OpenMP kernel (runtime/NativeExecutor.h) and timed on the host
/// CPU. Compilation fans out across a thread pool — kernel builds are
/// independent compiler processes — while the timed runs execute strictly
/// serially, one kernel at a time with the machine to itself, so
/// measurements are not polluted by sibling candidates.
///
/// The numbers are wall-clock GFLOP/s of this machine's CPU, not of the
/// modeled GPU: they rank configurations by real behavior but live on a
/// different scale than the simulated backend (see README "Native
/// runtime" for the caveats).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_NATIVEMEASUREMENT_H
#define AN5D_RUNTIME_NATIVEMEASUREMENT_H

#include "runtime/NativeExecutor.h"
#include "sim/MeasuredSimulator.h"
#include "tuning/ParallelSweep.h"

#include <vector>

namespace an5d {

/// Knobs of the native measured sweep.
struct NativeMeasureOptions {
  /// Compile/cache/load pipeline settings (cache dir, compiler, kernel
  /// threads). Runtime.Threads is the timed kernels' OpenMP pool size
  /// (an5dc --measure-threads); 0 pins each kernel to the machine's
  /// hardware concurrency instead of floating with the ambient
  /// OMP_NUM_THREADS.
  NativeRuntimeOptions Runtime;

  /// Worker threads for the parallel compile stage; 0 resolves like the
  /// simulated sweep (resolveSweepThreads). Timing is always serial.
  int CompileThreads = 0;

  /// Timed repetitions per candidate; the fastest is kept (compensates
  /// for scheduler noise on a busy host). Each compiled kernel
  /// additionally runs one untimed warmup before its first timed repeats;
  /// candidates sharing the kernel (the same configuration timed against
  /// several problem sizes) reuse that warmup (an5dc --measure-repeats
  /// sets the timed count).
  int Repeats = 2;

  /// Statically verify each candidate's schedule
  /// (analysis/ScheduleVerifier.h) before spending compile time on it; a
  /// rejected candidate never reaches the compiler and carries the
  /// verifier's verdict in MeasuredResult::FailureReason. Infeasible
  /// configurations still report through the build path as before — the
  /// verifier gates only configurations the feasibility model accepts,
  /// so a rejection flags model/verifier disagreement.
  bool VerifySchedule = true;
};

/// A problem size small enough for wall-clock candidate timing on a CPU
/// (the paper-default sizes are sized for a V100 and would take minutes
/// per candidate here).
ProblemSize nativeMeasurementProblem(int NumDims);

/// One kernel timing: the run status is separate from the wall-clock
/// value, so a rejected run (Rc != 0) cannot be confused with a
/// degenerate zero-length measurement.
struct KernelTiming {
  int Rc = 0;          ///< an5d_run status; non-zero means the kernel
                       ///< rejected the run and Seconds is meaningless.
  double Seconds = 0;  ///< Best wall clock over the timed repeats, clamped
                       ///< to >= MinMeasurableSeconds.
  int ThreadsUsed = 0; ///< Pool size the timed runs executed with (1 for
                       ///< kernels built without OpenMP); the ambient
                       ///< pool size is restored before returning.
};

/// Floor for a timed run: anything faster than this is below what a
/// steady_clock round-trip resolves reliably, so GFLOP/s derived from it
/// would be noise (or a division by zero on a coarse clock). 100ns.
constexpr double MinMeasurableSeconds = 1e-7;

/// The measurement protocol shared by the sweep and `an5dc --run-native`:
/// pins the kernel's OpenMP pool (\p Threads; 0 = hardware concurrency)
/// and restores the previous pool size on exit, fills pristine double
/// buffers, runs one untimed warmup, then keeps the fastest of \p Repeats
/// timed `an5d_run` invocations. T must match the kernel's element type.
/// \p SkipWarmup drops the untimed run — for a kernel that already ran in
/// this process (the sweep reuses one warmup across the problem sizes a
/// candidate is timed against; the buffers are freshly touched either
/// way).
template <typename T>
KernelTiming timeNativeKernel(const NativeExecutor &Executor,
                              const ProblemSize &Problem, int Radius,
                              int Repeats, int Threads,
                              bool SkipWarmup = false);

extern template KernelTiming
timeNativeKernel<float>(const NativeExecutor &, const ProblemSize &, int,
                        int, int, bool);
extern template KernelTiming
timeNativeKernel<double>(const NativeExecutor &, const ProblemSize &, int,
                         int, int, bool);

/// Runs every candidate through a compiled kernel: each candidate is
/// lowered to its ScheduleIR exactly once (or reuses the IR the tuner
/// handed down in SweepCandidate::Schedule), compilation fans out across
/// \p Options.CompileThreads workers (candidates sharing a configuration
/// — the same config timed against several problem sizes, or register-cap
/// variants — share one executor and its warmup), timing runs serially in
/// candidate order. Results are indexed exactly like \p Candidates;
/// infeasible or failed-to-build candidates come back with
/// Feasible == false, and candidates whose kernel failed to build or
/// rejected the run carry the reason in MeasuredResult::FailureReason.
/// \p Cache may be null (a private cache over Options.Runtime.CacheDir is
/// used).
std::vector<MeasuredResult>
nativeMeasuredSweep(const StencilProgram &Program,
                    const std::vector<SweepCandidate> &Candidates,
                    const std::vector<ProblemSize> &Problems,
                    const NativeMeasureOptions &Options,
                    KernelCache *Cache = nullptr);

} // namespace an5d

#endif // AN5D_RUNTIME_NATIVEMEASUREMENT_H
