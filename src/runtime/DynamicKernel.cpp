//===- DynamicKernel.cpp - RAII dlopen/dlsym kernel loader -------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/DynamicKernel.h"

#if defined(_WIN32)
// The native runtime is POSIX-only for now; loading is stubbed out so the
// rest of the library still builds (NativeExecutor reports the error).
#else
#include <dlfcn.h>
#endif

namespace an5d {

std::unique_ptr<DynamicKernel> DynamicKernel::load(
    const std::string &LibraryPath, std::string *Error) {
#if defined(_WIN32)
  if (Error)
    *Error = "dynamic kernel loading is not supported on this platform";
  (void)LibraryPath;
  return nullptr;
#else
  // RTLD_NODELETE keeps the kernel's code resident after dlclose: GOMP's
  // pooled worker threads can reference a kernel's outlined parallel
  // regions after the team disbands, so unmapping an OpenMP kernel at
  // handle-close time crashes the process. Keeping the mapping (it is
  // shared on re-open of the same artifact) trades a few pages for safety.
  void *Handle =
      ::dlopen(LibraryPath.c_str(), RTLD_NOW | RTLD_LOCAL | RTLD_NODELETE);
  if (!Handle) {
    if (Error) {
      const char *Reason = ::dlerror();
      *Error = "dlopen failed for " + LibraryPath +
               (Reason ? std::string(": ") + Reason : std::string());
    }
    return nullptr;
  }
  return std::unique_ptr<DynamicKernel>(
      new DynamicKernel(LibraryPath, Handle));
#endif
}

DynamicKernel::~DynamicKernel() {
#if !defined(_WIN32)
  if (Handle)
    ::dlclose(Handle);
#endif
}

void *DynamicKernel::symbol(const char *Name) const {
#if defined(_WIN32)
  (void)Name;
  return nullptr;
#else
  return ::dlsym(Handle, Name);
#endif
}

} // namespace an5d
