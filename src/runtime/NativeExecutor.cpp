//===- NativeExecutor.cpp - Compiled-kernel stencil execution ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/NativeExecutor.h"

#include "analysis/KernelLint.h"
#include "codegen/CppCodegen.h"
#include "runtime/NativeCompiler.h"

#include <cstdlib>

namespace an5d {

namespace {

/// True when AN5D_LINT_KERNELS asks for process-wide kernel linting.
bool lintRequestedByEnvironment() {
  const char *Env = std::getenv("AN5D_LINT_KERNELS");
  return Env && *Env && std::string(Env) != "0";
}

} // namespace

NativeExecutor::NativeExecutor(const StencilProgram &Program,
                               const BlockConfig &Config,
                               const NativeRuntimeOptions &Options,
                               KernelCache *SharedCache)
    : NativeExecutor(Program, lowerSchedule(Program, Config), Options,
                     SharedCache) {}

NativeExecutor::NativeExecutor(const StencilProgram &Program,
                               const ScheduleIR &Schedule,
                               const NativeRuntimeOptions &Options,
                               KernelCache *SharedCache)
    : Threads(Options.Threads) {
  const BlockConfig &Config = Schedule.Config;
  if (Program.numDims() < 1 || Program.numDims() > 3) {
    Error = "the native runtime supports 1D, 2D and 3D stencils (got " +
            std::to_string(Program.numDims()) + "D)";
    return;
  }
  if (!Config.isFeasible(Program.radius())) {
    Error = "configuration " + Config.toString() +
            " is infeasible for radius " + std::to_string(Program.radius());
    return;
  }

  NativeCompiler Compiler(Options.Compiler);
  if (!Compiler.available()) {
    Error = "host compiler '" + Compiler.command() + "' is not available";
    return;
  }

  KernelCache *Cache = SharedCache;
  if (!Cache) {
    OwnedCache = std::make_unique<KernelCache>(Options.CacheDir);
    Cache = OwnedCache.get();
  }

  std::string Source = generateCppKernelLibrary(Program, Schedule);
  if (Options.LintKernels || lintRequestedByEnvironment()) {
    LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                            Program.elemType());
    if (!Report.clean()) {
      Error = "kernel lint failed for " + Config.toString() + ":\n" +
              Report.toString();
      return;
    }
  }
  Artifact = Cache->getOrBuild(Source, Compiler, Options.ExtraCompileFlags,
                               Options.ForceRecompile);
  if (!Artifact.Ok) {
    Error = "kernel build failed:\n" + Artifact.Log;
    return;
  }

  std::string LoadError;
  Library = DynamicKernel::load(Artifact.LibraryPath, &LoadError);
  if (!Library) {
    Error = LoadError;
    return;
  }

  auto *AbiVersion = Library->fn<IntFn>("an5d_abi_version");
  auto *Dims = Library->fn<IntFn>("an5d_num_dims");
  auto *Rad = Library->fn<IntFn>("an5d_radius");
  auto *Elem = Library->fn<IntFn>("an5d_elem_size");
  Run = Library->fn<RunFn>("an5d_run");
  SetThreads = Library->fn<SetThreadsFn>("an5d_set_threads");
  MaxThreads = Library->fn<IntFn>("an5d_max_threads");
  if (!AbiVersion || !Dims || !Rad || !Elem || !Run || !SetThreads ||
      !MaxThreads) {
    Error = "kernel " + Artifact.LibraryPath +
            " does not export the an5d_* ABI";
    Library.reset();
    return;
  }
  if (AbiVersion() != CppKernelAbiVersion) {
    Error = "kernel ABI version " + std::to_string(AbiVersion()) +
            " does not match the runtime's " +
            std::to_string(CppKernelAbiVersion);
    Library.reset();
    return;
  }

  NumDims = Dims();
  Radius = Rad();
  ElemSize = Elem();
  if (NumDims != Program.numDims() || Radius != Program.radius() ||
      ElemSize != Program.wordSize()) {
    Error = "kernel metadata does not match the stencil program "
            "(cache collision or stale artifact " +
            Artifact.LibraryPath + ")";
    Library.reset();
    return;
  }
}

int NativeExecutor::kernelMaxThreads() const {
  return MaxThreads ? MaxThreads() : 0;
}

void NativeExecutor::pinKernelThreads(int N) const {
  if (SetThreads && N > 0)
    SetThreads(N);
}

int NativeExecutor::runRaw(void *Buf0, void *Buf1, const long long *Extents,
                           int NumExtents, long long TimeSteps) const {
  if (!Run || NumExtents != NumDims)
    return -1;
  if (Threads > 0)
    SetThreads(Threads);
  return Run(Buf0, Buf1, Extents, TimeSteps);
}

} // namespace an5d
