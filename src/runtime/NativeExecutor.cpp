//===- NativeExecutor.cpp - Compiled-kernel stencil execution ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/NativeExecutor.h"

#include "analysis/KernelLint.h"
#include "codegen/CppCodegen.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/NativeCompiler.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace an5d {

namespace {

/// True when AN5D_LINT_KERNELS asks for process-wide kernel linting.
bool lintRequestedByEnvironment() {
  const char *Env = std::getenv("AN5D_LINT_KERNELS");
  return Env && *Env && std::string(Env) != "0";
}

} // namespace

NativeExecutor::NativeExecutor(const StencilProgram &Program,
                               const BlockConfig &Config,
                               const NativeRuntimeOptions &Options,
                               KernelCache *SharedCache)
    : NativeExecutor(Program, lowerSchedule(Program, Config), Options,
                     SharedCache) {}

NativeExecutor::NativeExecutor(const StencilProgram &Program,
                               const ScheduleIR &Schedule,
                               const NativeRuntimeOptions &Options,
                               KernelCache *SharedCache)
    : Threads(Options.Threads) {
  const BlockConfig &Config = Schedule.Config;
  if (Program.numDims() < 1 || Program.numDims() > 3) {
    Error = "the native runtime supports 1D, 2D and 3D stencils (got " +
            std::to_string(Program.numDims()) + "D)";
    return;
  }
  if (!Config.isFeasible(Program.radius())) {
    Error = "configuration " + Config.toString() +
            " is infeasible for radius " + std::to_string(Program.radius());
    return;
  }

  NativeCompiler Compiler(Options.Compiler);
  if (!Compiler.available()) {
    Error = "host compiler '" + Compiler.command() + "' is not available";
    return;
  }

  KernelCache *Cache = SharedCache;
  if (!Cache) {
    OwnedCache = std::make_unique<KernelCache>(Options.CacheDir);
    Cache = OwnedCache.get();
  }

  std::string Source = generateCppKernelLibrary(Program, Schedule);
  if (Options.LintKernels || lintRequestedByEnvironment()) {
    LintReport Report = lintTranslationUnit(Source, LintTarget::KernelLibrary,
                                            Program.elemType());
    if (!Report.clean()) {
      Error = "kernel lint failed for " + Config.toString() + ":\n" +
              Report.toString();
      return;
    }
  }
  Artifact = Cache->getOrBuild(Source, Compiler, Options.ExtraCompileFlags,
                               Options.ForceRecompile);
  if (!Artifact.Ok) {
    Error = "kernel build failed:\n" + Artifact.Log;
    return;
  }

  std::string LoadError;
  Library = DynamicKernel::load(Artifact.LibraryPath, &LoadError);
  if (!Library) {
    Error = LoadError;
    return;
  }

  auto *AbiVersion = Library->fn<IntFn>("an5d_abi_version");
  auto *Dims = Library->fn<IntFn>("an5d_num_dims");
  auto *Rad = Library->fn<IntFn>("an5d_radius");
  auto *Elem = Library->fn<IntFn>("an5d_elem_size");
  Run = Library->fn<RunFn>("an5d_run");
  SetThreads = Library->fn<SetThreadsFn>("an5d_set_threads");
  MaxThreads = Library->fn<IntFn>("an5d_max_threads");
  if (!AbiVersion || !Dims || !Rad || !Elem || !Run || !SetThreads ||
      !MaxThreads) {
    Error = "kernel " + Artifact.LibraryPath +
            " does not export the an5d_* ABI";
    Library.reset();
    return;
  }
  if (AbiVersion() != CppKernelAbiVersion) {
    Error = "kernel ABI version " + std::to_string(AbiVersion()) +
            " does not match the runtime's " +
            std::to_string(CppKernelAbiVersion);
    Library.reset();
    return;
  }

  NumDims = Dims();
  Radius = Rad();
  ElemSize = Elem();
  // Optional metadata (present since ABI v1, but nothing below depends on
  // it): the baked-in temporal tile, which the traced run path uses to
  // report per-temporal-block progress.
  if (auto *BlockTimeFn = Library->fn<IntFn>("an5d_block_time"))
    BlockTime = BlockTimeFn();
  if (NumDims != Program.numDims() || Radius != Program.radius() ||
      ElemSize != Program.wordSize()) {
    Error = "kernel metadata does not match the stencil program "
            "(cache collision or stale artifact " +
            Artifact.LibraryPath + ")";
    Library.reset();
    return;
  }
}

int NativeExecutor::kernelMaxThreads() const {
  return MaxThreads ? MaxThreads() : 0;
}

void NativeExecutor::pinKernelThreads(int N) const {
  if (SetThreads && N > 0)
    SetThreads(N);
}

int NativeExecutor::runRaw(void *Buf0, void *Buf1, const long long *Extents,
                           int NumExtents, long long TimeSteps) const {
  if (!Run || NumExtents != NumDims)
    return -1;
  if (Threads > 0)
    SetThreads(Threads);
  // The profiled path is behind the one relaxed atomic load every span
  // performs anyway: with tracing off, a raw run costs exactly what it
  // did before the observability layer existed.
  if (obs::TraceRecorder::enabled())
    return runTraced(Buf0, Buf1, Extents, TimeSteps);
  return Run(Buf0, Buf1, Extents, TimeSteps);
}

int NativeExecutor::runTraced(void *Buf0, void *Buf1,
                              const long long *Extents,
                              long long TimeSteps) const {
  obs::TraceSpan Span("native.run");
  if (Span.active()) {
    Span.attr("steps", std::to_string(TimeSteps));
    Span.attr("kernel", Artifact.Key);
  }
  obs::count("native.runs");
  if (BlockTime <= 0 || TimeSteps <= BlockTime)
    return Run(Buf0, Buf1, Extents, TimeSteps);

  // Per-temporal-block progress: invoke the kernel one bT-sized tile at a
  // time. Each invocation follows the ABI's double-buffer contract — S
  // steps from the buffer holding the current state land the result in
  // argument index S % 2 — so after all chunks the result sits in
  // Buf{TimeSteps % 2}, exactly where one whole-sweep invocation puts it,
  // and every chunk is the same bit-exact kernel, so decomposition does
  // not change the numbers.
  void *Bufs[2] = {Buf0, Buf1};
  int Current = 0;
  for (long long Done = 0; Done < TimeSteps;) {
    long long Steps = std::min<long long>(BlockTime, TimeSteps - Done);
    obs::TraceSpan BlockSpan("native.block");
    if (BlockSpan.active()) {
      BlockSpan.attr("t0", std::to_string(Done));
      BlockSpan.attr("steps", std::to_string(Steps));
    }
    int Rc = Run(Bufs[Current], Bufs[1 - Current], Extents, Steps);
    if (Rc != 0)
      return Rc;
    Current ^= static_cast<int>(Steps & 1);
    Done += Steps;
  }
  return 0;
}

} // namespace an5d
