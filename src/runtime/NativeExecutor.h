//===- NativeExecutor.h - Compiled-kernel stencil execution -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a stencil through a JIT-compiled native kernel instead of the
/// in-process emulators: generateCppKernelLibrary emits the blocked N.5D
/// schedule as an OpenMP translation unit, NativeCompiler builds it into a
/// shared object (through the persistent KernelCache), DynamicKernel loads
/// it, and run() presents the same interface as referenceRun /
/// BlockedExecutor::run — Buffers[0] holds the input at t=0, the result of
/// step N lands in Buffers[N % 2], and the output matches the in-process
/// executors bit for bit (the kernels are compiled with -ffp-contract=off
/// and exact-float literals; the equivalence suite in
/// tests/NativeRuntimeTest.cpp pins this on every built-in benchmark).
///
/// ## Kernel ABI (CppKernelAbiVersion = 1)
///
///   int an5d_abi_version(void);
///   const char *an5d_stencil_name(void);  // e.g. "j2d5pt"
///   const char *an5d_config(void);        // BlockConfig::toString()
///   int an5d_num_dims(void);              // 1, 2 or 3
///   int an5d_radius(void);
///   int an5d_elem_size(void);             // sizeof element in bytes
///   int an5d_block_time(void);            // bT baked into the kernel
///   int an5d_max_threads(void);           // OpenMP pool size (1 if serial)
///   void an5d_set_threads(int n);         // n <= 0 keeps the default
///   int an5d_run(void *buf0, void *buf1, const long long *extents,
///                long long timeSteps);    // 0 on success; buf0 and buf1
///                                         // must be distinct (the blocked
///                                         // invocation restrict-qualifies
///                                         // them)
///
/// Both buffers are padded row-major grids with a halo of radius cells per
/// side of every dimension in `extents` (streaming dimension first) —
/// exactly Grid<T>'s layout, so run() passes Grid::data() straight through.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_NATIVEEXECUTOR_H
#define AN5D_RUNTIME_NATIVEEXECUTOR_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "runtime/DynamicKernel.h"
#include "schedule/ScheduleIR.h"
#include "runtime/KernelCache.h"
#include "sim/Grid.h"

#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace an5d {

/// Knobs of the compile/cache/load pipeline.
struct NativeRuntimeOptions {
  /// Kernel cache directory; empty picks KernelCache::defaultDirectory().
  /// Ignored when a shared cache is passed to the constructor.
  std::string CacheDir;

  /// Host compiler command; empty picks NativeCompiler::detect().
  std::string Compiler;

  /// Extra compiler flags appended after the standard kernel flags (a
  /// later -O level overrides the default -O2, which the tests use to
  /// speed up their many small builds). Part of the cache key.
  std::vector<std::string> ExtraCompileFlags;

  /// OpenMP threads the kernel may use; 0 keeps the runtime default.
  int Threads = 0;

  /// Rebuild even if the cache already holds the kernel.
  bool ForceRecompile = false;

  /// Lint the generated translation unit (analysis/KernelLint.h) before
  /// compiling and fail the executor on any finding — a debug gate for
  /// codegen changes. The AN5D_LINT_KERNELS environment variable (any
  /// non-empty value except "0") enables it process-wide; an5dc --lint
  /// sets it per run.
  bool LintKernels = false;
};

/// A loaded native kernel for one (stencil, configuration) pair.
///
/// Construction compiles (or fetches) and loads the kernel; check ok()
/// before running. The executor is usable from any thread: the kernel's
/// grid extents live in per-library globals, so `an5d_run` serializes
/// concurrent entries into the *same* loaded kernel behind an internal
/// mutex (parallelism lives inside the invocation, so this costs
/// nothing); distinct kernels run concurrently without contention.
class NativeExecutor {
public:
  /// Builds the kernel from an already lowered schedule (the tuner's
  /// native sweep lowers once per candidate and hands the IR down here).
  /// \p SharedCache lets many executors (a tuning sweep, a test suite)
  /// share one cache and its statistics; when null a private cache over
  /// Options.CacheDir is created.
  NativeExecutor(const StencilProgram &Program, const ScheduleIR &Schedule,
                 const NativeRuntimeOptions &Options = {},
                 KernelCache *SharedCache = nullptr);

  /// Convenience wrapper: lowers \p Config with lowerSchedule and builds
  /// from the resulting IR.
  NativeExecutor(const StencilProgram &Program, const BlockConfig &Config,
                 const NativeRuntimeOptions &Options = {},
                 KernelCache *SharedCache = nullptr);

  /// False if generation, compilation, loading or the ABI check failed;
  /// error() then explains why (including the compiler log).
  bool ok() const { return Library != nullptr && Error.empty(); }
  const std::string &error() const { return Error; }

  /// True if the shared object came out of the cache without compiling.
  bool cacheHit() const { return Artifact.CacheHit; }
  double compileSeconds() const { return Artifact.CompileSeconds; }
  const std::string &libraryPath() const { return Artifact.LibraryPath; }
  const std::string &cacheKey() const { return Artifact.Key; }

  /// The OpenMP thread-pool size the loaded kernel reports (1 if it was
  /// built without OpenMP). 0 if the executor failed.
  int kernelMaxThreads() const;

  /// The temporal tile (bT) baked into the loaded kernel, from its
  /// `an5d_block_time` metadata; 0 if the executor failed or the symbol
  /// is absent. The traced run path chunks long sweeps by this to report
  /// per-temporal-block progress.
  int blockTime() const { return BlockTime; }

  /// Pins the kernel's OpenMP pool to \p N threads via `an5d_set_threads`
  /// (no-op for N <= 0 or a failed executor). The measurement path calls
  /// this before timing so results do not float with the ambient
  /// OMP_NUM_THREADS of the calling process.
  void pinKernelThreads(int N) const;

  /// Same contract as referenceRun / BlockedExecutor::run: advances
  /// \p TimeSteps steps, input in Buffers[0], result in
  /// Buffers[TimeSteps % 2]. The grids must use halo == radius and share
  /// one layout. Aborts with a diagnostic if the kernel rejects the run
  /// (programming error: layout/type mismatch is asserted here first).
  template <typename T>
  void run(std::array<Grid<T> *, 2> Buffers, long long TimeSteps) const {
    assert(ok() && "run() on a failed native kernel");
    assert(static_cast<int>(sizeof(T)) == ElemSize &&
           "element type does not match the compiled kernel");
    assert(Buffers[0]->numDims() == NumDims && "dimensionality mismatch");
    assert(Buffers[0]->halo() == Radius &&
           "native kernels require halo == radius");
    assert(Buffers[1]->halo() == Buffers[0]->halo() &&
           Buffers[1]->extents() == Buffers[0]->extents() &&
           "native execution requires identically laid out buffers");
    const std::vector<long long> &Extents = Buffers[0]->extents();
    int Rc = runRaw(Buffers[0]->data(), Buffers[1]->data(), Extents.data(),
                    static_cast<int>(Extents.size()), TimeSteps);
    if (Rc != 0) {
      std::fprintf(stderr,
                   "an5d: native kernel %s rejected the run (code %d)\n",
                   Artifact.LibraryPath.c_str(), Rc);
      std::abort();
    }
  }

  /// Untyped entry for callers that manage raw buffers (the timing path).
  /// Returns the kernel's an5d_run result; -1 on arity mismatch.
  int runRaw(void *Buf0, void *Buf1, const long long *Extents,
             int NumExtents, long long TimeSteps) const;

private:
  /// The runRaw body when tracing is enabled: wraps the invocation in a
  /// `native.run` span and, for sweeps longer than the kernel's temporal
  /// tile, emits one `native.block` child span per bT-sized chunk
  /// (bit-exact with the single whole-sweep invocation).
  int runTraced(void *Buf0, void *Buf1, const long long *Extents,
                long long TimeSteps) const;

  std::string Error;
  KernelArtifact Artifact;
  std::unique_ptr<KernelCache> OwnedCache;
  std::unique_ptr<DynamicKernel> Library;

  int NumDims = 0;
  int Radius = 0;
  int ElemSize = 0;
  int Threads = 0;
  int BlockTime = 0;

  using RunFn = int(void *, void *, const long long *, long long);
  using IntFn = int();
  using SetThreadsFn = void(int);
  RunFn *Run = nullptr;
  SetThreadsFn *SetThreads = nullptr;
  IntFn *MaxThreads = nullptr;
};

} // namespace an5d

#endif // AN5D_RUNTIME_NATIVEEXECUTOR_H
