//===- DynamicKernel.h - RAII dlopen/dlsym kernel loader --------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal RAII wrapper around a dynamically loaded kernel shared object:
/// dlopen on load(), dlclose in the destructor, typed symbol lookup in
/// between. The native runtime keeps exactly one DynamicKernel alive per
/// loaded kernel; copying is disabled so the library handle has a single
/// owner and the unload point is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_DYNAMICKERNEL_H
#define AN5D_RUNTIME_DYNAMICKERNEL_H

#include <memory>
#include <string>

namespace an5d {

class DynamicKernel {
public:
  /// Loads \p LibraryPath (RTLD_NOW | RTLD_LOCAL). Returns nullptr and
  /// fills \p Error on failure.
  static std::unique_ptr<DynamicKernel> load(const std::string &LibraryPath,
                                             std::string *Error);

  ~DynamicKernel();
  DynamicKernel(const DynamicKernel &) = delete;
  DynamicKernel &operator=(const DynamicKernel &) = delete;

  const std::string &path() const { return Path; }

  /// Raw symbol address; nullptr if the library does not export \p Name.
  void *symbol(const char *Name) const;

  /// Typed symbol lookup: Fn is the plain function type
  /// (e.g. int(void *, void *, const long long *, long long)).
  template <typename Fn> Fn *fn(const char *Name) const {
    return reinterpret_cast<Fn *>(symbol(Name));
  }

private:
  DynamicKernel(std::string Path, void *Handle)
      : Path(std::move(Path)), Handle(Handle) {}

  std::string Path;
  void *Handle;
};

} // namespace an5d

#endif // AN5D_RUNTIME_DYNAMICKERNEL_H
