//===- KernelCache.cpp - Persistent compiled-kernel cache --------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/KernelCache.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace an5d {

namespace fs = std::filesystem;

std::string KernelCache::defaultDirectory() {
  if (const char *Env = std::getenv("AN5D_KERNEL_CACHE"); Env && *Env)
    return Env;
  if (const char *Home = std::getenv("HOME"); Home && *Home)
    return std::string(Home) + "/.cache/an5d/kernels";
  std::error_code Ec;
  fs::path Tmp = fs::temp_directory_path(Ec);
  if (Ec)
    Tmp = "/tmp";
  return (Tmp / "an5d-kernel-cache").string();
}

long long KernelCache::defaultMaxBytes() {
  if (const char *Env = std::getenv("AN5D_KERNEL_CACHE_MAX_MB");
      Env && *Env) {
    char *End = nullptr;
    const long long Mb = std::strtoll(Env, &End, 10);
    if (End != Env)
      return Mb > 0 ? Mb * 1024 * 1024 : 0;
  }
  return 512LL * 1024 * 1024;
}

KernelCache::KernelCache(std::string Directory, long long MaxBytes)
    : Dir(Directory.empty() ? defaultDirectory() : std::move(Directory)),
      MaxBytes_(MaxBytes < 0 ? defaultMaxBytes() : MaxBytes) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  // A failure surfaces naturally as a write/compile error in getOrBuild.
}

std::string KernelCache::hashKey(const std::string &Source,
                                 const std::string &CompilerFingerprint) {
  auto Fnv1a = [](std::uint64_t Hash, const std::string &Text) {
    for (unsigned char C : Text) {
      Hash ^= C;
      Hash *= 1099511628211ULL;
    }
    return Hash;
  };
  std::uint64_t Hash = 14695981039346656037ULL;
  Hash = Fnv1a(Hash, Source);
  Hash = Fnv1a(Hash, "\x1f"); // keep (a+b, c) distinct from (a, b+c)
  Hash = Fnv1a(Hash, CompilerFingerprint);

  char Buffer[17];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx",
                static_cast<unsigned long long>(Hash));
  return Buffer;
}

KernelArtifact KernelCache::getOrBuild(
    const std::string &Source, const NativeCompiler &Compiler,
    const std::vector<std::string> &ExtraFlags, bool ForceRecompile) {
  KernelArtifact Artifact;
  Artifact.Key = hashKey(Source, Compiler.fingerprint(ExtraFlags));
  fs::path Base = fs::path(Dir) / ("an5d_" + Artifact.Key);
  Artifact.SourcePath = Base.string() + ".cpp";
  Artifact.LibraryPath = Base.string() + ".so";

  obs::TraceSpan Span("cache.get_or_build");
  if (Span.active())
    Span.attr("key", Artifact.Key);

  std::error_code Ec;
  // Serialize same-key builds within this process: the exists-check runs
  // under the key's lock, so a worker that waited out a sibling's build
  // sees the finished artifact and records a hit instead of re-compiling
  // the identical source (register-cap variants, repeated problem sizes).
  std::shared_ptr<std::mutex> KeyMutex;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::shared_ptr<std::mutex> &Slot = Builders[Artifact.Key];
    if (!Slot)
      Slot = std::make_shared<std::mutex>();
    KeyMutex = Slot;
  }
  std::lock_guard<std::mutex> KeyLock(*KeyMutex);

  if (!ForceRecompile && fs::exists(Artifact.LibraryPath, Ec)) {
    Artifact.Ok = true;
    Artifact.CacheHit = true;
    // Touch the artifact so the LRU eviction order tracks use, not just
    // build time (a hot kernel hit daily must outlive a one-off build).
    fs::last_write_time(Artifact.LibraryPath,
                        fs::file_time_type::clock::now(), Ec);
    Span.attr("hit", "true");
    obs::count("kernel_cache.hits");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Hits;
    return Artifact;
  }
  Span.attr("hit", "false");

  // Everything below works on per-build temporaries renamed into place:
  // concurrent builders of the same key — sibling processes *or* sibling
  // threads of the in-process compile pool — each produce complete files
  // and the renames are atomic, so no compiler ever reads a truncated
  // .cpp and no loader ever sees a half-written .so. The pid alone is
  // not unique enough: same-process pool workers racing on one key would
  // share it, so a process-wide counter disambiguates.
  static std::atomic<unsigned> TempCounter{0};
  std::string Suffix =
      ".tmp." + std::to_string(TempCounter.fetch_add(1));
#if !defined(_WIN32)
  Suffix += "." + std::to_string(::getpid());
#endif

  // The source is compiled from its temporary and only then installed at
  // the canonical path (for inspection / recompilation): writing the
  // shared path directly would truncate it under a concurrent builder's
  // compiler, which silently succeeds on a partial TU. The temporary
  // keeps the .cpp extension — compilers classify inputs by suffix.
  std::string TempSourcePath = Artifact.SourcePath + Suffix + ".cpp";
  {
    std::ofstream Out(TempSourcePath);
    Out << Source;
    if (!Out) {
      Artifact.Log = "cannot write " + TempSourcePath;
      fs::remove(TempSourcePath, Ec);
      obs::count("kernel_cache.failures");
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.Failures;
      return Artifact;
    }
  }

  std::string TempPath = Artifact.LibraryPath + Suffix;
  CompileOutcome Outcome;
  {
    AN5D_TRACE_SPAN("cache.compile");
    Outcome =
        Compiler.compileSharedLibrary(TempSourcePath, TempPath, ExtraFlags);
  }
  fs::rename(TempSourcePath, Artifact.SourcePath, Ec);
  if (Ec)
    fs::remove(TempSourcePath, Ec); // canonical copy is best-effort only
  Artifact.Log = Outcome.Log;
  Artifact.CompileSeconds = Outcome.Seconds;
  if (!Outcome.Success) {
    Artifact.Log = "compile failed: " + Outcome.Command + "\n" + Outcome.Log;
    fs::remove(TempPath, Ec);
    obs::count("kernel_cache.failures");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Failures;
    return Artifact;
  }
  fs::rename(TempPath, Artifact.LibraryPath, Ec);
  if (Ec) {
    Artifact.Log = "cannot move " + TempPath + " into place: " + Ec.message();
    fs::remove(TempPath, Ec);
    obs::count("kernel_cache.failures");
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Failures;
    return Artifact;
  }

  Artifact.Ok = true;
  obs::count("kernel_cache.misses");
  obs::observe("kernel_cache.compile_seconds", Outcome.Seconds,
               obs::compileSecondsBuckets());
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
  }
  // The cache only grows on a successful build, so this is the one spot
  // where the size cap can newly overflow.
  evictOverCap(Artifact.Key);
  return Artifact;
}

void KernelCache::evictOverCap(const std::string &KeepKey) {
  if (MaxBytes_ <= 0)
    return;

  struct Entry {
    std::string Library;
    std::string Source;
    fs::file_time_type Mtime;
    long long Bytes = 0;
  };
  std::vector<Entry> Entries;
  long long TotalBytes = 0;

  std::error_code Ec;
  const std::string KeepName = "an5d_" + KeepKey + ".so";
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    const fs::path &Path = It->path();
    const std::string Name = Path.filename().string();
    if (Name.rfind("an5d_", 0) != 0 || Path.extension() != ".so")
      continue;
    Entry E;
    E.Library = Path.string();
    E.Source = (Path.parent_path() / Path.stem()).string() + ".cpp";
    E.Mtime = fs::last_write_time(Path, Ec);
    if (Ec) {
      Ec.clear();
      continue; // Evicted by a sibling between listing and stat.
    }
    E.Bytes = static_cast<long long>(fs::file_size(Path, Ec));
    if (Ec) {
      Ec.clear();
      E.Bytes = 0;
    }
    const long long SourceBytes =
        static_cast<long long>(fs::file_size(E.Source, Ec));
    if (!Ec)
      E.Bytes += SourceBytes;
    Ec.clear();
    TotalBytes += E.Bytes;
    if (Name != KeepName) // The just-built artifact is never evicted.
      Entries.push_back(std::move(E));
  }

  if (TotalBytes <= MaxBytes_)
    return;
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.Mtime < B.Mtime; });

  std::size_t Evicted = 0;
  for (const Entry &E : Entries) {
    if (TotalBytes <= MaxBytes_)
      break;
    fs::remove(E.Library, Ec);
    fs::remove(E.Source, Ec);
    TotalBytes -= E.Bytes;
    ++Evicted;
  }
  if (Evicted > 0) {
    obs::count("kernel_cache.evictions", static_cast<long long>(Evicted));
    std::lock_guard<std::mutex> Lock(Mutex);
    Stats.Evictions += Evicted;
  }
}

KernelCacheStats KernelCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

} // namespace an5d
