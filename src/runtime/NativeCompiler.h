//===- NativeCompiler.h - Host C++ compiler driver --------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shells out to the host C++ compiler to build a generated kernel
/// translation unit into a shared library. The compiler is resolved once
/// (AN5D_CXX environment variable, then the compiler CMake configured the
/// project with, then plain `c++`) and probed — per process, per command —
/// for its version string and for working -fopenmp support (a tiny shared
/// library is actually built, so a clang without libomp fails the probe
/// and kernels compile serially). The (command, version, effective flags)
/// triple forms the fingerprint KernelCache hashes, so a toolchain change
/// — including OpenMP support appearing or vanishing — lands on fresh
/// cache keys instead of serving stale artifacts.
///
/// The flag set is deliberately small: -O2 -shared -fPIC plus
/// -ffp-contract=off and (when supported) -fopenmp. The contraction flag
/// is load-bearing — the kernels promise bit-for-bit agreement with the
/// in-process executors, and a fused mul/add would break that (see the
/// root CMakeLists rationale).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_NATIVECOMPILER_H
#define AN5D_RUNTIME_NATIVECOMPILER_H

#include <string>
#include <vector>

namespace an5d {

/// Result of one shared-library build.
struct CompileOutcome {
  bool Success = false;
  /// The exact command line run.
  std::string Command;
  /// Captured compiler stdout+stderr.
  std::string Log;
  double Seconds = 0;
};

class NativeCompiler {
public:
  /// \p Command overrides compiler detection when non-empty. Probes
  /// (version, OpenMP) run once per process per distinct command.
  explicit NativeCompiler(std::string Command = "");

  /// Resolution order: $AN5D_CXX, the configure-time compiler
  /// (AN5D_HOST_CXX), `c++`.
  static std::string detect();

  const std::string &command() const { return Command_; }

  /// First line of `<command> --version`; empty if the probe failed.
  const std::string &version() const { return Version; }

  /// True if the version probe succeeded (the compiler exists and runs).
  bool available() const { return !Version.empty(); }

  /// True if the probe built a -fopenmp shared library successfully;
  /// kernels then compile with OpenMP worksharing enabled.
  bool openMpSupported() const { return OpenMp; }

  /// The sanitizer flags kernel builds inherit so dlopen'd kernels run
  /// under the *same* sanitizer as the host process: the
  /// AN5D_KERNEL_SANITIZE environment variable when set (raw flags;
  /// "none" disables), otherwise the flags CMake baked in when the
  /// project was configured with AN5D_SANITIZE. Empty in a plain build.
  static std::vector<std::string> sanitizerFlags();

  /// The flags every kernel build uses with this compiler, in order
  /// (-fopenmp included iff supported, sanitizerFlags() appended; under
  /// -fsanitize=thread the OpenMP flag is dropped — see flags() for the
  /// uninstrumented-libgomp rationale). \p ExtraFlags of
  /// compileSharedLibrary are appended after these, so callers can
  /// override (e.g. a test passing -O1 for faster builds).
  std::vector<std::string> flags() const;

  /// Compiler identity + effective flag set; hashed into the kernel-cache
  /// key.
  std::string fingerprint(const std::vector<std::string> &ExtraFlags) const;

  /// Builds \p SourcePath into the shared library \p OutputPath.
  CompileOutcome
  compileSharedLibrary(const std::string &SourcePath,
                       const std::string &OutputPath,
                       const std::vector<std::string> &ExtraFlags) const;

private:
  std::string Command_;
  std::string Version;
  bool OpenMp = false;
};

} // namespace an5d

#endif // AN5D_RUNTIME_NATIVECOMPILER_H
