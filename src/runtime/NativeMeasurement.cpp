//===- NativeMeasurement.cpp - Real measured sweep on compiled kernels -------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/NativeMeasurement.h"

#include "analysis/ScheduleVerifier.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/Grid.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <thread>

namespace an5d {

ProblemSize nativeMeasurementProblem(int NumDims) {
  ProblemSize Problem;
  if (NumDims == 2) {
    Problem.Extents = {512, 512};
    Problem.TimeSteps = 32;
  } else if (NumDims == 3) {
    Problem.Extents = {64, 64, 64};
    Problem.TimeSteps = 8;
  } else {
    Problem.Extents = {65536};
    Problem.TimeSteps = 64;
  }
  return Problem;
}

template <typename T>
KernelTiming timeNativeKernel(const NativeExecutor &Executor,
                              const ProblemSize &Problem, int Radius,
                              int Repeats, int Threads, bool SkipWarmup) {
  // Pin explicitly: with no request (Threads == 0) pin to the machine's
  // hardware concurrency, not to the kernel's current default — the
  // latter is whatever ambient OMP_NUM_THREADS initialized the pool to,
  // and measurements must not float with the caller's environment. The
  // previous pool size is restored on exit: the OpenMP ICV is
  // process-wide, so leaving the pin in place would silently change the
  // thread count of any later kernel run in this process (e.g. an5dc
  // --tune --measure native followed by --run-native).
  int Ambient = Executor.kernelMaxThreads();
  int Pin = Threads;
  if (Pin <= 0)
    Pin = static_cast<int>(std::thread::hardware_concurrency());
  if (Pin <= 0)
    Pin = Ambient; // no concurrency info: freeze the pool as-is
  Executor.pinKernelThreads(Pin);
  struct RestorePool {
    const NativeExecutor &Executor;
    int Threads;
    ~RestorePool() { Executor.pinKernelThreads(Threads); }
  } Restore{Executor, Ambient};

  KernelTiming Timing;
  // Read back rather than echo the request: a kernel built without
  // OpenMP ignores the pin and stays at 1.
  Timing.ThreadsUsed = Executor.kernelMaxThreads();

  Grid<T> Pristine(Problem.Extents, Radius);
  fillGridDeterministic(Pristine, 42);
  Grid<T> Buf0 = Pristine, Buf1 = Pristine;
  double Best = std::numeric_limits<double>::infinity();
  int TimedRepeats = std::max(1, Repeats);
  for (int Rep = SkipWarmup ? 0 : -1; Rep < TimedRepeats; ++Rep) {
    copyGrid(Pristine, Buf0);
    copyGrid(Pristine, Buf1);
    // The span's clock reads happen strictly outside the Start..now
    // window below, so enabling tracing widens the span, not the number.
    obs::TraceSpan RepSpan(Rep < 0 ? "measure.warmup" : "measure.repeat");
    auto Start = std::chrono::steady_clock::now();
    int Rc = Executor.runRaw(Buf0.data(), Buf1.data(),
                             Problem.Extents.data(),
                             static_cast<int>(Problem.Extents.size()),
                             Problem.TimeSteps);
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    if (Rc != 0) {
      Timing.Rc = Rc;
      return Timing;
    }
    if (Rep < 0)
      continue; // warmup run: correct but untimed
    Best = std::min(Best, Seconds);
  }
  // Metric bumps live after the timed loop — one batch per call, never
  // inside a measured window.
  if (!SkipWarmup)
    obs::count("measure.warmups");
  obs::count("measure.repeats", TimedRepeats);
  if (Best < MinMeasurableSeconds)
    obs::count("measure.clamps");
  Timing.Seconds = std::max(Best, MinMeasurableSeconds);
  obs::observe("measure.run_seconds", Timing.Seconds,
               obs::runSecondsBuckets());
  return Timing;
}

template KernelTiming timeNativeKernel<float>(const NativeExecutor &,
                                              const ProblemSize &, int, int,
                                              int, bool);
template KernelTiming timeNativeKernel<double>(const NativeExecutor &,
                                               const ProblemSize &, int, int,
                                               int, bool);

std::vector<MeasuredResult>
nativeMeasuredSweep(const StencilProgram &Program,
                    const std::vector<SweepCandidate> &Candidates,
                    const std::vector<ProblemSize> &Problems,
                    const NativeMeasureOptions &Options, KernelCache *Cache) {
  std::vector<MeasuredResult> Results(Candidates.size());
  if (Candidates.empty())
    return Results;
  obs::count("sweep.candidates", static_cast<long long>(Candidates.size()));

  std::unique_ptr<KernelCache> OwnedCache;
  if (!Cache) {
    OwnedCache = std::make_unique<KernelCache>(Options.Runtime.CacheDir);
    Cache = OwnedCache.get();
  }

  // Lower each candidate exactly once (unless the caller — the tuner —
  // already did and handed the IR down): the verifier, the kernel codegen
  // and the timing stage below all consume this one schedule.
  std::vector<ScheduleIR> Lowered(Candidates.size());
  std::vector<const ScheduleIR *> Schedules(Candidates.size());
  for (std::size_t I = 0; I < Candidates.size(); ++I) {
    // A lowered IR always names its stencil; a default-constructed
    // SweepCandidate::Schedule does not.
    if (!Candidates[I].Schedule.StencilName.empty()) {
      assert(Candidates[I].Schedule.Config.toString() ==
                 Candidates[I].Config.toString() &&
             "pre-lowered schedule does not match the candidate config");
      Schedules[I] = &Candidates[I].Schedule;
    } else {
      Lowered[I] = lowerSchedule(Program, Candidates[I].Config);
      Schedules[I] = &Lowered[I];
    }
  }

  // Stage 0: static schedule verification, before any compiler runs. A
  // candidate the interval analysis cannot prove safe is rejected here —
  // no JIT time spent — with the verdict as its failure reason. Only
  // configurations the feasibility model accepts are verified, so
  // genuinely infeasible candidates keep their established "infeasible"
  // diagnostics from the build path below.
  if (Options.VerifySchedule) {
    AN5D_TRACE_SPAN("sweep.verify");
    for (std::size_t I = 0; I < Candidates.size(); ++I) {
      const BlockConfig &Config = Candidates[I].Config;
      if (!Config.matchesDimensionality(Program.numDims()) ||
          !Config.isFeasible(Program.radius()))
        continue;
      ScheduleVerifyResult Verdict = verifyScheduleIR(*Schedules[I]);
      if (!Verdict.proven()) {
        Results[I].FailureReason = "schedule verifier rejected " +
                                   Config.toString() + ": " +
                                   Verdict.Violations.front().toString();
        Results[I].FailureKind = MeasureFailureKind::VerifierRejected;
      }
    }
  }

  // Candidates sharing one configuration — the same top-K config timed
  // against several problem sizes — share one compiled executor: the
  // kernel bakes in the configuration, not the extents, so there is
  // nothing problem-specific to rebuild. Each candidate maps to the slot
  // of the first candidate with its configuration.
  std::vector<std::size_t> KernelSlot(Candidates.size());
  {
    std::map<std::string, std::size_t> SlotByConfig;
    for (std::size_t I = 0; I < Candidates.size(); ++I)
      KernelSlot[I] =
          SlotByConfig.try_emplace(Candidates[I].Config.toString(), I)
              .first->second;
  }

  // Stage 1: compile every unique kernel across the pool. Executors land
  // in their own pre-allocated slot, so the stage is race-free; the
  // shared cache deduplicates identical sources (e.g. register-cap
  // variants) behind its own lock.
  std::vector<std::unique_ptr<NativeExecutor>> Executors(Candidates.size());
  std::atomic<std::size_t> NextItem{0};
  auto Worker = [&]() {
    for (std::size_t Item;
         (Item = NextItem.fetch_add(1, std::memory_order_relaxed)) <
         Candidates.size();) {
      obs::gaugeSet("sweep.queue_depth",
                    static_cast<long long>(
                        Candidates.size() -
                        std::min(Item + 1, Candidates.size())));
      if (!Results[Item].FailureReason.empty())
        continue; // verifier-rejected: never build
      if (KernelSlot[Item] != Item)
        continue; // another slot owns this configuration's kernel
      obs::TraceSpan Span("sweep.compile");
      if (Span.active())
        Span.attr("config", Candidates[Item].Config.toString());
      Executors[Item] = std::make_unique<NativeExecutor>(
          Program, *Schedules[Item], Options.Runtime, Cache);
    }
  };
  int NumWorkers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolveSweepThreads(Options.CompileThreads)),
      Candidates.size()));
  if (NumWorkers <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Helpers;
    Helpers.reserve(static_cast<std::size_t>(NumWorkers) - 1);
    for (int I = 1; I < NumWorkers; ++I)
      Helpers.emplace_back(Worker);
    Worker();
    for (std::thread &Helper : Helpers)
      Helper.join();
  }

  // Stage 2: serial timing, one kernel at a time (measurements must not
  // contend with each other for cores). A shared executor warms up on its
  // first timed candidate only: the warmup pages in the kernel code and
  // spins up its thread pool, neither of which depends on the extents, so
  // later problem sizes of the same kernel skip it.
  double FlopsPerCell =
      static_cast<double>(Program.flopsPerCell().total());
  std::vector<bool> Warmed(Candidates.size(), false);
  for (std::size_t I = 0; I < Candidates.size(); ++I) {
    if (!Results[I].FailureReason.empty())
      continue; // verifier-rejected in stage 0
    std::size_t Slot = KernelSlot[I];
    NativeExecutor *Executor = Executors[Slot].get();
    if (!Executor || !Executor->ok()) {
      // Not an infeasible configuration: record why the kernel never ran
      // so the tuner can surface compile failures distinctly.
      Results[I].FailureReason =
          Executor ? Executor->error() : "kernel was never built";
      Results[I].FailureKind = Executor ? MeasureFailureKind::BuildFailed
                                        : MeasureFailureKind::NeverBuilt;
      continue;
    }
    assert(Candidates[I].ProblemIndex < Problems.size() &&
           "candidate addresses a problem size outside the sweep");
    const ProblemSize &Problem = Problems[Candidates[I].ProblemIndex];
    obs::TraceSpan CandidateSpan("measure.candidate");
    if (CandidateSpan.active()) {
      CandidateSpan.attr("config", Candidates[I].Config.toString());
      CandidateSpan.attr("problem",
                         std::to_string(Candidates[I].ProblemIndex));
    }
    KernelTiming Timing =
        Program.elemType() == ScalarType::Float
            ? timeNativeKernel<float>(*Executor, Problem, Program.radius(),
                                      Options.Repeats,
                                      Options.Runtime.Threads, Warmed[Slot])
            : timeNativeKernel<double>(*Executor, Problem, Program.radius(),
                                       Options.Repeats,
                                       Options.Runtime.Threads,
                                       Warmed[Slot]);
    if (Timing.Rc != 0) {
      Results[I].FailureReason = "kernel rejected the run (code " +
                                 std::to_string(Timing.Rc) + ")";
      Results[I].FailureKind = MeasureFailureKind::RunRejected;
      continue;
    }
    Warmed[Slot] = true;
    MeasuredResult &Out = Results[I];
    Out.Feasible = true;
    Out.MeasuredTimeSeconds = Timing.Seconds;
    double CellUpdates = static_cast<double>(Problem.cellCount()) *
                         static_cast<double>(Problem.TimeSteps);
    Out.MeasuredGflops = FlopsPerCell * CellUpdates / Timing.Seconds / 1e9;
  }

  // One failure-kind counter bump per failed result, in one place: the
  // metrics exactly mirror what the tuner's reduction will count into
  // TuneOutcome::MeasurementFailures.
  for (const MeasuredResult &Result : Results)
    if (Result.FailureKind != MeasureFailureKind::None)
      obs::count(measureFailureMetricName(Result.FailureKind));
  return Results;
}

} // namespace an5d
