//===- NativeMeasurement.cpp - Real measured sweep on compiled kernels -------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/NativeMeasurement.h"

#include "sim/Grid.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>

namespace an5d {

ProblemSize nativeMeasurementProblem(int NumDims) {
  ProblemSize Problem;
  if (NumDims == 2) {
    Problem.Extents = {512, 512};
    Problem.TimeSteps = 32;
  } else if (NumDims == 3) {
    Problem.Extents = {64, 64, 64};
    Problem.TimeSteps = 8;
  } else {
    Problem.Extents = {65536};
    Problem.TimeSteps = 64;
  }
  return Problem;
}

namespace {

/// Times one kernel over one problem: fills pristine double buffers once,
/// then per repeat restores them and measures a full an5d_run. Returns the
/// best wall-clock seconds, or a negative value if the kernel rejected
/// the run.
template <typename T>
double timeKernel(const NativeExecutor &Executor, const ProblemSize &Problem,
                  int Radius, int Repeats) {
  Grid<T> Pristine(Problem.Extents, Radius);
  fillGridDeterministic(Pristine, 42);
  Grid<T> Buf0 = Pristine, Buf1 = Pristine;

  double Best = std::numeric_limits<double>::infinity();
  for (int Rep = 0; Rep < std::max(1, Repeats); ++Rep) {
    copyGrid(Pristine, Buf0);
    copyGrid(Pristine, Buf1);
    auto Start = std::chrono::steady_clock::now();
    int Rc = Executor.runRaw(Buf0.data(), Buf1.data(),
                             Problem.Extents.data(),
                             static_cast<int>(Problem.Extents.size()),
                             Problem.TimeSteps);
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    if (Rc != 0)
      return -1;
    Best = std::min(Best, Seconds);
  }
  return Best;
}

} // namespace

std::vector<MeasuredResult>
nativeMeasuredSweep(const StencilProgram &Program,
                    const std::vector<SweepCandidate> &Candidates,
                    const std::vector<ProblemSize> &Problems,
                    const NativeMeasureOptions &Options, KernelCache *Cache) {
  std::vector<MeasuredResult> Results(Candidates.size());
  if (Candidates.empty())
    return Results;

  std::unique_ptr<KernelCache> OwnedCache;
  if (!Cache) {
    OwnedCache = std::make_unique<KernelCache>(Options.Runtime.CacheDir);
    Cache = OwnedCache.get();
  }

  // Stage 1: compile every candidate's kernel across the pool. Executors
  // land in their own pre-allocated slot, so the stage is race-free; the
  // shared cache deduplicates identical sources (e.g. register-cap
  // variants) behind its own lock.
  std::vector<std::unique_ptr<NativeExecutor>> Executors(Candidates.size());
  std::atomic<std::size_t> NextItem{0};
  auto Worker = [&]() {
    for (std::size_t Item;
         (Item = NextItem.fetch_add(1, std::memory_order_relaxed)) <
         Candidates.size();) {
      Executors[Item] = std::make_unique<NativeExecutor>(
          Program, Candidates[Item].Config, Options.Runtime, Cache);
    }
  };
  int NumWorkers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolveSweepThreads(Options.CompileThreads)),
      Candidates.size()));
  if (NumWorkers <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Helpers;
    Helpers.reserve(static_cast<std::size_t>(NumWorkers) - 1);
    for (int I = 1; I < NumWorkers; ++I)
      Helpers.emplace_back(Worker);
    Worker();
    for (std::thread &Helper : Helpers)
      Helper.join();
  }

  // Stage 2: serial timing, one kernel at a time (measurements must not
  // contend with each other for cores).
  double FlopsPerCell =
      static_cast<double>(Program.flopsPerCell().total());
  for (std::size_t I = 0; I < Candidates.size(); ++I) {
    if (!Executors[I] || !Executors[I]->ok())
      continue;
    assert(Candidates[I].ProblemIndex < Problems.size() &&
           "candidate addresses a problem size outside the sweep");
    const ProblemSize &Problem = Problems[Candidates[I].ProblemIndex];
    double Seconds =
        Program.elemType() == ScalarType::Float
            ? timeKernel<float>(*Executors[I], Problem, Program.radius(),
                                Options.Repeats)
            : timeKernel<double>(*Executors[I], Problem, Program.radius(),
                                 Options.Repeats);
    if (Seconds <= 0)
      continue;
    MeasuredResult &Out = Results[I];
    Out.Feasible = true;
    Out.MeasuredTimeSeconds = Seconds;
    double CellUpdates = static_cast<double>(Problem.cellCount()) *
                         static_cast<double>(Problem.TimeSteps);
    Out.MeasuredGflops = FlopsPerCell * CellUpdates / Seconds / 1e9;
  }
  return Results;
}

} // namespace an5d
