//===- KernelCache.h - Persistent compiled-kernel cache ---------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent on-disk cache of compiled kernel shared objects, keyed by
/// an FNV-1a hash of (generated source, compiler fingerprint) — so a
/// change to the stencil, the configuration, the code generator, the
/// compiler binary or the flag set each lands on a fresh key, and repeat
/// tunes of the same point are compile-free.
///
/// Layout under the cache directory:
///   an5d_<key>.cpp   the generated translation unit (kept for debugging)
///   an5d_<key>.so    the compiled kernel
///
/// The cache directory defaults to $AN5D_KERNEL_CACHE, then
/// $HOME/.cache/an5d/kernels, then <tmp>/an5d-kernel-cache. getOrBuild is
/// thread-safe (the measured sweep compiles candidates from a thread
/// pool): same-key builds within one process are serialized on a per-key
/// mutex — the first requester compiles, the rest wait and then hit its
/// artifact, so one key costs one *successful* compile per process.
/// Failures are not memoized (a failed build leaves no artifact, so every
/// requester of that key retries — serially — and reports the live log);
/// transient failures therefore self-heal at the cost of repeated
/// compiles on a persistently broken source. Across processes compilation
/// goes to a per-call temporary and is renamed into place atomically, so
/// cross-process races on one key stay benign (each produces a complete
/// artifact).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_RUNTIME_KERNELCACHE_H
#define AN5D_RUNTIME_KERNELCACHE_H

#include "runtime/NativeCompiler.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace an5d {

/// Hit/miss counters; a warm cache shows pure hits on a repeat tune.
struct KernelCacheStats {
  std::size_t Hits = 0;
  std::size_t Misses = 0;
  std::size_t Failures = 0;
  /// Artifacts removed by the LRU size cap (one per evicted key).
  std::size_t Evictions = 0;
};

/// One resolved cache entry.
struct KernelArtifact {
  bool Ok = false;
  /// True if the shared object was already in the cache (no compile ran).
  bool CacheHit = false;
  std::string Key;
  std::string SourcePath;
  std::string LibraryPath;
  /// Compiler log on failure (empty on a hit).
  std::string Log;
  double CompileSeconds = 0;
};

class KernelCache {
public:
  /// \p Directory overrides defaultDirectory() when non-empty; it is
  /// created if missing. \p MaxBytes caps the total size of cached
  /// artifacts (.so plus the kept .cpp): after each successful build the
  /// least-recently-used keys are evicted until the cache fits. 0 means
  /// unlimited; the default -1 resolves defaultMaxBytes(). Recency is
  /// artifact mtime — a hit touches its .so, so persistent caches stay
  /// LRU across processes. Eviction never removes the key just built,
  /// and a concurrently *building* sibling process can transiently lose
  /// an artifact it was about to load (it then recompiles: the same
  /// benign self-healing as a failed build).
  explicit KernelCache(std::string Directory = "", long long MaxBytes = -1);

  const std::string &directory() const { return Dir; }

  /// The configured size cap in bytes (0 = unlimited).
  long long maxBytes() const { return MaxBytes_; }

  /// $AN5D_KERNEL_CACHE_MAX_MB megabytes when set (<= 0 disables the
  /// cap), otherwise 512 MB.
  static long long defaultMaxBytes();

  /// $AN5D_KERNEL_CACHE > $HOME/.cache/an5d/kernels > <tmp>/an5d-kernel-cache.
  static std::string defaultDirectory();

  /// FNV-1a 64-bit over source and fingerprint, as 16 hex digits.
  static std::string hashKey(const std::string &Source,
                             const std::string &CompilerFingerprint);

  /// Returns the cached shared object for (Source, Compiler, ExtraFlags),
  /// compiling it on a miss. \p ForceRecompile rebuilds even on a hit
  /// (counted as a miss).
  KernelArtifact getOrBuild(const std::string &Source,
                            const NativeCompiler &Compiler,
                            const std::vector<std::string> &ExtraFlags = {},
                            bool ForceRecompile = false);

  KernelCacheStats stats() const;

private:
  /// Removes least-recently-used artifact pairs until the cache fits
  /// MaxBytes_, never touching \p KeepKey (the key just built).
  void evictOverCap(const std::string &KeepKey);

  std::string Dir;
  long long MaxBytes_ = 0;
  mutable std::mutex Mutex;
  KernelCacheStats Stats;
  /// Per-key build locks: concurrent requesters of one key wait for the
  /// first builder instead of each shelling out a redundant compile.
  /// Guarded by Mutex; shared_ptr so a waiter's lock survives map growth.
  std::map<std::string, std::shared_ptr<std::mutex>> Builders;
};

} // namespace an5d

#endif // AN5D_RUNTIME_KERNELCACHE_H
