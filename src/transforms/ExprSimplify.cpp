//===- ExprSimplify.cpp - Algebraic simplification of updates ----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/ExprSimplify.h"

#include "ir/ExprEval.h"

namespace an5d {

bool isConstantExpr(const StencilExpr &E) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
    return true;
  case StencilExpr::Kind::GridRead:
    return false;
  case StencilExpr::Kind::Unary:
    return isConstantExpr(cast<UnaryExpr>(E).operand());
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return isConstantExpr(B.lhs()) && isConstantExpr(B.rhs());
  }
  case StencilExpr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      if (!isConstantExpr(*A))
        return false;
    return true;
  }
  return false;
}

double evaluateConstantExpr(const StencilExpr &E,
                            const StencilProgram *Program) {
  assert(isConstantExpr(E) && "not a constant expression");
  auto Read = [](const GridReadExpr &) -> double {
    assert(false && "constant expression cannot read the grid");
    return 0;
  };
  auto Coef = [&](const std::string &Name) -> double {
    assert(Program && "coefficient evaluation requires bindings");
    return Program->coefficientValue(Name);
  };
  return evalExpr<double>(E, Read, Coef);
}

/// True when \p E is the literal \p Value.
static bool isLiteral(const StencilExpr &E, double Value) {
  const auto *N = dyn_cast<NumberExpr>(&E);
  return N && N->value() == Value;
}

/// True when the subtree can be fully evaluated right now: constant, and
/// either free of named coefficients or bindings are available.
static bool isFoldable(const StencilExpr &E, const StencilProgram *Program) {
  switch (E.kind()) {
  case StencilExpr::Kind::Number:
    return true;
  case StencilExpr::Kind::Coefficient:
    return Program != nullptr;
  case StencilExpr::Kind::GridRead:
    return false;
  case StencilExpr::Kind::Unary:
    return isFoldable(cast<UnaryExpr>(E).operand(), Program);
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return isFoldable(B.lhs(), Program) && isFoldable(B.rhs(), Program);
  }
  case StencilExpr::Kind::Call:
    for (const ExprPtr &A : cast<CallExpr>(E).args())
      if (!isFoldable(*A, Program))
        return false;
    return true;
  }
  return false;
}

static void bump(int SimplifyStats::*Member, SimplifyStats *Stats) {
  if (Stats)
    ++(Stats->*Member);
}

ExprPtr simplifyExpr(ExprPtr E, const StencilProgram *Program,
                     SimplifyStats *Stats) {
  switch (E->kind()) {
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
  case StencilExpr::Kind::GridRead:
    return E;

  case StencilExpr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(*E);
    ExprPtr Operand = simplifyExpr(U.operand().clone(), Program, Stats);
    // -(-x) -> x
    if (const auto *Inner = dyn_cast<UnaryExpr>(Operand.get())) {
      bump(&SimplifyStats::NegationsFolded, Stats);
      return Inner->operand().clone();
    }
    // -(literal) -> literal
    if (const auto *N = dyn_cast<NumberExpr>(Operand.get())) {
      bump(&SimplifyStats::NegationsFolded, Stats);
      return makeNumber(-N->value());
    }
    return makeNeg(std::move(Operand));
  }

  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(*E);
    ExprPtr L = simplifyExpr(B.lhs().clone(), Program, Stats);
    ExprPtr R = simplifyExpr(B.rhs().clone(), Program, Stats);
    BinaryOpKind Op = B.op();

    // Arithmetic identities.
    switch (Op) {
    case BinaryOpKind::Add:
      if (isLiteral(*L, 0.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return R;
      }
      if (isLiteral(*R, 0.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return L;
      }
      break;
    case BinaryOpKind::Sub:
      if (isLiteral(*R, 0.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return L;
      }
      break;
    case BinaryOpKind::Mul:
      if (isLiteral(*L, 1.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return R;
      }
      if (isLiteral(*R, 1.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return L;
      }
      if (isLiteral(*L, 0.0) || isLiteral(*R, 0.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return makeNumber(0.0);
      }
      break;
    case BinaryOpKind::Div:
      if (isLiteral(*R, 1.0)) {
        bump(&SimplifyStats::IdentitiesRemoved, Stats);
        return L;
      }
      break;
    }

    ExprPtr Folded = makeBinary(Op, std::move(L), std::move(R));
    if (isFoldable(*Folded, Program) && !isa<NumberExpr>(*Folded)) {
      bump(&SimplifyStats::ConstantsFolded, Stats);
      return makeNumber(evaluateConstantExpr(*Folded, Program));
    }
    return Folded;
  }

  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(*E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &A : C.args())
      Args.push_back(simplifyExpr(A->clone(), Program, Stats));
    ExprPtr Folded = makeCall(C.callee(), std::move(Args));
    if (isFoldable(*Folded, Program)) {
      bump(&SimplifyStats::ConstantsFolded, Stats);
      return makeNumber(evaluateConstantExpr(*Folded, Program));
    }
    return Folded;
  }
  }
  return E;
}

ExprPtr rewriteDivisionByConstant(ExprPtr E, const StencilProgram *Program,
                                  int *NumRewritten) {
  switch (E->kind()) {
  case StencilExpr::Kind::Number:
  case StencilExpr::Kind::Coefficient:
  case StencilExpr::Kind::GridRead:
    return E;
  case StencilExpr::Kind::Unary:
    return makeNeg(rewriteDivisionByConstant(
        cast<UnaryExpr>(*E).operand().clone(), Program, NumRewritten));
  case StencilExpr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(*E);
    ExprPtr L = rewriteDivisionByConstant(B.lhs().clone(), Program,
                                          NumRewritten);
    ExprPtr R = rewriteDivisionByConstant(B.rhs().clone(), Program,
                                          NumRewritten);
    if (B.op() == BinaryOpKind::Div && isConstantExpr(*R)) {
      // x / c -> x * (1/c): the divisor is a compile-time constant, so the
      // reciprocal folds at compile time too.
      bool CanEvaluate =
          isFoldable(*R, Program) || isa<NumberExpr>(*R);
      if (CanEvaluate) {
        double Divisor = evaluateConstantExpr(*R, Program);
        if (NumRewritten)
          ++*NumRewritten;
        return makeMul(std::move(L), makeNumber(1.0 / Divisor));
      }
    }
    return makeBinary(B.op(), std::move(L), std::move(R));
  }
  case StencilExpr::Kind::Call: {
    const auto &C = cast<CallExpr>(*E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &A : C.args())
      Args.push_back(
          rewriteDivisionByConstant(A->clone(), Program, NumRewritten));
    return makeCall(C.callee(), std::move(Args));
  }
  }
  return E;
}

} // namespace an5d
