//===- ExprSimplify.h - Algebraic simplification of updates -----*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Normalization transforms over stencil update expressions, playing the
/// role PPCG's frontend normalization plays in the paper (Section 4.3.3:
/// AN5D consumes a "normalized (dead-code eliminated and loop rescheduled)"
/// representation). Provided transforms:
///
///  * constant folding — evaluate constant subtrees;
///  * identity elimination — x*1, 1*x, x+0, 0+x, x-0, x/1, x*0, 0*x,
///    double negation;
///  * reciprocal-of-constant division rewriting (the paper's suggested
///    "/N" -> "*(1/N)" work-around for the double-precision division
///    slowdown, Section 7.1).
///
/// IMPORTANT: folding evaluates constants in double precision, and the
/// division rewrite changes rounding, so these transforms are *not* applied
/// in the default pipeline (which promises bit-exact equivalence with the
/// input program); they are opt-in via an5dc --simplify / --div-to-mul and
/// CodegenOptions.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_TRANSFORMS_EXPRSIMPLIFY_H
#define AN5D_TRANSFORMS_EXPRSIMPLIFY_H

#include "ir/StencilExpr.h"
#include "ir/StencilProgram.h"

namespace an5d {

/// Statistics of one simplification run.
struct SimplifyStats {
  int ConstantsFolded = 0;
  int IdentitiesRemoved = 0;
  int NegationsFolded = 0;

  int total() const {
    return ConstantsFolded + IdentitiesRemoved + NegationsFolded;
  }
};

/// Returns true if \p E contains no grid reads (only literals, named
/// coefficients, arithmetic and math calls over them).
bool isConstantExpr(const StencilExpr &E);

/// Evaluates a constant expression in double precision. \p Program supplies
/// coefficient bindings; may be null when \p E uses none.
double evaluateConstantExpr(const StencilExpr &E,
                            const StencilProgram *Program);

/// Folds constant subtrees and removes arithmetic identities. Coefficient
/// names are preserved (not inlined) unless they combine with literals
/// inside a fully constant subtree and \p Program provides their values.
ExprPtr simplifyExpr(ExprPtr E, const StencilProgram *Program = nullptr,
                     SimplifyStats *Stats = nullptr);

/// Rewrites every division by a constant into a multiplication by its
/// reciprocal — the Section 7.1 work-around for NVCC's slow
/// double-precision division. Changes rounding; opt-in only.
ExprPtr rewriteDivisionByConstant(ExprPtr E,
                                  const StencilProgram *Program = nullptr,
                                  int *NumRewritten = nullptr);

} // namespace an5d

#endif // AN5D_TRANSFORMS_EXPRSIMPLIFY_H
