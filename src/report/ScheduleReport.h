//===- ScheduleReport.h - Human-readable schedule/resource report -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders everything a performance engineer would want to know about one
/// (stencil, device, configuration) triple before launching it: the
/// detected stencil properties, per-block resources and the occupancy
/// limits they impose, the traffic/redundancy census, the roofline
/// breakdown with the predicted bottleneck, the simulated measurement, and
/// the host-side temporal-block schedule. Exposed through `an5dc --report`.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_REPORT_SCHEDULEREPORT_H
#define AN5D_REPORT_SCHEDULEREPORT_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"

#include <string>

namespace an5d {

/// Renders the full report as plain text.
std::string renderScheduleReport(const StencilProgram &Program,
                                 const GpuSpec &Spec,
                                 const BlockConfig &Config,
                                 const ProblemSize &Problem);

} // namespace an5d

#endif // AN5D_REPORT_SCHEDULEREPORT_H
