//===- ScheduleReport.cpp - Human-readable schedule/resource report ----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "report/ScheduleReport.h"

#include "model/PerformanceModel.h"
#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "model/ThreadCensus.h"
#include "sim/MeasuredSimulator.h"
#include "sim/TimeBlockScheduler.h"
#include "support/StringUtils.h"
#include "support/Support.h"

#include <algorithm>

namespace an5d {

static std::string line(const std::string &Label, const std::string &Value) {
  return "  " + padRight(Label, 34) + Value + "\n";
}

static std::string mib(double Bytes) {
  return formatDouble(Bytes / (1 << 20), 1) + " MiB";
}

std::string renderScheduleReport(const StencilProgram &Program,
                                 const GpuSpec &Spec,
                                 const BlockConfig &Config,
                                 const ProblemSize &Problem) {
  std::string Out;
  Out += "AN5D schedule report\n";
  Out += std::string(70, '=') + "\n";

  Out += "stencil\n";
  Out += line("name", Program.name());
  Out += line("update", Program.update().toString());
  Out += line("element type", scalarTypeName(Program.elemType()));
  Out += line("shape / radius",
              std::string(stencilShapeName(Program.shape())) + " / " +
                  std::to_string(Program.radius()));
  Out += line("optimization class",
              optimizationClassName(Program.optimizationClass()));
  Out += line("taps / FLOP per cell",
              std::to_string(Program.taps().size()) + " / " +
                  std::to_string(Program.flopsPerCell().total()));
  Out += line("effALU (FMA mapping)",
              formatDouble(Program.instructionMix().aluEfficiency(), 3));

  Out += "configuration\n";
  Out += line("device", Spec.Name);
  Out += line("problem", Problem.toString());
  Out += line("blocking", Config.toString());
  Out += line("threads per block (nthr)",
              std::to_string(Config.numThreads()));
  {
    std::string Widths;
    for (std::size_t D = 0; D < Config.BS.size(); ++D) {
      if (D != 0)
        Widths += " x ";
      Widths += std::to_string(
          Config.computeWidth(static_cast<int>(D), Program.radius()));
    }
    Out += line("compute region per block", Widths);
  }

  if (!Config.isFeasible(Program.radius(), Spec.MaxThreadsPerBlock)) {
    Out += "\nINFEASIBLE: the halo consumes the whole block "
           "(bS <= 2*bT*rad) or the\nthread count exceeds the device "
           "limit.\n";
    return Out;
  }

  Out += "per-block resources\n";
  long long Threads = Config.numThreads();
  int MinRegs = an5dRegistersPerThread(Program, Config.BT);
  Out += line("registers/thread (min est.)", std::to_string(MinRegs));
  Out += line("register cap",
              Config.RegisterCap > 0 ? std::to_string(Config.RegisterCap)
                                     : "none");
  long long SmemBlock = an5dSmemBytesPerBlock(Program, Threads);
  Out += line("shared memory/block",
              std::to_string(SmemBlock) + " B (double-buffered)");
  Out += line("smem stores per cell",
              std::to_string(smemStoresPerCell(Program)));
  Out += line("smem reads per thread",
              std::to_string(smemReadsPerThreadPractical(Program)) +
                  " practical / " +
                  std::to_string(smemReadsPerThreadExpected(Program)) +
                  " expected");

  ModelBreakdown Model = evaluateModel(Program, Spec, Config, Problem);
  if (!Model.Feasible) {
    Out += "\nINFEASIBLE for this device: register or occupancy limits "
           "leave no\nresident block (see Section 6.3 pruning).\n";
    return Out;
  }

  Out += "occupancy\n";
  Out += line("blocks resident per SM",
              std::to_string(Model.ConcurrentBlocksPerSm));
  Out += line("thread-blocks launched (n'tb)",
              std::to_string(Model.CensusPerInvocation.NumThreadBlocks));
  Out += line("SM utilization (effSM)", formatDouble(Model.EffSm, 3));

  Out += "traffic per temporal block (bT=" + std::to_string(Config.BT) +
         " steps)\n";
  const ThreadCensus &Census = Model.CensusPerInvocation;
  Out += line("global memory",
              mib(static_cast<double>(censusGmemBytes(Census, Program))));
  Out += line("shared memory",
              mib(static_cast<double>(censusSmemBytes(Census, Program))));
  long long Useful = Problem.cellCount() * Config.BT;
  double Redundancy =
      100.0 * static_cast<double>(Census.redundantComputeOps(Useful)) /
      static_cast<double>(std::max<long long>(1, Census.ComputeOps));
  Out += line("redundant computation", formatDouble(Redundancy, 2) + " %");
  double NaiveGmBytes = static_cast<double>(Useful) * 2 *
                        Program.wordSize();
  Out += line("gmem saved vs naive",
              formatDouble((1.0 - static_cast<double>(censusGmemBytes(
                                      Census, Program)) /
                                      NaiveGmBytes) *
                               100.0,
                           1) +
                  " %");

  Out += "roofline (whole run)\n";
  Out += line("compute time",
              formatDouble(Model.TimeCompute * 1e3, 2) + " ms");
  Out += line("global-memory time",
              formatDouble(Model.TimeGmem * 1e3, 2) + " ms");
  Out += line("shared-memory time",
              formatDouble(Model.TimeSmem * 1e3, 2) + " ms");
  Out += line("predicted bottleneck", bottleneckName(Model.Limit));
  Out += line("model prediction",
              formatDouble(Model.Gflops, 0) + " GFLOP/s (" +
                  formatDouble(Model.GcellPerSec, 1) + " GCell/s)");

  MeasuredResult Measured = simulateMeasured(Program, Spec, Config, Problem);
  if (Measured.Feasible) {
    Out += line("simulated measurement",
                formatDouble(Measured.MeasuredGflops, 0) + " GFLOP/s");
    Out += line("model accuracy",
                formatDouble(100 * Measured.modelAccuracy(), 0) + " %");
  }

  Out += "host schedule (Section 4.3.1)\n";
  std::vector<int> Degrees =
      scheduleTimeBlocks(Problem.TimeSteps, Config.BT);
  long long FullCalls = 0;
  for (int D : Degrees)
    if (D == Config.BT)
      ++FullCalls;
  Out += line("kernel calls",
              std::to_string(Degrees.size()) + " (" +
                  std::to_string(FullCalls) + " full, " +
                  std::to_string(Degrees.size() - FullCalls) +
                  " adjusted)");
  std::string Tail;
  std::size_t Shown = 0;
  for (std::size_t I = Degrees.size() >= 4 ? Degrees.size() - 4 : 0;
       I < Degrees.size(); ++I, ++Shown) {
    if (!Tail.empty())
      Tail += ", ";
    Tail += std::to_string(Degrees[I]);
  }
  Out += line("final degrees", "..., " + Tail);
  Out += line("result buffer",
              "A[" + std::to_string(Problem.TimeSteps % 2) +
                  "] (parity preserved)");
  return Out;
}

} // namespace an5d
