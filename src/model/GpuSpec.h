//===- GpuSpec.h - GPU device specifications (Table 4) ----------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device descriptions for the two evaluation GPUs of the paper (Table 4):
/// Tesla P100 SXM2 and Tesla V100 SXM2, including the practical peak
/// global/shared memory throughputs the authors measured with BabelStream
/// and gpumembench. Since this reproduction runs without the physical
/// devices, these numbers parameterize the performance model and the
/// measured-performance simulator.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_GPUSPEC_H
#define AN5D_MODEL_GPUSPEC_H

#include "ir/StencilProgram.h"

#include <string>

namespace an5d {

/// One GPU device, float|double-specific figures included.
struct GpuSpec {
  std::string Name;

  // Peak arithmetic performance, GFLOP/s.
  double PeakGflopsFloat = 0;
  double PeakGflopsDouble = 0;

  // Theoretical external memory bandwidth, GB/s.
  double PeakGmemGBs = 0;

  // Measured external memory throughput (BabelStream), GB/s.
  double MeasuredGmemGBsFloat = 0;
  double MeasuredGmemGBsDouble = 0;

  // Measured shared memory throughput (gpumembench), GB/s.
  double MeasuredSmemGBsFloat = 0;
  double MeasuredSmemGBsDouble = 0;

  int SmCount = 0;

  // Architectural limits common to Pascal/Volta.
  int MaxThreadsPerSm = 2048;
  int MaxThreadsPerBlock = 1024;
  int MaxBlocksPerSm = 32; ///< Resident thread-block limit per SM.
  int MaxRegistersPerThread = 255;
  int RegistersPerSm = 65536;
  int SharedMemPerSmBytes = 0; ///< 64 KiB (P100) or 96 KiB (V100).

  /// Calibrated shared-memory efficiency of N.5D kernels on this device,
  /// used only by the measured-performance simulator. The paper reports
  /// model accuracies of ~71% (V100) and ~53% (P100) once the
  /// division-penalized benchmarks are excluded (Section 7.2) — those are
  /// modeled separately — with shared memory as the predicted bottleneck.
  double SmemKernelEfficiency = 1.0;

  double peakGflops(ScalarType Type) const {
    return Type == ScalarType::Float ? PeakGflopsFloat : PeakGflopsDouble;
  }
  double measuredGmemGBs(ScalarType Type) const {
    return Type == ScalarType::Float ? MeasuredGmemGBsFloat
                                     : MeasuredGmemGBsDouble;
  }
  double measuredSmemGBs(ScalarType Type) const {
    return Type == ScalarType::Float ? MeasuredSmemGBsFloat
                                     : MeasuredSmemGBsDouble;
  }

  /// Tesla V100 SXM2 (Table 4 row 2).
  static GpuSpec teslaV100();

  /// Tesla P100 SXM2 (Table 4 row 1).
  static GpuSpec teslaP100();
};

} // namespace an5d

#endif // AN5D_MODEL_GPUSPEC_H
