//===- BlockConfig.h - N.5D blocking configuration --------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tunable parameters of AN5D's execution model (Section 4.1): the
/// temporal blocking degree bT, the spatial block sizes bSi of the
/// non-streaming dimensions, the stream-chunk length hSN of Section 4.2.3,
/// and the per-thread register cap of Section 6.3 — plus the problem size.
///
/// Dimension convention used throughout the project: spatial dimension 0 is
/// the streaming dimension (the loop directly after the time loop);
/// dimensions 1..N-1 are blocked and map to the thread-block axes.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_BLOCKCONFIG_H
#define AN5D_MODEL_BLOCKCONFIG_H

#include "ir/StencilProgram.h"

#include <string>
#include <vector>

namespace an5d {

/// Grid extents (streaming dimension first) and time-step count.
struct ProblemSize {
  std::vector<long long> Extents;
  long long TimeSteps = 0;

  /// Total number of grid cells.
  long long cellCount() const;

  /// Canonical evaluation sizes of Section 6.1: 16384^2 for 2D, 512^3 for
  /// 3D, with 1000 iterations.
  static ProblemSize paperDefault(int NumDims);

  std::string toString() const;
};

/// One point in AN5D's configuration space.
struct BlockConfig {
  /// Temporal blocking degree (combined time-steps per kernel call).
  int BT = 1;

  /// Spatial block sizes of the blocked dimensions (spatial dims 1..N-1);
  /// one entry for 2D stencils, two entries for 3D, and empty for 1D
  /// stencils (pure streaming: dimension 0 streams, one lane per block,
  /// parallelism from the hS division of Section 4.2.3).
  std::vector<int> BS;

  /// Stream-chunk length hSN; 0 disables the division of the streaming
  /// dimension (one chunk spans the whole extent).
  int HS = 0;

  /// NVCC-style -maxrregcount cap; 0 means uncapped.
  int RegisterCap = 0;

  /// Threads per block (the paper's nthr = prod bSi).
  long long numThreads() const;

  /// Per-dimension compute-region width: bSi - 2*bT*rad (the non-halo part
  /// that stores results).
  long long computeWidth(int BlockedDim, int Radius) const;

  /// True if every blocked dimension retains a positive compute region and
  /// the thread count respects \p MaxThreadsPerBlock. This cannot check
  /// that BS has one entry per non-streaming dimension (the config does
  /// not know the stencil's dimensionality); evaluateModel enforces that
  /// arity contract for the model/tuner stack.
  bool isFeasible(int Radius, int MaxThreadsPerBlock = 1024) const;

  /// True if BS carries exactly one entry per non-streaming dimension of
  /// an \p NumDims-dimensional stencil — the arity contract isFeasible
  /// cannot check on its own (see above). The schedule verifier and the
  /// model stack share this predicate.
  bool matchesDimensionality(int NumDims) const;

  std::string toString() const;
};

} // namespace an5d

#endif // AN5D_MODEL_BLOCKCONFIG_H
