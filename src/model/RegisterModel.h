//===- RegisterModel.h - Register usage estimation --------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-pressure estimates used to prune the configuration space
/// (Section 6.3) and to reproduce the register-usage comparison of Fig. 7.
///
/// The paper experimentally finds AN5D kernels need at least
///   bT*(2*rad+1) + bT + 20      registers/thread for float, and
///   2*bT*(2*rad+1) + bT + 30    registers/thread for double.
/// STENCILGEN's shifting register allocation moves every sub-plane value
/// through 1+2*rad registers per update, which costs extra live ranges;
/// the paper observes it uses more registers on average and spills for
/// second-order stencils at the 32-register cap (Section 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_REGISTERMODEL_H
#define AN5D_MODEL_REGISTERMODEL_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"

namespace an5d {

/// Minimum registers per thread an AN5D kernel needs (Section 6.3 lower
/// bound).
int an5dRegistersPerThread(const StencilProgram &Program, int BT);

/// Register estimate for a STENCILGEN kernel of the same stencil: the
/// shifting allocation keeps roughly one extra live value per combined
/// time-step plus shift temporaries.
int stencilgenRegistersPerThread(const StencilProgram &Program, int BT);

/// Hard floor under -maxrregcount for AN5D: the fixed allocation keeps
/// only the bT*(2*rad+1) sub-plane window truly live, so NVCC can trade
/// everything else for recomputation. Section 7.1: none of the AN5D Sconf
/// binaries spill at a 32-register cap.
int an5dHardFloorRegisters(const StencilProgram &Program, int BT);

/// Hard floor for STENCILGEN: the shifting allocation needs one extra
/// live value per plane during the shift plus the shift temporaries, so
/// second-order stencils exceed 32 registers and spill (Section 7.1).
int stencilgenHardFloorRegisters(const StencilProgram &Program, int BT);

/// True when \p Config exceeds the per-thread (255) or per-SM (65536)
/// register limits of \p Spec and must be pruned (Section 6.3).
bool exceedsRegisterLimits(const StencilProgram &Program,
                           const BlockConfig &Config, const GpuSpec &Spec);

/// Smallest cap from {32, 64, 96, 0 (uncapped)} that the estimated usage
/// fits under without spilling; mirrors the Regs column of Table 5.
int preferredRegisterCap(const StencilProgram &Program, int BT);

} // namespace an5d

#endif // AN5D_MODEL_REGISTERMODEL_H
