//===- PerformanceModel.h - Roofline model of Section 5 ---------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The roofline-style performance model of Section 5. Given a stencil, a
/// device and a blocking configuration, computes the expected kernel time
/// from three candidate bottlenecks — compute (scaled by the FMA-mapping
/// ALU efficiency), global memory and shared memory — divided by the SM
/// utilization efficiency derived from wave quantization.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_PERFORMANCEMODEL_H
#define AN5D_MODEL_PERFORMANCEMODEL_H

#include "analysis/passes/ResourceEstimator.h"
#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"
#include "model/GpuSpec.h"
#include "model/ThreadCensus.h"

#include <string>

namespace an5d {

/// Which roofline term dominates the predicted run time.
enum class Bottleneck { Compute, GlobalMemory, SharedMemory };

const char *bottleneckName(Bottleneck B);

/// Full model output for one (stencil, device, config, problem) tuple.
struct ModelBreakdown {
  bool Feasible = false;

  // Per-run totals (all temporal blocks).
  double TotalFlops = 0;
  double TotalGmemBytes = 0;
  double TotalSmemBytes = 0;

  // Candidate times in seconds.
  double TimeCompute = 0;
  double TimeGmem = 0;
  double TimeSmem = 0;

  double EffAlu = 1.0;
  double EffSm = 1.0;
  Bottleneck Limit = Bottleneck::SharedMemory;

  /// Predicted run time in seconds (max of the candidates / EffSm).
  double TimeSeconds = 0;

  /// Useful performance: grid cells x time-steps x FLOP/cell over
  /// TimeSeconds, in GFLOP/s.
  double Gflops = 0;

  /// Useful cell-updates per second, in GCell/s.
  double GcellPerSec = 0;

  /// Occupancy: concurrent thread-blocks per SM after thread, shared
  /// memory and register-file limits.
  int ConcurrentBlocksPerSm = 0;

  /// The static resource features the occupancy term consumed
  /// (registers/thread and smem/block come straight from here; see
  /// analysis/passes/ResourceEstimator.h).
  ResourceEstimate Resources;

  ThreadCensus CensusPerInvocation;

  std::string toString() const;
};

/// SM utilization efficiency via wave quantization (Section 5): the launch
/// of \p NumThreadBlocks runs in Ceil(W) waves of BlocksPerSm * SmCount
/// concurrent blocks, of which only the W = NumThreadBlocks / blocks-per-
/// wave fraction performs work — so the efficiency is W / Ceil(W), or W
/// itself when the whole launch fits in less than one wave.
double smUtilizationEfficiency(long long NumThreadBlocks, int BlocksPerSm,
                               int SmCount);

/// Evaluates the Section 5 model. Infeasible configurations (no compute
/// region, too many threads, register-limit violations) yield
/// Feasible == false.
ModelBreakdown evaluateModel(const StencilProgram &Program,
                             const GpuSpec &Spec, const BlockConfig &Config,
                             const ProblemSize &Problem);

} // namespace an5d

#endif // AN5D_MODEL_PERFORMANCEMODEL_H
