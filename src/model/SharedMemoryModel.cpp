//===- SharedMemoryModel.cpp - Tables 1 and 2 of the paper -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/SharedMemoryModel.h"

#include "support/Support.h"

namespace an5d {

/// Sub-planes held per shared-memory buffer: 1 for the optimized classes,
/// 1 + 2*rad for general stencils (Table 1).
static long long subPlanesPerBuffer(const StencilProgram &Program) {
  switch (Program.optimizationClass()) {
  case OptimizationClass::DiagonalAccessFree:
  case OptimizationClass::AssociativeStencil:
    return 1;
  case OptimizationClass::Otherwise:
    return 1 + 2LL * Program.radius();
  }
  return 1;
}

long long an5dSmemBytesPerBlock(const StencilProgram &Program,
                                long long NumThreads) {
  // 2 x nthr x nword (x (1+2*rad) sub-planes for general stencils).
  return 2LL * NumThreads * Program.wordSize() * subPlanesPerBuffer(Program);
}

long long stencilgenSmemBytesPerBlock(const StencilProgram &Program,
                                      long long NumThreads, int BT) {
  // One buffer per combined time-step: nthr x bT x nword, scaled by the
  // per-buffer sub-plane count for general stencils.
  return static_cast<long long>(BT) * NumThreads * Program.wordSize() *
         subPlanesPerBuffer(Program);
}

int smemStoresPerCell(const StencilProgram &Program) {
  switch (Program.optimizationClass()) {
  case OptimizationClass::DiagonalAccessFree:
  case OptimizationClass::AssociativeStencil:
    return 1;
  case OptimizationClass::Otherwise:
    return 1 + 2 * Program.radius();
  }
  return 1;
}

long long smemReadsPerThreadExpected(const StencilProgram &Program) {
  long long Rad = Program.radius();
  long long Diameter = 2 * Rad + 1;
  switch (Program.shape()) {
  case StencilShape::Star:
    // In-plane axis neighbors only: 2*rad per blocked dimension.
    return 2 * Rad * (Program.numDims() - 1);
  case StencilShape::Box:
    // Every tap except the register-held streaming column.
    return ipow(Diameter, Program.numDims()) - Diameter;
  case StencilShape::General: {
    // Taps minus the register-held streaming column (clamped at zero).
    long long Taps = static_cast<long long>(Program.taps().size());
    long long Held = 0;
    for (const std::vector<int> &Tap : Program.taps()) {
      bool OnStreamAxis = true;
      for (std::size_t D = 1; D < Tap.size(); ++D)
        if (Tap[D] != 0)
          OnStreamAxis = false;
      if (OnStreamAxis)
        ++Held;
    }
    return Taps > Held ? Taps - Held : 0;
  }
  }
  return 0;
}

long long smemReadsPerThreadPractical(const StencilProgram &Program) {
  long long Rad = Program.radius();
  long long Diameter = 2 * Rad + 1;
  switch (Program.shape()) {
  case StencilShape::Star:
    // NVCC keeps star reads as-is; expected == practical.
    return smemReadsPerThreadExpected(Program);
  case StencilShape::Box:
    // NVCC caches columns in registers: one read per stencil column,
    // minus the register-held own column (Section 5).
    return ipow(Diameter, Program.numDims() - 1) - 1;
  case StencilShape::General:
    return smemReadsPerThreadExpected(Program);
  }
  return 0;
}

} // namespace an5d
