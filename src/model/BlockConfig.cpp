//===- BlockConfig.cpp - N.5D blocking configuration ------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/BlockConfig.h"

#include "support/Support.h"

namespace an5d {

long long ProblemSize::cellCount() const {
  long long Cells = 1;
  for (long long E : Extents)
    Cells *= E;
  return Cells;
}

ProblemSize ProblemSize::paperDefault(int NumDims) {
  ProblemSize Size;
  if (NumDims == 2)
    Size.Extents = {16384, 16384};
  else if (NumDims == 3)
    Size.Extents = {512, 512, 512};
  else
    Size.Extents = {1 << 20};
  Size.TimeSteps = 1000;
  return Size;
}

std::string ProblemSize::toString() const {
  std::string Out;
  for (std::size_t I = 0; I < Extents.size(); ++I) {
    if (I != 0)
      Out += 'x';
    Out += std::to_string(Extents[I]);
  }
  Out += " IT=" + std::to_string(TimeSteps);
  return Out;
}

long long BlockConfig::numThreads() const {
  long long Threads = 1;
  for (int B : BS)
    Threads *= B;
  return Threads;
}

long long BlockConfig::computeWidth(int BlockedDim, int Radius) const {
  assert(BlockedDim >= 0 && BlockedDim < static_cast<int>(BS.size()) &&
         "blocked dimension out of range");
  return static_cast<long long>(BS[BlockedDim]) -
         2LL * static_cast<long long>(BT) * Radius;
}

bool BlockConfig::isFeasible(int Radius, int MaxThreadsPerBlock) const {
  if (BT < 1)
    return false;
  // An empty BS is the 1D pure-streaming configuration: no blocked
  // dimensions, one lane per block, parallelism from the hS division of
  // the streaming dimension. Every per-dimension check below is vacuous.
  if (numThreads() > MaxThreadsPerBlock)
    return false;
  for (std::size_t D = 0; D < BS.size(); ++D)
    if (computeWidth(static_cast<int>(D), Radius) < 1)
      return false;
  return true;
}

bool BlockConfig::matchesDimensionality(int NumDims) const {
  return static_cast<int>(BS.size()) == NumDims - 1;
}

std::string BlockConfig::toString() const {
  std::string Out = "bT=" + std::to_string(BT) + " bS=";
  if (BS.empty())
    Out += '-'; // 1D pure streaming: no blocked dimensions.
  for (std::size_t I = 0; I < BS.size(); ++I) {
    if (I != 0)
      Out += 'x';
    Out += std::to_string(BS[I]);
  }
  Out += " hS=" + (HS > 0 ? std::to_string(HS) : std::string("off"));
  if (RegisterCap > 0)
    Out += " regs<=" + std::to_string(RegisterCap);
  return Out;
}

} // namespace an5d
