//===- ThreadCensus.h - Thread classification and traffic totals -*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete thread/operation counting underlying the performance model
/// (Section 5). Threads are classified as out-of-bound, boundary, redundant
/// or valid; from per-dimension lane counts this module derives the total
/// number of thread-operations performing computation, global memory reads
/// and writes, and shared memory reads and writes for one kernel invocation
/// (one temporal block of bT time-steps over the whole grid).
///
/// The counting mirrors the blocked executor exactly: per chunk of the
/// streaming dimension, tier T in 1..bT computes interior planes in
/// [c0-(bT-T)*rad, c1-1+(bT-T)*rad], and within each thread-block the
/// tier-T valid region shrinks by T*rad per side (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_THREADCENSUS_H
#define AN5D_MODEL_THREADCENSUS_H

#include "ir/StencilProgram.h"
#include "model/BlockConfig.h"

namespace an5d {

/// Thread-operation totals for one kernel invocation (one temporal block).
struct ThreadCensus {
  /// Thread-operations issuing a global-memory read (tier-0 loads of
  /// interior and boundary cells).
  long long GmReadOps = 0;

  /// Thread-operations issuing a global-memory write (tier-bT stores of
  /// compute-region cells); equals the grid cell count.
  long long GmWriteOps = 0;

  /// Cell updates evaluated, including redundant halo recomputation and
  /// stream-division overlap.
  long long ComputeOps = 0;

  /// Thread-plane shared-memory store slots: every thread of every block
  /// stores once per processed sub-plane for tiers 0..bT-1, out-of-bound
  /// threads included (Section 5).
  long long SmWriteOps = 0;

  /// Total thread-blocks launched (the paper's n'tb).
  long long NumThreadBlocks = 0;

  /// Redundantly computed cell updates (ComputeOps minus useful updates).
  long long redundantComputeOps(long long UsefulPerInvocation) const {
    return ComputeOps - UsefulPerInvocation;
  }
};

/// Counts one invocation of degree \p Config.BT over \p Problem.
/// \pre Config.isFeasible(Program.radius()).
ThreadCensus computeThreadCensus(const StencilProgram &Program,
                                 const BlockConfig &Config,
                                 const ProblemSize &Problem);

/// Global-memory traffic in bytes implied by \p Census.
long long censusGmemBytes(const ThreadCensus &Census,
                          const StencilProgram &Program);

/// Shared-memory traffic in bytes implied by \p Census, using the Table 2
/// practical per-thread read counts and Table 1 store-per-cell counts.
long long censusSmemBytes(const ThreadCensus &Census,
                          const StencilProgram &Program);

/// Floating-point operations implied by \p Census.
long long censusFlops(const ThreadCensus &Census,
                      const StencilProgram &Program);

} // namespace an5d

#endif // AN5D_MODEL_THREADCENSUS_H
