//===- RegisterModel.cpp - Register usage estimation ------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/RegisterModel.h"

namespace an5d {

int an5dRegistersPerThread(const StencilProgram &Program, int BT) {
  int PlanesPerStream = 2 * Program.radius() + 1;
  if (Program.elemType() == ScalarType::Float)
    return BT * PlanesPerStream + BT + 20;
  return 2 * BT * PlanesPerStream + BT + 30;
}

int stencilgenRegistersPerThread(const StencilProgram &Program, int BT) {
  // The shifting allocation keeps the same sub-plane window live but also
  // needs shift temporaries: one per register-held plane per stream. Fig. 7
  // shows STENCILGEN above AN5D on average, with the gap widening for
  // second-order stencils.
  int PlanesPerStream = 2 * Program.radius() + 1;
  int Shifting = BT * (PlanesPerStream + 1);
  if (Program.elemType() == ScalarType::Float)
    return Shifting + BT + 20 + 2 * Program.radius();
  return 2 * Shifting + BT + 30 + 4 * Program.radius();
}

int an5dHardFloorRegisters(const StencilProgram &Program, int BT) {
  return BT * (2 * Program.radius() + 1) + 8;
}

int stencilgenHardFloorRegisters(const StencilProgram &Program, int BT) {
  return BT * (2 * Program.radius() + 2) + 8 + 2 * Program.radius();
}

bool exceedsRegisterLimits(const StencilProgram &Program,
                           const BlockConfig &Config, const GpuSpec &Spec) {
  int PerThread = an5dRegistersPerThread(Program, Config.BT);
  if (PerThread > Spec.MaxRegistersPerThread)
    return true;
  long long PerBlock = PerThread * Config.numThreads();
  return PerBlock > Spec.RegistersPerSm;
}

int preferredRegisterCap(const StencilProgram &Program, int BT) {
  int Needed = an5dRegistersPerThread(Program, BT);
  for (int Cap : {32, 64, 96})
    if (Needed <= Cap)
      return Cap;
  return 0; // uncapped
}

} // namespace an5d
