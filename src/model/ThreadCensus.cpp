//===- ThreadCensus.cpp - Thread classification and traffic totals ----------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/ThreadCensus.h"

#include "model/SharedMemoryModel.h"
#include "support/Support.h"

#include <algorithm>

namespace an5d {

/// Length of the intersection of [ALo, AHi) with [BLo, BHi).
static long long overlapLength(long long ALo, long long AHi, long long BLo,
                               long long BHi) {
  long long Lo = std::max(ALo, BLo);
  long long Hi = std::min(AHi, BHi);
  return Hi > Lo ? Hi - Lo : 0;
}

namespace {

/// Per-blocked-dimension lane totals, summed over all blocks of that
/// dimension.
struct DimCounts {
  long long NumBlocks = 0;
  long long AllLanes = 0;    ///< nthr lanes per block, all blocks.
  long long InGridLanes = 0; ///< Lanes over interior+boundary cells.
  /// ValidLanes[T] (T in 0..bT): lanes inside the tier-T valid region and
  /// the grid interior.
  std::vector<long long> ValidLanes;
};

} // namespace

static DimCounts countDim(long long Extent, int BlockSize, int BT,
                          int Radius) {
  DimCounts Counts;
  long long Halo = static_cast<long long>(BT) * Radius;
  long long ComputeWidth = BlockSize - 2 * Halo;
  assert(ComputeWidth >= 1 && "infeasible block configuration");
  Counts.NumBlocks = ceilDiv(Extent, ComputeWidth);
  Counts.AllLanes = Counts.NumBlocks * BlockSize;
  Counts.ValidLanes.assign(static_cast<std::size_t>(BT) + 1, 0);

  for (long long B = 0; B < Counts.NumBlocks; ++B) {
    long long Origin = B * ComputeWidth;
    long long SpanLo = Origin - Halo;
    long long SpanHi = SpanLo + BlockSize;
    // Lanes over cells that exist in memory: interior plus one radius of
    // boundary cells on each side.
    Counts.InGridLanes += overlapLength(SpanLo, SpanHi, -Radius,
                                        Extent + Radius);
    for (int T = 0; T <= BT; ++T) {
      long long Shrink = static_cast<long long>(BT - T) * Radius;
      long long ValidLo = Origin - Shrink;
      long long ValidHi = Origin + ComputeWidth + Shrink;
      Counts.ValidLanes[static_cast<std::size_t>(T)] +=
          overlapLength(ValidLo, ValidHi, 0, Extent);
    }
  }
  return Counts;
}

ThreadCensus computeThreadCensus(const StencilProgram &Program,
                                 const BlockConfig &Config,
                                 const ProblemSize &Problem) {
  assert(Config.isFeasible(Program.radius()) &&
         "census requires a feasible configuration");
  assert(static_cast<int>(Problem.Extents.size()) == Program.numDims() &&
         "problem dimensionality mismatch");
  assert(Problem.Extents.size() == Config.BS.size() + 1 &&
         "config must provide one block size per non-streaming dimension");

  int Radius = Program.radius();
  int BT = Config.BT;
  long long StreamExtent = Problem.Extents[0];

  // Per-dimension lane counts for the blocked dimensions.
  std::vector<DimCounts> Dims;
  for (std::size_t D = 0; D < Config.BS.size(); ++D)
    Dims.push_back(countDim(Problem.Extents[D + 1], Config.BS[D], BT,
                            Radius));

  long long BlocksPerChunk = 1;
  long long InGridProduct = 1;
  // Lanes per block are uniform (BlockSize), so summing over block tuples
  // factorizes into the product of per-dimension totals.
  long long AllLanesTotal = 1;
  for (const DimCounts &C : Dims) {
    BlocksPerChunk *= C.NumBlocks;
    InGridProduct *= C.InGridLanes;
    AllLanesTotal *= C.AllLanes;
  }

  // Valid-lane products per tier.
  std::vector<long long> ValidProduct(static_cast<std::size_t>(BT) + 1, 1);
  for (int T = 0; T <= BT; ++T)
    for (const DimCounts &C : Dims)
      ValidProduct[static_cast<std::size_t>(T)] *=
          C.ValidLanes[static_cast<std::size_t>(T)];

  // Streaming chunks.
  long long ChunkLength =
      Config.HS > 0 ? static_cast<long long>(Config.HS) : StreamExtent;
  long long NumChunks = ceilDiv(StreamExtent, ChunkLength);

  ThreadCensus Census;
  Census.NumThreadBlocks = NumChunks * BlocksPerChunk;

  for (long long Chunk = 0; Chunk < NumChunks; ++Chunk) {
    long long C0 = Chunk * ChunkLength;
    long long C1 = std::min(C0 + ChunkLength, StreamExtent);

    // Tier-0 loads: planes [C0 - bT*rad, C1-1 + bT*rad] clamped to the
    // cells that exist ([-rad, L+rad)).
    long long LoadPlanes =
        overlapLength(C0 - static_cast<long long>(BT) * Radius,
                      C1 + static_cast<long long>(BT) * Radius, -Radius,
                      StreamExtent + Radius);
    Census.GmReadOps += LoadPlanes * InGridProduct;

    // Tier-0 shared-memory staging: every thread stores each loaded plane.
    Census.SmWriteOps += LoadPlanes * AllLanesTotal;

    for (int T = 1; T <= BT; ++T) {
      long long Reach = static_cast<long long>(BT - T) * Radius;
      // Interior planes this tier computes (redundant planes included).
      long long ComputePlanes =
          overlapLength(C0 - Reach, C1 + Reach, 0, StreamExtent);
      Census.ComputeOps +=
          ComputePlanes * ValidProduct[static_cast<std::size_t>(T)];
      // Tiers 0..bT-1 stage their results in shared memory; the final tier
      // writes straight to global memory (Fig. 5).
      if (T < BT)
        Census.SmWriteOps += ComputePlanes * AllLanesTotal;
    }

    // Tier-bT stores: compute-region cells of the chunk's own planes.
    long long StorePlanes = C1 - C0;
    long long StoreProduct = 1;
    for (std::size_t D = 0; D < Dims.size(); ++D)
      StoreProduct *= Problem.Extents[D + 1];
    Census.GmWriteOps += StorePlanes * StoreProduct;
  }

  return Census;
}

long long censusGmemBytes(const ThreadCensus &Census,
                          const StencilProgram &Program) {
  return (Census.GmReadOps + Census.GmWriteOps) * Program.wordSize();
}

long long censusSmemBytes(const ThreadCensus &Census,
                          const StencilProgram &Program) {
  long long ReadOps =
      Census.ComputeOps * smemReadsPerThreadPractical(Program);
  long long WriteOps = Census.SmWriteOps * smemStoresPerCell(Program);
  return (ReadOps + WriteOps) * Program.wordSize();
}

long long censusFlops(const ThreadCensus &Census,
                      const StencilProgram &Program) {
  return Census.ComputeOps * Program.flopsPerCell().total();
}

} // namespace an5d
