//===- SharedMemoryModel.h - Tables 1 and 2 of the paper --------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared-memory footprint and per-thread traffic formulas.
///
/// Table 1 (footprint per block and stores per cell, AN5D vs STENCILGEN):
///   AN5D uses exactly two buffers (double buffering, Section 4.2.2);
///   STENCILGEN uses one buffer per combined time-step. For general
///   ("Otherwise") stencils each buffer holds 1+2*rad sub-planes.
///
/// Table 2 (shared-memory accesses per computing thread): the expected
/// read counts subtract the 2*rad+1 register-held column from the taps; the
/// practical counts additionally account for NVCC caching a full column of
/// box reads in registers (one read per stencil column).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_MODEL_SHAREDMEMORYMODEL_H
#define AN5D_MODEL_SHAREDMEMORYMODEL_H

#include "ir/StencilProgram.h"

namespace an5d {

/// Shared-memory bytes per thread-block for AN5D's double-buffered layout
/// (Table 1, AN5D column).
long long an5dSmemBytesPerBlock(const StencilProgram &Program,
                                long long NumThreads);

/// Shared-memory bytes per thread-block for STENCILGEN's per-time-step
/// multi-buffering (Table 1, STENCILGEN column).
long long stencilgenSmemBytesPerBlock(const StencilProgram &Program,
                                      long long NumThreads, int BT);

/// Shared-memory stores per cell update (Table 1 bottom): 1 for
/// diagonal-access-free and associative stencils, 1+2*rad otherwise. The
/// same value applies to both frameworks.
int smemStoresPerCell(const StencilProgram &Program);

/// Expected shared-memory reads per computing thread (Table 2).
long long smemReadsPerThreadExpected(const StencilProgram &Program);

/// Practical shared-memory reads per computing thread after NVCC's
/// register caching of box columns (Table 2).
long long smemReadsPerThreadPractical(const StencilProgram &Program);

/// Shared-memory writes per computing thread (Table 2): always 1.
inline long long smemWritesPerThread() { return 1; }

} // namespace an5d

#endif // AN5D_MODEL_SHAREDMEMORYMODEL_H
