//===- GpuSpec.cpp - GPU device specifications (Table 4) -------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/GpuSpec.h"

namespace an5d {

GpuSpec GpuSpec::teslaV100() {
  GpuSpec Spec;
  Spec.Name = "Tesla V100 SXM2";
  Spec.PeakGflopsFloat = 15700;
  Spec.PeakGflopsDouble = 7850;
  Spec.PeakGmemGBs = 900;
  Spec.MeasuredGmemGBsFloat = 791;
  Spec.MeasuredGmemGBsDouble = 805;
  Spec.MeasuredSmemGBsFloat = 10650;
  Spec.MeasuredSmemGBsDouble = 12750;
  Spec.SmCount = 80;
  Spec.SharedMemPerSmBytes = 96 * 1024;
  Spec.SmemKernelEfficiency = 0.76;
  return Spec;
}

GpuSpec GpuSpec::teslaP100() {
  GpuSpec Spec;
  Spec.Name = "Tesla P100 SXM2";
  Spec.PeakGflopsFloat = 10600;
  Spec.PeakGflopsDouble = 5300;
  Spec.PeakGmemGBs = 720;
  Spec.MeasuredGmemGBsFloat = 535;
  Spec.MeasuredGmemGBsDouble = 540;
  Spec.MeasuredSmemGBsFloat = 9700;
  Spec.MeasuredSmemGBsDouble = 10150;
  Spec.SmCount = 56;
  Spec.SharedMemPerSmBytes = 64 * 1024;
  Spec.SmemKernelEfficiency = 0.52;
  return Spec;
}

} // namespace an5d
