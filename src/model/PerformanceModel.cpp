//===- PerformanceModel.cpp - Roofline model of Section 5 -------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/PerformanceModel.h"

#include "model/RegisterModel.h"
#include "model/SharedMemoryModel.h"
#include "support/StringUtils.h"
#include "support/Support.h"

#include <algorithm>
#include <cmath>

namespace an5d {

const char *bottleneckName(Bottleneck B) {
  switch (B) {
  case Bottleneck::Compute:
    return "compute";
  case Bottleneck::GlobalMemory:
    return "gmem";
  case Bottleneck::SharedMemory:
    return "smem";
  }
  return "unknown";
}

/// Concurrent thread-blocks per SM under the thread, shared-memory and
/// register-file limits (Section 5; the register term reflects the
/// -maxrregcount tuning of Section 6.3). The per-block shared-memory and
/// per-thread register figures come from the static resource estimate
/// (analysis/passes/ResourceEstimator.h), which wraps the same
/// RegisterModel/SharedMemoryModel formulas — one source of truth for the
/// model, the tuner's candidate features and the --analyze report.
static int concurrentBlocksPerSm(const GpuSpec &Spec,
                                 const BlockConfig &Config,
                                 const ResourceEstimate &Resources) {
  long long Threads = Config.numThreads();
  long long ByThreads = Spec.MaxThreadsPerSm / Threads;

  long long SmemPerBlock = Resources.SmemBytesPerBlock;
  long long BySmem = SmemPerBlock > 0
                         ? Spec.SharedMemPerSmBytes / SmemPerBlock
                         : ByThreads;

  // Uncapped, NVCC allocates some scheduling slack above the minimum live
  // set; -maxrregcount trims that slack (Section 6.3). Caps below the
  // minimum would spill, which the tuner treats as infeasible. NVCC also
  // clamps the allocation so one block is always launchable (e.g. 64
  // registers/thread for 1024-thread blocks).
  int MinRegs = Resources.RegistersPerThread;
  int MaxLaunchable =
      static_cast<int>(Spec.RegistersPerSm / std::max<long long>(1, Threads));
  if (MinRegs > MaxLaunchable)
    return 0; // cannot hold the live set without spilling
  int NaturalRegs = std::min(MinRegs + 12, MaxLaunchable);
  int RegsPerThread = NaturalRegs;
  if (Config.RegisterCap > 0) {
    if (Config.RegisterCap < MinRegs)
      return 0; // would spill
    RegsPerThread = std::min(NaturalRegs, Config.RegisterCap);
  }
  long long ByRegs = Spec.RegistersPerSm /
                     std::max<long long>(1, Threads * RegsPerThread);

  long long Blocks = std::min({ByThreads, BySmem, ByRegs,
                               static_cast<long long>(Spec.MaxBlocksPerSm)});
  return static_cast<int>(std::max<long long>(0, Blocks));
}

double smUtilizationEfficiency(long long NumThreadBlocks, int BlocksPerSm,
                               int SmCount) {
  if (BlocksPerSm <= 0 || NumThreadBlocks <= 0)
    return 0.0;
  double BlocksPerWave =
      static_cast<double>(BlocksPerSm) * static_cast<double>(SmCount);
  double Waves = static_cast<double>(NumThreadBlocks) / BlocksPerWave;
  if (Waves <= 1.0)
    return Waves;
  // Waves / Ceil(Waves): the launch occupies Ceil(Waves) whole waves of
  // which only the Waves fraction does work. 1.9 waves scores ~0.95 (the
  // tail wave is nearly full), 2.1 scores 0.7 — efficiency rises
  // continuously toward 1.0 within each wave and only drops at the exact
  // moment an extra partial wave starts, so predicted time is a monotone
  // step function of the block count (the former Floor/Ceil form scored
  // every partial wave the same and flipped rankings at wave boundaries).
  return Waves / std::ceil(Waves);
}

ModelBreakdown evaluateModel(const StencilProgram &Program,
                             const GpuSpec &Spec, const BlockConfig &Config,
                             const ProblemSize &Problem) {
  ModelBreakdown Out;
  // BlockConfig::isFeasible cannot see the stencil's dimensionality, so
  // the arity contract (one blocked dimension per non-streaming spatial
  // dimension; none for 1D) is enforced here for the whole model /
  // measured-simulator / tuner stack.
  if (static_cast<int>(Config.BS.size()) != Program.numDims() - 1)
    return Out;
  if (!Config.isFeasible(Program.radius(), Spec.MaxThreadsPerBlock))
    return Out;
  if (exceedsRegisterLimits(Program, Config, Spec))
    return Out;

  Out.Resources = estimateOccupancy(Program, Config);
  int BlocksPerSm = concurrentBlocksPerSm(Spec, Config, Out.Resources);
  if (BlocksPerSm < 1)
    return Out;

  ThreadCensus Census = computeThreadCensus(Program, Config, Problem);
  Out.CensusPerInvocation = Census;
  Out.ConcurrentBlocksPerSm = BlocksPerSm;

  // One census covers one temporal block of BT steps; the host repeats it
  // IT/BT times (the paper's model assumes divisibility; the host-side
  // remainder handling only perturbs the last call).
  double Invocations = static_cast<double>(Problem.TimeSteps) /
                       static_cast<double>(Config.BT);

  Out.TotalFlops =
      static_cast<double>(censusFlops(Census, Program)) * Invocations;
  Out.TotalGmemBytes =
      static_cast<double>(censusGmemBytes(Census, Program)) * Invocations;
  Out.TotalSmemBytes =
      static_cast<double>(censusSmemBytes(Census, Program)) * Invocations;

  Out.EffAlu = Program.instructionMix().aluEfficiency();
  Out.TimeCompute =
      Out.TotalFlops / (Spec.peakGflops(Program.elemType()) * 1e9 *
                        std::max(Out.EffAlu, 1e-9));
  Out.TimeGmem =
      Out.TotalGmemBytes / (Spec.measuredGmemGBs(Program.elemType()) * 1e9);
  Out.TimeSmem =
      Out.TotalSmemBytes / (Spec.measuredSmemGBs(Program.elemType()) * 1e9);

  double Slowest = Out.TimeCompute;
  Out.Limit = Bottleneck::Compute;
  if (Out.TimeGmem > Slowest) {
    Slowest = Out.TimeGmem;
    Out.Limit = Bottleneck::GlobalMemory;
  }
  if (Out.TimeSmem > Slowest) {
    Slowest = Out.TimeSmem;
    Out.Limit = Bottleneck::SharedMemory;
  }

  Out.EffSm = smUtilizationEfficiency(Census.NumThreadBlocks, BlocksPerSm,
                                      Spec.SmCount);
  if (Out.EffSm <= 0.0)
    return Out;

  Out.TimeSeconds = Slowest / Out.EffSm;
  double UsefulFlops = static_cast<double>(Problem.cellCount()) *
                       static_cast<double>(Problem.TimeSteps) *
                       static_cast<double>(Program.flopsPerCell().total());
  Out.Gflops = UsefulFlops / Out.TimeSeconds / 1e9;
  Out.GcellPerSec = static_cast<double>(Problem.cellCount()) *
                    static_cast<double>(Problem.TimeSteps) /
                    Out.TimeSeconds / 1e9;
  Out.Feasible = true;
  return Out;
}

std::string ModelBreakdown::toString() const {
  if (!Feasible)
    return "infeasible";
  std::string Out;
  Out += "time=" + formatDouble(TimeSeconds * 1e3, 2) + "ms";
  Out += " gflops=" + formatDouble(Gflops, 0);
  Out += " bound=" + std::string(bottleneckName(Limit));
  Out += " effALU=" + formatDouble(EffAlu, 2);
  Out += " effSM=" + formatDouble(EffSm, 2);
  Out += " blocks/SM=" + std::to_string(ConcurrentBlocksPerSm);
  return Out;
}

} // namespace an5d
