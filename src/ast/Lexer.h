//===- Lexer.h - Lexer for the C stencil subset -----------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for the restricted C subset accepted as stencil
/// input. Handles //- and /**/-style comments, numeric literals with
/// f/F suffixes, and the operator set of Fig. 4.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_AST_LEXER_H
#define AN5D_AST_LEXER_H

#include "ast/Token.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace an5d {

/// Tokenizes one stencil source buffer.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token; returns EndOfFile forever once the
  /// buffer is exhausted.
  Token next();

  /// Lexes the entire buffer, including the trailing EndOfFile token.
  std::vector<Token> tokenizeAll();

private:
  std::string Source;
  DiagnosticEngine &Diags;
  std::size_t Pos = 0;
  int Line = 1;
  int Column = 1;

  SourceLocation location() const { return {Line, Column}; }

  char peek(std::size_t LookAhead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }

  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Text);
};

} // namespace an5d

#endif // AN5D_AST_LEXER_H
