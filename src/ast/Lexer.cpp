//===- Lexer.cpp - Lexer for the C stencil subset --------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <cctype>
#include <cstdlib>

namespace an5d {

const char *tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Unknown:
    return "unknown token";
  }
  return "unknown";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(std::size_t LookAhead) const {
  if (Pos + LookAhead >= Source.size())
    return '\0';
  return Source[Pos + LookAhead];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = location();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber() {
  SourceLocation Loc = location();
  std::string Text;
  bool SawDot = false;
  bool SawExponent = false;
  while (!atEnd()) {
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Text += advance();
      continue;
    }
    if (C == '.' && !SawDot && !SawExponent) {
      SawDot = true;
      Text += advance();
      continue;
    }
    if ((C == 'e' || C == 'E') && !SawExponent &&
        (std::isdigit(static_cast<unsigned char>(peek(1))) ||
         ((peek(1) == '+' || peek(1) == '-') &&
          std::isdigit(static_cast<unsigned char>(peek(2)))))) {
      SawExponent = true;
      Text += advance();
      if (peek() == '+' || peek() == '-')
        Text += advance();
      continue;
    }
    break;
  }

  Token T = makeToken(TokenKind::Number, Loc, Text);
  T.NumberValue = std::strtod(Text.c_str(), nullptr);
  if (peek() == 'f' || peek() == 'F') {
    advance();
    T.IsFloatSuffixed = true;
  }
  T.IsIntegerLiteral = !SawDot && !SawExponent && !T.IsFloatSuffixed;
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  SourceLocation Loc = location();
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();

  TokenKind Kind = TokenKind::Identifier;
  if (Text == "for")
    Kind = TokenKind::KwFor;
  else if (Text == "int")
    Kind = TokenKind::KwInt;
  else if (Text == "float")
    Kind = TokenKind::KwFloat;
  else if (Text == "double")
    Kind = TokenKind::KwDouble;
  return makeToken(Kind, Loc, std::move(Text));
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLocation Loc = location();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, Loc, "");

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case ';':
    return makeToken(TokenKind::Semicolon, Loc, ";");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '=':
    return makeToken(TokenKind::Assign, Loc, "=");
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    }
    return makeToken(TokenKind::Less, Loc, "<");
  case '+':
    if (peek() == '+') {
      advance();
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::PlusEqual, Loc, "+=");
    }
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    return makeToken(TokenKind::Percent, Loc, "%");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::tokenizeAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool IsEnd = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (IsEnd)
      break;
  }
  return Tokens;
}

} // namespace an5d
