//===- Token.h - Tokens of the C stencil subset -----------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Lexer for the restricted C subset that AN5D
/// accepts as stencil input (Fig. 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_AST_TOKEN_H
#define AN5D_AST_TOKEN_H

#include "support/SourceLocation.h"

#include <string>

namespace an5d {

/// Kinds of lexical tokens in the stencil C subset.
enum class TokenKind {
  EndOfFile,
  Identifier, ///< Names: loop variables, arrays, coefficients, callees.
  Number,     ///< Integer or floating literal, optional f/F suffix.
  KwFor,      ///< 'for'
  KwInt,      ///< 'int' (tolerated in loop inits)
  KwFloat,    ///< 'float'
  KwDouble,   ///< 'double'
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semicolon,
  Comma,
  Assign,    ///< '='
  Less,      ///< '<'
  LessEqual, ///< '<='
  PlusPlus,  ///< '++'
  PlusEqual, ///< '+='
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Unknown, ///< Any character the lexer does not recognize.
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token: kind, source text, location, and for numbers the parsed
/// value.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  SourceLocation Loc;
  double NumberValue = 0.0;   ///< Valid when Kind == Number.
  bool IsFloatSuffixed = false; ///< 'f'/'F' suffix present on a Number.
  bool IsIntegerLiteral = false; ///< Number had no '.' / exponent / suffix.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace an5d

#endif // AN5D_AST_TOKEN_H
