//===- Parser.cpp - Parser for the C stencil subset -------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

namespace an5d {

using namespace ast;

Parser::Parser(std::string Source, DiagnosticEngine &Diags) : Diags(Diags) {
  Lexer Lex(std::move(Source), Diags);
  Tokens = Lex.tokenizeAll();
}

const Token &Parser::peekAhead(std::size_t N) const {
  std::size_t Idx = Index + N;
  if (Idx >= Tokens.size())
    Idx = Tokens.size() - 1; // EndOfFile
  return Tokens[Idx];
}

Token Parser::consume() {
  Token T = current();
  if (!current().is(TokenKind::EndOfFile))
    ++Index;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ast::StmtNode Parser::parseProgram() {
  if (!check(TokenKind::KwFor)) {
    Diags.error(current().Loc,
                "stencil input must start with the time 'for' loop");
    return nullptr;
  }
  StmtNode Loop = parseForStmt();
  if (!Loop)
    return nullptr;
  if (!check(TokenKind::EndOfFile)) {
    Diags.error(current().Loc,
                "trailing tokens after the stencil loop nest; the stencil "
                "statement must be singleton (Section 4.3.3)");
    return nullptr;
  }
  return Loop;
}

ast::StmtNode Parser::parseStmt() {
  if (check(TokenKind::KwFor))
    return parseForStmt();
  if (check(TokenKind::LBrace))
    return parseCompoundStmt();
  return parseAssignStmt();
}

ast::StmtNode Parser::parseForStmt() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::KwFor, "to begin a loop");
  if (!expect(TokenKind::LParen, "after 'for'"))
    return nullptr;

  // Init clause: [int] var = expr
  accept(TokenKind::KwInt);
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected loop variable in for-init");
    return nullptr;
  }
  std::string LoopVar = consume().Text;
  if (!expect(TokenKind::Assign, "in for-init"))
    return nullptr;
  ExprNode LowerBound = parseExpr();
  if (!LowerBound || !expect(TokenKind::Semicolon, "after for-init"))
    return nullptr;

  // Condition clause: var < expr | var <= expr
  if (!check(TokenKind::Identifier) || current().Text != LoopVar) {
    Diags.error(current().Loc,
                "for-condition must test the loop variable '" + LoopVar + "'");
    return nullptr;
  }
  consume();
  bool Inclusive;
  if (accept(TokenKind::Less)) {
    Inclusive = false;
  } else if (accept(TokenKind::LessEqual)) {
    Inclusive = true;
  } else {
    Diags.error(current().Loc, "for-condition must use '<' or '<='");
    return nullptr;
  }
  ExprNode UpperBound = parseExpr();
  if (!UpperBound || !expect(TokenKind::Semicolon, "after for-condition"))
    return nullptr;

  // Step clause: must advance the loop variable by exactly one.
  bool StepOk = false;
  if (accept(TokenKind::PlusPlus)) { // ++var
    if (check(TokenKind::Identifier) && current().Text == LoopVar) {
      consume();
      StepOk = true;
    }
  } else if (check(TokenKind::Identifier) && current().Text == LoopVar) {
    consume();
    if (accept(TokenKind::PlusPlus)) { // var++
      StepOk = true;
    } else if (accept(TokenKind::PlusEqual)) { // var += 1
      if (check(TokenKind::Number) && current().NumberValue == 1.0) {
        consume();
        StepOk = true;
      }
    } else if (accept(TokenKind::Assign)) { // var = var + 1
      if (check(TokenKind::Identifier) && current().Text == LoopVar) {
        consume();
        if (accept(TokenKind::Plus) && check(TokenKind::Number) &&
            current().NumberValue == 1.0) {
          consume();
          StepOk = true;
        }
      }
    }
  }
  if (!StepOk) {
    Diags.error(current().Loc,
                "loop step must increment '" + LoopVar +
                    "' by one (unit-stride increasing loops only)");
    return nullptr;
  }
  if (!expect(TokenKind::RParen, "to close the for header"))
    return nullptr;

  StmtNode Body = parseStmt();
  if (!Body)
    return nullptr;
  return std::make_unique<ForStmt>(Loc, std::move(LoopVar),
                                   std::move(LowerBound), Inclusive,
                                   std::move(UpperBound), std::move(Body));
}

ast::StmtNode Parser::parseCompoundStmt() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::LBrace, "to begin a block");
  std::vector<StmtNode> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    StmtNode S = parseStmt();
    if (!S)
      return nullptr;
    Stmts.push_back(std::move(S));
  }
  if (!expect(TokenKind::RBrace, "to close the block"))
    return nullptr;
  return std::make_unique<CompoundStmt>(Loc, std::move(Stmts));
}

ast::StmtNode Parser::parseAssignStmt() {
  SourceLocation Loc = current().Loc;
  if (!check(TokenKind::Identifier)) {
    Diags.error(Loc, "expected a statement");
    return nullptr;
  }
  ExprNode LHS = parsePrimary();
  if (!LHS)
    return nullptr;
  if (LHS->kind() != Expr::Kind::ArrayRef) {
    Diags.error(Loc, "assignment target must be an array reference");
    return nullptr;
  }
  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;
  ExprNode RHS = parseExpr();
  if (!RHS || !expect(TokenKind::Semicolon, "after assignment"))
    return nullptr;
  return std::make_unique<AssignStmt>(Loc, std::move(LHS), std::move(RHS));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ast::ExprNode Parser::parseExpr() { return parseAdditive(); }

ast::ExprNode Parser::parseAdditive() {
  ExprNode LHS = parseMultiplicative();
  if (!LHS)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    SourceLocation Loc = current().Loc;
    BinOp Op = check(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
    consume();
    ExprNode RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryOpExpr>(Loc, Op, std::move(LHS),
                                         std::move(RHS));
  }
  return LHS;
}

ast::ExprNode Parser::parseMultiplicative() {
  ExprNode LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    SourceLocation Loc = current().Loc;
    BinOp Op = check(TokenKind::Star)    ? BinOp::Mul
               : check(TokenKind::Slash) ? BinOp::Div
                                         : BinOp::Mod;
    consume();
    ExprNode RHS = parseUnary();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryOpExpr>(Loc, Op, std::move(LHS),
                                         std::move(RHS));
  }
  return LHS;
}

ast::ExprNode Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLocation Loc = consume().Loc;
    ExprNode Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryOpExpr>(Loc, std::move(Operand));
  }
  return parsePrimary();
}

ast::ExprNode Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;
  if (check(TokenKind::Number)) {
    Token T = consume();
    return std::make_unique<NumberLit>(Loc, T.NumberValue, T.IsFloatSuffixed,
                                       T.IsIntegerLiteral);
  }
  if (check(TokenKind::LParen)) {
    consume();
    ExprNode Inner = parseExpr();
    if (!Inner || !expect(TokenKind::RParen, "to close the parenthesis"))
      return nullptr;
    return parsePostfix(std::move(Inner));
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = consume().Text;
    if (accept(TokenKind::LParen)) { // Call
      std::vector<ExprNode> Args;
      if (!check(TokenKind::RParen)) {
        do {
          ExprNode Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "to close the call"))
        return nullptr;
      return std::make_unique<CallOpExpr>(Loc, std::move(Name),
                                          std::move(Args));
    }
    if (check(TokenKind::LBracket)) { // Array reference
      std::vector<ExprNode> Indices;
      while (accept(TokenKind::LBracket)) {
        ExprNode Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket, "to close the subscript"))
          return nullptr;
        Indices.push_back(std::move(Index));
      }
      return std::make_unique<ArrayRefExpr>(Loc, std::move(Name),
                                            std::move(Indices));
    }
    return std::make_unique<IdentExpr>(Loc, std::move(Name));
  }
  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokenKindName(current().Kind));
  return nullptr;
}

ast::ExprNode Parser::parsePostfix(ast::ExprNode Base) {
  // Parenthesized expressions have no postfix forms in this subset.
  return Base;
}

} // namespace an5d
