//===- Ast.cpp - AST for the C stencil subset ------------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

#include <cstdio>

namespace an5d {
namespace ast {

static const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  }
  return "?";
}

static void printExpr(const Expr &E, std::string &Out) {
  switch (E.kind()) {
  case Expr::Kind::Number: {
    const auto &N = ast_cast<NumberLit>(E);
    char Buffer[48];
    std::snprintf(Buffer, sizeof(Buffer), "%g", N.value());
    Out += Buffer;
    if (N.isFloatSuffixed())
      Out += 'f';
    return;
  }
  case Expr::Kind::Ident:
    Out += ast_cast<IdentExpr>(E).name();
    return;
  case Expr::Kind::ArrayRef: {
    const auto &A = ast_cast<ArrayRefExpr>(E);
    Out += A.base();
    for (const ExprNode &Index : A.indices()) {
      Out += '[';
      printExpr(*Index, Out);
      Out += ']';
    }
    return;
  }
  case Expr::Kind::Unary: {
    Out += "(-";
    printExpr(ast_cast<UnaryOpExpr>(E).operand(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = ast_cast<BinaryOpExpr>(E);
    Out += '(';
    printExpr(B.lhs(), Out);
    Out += ' ';
    Out += binOpSpelling(B.op());
    Out += ' ';
    printExpr(B.rhs(), Out);
    Out += ')';
    return;
  }
  case Expr::Kind::Call: {
    const auto &C = ast_cast<CallOpExpr>(E);
    Out += C.callee();
    Out += '(';
    for (std::size_t I = 0; I < C.args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*C.args()[I], Out);
    }
    Out += ')';
    return;
  }
  }
}

std::string Expr::toString() const {
  std::string Out;
  printExpr(*this, Out);
  return Out;
}

} // namespace ast
} // namespace an5d
