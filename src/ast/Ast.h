//===- Ast.h - AST for the C stencil subset ---------------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the restricted C subset that AN5D accepts
/// (Fig. 4 of the paper): nested canonical for loops around one
/// double-buffered array assignment. The AST deliberately stays close to
/// the source; normalization into stencil IR happens in the frontend's
/// StencilExtractor.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_AST_AST_H
#define AN5D_AST_AST_H

#include "support/SourceLocation.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace an5d {
namespace ast {

class Expr;
class Stmt;
using ExprNode = std::unique_ptr<Expr>;
using StmtNode = std::unique_ptr<Stmt>;

/// Binary operators of the subset. Mod only appears in the double-buffer
/// time indices ((t+1)%2, t%2).
enum class BinOp { Add, Sub, Mul, Div, Mod };

/// Base class of AST expressions (kind-tagged, no RTTI).
class Expr {
public:
  enum class Kind { Number, Ident, ArrayRef, Unary, Binary, Call };

  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }

  virtual ~Expr() = default;

  /// Renders as C-like text for diagnostics and tests.
  std::string toString() const;

protected:
  Expr(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  const Kind TheKind;
  SourceLocation Loc;
};

/// Numeric literal; remembers the float suffix and integer-ness so the
/// extractor can infer the element type.
class NumberLit final : public Expr {
public:
  NumberLit(SourceLocation Loc, double Value, bool IsFloatSuffixed,
            bool IsIntegerLiteral)
      : Expr(Kind::Number, Loc), Value(Value), FloatSuffixed(IsFloatSuffixed),
        IntegerLiteral(IsIntegerLiteral) {}

  double value() const { return Value; }
  bool isFloatSuffixed() const { return FloatSuffixed; }
  bool isIntegerLiteral() const { return IntegerLiteral; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Number; }

private:
  double Value;
  bool FloatSuffixed;
  bool IntegerLiteral;
};

/// A bare identifier: loop variable, size symbol (I_S1), or coefficient.
class IdentExpr final : public Expr {
public:
  IdentExpr(SourceLocation Loc, std::string Name)
      : Expr(Kind::Ident, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Ident; }

private:
  std::string Name;
};

/// A multi-dimensional array subscript A[e0][e1]...[eN].
class ArrayRefExpr final : public Expr {
public:
  ArrayRefExpr(SourceLocation Loc, std::string Base,
               std::vector<ExprNode> Indices)
      : Expr(Kind::ArrayRef, Loc), Base(std::move(Base)),
        Indices(std::move(Indices)) {}

  const std::string &base() const { return Base; }
  const std::vector<ExprNode> &indices() const { return Indices; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  std::string Base;
  std::vector<ExprNode> Indices;
};

/// Unary minus.
class UnaryOpExpr final : public Expr {
public:
  UnaryOpExpr(SourceLocation Loc, ExprNode Operand)
      : Expr(Kind::Unary, Loc), Operand(std::move(Operand)) {}

  const Expr &operand() const { return *Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  ExprNode Operand;
};

/// Binary arithmetic.
class BinaryOpExpr final : public Expr {
public:
  BinaryOpExpr(SourceLocation Loc, BinOp Op, ExprNode LHS, ExprNode RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinOp op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinOp Op;
  ExprNode LHS;
  ExprNode RHS;
};

/// A call such as sqrtf(x).
class CallOpExpr final : public Expr {
public:
  CallOpExpr(SourceLocation Loc, std::string Callee,
             std::vector<ExprNode> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprNode> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprNode> Args;
};

/// Base class of AST statements.
class Stmt {
public:
  enum class Kind { For, Assign, Compound };

  Kind kind() const { return TheKind; }
  SourceLocation loc() const { return Loc; }

  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, SourceLocation Loc) : TheKind(K), Loc(Loc) {}

private:
  const Kind TheKind;
  SourceLocation Loc;
};

/// A canonical for loop: for (v = lo; v < / <= hi; v++).
class ForStmt final : public Stmt {
public:
  ForStmt(SourceLocation Loc, std::string LoopVar, ExprNode LowerBound,
          bool IsInclusiveUpper, ExprNode UpperBound, StmtNode Body)
      : Stmt(Kind::For, Loc), LoopVar(std::move(LoopVar)),
        LowerBound(std::move(LowerBound)), InclusiveUpper(IsInclusiveUpper),
        UpperBound(std::move(UpperBound)), Body(std::move(Body)) {}

  const std::string &loopVar() const { return LoopVar; }
  const Expr &lowerBound() const { return *LowerBound; }
  /// True for '<=' loops (the paper's spatial loops), false for '<'.
  bool isInclusiveUpper() const { return InclusiveUpper; }
  const Expr &upperBound() const { return *UpperBound; }
  const Stmt &body() const { return *Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  std::string LoopVar;
  ExprNode LowerBound;
  bool InclusiveUpper;
  ExprNode UpperBound;
  StmtNode Body;
};

/// An assignment statement 'lhs = rhs;' where lhs is an array reference.
class AssignStmt final : public Stmt {
public:
  AssignStmt(SourceLocation Loc, ExprNode LHS, ExprNode RHS)
      : Stmt(Kind::Assign, Loc), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprNode LHS;
  ExprNode RHS;
};

/// A brace-enclosed statement list.
class CompoundStmt final : public Stmt {
public:
  CompoundStmt(SourceLocation Loc, std::vector<StmtNode> Stmts)
      : Stmt(Kind::Compound, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtNode> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }

private:
  std::vector<StmtNode> Stmts;
};

/// LLVM-style dyn_cast over AST nodes.
template <typename T, typename U> const T *ast_dyn_cast(const U *Node) {
  assert(Node && "ast_dyn_cast on null node");
  return T::classof(Node) ? static_cast<const T *>(Node) : nullptr;
}

template <typename T, typename U> const T &ast_cast(const U &Node) {
  assert(T::classof(&Node) && "ast_cast to wrong node kind");
  return static_cast<const T &>(Node);
}

} // namespace ast
} // namespace an5d

#endif // AN5D_AST_AST_H
